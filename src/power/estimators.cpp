#include "power/estimators.hpp"

#include "power/tech_params.hpp"

namespace noc::power {

const char* estimator_name(Estimator e) {
  switch (e) {
    case Estimator::Orion: return "ORION 2.0 estimation";
    case Estimator::PostLayout: return "Post-layout estimation";
    case Estimator::Measured: return "Measured results";
  }
  return "?";
}

PowerBreakdown estimate_power(Estimator which, const EnergyCounters& events,
                              int num_routers, bool lowswing_datapath,
                              double clock_ghz) {
  switch (which) {
    case Estimator::Orion: {
      // ORION has no low-swing circuit library: it models the datapath as a
      // full-swing repeated bus either way (part of its absolute error).
      OrionConfig cfg;
      cfg.clock_ghz = clock_ghz;
      return OrionModel(cfg).estimate(events, num_routers);
    }
    case Estimator::PostLayout:
      return compute_power(events, num_routers, postlayout_tech45(),
                           lowswing_datapath, clock_ghz);
    case Estimator::Measured:
      return compute_power(events, num_routers, calibrated_tech45(),
                           lowswing_datapath, clock_ghz);
  }
  return {};
}

std::vector<EstimateComparison> compare_all_estimators(
    const EnergyCounters& baseline_events, bool baseline_lowswing,
    const EnergyCounters& proposed_events, bool proposed_lowswing,
    int num_routers, double clock_ghz) {
  std::vector<EstimateComparison> out;
  for (Estimator e :
       {Estimator::Orion, Estimator::PostLayout, Estimator::Measured}) {
    EstimateComparison c;
    c.which = e;
    c.baseline = estimate_power(e, baseline_events, num_routers,
                                baseline_lowswing, clock_ghz);
    c.proposed = estimate_power(e, proposed_events, num_routers,
                                proposed_lowswing, clock_ghz);
    out.push_back(c);
  }
  return out;
}

}  // namespace noc::power

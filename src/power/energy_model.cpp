#include "power/energy_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace noc::power {

namespace {

struct DatapathEvents {
  double hops = 0;        // crossbar + inter-router link traversals
  double ejections = 0;   // crossbar + router->NIC link
  double injections = 0;  // NIC->router link only
};

DatapathEvents split_datapath(const EnergyCounters& ev) {
  DatapathEvents d;
  d.hops = static_cast<double>(ev.link_traversals);
  // Every crossbar grant is either toward a link (hop) or toward the NIC.
  d.ejections = static_cast<double>(ev.xbar_traversals - ev.link_traversals);
  d.injections =
      static_cast<double>(ev.nic_link_traversals) - d.ejections;
  NOC_ASSERT(d.ejections >= 0 && d.injections >= -1e-9);
  if (d.injections < 0) d.injections = 0;
  return d;
}

}  // namespace

PowerBreakdown compute_power(const EnergyCounters& events, int num_routers,
                             const TechParams& tech, bool lowswing_datapath,
                             double clock_ghz) {
  NOC_EXPECTS(events.cycles > 0);
  const double cycles = static_cast<double>(events.cycles);
  // pJ per cycle equals mW at 1 GHz; scale linearly with frequency.
  auto rate_mw = [&](double count, double pj) {
    return count / cycles * pj * clock_ghz;
  };

  PowerBreakdown p;
  p.clock_mw = tech.p_clock_per_router_mw * num_routers * clock_ghz;
  p.leakage_mw = tech.p_leak_per_router_mw * num_routers;  // freq-independent
  // VC bookkeeping is non-data-dependent: it burns whether or not flits
  // move (the paper's point in Sec 4.1/5).
  p.vc_state_mw = tech.p_vc_state_per_router_mw * num_routers * clock_ghz;

  p.allocators_mw =
      rate_mw(static_cast<double>(events.sa1_arbitrations), tech.e_sa1_pj) +
      rate_mw(static_cast<double>(events.sa2_arbitrations), tech.e_sa2_pj) +
      rate_mw(static_cast<double>(events.vc_allocations), tech.e_va_pj);
  p.lookahead_mw = rate_mw(static_cast<double>(events.lookaheads_sent),
                           tech.e_lookahead_pj);
  p.buffers_mw =
      rate_mw(static_cast<double>(events.buffer_writes),
              tech.e_buffer_write_pj) +
      rate_mw(static_cast<double>(events.buffer_reads), tech.e_buffer_read_pj);

  const DatapathEvents d = split_datapath(events);
  const double e_hop = tech.e_hop_pj(lowswing_datapath);
  p.datapath_mw = rate_mw(d.hops, e_hop) +
                  rate_mw(d.ejections, e_hop * tech.eject_factor) +
                  rate_mw(d.injections, e_hop * tech.inject_factor);
  return p;
}

PowerBreakdown per_router(const PowerBreakdown& network, int num_routers) {
  PowerBreakdown p = network;
  const double n = num_routers;
  p.clock_mw /= n;
  p.leakage_mw /= n;
  p.vc_state_mw /= n;
  p.allocators_mw /= n;
  p.lookahead_mw /= n;
  p.buffers_mw /= n;
  p.datapath_mw /= n;
  return p;
}

PowerBreakdown compute_power_at_voltage(const EnergyCounters& events,
                                        int num_routers,
                                        const TechParams& tech,
                                        bool lowswing_datapath,
                                        double clock_ghz, double vdd) {
  NOC_EXPECTS(vdd > 0.3 && vdd <= 1.3);
  PowerBreakdown p =
      compute_power(events, num_routers, tech, lowswing_datapath, clock_ghz);
  const double v = vdd / 1.1;
  const double dyn = v * v;
  const double leak = std::pow(v, 1.5);
  p.clock_mw *= dyn;
  p.vc_state_mw *= dyn;
  p.allocators_mw *= dyn;
  p.lookahead_mw *= dyn;
  p.buffers_mw *= dyn;
  // The low-swing datapath runs from LVDD, which tracks the swing rather
  // than VDD; only its receive/strobe share (~30%) scales with VDD.
  p.datapath_mw *= lowswing_datapath ? (0.7 + 0.3 * dyn) : dyn;
  p.leakage_mw *= leak;
  return p;
}

double fmax_at_voltage(double vdd, double fmax_nominal_ghz,
                       double vdd_nominal) {
  NOC_EXPECTS(vdd > 0.4);
  constexpr double kVth = 0.32, kAlpha = 1.3;
  auto drive = [&](double v) { return std::pow(v - kVth, kAlpha) / v; };
  return fmax_nominal_ghz * drive(vdd) / drive(vdd_nominal);
}

double theoretical_power_limit_mw(const EnergyCounters& events,
                                  int num_routers, const TechParams& tech,
                                  double clock_ghz) {
  NOC_EXPECTS(events.cycles > 0);
  const double cycles = static_cast<double>(events.cycles);
  const DatapathEvents d = split_datapath(events);
  const double e_hop = tech.e_hop_pj(/*lowswing=*/false);
  const double dyn = (d.hops * e_hop + d.ejections * e_hop * tech.eject_factor +
                      d.injections * e_hop * tech.inject_factor) /
                     cycles * clock_ghz;
  return tech.p_clock_per_router_mw * num_routers * clock_ghz + dyn;
}

}  // namespace noc::power

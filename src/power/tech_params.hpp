#pragma once
// Technology / calibration parameter sets for the power models.
//
// The simulator counts events; a TechParams set converts them to milliwatts
// (pJ per event at 1 GHz == mW contribution). Three families reproduce the
// paper's Fig 8 comparison:
//
//  - calibrated_tech45(): fitted against the chip's measured numbers
//    (Sec 4.1: 427.3 mW at 653 Gb/s broadcast; 76.7 mW leakage;
//    13.2 mW/router at near-zero load with 1.9 mW VC state, 2.0 mW buffers,
//    0.7 mW allocators, 0.2 mW lookaheads; low-swing datapath at 51.7% of
//    full-swing for the measured 48.3% datapath reduction). This set plays
//    the role of the silicon measurement.
//  - postlayout_tech45(): the same constants with the paper's reported
//    post-layout biases (slightly under-estimates buffers and arbitration,
//    over-estimates clocking and datapath; 6-13% total deviation).
//  - orion_tech45(): ORION-2.0-like over-estimation (~5x, from assumed
//    transistor sizes much larger than the chip's), relative accuracy kept.

namespace noc::power {

struct TechParams {
  const char* name = "";

  // Datapath, per event, pJ. A "hop" is one crossbar traversal driving the
  // attached inter-router link (the chip's tri-state RSD drives both as one
  // circuit, Fig 4). Ejection drives the shorter router->NIC wire;
  // injection drives only the NIC->router wire.
  double e_hop_fullswing_pj = 12.7;
  double e_hop_lowswing_pj = 6.57;   // 51.7% of full swing (Fig 6, 48.3%)
  double eject_factor = 0.7;         // ejection energy vs hop
  double inject_factor = 0.3;        // injection energy vs hop

  // Buffers, per 64b flit, pJ.
  double e_buffer_write_pj = 2.4;
  double e_buffer_read_pj = 1.6;

  // Control logic, per operation, pJ.
  double e_sa1_pj = 0.30;
  double e_sa2_pj = 0.45;
  double e_va_pj = 0.30;
  double e_lookahead_pj = 0.55;  // 15b lookahead generation + wire

  // Static / non-data-dependent, per router, mW at nominal voltage.
  double p_clock_per_router_mw = 4.2;     // clock tree + pipeline registers
  double p_vc_state_per_router_mw = 1.9;  // VC bookkeeping (Sec 4.1)
  double p_leak_per_router_mw = 4.79;     // 76.7 mW / 16 routers

  double e_hop_pj(bool lowswing) const {
    return lowswing ? e_hop_lowswing_pj : e_hop_fullswing_pj;
  }
};

TechParams calibrated_tech45();
TechParams postlayout_tech45();
TechParams orion_tech45();

}  // namespace noc::power

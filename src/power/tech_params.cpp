#include "power/tech_params.hpp"

namespace noc::power {

TechParams calibrated_tech45() {
  TechParams t;
  t.name = "measured (calibrated to chip)";
  return t;  // defaults are the calibrated values
}

TechParams postlayout_tech45() {
  // Paper Sec 4.4: post-layout slightly under-estimates buffers and
  // arbitration logic, over-estimates clocking and datapath; total within
  // 6-13% of measurements.
  TechParams t = calibrated_tech45();
  t.name = "post-layout simulation";
  t.e_buffer_write_pj *= 0.90;
  t.e_buffer_read_pj *= 0.90;
  t.e_sa1_pj *= 0.88;
  t.e_sa2_pj *= 0.88;
  t.e_va_pj *= 0.88;
  t.e_lookahead_pj *= 0.92;
  t.e_hop_fullswing_pj *= 1.12;
  t.e_hop_lowswing_pj *= 1.12;
  t.p_clock_per_router_mw *= 1.15;
  t.p_vc_state_per_router_mw *= 0.95;
  t.p_leak_per_router_mw *= 0.90;
  return t;
}

TechParams orion_tech45() {
  // Paper Sec 4.4: ORION 2.0 over-estimates by 4.8-5.3x because its assumed
  // transistor sizes are far larger than the chip's; relative accuracy
  // between designs is preserved.
  TechParams t = calibrated_tech45();
  t.name = "ORION 2.0";
  t.e_buffer_write_pj *= 5.2;
  t.e_buffer_read_pj *= 5.2;
  t.e_sa1_pj *= 5.6;
  t.e_sa2_pj *= 5.6;
  t.e_va_pj *= 5.6;
  t.e_lookahead_pj *= 5.0;
  t.e_hop_fullswing_pj *= 4.7;
  t.e_hop_lowswing_pj *= 4.7;
  t.p_clock_per_router_mw *= 5.1;
  t.p_vc_state_per_router_mw *= 5.3;
  t.p_leak_per_router_mw *= 4.9;
  return t;
}

}  // namespace noc::power

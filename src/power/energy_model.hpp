#pragma once
// Event-count -> power conversion and the Fig 6 / Fig 8 breakdown
// categories: clocking (incl. leakage), router logic (allocators + VC
// bookkeeping + lookaheads), buffers, datapath (crossbar + links).

#include "noc/energy_events.hpp"
#include "power/tech_params.hpp"

namespace noc::power {

struct PowerBreakdown {
  double clock_mw = 0;
  double leakage_mw = 0;
  double vc_state_mw = 0;
  double allocators_mw = 0;  // mSA-I + mSA-II + VA
  double lookahead_mw = 0;
  double buffers_mw = 0;
  double datapath_mw = 0;  // crossbars + inter-router links + NIC links

  /// Fig 6 segment rollups.
  double clocking_segment_mw() const { return clock_mw + leakage_mw; }
  double router_logic_mw() const {
    return vc_state_mw + allocators_mw + lookahead_mw;
  }
  double logic_and_buffer_segment_mw() const {
    return router_logic_mw() + buffers_mw;
  }
  double total_mw() const {
    return clock_mw + leakage_mw + vc_state_mw + allocators_mw +
           lookahead_mw + buffers_mw + datapath_mw;
  }
};

/// Convert window-scoped event counts into average power.
/// `lowswing_datapath` selects the datapath energy set (configs A vs B-D of
/// Fig 6). `clock_ghz` scales pJ/cycle into mW.
PowerBreakdown compute_power(const EnergyCounters& events, int num_routers,
                             const TechParams& tech, bool lowswing_datapath,
                             double clock_ghz = 1.0);

/// Per-router power at a given point (divides by router count).
PowerBreakdown per_router(const PowerBreakdown& network, int num_routers);

/// Voltage-scaled power: the chip runs from 1.1 V and 0.8 V supplies
/// (Fig 2). Dynamic power scales as (V/1.1)^2, leakage roughly as
/// (V/1.1)^1.5 (subthreshold + DIBL), clocking as V^2 at the same
/// frequency. `clock_ghz` should be chosen within fmax_at_voltage().
PowerBreakdown compute_power_at_voltage(const EnergyCounters& events,
                                        int num_routers,
                                        const TechParams& tech,
                                        bool lowswing_datapath,
                                        double clock_ghz, double vdd);

/// Alpha-power-law frequency derate: the 1.04 GHz @ 1.1V router slows as
/// VDD drops (alpha ~ 1.3 at 45nm, Vth ~ 0.32V).
double fmax_at_voltage(double vdd, double fmax_nominal_ghz = 1.04,
                       double vdd_nominal = 1.1);

/// The theoretical power limit of Sec 4.1: clocking plus a full-swing
/// datapath doing exactly the useful traversals -- no buffers, no
/// allocators, no VC state (leakage excluded as the paper's limit is
/// dynamic + clocking).
double theoretical_power_limit_mw(const EnergyCounters& events,
                                  int num_routers, const TechParams& tech,
                                  double clock_ghz = 1.0);

}  // namespace noc::power

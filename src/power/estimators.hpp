#pragma once
// The three power-estimation families compared in the paper's Fig 8:
// ORION 2.0 (architectural), post-layout simulation, and the silicon
// measurement (played by the calibrated model). All consume the same
// simulator event counts, exactly as the paper drives all three with the
// same 653 Gb/s workload.

#include <string>
#include <vector>

#include "noc/energy_events.hpp"
#include "power/energy_model.hpp"
#include "power/orion.hpp"

namespace noc::power {

enum class Estimator { Orion, PostLayout, Measured };

const char* estimator_name(Estimator e);

PowerBreakdown estimate_power(Estimator which, const EnergyCounters& events,
                              int num_routers, bool lowswing_datapath,
                              double clock_ghz = 1.0);

/// Fig 8 row: one estimator applied to baseline and proposed event counts.
struct EstimateComparison {
  Estimator which;
  PowerBreakdown baseline;
  PowerBreakdown proposed;
  double relative_reduction() const {
    return 1.0 - proposed.total_mw() / baseline.total_mw();
  }
};

std::vector<EstimateComparison> compare_all_estimators(
    const EnergyCounters& baseline_events, bool baseline_lowswing,
    const EnergyCounters& proposed_events, bool proposed_lowswing,
    int num_routers, double clock_ghz = 1.0);

}  // namespace noc::power

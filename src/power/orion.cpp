#include "power/orion.hpp"

#include "common/assert.hpp"

namespace noc::power {

OrionModel::OrionModel(const OrionConfig& cfg) : cfg_(cfg) {
  NOC_EXPECTS(cfg.flit_bits > 0 && cfg.num_ports > 0);
}

double OrionModel::e_dyn_pj(double c_ff) const {
  // E = alpha * C * Vdd^2; fF * V^2 = fJ, /1000 -> pJ. The overdesign
  // factor folds in ORION's margined wire/decoder capacitance defaults.
  return cfg_.switching_activity * c_ff * cfg_.overdesign_factor * cfg_.vdd *
         cfg_.vdd / 1000.0;
}

double OrionModel::buffer_write_energy_pj() const {
  // Register-file style FIFO: per bit, write drivers + cell + wordline share.
  const double w_cell_um = 4.0 * cfg_.min_width_um * cfg_.transistor_size_factor;
  const double c_cell = cfg_.c_gate_ff_per_um * w_cell_um;
  const double c_wordline = 0.4 * cfg_.flit_bits;  // fF, wire across the row
  const double c_bit = c_cell + 0.6;               // bitline share per cell
  return e_dyn_pj(cfg_.flit_bits * c_bit + c_wordline);
}

double OrionModel::buffer_read_energy_pj() const {
  return 0.7 * buffer_write_energy_pj();  // no cell flip on read
}

double OrionModel::crossbar_energy_pj() const {
  // Matrix crossbar: input driver charges one horizontal wire spanning
  // num_ports outputs plus one vertical wire, per bit.
  const double wire_span_mm = 0.25;  // router-internal wire length
  const double c_h = cfg_.c_wire_ff_per_mm * wire_span_mm;
  const double c_v = cfg_.c_wire_ff_per_mm * wire_span_mm;
  const double w_drv_um =
      8.0 * cfg_.min_width_um * cfg_.transistor_size_factor;
  const double c_drv = cfg_.c_gate_ff_per_um * w_drv_um * cfg_.num_ports;
  return e_dyn_pj(cfg_.flit_bits * (c_h + c_v + c_drv) / 4.0);
}

double OrionModel::link_energy_pj() const {
  const double c_total = cfg_.c_wire_ff_per_mm * cfg_.link_mm;
  const double w_rep_um =
      16.0 * cfg_.min_width_um * cfg_.transistor_size_factor;
  const double c_rep = cfg_.c_gate_ff_per_um * w_rep_um;
  return e_dyn_pj(cfg_.flit_bits * (c_total + c_rep));
}

double OrionModel::arbiter_energy_pj() const {
  // Matrix arbiter: n^2 priority bits plus grant logic.
  const double n = cfg_.num_ports;
  const double w_um = 2.0 * cfg_.min_width_um * cfg_.transistor_size_factor;
  return e_dyn_pj(n * n * cfg_.c_gate_ff_per_um * w_um * 4.0);
}

double OrionModel::clock_power_per_router_mw() const {
  // Clock tree drives every pipeline register: ports x buffers x flit bits.
  const double regs =
      cfg_.num_ports * (cfg_.buffers_per_port + 2.0) * cfg_.flit_bits;
  const double c_per_reg =
      0.8 * cfg_.c_gate_ff_per_um * cfg_.min_width_um *
      cfg_.transistor_size_factor;
  // f * C * V^2; activity 1 for the clock.
  return regs * c_per_reg * cfg_.overdesign_factor * cfg_.vdd * cfg_.vdd *
         cfg_.clock_ghz / 1000.0;
}

double OrionModel::leakage_per_router_mw() const {
  const double widths_um =
      cfg_.num_ports *
      (cfg_.buffers_per_port * cfg_.flit_bits * 6.0 + 500.0) *
      cfg_.min_width_um * cfg_.transistor_size_factor;
  const double i_leak_na_per_um = 18.0;  // 45nm-ish
  return widths_um * i_leak_na_per_um * cfg_.overdesign_factor * cfg_.vdd *
         1e-6;
}

PowerBreakdown OrionModel::estimate(const EnergyCounters& events,
                                    int num_routers) const {
  NOC_EXPECTS(events.cycles > 0);
  const double cycles = static_cast<double>(events.cycles);
  auto rate_mw = [&](double count, double pj) {
    return count / cycles * pj * cfg_.clock_ghz;
  };
  PowerBreakdown p;
  p.clock_mw = clock_power_per_router_mw() * num_routers;
  p.leakage_mw = leakage_per_router_mw() * num_routers;
  p.vc_state_mw = 0.18 * clock_power_per_router_mw() * num_routers;
  p.allocators_mw = rate_mw(
      static_cast<double>(events.sa1_arbitrations + events.sa2_arbitrations +
                          events.vc_allocations),
      arbiter_energy_pj());
  p.lookahead_mw = rate_mw(static_cast<double>(events.lookaheads_sent),
                           arbiter_energy_pj() * 0.4);
  p.buffers_mw = rate_mw(static_cast<double>(events.buffer_writes),
                         buffer_write_energy_pj()) +
                 rate_mw(static_cast<double>(events.buffer_reads),
                         buffer_read_energy_pj());
  const double ejections =
      static_cast<double>(events.xbar_traversals - events.link_traversals);
  p.datapath_mw =
      rate_mw(static_cast<double>(events.xbar_traversals),
              crossbar_energy_pj()) +
      rate_mw(static_cast<double>(events.link_traversals), link_energy_pj()) +
      rate_mw(static_cast<double>(events.nic_link_traversals) + ejections,
              0.5 * link_energy_pj());
  return p;
}

}  // namespace noc::power

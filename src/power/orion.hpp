#pragma once
// ORION-2.0-style analytical router power model (paper Sec 4.4, ref [12]).
//
// Unlike tech_params.hpp's fitted constants, this model derives per-event
// energies from first principles the way architectural power models do:
// switched capacitance per component from transistor/wire geometry, then
// E = alpha * C * V^2. Its characteristic failure mode -- assumed device
// sizes several times larger than a tuned custom implementation -- is what
// produces the paper's ~5x absolute over-estimation while tracking relative
// differences, and we model the same mechanism explicitly via
// `transistor_size_factor`.

#include "noc/energy_events.hpp"
#include "power/energy_model.hpp"

namespace noc::power {

struct OrionConfig {
  // Microarchitecture (paper defaults).
  int flit_bits = 64;
  int num_ports = 5;
  int vcs_per_port = 6;
  int buffers_per_port = 10;
  double vdd = 1.1;
  double clock_ghz = 1.0;
  double link_mm = 1.0;

  // Process (45nm-ish defaults).
  double c_gate_ff_per_um = 1.0;   // gate cap per um of transistor width
  double c_wire_ff_per_mm = 230.0; // routed wire capacitance
  double min_width_um = 0.12;     // reference transistor width

  /// The sizing assumption that drives ORION's absolute error: how much
  /// wider ORION assumes devices are than the chip's custom circuits.
  double transistor_size_factor = 5.0;
  /// Stack-up of ORION's conservative defaults beyond raw device width:
  /// worst-case wire loads, decoder/precharge inclusion, margined clock
  /// trees. Together with the size factor this reproduces the paper's
  /// measured 4.8-5.3x absolute over-estimation (Sec 4.4) while leaving
  /// relative comparisons intact.
  double overdesign_factor = 6.6;

  double switching_activity = 0.5;  // PRBS-like data
};

class OrionModel {
 public:
  explicit OrionModel(const OrionConfig& cfg = {});

  // Derived per-event energies (pJ).
  double buffer_write_energy_pj() const;
  double buffer_read_energy_pj() const;
  double crossbar_energy_pj() const;   // one input->output traversal
  double link_energy_pj() const;       // one flit over link_mm
  double arbiter_energy_pj() const;    // one arbitration
  double clock_power_per_router_mw() const;
  double leakage_per_router_mw() const;

  /// Full network power from simulator event counts.
  PowerBreakdown estimate(const EnergyCounters& events, int num_routers) const;

  const OrionConfig& config() const { return cfg_; }

 private:
  double e_dyn_pj(double c_ff) const;  // alpha * C * V^2

  OrionConfig cfg_;
};

}  // namespace noc::power

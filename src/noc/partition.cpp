#include "noc/partition.hpp"

namespace noc {

SpanPartition::SpanPartition(const MeshGeometry& geom, int spans)
    : kx_(geom.kx()), ky_(geom.ky()) {
  NOC_EXPECTS(spans >= 1 && spans <= kx_);
  col_span_.resize(static_cast<size_t>(kx_));
  begin_col_.resize(static_cast<size_t>(spans) + 1);
  // Balanced split: span s owns columns [s*kx/spans, (s+1)*kx/spans).
  // Every span is non-empty (spans <= kx) and widths differ by at most one.
  for (int s = 0; s <= spans; ++s)
    begin_col_[static_cast<size_t>(s)] = s * kx_ / spans;
  for (int s = 0; s < spans; ++s)
    for (int x = begin_col_[static_cast<size_t>(s)];
         x < begin_col_[static_cast<size_t>(s) + 1]; ++x)
      col_span_[static_cast<size_t>(x)] = s;
}

int SpanPartition::clamp_spans(const MeshGeometry& geom, int requested) {
  if (requested < 1) return 1;
  return requested < geom.kx() ? requested : geom.kx();
}

std::vector<NodeId> SpanPartition::nodes_of(int s) const {
  const auto [x0, x1] = columns_of(s);
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<size_t>(x1 - x0) * static_cast<size_t>(ky_));
  for (int y = 0; y < ky_; ++y)
    for (int x = x0; x < x1; ++x) nodes.push_back(y * kx_ + x);
  return nodes;
}

}  // namespace noc

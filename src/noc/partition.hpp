#pragma once
// Column-span partition of a kx x ky mesh for intra-network parallel
// stepping (docs/PERF.md Layer 4).
//
// A span is a contiguous range of mesh columns; every router, NIC and
// intra-span channel belongs to exactly one span, and each span is stepped
// by exactly one worker per cycle. Because node ids are row-major
// (id = y * kx + x), a span's node set is id-strided, not contiguous --
// ownership is a function of the COLUMN, never the raw id.
//
// Why columns are the right cut: every within-cycle wake edge in the
// simulator is intra-node (the latency-0 NIC->router lookahead), and every
// cross-node interaction travels a latency-1 channel, becoming visible only
// at the next cycle's begin_cycle. North/South channels stay inside a
// column, so the only channels whose endpoints can land in different spans
// are the East/West pairs crossing a span boundary -- those become the
// deferred (double-buffered) synchronization edges of the two-phase barrier
// schedule in Network::step. crosses() is the exact classification the
// Network uses to mark them.
//
// Fault schedules commute with this decomposition (docs/FAULTS.md): the
// Network applies every FaultPlan event -- and the resulting escape-tree
// recompute plus router notifications -- on the MAIN thread at the top of
// step(), before any span worker runs. Workers then read the FaultState as
// immutable shared state for the rest of the cycle, so a faulted parallel
// step sees exactly the topology a faulted serial step sees.

#include <utility>
#include <vector>

#include "noc/geometry.hpp"

namespace noc {

class SpanPartition {
 public:
  /// Empty partition (serial network: no spans).
  SpanPartition() = default;

  /// Split `geom` into `spans` contiguous column ranges, balanced to within
  /// one column (uneven kx / spans leaves the earlier spans one column
  /// wider). Requires 1 <= spans <= geom.kx() -- clamp requests through
  /// clamp_spans() first.
  SpanPartition(const MeshGeometry& geom, int spans);

  /// Largest useful span count for a request: one worker per column at
  /// most, never less than one.
  static int clamp_spans(const MeshGeometry& geom, int requested);

  int num_spans() const { return static_cast<int>(begin_col_.size()) - 1; }
  int kx() const { return kx_; }
  int ky() const { return ky_; }

  /// Column range [first, second) owned by span `s`.
  std::pair<int, int> columns_of(int s) const {
    NOC_EXPECTS(s >= 0 && s < num_spans());
    return {begin_col_[static_cast<size_t>(s)],
            begin_col_[static_cast<size_t>(s) + 1]};
  }

  int span_of_column(int x) const {
    NOC_EXPECTS(x >= 0 && x < kx_);
    return col_span_[static_cast<size_t>(x)];
  }

  /// Owner span of a node (row-major ids: column = id mod kx).
  int span_of_node(NodeId node) const { return span_of_column(node % kx_); }

  /// Node ids owned by span `s`, ascending (construction-time helper; the
  /// ascending order is what keeps per-span passes serial-equivalent).
  std::vector<NodeId> nodes_of(int s) const;

  /// True when a channel between adjacent routers `a` and `b` is a
  /// cross-span synchronization edge. Only East/West neighbours can cross.
  bool crosses(NodeId a, NodeId b) const {
    return span_of_node(a) != span_of_node(b);
  }

 private:
  int kx_ = 0;
  int ky_ = 0;
  std::vector<int> col_span_;   // column -> span
  std::vector<int> begin_col_;  // span -> first column; size num_spans + 1
};

}  // namespace noc

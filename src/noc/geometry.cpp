#include "noc/geometry.hpp"

#include <cmath>
#include <cstdlib>

namespace noc {

MeshGeometry::MeshGeometry(int k) : k_(k) {
  NOC_EXPECTS(k >= 2 && k <= kMaxMeshRadix);
}

NodeId MeshGeometry::id(Coord c) const {
  NOC_EXPECTS(valid(c));
  return c.y * k_ + c.x;
}

Coord MeshGeometry::coord(NodeId n) const {
  NOC_EXPECTS(n >= 0 && n < num_nodes());
  return Coord{n % k_, n / k_};
}

bool MeshGeometry::valid(Coord c) const {
  return c.x >= 0 && c.x < k_ && c.y >= 0 && c.y < k_;
}

int MeshGeometry::manhattan(NodeId a, NodeId b) const {
  const Coord ca = coord(a), cb = coord(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

int MeshGeometry::furthest_distance(NodeId src) const {
  const Coord c = coord(src);
  const int dx = std::max(c.x, k_ - 1 - c.x);
  const int dy = std::max(c.y, k_ - 1 - c.y);
  return dx + dy;
}

DestMask MeshGeometry::all_nodes_mask() const {
  return DestMask::first_n(num_nodes());
}

std::vector<NodeId> MeshGeometry::nodes_in(DestMask mask) const {
  std::vector<NodeId> out;
  mask.for_each([&](int n) {
    if (n < num_nodes()) out.push_back(n);
  });
  return out;
}

double MeshGeometry::exact_avg_unicast_hops() const {
  long total = 0, pairs = 0;
  for (NodeId a = 0; a < num_nodes(); ++a)
    for (NodeId b = 0; b < num_nodes(); ++b) {
      if (a == b) continue;
      total += manhattan(a, b);
      ++pairs;
    }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

double MeshGeometry::exact_avg_broadcast_hops() const {
  long total = 0;
  for (NodeId s = 0; s < num_nodes(); ++s) total += furthest_distance(s);
  return static_cast<double>(total) / num_nodes();
}

}  // namespace noc

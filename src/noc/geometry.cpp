#include "noc/geometry.hpp"

#include <cmath>
#include <cstdlib>

namespace noc {

// The k <= kMaxMeshRadix contract needs no separate check: for a square
// mesh it is exactly the delegated capacity bound (16^2 = kCapacity).
MeshGeometry::MeshGeometry(int k) : MeshGeometry(k, k) {}

MeshGeometry::MeshGeometry(int kx, int ky) : kx_(kx), ky_(ky) {
  NOC_EXPECTS(kx >= 2 && ky >= 2);
  // The mask datapath addresses one bit per node: any shape fits as long
  // as the node count does (a 4x64 strip is as legal as 16x16).
  NOC_EXPECTS(kx * ky <= DestMask::kCapacity);
}

NodeId MeshGeometry::id(Coord c) const {
  NOC_EXPECTS(valid(c));
  return c.y * kx_ + c.x;
}

Coord MeshGeometry::coord(NodeId n) const {
  NOC_EXPECTS(n >= 0 && n < num_nodes());
  return Coord{n % kx_, n / kx_};
}

bool MeshGeometry::valid(Coord c) const {
  return c.x >= 0 && c.x < kx_ && c.y >= 0 && c.y < ky_;
}

int MeshGeometry::manhattan(NodeId a, NodeId b) const {
  const Coord ca = coord(a), cb = coord(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

int MeshGeometry::furthest_distance(NodeId src) const {
  const Coord c = coord(src);
  const int dx = std::max(c.x, kx_ - 1 - c.x);
  const int dy = std::max(c.y, ky_ - 1 - c.y);
  return dx + dy;
}

DestMask MeshGeometry::all_nodes_mask() const {
  return DestMask::first_n(num_nodes());
}

std::vector<NodeId> MeshGeometry::nodes_in(DestMask mask) const {
  std::vector<NodeId> out;
  mask.for_each([&](int n) {
    if (n < num_nodes()) out.push_back(n);
  });
  return out;
}

double MeshGeometry::exact_avg_unicast_hops() const {
  long total = 0, pairs = 0;
  for (NodeId a = 0; a < num_nodes(); ++a)
    for (NodeId b = 0; b < num_nodes(); ++b) {
      if (a == b) continue;
      total += manhattan(a, b);
      ++pairs;
    }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

double MeshGeometry::exact_avg_broadcast_hops() const {
  long total = 0;
  for (NodeId s = 0; s < num_nodes(); ++s) total += furthest_distance(s);
  return static_cast<double>(total) / num_nodes();
}

}  // namespace noc

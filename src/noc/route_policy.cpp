#include "noc/route_policy.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace noc {

const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::XY: return "xy";
    case RoutePolicy::YX: return "yx";
    case RoutePolicy::O1Turn: return "o1turn";
    case RoutePolicy::MinimalAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<RoutePolicy> parse_route_policy(std::string_view name) {
  if (name == "xy") return RoutePolicy::XY;
  if (name == "yx") return RoutePolicy::YX;
  if (name == "o1turn") return RoutePolicy::O1Turn;
  if (name == "adaptive" || name == "minimal-adaptive")
    return RoutePolicy::MinimalAdaptive;
  return std::nullopt;
}

bool route_policy_uses_lanes(RoutePolicy p) {
  return p == RoutePolicy::O1Turn || p == RoutePolicy::MinimalAdaptive;
}

RouteClass route_class_for_packet(RoutePolicy policy, const Packet& pkt) {
  const bool multicast = pkt.dest_mask.count() > 1;
  switch (policy) {
    case RoutePolicy::XY:
      return RouteClass::XY;
    case RoutePolicy::YX:
      return RouteClass::YX;
    case RoutePolicy::O1Turn:
      // Multicasts stay on the paper's XY tree, inside the XY subnetwork.
      if (multicast) return RouteClass::XY;
      // Deterministic per-packet coin. Packet ids carry the per-source
      // counter in their low bits (make_packet_id), so the id's parity
      // alternates a source's unicasts XY/YX exactly -- the balanced split
      // that minimizes per-lane burstiness (an iid hash coin costs a few
      // percent of uniform saturation to lane-load variance). The bit-56+
      // XOR folds in the copy index of NIC-duplicated broadcast copies,
      // whose low bits are shared. A pure function of the packet, so the
      // choice cannot depend on thread scheduling.
      return ((pkt.id ^ (pkt.id >> 56)) & 1) != 0 ? RouteClass::YX
                                                  : RouteClass::XY;
    case RoutePolicy::MinimalAdaptive:
      return multicast ? RouteClass::Escape : RouteClass::Adaptive;
  }
  return RouteClass::XY;
}

VcLane route_class_lane(RoutePolicy policy, RouteClass rc, PortDir out) {
  if (out == PortDir::Local) return VcLane::Any;  // ejection: terminal sink
  switch (policy) {
    case RoutePolicy::XY:
    case RoutePolicy::YX:
      // Single-order policies: every VC already carries dimension-ordered
      // traffic, so the whole pool is one deadlock-free class.
      return VcLane::Any;
    case RoutePolicy::O1Turn:
      return rc == RouteClass::YX ? VcLane::Free : VcLane::Ordered;
    case RoutePolicy::MinimalAdaptive:
      return rc == RouteClass::Escape ? VcLane::Ordered : VcLane::Free;
  }
  return VcLane::Any;
}

RouteSet class_tree_route(RouteClass rc, const MeshGeometry& geom,
                          NodeId here, DestMask dests) {
  NOC_EXPECTS(rc != RouteClass::Adaptive);
  return rc == RouteClass::YX ? yx_tree_route(geom, here, dests)
                              : xy_tree_route(geom, here, dests);
}

PortChoices productive_ports(const MeshGeometry& geom, NodeId here,
                             NodeId dest) {
  PortChoices out;
  const Coord c = geom.coord(here);
  const Coord d = geom.coord(dest);
  if (d.x > c.x)
    out.push_back(PortDir::East);
  else if (d.x < c.x)
    out.push_back(PortDir::West);
  if (d.y > c.y)
    out.push_back(PortDir::North);
  else if (d.y < c.y)
    out.push_back(PortDir::South);
  return out;
}

PortDir escape_port(const MeshGeometry& geom, NodeId here, NodeId dest) {
  // The X-before-Y rule lives once, in productive_ports' ordering.
  const PortChoices ports = productive_ports(geom, here, dest);
  return ports.empty() ? PortDir::Local : ports[0];
}

}  // namespace noc

#pragma once
// Routing: dimension-ordered XY for unicasts and the deadlock-free
// dimension-ordered XY-tree for multicasts/broadcasts (paper Sec 3.3).
//
// The XY-tree partitions a flit's destination set by the current router
// position: destinations in columns east of the router leave East,
// west leave West; destinations in this column leave North/South by row;
// this node itself ejects Local. Because X is always resolved before Y the
// channel-dependency graph is acyclic (same argument as plain XY), and
// because partitions are disjoint no destination is covered twice.
//
// These trees assume a pristine mesh: they never consult the fault state,
// so on a degraded topology a dimension-ordered path that crosses a dead
// link simply stalls until revival. Fault-aware routing (surviving-topology
// escape trees, drop-at-the-door for unreachable destinations) lives in
// noc/fault.hpp and applies only to MinimalAdaptive -- see docs/FAULTS.md
// and docs/ROUTING.md "Escape routing on a faulted mesh".

#include <array>
#include <cstdint>

#include "common/bit_mask.hpp"
#include "noc/geometry.hpp"

namespace noc {

/// Router port directions. Local is the NIC port.
enum class PortDir : uint8_t { North = 0, East = 1, South = 2, West = 3, Local = 4 };
constexpr int kNumPorts = 5;

/// One bit per router port (bit i = port_dir(i)): claim sets, per-port wake
/// bits, branch request vectors (docs/PERF.md Layer 5).
using PortMask = BitMask<kNumPorts>;

inline int port_index(PortDir d) { return static_cast<int>(d); }
inline PortDir port_dir(int i) { return static_cast<PortDir>(i); }
const char* port_name(PortDir d);

/// Direction a flit ENTERS the neighbor when leaving through `out`.
PortDir opposite(PortDir out);

/// Neighbor coordinate one hop through `out` (North = +y).
Coord neighbor_coord(Coord c, PortDir out);

/// Result of route computation: the destination partition assigned to each
/// output port (0 = port unused). Index with port_index().
struct RouteSet {
  std::array<DestMask, kNumPorts> port_dests{};

  DestMask& operator[](PortDir d) { return port_dests[port_index(d)]; }
  DestMask operator[](PortDir d) const { return port_dests[port_index(d)]; }

  /// 5-bit output-port request vector as in the paper's mSA-I.
  uint8_t request_vector() const;
  int fanout() const;  // number of requested ports
};

/// Compute the XY-tree route for `dests` at router `here`. Works for
/// unicast (single-bit mask) as plain XY routing.
RouteSet xy_tree_route(const MeshGeometry& geom, NodeId here, DestMask dests);

/// YX variant (Y resolved first): the mirror-image deadlock-free tree.
/// The paper blames part of its throughput gap on "XY routing imbalance";
/// this exists to quantify that claim (and carries O1TURN's YX
/// subnetwork; the policy layer lives in noc/route_policy.hpp).
RouteSet yx_tree_route(const MeshGeometry& geom, NodeId here, DestMask dests);

/// Plain XY next-hop for a unicast destination (convenience wrapper).
PortDir xy_route(const MeshGeometry& geom, NodeId here, NodeId dest);

}  // namespace noc

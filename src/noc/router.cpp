#include "noc/router.hpp"

#include <algorithm>
#include <bit>
#include <climits>

namespace noc {

Router::Router(NodeId node, const MeshGeometry& geom, const RouterConfig& cfg,
               EnergyCounters* energy, Metrics* metrics)
    : node_(node), geom_(geom), cfg_(cfg), energy_(energy), metrics_(metrics) {
  // Lane-splitting policies partition each message class's VCs; a class
  // whose Free lane would be empty could never allocate for half its
  // traffic -- reject the config here rather than deadlock silently.
  NOC_EXPECTS(!route_policy_uses_lanes(cfg.routing) ||
              cfg.vc.lanes_available());
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    ip.vcs.resize(static_cast<size_t>(cfg.vc.total_vcs()));
    for (int v = 0; v < cfg.vc.total_vcs(); ++v)
      ip.vcs[static_cast<size_t>(v)].configure(cfg.vc.depth_of_vc(v));
    ip.sa1 = RoundRobinArbiter(cfg.vc.total_vcs());
    auto& op = out_[static_cast<size_t>(p)];
    op.ds.configure(cfg.vc);
    op.sa2 = MatrixArbiter(kNumPorts);
  }
}

void Router::connect(PortDir port, const PortChannels& ch) {
  auto& ip = in_[static_cast<size_t>(port_index(port))];
  ip.ch = ch;
  ip.connected = true;
}

bool Router::idle() const {
  // busy_ covers every buffered flit: a VC's FIFO is only non-empty while
  // its packet holds the VC (push requires busy, close requires empty).
  if (busy_.any()) return false;
  for (const auto& ip : in_)
    if (ip.st.valid || ip.bypass.valid || ip.stage2_vc >= 0) return false;
  for (const auto& op : out_)
    if (op.lt.has_value()) return false;
  return true;
}

PortMask Router::internal_work_ports() const {
  // Collapse each port's 16-bit busy slice to one bit straight off the
  // words (the generic extract() straddle logic is overkill for the fixed
  // vc_bit layout), then consult the latch state only for non-busy ports --
  // at saturation most ports are busy, skipping all ten struct loads.
  static_assert(kMaxTotalVcs == 16 && kNumPorts == 5,
                "slice constants below assume the vc_bit layout");
  const uint64_t w0 = busy_.word(0);
  uint64_t bits = 0;
  if ((w0 & 0x000000000000FFFFull) != 0) bits |= 1u << 0;
  if ((w0 & 0x00000000FFFF0000ull) != 0) bits |= 1u << 1;
  if ((w0 & 0x0000FFFF00000000ull) != 0) bits |= 1u << 2;
  if ((w0 & 0xFFFF000000000000ull) != 0) bits |= 1u << 3;
  if ((busy_.word(1) & 0xFFFFull) != 0) bits |= 1u << 4;
  PortMask m(bits);
  for (int p = 0; p < kNumPorts; ++p) {
    if (m.test(p)) continue;
    const auto& ip = in_[static_cast<size_t>(p)];
    if (ip.st.valid || ip.bypass.valid || ip.stage2_vc >= 0 ||
        out_[static_cast<size_t>(p)].lt.has_value())
      m.set(p);
  }
  return m;
}

void Router::dump_state(FILE* out) const {
  if (idle()) return;
  std::fprintf(out, "router %d:\n", node_);
  for (int p = 0; p < kNumPorts; ++p) {
    const auto& ip = in_[static_cast<size_t>(p)];
    for (int v = 0; v < cfg_.vc.total_vcs(); ++v) {
      const auto& ivc = ip.vcs[static_cast<size_t>(v)];
      if (!ivc.busy()) continue;
      std::fprintf(out, "  in[%s] vc%d occ=%d front_seq=%d acc=%d/%d:",
                   port_name(port_dir(p)), v, ivc.occupancy(), ivc.front_seq(),
                   ivc.accepted_flits, ivc.packet_len);
      for (const auto& b : ivc.branches())
        std::fprintf(out, " [%s seq=%d dsvc=%d%s cred=%d]",
                     port_name(b.out), b.next_seq, b.ds_vc,
                     b.tail_sent ? " done" : "",
                     b.ds_vc >= 0
                         ? out_[static_cast<size_t>(port_index(b.out))].ds.credits(
                               b.ds_vc)
                         : -1);
      std::fprintf(out, "%s\n", ip.stage2_vc == v ? "  <stage2>" : "");
    }
    if (ip.st.valid)
      std::fprintf(out, "  in[%s] st_latch vc%d seq%d\n",
                   port_name(port_dir(p)), ip.st.vc, ip.st.seq);
    if (ip.bypass.valid)
      std::fprintf(out, "  in[%s] bypass vc%d seq%d\n",
                   port_name(port_dir(p)), ip.bypass.vc, ip.bypass.seq);
  }
}

void Router::tick(Cycle now) {
  // Port-gated sweep set: carried-over work plus this cycle's deliveries.
  // Every phase below only ever ACTS on a port in this set -- an excluded
  // port has no arrivals (its channels' wake hooks would have set its bit),
  // no latched state, and no busy VC, so each phase's body is a no-op for
  // it. Skipping is therefore pure scheduling; per-policy equivalence
  // tests pin the bit-identity (tests/test_gating_equivalence.cpp).
  PortMask active = PortMask::first_n(kNumPorts);
  if (port_wake_armed_) {
    active = internal_work_ports();
    active |= wake_ports_;
    // All wakes for this cycle fired before the router pass (channel sweep
    // and latency-0 NIC lookaheads during injection), so the snapshot is
    // complete and the bits can be retired now.
    wake_ports_.clear_all();
  }
  apply_credits(now, active);
  phase_st_and_bw(now, active);
  fault_tick(now);
  // A degraded router's allocators run at half rate (docs/FAULTS.md): odd
  // cycles skip both switch allocation and mSA-I/VA. Credits and the ST
  // stage still run -- flits granted on even cycles drain normally, and
  // lookaheads ignored this cycle are harmless (their flit arrives next
  // cycle and takes the buffered path).
  const bool throttled =
      faults_ != nullptr && faults_->degraded(node_) && (now & 1) != 0;
  if (!throttled) {
    phase_sa2(now, active);
    phase_sa1_va(now, active);
  }
  if (energy_) energy_->vc_active_cycles += busy_.count();
}

void Router::apply_credits(Cycle, const PortMask& active) {
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    if (!active.test(p)) continue;
    if (!ip.connected || ip.ch.credit_in == nullptr) continue;
    for (const Credit& c : ip.ch.credit_in->arrivals()) {
      auto& ds = out_[static_cast<size_t>(p)].ds;
      if (c.slot) ds.return_credit(c.vc);
      if (c.vc_free) ds.release_vc(c.vc);
    }
  }
}

RouteSet Router::route_head(int in_port, const Flit& head,
                            DestMask* drop) const {
  *drop = DestMask{};
  if (head.rc == RouteClass::Adaptive) {
    // Adaptive packets are unicasts by construction
    // (route_class_for_packet); the hop decision is made from live credit
    // state and revisited by VA on every retry until a VC is granted.
    NOC_ASSERT(head.branch_mask.count() == 1);
    const NodeId dest = head.branch_mask.lowest();
    RouteSet rs;
    if (faults_ != nullptr && dest != node_ &&
        !faults_->escape_reachable(node_, dest)) {
      // No deadlock-free path can be guaranteed: counted drop, not a hang.
      *drop = head.branch_mask;
      return rs;
    }
    const PortDir out =
        dest == node_ ? PortDir::Local : adaptive_port_choice(dest, head.mc);
    rs[out] = head.branch_mask;
    return rs;
  }
  if (faults_ != nullptr && head.rc == RouteClass::Escape) {
    // Fault-mode escape: the up*/down* tree of the surviving topology.
    RouteSet rs = faults_->escape_tree_route(node_, head.branch_mask, drop);
    // Down-phase constraint (docs/ROUTING.md): a packet that arrived on a
    // down-class hop (via the South or West INPUT port, i.e. moving away
    // from the root) must never turn back up (out South/West). Within one
    // epoch tree paths are up* down* and this never fires; across a
    // topology change it converts the offending destinations into counted
    // drops instead of risking a down->up dependency cycle.
    if (in_port == port_index(PortDir::South) ||
        in_port == port_index(PortDir::West)) {
      for (const PortDir up : {PortDir::South, PortDir::West}) {
        DestMask& m = rs[up];
        if (m.none()) continue;
        *drop |= m;
        m = DestMask{};
      }
    }
    return rs;
  }
  return class_tree_route(head.rc, geom_, node_, head.branch_mask);
}

PortDir Router::adaptive_port_choice(NodeId dest, MsgClass mc) const {
  const PortChoices ports = productive_ports(geom_, node_, dest);
  NOC_ASSERT(!ports.empty());
  bool found = false;
  PortDir best = ports[0];
  int best_key = -1;
  for (const PortDir p : ports) {
    // Dead output ports drop out of the productive set (docs/FAULTS.md).
    if (faults_ != nullptr && faults_->port_dead(node_, p)) continue;
    found = true;
    const auto& ds = out_[static_cast<size_t>(port_index(p))].ds;
    // Free VCs weigh above credit slack (a port without a free VC cannot
    // accept a new packet no matter how empty its buffers; the actionable
    // mask relies on a free-VC port always outranking a VC-less one); the
    // strict > keeps the X-productive port on ties, so a congestion-free
    // mesh degenerates to plain XY.
    static_assert(kMaxVcDepth * kMaxTotalVcs < 1024,
                  "free-VC weight must dominate any possible credit sum");
    const int key = ds.free_vc_count(mc, VcLane::Free) * 1024 +
                    ds.lane_credits(mc, VcLane::Free);
    if (key > best_key) {
      best_key = key;
      best = p;
    }
  }
  // Every productive port dead: aim at the escape-tree hop so the bypass /
  // actionable checks look at the only port that can still make progress.
  // Callers guarantee escape_reachable (route_head / VA convert the rest
  // into drops before asking for a port).
  if (!found) return faults_->escape_next(node_, dest);
  return best;
}

bool Router::branch_could_get_vc(RouteClass rc, MsgClass mc,
                                 const Branch& b) const {
  if (b.drop) return false;  // never allocates; the fault sweep drains it
  if (rc == RouteClass::Adaptive && b.out != PortDir::Local) {
    const NodeId dest = b.dests.lowest();
    // Destination fell off the escape tree mid-flight: VA's "allocation"
    // is the conversion into a counted drop -- actionable work, so mSA-I
    // must be allowed to select the packet.
    if (faults_ != nullptr && !faults_->escape_reachable(node_, dest))
      return true;
    for (const PortDir p : productive_ports(geom_, node_, dest)) {
      if (faults_ != nullptr && faults_->port_dead(node_, p)) continue;
      if (out_[static_cast<size_t>(port_index(p))].ds.has_free_vc(
              mc, VcLane::Free))
        return true;
    }
    const PortDir esc = faults_ != nullptr ? faults_->escape_next(node_, dest)
                                           : escape_port(geom_, node_, dest);
    return out_[static_cast<size_t>(port_index(esc))].ds.has_free_vc(
        mc, VcLane::Ordered);
  }
  // A dead output port accepts no NEW packets (in-flight branches keep
  // their VC and drain; this predicate only guards fresh allocation).
  if (faults_ != nullptr && b.out != PortDir::Local &&
      faults_->port_dead(node_, b.out))
    return false;
  return out_[static_cast<size_t>(port_index(b.out))].ds.has_free_vc(
      mc, branch_lane(rc, b.out));
}

RouteClass Router::downstream_rc(const Flit& f, const GrantOut& go) const {
  if (cfg_.routing == RoutePolicy::MinimalAdaptive &&
      f.rc == RouteClass::Adaptive && go.out != PortDir::Local &&
      cfg_.vc.lane_of_vc(go.ds_vc) == VcLane::Ordered)
    return RouteClass::Escape;
  return f.rc;
}

void Router::open_packet_state(Cycle now, int port, const Flit& head) {
  NOC_EXPECTS(is_head(head.type));
  DestMask dropped;
  const RouteSet rs = route_head(port, head, &dropped);
  BranchList& branches = open_branches_;  // persistent scratch, see router.hpp
  branches.clear();
  for (int o = 0; o < kNumPorts; ++o) {
    const DestMask& m = rs.port_dests[static_cast<size_t>(o)];
    if (m.none()) continue;
    Branch b;
    b.out = port_dir(o);
    b.dests = m;
    branches.push_back(b);
  }
  if (dropped.any()) {
    // Unreachable destinations (docs/FAULTS.md): one drop branch drains
    // the shared FIFO for them and counts the lost deliveries at its tail.
    Branch b;
    b.dests = dropped;
    b.drop = true;
    branches.push_back(b);
    ++open_drop_branches_;
  }
  NOC_ASSERT(!branches.empty());
  if (!cfg_.multicast) NOC_ASSERT(branches.size() == 1);
  in_[static_cast<size_t>(port)].vcs[static_cast<size_t>(head.vc)].open_packet(
      head, branches);
  busy_.set(vc_bit(port, head.vc));
  if (telemetry_ != nullptr && telemetry_->tracing(head.logical_id))
    telemetry_->trace(TraceEventType::HopBegin, now, head.logical_id, node_);
}

void Router::forward_copy(Cycle now, const Flit& f, const GrantOut& go) {
  Flit copy = f;
  copy.branch_mask = go.dests;
  copy.vc = go.ds_vc;
  copy.rc = downstream_rc(f, go);
  if (energy_) ++energy_->xbar_traversals;
  auto* out_ch = in_[static_cast<size_t>(port_index(go.out))].ch.flit_out;
  NOC_ASSERT(out_ch != nullptr);
  if (cfg_.pipeline == PipelineMode::FourStage) {
    auto& lt = out_[static_cast<size_t>(port_index(go.out))].lt;
    NOC_ASSERT(!lt.has_value());
    lt = copy;
    return;
  }
  // Fused ST+LT: the copy is on the wire this cycle.
  if (energy_) {
    if (go.out == PortDir::Local)
      ++energy_->nic_link_traversals;
    else
      ++energy_->link_traversals;
  }
  if (metrics_) metrics_->on_link_flit(node_, go.out);
  out_ch->send(now, copy);
}

void Router::send_lookahead(Cycle now, const Flit& f, const GrantOut& go) {
  if (!cfg_.has_bypass() || go.out == PortDir::Local) return;
  auto* la_ch = in_[static_cast<size_t>(port_index(go.out))].ch.la_out;
  if (la_ch == nullptr) return;
  // Aggregate-init so the flit is copy-constructed from f directly rather
  // than default-constructed and then overwritten.
  Lookahead la{port_index(opposite(go.out)), f};
  la.flit.branch_mask = go.dests;
  la.flit.vc = go.ds_vc;
  la.flit.rc = downstream_rc(f, go);
  la_ch->send(now, la);
  if (energy_) ++energy_->lookaheads_sent;
}

void Router::send_credit_upstream(Cycle now, int port, int vc, bool vc_free) {
  auto* ch = in_[static_cast<size_t>(port)].ch.credit_out;
  NOC_ASSERT(ch != nullptr);
  Credit c;
  c.vc = vc;
  c.slot = true;
  c.vc_free = vc_free;
  ch->send(now, c);
}

int Router::serviceable_seq(const InputVc& ivc) const {
  int s = INT_MAX;
  for (const auto& b : ivc.branches()) {
    if (b.tail_sent || b.ds_vc < 0) continue;
    if (!ivc.has_seq(b.next_seq)) continue;
    if (!out_[static_cast<size_t>(port_index(b.out))].ds.has_credit(b.ds_vc))
      continue;
    s = std::min(s, b.next_seq);
  }
  return s;
}

void Router::advance_branch(Branch& b, const Flit& f) {
  NOC_ASSERT(b.next_seq == f.seq);
  ++b.next_seq;
  if (is_tail(f.type)) b.tail_sent = true;
}

void Router::retire_sent_flits(Cycle now, int port, int vc) {
  auto& ivc = in_[static_cast<size_t>(port)].vcs[static_cast<size_t>(vc)];
  if (!ivc.busy()) return;
  while (!ivc.empty()) {
    const int fs = ivc.front_seq();
    // Fully sent iff every unfinished branch has moved past it, and every
    // finished branch finished at or beyond it (tail_sent implies so).
    bool fully_sent = true;
    for (const auto& b : ivc.branches())
      if (!b.tail_sent && b.next_seq <= fs) fully_sent = false;
    if (!fully_sent) break;
    const Flit f = ivc.pop_front();
    const bool last = is_tail(f.type) && ivc.all_branches_done();
    send_credit_upstream(now, port, vc, last);
  }
  if (ivc.empty() && ivc.all_branches_done()) {
    if (telemetry_ != nullptr && telemetry_->tracing(ivc.logical()))
      telemetry_->trace(TraceEventType::HopEnd, now, ivc.logical(), node_);
    ivc.close_packet();
    busy_.clear(vc_bit(port, vc));
  }
}

void Router::phase_st_and_bw(Cycle now, const PortMask& active) {
  // LT stage of the FourStage pipeline: drain last cycle's ST results.
  if (cfg_.pipeline == PipelineMode::FourStage) {
    for (int o = 0; o < kNumPorts; ++o) {
      auto& op = out_[static_cast<size_t>(o)];
      if (!active.test(o)) continue;  // pending LT implies membership
      if (!op.lt.has_value()) continue;
      auto* ch = in_[static_cast<size_t>(o)].ch.flit_out;
      NOC_ASSERT(ch != nullptr);
      if (energy_) {
        if (port_dir(o) == PortDir::Local)
          ++energy_->nic_link_traversals;
        else
          ++energy_->link_traversals;
      }
      if (metrics_) metrics_->on_link_flit(node_, port_dir(o));
      ch->send(now, *op.lt);
      op.lt.reset();
    }
  }

  // ST for buffered flits granted in last cycle's mSA-II. Runs before the
  // arrival handling below so that a departing flit frees its buffer slot in
  // the same cycle a new flit lands (read-before-write register semantics);
  // the credit protocol sizes occupancy assuming exactly this.
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    if (!active.test(p) || !ip.st.valid) continue;
    const int vcid = ip.st.vc;
    auto& ivc = ip.vcs[static_cast<size_t>(vcid)];
    // Safe to borrow: forward_copy only sends downstream, and the pops in
    // retire_sent_flits happen after the loop.
    const Flit& f = ivc.flit_at_seq(ip.st.seq);
    if (energy_) ++energy_->buffer_reads;
    for (const auto& go : ip.st.outs) forward_copy(now, f, go);
    ip.st.valid = false;  // in-place: a fresh StLatch would re-run the
    ip.st.outs.clear();   // GrantList constructors (see granted_scratch_)
    retire_sent_flits(now, p, vcid);
  }

  // Arriving flits: bypass or buffer-write. A skipped port has no arrival
  // (the flit channel's wake hook carries this port's bit).
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    if (!active.test(p)) continue;
    if (!ip.connected || ip.ch.flit_in == nullptr) continue;
    const auto& arrivals = ip.ch.flit_in->arrivals();
    NOC_ASSERT(arrivals.size() <= 1);  // one flit per link per cycle
    if (arrivals.empty()) {
      NOC_ASSERT(!ip.bypass.valid);  // a lookahead always precedes its flit
      continue;
    }
    const Flit& f = arrivals.front();
    NOC_ASSERT(f.vc >= 0 && f.vc < cfg_.vc.total_vcs());
    auto& ivc = ip.vcs[static_cast<size_t>(f.vc)];

    if (ip.bypass.valid) {
      NOC_ASSERT(ip.bypass.vc == f.vc && ip.bypass.seq == f.seq);
      for (const auto& go : ip.bypass.outs) forward_copy(now, f, go);
      ++ivc.accepted_flits;
      if (ip.bypass.full) {
        if (energy_) ++energy_->bypasses;
        const bool last = is_tail(f.type) && ivc.all_branches_done();
        send_credit_upstream(now, p, f.vc, last);
        if (ivc.empty() && ivc.all_branches_done()) {
          if (telemetry_ != nullptr && telemetry_->tracing(ivc.logical()))
            telemetry_->trace(TraceEventType::HopEnd, now, ivc.logical(),
                              node_);
          ivc.close_packet();
          busy_.clear(vc_bit(p, f.vc));
        }
      } else {
        // Partial bypass: the flit stays buffered for the remaining branches.
        if (energy_) {
          ++energy_->partial_bypasses;
          ++energy_->buffer_writes;
        }
        ivc.push(f);
      }
      ip.bypass.valid = false;
      ip.bypass.outs.clear();
      continue;
    }

    // Buffered path: BW (stage 1 action).
    if (is_head(f.type) && !ivc.busy()) open_packet_state(now, p, f);
    NOC_ASSERT(ivc.busy());
    ivc.push(f);
    ++ivc.accepted_flits;
    if (energy_) {
      ++energy_->buffer_writes;
      ++energy_->buffered_hops;
    }
  }
}

void Router::phase_sa2(Cycle now, const PortMask& active) {
  std::array<bool, kNumPorts> out_claimed{};
  std::array<bool, kNumPorts> in_claimed{};

  if (cfg_.has_bypass() && cfg_.lookahead_priority) {
    process_lookaheads(now, active, out_claimed, in_claimed);
    arbitrate_buffered(now, out_claimed, in_claimed);
  } else if (cfg_.has_bypass()) {
    arbitrate_buffered(now, out_claimed, in_claimed);
    process_lookaheads(now, active, out_claimed, in_claimed);
  } else {
    arbitrate_buffered(now, out_claimed, in_claimed);
  }
}

void Router::process_lookaheads(Cycle now, const PortMask& active,
                                std::array<bool, kNumPorts>& out_claimed,
                                std::array<bool, kNumPorts>& in_claimed) {
  // Rotating priority across input ports keeps lookahead-vs-lookahead
  // conflicts from systematically favouring one direction. The rotation is
  // a pure function of the cycle (not stored state advanced per tick) so an
  // activity-gated router that slept through idle cycles resumes with
  // exactly the priority an always-on router would hold.
  const int rot = static_cast<int>(now % kNumPorts);

  for (int off = 0; off < kNumPorts; ++off) {
    // rot + off < 2 * kNumPorts, so one conditional subtract replaces the
    // per-iteration modulo (kNumPorts is not a power of two).
    int p = rot + off;
    if (p >= kNumPorts) p -= kNumPorts;
    auto& ip = in_[static_cast<size_t>(p)];
    // A skipped port has no lookahead arrival; the relative rotation order
    // among ports that DO is unchanged, so arbitration is unaffected.
    if (!active.test(p)) continue;
    if (!ip.connected || ip.ch.la_in == nullptr) continue;
    for (const Lookahead& la : ip.ch.la_in->arrivals()) {
      NOC_ASSERT(la.in_port == p);
      if (energy_) ++energy_->sa2_arbitrations;
      auto& ivc = ip.vcs[static_cast<size_t>(la.flit.vc)];

      // Install route state for an incoming head even if the bypass fails:
      // NRC was already performed upstream, the flit will need it either way.
      if (is_head(la.flit.type) && !ivc.busy())
        open_packet_state(now, p, la.flit);

      if (in_claimed[static_cast<size_t>(p)]) continue;
      if (!ivc.busy() || !ivc.empty()) continue;  // order would be violated
      // With an empty FIFO all unfinished branches sit at the same seq.
      if (ivc.current_seq() != la.flit.seq) continue;
      // Packets carrying a drop branch take the buffered path only: the
      // fault sweep consumes their flits from the FIFO, and a bypass copy
      // would race it (docs/FAULTS.md).
      if (open_drop_branches_ > 0) {
        bool has_drop = false;
        for (const auto& b : ivc.branches()) has_drop |= b.drop;
        if (has_drop) continue;
      }

      // Which branches can be granted right now?
      auto& want = la_want_;
      auto& grantable = la_grantable_;
      want.clear();
      grantable.clear();
      for (auto& b : ivc.branches()) {
        if (b.tail_sent || b.next_seq != la.flit.seq) continue;
        want.push_back(&b);
        const int o = port_index(b.out);
        if (out_claimed[static_cast<size_t>(o)]) continue;
        auto& ds = out_[static_cast<size_t>(o)].ds;
        int vc = b.ds_vc;
        // A dead output port grants no NEW VC (graceful drain: branches
        // already holding one keep sending on credits).
        if (vc < 0 && faults_ != nullptr && b.out != PortDir::Local &&
            faults_->port_dead(node_, b.out))
          continue;
        // Class-aware VA: an Adaptive flit bypasses only through its
        // primary (Free) lane on the pre-aimed port -- the escape fallback
        // stays on the buffered path, where VA re-aims every retry.
        if (vc < 0 && !ds.has_free_vc(la.flit.mc, branch_lane(ivc.rc(), b.out)))
          continue;
        if (vc >= 0 && !ds.has_credit(vc)) continue;
        grantable.push_back(GrantOut{b.out, vc, b.dests});
      }
      if (grantable.empty()) continue;
      const bool full = grantable.size() == want.size();
      if (!full && !cfg_.allow_partial_bypass) continue;
      // Multi-flit multicasts may only bypass on a full grant: a partial
      // grant would acquire a subset of branch VCs, reintroducing the
      // hold-and-wait deadlock that atomic VA exists to prevent.
      if (!full && la.flit.packet_len > 1 && want.size() > 1) continue;

      // Commit the grant, built in place (the latch is always invalid by
      // the time phase_sa2 runs: phase_st_and_bw consumed any prior grant).
      NOC_ASSERT(!ip.bypass.valid);
      BypassGrant& grant = ip.bypass;
      grant.outs.clear();
      grant.valid = true;
      grant.vc = la.flit.vc;
      grant.seq = la.flit.seq;
      grant.full = full;
      for (auto& go : grantable) {
        auto& ds = out_[static_cast<size_t>(port_index(go.out))].ds;
        // Find the matching branch to persist VA results / progress.
        Branch* br = nullptr;
        for (auto* w : want)
          if (w->out == go.out) br = w;
        NOC_ASSERT(br != nullptr);
        if (go.ds_vc < 0) {
          go.ds_vc = ds.allocate_vc(la.flit.mc, branch_lane(ivc.rc(), go.out));
          NOC_ASSERT(go.ds_vc >= 0);
          br->ds_vc = go.ds_vc;
          if (energy_) ++energy_->vc_allocations;
        }
        ds.consume_credit(go.ds_vc);
        out_claimed[static_cast<size_t>(port_index(go.out))] = true;
        advance_branch(*br, la.flit);
        send_lookahead(now, la.flit, go);
        grant.outs.push_back(go);
      }
      if (telemetry_ != nullptr && telemetry_->tracing(la.flit.logical_id))
        telemetry_->trace(TraceEventType::SaGrant, now, la.flit.logical_id,
                          node_);
      in_claimed[static_cast<size_t>(p)] = true;
    }
  }
}

void Router::arbitrate_buffered(Cycle now,
                                std::array<bool, kNumPorts>& out_claimed,
                                std::array<bool, kNumPorts>& in_claimed) {
  // Per-input view of the stage-2 candidate's current service state.
  struct Cand {
    bool valid = false;
    int vc = -1;
    int seq = 0;
  };
  std::array<Cand, kNumPorts> cand{};
  // Transposed request build (docs/PERF.md Layer 5): one branch walk per
  // candidate input scatters its requests into per-output PortMask rows,
  // replacing the old output-major 5x5 rescan of every input's branch
  // list. No credit state changes between here and the output loop below
  // (grants only consume in the commit loop), so the rows the output loop
  // reads match what the rescan would have recomputed.
  std::array<PortMask, kNumPorts> requests{};  // per output, bit = input
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    if (in_claimed[static_cast<size_t>(p)] || ip.stage2_vc < 0) continue;
    auto& ivc = ip.vcs[static_cast<size_t>(ip.stage2_vc)];
    if (!ivc.busy()) continue;
    // Serve the lowest sequence that can make progress; this is NOT
    // necessarily the packet's globally lowest unsent seq (see
    // serviceable_seq). One seq per input per cycle -- the crossbar has a
    // single read port per input.
    const int s = serviceable_seq(ivc);
    if (s == INT_MAX) continue;
    cand[static_cast<size_t>(p)] = Cand{true, ip.stage2_vc, s};
    for (const auto& b : ivc.branches()) {
      if (b.tail_sent || b.next_seq != s) continue;
      if (b.ds_vc < 0) continue;  // VA not yet successful for this branch
      if (!out_[static_cast<size_t>(port_index(b.out))].ds.has_credit(b.ds_vc))
        continue;
      requests[static_cast<size_t>(port_index(b.out))].set(p);
    }
  }

  // Output-port arbitration (mSA-II): matrix arbiter per output.
  auto& granted = granted_scratch_;  // per input
  for (auto& g : granted) g.clear();
  for (int o = 0; o < kNumPorts; ++o) {
    if (out_claimed[static_cast<size_t>(o)]) {
      // Buffered requesters that lost the output to a lookahead bypass
      // lost switch allocation all the same.
      if (telemetry_ != nullptr && requests[static_cast<size_t>(o)].any())
        telemetry_->add_stall(node_, StallClass::LostSa,
                              requests[static_cast<size_t>(o)].count());
      continue;
    }
    if (requests[static_cast<size_t>(o)].none()) continue;
    if (energy_) ++energy_->sa2_arbitrations;
    const int w =
        out_[static_cast<size_t>(o)].sa2.arbitrate(requests[static_cast<size_t>(o)]);
    NOC_ASSERT(w >= 0);
    if (telemetry_ != nullptr && requests[static_cast<size_t>(o)].count() > 1)
      telemetry_->add_stall(node_, StallClass::LostSa,
                            requests[static_cast<size_t>(o)].count() - 1);
    const auto& ivc =
        in_[static_cast<size_t>(w)].vcs[static_cast<size_t>(cand[static_cast<size_t>(w)].vc)];
    for (const auto& b : ivc.branches()) {
      if (b.tail_sent || b.next_seq != cand[static_cast<size_t>(w)].seq)
        continue;
      if (port_index(b.out) != o) continue;
      granted[static_cast<size_t>(w)].push_back(GrantOut{b.out, b.ds_vc, b.dests});
      break;
    }
  }

  // Commit grants: fill ST latches, consume credits, advance branches,
  // emit lookaheads one cycle ahead of the flit.
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    auto& gouts = granted[static_cast<size_t>(p)];
    if (!gouts.empty()) {
      auto& c = cand[static_cast<size_t>(p)];
      auto& ivc = ip.vcs[static_cast<size_t>(c.vc)];
      const Flit& f = ivc.flit_at_seq(c.seq);
      // Fill the ST latch in place (always invalid here: phase_st_and_bw
      // consumed any prior grant earlier this tick).
      NOC_ASSERT(!ip.st.valid);
      StLatch& st = ip.st;
      st.outs.clear();
      st.valid = true;
      st.vc = c.vc;
      st.seq = c.seq;
      for (auto& go : gouts) {
        auto& ds = out_[static_cast<size_t>(port_index(go.out))].ds;
        ds.consume_credit(go.ds_vc);
        out_claimed[static_cast<size_t>(port_index(go.out))] = true;
        for (auto& b : ivc.branches())
          if (b.out == go.out && !b.tail_sent && b.next_seq == c.seq)
            advance_branch(b, f);
        send_lookahead(now, f, go);
        st.outs.push_back(go);
      }
      if (telemetry_ != nullptr && telemetry_->tracing(f.logical_id))
        telemetry_->trace(TraceEventType::SaGrant, now, f.logical_id, node_);
      in_claimed[static_cast<size_t>(p)] = true;
    }
    // Stage-2 candidate lifetime: a multicast flit that won SOME of its
    // branches this cycle holds the stage-2 request so the remaining output
    // ports can be granted on subsequent cycles without re-running mSA-I
    // (the paper's mSA-II serves multicast requests port by port). A
    // candidate that won nothing releases the slot -- holding it through a
    // long ejection backlog would head-of-line-block every other VC at this
    // input port.
    bool hold = false;
    if (!gouts.empty() && ip.stage2_vc >= 0) {
      const auto& ivc = ip.vcs[static_cast<size_t>(ip.stage2_vc)];
      if (ivc.busy()) {
        const int s = ivc.current_seq();
        bool started = false;
        for (const auto& b : ivc.branches())
          if (s != INT_MAX && b.next_seq > s) started = true;
        hold = started && serviceable_seq(ivc) != INT_MAX;
      }
    }
    if (!hold) ip.stage2_vc = -1;
  }
}

void Router::phase_sa1_va(Cycle now, const PortMask& active) {
  for (int p = 0; p < kNumPorts; ++p) {
    auto& ip = in_[static_cast<size_t>(p)];
    // A skipped port has stage2_vc < 0 and an empty busy slice, so the scan
    // below would land on the eligible.none() branch and re-store -1.
    if (!active.test(p)) continue;
    if (ip.stage2_vc >= 0) {
      // A partially-served multicast is holding stage 2; retry VA for any
      // of its branches that still lack a downstream VC, but do not run
      // mSA-I over it.
      allocate_branch_vcs(now, ip.stage2_vc,
                          ip.vcs[static_cast<size_t>(ip.stage2_vc)]);
      continue;
    }
    // mSA-I scan over the port's busy-VC word: bit iteration is ascending
    // VC id, the exact order of the old 0..total_vcs object walk.
    VcMask eligible;
    for (uint32_t scan = busy_slice(p); scan != 0; scan &= scan - 1) {
      const int v = std::countr_zero(scan);
      const auto& ivc = ip.vcs[static_cast<size_t>(v)];
      NOC_ASSERT(ivc.busy());
      const int s = ivc.current_seq();
      if (s == INT_MAX) continue;
      // The output-port request is only raised when it is actionable: some
      // branch can traverse this cycle, or VA can equip one to. The
      // textbook baseline skips this masking (see
      // RouterConfig::actionable_sa1_requests).
      if (cfg_.actionable_sa1_requests) {
        bool actionable = serviceable_seq(ivc) != INT_MAX;
        if (!actionable) {
          const MsgClass mc = cfg_.vc.mc_of_vc(v);
          for (const auto& b : ivc.branches()) {
            if (b.tail_sent || !b.needs_vc() || !ivc.has_seq(b.next_seq))
              continue;
            if (branch_could_get_vc(ivc.rc(), mc, b)) {
              actionable = true;
              break;
            }
          }
        }
        if (!actionable) {
          // Stall attribution: the VC is busy but raised no request.
          if (telemetry_ != nullptr)
            telemetry_->add_stall(node_, classify_stalled_vc(ivc));
          continue;
        }
      } else if (!ivc.has_seq(s)) {
        if (telemetry_ != nullptr)
          telemetry_->add_stall(node_, StallClass::BufferEmpty);
        continue;
      }
      eligible.set(v);
    }
    if (eligible.none()) {
      ip.stage2_vc = -1;
      continue;
    }
    if (energy_) ++energy_->sa1_arbitrations;
    ip.stage2_vc = ip.sa1.arbitrate(eligible);
    // Eligible non-winners lost mSA-I this cycle.
    if (telemetry_ != nullptr && eligible.count() > 1)
      telemetry_->add_stall(node_, StallClass::LostSa, eligible.count() - 1);

    // VA (stage-1 action, paper Fig 3): allocate downstream VCs for the
    // selected packet's branches that still lack one.
    allocate_branch_vcs(now, ip.stage2_vc,
                        ip.vcs[static_cast<size_t>(ip.stage2_vc)]);
    if (telemetry_ != nullptr) {
      // The winner's VA left it unable to traverse next cycle: a wasted
      // mSA-I win. A failed fresh allocation is LostVa; otherwise the
      // blocking resource names the class (a VC freed between the
      // actionable check and VA can only have been taken by a
      // lower-numbered port's VA this same phase).
      const auto& wvc = ip.vcs[static_cast<size_t>(ip.stage2_vc)];
      if (wvc.busy() && serviceable_seq(wvc) == INT_MAX) {
        bool va_failed = false;
        for (const auto& b : wvc.branches())
          if (!b.tail_sent && !b.drop && b.needs_vc() &&
              wvc.has_seq(b.next_seq)) {
            va_failed = true;
            break;
          }
        telemetry_->add_stall(node_, va_failed ? StallClass::LostVa
                                               : classify_stalled_vc(wvc));
      }
    }
  }
}

StallClass Router::classify_stalled_vc(const InputVc& ivc) const {
  bool any_flit = false;
  bool credit_stall = false;
  for (const auto& b : ivc.branches()) {
    if (b.tail_sent || b.drop) continue;
    if (!ivc.has_seq(b.next_seq)) continue;
    any_flit = true;
    if (b.ds_vc >= 0) credit_stall = true;
  }
  if (!any_flit) return StallClass::BufferEmpty;
  return credit_stall ? StallClass::NoCredit : StallClass::NoFreeVc;
}

void Router::allocate_branch_vcs(Cycle now, int vc_id, InputVc& ivc) {
  if (!ivc.busy()) return;
  const MsgClass mc = cfg_.vc.mc_of_vc(vc_id);
  // Trace sampling decision hoisted: every successful allocation below
  // stamps one VA instant on this router's track.
  const bool traced =
      telemetry_ != nullptr && telemetry_->tracing(ivc.logical());

  if (ivc.rc() == RouteClass::Adaptive) {
    // Adaptive packets are single-branch unicasts whose output port is
    // re-aimed on EVERY VA retry while no downstream VC is held: first the
    // best productive port with a free Free-lane VC, then the
    // dimension-ordered escape hop on the Ordered lane. Retrying the
    // escape candidate each cycle -- not just once -- is what makes the
    // network deadlock-free (Duato): a packet blocked on adaptive
    // resources always eventually falls through to the acyclic escape
    // subnetwork, which drains independently.
    NOC_ASSERT(ivc.branches().size() == 1);
    Branch& b = ivc.branches()[0];
    if (b.tail_sent || !b.needs_vc()) return;
    if (b.out == PortDir::Local) {
      const int vc =
          out_[static_cast<size_t>(port_index(PortDir::Local))].ds.allocate_vc(
              mc, VcLane::Any);
      if (vc >= 0) {
        b.ds_vc = vc;
        if (energy_) ++energy_->vc_allocations;
        if (traced)
          telemetry_->trace(TraceEventType::VaGrant, now, ivc.logical(),
                            node_);
      }
      return;
    }
    const NodeId dest = b.dests.lowest();
    if (faults_ != nullptr && !faults_->escape_reachable(node_, dest)) {
      // The destination fell off the escape tree while the packet waited:
      // convert in place to a counted drop (docs/FAULTS.md) -- the fault
      // sweep drains it from here on.
      b.drop = true;
      ++open_drop_branches_;
      return;
    }
    const PortDir aim = adaptive_port_choice(dest, mc);
    auto& aim_ds = out_[static_cast<size_t>(port_index(aim))].ds;
    const bool aim_dead =
        faults_ != nullptr && faults_->port_dead(node_, aim);
    if (!aim_dead && aim_ds.has_free_vc(mc, VcLane::Free)) {
      b.out = aim;
      b.ds_vc = aim_ds.allocate_vc(mc, VcLane::Free);
      if (energy_) ++energy_->vc_allocations;
      if (traced)
        telemetry_->trace(TraceEventType::VaGrant, now, ivc.logical(), node_);
      return;
    }
    const PortDir esc = faults_ != nullptr ? faults_->escape_next(node_, dest)
                                           : escape_port(geom_, node_, dest);
    auto& esc_ds = out_[static_cast<size_t>(port_index(esc))].ds;
    if (esc_ds.has_free_vc(mc, VcLane::Ordered)) {
      b.out = esc;
      b.ds_vc = esc_ds.allocate_vc(mc, VcLane::Ordered);
      if (energy_) ++energy_->vc_allocations;
      if (traced)
        telemetry_->trace(TraceEventType::VaGrant, now, ivc.logical(), node_);
      return;
    }
    // Nothing free anywhere: keep the aim on the best adaptive candidate
    // so next cycle's bypass/actionable checks look at the right port.
    b.out = aim;
    return;
  }

  // Multi-flit multicasts must acquire every branch VC atomically: a branch
  // holding its VC while a sibling waits for one deadlocks, because buffer
  // slots only retire once ALL branches have sent a flit (hold-and-wait
  // cycle across packets). Single-flit multicasts release a branch VC the
  // moment the branch sends, so lazy per-branch VA is safe -- and that is
  // the only multicast the paper's traffic contains.
  const bool atomic = ivc.packet_len > 1 && ivc.branches().size() > 1;
  auto port_is_dead = [&](const Branch& b) {
    return faults_ != nullptr && b.out != PortDir::Local &&
           faults_->port_dead(node_, b.out);
  };
  if (atomic) {
    for (const auto& b : ivc.branches()) {
      if (b.tail_sent || !b.needs_vc()) continue;
      if (port_is_dead(b)) return;  // wedged until revival (or epoch drop)
      if (!out_[static_cast<size_t>(port_index(b.out))].ds.has_free_vc(
              mc, branch_lane(ivc.rc(), b.out)))
        return;  // all-or-nothing: try again next cycle
    }
  }
  for (auto& b : ivc.branches()) {
    if (!b.needs_vc() || b.tail_sent) continue;
    if (port_is_dead(b)) continue;  // no NEW VC across a dead link
    const int vc = out_[static_cast<size_t>(port_index(b.out))].ds.allocate_vc(
        mc, branch_lane(ivc.rc(), b.out));
    if (vc >= 0) {
      b.ds_vc = vc;
      if (energy_) ++energy_->vc_allocations;
      if (traced)
        telemetry_->trace(TraceEventType::VaGrant, now, ivc.logical(), node_);
    }
  }
}

void Router::fault_tick(Cycle now) {
  if (open_drop_branches_ == 0) return;
  // Consume one buffered flit per drop branch per cycle, as if sent: the
  // drop branch mimics a branch with infinite downstream credit, so the
  // shared FIFO keeps draining and sibling (live) branches never stall
  // behind unreachable destinations. Runs after this tick's ST latch was
  // consumed and before new grants are issued, so the retire pops below
  // cannot invalidate a flit reference held elsewhere.
  for (int p = 0; p < kNumPorts; ++p) {
    for (uint32_t scan = busy_slice(p); scan != 0; scan &= scan - 1) {
      const int v = std::countr_zero(scan);
      auto& ivc = in_[static_cast<size_t>(p)].vcs[static_cast<size_t>(v)];
      bool swept = false;
      for (auto& b : ivc.branches()) {
        if (!b.drop || b.tail_sent) continue;
        if (!ivc.has_seq(b.next_seq)) continue;  // flit not yet arrived
        const Flit f = ivc.flit_at_seq(b.next_seq);
        if (is_tail(f.type) && metrics_ != nullptr)
          metrics_->on_packet_dropped(f.logical_id,
                                      b.dests.count(), now);
        advance_branch(b, f);
        if (b.tail_sent) --open_drop_branches_;
        swept = true;
      }
      if (swept) retire_sent_flits(now, p, v);
    }
  }
}

void Router::on_topology_change(Cycle) {
  NOC_ASSERT(faults_ != nullptr);
  // Only the escape class routes on per-epoch state. Adaptive packets are
  // re-aimed by VA every retry (and their unreachable case is converted
  // there); the oblivious classes (XY/YX/O1TURN trees) keep their route and
  // simply wedge on dead ports until revival.
  if (cfg_.routing != RoutePolicy::MinimalAdaptive) return;
  for (int p = 0; p < kNumPorts; ++p) {
    for (uint32_t scan = busy_slice(p); scan != 0; scan &= scan - 1) {
      const int v = std::countr_zero(scan);
      auto& ivc = in_[static_cast<size_t>(p)].vcs[static_cast<size_t>(v)];
      if (ivc.rc() != RouteClass::Escape) continue;
      for (auto& b : ivc.branches()) {
        if (b.drop || b.tail_sent) continue;
        if (b.out == PortDir::Local) continue;  // local delivery unaffected
        // Started branches (downstream VC held, or flits already sent)
        // drain gracefully across the old route: dead links keep returning
        // credits for in-flight packets. Only unstarted branches are
        // re-validated against the new tree.
        if (b.ds_vc >= 0 || b.next_seq > 0) continue;
        bool ok = true;
        b.dests.for_each([&](int dest) {
          if (!ok) return;
          if (!faults_->escape_reachable(node_, dest) ||
              faults_->escape_next(node_, dest) != b.out)
            ok = false;
        });
        // Down-phase constraint for the arrival port (see route_head).
        if (ok && (p == port_index(PortDir::South) ||
                   p == port_index(PortDir::West)) &&
            (b.out == PortDir::South || b.out == PortDir::West))
          ok = false;
        if (ok) continue;
        // Convert the whole branch in place (docs/FAULTS.md): splitting it
        // per-destination could mint a second branch on an out port the
        // packet already forks to, which the grant-commit loops forbid.
        b.drop = true;
        ++open_drop_branches_;
      }
    }
  }
}

}  // namespace noc

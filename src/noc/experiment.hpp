#pragma once
// Experiment harness: the measurement methodology shared by the Fig 5/6/13
// benches and the throughput tests.
//
// A measurement runs a fresh network through warmup, opens the metrics
// window, and reports latency / received throughput / channel loads /
// bypass statistics at one offered load. Saturation follows the paper's
// definition (Sec 4.1 footnote): the injection rate at which average packet
// latency reaches 3x the no-load latency.
//
// Workloads beyond open loop (closed-loop coherence, trace replay; see
// noc/workload.hpp) are measured with the same machinery: measure_workload
// runs whatever WorkloadSpec the config carries and additionally reports
// transaction-level results (completed transactions, miss latency,
// sustained transactions/cycle at the configured window).
// ExperimentRunner::window_sweep is the closed-loop analogue of an
// offered-load sweep: one independent point per MSHR window size.
//
// ExperimentRunner fans independent sweep points across worker threads.
// Every point owns its complete simulation state -- a Network, a Simulation
// clock, and per-NIC RNG streams derived deterministically from the point's
// config seed -- so points share nothing and the parallel schedule cannot
// change any result: outputs are bit-identical to the serial path in any
// thread count and any completion order (docs/PERF.md).

#include <vector>

#include "noc/network.hpp"

namespace noc {

struct MeasureOptions {
  Cycle warmup = 3000;
  Cycle window = 10000;
};

struct PointResult {
  double offered_fpc = 0;       // offered logical flits / node / cycle
  double avg_latency = 0;       // cycles, generation -> last delivery
  double recv_flits_per_cycle = 0;  // aggregate over all NICs
  double recv_gbps = 0;         // at 1 GHz, 64b flits
  double bypass_rate = 0;       // fraction of hops fully bypassed
  int64_t completed_packets = 0;
  /// Packets retired inside the window with at least one destination lost
  /// to a fault (docs/FAULTS.md). Zero on a pristine mesh. Conservation:
  /// every generated packet ends up completed or dropped, never wedged in
  /// an open ledger entry -- unreachable destinations surface here instead
  /// of hanging the run.
  int64_t dropped_packets = 0;
  double max_ejection_load = 0;
  double max_bisection_load = 0;
  EnergyCounters energy;        // window-scoped event counts

  // Exact latency order statistics over window-completed packets, from the
  // always-on fixed-bin histogram in Metrics (docs/OBSERVABILITY.md).
  // All zero when no packet completed.
  Cycle p50_latency = 0;
  Cycle p95_latency = 0;
  Cycle p99_latency = 0;
  Cycle min_latency = 0;
  Cycle max_latency = 0;
  /// Window-scoped stall attribution summed over routers, indexed by
  /// StallClass; all zero unless cfg.telemetry.enabled.
  int64_t stall_cycles[kNumStallClasses] = {0, 0, 0, 0, 0};

  // Transaction-level results (zero for pure open-loop points). For
  // closed-loop workloads: completed miss transactions and probe-to-response
  // latency; for trace replay: records injected inside the window.
  int64_t transactions = 0;
  double avg_transaction_latency = 0;  // cycles, probe issue -> response tail
  double max_transaction_latency = 0;
  double transactions_per_cycle = 0;   // aggregate over all nodes
  int closed_loop_window = 0;          // MSHR window this point ran at

  // Closed-loop leg breakdown (zeros for other workloads): the
  // probe-to-owner leg (miss issue -> probe head at the owning node) and
  // the data-return leg (response generation at the owner -> response tail
  // at the requester). Together with the directory latency these
  // decompose avg_transaction_latency, so a shift in miss latency can be
  // attributed to the request or the response network.
  int64_t probe_legs = 0;
  double avg_probe_latency = 0;
  int64_t response_legs = 0;
  double avg_response_latency = 0;
};

/// Run one point at `offered` flits/node/cycle. For non-open-loop
/// workloads the offered load is ignored (the workload's own knobs --
/// window, issue probability, trace -- set the load); use measure_workload.
/// A non-null `capture` records every injection (warmup included) via
/// Network::record_trace -- the campaign capture stage (src/campaign/).
PointResult measure_point(NetworkConfig cfg, double offered,
                          const MeasureOptions& opt = {},
                          Trace* capture = nullptr);

/// Measure whatever workload `cfg` carries (open-loop at its configured
/// offered load, closed-loop at its window, trace replay).
PointResult measure_workload(const NetworkConfig& cfg,
                             const MeasureOptions& opt = {},
                             Trace* capture = nullptr);

/// Latency at (near) zero load.
double zero_load_latency(NetworkConfig cfg, const MeasureOptions& opt = {});

struct SaturationResult {
  double zero_load_latency = 0;
  double saturation_offered = 0;  // flits/node/cycle at the 3x point
  double saturation_gbps = 0;     // received throughput there
  PointResult at_saturation;
};

/// Locate the saturation point by geometric ramp + bisection on offered load.
SaturationResult find_saturation(NetworkConfig cfg,
                                 const MeasureOptions& opt = {});

/// Latency-throughput curve over the given offered loads (serial; see
/// ExperimentRunner::sweep for the multi-threaded equivalent).
std::vector<PointResult> sweep_curve(NetworkConfig cfg,
                                     const std::vector<double>& offered,
                                     const MeasureOptions& opt = {});

/// Deliveries (ejected flits) per offered logical flit for a pattern; the
/// ejection-limited saturation offered load is 1 / this value.
double deliveries_per_offered_flit(const NetworkConfig& cfg);

// ---------------------------------------------------------------------------
// Parallel sweep engine.

struct ExperimentOptions {
  MeasureOptions measure;
  /// Worker threads for independent sweep points. 0 = all hardware threads;
  /// 1 = serial (no pool).
  int threads = 0;
};

/// One independent measurement: a full network config at one offered load.
struct SweepPoint {
  NetworkConfig cfg;
  double offered = 0;
};

/// Fans independent sweep points (and whole saturation searches) across a
/// thread pool. Results are bit-identical to the serial free functions.
class ExperimentRunner {
 public:
  ExperimentRunner() = default;
  explicit ExperimentRunner(const ExperimentOptions& opt) : opt_(opt) {}

  /// Resolved worker count (>= 1).
  int threads() const;
  const ExperimentOptions& options() const { return opt_; }

  /// Measure every point; results align index-for-index with `points`.
  std::vector<PointResult> run(const std::vector<SweepPoint>& points) const;

  /// Latency-throughput curve: the parallel equivalent of sweep_curve.
  std::vector<PointResult> sweep(const NetworkConfig& cfg,
                                 const std::vector<double>& offered) const;

  /// One curve per config over the same load list, every (config, load)
  /// point batched as a single parallel run. curves[c][i] is cfgs[c] at
  /// offered[i].
  std::vector<std::vector<PointResult>> sweep_all(
      const std::vector<NetworkConfig>& cfgs,
      const std::vector<double>& offered) const;

  /// One adaptive saturation search per config, searches in parallel (each
  /// search itself is inherently sequential).
  std::vector<SaturationResult> find_saturations(
      const std::vector<NetworkConfig>& cfgs) const;

  /// Closed-loop latency/throughput curve: one independent point per MSHR
  /// window size (cfg.workload.kind must be ClosedLoop). The closed-loop
  /// analogue of sweep(): results align index-for-index with `windows` and
  /// are bit-identical at any thread count.
  std::vector<PointResult> window_sweep(const NetworkConfig& cfg,
                                        const std::vector<int>& windows) const;

 private:
  ExperimentOptions opt_;
};

// ---------------------------------------------------------------------------
// Command-line conventions shared by benches/examples (common/cli.hpp):
//   --warmup N --window N   measurement phases (cycles)
//   --threads N             sweep workers (0 = all hardware threads)
//   --k N                   mesh radix, 2..kMaxMeshRadix

class CliArgs;

MeasureOptions cli_measure_options(const CliArgs& args,
                                   const MeasureOptions& defaults);
ExperimentOptions cli_experiment_options(const CliArgs& args,
                                         const MeasureOptions& defaults);

/// Shared `--k N` flag: mesh radix validated against the DestMask capacity.
/// An out-of-range value prints a diagnostic and exits instead of letting
/// the geometry's precondition abort deep in construction (or worse,
/// silently truncating the way a fixed-width mask once would have).
int cli_mesh_radix(const CliArgs& args, int dflt);

/// Shared `--policy NAME` flag (xy | yx | o1turn | adaptive): routing
/// policy for the benches/examples. Unknown names print the valid set and
/// exit.
RoutePolicy cli_route_policy(const CliArgs& args, RoutePolicy dflt);

}  // namespace noc

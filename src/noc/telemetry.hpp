#pragma once
// Telemetry: config-gated observability for the NoC datapath
// (docs/OBSERVABILITY.md).
//
// Four probes, all preallocated at construction so telemetry-on keeps the
// steady-state zero-allocation invariant (tests/test_zero_alloc.cpp):
//
//  1. Stall attribution -- per-router counters splitting every
//     non-productive busy-VC cycle into the five disjoint classes below.
//     The router accumulates them from the masks mSA-I/mSA-II already
//     compute (router.cpp), and only ever over busy VCs of swept ports, so
//     the counts are bit-identical across activity gating, port gating,
//     and parallel stepping by construction.
//  2. Latency histograms live in Metrics (noc/metrics.hpp), not here: they
//     are fed where packets retire, which the capture-replay path already
//     serializes for serial/parallel bit-identity.
//  3. A cycle-sampled time series (sample_every) recording injected /
//     delivered flits, open packets, awake-router count, and the fault
//     epoch into a fixed-capacity ring. Sampled on the main thread at the
//     end of Network::step; recording stops when the ring is full.
//  4. A packet-lifecycle trace exporter emitting Chrome/Perfetto
//     trace_event JSON: one track per router, async slices for each
//     sampled packet's inject->eject life and per-router residency, VA/SA
//     grants as instants, fault kill/revive as global instants. Packet
//     tracing is serial-mode only (the event buffer is shared); stall
//     counters, histograms, and the time series stay parallel-safe.
//
// The subsystem is always compiled; a Network without
// TelemetryConfig::enabled never constructs it, and every hot-path hook
// sits behind a null-pointer test exactly like Router::attach_faults.

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "noc/fault.hpp"
#include "noc/flit.hpp"

namespace noc {

/// Why a busy VC failed to move a flit this cycle. The classes are
/// disjoint by code path (docs/OBSERVABILITY.md "Stall taxonomy"):
/// exactly one is charged per (busy VC, cycle) that ends non-productive,
/// plus LostSa for each mSA-II requester that lost its output port.
enum class StallClass : uint8_t {
  BufferEmpty = 0,  // VC held by a packet, next needed flit not yet buffered
  NoFreeVc = 1,     // flit ready, branch needs a downstream VC, none free
  NoCredit = 2,     // flit ready, VC allocated, zero downstream credits
  LostSa = 3,       // eligible but lost switch allocation (mSA-I or mSA-II)
  LostVa = 4,       // won mSA-I but VC allocation left the flit stranded
};
constexpr int kNumStallClasses = 5;

const char* stall_class_name(StallClass c);

/// Knobs (NetworkConfig::telemetry). Default-constructed = fully off.
struct TelemetryConfig {
  /// Master gate: off = Network never constructs a Telemetry instance and
  /// the hot path pays one untaken null test per hook.
  bool enabled = false;
  /// Time-series sampling period in cycles; 0 = no time series.
  Cycle sample_every = 0;
  /// Time-series ring capacity; sampling stops (silently) when full.
  int max_samples = 1 << 14;
  /// Packet-lifecycle trace: sample packets with logical_id % this == 0;
  /// 0 = no packet trace, 1 = every packet. Serial stepping only.
  uint64_t trace_sample_every = 0;
  /// Trace event buffer capacity; tracing stops when full, keeping
  /// saturated runs bounded.
  int max_trace_events = 1 << 16;
};

/// One time-series sample (cumulative counters, not per-interval deltas:
/// plots diff adjacent rows, which keeps the probe a pure read).
struct TimeSample {
  Cycle cycle = 0;
  int64_t injected_flits = 0;   // NIC->router link traversals to date
  int64_t delivered_flits = 0;  // flits ejected at NICs to date
  int64_t open_packets = 0;     // logical packets in flight
  int awake_routers = 0;        // scheduling observable; differs by mode
  uint64_t fault_epoch = 0;     // FaultState::epoch() at the sample
};

/// Trace event kinds; the Perfetto writer maps them to trace_event
/// phases ("b"/"e" async, "i" instant).
enum class TraceEventType : uint8_t {
  PacketBegin,  // async begin, cat "pkt", id = logical packet
  PacketEnd,    // async end, cat "pkt"
  HopBegin,     // async begin, cat "hop", id = (logical, router)
  HopEnd,       // async end, cat "hop"
  VaGrant,      // instant on the router track
  SaGrant,      // instant on the router track
  Eject,        // instant on the ejecting NIC's router track
  Fault,        // global instant; aux = FaultKind, a/b = endpoints
};

struct TraceEvent {
  Cycle ts = 0;
  PacketId id = 0;  // logical packet id; 0 for Fault events
  int32_t node = 0; // track (tid); packet-level events use the source node
  TraceEventType type = TraceEventType::PacketBegin;
  uint8_t aux = 0;  // FaultKind for Fault, PacketKind for PacketBegin
  int16_t a = -1;   // fault endpoints
  int16_t b = -1;
};

/// Fault-schedule marker mirrored into both the time series CSV and the
/// Perfetto trace.
struct FaultMarker {
  Cycle cycle = 0;
  FaultKind kind = FaultKind::LinkDown;
  NodeId a = 0;
  NodeId b = 0;
};

class Telemetry {
 public:
  Telemetry(int num_nodes, const TelemetryConfig& cfg);

  const TelemetryConfig& config() const { return cfg_; }
  int num_nodes() const { return num_nodes_; }

  // --- Stall attribution (router hot path) -------------------------------
  // One row per router, padded to a cache line: in parallel stepping each
  // router is ticked by exactly one worker, so plain adds are race-free
  // and padding keeps neighbouring routers off each other's line.

  void add_stall(NodeId node, StallClass c, int64_t k = 1) {
    rows_[static_cast<size_t>(node)]
        .counts[static_cast<size_t>(c)] += k;
  }
  int64_t stalls(NodeId node, StallClass c) const {
    return rows_[static_cast<size_t>(node)]
        .counts[static_cast<size_t>(c)];
  }
  int64_t total_stalls(StallClass c) const;
  /// Clear the stall counters (measurement-window boundary).
  void reset_stalls();

  // --- Time series (main thread, end of Network::step) -------------------

  bool want_sample(Cycle now) const {
    return cfg_.sample_every > 0 && now % cfg_.sample_every == 0 &&
           samples_.size() < samples_.capacity();
  }
  void push_sample(const TimeSample& s) {
    if (samples_.size() < samples_.capacity()) samples_.push_back(s);
  }
  const std::vector<TimeSample>& samples() const { return samples_; }

  // --- Fault markers -----------------------------------------------------

  void record_fault(Cycle now, FaultKind kind, NodeId a, NodeId b);
  const std::vector<FaultMarker>& fault_markers() const { return markers_; }

  // --- Packet-lifecycle trace --------------------------------------------

  /// Permanently disable packet tracing (Network calls this when stepping
  /// in parallel: the event buffer is shared across span workers).
  void disable_tracing() { trace_on_ = false; }
  bool tracing_enabled() const { return trace_on_; }

  /// Is this logical packet sampled for tracing? Hot-path guard: callers
  /// test the Telemetry pointer first, then this.
  bool tracing(PacketId logical) const {
    return trace_on_ && logical % cfg_.trace_sample_every == 0 &&
           events_.size() < events_.capacity();
  }
  void trace(TraceEventType type, Cycle ts, PacketId id, int node,
             uint8_t aux = 0) {
    if (events_.size() < events_.capacity())
      events_.push_back(TraceEvent{ts, id, node, type, aux, -1, -1});
  }
  const std::vector<TraceEvent>& trace_events() const { return events_; }

  // --- Exporters (cold path; allocate freely) ----------------------------

  /// Chrome/Perfetto trace_event JSON: thread-name metadata per router,
  /// async pkt/hop slices, instants, fault markers. Returns false when the
  /// file cannot be written.
  bool write_perfetto_json(const std::string& path) const;
  /// Time series as CSV (one row per sample; fault markers appended as
  /// `# fault` comment lines) and as a JSON array of objects.
  bool write_timeseries_csv(const std::string& path) const;
  bool write_timeseries_json(const std::string& path) const;
  /// Per-router stall mix as CSV: node,x,y,<five classes> -- the
  /// tools/plot_telemetry.py heatmap input. Mesh coordinates derive from
  /// the given radix (row-major node ids, matching MeshGeometry).
  bool write_stalls_csv(const std::string& path, int kx) const;

 private:
  struct alignas(64) StallRow {
    int64_t counts[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };

  TelemetryConfig cfg_;
  int num_nodes_;
  bool trace_on_;
  std::vector<StallRow> rows_;
  std::vector<TimeSample> samples_;
  std::vector<TraceEvent> events_;
  std::vector<FaultMarker> markers_;
};

}  // namespace noc

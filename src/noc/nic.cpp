#include "noc/nic.hpp"

#include "noc/route_policy.hpp"
#include "noc/workload.hpp"

namespace noc {

Nic::Nic(NodeId node, const MeshGeometry& geom, const RouterConfig& router_cfg,
         TrafficSource* source, EnergyCounters* energy, Metrics* metrics)
    : node_(node),
      geom_(geom),
      router_cfg_(router_cfg),
      energy_(energy),
      metrics_(metrics),
      source_(source),
      rx_vcs_(static_cast<size_t>(router_cfg.vc.total_vcs())),
      rx_rr_(router_cfg.vc.total_vcs()) {
  NOC_EXPECTS(source_ != nullptr);
  ds_.configure(router_cfg.vc);
  // Pre-size the packet queues past any below-saturation high-water mark
  // (NIC broadcast duplication bursts k^2-1 copies at once), so steady-state
  // injection never regrows the ring (docs/PERF.md). Saturated runs with
  // unbounded queue growth still regrow -- by doubling, so rarely.
  for (auto& q : queue_) q.reserve(256);
}

PacketKind Nic::classify(const Packet& pkt) const {
  if (pkt.dest_mask.count() > 1) return PacketKind::Broadcast;
  return pkt.mc == MsgClass::Response ? PacketKind::UnicastResponse
                                      : PacketKind::UnicastRequest;
}

void Nic::account_new_packet(const Packet& pkt, Cycle now) {
  if (metrics_ == nullptr) return;
  metrics_->on_logical_packet(pkt.id, classify(pkt), pkt.gen_cycle,
                              pkt.dest_mask.count());
  (void)now;
}

void Nic::enqueue_for_send(Packet pkt) {
  queue_[static_cast<int>(pkt.mc)].push_back(std::move(pkt));
}

void Nic::submit_packet(Packet pkt) {
  NOC_EXPECTS(pkt.src == node_);
  NOC_EXPECTS(pkt.dest_mask.any());
  // Stamp the routing class here, not in the sources: traffic generation
  // is policy-agnostic, so traces replay and external submissions inject
  // correctly under whatever policy this network runs (docs/ROUTING.md).
  pkt.rc = route_class_for_packet(router_cfg_.routing, pkt);
  // External callers may submit while a gated NIC sleeps; make sure the
  // injection half runs next step (self-submissions fire it redundantly,
  // which is harmless).
  wake_inject_.fire();
  if (trace_out_ != nullptr)
    trace_out_->records.push_back(
        {pkt.gen_cycle, node_, pkt.dest_mask, pkt.length, pkt.mc});
  account_new_packet(pkt, pkt.gen_cycle);
  if (telemetry_ != nullptr &&
      telemetry_->tracing(pkt.effective_logical_id()))
    telemetry_->trace(TraceEventType::PacketBegin, pkt.gen_cycle,
                      pkt.effective_logical_id(), node_,
                      static_cast<uint8_t>(classify(pkt)));

  // Fault-mode injection filter (docs/FAULTS.md): destinations with no
  // usable path on the surviving topology are counted as drops at the
  // door. Adaptive routing requires the escape tree (Duato); the oblivious
  // policies only lose fully-disconnected destinations here -- a dest that
  // is connected but whose fixed dimension-ordered path crosses a dead
  // link injects normally and wedges until revival. The packet was
  // accounted with its FULL destination count above, so generated ==
  // completed + dropped conservation is exact.
  if (faults_ != nullptr) {
    DestMask dead;
    const bool adaptive = router_cfg_.routing == RoutePolicy::MinimalAdaptive;
    pkt.dest_mask.for_each([&](int d) {
      if (d == node_) return;  // local delivery never touches the mesh
      const bool ok = adaptive ? faults_->escape_reachable(node_, d)
                               : faults_->connected(node_, d);
      if (!ok) dead.set(d);
    });
    if (dead.any()) {
      if (metrics_)
        metrics_->on_packet_dropped(pkt.id, dead.count(), pkt.gen_cycle);
      source_->on_drop(pkt, dead, pkt.gen_cycle);
      pkt.dest_mask = pkt.dest_mask.andnot(dead);
      if (pkt.dest_mask.none()) return;
      // A broadcast shrunk to one survivor becomes a plain unicast.
      pkt.rc = route_class_for_packet(router_cfg_.routing, pkt);
    }
  }

  const bool is_multicast = pkt.dest_mask.count() > 1;
  if (is_multicast && !router_cfg_.multicast) {
    // Routers cannot fork: duplicate into unicast copies (paper Sec 2.3).
    // The source's own copy is delivered locally without network traversal.
    const DestMask self_bit = MeshGeometry::node_mask(node_);
    if (pkt.dest_mask.test(node_)) {
      Flit f;
      f.packet_id = pkt.id;
      f.logical_id = pkt.effective_logical_id();
      f.src = node_;
      f.branch_mask = self_bit;
      f.mc = pkt.mc;
      f.tag = pkt.tag;
      f.packet_len = pkt.length;
      f.gen_cycle = pkt.gen_cycle;
      for (int s = 0; s < pkt.length; ++s) {
        f.seq = s;
        f.type = pkt.length == 1 ? FlitType::HeadTail
                 : s == 0        ? FlitType::Head
                 : s == pkt.length - 1 ? FlitType::Tail
                                       : FlitType::Body;
        if (metrics_) metrics_->on_flit_received(f.logical_id, f, pkt.gen_cycle);
        source_->on_delivery(f, pkt.gen_cycle);
      }
    }
    uint64_t copy_idx = 0;
    // Iterate destination bits directly (ascending node id, like
    // MeshGeometry::nodes_in) without materializing a vector.
    pkt.dest_mask.andnot(self_bit).for_each([&](int d) {
      Packet copy = pkt;
      copy.logical_id = pkt.effective_logical_id();
      copy.id = (pkt.id ^ 0x5a5a5a5aULL) + (++copy_idx << 56);
      copy.dest_mask = MeshGeometry::node_mask(d);
      // Each duplicated copy is its own unicast: re-stamp so O1TURN
      // spreads the copies over both orders and adaptive copies roam.
      copy.rc = route_class_for_packet(router_cfg_.routing, copy);
      enqueue_for_send(std::move(copy));
    });
    return;
  }
  enqueue_for_send(std::move(pkt));
}

bool Nic::try_activate(MsgClass mc) {
  const int m = static_cast<int>(mc);
  if (active_[m].has_value()) return true;
  if (queue_[m].empty()) return false;
  const int vc = ds_.allocate_vc(mc);
  if (vc < 0) return false;
  if (energy_) ++energy_->vc_allocations;
  Packet pkt = queue_[m].pop_front();
  uint64_t payloads[kMaxPacketFlits];
  NOC_ASSERT(pkt.length <= kMaxPacketFlits);
  for (int i = 0; i < pkt.length; ++i) payloads[i] = source_->next_payload();
  ActiveTx tx;
  segment_packet_into(pkt, payloads, pkt.length, tx.flits);
  tx.vc = vc;
  active_[m] = tx;
  return true;
}

bool Nic::can_send(MsgClass mc) const {
  const int m = static_cast<int>(mc);
  if (!active_[m].has_value()) return false;
  return ds_.credits(active_[m]->vc) > 0;
}

void Nic::send_flit(MsgClass mc, Cycle now) {
  const int m = static_cast<int>(mc);
  auto& tx = *active_[m];
  Flit f = tx.flits[tx.next++];
  f.vc = tx.vc;
  f.inject_cycle = now;
  ds_.consume_credit(tx.vc);
  NOC_ASSERT(ch_.flit_to_router != nullptr);
  ch_.flit_to_router->send(now, f);
  if (energy_) ++energy_->nic_link_traversals;
  if (metrics_) metrics_->on_injection_link(node_);
  if (router_cfg_.has_bypass() && ch_.la_to_router != nullptr) {
    Lookahead la;
    la.in_port = port_index(PortDir::Local);
    la.flit = f;
    ch_.la_to_router->send(now, la);
    if (energy_) ++energy_->lookaheads_sent;
  }
  if (tx.done()) active_[m].reset();
}

void Nic::tick_inject(Cycle now) {
  // Apply credits from the router's Local input port.
  if (ch_.credit_from_router != nullptr) {
    for (const Credit& c : ch_.credit_from_router->arrivals()) {
      if (c.slot) ds_.return_credit(c.vc);
      if (c.vc_free) ds_.release_vc(c.vc);
    }
  }

  // Traffic generation.
  if (auto pkt = source_->generate(now)) submit_packet(std::move(*pkt));

  // Send at most one flit (64b link). Round-robin across message classes.
  uint32_t sendable = 0;
  for (int m = 0; m < kNumMsgClasses; ++m) {
    if (try_activate(static_cast<MsgClass>(m)) &&
        can_send(static_cast<MsgClass>(m)))
      sendable |= uint32_t{1} << m;
  }
  if (sendable != 0) {
    const int m = mc_rr_.arbitrate(sendable);
    send_flit(static_cast<MsgClass>(m), now);
  }
}

void Nic::tick_eject(Cycle now) {
  // Accept arrivals from the router's Local output.
  if (ch_.flit_from_router != nullptr) {
    const auto& arrivals = ch_.flit_from_router->arrivals();
    NOC_ASSERT(arrivals.size() <= 1);
    for (const Flit& f : arrivals) {
      NOC_ASSERT(f.vc >= 0 &&
                 f.vc < static_cast<int>(rx_vcs_.size()));
      rx_vcs_[static_cast<size_t>(f.vc)].push_back(f);
      NOC_ASSERT(static_cast<int>(rx_vcs_[static_cast<size_t>(f.vc)].size()) <=
                 router_cfg_.vc.depth_of_vc(f.vc));
    }
  }

  // Drain one flit per cycle (the ejection-bandwidth limit of Table 1).
  uint32_t occupied = 0;
  for (size_t v = 0; v < rx_vcs_.size(); ++v)
    if (!rx_vcs_[v].empty()) occupied |= uint32_t{1} << v;
  if (occupied == 0) return;
  const int v = rx_rr_.arbitrate(occupied);
  Flit f = rx_vcs_[static_cast<size_t>(v)].pop_front();
  if (ch_.credit_to_router != nullptr) {
    Credit c;
    c.vc = v;
    c.slot = true;
    c.vc_free = is_tail(f.type);
    ch_.credit_to_router->send(now, c);
  }
  if (telemetry_ != nullptr && is_tail(f.type) &&
      telemetry_->tracing(f.logical_id))
    telemetry_->trace(TraceEventType::Eject, now, f.logical_id, node_);
  if (metrics_) metrics_->on_flit_received(f.logical_id, f, now);
  source_->on_delivery(f, now);
  // The delivery may have unblocked the source (a closed-loop response
  // becoming due, a retired miss reopening the window): re-arm injection.
  wake_inject_.fire();
}

bool Nic::inject_busy() const {
  for (int m = 0; m < kNumMsgClasses; ++m)
    if (!queue_[m].empty() || active_[m].has_value()) return true;
  return false;
}

bool Nic::eject_busy() const {
  for (const auto& q : rx_vcs_)
    if (!q.empty()) return true;
  return false;
}

bool Nic::idle() const { return !inject_busy() && !eject_busy(); }

}  // namespace noc

#pragma once
// k x k mesh geometry: node ids, coordinates, Manhattan distances, and the
// destination-set bit masks used by the multicast machinery.
//
// Node ids are row-major: id = y * k + x. Destination sets are uint64_t bit
// masks (bit i = node i), which caps the mesh at 64 nodes -- enough for the
// paper's 4x4 chip and the 8x8 comparisons of Table 2.

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace noc {

using NodeId = int;
using DestMask = uint64_t;

struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

class MeshGeometry {
 public:
  explicit MeshGeometry(int k);

  int k() const { return k_; }
  int num_nodes() const { return k_ * k_; }

  NodeId id(Coord c) const;
  NodeId id(int x, int y) const { return id(Coord{x, y}); }
  Coord coord(NodeId n) const;
  bool valid(Coord c) const;

  int manhattan(NodeId a, NodeId b) const;

  /// Distance from `src` to its furthest node (broadcast completion metric,
  /// Fig 9 of the paper).
  int furthest_distance(NodeId src) const;

  /// Mask with every node set (broadcast destination set, self included --
  /// Table 1 counts ejection load k^2 R, i.e. self-delivery included).
  DestMask all_nodes_mask() const;

  /// Mask for a single node.
  static DestMask node_mask(NodeId n) {
    NOC_EXPECTS(n >= 0 && n < 64);
    return DestMask{1} << n;
  }

  /// All node ids present in `mask`.
  std::vector<NodeId> nodes_in(DestMask mask) const;

  /// Exact average hop count under uniform random unicast (src != dst),
  /// by enumeration. Used to cross-check Table 1's printed formula.
  double exact_avg_unicast_hops() const;

  /// Exact average distance-to-furthest over all sources (broadcast),
  /// by enumeration. Cross-checks Table 1's printed broadcast formula.
  double exact_avg_broadcast_hops() const;

 private:
  int k_;
};

}  // namespace noc

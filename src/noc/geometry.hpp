#pragma once
// kx x ky mesh geometry: node ids, coordinates, Manhattan distances, and
// the destination-set bit masks used by the multicast machinery.
//
// Node ids are row-major: id = y * kx + x. Destination sets are DestMask
// multi-word bitsets (bit i = node i, see common/dest_mask.hpp), which caps
// the mesh at DestMask::kCapacity = 256 nodes: square meshes up to k <= 16,
// covering the paper's 4x4 chip, the 8x8 comparisons of Table 2, and the
// large-k scaling study (docs/SCALING.md). Rectangular kx x ky shapes are
// capacity-checked against the same bound (groundwork for non-square
// networks; the Network itself still builds square meshes).

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/dest_mask.hpp"

namespace noc {

using NodeId = int;

/// Largest mesh radix a DestMask can address.
constexpr int kMaxMeshRadix = 16;
static_assert(kMaxMeshRadix * kMaxMeshRadix <= DestMask::kCapacity);
static_assert((kMaxMeshRadix + 1) * (kMaxMeshRadix + 1) > DestMask::kCapacity);

struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

class MeshGeometry {
 public:
  /// Square k x k mesh (every existing caller).
  explicit MeshGeometry(int k);
  /// Rectangular kx x ky mesh, capacity-checked against
  /// DestMask::kCapacity (e.g. 4x8 for the rectangular routing tests).
  MeshGeometry(int kx, int ky);

  /// Radix of a SQUARE mesh; asserts on rectangular geometries so square
  /// assumptions (bisection cuts, Tornado wrap) cannot silently misapply.
  int k() const {
    NOC_EXPECTS(kx_ == ky_);
    return kx_;
  }
  int kx() const { return kx_; }
  int ky() const { return ky_; }
  int num_nodes() const { return kx_ * ky_; }

  NodeId id(Coord c) const;
  NodeId id(int x, int y) const { return id(Coord{x, y}); }
  Coord coord(NodeId n) const;
  bool valid(Coord c) const;

  int manhattan(NodeId a, NodeId b) const;

  /// Distance from `src` to its furthest node (broadcast completion metric,
  /// Fig 9 of the paper).
  int furthest_distance(NodeId src) const;

  /// Mask with every node set (broadcast destination set, self included --
  /// Table 1 counts ejection load k^2 R, i.e. self-delivery included).
  DestMask all_nodes_mask() const;

  /// Mask for a single node.
  static DestMask node_mask(NodeId n) { return DestMask::bit(n); }

  /// All node ids present in `mask`.
  std::vector<NodeId> nodes_in(DestMask mask) const;

  /// Exact average hop count under uniform random unicast (src != dst),
  /// by enumeration. Used to cross-check Table 1's printed formula.
  double exact_avg_unicast_hops() const;

  /// Exact average distance-to-furthest over all sources (broadcast),
  /// by enumeration. Cross-checks Table 1's printed broadcast formula.
  double exact_avg_broadcast_hops() const;

 private:
  int kx_;
  int ky_;
};

}  // namespace noc

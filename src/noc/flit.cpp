#include "noc/flit.hpp"

#include <cstdio>

namespace noc {

std::string Flit::describe() const {
  const char* ty = "?";
  switch (type) {
    case FlitType::Head: ty = "H"; break;
    case FlitType::Body: ty = "B"; break;
    case FlitType::Tail: ty = "T"; break;
    case FlitType::HeadTail: ty = "HT"; break;
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "flit{pkt=%llu src=%d dm=%llx bm=%llx mc=%d %s seq=%d/%d vc=%d}",
                static_cast<unsigned long long>(packet_id), src,
                static_cast<unsigned long long>(dest_mask),
                static_cast<unsigned long long>(branch_mask),
                static_cast<int>(mc), ty, seq, packet_len, vc);
  return buf;
}

}  // namespace noc

#pragma once
// Arbiters used by the separable switch allocator:
//  - mSA-I: per-input-port round-robin across the 6 VCs, "fair and
//    starvation-free" (paper Sec 3.1).
//  - mSA-II: per-output-port matrix arbiter across the 5 input ports
//    (paper Sec 3.1), least-recently-served priority.
//
// Both are pure bit-twiddling over inline state (a rotation pointer, a
// 32x32 priority bitmatrix) -- no heap, no per-decision loops beyond a
// population scan -- because they run several times per router per cycle.

#include <array>
#include <cstdint>

#include "noc/buffers.hpp"
#include "noc/routing.hpp"

namespace noc {

/// Rotating-priority (round-robin) arbiter over n requesters.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int n);

  /// Grant one of the requesters set in `requests` (bit i = requester i),
  /// starting the search after the previous winner. Returns the winner
  /// index, or -1 if no requests. Advances the pointer on a grant.
  int arbitrate(uint32_t requests);
  /// mSA-I request vector straight from the router's per-VC eligibility
  /// mask (kMaxTotalVcs <= 32, so word 0 is the whole vector).
  int arbitrate(const VcMask& requests) {
    return arbitrate(static_cast<uint32_t>(requests.word(0)));
  }

  /// Inspect without state change.
  int peek(uint32_t requests) const;

  int size() const { return n_; }
  int pointer() const { return next_; }

 private:
  uint32_t valid_mask() const {
    return n_ == 32 ? ~uint32_t{0} : (uint32_t{1} << n_) - 1;
  }

  int n_;
  int next_ = 0;
};

/// Matrix arbiter over n requesters: row i's bit j set means i beats j.
/// The winner is demoted below everyone it beat (least-recently-served),
/// which is starvation-free for persistent requesters.
class MatrixArbiter {
 public:
  explicit MatrixArbiter(int n);

  /// Grant one requester from the bitmask, or -1. Updates the matrix.
  int arbitrate(uint32_t requests);
  /// mSA-II input-port request vector from a per-port mask.
  int arbitrate(const PortMask& requests) {
    return arbitrate(static_cast<uint32_t>(requests.word(0)));
  }

  int peek(uint32_t requests) const;

  int size() const { return n_; }

 private:
  uint32_t valid_mask() const {
    return n_ == 32 ? ~uint32_t{0} : (uint32_t{1} << n_) - 1;
  }

  int n_;
  std::array<uint32_t, 32> beats_{};  // beats_[i] bit j: i beats j
};

}  // namespace noc

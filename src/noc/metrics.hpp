#pragma once
// Network-level measurement: packet latency (to the LAST destination for
// multicasts, per the paper's "complete action" definition), received
// throughput, and per-link channel loads.
//
// Latency is measured from packet *generation* (so source queueing counts,
// which the paper's saturation definition -- latency reaching 3x the no-load
// latency -- requires), to the cycle the tail flit is drained at the last
// destination NIC.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "noc/flit.hpp"
#include "noc/geometry.hpp"
#include "noc/routing.hpp"

namespace noc {

class Telemetry;

/// Fixed-bin latency histogram (docs/OBSERVABILITY.md): one bin per cycle
/// of latency, pow-2 bin count, held inline so recording is a single
/// array increment with no heap traffic. Packet latencies are integer
/// cycle counts, so percentiles below kBins are *exact*; samples at or
/// above kBins land in an overflow count (min/max still tracked exactly)
/// and percentile() falls back to the observed max when the requested
/// rank lies in the overflow region.
class LatencyHistogram {
 public:
  static constexpr int kBins = 1 << 12;

  void add(Cycle lat) {
    ++count_;
    if (lat < min_) min_ = lat;
    if (lat > max_) max_ = lat;
    if (lat >= 0 && lat < kBins)
      ++bins_[static_cast<size_t>(lat)];
    else
      ++overflow_;
  }
  void reset() {
    bins_.fill(0);
    count_ = overflow_ = 0;
    min_ = std::numeric_limits<Cycle>::max();
    max_ = 0;
  }

  int64_t count() const { return count_; }
  int64_t overflow() const { return overflow_; }
  Cycle min() const { return count_ > 0 ? min_ : 0; }
  Cycle max() const { return count_ > 0 ? max_ : 0; }
  /// Smallest latency L such that at least ceil(q * count) samples are
  /// <= L. Exact for samples below kBins; 0 when empty.
  Cycle percentile(double q) const;

 private:
  std::array<int64_t, kBins> bins_{};
  int64_t count_ = 0;
  int64_t overflow_ = 0;
  Cycle min_ = std::numeric_limits<Cycle>::max();
  Cycle max_ = 0;
};

/// Classification used for per-traffic-type statistics.
enum class PacketKind { UnicastRequest, UnicastResponse, Broadcast };
constexpr int kNumPacketKinds = 3;

/// One deferred packet-lifecycle event recorded by a per-span Metrics shard
/// during parallel stepping, replayed into the shared Metrics in serial
/// order (docs/PERF.md Layer 4). `node` is the NIC whose tick produced the
/// event; replay walks nodes in ascending order, which reconstructs the
/// exact serial call sequence (and therefore the exact floating-point
/// accumulation order of the latency statistics).
struct CapturedMetricsEvent {
  enum class Kind : uint8_t { LogicalPacket, FlitReceived, PacketDropped };
  Kind kind;
  bool tail = false;                             // FlitReceived
  PacketKind pkind = PacketKind::UnicastRequest; // LogicalPacket
  NodeId node = 0;
  int deliveries = 0;  // LogicalPacket: required; PacketDropped: lost
  PacketId id = 0;
  Cycle cycle = 0;  // generation (LogicalPacket) or receive/drop cycle
};

/// Tick phases a capture shard distinguishes: events from tick_inject
/// (submission + NIC-duplicated local deliveries + injection-side drops)
/// replay before any router-tick event (fault-mode drop retirements),
/// which replay before any tick_eject event -- mirroring the serial phase
/// order exactly.
enum : int {
  kCaptureInject = 0,
  kCaptureRouter = 1,
  kCaptureEject = 2,
  kNumCapturePhases = 3
};

class Metrics {
 public:
  explicit Metrics(const MeshGeometry& geom);

  // ---- recording interface (called by NICs / routers) ----

  /// A logical packet came into existence. `deliveries` is the number of
  /// tail-flit deliveries required for completion (dest count; for a
  /// NIC-duplicated broadcast the copies share the logical id so the latency
  /// spans all of them).
  void on_logical_packet(PacketId logical_id, PacketKind kind, Cycle gen,
                         int deliveries);

  /// A flit was drained at a destination NIC.
  void on_flit_received(PacketId logical_id, const Flit& f, Cycle now);

  /// `count` of a logical packet's required deliveries will never happen
  /// (docs/FAULTS.md): destinations unreachable on the surviving topology,
  /// counted by the NIC at submission or by a router retiring a fault-mode
  /// drop branch. A packet with any dropped delivery counts toward
  /// dropped_packets (never completed_packets) once nothing remains open,
  /// keeping generated == completed + dropped conservation exact.
  void on_packet_dropped(PacketId logical_id, int count, Cycle now);

  /// A flit crossed the link leaving `node` through `port` (Local = ejection
  /// link toward the NIC). Injection links are recorded via
  /// on_injection_link.
  void on_link_flit(NodeId node, PortDir port);
  void on_injection_link(NodeId node);

  // ---- capture shards (parallel stepping, docs/PERF.md Layer 4) ----
  //
  // A shard is a Metrics instance owned by one span worker with set_shared()
  // installed. Its per-node link counters forward straight to the shared
  // instance (disjoint nodes -> disjoint memory, race-free), while the
  // order-sensitive packet-lifecycle events (open-packet map churn, latency
  // RunningStat adds) are buffered as CapturedMetricsEvents and replayed by
  // the main thread via apply() in exact serial order after the barrier.

  /// Turn this instance into a capture shard of `shared` (nullptr reverts).
  void set_shared(Metrics* shared) { shared_ = shared; }
  bool is_shard() const { return shared_ != nullptr; }

  /// Pre-size the per-phase capture buffers (zero-alloc invariant: sized at
  /// partition time for the per-cycle worst case, not grown under load).
  void reserve_capture(size_t per_phase) {
    for (auto& buf : captured_) buf.reserve(per_phase);
  }

  /// Tag subsequent captured events with the NIC phase and node whose tick
  /// is about to run. Shard-only.
  void set_capture_point(int phase, NodeId node) {
    capture_phase_ = phase;
    capture_node_ = node;
  }

  const std::vector<CapturedMetricsEvent>& captured(int phase) const {
    return captured_[static_cast<size_t>(phase)];
  }
  bool captured_empty() const {
    for (const auto& buf : captured_)
      if (!buf.empty()) return false;
    return true;
  }
  void clear_captured() {
    for (auto& buf : captured_) buf.clear();
  }

  /// Replay one captured event into this (shared) instance.
  void apply(const CapturedMetricsEvent& e);

  // ---- measurement window ----

  void begin_window(Cycle now);
  void end_window(Cycle now);
  bool in_window() const { return in_window_; }
  Cycle window_cycles() const;

  // ---- results ----

  /// Average latency over packets *completed* inside the window.
  double avg_packet_latency() const { return latency_all_.mean(); }
  const RunningStat& latency_stat() const { return latency_all_; }
  const RunningStat& latency_stat(PacketKind k) const {
    return latency_by_kind_[static_cast<int>(k)];
  }

  /// Exact window latency histograms (docs/OBSERVABILITY.md). Always on:
  /// recording is one inline-array increment per completed packet, and it
  /// happens where packets retire -- on the shared instance only, after
  /// capture replay -- so serial and parallel stepping fill identical bins.
  const LatencyHistogram& latency_hist() const { return hist_all_; }
  const LatencyHistogram& latency_hist(PacketKind k) const {
    return hist_by_kind_[static_cast<int>(k)];
  }

  /// Aggregate received flits per cycle inside the window.
  double received_flits_per_cycle() const;
  int64_t received_flits() const { return window_flits_received_; }
  int64_t completed_packets() const { return window_packets_completed_; }
  /// Packets retired inside the window with at least one dropped delivery
  /// (fault mode only; always 0 on a pristine mesh).
  int64_t dropped_packets() const { return window_packets_dropped_; }

  /// Flits per cycle on the busiest / average bisection link (the k vertical
  /// cut E/W channels in each direction), Table 1's L_bisection.
  double max_bisection_link_load() const;
  double avg_bisection_link_load() const;
  /// Flits per cycle on the busiest ejection (router->NIC) link, L_ejection.
  double max_ejection_link_load() const;
  double avg_ejection_link_load() const;

  /// Number of logical packets generated but not yet fully delivered.
  int64_t open_packets() const { return static_cast<int64_t>(open_.size()); }
  int64_t total_generated() const { return total_generated_; }
  int64_t total_completed() const { return total_completed_; }
  /// Lifetime dropped-packet count (conservation checks:
  /// total_generated == total_completed + total_dropped once quiescent).
  int64_t total_dropped() const { return total_dropped_; }
  /// Lifetime flits drained at destination NICs (not window-scoped) -- the
  /// telemetry time-series "delivered" counter.
  int64_t lifetime_flits_received() const { return lifetime_flits_received_; }

  /// Window flit count on the link leaving `node` through `port` (the
  /// telemetry per-link load heatmap input).
  int64_t link_flits(NodeId node, PortDir port) const {
    return link_flits_[static_cast<size_t>(node)]
                      [static_cast<size_t>(port_index(port))];
  }

  /// Attach the telemetry sink for packet-lifecycle trace events (shared
  /// instance only; shards never retire packets). Null detaches.
  void set_telemetry(Telemetry* t) { telemetry_ = t; }

 private:
  struct OpenPacket {
    Cycle gen = 0;
    int remaining = 0;
    int dropped = 0;  // deliveries lost to faults (docs/FAULTS.md)
    PacketKind kind = PacketKind::UnicastRequest;
  };

  void apply_flit_received(PacketId logical_id, bool tail, Cycle now);
  void apply_packet_dropped(PacketId logical_id, int count);
  void retire_if_closed(PacketId logical_id, OpenPacket* op, Cycle now);

  const MeshGeometry& geom_;
  Metrics* shared_ = nullptr;  // non-null: this instance is a capture shard
  int capture_phase_ = kCaptureInject;
  NodeId capture_node_ = 0;
  std::vector<CapturedMetricsEvent> captured_[kNumCapturePhases];
  /// Flat open-addressing map: insert/erase churn is allocation-free once
  /// the pre-reserved capacity covers the in-flight packet high-water mark.
  U64FlatMap<OpenPacket> open_{4096};

  bool in_window_ = false;
  Cycle window_start_ = 0;
  Cycle window_end_ = 0;

  RunningStat latency_all_;
  RunningStat latency_by_kind_[kNumPacketKinds];
  LatencyHistogram hist_all_;
  LatencyHistogram hist_by_kind_[kNumPacketKinds];
  Telemetry* telemetry_ = nullptr;
  int64_t lifetime_flits_received_ = 0;
  int64_t window_flits_received_ = 0;
  int64_t window_packets_completed_ = 0;
  int64_t window_packets_dropped_ = 0;
  int64_t total_generated_ = 0;
  int64_t total_completed_ = 0;
  int64_t total_dropped_ = 0;

  // link flit counters, window-scoped: [node][port]
  std::vector<std::array<int64_t, kNumPorts>> link_flits_;
  std::vector<int64_t> injection_flits_;
};

}  // namespace noc

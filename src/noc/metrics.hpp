#pragma once
// Network-level measurement: packet latency (to the LAST destination for
// multicasts, per the paper's "complete action" definition), received
// throughput, and per-link channel loads.
//
// Latency is measured from packet *generation* (so source queueing counts,
// which the paper's saturation definition -- latency reaching 3x the no-load
// latency -- requires), to the cycle the tail flit is drained at the last
// destination NIC.

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "noc/flit.hpp"
#include "noc/geometry.hpp"
#include "noc/routing.hpp"

namespace noc {

/// Classification used for per-traffic-type statistics.
enum class PacketKind { UnicastRequest, UnicastResponse, Broadcast };
constexpr int kNumPacketKinds = 3;

class Metrics {
 public:
  explicit Metrics(const MeshGeometry& geom);

  // ---- recording interface (called by NICs / routers) ----

  /// A logical packet came into existence. `deliveries` is the number of
  /// tail-flit deliveries required for completion (dest count; for a
  /// NIC-duplicated broadcast the copies share the logical id so the latency
  /// spans all of them).
  void on_logical_packet(PacketId logical_id, PacketKind kind, Cycle gen,
                         int deliveries);

  /// A flit was drained at a destination NIC.
  void on_flit_received(PacketId logical_id, const Flit& f, Cycle now);

  /// A flit crossed the link leaving `node` through `port` (Local = ejection
  /// link toward the NIC). Injection links are recorded via
  /// on_injection_link.
  void on_link_flit(NodeId node, PortDir port);
  void on_injection_link(NodeId node);

  // ---- measurement window ----

  void begin_window(Cycle now);
  void end_window(Cycle now);
  bool in_window() const { return in_window_; }
  Cycle window_cycles() const;

  // ---- results ----

  /// Average latency over packets *completed* inside the window.
  double avg_packet_latency() const { return latency_all_.mean(); }
  const RunningStat& latency_stat() const { return latency_all_; }
  const RunningStat& latency_stat(PacketKind k) const {
    return latency_by_kind_[static_cast<int>(k)];
  }

  /// Aggregate received flits per cycle inside the window.
  double received_flits_per_cycle() const;
  int64_t received_flits() const { return window_flits_received_; }
  int64_t completed_packets() const { return window_packets_completed_; }

  /// Flits per cycle on the busiest / average bisection link (the k vertical
  /// cut E/W channels in each direction), Table 1's L_bisection.
  double max_bisection_link_load() const;
  double avg_bisection_link_load() const;
  /// Flits per cycle on the busiest ejection (router->NIC) link, L_ejection.
  double max_ejection_link_load() const;
  double avg_ejection_link_load() const;

  /// Number of logical packets generated but not yet fully delivered.
  int64_t open_packets() const { return static_cast<int64_t>(open_.size()); }
  int64_t total_generated() const { return total_generated_; }
  int64_t total_completed() const { return total_completed_; }

 private:
  struct OpenPacket {
    Cycle gen = 0;
    int remaining = 0;
    PacketKind kind = PacketKind::UnicastRequest;
  };

  const MeshGeometry& geom_;
  /// Flat open-addressing map: insert/erase churn is allocation-free once
  /// the pre-reserved capacity covers the in-flight packet high-water mark.
  U64FlatMap<OpenPacket> open_{4096};

  bool in_window_ = false;
  Cycle window_start_ = 0;
  Cycle window_end_ = 0;

  RunningStat latency_all_;
  RunningStat latency_by_kind_[kNumPacketKinds];
  int64_t window_flits_received_ = 0;
  int64_t window_packets_completed_ = 0;
  int64_t total_generated_ = 0;
  int64_t total_completed_ = 0;

  // link flit counters, window-scoped: [node][port]
  std::vector<std::array<int64_t, kNumPorts>> link_flits_;
  std::vector<int64_t> injection_flits_;
};

}  // namespace noc

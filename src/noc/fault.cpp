#include "noc/fault.hpp"

#include <algorithm>

namespace noc {

namespace {

/// splitmix64: the fixed-width seeded stream every deterministic schedule
/// in the repo draws from (same family as the PRBS payload generators).
uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Link {
  NodeId a = 0;
  NodeId b = 0;
};

/// Port from `a` toward its mesh neighbor `b` (row-major ids).
PortDir port_toward(int kx, NodeId a, NodeId b) {
  const int ax = a % kx, ay = a / kx;
  const int bx = b % kx, by = b / kx;
  if (bx == ax + 1 && by == ay) return PortDir::East;
  if (bx == ax - 1 && by == ay) return PortDir::West;
  if (by == ay + 1 && bx == ax) return PortDir::North;
  NOC_EXPECTS(by == ay - 1 && bx == ax);
  return PortDir::South;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::LinkDown: return "link-down";
    case FaultKind::LinkUp: return "link-up";
    case FaultKind::RouterDegrade: return "router-degrade";
    case FaultKind::RouterRestore: return "router-restore";
  }
  return "?";
}

FaultPlan make_random_fault_plan(const MeshGeometry& geom, uint64_t seed,
                                 int links, int degraded_routers,
                                 Cycle kill_at, Cycle revive_after) {
  const int kx = geom.kx(), ky = geom.ky();
  std::vector<Link> edges;
  for (NodeId id = 0; id < geom.num_nodes(); ++id) {
    const int x = id % kx, y = id / kx;
    if (x + 1 < kx) edges.push_back({id, id + 1});
    if (y + 1 < ky) edges.push_back({id, id + kx});
  }
  links = std::min<int>(links, static_cast<int>(edges.size()));
  degraded_routers = std::min(degraded_routers, geom.num_nodes());

  uint64_t rng = seed ? seed : 1;
  // Partial Fisher-Yates: the first `links` entries are a uniform distinct
  // sample, identically on every platform (no std::shuffle: libstdc++ and
  // libc++ disagree on the draw order).
  for (int i = 0; i < links; ++i) {
    const auto j =
        i + static_cast<int>(splitmix64(rng) % (edges.size() - i));
    std::swap(edges[static_cast<size_t>(i)], edges[static_cast<size_t>(j)]);
  }
  std::vector<NodeId> routers(static_cast<size_t>(geom.num_nodes()));
  for (NodeId id = 0; id < geom.num_nodes(); ++id)
    routers[static_cast<size_t>(id)] = id;
  for (int i = 0; i < degraded_routers; ++i) {
    const auto j =
        i + static_cast<int>(splitmix64(rng) % (routers.size() - i));
    std::swap(routers[static_cast<size_t>(i)],
              routers[static_cast<size_t>(j)]);
  }

  FaultPlan plan;
  for (int i = 0; i < links; ++i)
    plan.kill_link(kill_at, edges[static_cast<size_t>(i)].a,
                   edges[static_cast<size_t>(i)].b);
  for (int i = 0; i < degraded_routers; ++i)
    plan.degrade_router(kill_at, routers[static_cast<size_t>(i)]);
  if (revive_after > 0) {
    const Cycle up = kill_at + revive_after;
    for (int i = 0; i < links; ++i)
      plan.revive_link(up, edges[static_cast<size_t>(i)].a,
                       edges[static_cast<size_t>(i)].b);
    for (int i = 0; i < degraded_routers; ++i)
      plan.restore_router(up, routers[static_cast<size_t>(i)]);
  }
  return plan;
}

void FaultState::init(const MeshGeometry& geom, const FaultPlan& plan) {
  enabled_ = !plan.empty();
  n_ = geom.num_nodes();
  kx_ = geom.kx();
  ky_ = geom.ky();
  events_ = plan.events;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  cursor_ = 0;
  epoch_ = 0;
  const auto n = static_cast<size_t>(n_);
  dead_.assign(n, PortMask{});
  link_down_.assign(n * kNumPorts, 0);
  degraded_.assign(n, 0);
  degrade_depth_.assign(n, 0);
  comp_.assign(n, 0);
  bfs_.assign(n, 0);
  parent_.assign(n, -1);
  on_tree_.assign(n, 0);
  next_.assign(n * n, -1);
  if (enabled_) {
    for (const FaultEvent& e : events_) {
      NOC_EXPECTS(e.a >= 0 && e.a < n_ && e.b >= 0 && e.b < n_);
      if (e.kind == FaultKind::LinkDown || e.kind == FaultKind::LinkUp)
        NOC_EXPECTS(MeshGeometry(kx_, ky_).manhattan(e.a, e.b) == 1);
    }
    recompute();
  }
}

bool FaultState::advance(Cycle now) {
  bool fired = false, topo_changed = false;
  while (cursor_ < events_.size() && events_[cursor_].at <= now) {
    const FaultEvent& e = events_[cursor_++];
    apply_event(e);
    fired = true;
    if (e.kind == FaultKind::LinkDown || e.kind == FaultKind::LinkUp)
      topo_changed = true;
  }
  if (topo_changed) {
    ++epoch_;
    recompute();
  }
  return fired;
}

void FaultState::apply_event(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::LinkDown:
    case FaultKind::LinkUp: {
      const int delta = e.kind == FaultKind::LinkDown ? 1 : -1;
      const PortDir ab = port_toward(kx_, e.a, e.b);
      const PortDir ba = port_toward(kx_, e.b, e.a);
      auto bump = [&](NodeId node, PortDir p) {
        int16_t& depth =
            link_down_[static_cast<size_t>(node) * kNumPorts +
                       static_cast<size_t>(port_index(p))];
        depth = static_cast<int16_t>(std::max(0, depth + delta));
        if (depth > 0)
          dead_[static_cast<size_t>(node)].set(port_index(p));
        else
          dead_[static_cast<size_t>(node)].clear(port_index(p));
      };
      bump(e.a, ab);
      bump(e.b, ba);
      break;
    }
    case FaultKind::RouterDegrade:
    case FaultKind::RouterRestore: {
      const int delta = e.kind == FaultKind::RouterDegrade ? 1 : -1;
      int16_t& depth = degrade_depth_[static_cast<size_t>(e.a)];
      depth = static_cast<int16_t>(std::max(0, depth + delta));
      degraded_[static_cast<size_t>(e.a)] = depth > 0 ? 1 : 0;
      break;
    }
  }
}

void FaultState::recompute() {
  const auto n = static_cast<size_t>(n_);
  auto live = [&](NodeId from, PortDir p) {
    return !dead_[static_cast<size_t>(from)].test(port_index(p));
  };

  // Connected components of the surviving mesh (BFS, preallocated queue).
  std::fill(comp_.begin(), comp_.end(), -1);
  for (NodeId root = 0; root < n_; ++root) {
    if (comp_[static_cast<size_t>(root)] >= 0) continue;
    int head = 0, tail = 0;
    bfs_[tail++] = root;
    comp_[static_cast<size_t>(root)] = root;
    while (head < tail) {
      const NodeId v = bfs_[head++];
      const int x = v % kx_, y = v / kx_;
      auto visit = [&](NodeId u, PortDir p) {
        if (live(v, p) && comp_[static_cast<size_t>(u)] < 0) {
          comp_[static_cast<size_t>(u)] = root;
          bfs_[tail++] = u;
        }
      };
      if (x + 1 < kx_) visit(v + 1, PortDir::East);
      if (x > 0) visit(v - 1, PortDir::West);
      if (y + 1 < ky_) visit(v + kx_, PortDir::North);
      if (y > 0) visit(v - kx_, PortDir::South);
    }
  }

  // The dimension-ordered spanning tree of the surviving topology: node 0
  // is the root; every other node attaches through a live "up" link (South
  // preferred, then West -- the pristine tree is the row-0 spine with one
  // column hanging off each spine node). Nodes are processed in ascending
  // (Manhattan level, id) order, which ascending id already is for these
  // two up directions, so a plain id scan suffices: both candidate parents
  // of v have smaller ids and are already decided.
  std::fill(parent_.begin(), parent_.end(), -1);
  std::fill(on_tree_.begin(), on_tree_.end(), 0);
  on_tree_[0] = 1;
  for (NodeId v = 1; v < n_; ++v) {
    const int x = v % kx_, y = v / kx_;
    if (y > 0 && live(v, PortDir::South) &&
        on_tree_[static_cast<size_t>(v - kx_)]) {
      parent_[static_cast<size_t>(v)] =
          static_cast<int8_t>(port_index(PortDir::South));
      on_tree_[static_cast<size_t>(v)] = 1;
    } else if (x > 0 && live(v, PortDir::West) &&
               on_tree_[static_cast<size_t>(v - 1)]) {
      parent_[static_cast<size_t>(v)] =
          static_cast<int8_t>(port_index(PortDir::West));
      on_tree_[static_cast<size_t>(v)] = 1;
    }
  }

  // Per-destination next-hop table: default "toward the root" (the up
  // phase), overwritten along the destination's ancestor chain with the
  // down hops. Tree paths are up* then down*, so the suffix of a path is
  // the path from its own node: per-hop table routing follows the whole
  // path consistently.
  std::fill(next_.begin(), next_.end(), -1);
  for (NodeId dest = 0; dest < n_; ++dest) {
    if (!on_tree_[static_cast<size_t>(dest)]) continue;
    int8_t* col = next_.data() + static_cast<size_t>(dest);
    for (NodeId v = 0; v < n_; ++v)
      if (on_tree_[static_cast<size_t>(v)])
        col[static_cast<size_t>(v) * n] = parent_[static_cast<size_t>(v)];
    col[static_cast<size_t>(dest) * n] =
        static_cast<int8_t>(port_index(PortDir::Local));
    NodeId child = dest;
    while (parent_[static_cast<size_t>(child)] >= 0) {
      const PortDir up = port_dir(parent_[static_cast<size_t>(child)]);
      const NodeId anc = child + (up == PortDir::South  ? -kx_
                                  : up == PortDir::West ? -1
                                  : up == PortDir::North ? kx_
                                                         : 1);
      col[static_cast<size_t>(anc) * n] =
          static_cast<int8_t>(port_index(opposite(up)));
      child = anc;
    }
  }
}

RouteSet FaultState::escape_tree_route(NodeId here, const DestMask& dests,
                                       DestMask* unreachable) const {
  RouteSet rs;
  *unreachable = DestMask{};
  const int8_t* row = next_.data() + static_cast<size_t>(here) * n_;
  dests.for_each([&](int dest) {
    // Self-delivery never touches the mesh: always routable, even when the
    // node itself fell off the escape tree.
    if (dest == here) {
      rs[PortDir::Local].set(dest);
      return;
    }
    const int8_t p = on_tree_[static_cast<size_t>(here)]
                         ? row[static_cast<size_t>(dest)]
                         : int8_t{-1};
    if (p < 0)
      unreachable->set(dest);
    else
      rs[port_dir(p)].set(dest);
  });
  return rs;
}

}  // namespace noc

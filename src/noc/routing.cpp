#include "noc/routing.hpp"

#include <bit>

#include "common/assert.hpp"

namespace noc {

const char* port_name(PortDir d) {
  switch (d) {
    case PortDir::North: return "N";
    case PortDir::East: return "E";
    case PortDir::South: return "S";
    case PortDir::West: return "W";
    case PortDir::Local: return "L";
  }
  return "?";
}

PortDir opposite(PortDir out) {
  switch (out) {
    case PortDir::North: return PortDir::South;
    case PortDir::East: return PortDir::West;
    case PortDir::South: return PortDir::North;
    case PortDir::West: return PortDir::East;
    case PortDir::Local: return PortDir::Local;
  }
  return PortDir::Local;
}

Coord neighbor_coord(Coord c, PortDir out) {
  switch (out) {
    case PortDir::North: return {c.x, c.y + 1};
    case PortDir::East: return {c.x + 1, c.y};
    case PortDir::South: return {c.x, c.y - 1};
    case PortDir::West: return {c.x - 1, c.y};
    case PortDir::Local: return c;
  }
  return c;
}

uint8_t RouteSet::request_vector() const {
  uint8_t v = 0;
  for (int i = 0; i < kNumPorts; ++i)
    if (port_dests[static_cast<size_t>(i)].any()) v |= uint8_t{1} << i;
  return v;
}

int RouteSet::fanout() const { return std::popcount(request_vector()); }

RouteSet xy_tree_route(const MeshGeometry& geom, NodeId here, DestMask dests) {
  NOC_EXPECTS(dests.any());
  RouteSet rs;
  const Coord c = geom.coord(here);
  // Iterate set bits directly: O(destinations) instead of O(nodes), which
  // matters for unicasts on large-k meshes.
  dests.for_each([&](int n) {
    const Coord d = geom.coord(n);
    if (d.x > c.x) {
      rs[PortDir::East].set(n);
    } else if (d.x < c.x) {
      rs[PortDir::West].set(n);
    } else if (d.y > c.y) {
      rs[PortDir::North].set(n);
    } else if (d.y < c.y) {
      rs[PortDir::South].set(n);
    } else {
      rs[PortDir::Local].set(n);
    }
  });
  return rs;
}

RouteSet yx_tree_route(const MeshGeometry& geom, NodeId here, DestMask dests) {
  NOC_EXPECTS(dests.any());
  RouteSet rs;
  const Coord c = geom.coord(here);
  dests.for_each([&](int n) {
    const Coord d = geom.coord(n);
    if (d.y > c.y) {
      rs[PortDir::North].set(n);
    } else if (d.y < c.y) {
      rs[PortDir::South].set(n);
    } else if (d.x > c.x) {
      rs[PortDir::East].set(n);
    } else if (d.x < c.x) {
      rs[PortDir::West].set(n);
    } else {
      rs[PortDir::Local].set(n);
    }
  });
  return rs;
}

PortDir xy_route(const MeshGeometry& geom, NodeId here, NodeId dest) {
  const RouteSet rs = xy_tree_route(geom, here, MeshGeometry::node_mask(dest));
  for (int i = 0; i < kNumPorts; ++i)
    if (rs.port_dests[static_cast<size_t>(i)].any()) return port_dir(i);
  NOC_ASSERT(false);
  return PortDir::Local;
}

}  // namespace noc

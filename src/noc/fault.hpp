#pragma once
// Deterministic fault injection for the mesh datapath (docs/FAULTS.md).
//
// A FaultPlan is a seeded, cycle-stamped schedule of events -- kill a link,
// degrade a router's arbiters to half rate, revive either after N cycles --
// that Network applies at cycle boundaries (Network::apply_faults, the very
// first thing Network::step does in every stepping mode, so the schedule
// commutes with activity gating and span decomposition). The plan is part
// of NetworkConfig and campaign manifests hash its generating parameters
// like any other knob (src/campaign/manifest.cpp).
//
// FaultState is the network-resident view: per-router dead-port masks and
// degrade flags, surviving-topology connectivity, and the up*/down* escape
// tree the MinimalAdaptive policy's Duato escape lane re-routes over (the
// deadlock argument lives in docs/ROUTING.md "Escape routing on a faulted
// mesh"). Everything here is preallocated at init: advancing the schedule
// and recomputing the tables in the middle of a measured window never
// touches the heap (the steady-state zero-allocation invariant holds for
// faulted networks, tests/test_zero_alloc.cpp).

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "noc/geometry.hpp"
#include "noc/routing.hpp"
#include "sim/tickable.hpp"

namespace noc {

enum class FaultKind : uint8_t {
  LinkDown = 0,      // bidirectional link (a, b) stops accepting new packets
  LinkUp = 1,        // revive a previously killed link
  RouterDegrade = 2, // router a's allocators run at half rate (odd cycles idle)
  RouterRestore = 3, // undo RouterDegrade
};

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  Cycle at = 0;
  FaultKind kind = FaultKind::LinkDown;
  NodeId a = 0;  // link endpoint / degraded router
  NodeId b = 0;  // other link endpoint (ignored for router events)
};

/// An ordered schedule of fault events. Events are applied in (cycle,
/// insertion-order) order; the builder methods return *this so plans read
/// as chains. The plan is pure data -- copying a NetworkConfig copies it.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  FaultPlan& kill_link(Cycle at, NodeId a, NodeId b) {
    events.push_back({at, FaultKind::LinkDown, a, b});
    return *this;
  }
  FaultPlan& revive_link(Cycle at, NodeId a, NodeId b) {
    events.push_back({at, FaultKind::LinkUp, a, b});
    return *this;
  }
  FaultPlan& degrade_router(Cycle at, NodeId r) {
    events.push_back({at, FaultKind::RouterDegrade, r, r});
    return *this;
  }
  FaultPlan& restore_router(Cycle at, NodeId r) {
    events.push_back({at, FaultKind::RouterRestore, r, r});
    return *this;
  }
};

/// Seeded deterministic schedule: kill `links` distinct mesh links and
/// degrade `degraded_routers` distinct routers at `kill_at`; when
/// `revive_after` > 0, revive everything `revive_after` cycles later. The
/// same (geometry, seed, counts) always yields the same plan, on every
/// platform -- campaign hashing and the CI fault soak depend on that.
FaultPlan make_random_fault_plan(const MeshGeometry& geom, uint64_t seed,
                                 int links, int degraded_routers,
                                 Cycle kill_at, Cycle revive_after);

/// Network-resident fault state: the applied prefix of a FaultPlan plus the
/// derived routing tables for the surviving topology.
///
/// Escape routing uses a spanning tree of the surviving mesh whose edges
/// are oriented by a FIXED potential (a node's Manhattan distance from node
/// 0), so every tree path is a sequence of "up" hops (toward node 0)
/// followed by "down" hops. Because the orientation never changes across
/// fault epochs, the union of the escape routing functions of ALL epochs is
/// acyclic -- packets in flight across a topology change cannot close a
/// dependency cycle (docs/ROUTING.md has the full argument). With no
/// faults in the plan the FaultState is disabled and the router keeps the
/// exact pre-fault XY escape, bit for bit.
class FaultState {
 public:
  FaultState() = default;

  /// Sort the plan, size every table for `geom`, and compute the epoch-0
  /// topology (a plan whose first event is at cycle 1000 still routes its
  /// escape lane over the up*/down* tree from cycle 0: the escape function
  /// is fixed per run, only the surviving topology underneath it changes).
  void init(const MeshGeometry& geom, const FaultPlan& plan);

  /// False when the plan is empty: every query below is then unused and
  /// the datapath keeps its pristine behavior.
  bool enabled() const { return enabled_; }

  /// Apply every event stamped <= now. Returns true when any event fired
  /// this call. Allocation-free after init().
  bool advance(Cycle now);

  /// Cycle of the next unapplied event (kCycleNever when exhausted).
  Cycle next_event_at() const {
    return cursor_ < events_.size() ? events_[cursor_].at : kCycleNever;
  }

  /// Monotone counter bumped on every topology change (link events).
  uint64_t epoch() const { return epoch_; }

  /// Applied-event cursor into the sorted schedule: events_[i] for
  /// i < cursor() have fired. Bracketing advance() with cursor() reads is
  /// how the telemetry layer records exactly the events one step applied.
  size_t cursor() const { return cursor_; }
  const FaultEvent& event(size_t i) const {
    return events_[i];
  }

  // --- surviving-topology queries (valid only when enabled()) -----------
  bool port_dead(NodeId n, PortDir p) const {
    return dead_[static_cast<size_t>(n)].test(port_index(p));
  }
  const PortMask& dead_ports(NodeId n) const {
    return dead_[static_cast<size_t>(n)];
  }
  bool degraded(NodeId n) const {
    return degraded_[static_cast<size_t>(n)] != 0;
  }
  /// Same connected component of the surviving mesh (the reachability
  /// predicate for the oblivious policies' injection filter).
  bool connected(NodeId a, NodeId b) const {
    return comp_[static_cast<size_t>(a)] == comp_[static_cast<size_t>(b)];
  }
  /// Node is spanned by the escape tree. A node all of whose "up" links
  /// (West / South) died can be connected yet off-tree; packets that
  /// cannot reach the escape lane are dropped rather than risk deadlock.
  bool on_escape_tree(NodeId n) const {
    return on_tree_[static_cast<size_t>(n)] != 0;
  }
  bool escape_reachable(NodeId src, NodeId dest) const {
    return on_escape_tree(src) && on_escape_tree(dest);
  }
  /// Next hop of the tree path here -> dest; Local when here == dest;
  /// PortDir(kEscapeUnreachable) sentinel never escapes this API -- callers
  /// must check escape_reachable() (or on_escape_tree) first.
  PortDir escape_next(NodeId here, NodeId dest) const {
    const int8_t p = next_[static_cast<size_t>(here) * n_ +
                           static_cast<size_t>(dest)];
    NOC_EXPECTS(p >= 0);
    return port_dir(p);
  }
  /// Partition `dests` by tree next hop at `here` (the fault-mode
  /// replacement for the XY multicast tree on the escape lane).
  /// Destinations with no tree path are returned in *unreachable -- the
  /// router converts them into counted drops.
  RouteSet escape_tree_route(NodeId here, const DestMask& dests,
                             DestMask* unreachable) const;

 private:
  void apply_event(const FaultEvent& e);
  void recompute();

  bool enabled_ = false;
  int n_ = 0;
  int kx_ = 0;
  int ky_ = 0;
  std::vector<FaultEvent> events_;  // stable-sorted by cycle
  size_t cursor_ = 0;
  uint64_t epoch_ = 0;
  std::vector<PortMask> dead_;          // per node, dead output ports
  std::vector<int16_t> link_down_;      // per (node, port): down-event depth
  std::vector<uint8_t> degraded_;
  std::vector<int16_t> degrade_depth_;  // nested degrade/restore pairs
  std::vector<int32_t> comp_;           // surviving-component id
  std::vector<int32_t> bfs_;            // scratch queue (comp labeling)
  std::vector<int8_t> parent_;          // port toward tree parent; -1 root/off
  std::vector<uint8_t> on_tree_;
  std::vector<int8_t> next_;            // n*n next-hop table; -1 unreachable
};

}  // namespace noc

#include "noc/arbiters.hpp"

#include "common/assert.hpp"

namespace noc {

RoundRobinArbiter::RoundRobinArbiter(int n) : n_(n) {
  NOC_EXPECTS(n >= 1 && n <= 32);
}

int RoundRobinArbiter::peek(uint32_t requests) const {
  if (requests == 0) return -1;
  for (int off = 0; off < n_; ++off) {
    const int i = (next_ + off) % n_;
    if (requests & (uint32_t{1} << i)) return i;
  }
  return -1;
}

int RoundRobinArbiter::arbitrate(uint32_t requests) {
  const int winner = peek(requests);
  if (winner >= 0) next_ = (winner + 1) % n_;
  return winner;
}

MatrixArbiter::MatrixArbiter(int n)
    : n_(n), w_(static_cast<size_t>(n * n), false) {
  NOC_EXPECTS(n >= 1 && n <= 32);
  // Initial priority: lower index beats higher index.
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) w_[static_cast<size_t>(i * n + j)] = true;
}

int MatrixArbiter::peek(uint32_t requests) const {
  if (requests == 0) return -1;
  for (int i = 0; i < n_; ++i) {
    if (!(requests & (uint32_t{1} << i))) continue;
    bool wins = true;
    for (int j = 0; j < n_ && wins; ++j) {
      if (j == i || !(requests & (uint32_t{1} << j))) continue;
      if (!beats(i, j)) wins = false;
    }
    if (wins) return i;
  }
  // With a consistent matrix exactly one requester wins; defensive fallback.
  for (int i = 0; i < n_; ++i)
    if (requests & (uint32_t{1} << i)) return i;
  return -1;
}

int MatrixArbiter::arbitrate(uint32_t requests) {
  const int winner = peek(requests);
  if (winner < 0) return -1;
  // Demote the winner below all others.
  for (int j = 0; j < n_; ++j) {
    if (j == winner) continue;
    w_[static_cast<size_t>(winner * n_ + j)] = false;
    w_[static_cast<size_t>(j * n_ + winner)] = true;
  }
  return winner;
}

}  // namespace noc

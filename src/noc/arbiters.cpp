#include "noc/arbiters.hpp"

#include <bit>

#include "common/assert.hpp"

namespace noc {

RoundRobinArbiter::RoundRobinArbiter(int n) : n_(n) {
  NOC_EXPECTS(n >= 1 && n <= 32);
}

int RoundRobinArbiter::peek(uint32_t requests) const {
  const uint32_t r = requests & valid_mask();
  if (r == 0) return -1;
  // First requester at or after the pointer, wrapping.
  const uint32_t at_or_after = r & (~uint32_t{0} << next_);
  return std::countr_zero(at_or_after != 0 ? at_or_after : r);
}

int RoundRobinArbiter::arbitrate(uint32_t requests) {
  const int winner = peek(requests);
  if (winner >= 0) next_ = (winner + 1) % n_;
  return winner;
}

MatrixArbiter::MatrixArbiter(int n) : n_(n) {
  NOC_EXPECTS(n >= 1 && n <= 32);
  // Initial priority: lower index beats higher index.
  for (int i = 0; i < n; ++i)
    beats_[static_cast<size_t>(i)] = (~uint32_t{0} << (i + 1)) & valid_mask();
}

int MatrixArbiter::peek(uint32_t requests) const {
  const uint32_t r = requests & valid_mask();
  if (r == 0) return -1;
  for (uint32_t scan = r; scan != 0; scan &= scan - 1) {
    const int i = std::countr_zero(scan);
    const uint32_t others = r & ~(uint32_t{1} << i);
    if ((others & ~beats_[static_cast<size_t>(i)]) == 0) return i;
  }
  // With a consistent matrix exactly one requester wins; defensive fallback.
  return std::countr_zero(r);
}

int MatrixArbiter::arbitrate(uint32_t requests) {
  const int winner = peek(requests);
  if (winner < 0) return -1;
  // Demote the winner below all others.
  for (int j = 0; j < n_; ++j) beats_[static_cast<size_t>(j)] |= uint32_t{1} << winner;
  beats_[static_cast<size_t>(winner)] = 0;
  return winner;
}

}  // namespace noc

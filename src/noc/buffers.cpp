#include "noc/buffers.hpp"

#include <algorithm>
#include <climits>

namespace noc {

void InputVc::open_packet(const Flit& head, std::vector<Branch> branches) {
  NOC_EXPECTS(!busy_);
  NOC_EXPECTS(is_head(head.type));
  NOC_EXPECTS(!branches.empty());
  busy_ = true;
  branches_ = std::move(branches);
  front_seq_ = 0;
  accepted_flits = 0;
  packet_len = head.packet_len;
}

void InputVc::close_packet() {
  NOC_EXPECTS(busy_);
  NOC_EXPECTS(fifo_.empty());
  busy_ = false;
  branches_.clear();
  accepted_flits = 0;
  packet_len = 0;
  front_seq_ = 0;
}

void InputVc::push(const Flit& f) {
  NOC_EXPECTS(busy_);
  NOC_EXPECTS(static_cast<int>(fifo_.size()) < depth_);
  if (fifo_.empty()) front_seq_ = f.seq;
  NOC_ASSERT(f.seq == front_seq_ + static_cast<int>(fifo_.size()));
  fifo_.push_back(f);
}

const Flit& InputVc::flit_at_seq(int seq) const {
  NOC_EXPECTS(has_seq(seq));
  return fifo_[static_cast<size_t>(seq - front_seq_)];
}

bool InputVc::has_seq(int seq) const {
  return seq >= front_seq_ &&
         seq < front_seq_ + static_cast<int>(fifo_.size());
}

Flit InputVc::pop_front() {
  NOC_EXPECTS(!fifo_.empty());
  Flit f = fifo_.front();
  fifo_.pop_front();
  ++front_seq_;
  return f;
}

int InputVc::current_seq() const {
  int s = INT_MAX;
  for (const auto& b : branches_)
    if (!b.tail_sent) s = std::min(s, b.next_seq);
  return s;
}

bool InputVc::all_branches_done() const {
  return std::all_of(branches_.begin(), branches_.end(),
                     [](const Branch& b) { return b.tail_sent; });
}

void DownstreamState::configure(const VcConfig& cfg) {
  cfg_ = cfg;
  credits_.assign(static_cast<size_t>(cfg.total_vcs()), 0);
  for (int vc = 0; vc < cfg.total_vcs(); ++vc) {
    credits_[static_cast<size_t>(vc)] = cfg.depth_of_vc(vc);
    free_vcs_[static_cast<int>(cfg.mc_of_vc(vc))].push_back(vc);
  }
}

int DownstreamState::allocate_vc(MsgClass mc) {
  auto& q = free_vcs_[static_cast<int>(mc)];
  if (q.empty()) return -1;
  const int vc = q.front();
  q.pop_front();
  return vc;
}

void DownstreamState::release_vc(int vc) {
  NOC_EXPECTS(vc >= 0 && vc < cfg_.total_vcs());
  auto& q = free_vcs_[static_cast<int>(cfg_.mc_of_vc(vc))];
  NOC_ASSERT(std::find(q.begin(), q.end(), vc) == q.end());
  q.push_back(vc);
}

bool DownstreamState::has_free_vc(MsgClass mc) const {
  return !free_vcs_[static_cast<int>(mc)].empty();
}

int DownstreamState::free_vc_count(MsgClass mc) const {
  return static_cast<int>(free_vcs_[static_cast<int>(mc)].size());
}

void DownstreamState::consume_credit(int vc) {
  NOC_EXPECTS(credits_[static_cast<size_t>(vc)] > 0);
  --credits_[static_cast<size_t>(vc)];
}

void DownstreamState::return_credit(int vc) {
  ++credits_[static_cast<size_t>(vc)];
  NOC_ENSURES(credits_[static_cast<size_t>(vc)] <= cfg_.depth_of_vc(vc));
}

}  // namespace noc

#include "noc/buffers.hpp"

#include <climits>

namespace noc {

void InputVc::open_packet(const Flit& head, const BranchList& branches) {
  NOC_EXPECTS(!busy_);
  NOC_EXPECTS(is_head(head.type));
  NOC_EXPECTS(!branches.empty());
  busy_ = true;
  branches_ = branches;
  front_seq_ = 0;
  accepted_flits = 0;
  packet_len = head.packet_len;
  rc_ = head.rc;
  logical_ = head.logical_id;
}

void InputVc::close_packet() {
  NOC_EXPECTS(busy_);
  NOC_EXPECTS(fifo_.empty());
  busy_ = false;
  branches_.clear();
  accepted_flits = 0;
  packet_len = 0;
  front_seq_ = 0;
  rc_ = RouteClass::XY;
  logical_ = 0;
}

void InputVc::push(const Flit& f) {
  NOC_EXPECTS(busy_);
  NOC_EXPECTS(fifo_.size() < depth_);
  if (fifo_.empty()) front_seq_ = f.seq;
  NOC_ASSERT(f.seq == front_seq_ + fifo_.size());
  fifo_.push_back(f);
}

const Flit& InputVc::flit_at_seq(int seq) const {
  NOC_EXPECTS(has_seq(seq));
  return fifo_.at(seq - front_seq_);
}

bool InputVc::has_seq(int seq) const {
  return seq >= front_seq_ && seq < front_seq_ + fifo_.size();
}

Flit InputVc::pop_front() {
  NOC_EXPECTS(!fifo_.empty());
  Flit f = fifo_.pop_front();
  ++front_seq_;
  return f;
}

int InputVc::current_seq() const {
  int s = INT_MAX;
  for (const auto& b : branches_)
    if (!b.tail_sent && b.next_seq < s) s = b.next_seq;
  return s;
}

bool InputVc::all_branches_done() const {
  for (const auto& b : branches_)
    if (!b.tail_sent) return false;
  return true;
}

void DownstreamState::configure(const VcConfig& cfg) {
  NOC_EXPECTS(cfg.total_vcs() <= kMaxTotalVcs);
  for (int m = 0; m < kNumMsgClasses; ++m)
    NOC_EXPECTS(cfg.depth_per_mc[m] <= kMaxVcDepth);
  cfg_ = cfg;
  credits_.fill(0);
  for (auto& per_mc : free_vcs_)
    for (auto& q : per_mc) q.clear();
  next_stamp_ = 0;
  free_ = VcMask{};
  credit_ = VcMask{};
  for (int m = 0; m < kNumMsgClasses; ++m) {
    class_member_[m] = VcMask{};
    for (int l = 0; l < kNumVcLanes; ++l) {
      member_[m][l] = VcMask{};
      lane_credit_sum_[m][l] = 0;
    }
  }
  // Ascending VC id with ascending stamps: the lane-Any merge order starts
  // out as plain id order, exactly the pre-lane single queue.
  for (int vc = 0; vc < cfg.total_vcs(); ++vc) {
    const int m = static_cast<int>(cfg.mc_of_vc(vc));
    const int l = static_cast<int>(cfg.lane_of_vc(vc));
    mc_of_[vc] = static_cast<int8_t>(m);
    lane_of_[vc] = static_cast<int8_t>(l);
    credits_[static_cast<size_t>(vc)] = cfg.depth_of_vc(vc);
    free_vcs_[m][l].push_back({static_cast<int8_t>(vc), next_stamp_++});
    free_.set(vc);
    credit_.set(vc);
    member_[m][l].set(vc);
    class_member_[m].set(vc);
    lane_credit_sum_[m][l] += cfg.depth_of_vc(vc);
  }
}

int DownstreamState::allocate_vc(MsgClass mc, VcLane lane) {
  const int m = static_cast<int>(mc);
  auto* q = &free_vcs_[m][0];
  if (lane == VcLane::Any) {
    // Merge the two lane FIFOs by release stamp: the pop order is the one
    // global least-recently-freed FIFO, regardless of the lane split.
    auto& q1 = free_vcs_[m][1];
    if (!q1.empty() && (q->empty() || q1.front().stamp < q->front().stamp))
      q = &q1;
  } else {
    q = &free_vcs_[m][static_cast<int>(lane)];
  }
  if (q->empty()) return -1;
  const int vc = q->pop_front().vc;
  free_.clear(vc);
  return vc;
}

void DownstreamState::release_vc(int vc) {
  NOC_EXPECTS(vc >= 0 && vc < cfg_.total_vcs());
  NOC_ASSERT(!free_.test(vc));
  free_vcs_[mc_of_[vc]][lane_of_[vc]].push_back(
      {static_cast<int8_t>(vc), next_stamp_++});
  free_.set(vc);
}

VcMask DownstreamState::lane_members(MsgClass mc, VcLane lane) const {
  const int m = static_cast<int>(mc);
  if (lane == VcLane::Any) return class_member_[m];
  return member_[m][static_cast<int>(lane)];
}

void DownstreamState::consume_credit(int vc) {
  NOC_EXPECTS(credits_[static_cast<size_t>(vc)] > 0);
  if (--credits_[static_cast<size_t>(vc)] == 0) credit_.clear(vc);
  --lane_credit_sum_[mc_of_[vc]][lane_of_[vc]];
}

void DownstreamState::return_credit(int vc) {
  ++credits_[static_cast<size_t>(vc)];
  credit_.set(vc);
  ++lane_credit_sum_[mc_of_[vc]][lane_of_[vc]];
  NOC_ENSURES(credits_[static_cast<size_t>(vc)] <= cfg_.depth_of_vc(vc));
}

}  // namespace noc

#pragma once
// Human-readable descriptions of datapath objects, kept out of the hot-path
// headers so flit.hpp (included by every router TU) stays free of <string>
// and the formatting code is only linked where debugging actually needs it.

#include <string>

#include "noc/flit.hpp"

namespace noc {

std::string describe(const Flit& f);

}  // namespace noc

#pragma once
// Flit: the flow-control unit moving through the network (paper Sec 2.1).
//
// Flits are 64-bit on the chip; here the struct additionally carries the
// bookkeeping the hardware encodes in head-flit fields and side-band wires:
// the destination mask (multicast), message class, sequence number within
// the packet, and timestamps for the latency statistics.

#include <cstdint>

#include "noc/geometry.hpp"
#include "sim/tickable.hpp"

namespace noc {

/// Message classes avoid request/response protocol deadlock in
/// cache-coherent multicores (paper Sec 3). Requests are single-flit
/// (coherence requests/acks), responses are 5-flit (cache-line data).
enum class MsgClass : uint8_t { Request = 0, Response = 1 };
constexpr int kNumMsgClasses = 2;

enum class FlitType : uint8_t { Head, Body, Tail, HeadTail };

/// Per-packet routing class under the routing-policy subsystem
/// (noc/route_policy.hpp, docs/ROUTING.md). Stamped at injection from the
/// network's RoutePolicy; selects both the routing function applied at
/// each hop and the VC lane the packet may occupy, which is what keeps
/// mixed-policy traffic deadlock-free. Escape marks a MinimalAdaptive
/// packet that fell through to the dimension-ordered escape lane -- the
/// class is sticky from that hop on (the escape subnetwork must stay
/// acyclic end-to-end).
enum class RouteClass : uint8_t { XY = 0, YX = 1, Adaptive = 2, Escape = 3 };
constexpr int kNumRouteClasses = 4;

inline bool is_head(FlitType t) {
  return t == FlitType::Head || t == FlitType::HeadTail;
}
inline bool is_tail(FlitType t) {
  return t == FlitType::Tail || t == FlitType::HeadTail;
}

using PacketId = uint64_t;

struct Flit {
  PacketId packet_id = 0;
  /// Logical packet this flit belongs to: equals packet_id except for
  /// NIC-duplicated broadcast copies, which share the original broadcast's
  /// id so latency can be measured to the last delivered copy.
  PacketId logical_id = 0;
  NodeId src = 0;
  /// Destinations THIS copy is responsible for (1 bit for unicast; the
  /// packet's full set at injection). On a multicast fork each branch copy
  /// receives a disjoint partition, so no node is delivered to twice
  /// (DESIGN.md Sec 3). This is the only destination field a flit carries
  /// -- matching the hardware, whose head flit holds one mask that each
  /// router rewrites at a fork; the packet-level full set lives in
  /// Packet::dest_mask. Keeping the flit to a single multi-word mask also
  /// keeps the hot-path copy small (docs/SCALING.md).
  DestMask branch_mask;
  MsgClass mc = MsgClass::Request;
  FlitType type = FlitType::HeadTail;
  /// Routing class (see RouteClass above). Routers rewrite it on a fork /
  /// forward exactly like branch_mask: an Adaptive flit granted an escape
  /// VC continues downstream as Escape.
  RouteClass rc = RouteClass::XY;
  /// Workload-level correlation tag carried end-to-end (the hardware encodes
  /// this in head-flit transaction-id fields). Closed-loop sources stamp a
  /// probe's id here and echo it in the response so the requester can match
  /// a delivery to the outstanding miss it completes. 0 = untagged.
  uint64_t tag = 0;
  /// Position within the packet: 0 .. packet_len-1.
  int seq = 0;
  int packet_len = 1;
  /// 64-bit payload word (PRBS-generated); drives data-dependent energy.
  uint64_t payload = 0;
  /// VC id at the input port the flit is currently heading to / stored in.
  int vc = -1;
  /// Cycle the packet was created at the source NIC (includes source
  /// queueing in latency -- the paper's saturation definition needs this).
  Cycle gen_cycle = 0;
  /// Cycle the head flit entered the network (left the NIC).
  Cycle inject_cycle = 0;
};

// Human-readable formatting lives in noc/debug.hpp: the hot-path Flit TU
// must not pull in <string> (docs/PERF.md).

/// Credit / VC-free signal returned upstream (paper Fig 1 "credit signals").
struct Credit {
  int vc = -1;
  /// One buffer slot freed (always true for slot credits).
  bool slot = true;
  /// The tail flit has left (or bypassed) the buffer: the VC itself is free
  /// for reallocation by the upstream VA.
  bool vc_free = false;
};

}  // namespace noc

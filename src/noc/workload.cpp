#include "noc/workload.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"

namespace noc {

const char* workload_kind_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::OpenLoop: return "open-loop";
    case WorkloadKind::ClosedLoop: return "closed-loop";
    case WorkloadKind::Trace: return "trace";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Trace I/O.

bool save_trace(const std::string& path, const Trace& trace) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  if (trace.kx > 0)
    std::fprintf(f, "# noc-trace v2 geometry %dx%d\n", trace.kx, trace.ky);
  else
    std::fprintf(f, "# noc-trace v1\n");
  std::fprintf(f, "# cycle src dest_mask(hex) length class\n");
  char mask_hex[DestMask::kMaxHexChars + 1];
  for (const TraceRecord& r : trace.records) {
    // Masks wider than 64 bits print as one big hex number; single-word
    // masks render exactly as the pre-multiword format did, so v1 traces
    // from k <= 8 meshes stay byte-identical and round-trip both ways.
    r.dest_mask.to_hex(mask_hex);
    std::fprintf(f, "%" PRId64 " %d %s %d %d\n", r.cycle, r.src, mask_hex,
                 r.length, static_cast<int>(r.mc));
  }
  return std::fclose(f) == 0;
}

namespace {

std::shared_ptr<Trace> trace_fail(std::FILE* f, std::string* error,
                                  const std::string& path, int lineno,
                                  const char* what) {
  if (f != nullptr) std::fclose(f);
  if (error != nullptr)
    *error = path + ":" + std::to_string(lineno) + ": " + what;
  return nullptr;
}

}  // namespace

std::shared_ptr<Trace> load_trace(const std::string& path,
                                  std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return trace_fail(nullptr, error, path, 0,
                                      "cannot open trace file");
  auto trace = std::make_shared<Trace>();
  char line[256];
  char mask_hex[DestMask::kMaxHexChars + 2];  // overflow sentinel slot
  // The %65s scan width must track the buffer: one char beyond the widest
  // valid mask, so an overlong token lands in the sentinel slot and
  // from_hex rejects it instead of the tail bleeding into the %d fields.
  static_assert(DestMask::kMaxHexChars + 1 == 65,
                "update the %65s scan width below to kMaxHexChars + 1");
  int lineno = 0;
  bool saw_header = false;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++lineno;
    if (!saw_header) {
      // The first line must identify the format: geometry-stamped v2 or
      // the legacy geometry-less v1. Anything else is not a trace file --
      // bail with a message instead of misparsing whatever it really is.
      saw_header = true;
      int kx = 0, ky = 0;
      if (std::sscanf(line, "# noc-trace v2 geometry %dx%d", &kx, &ky) == 2) {
        if (kx < 2 || kx > kMaxMeshRadix || ky < 2 || ky > kMaxMeshRadix ||
            kx * ky > DestMask::kCapacity)
          return trace_fail(f, error, path, lineno,
                            "trace geometry out of range");
        trace->kx = kx;
        trace->ky = ky;
        continue;
      }
      if (std::strncmp(line, "# noc-trace v1", 14) == 0) continue;
      return trace_fail(f, error, path, lineno,
                        "not a noc-trace file (missing '# noc-trace v1' or "
                        "'# noc-trace v2 geometry KXxKY' header)");
    }
    if (line[0] == '#' || line[0] == '\n') continue;
    TraceRecord r;
    int mc = 0;
    if (std::sscanf(line, "%" SCNd64 " %d %65s %d %d", &r.cycle, &r.src,
                    mask_hex, &r.length, &mc) != 5 ||
        !DestMask::from_hex(mask_hex, r.dest_mask) || r.cycle < 0 ||
        r.src < 0 || r.src >= DestMask::kCapacity || r.dest_mask.none() ||
        r.length < 1 || r.length > kMaxPacketFlits || mc < 0 ||
        mc >= kNumMsgClasses)
      return trace_fail(f, error, path, lineno, "malformed trace record");
    if (trace->kx > 0 && r.src >= trace->kx * trace->ky)
      return trace_fail(f, error, path, lineno,
                        "record source outside the declared geometry");
    r.mc = static_cast<MsgClass>(mc);
    trace->records.push_back(r);
  }
  std::fclose(f);
  if (!saw_header)
    return trace_fail(nullptr, error, path, lineno, "empty trace file");
  return trace;
}

std::string trace_geometry_error(const Trace& trace, int kx, int ky) {
  if (trace.kx == 0) return {};  // legacy v1: geometry unknown
  if (trace.kx == kx && trace.ky == ky) return {};
  return "trace was captured on a " + std::to_string(trace.kx) + "x" +
         std::to_string(trace.ky) + " mesh, cannot replay on " +
         std::to_string(kx) + "x" + std::to_string(ky);
}

std::shared_ptr<const Trace> resolve_trace(const TraceConfig& cfg) {
  if (cfg.trace != nullptr) return cfg.trace;
  if (!cfg.path.empty()) return load_trace(cfg.path);
  return nullptr;
}

// ---------------------------------------------------------------------------
// ClosedLoopSource.

const char* ClosedLoopConfig::validate() const {
  if (window < 1 || window > kMaxMshrWindow)
    return "closed-loop window must be in 1..64 (kMaxMshrWindow)";
  if (issue_prob < 0.0 || issue_prob > 1.0)
    return "closed-loop issue_prob must be in [0, 1]";
  if (directory_latency < 0) return "directory_latency must be >= 0";
  if (think_time < 0) return "think_time must be >= 0";
  if (response_length < 1 || response_length > kMaxPacketFlits)
    return "response_length must be in 1..8 (kMaxPacketFlits)";
  return nullptr;
}

ClosedLoopSource::ClosedLoopSource(const MeshGeometry& geom,
                                   const TrafficConfig& traffic,
                                   const ClosedLoopConfig& cfg, NodeId node)
    : geom_(geom),
      cfg_(cfg),
      node_(node),
      seed_(traffic.seed),
      issue_prob_(cfg.issue_prob),
      rng_(node_rng_seed(traffic.seed, node)),
      payload_prbs_(Prbs::Poly::PRBS31, node_prbs_seed(traffic.seed, node)) {
  NOC_EXPECTS(geom.num_nodes() >= 2);
  NOC_EXPECTS(cfg.validate() == nullptr);
  // Worst case every outstanding probe in the system is owned here.
  pending_.reserve(
      static_cast<size_t>(geom.num_nodes() * cfg.window) + 8);
}

void ClosedLoopSource::do_set_rate(double rate) {
  issue_prob_ = std::clamp(rate, 0.0, 1.0);
}

Cycle ClosedLoopSource::next_fire_cycle(Cycle from) const {
  Cycle t = kCycleNever;
  // An owed data response fires at its due cycle; generate() consumes no
  // RNG while waiting for it.
  if (!pending_.empty()) t = std::min(t, pending_.front().due);
  // With window room the source draws its issue Bernoulli on every cycle
  // from next_miss_eligible_ on, so the NIC must be awake for each draw.
  if (outstanding_.size() < cfg_.window && issue_prob_ > 0.0)
    t = std::min(t, next_miss_eligible_);
  return std::max(from, t);
}

NodeId ClosedLoopSource::owner_of(uint64_t tag, NodeId requester) const {
  const auto n = static_cast<uint64_t>(geom_.num_nodes());
  const uint64_t h =
      SplitMix64(tag * 0x9e3779b97f4a7c15ULL + seed_).next() % (n - 1);
  auto owner = static_cast<NodeId>(h);
  if (owner >= requester) ++owner;  // skip the requester itself
  return owner;
}

std::optional<Packet> ClosedLoopSource::generate(Cycle now) {
  // Owed data responses take priority over starting new misses: the
  // response leg is on the system's critical path.
  if (!pending_.empty() && pending_.front().due <= now) {
    const PendingResponse resp = pending_.pop_front();
    Packet pkt;
    pkt.id = make_packet_id(node_, next_local_id_);
    pkt.src = node_;
    pkt.dest_mask = MeshGeometry::node_mask(resp.requester);
    pkt.mc = MsgClass::Response;
    pkt.length = cfg_.response_length;
    pkt.gen_cycle = now;
    pkt.tag = resp.tag;
    return pkt;
  }

  if (outstanding_.size() >= cfg_.window || now < next_miss_eligible_)
    return std::nullopt;
  if (!rng_.bernoulli(issue_prob_)) return std::nullopt;

  Packet pkt;
  pkt.id = make_packet_id(node_, next_local_id_);
  pkt.src = node_;
  pkt.dest_mask = geom_.all_nodes_mask();  // snoop everyone (self included)
  pkt.mc = MsgClass::Request;
  pkt.length = kRequestPacketLen;
  pkt.gen_cycle = now;
  pkt.tag = pkt.id;
  outstanding_.push_back({pkt.tag, now});
  ++issued_;
  return pkt;
}

void ClosedLoopSource::on_delivery(const Flit& flit, Cycle now) {
  if (flit.tag == 0) return;  // externally-submitted, not ours
  if (flit.mc == MsgClass::Request) {
    // A probe reached this node. Exactly one node -- the deterministic
    // owner -- schedules the data response; everyone else just snoops.
    if (!is_head(flit.type) || flit.src == node_) return;
    if (owner_of(flit.tag, flit.src) == node_) {
      // Probe-to-owner leg: the probe's generation stamp travels in the
      // flit, so the leg is measurable right here without cross-node state.
      if (in_window_)
        window_probe_leg_.add(static_cast<double>(now - flit.gen_cycle));
      pending_.push_back(
          {now + cfg_.directory_latency, flit.tag, flit.src});
    }
    return;
  }
  // A data response: retire the outstanding miss it answers.
  if (!is_tail(flit.type)) return;
  for (int i = 0; i < outstanding_.size(); ++i) {
    if (outstanding_[i].tag != flit.tag) continue;
    if (in_window_) {
      window_latency_.add(static_cast<double>(now - outstanding_[i].issued));
      // Data-return leg: from the response's generation at the owner
      // (which includes the owner's NIC queueing) to tail delivery here.
      window_response_leg_.add(static_cast<double>(now - flit.gen_cycle));
    }
    outstanding_[i] = outstanding_[outstanding_.size() - 1];
    outstanding_.pop_back();
    ++completed_;
    next_miss_eligible_ = now + cfg_.think_time;
    return;
  }
}

void ClosedLoopSource::on_drop(const Packet& pkt, const DestMask& dropped,
                               Cycle now) {
  // Fault mode (docs/FAULTS.md): the NIC refused some destinations of our
  // own packet at submission. The only drop that strands closed-loop state
  // is a probe that can no longer reach its deterministic owner -- without
  // the probe there will never be a data response, so the miss would pin a
  // window slot forever. Retire it as LOST (no ++completed_, no latency
  // sample) and restart the think timer so the source keeps generating.
  //
  // Known limitation: a RESPONSE dropped at the owner's NIC (owner became
  // disconnected from the requester after accepting the probe) leaves the
  // requester's miss dangling until a revival reconnects them. Fault soaks
  // therefore use open-loop traffic; see docs/FAULTS.md.
  if (pkt.mc != MsgClass::Request || pkt.tag == 0 || pkt.src != node_) return;
  if (!dropped.test(owner_of(pkt.tag, node_))) return;
  for (int i = 0; i < outstanding_.size(); ++i) {
    if (outstanding_[i].tag != pkt.tag) continue;
    outstanding_[i] = outstanding_[outstanding_.size() - 1];
    outstanding_.pop_back();
    next_miss_eligible_ = now + cfg_.think_time;
    return;
  }
}

void ClosedLoopSource::begin_window(Cycle now) {
  (void)now;
  window_latency_.reset();
  window_probe_leg_.reset();
  window_response_leg_.reset();
  in_window_ = true;
}

void ClosedLoopSource::end_window(Cycle now) {
  (void)now;
  in_window_ = false;
}

TrafficSource::WindowStats ClosedLoopSource::window_stats() const {
  WindowStats s;
  s.transactions = window_latency_.count();
  s.latency_sum = window_latency_.sum();
  s.latency_max = window_latency_.max();
  s.probe_legs = window_probe_leg_.count();
  s.probe_latency_sum = window_probe_leg_.sum();
  s.response_legs = window_response_leg_.count();
  s.response_latency_sum = window_response_leg_.sum();
  return s;
}

// ---------------------------------------------------------------------------
// TraceSource.

TraceSource::TraceSource(const MeshGeometry& geom,
                         const TrafficConfig& traffic,
                         std::shared_ptr<const Trace> trace, NodeId node)
    : node_(node),
      payload_prbs_(Prbs::Poly::PRBS31, node_prbs_seed(traffic.seed, node)),
      trace_(std::move(trace)) {
  NOC_EXPECTS(trace_ != nullptr);
  // Geometry-stamped traces must match the mesh exactly; callers with a
  // message channel should pre-check trace_geometry_error themselves.
  NOC_EXPECTS(trace_geometry_error(*trace_, geom.kx(), geom.ky()).empty());
  const DestMask valid = geom.all_nodes_mask();
  for (const TraceRecord& r : trace_->records) {
    // Every record must fit this geometry -- a trace from a bigger mesh
    // must fail loudly, not replay partially.
    NOC_EXPECTS(r.src >= 0 && r.src < geom.num_nodes());
    if (r.src != node) continue;
    NOC_EXPECTS(r.dest_mask.any() && r.dest_mask.andnot(valid).none());
    NOC_EXPECTS(r.length >= 1 && r.length <= kMaxPacketFlits);
    mine_.push_back(r);
  }
  // Capture order already sorts by cycle within a node; make it a contract.
  std::stable_sort(mine_.begin(), mine_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.cycle < b.cycle;
                   });
}

Cycle TraceSource::next_fire_cycle(Cycle from) const {
  if (next_ >= mine_.size()) return kCycleNever;
  return std::max(from, mine_[next_].cycle);
}

std::optional<Packet> TraceSource::generate(Cycle now) {
  if (next_ >= mine_.size()) return std::nullopt;
  const TraceRecord& r = mine_[next_];
  if (r.cycle > now) return std::nullopt;
  ++next_;
  if (in_window_) ++window_injected_;
  Packet pkt;
  pkt.id = make_packet_id(node_, next_local_id_);
  pkt.src = node_;
  pkt.dest_mask = r.dest_mask;
  pkt.mc = r.mc;
  pkt.length = r.length;
  pkt.gen_cycle = now;  // includes replay slip, so latency stays honest
  return pkt;
}

void TraceSource::begin_window(Cycle now) {
  (void)now;
  window_injected_ = 0;
  in_window_ = true;
}

void TraceSource::end_window(Cycle now) {
  (void)now;
  in_window_ = false;
}

TrafficSource::WindowStats TraceSource::window_stats() const {
  WindowStats s;
  s.transactions = window_injected_;
  return s;
}

// ---------------------------------------------------------------------------
// Factory.

std::unique_ptr<TrafficSource> make_traffic_source(
    const MeshGeometry& geom, const TrafficConfig& traffic,
    const WorkloadSpec& spec, NodeId node,
    std::shared_ptr<const Trace> resolved_trace) {
  switch (spec.kind) {
    case WorkloadKind::OpenLoop:
      return std::make_unique<OpenLoopSource>(geom, traffic, node);
    case WorkloadKind::ClosedLoop:
      return std::make_unique<ClosedLoopSource>(geom, traffic, spec.closed,
                                                node);
    case WorkloadKind::Trace: {
      std::shared_ptr<const Trace> trace =
          resolved_trace != nullptr ? std::move(resolved_trace)
                                    : resolve_trace(spec.trace);
      NOC_EXPECTS(trace != nullptr);
      return std::make_unique<TraceSource>(geom, traffic, std::move(trace),
                                           node);
    }
  }
  NOC_ASSERT(false);
  return nullptr;
}

}  // namespace noc

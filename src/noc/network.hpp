#pragma once
// Network: assembles the k x k mesh of routers and NICs (paper Fig 2) and
// drives them in the per-cycle phase order required by the timing model:
//
//   1. all channels deliver this cycle's arrivals
//   2. NIC injection halves tick (they raise latency-0 lookaheads that the
//      routers' mSA-II must see this same cycle)
//   3. routers tick (credits -> ST/BW -> mSA-II -> mSA-I/VA)
//   4. NIC ejection halves tick (drain flits the routers sent last cycle)

// When activity gating is enabled (NetworkConfig::activity_gating, the
// default), step() walks only the components that can possibly do work this
// cycle: channels holding in-flight messages, routers with buffered or
// latched state, NICs with queued packets / undrained flits, and NICs whose
// TrafficSource may fire. Wake-up edges (message arrival, the latency-0
// injection lookahead, source fire predictions, external submissions)
// re-arm sleepers; metrics are bit-identical with gating on or off
// (tests/test_gating_equivalence.cpp, docs/PERF.md).

#include <memory>
#include <vector>

#include "common/active_set.hpp"
#include "noc/energy_events.hpp"
#include "noc/metrics.hpp"
#include "noc/nic.hpp"
#include "noc/router.hpp"
#include "noc/traffic.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"

namespace noc {

struct NetworkConfig {
  int k = 4;
  RouterConfig router;
  TrafficConfig traffic;
  /// Which TrafficSource family drives the NICs (docs/WORKLOADS.md). The
  /// default open loop reads `traffic` unchanged, so existing configs keep
  /// their exact behaviour.
  WorkloadSpec workload;

  /// Activity-gated stepping (docs/PERF.md): idle routers, NICs and drained
  /// channels are skipped each cycle. Metrics are bit-identical either way
  /// (enforced by tests/test_gating_equivalence.cpp); turning it off
  /// retains the full phase-walk for comparison and debugging.
  bool activity_gating = true;

  /// The paper's four measured configurations (Fig 5/6/13).
  static NetworkConfig proposed(int k = 4);          // D: bypass + multicast
  static NetworkConfig lowswing_multicast(int k = 4);  // C: multicast, no bypass
  static NetworkConfig baseline_3stage(int k = 4);   // A/B: unicast, fused ST+LT
  static NetworkConfig baseline_4stage(int k = 4);   // Fig 1 textbook router
};

class Network : public Steppable {
 public:
  explicit Network(const NetworkConfig& cfg);

  // Channels and the activity machinery hold pointers back into this
  // object (wake masks, counters): pin it.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void step(Cycle now) override;

  const NetworkConfig& config() const { return cfg_; }
  const MeshGeometry& geom() const { return geom_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  EnergyCounters& energy() { return energy_; }
  Router& router(NodeId n) { return *routers_[static_cast<size_t>(n)]; }
  Nic& nic(NodeId n) { return *nics_[static_cast<size_t>(n)]; }
  TrafficSource& source(NodeId n) { return *sources_[static_cast<size_t>(n)]; }

  /// Capture every logical packet submitted at any NIC into `out`
  /// (replayable through WorkloadKind::Trace). Pass nullptr to stop.
  void record_trace(Trace* out);

  /// Open the metrics window and reset every source's per-window stats
  /// (transaction counts / latencies); close it again with
  /// end_measurement_window. Sweeps use these instead of driving
  /// metrics().begin_window directly so closed-loop statistics stay
  /// window-scoped.
  void begin_measurement_window(Cycle now);
  void end_measurement_window(Cycle now);

  /// True when no packet is anywhere in flight and no source holds pending
  /// work (outstanding closed-loop misses, unreplayed trace records). All
  /// channel kinds count: a credit or lookahead still on a wire blocks
  /// quiescence (drain phases must not end while flow-control state is in
  /// flight), tracked by an O(1) counter rather than a channel scan.
  bool quiescent() const;

  /// Messages of any kind (flits, credits, lookaheads) currently inside
  /// channels, including arrivals not yet recycled.
  int64_t channel_items() const { return chan_items_; }

 private:
  template <typename T>
  Channel<T>* make_channel(std::vector<std::unique_ptr<Channel<T>>>& pool,
                           int latency);

  void setup_activity();
  void step_full(Cycle now);
  void step_gated(Cycle now);

  NetworkConfig cfg_;
  MeshGeometry geom_;
  Metrics metrics_;
  EnergyCounters energy_;

  std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
  std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
  std::vector<std::unique_ptr<Channel<Lookahead>>> la_channels_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  std::vector<std::unique_ptr<Nic>> nics_;

  // --- activity machinery (docs/PERF.md) ---
  // Channels self-register here while holding messages; ids are assigned
  // contiguously per pool (flit < credit < lookahead) so the sweep can
  // dispatch without virtual calls. chan_items_ is maintained in both modes
  // (quiescent() needs it); the rest only drives the gated step.
  ActiveList chan_active_;
  int64_t chan_items_ = 0;
  int credit_id_base_ = 0;
  int la_id_base_ = 0;
  // One awake bit per node (DestMask bitsets: the same multi-word per-node
  // masks the datapath uses, sized to DestMask::kCapacity = 256 nodes).
  // Bits are set by wake edges and cleared when a component's post-tick
  // state shows it cannot act next cycle.
  DestMask router_awake_;
  DestMask inject_awake_;
  DestMask eject_awake_;
  // Timed injection wake-ups for sources that promise a future fire cycle
  // (identical-PRBS intervals, trace records, closed-loop response due
  // times); next_timed_wake_ caches the minimum so the per-cycle check is
  // one compare.
  std::vector<Cycle> inject_wake_at_;
  Cycle next_timed_wake_ = kCycleNever;
};

}  // namespace noc

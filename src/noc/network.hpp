#pragma once
// Network: assembles the k x k mesh of routers and NICs (paper Fig 2) and
// drives them in the per-cycle phase order required by the timing model:
//
//   1. all channels deliver this cycle's arrivals
//   2. NIC injection halves tick (they raise latency-0 lookaheads that the
//      routers' mSA-II must see this same cycle)
//   3. routers tick (credits -> ST/BW -> mSA-II -> mSA-I/VA)
//   4. NIC ejection halves tick (drain flits the routers sent last cycle)

#include <memory>
#include <vector>

#include "noc/energy_events.hpp"
#include "noc/metrics.hpp"
#include "noc/nic.hpp"
#include "noc/router.hpp"
#include "noc/traffic.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"

namespace noc {

struct NetworkConfig {
  int k = 4;
  RouterConfig router;
  TrafficConfig traffic;
  /// Which TrafficSource family drives the NICs (docs/WORKLOADS.md). The
  /// default open loop reads `traffic` unchanged, so existing configs keep
  /// their exact behaviour.
  WorkloadSpec workload;

  /// The paper's four measured configurations (Fig 5/6/13).
  static NetworkConfig proposed(int k = 4);          // D: bypass + multicast
  static NetworkConfig lowswing_multicast(int k = 4);  // C: multicast, no bypass
  static NetworkConfig baseline_3stage(int k = 4);   // A/B: unicast, fused ST+LT
  static NetworkConfig baseline_4stage(int k = 4);   // Fig 1 textbook router
};

class Network : public Steppable {
 public:
  explicit Network(const NetworkConfig& cfg);

  void step(Cycle now) override;

  const NetworkConfig& config() const { return cfg_; }
  const MeshGeometry& geom() const { return geom_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  EnergyCounters& energy() { return energy_; }
  Router& router(NodeId n) { return *routers_[static_cast<size_t>(n)]; }
  Nic& nic(NodeId n) { return *nics_[static_cast<size_t>(n)]; }
  TrafficSource& source(NodeId n) { return *sources_[static_cast<size_t>(n)]; }

  /// Capture every logical packet submitted at any NIC into `out`
  /// (replayable through WorkloadKind::Trace). Pass nullptr to stop.
  void record_trace(Trace* out);

  /// Open the metrics window and reset every source's per-window stats
  /// (transaction counts / latencies); close it again with
  /// end_measurement_window. Sweeps use these instead of driving
  /// metrics().begin_window directly so closed-loop statistics stay
  /// window-scoped.
  void begin_measurement_window(Cycle now);
  void end_measurement_window(Cycle now);

  /// True when no packet is anywhere in flight and no source holds pending
  /// work (outstanding closed-loop misses, unreplayed trace records).
  bool quiescent() const;

 private:
  template <typename T>
  Channel<T>* make_channel(std::vector<std::unique_ptr<Channel<T>>>& pool,
                           int latency);

  NetworkConfig cfg_;
  MeshGeometry geom_;
  Metrics metrics_;
  EnergyCounters energy_;

  std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
  std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
  std::vector<std::unique_ptr<Channel<Lookahead>>> la_channels_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace noc

#pragma once
// Network: assembles the k x k mesh of routers and NICs (paper Fig 2) and
// drives them in the per-cycle phase order required by the timing model:
//
//   1. all channels deliver this cycle's arrivals
//   2. NIC injection halves tick (they raise latency-0 lookaheads that the
//      routers' mSA-II must see this same cycle)
//   3. routers tick (credits -> ST/BW -> mSA-II -> mSA-I/VA)
//   4. NIC ejection halves tick (drain flits the routers sent last cycle)

// When activity gating is enabled (NetworkConfig::activity_gating, the
// default), step() walks only the components that can possibly do work this
// cycle: channels holding in-flight messages, routers with buffered or
// latched state, NICs with queued packets / undrained flits, and NICs whose
// TrafficSource may fire. Wake-up edges (message arrival, the latency-0
// injection lookahead, source fire predictions, external submissions)
// re-arm sleepers; metrics are bit-identical with gating on or off
// (tests/test_gating_equivalence.cpp, docs/PERF.md).

// With step_threads > 1 the mesh is partitioned into contiguous column
// spans (src/noc/partition.hpp) stepped by a persistent worker team under a
// fixed two-phase barrier schedule: compute span-local state, barrier,
// commit cross-span channel sends, barrier, then merge per-span energy and
// metrics shards on the main thread in deterministic span/node order.
// Results are bit-identical to serial stepping for every pattern, workload,
// policy and gating mode (docs/PERF.md Layer 4).

#include <memory>
#include <utility>
#include <vector>

#include "common/active_set.hpp"
#include "noc/energy_events.hpp"
#include "noc/fault.hpp"
#include "noc/metrics.hpp"
#include "noc/nic.hpp"
#include "noc/partition.hpp"
#include "noc/router.hpp"
#include "noc/telemetry.hpp"
#include "noc/traffic.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"
#include "sim/step_team.hpp"

namespace noc {

struct NetworkConfig {
  int k = 4;
  /// Mesh rows; 0 (the default) means square (rows = k). Rectangular
  /// geometries keep row-major node ids (id = y * k + x) with k columns.
  int ky = 0;
  RouterConfig router;
  TrafficConfig traffic;
  /// Which TrafficSource family drives the NICs (docs/WORKLOADS.md). The
  /// default open loop reads `traffic` unchanged, so existing configs keep
  /// their exact behaviour.
  WorkloadSpec workload;

  /// Deterministic fault schedule (docs/FAULTS.md): link kills / revivals
  /// and router arbiter degrades applied at cycle boundaries. Empty (the
  /// default) keeps the pristine datapath bit-identical to pre-fault
  /// builds; non-empty switches the MinimalAdaptive escape lane to the
  /// surviving-topology up*/down* tree from cycle 0 (docs/ROUTING.md).
  FaultPlan fault;

  /// Observability probes (docs/OBSERVABILITY.md): stall attribution,
  /// time-series sampling and the packet-lifecycle trace. Disabled (the
  /// default) the Network never constructs the Telemetry instance and the
  /// datapath pays one untaken null test per hook.
  TelemetryConfig telemetry;

  /// Activity-gated stepping (docs/PERF.md): idle routers, NICs and drained
  /// channels are skipped each cycle. Metrics are bit-identical either way
  /// (enforced by tests/test_gating_equivalence.cpp); turning it off
  /// retains the full phase-walk for comparison and debugging.
  bool activity_gating = true;

  /// Intra-network parallel stepping (docs/PERF.md Layer 4): partition the
  /// mesh into up to `step_threads` column spans driven by a worker team.
  /// Metrics are bit-identical to serial stepping for ANY value; the number
  /// of threads actually running is additionally clamped by the process-wide
  /// thread_budget, which changes scheduling but never results. 1 = serial.
  int step_threads = 1;

  /// The paper's four measured configurations (Fig 5/6/13).
  static NetworkConfig proposed(int k = 4);          // D: bypass + multicast
  static NetworkConfig lowswing_multicast(int k = 4);  // C: multicast, no bypass
  static NetworkConfig baseline_3stage(int k = 4);   // A/B: unicast, fused ST+LT
  static NetworkConfig baseline_4stage(int k = 4);   // Fig 1 textbook router
};

class Network : public Steppable {
 public:
  explicit Network(const NetworkConfig& cfg);
  ~Network();

  // Channels and the activity machinery hold pointers back into this
  // object (wake masks, counters): pin it.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void step(Cycle now) override;

  const NetworkConfig& config() const { return cfg_; }
  const MeshGeometry& geom() const { return geom_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  EnergyCounters& energy() { return energy_; }
  Router& router(NodeId n) { return *routers_[static_cast<size_t>(n)]; }
  Nic& nic(NodeId n) { return *nics_[static_cast<size_t>(n)]; }
  /// Fault-schedule state (FaultState::enabled() is false for empty plans).
  const FaultState& faults() const { return fault_state_; }
  /// Telemetry sink; null unless NetworkConfig::telemetry.enabled.
  Telemetry* telemetry() { return telemetry_.get(); }
  const Telemetry* telemetry() const { return telemetry_.get(); }
  TrafficSource& source(NodeId n) { return *sources_[static_cast<size_t>(n)]; }

  /// Capture every logical packet submitted at any NIC into `out`
  /// (replayable through WorkloadKind::Trace). Pass nullptr to stop.
  void record_trace(Trace* out);

  /// Open the metrics window and reset every source's per-window stats
  /// (transaction counts / latencies); close it again with
  /// end_measurement_window. Sweeps use these instead of driving
  /// metrics().begin_window directly so closed-loop statistics stay
  /// window-scoped.
  void begin_measurement_window(Cycle now);
  void end_measurement_window(Cycle now);

  /// True when no packet is anywhere in flight and no source holds pending
  /// work (outstanding closed-loop misses, unreplayed trace records). All
  /// channel kinds count: a credit or lookahead still on a wire blocks
  /// quiescence (drain phases must not end while flow-control state is in
  /// flight), tracked by an O(1) counter rather than a channel scan.
  bool quiescent() const;

  /// Messages of any kind (flits, credits, lookaheads) currently inside
  /// channels, including arrivals not yet recycled.
  int64_t channel_items() const;

  // ---- parallel-stepping introspection (tests, docs/PERF.md Layer 4) ----

  /// Number of column spans the step loop drives; 1 in serial mode.
  int num_step_spans() const {
    return spans_.empty() ? 1 : static_cast<int>(spans_.size());
  }
  /// Workers actually running per step (after thread_budget clamping).
  int step_workers() const { return team_ ? team_->workers() : 1; }
  /// The column partition (valid only when num_step_spans() > 1).
  const SpanPartition& partition() const { return part_; }
  int num_channels() const {
    return static_cast<int>(flit_channels_.size() + credit_channels_.size() +
                            la_channels_.size());
  }
  /// Channel ids owned by span `s` (owner = receiver's span).
  const std::vector<int>& span_channel_ids(int s) const {
    return spans_[static_cast<size_t>(s)].channels;
  }
  const std::vector<NodeId>& span_nodes(int s) const {
    return spans_[static_cast<size_t>(s)].nodes;
  }
  /// Deferred (cross-span) channels owned by span `s`.
  int span_cross_channel_count(int s) const {
    const StepSpan& sp = spans_[static_cast<size_t>(s)];
    return static_cast<int>(sp.cross_flit.size() + sp.cross_credit.size() +
                            sp.cross_la.size());
  }

 private:
  /// Everything one worker exclusively owns while stepping its column span:
  /// the span's activity machinery mirrors the Network-level fields used in
  /// serial mode, plus integer energy and capture-mode metrics shards that
  /// the main thread drains each cycle in deterministic order. All scratch
  /// is sized at partition time (zero-alloc invariant).
  struct StepSpan {
    std::vector<NodeId> nodes;  // ascending id order
    std::vector<int> channels;  // owned channel ids (receiver in span)
    std::vector<Channel<Flit>*> cross_flit;  // deferred channels owned here
    std::vector<Channel<Credit>*> cross_credit;
    std::vector<Channel<Lookahead>*> cross_la;
    ActiveList active;
    int64_t items = 0;
    DestMask router_awake;
    DestMask inject_awake;
    DestMask eject_awake;
    DestMask pass_scratch;  // pre-tick snapshot of the mask being walked
    Cycle next_timed_wake = kCycleNever;
    EnergyCounters energy;            // drained into the global every cycle
    std::unique_ptr<Metrics> metrics; // capture shard of the shared Metrics
    size_t replay_cursor = 0;
  };

  struct StepCtx {
    Network* net;
    Cycle now;
  };

  template <typename T>
  Channel<T>* make_channel(std::vector<Channel<T>>& pool, int latency);

  void setup_activity();
  /// Apply fault-schedule events stamped <= now, pushing the updated
  /// dead-port masks / degrade flags into the affected routers. Runs on
  /// the main thread at the top of step() in EVERY mode, before gating
  /// decisions and before the span fan-out, so the schedule commutes with
  /// activity gating and span decomposition.
  void apply_faults(Cycle now);
  /// Append one time-series sample (main thread, end of step(), after the
  /// parallel merge so the cumulative counters are whole-network values).
  void sample_telemetry(Cycle now);
  void step_full(Cycle now);
  void step_gated(Cycle now);

  // Parallel stepping (spans_ non-empty).
  void step_parallel(Cycle now);
  void step_spans_inline(Cycle now);
  bool begin_channel(int id, Cycle now);
  void span_begin(int s, Cycle now);
  void span_compute(int s, Cycle now);
  void span_commit(int s, Cycle now);
  void span_inject_tick(StepSpan& sp, int node, Cycle now);
  void span_router_tick(StepSpan& sp, int node, Cycle now);
  void span_eject_tick(StepSpan& sp, int node, Cycle now);
  void flush_external_captures();
  void merge_spans();
  static void compute_thunk(void* ctx, int worker);
  static void commit_thunk(void* ctx, int worker);

  NetworkConfig cfg_;
  MeshGeometry geom_;
  Metrics metrics_;
  EnergyCounters energy_;
  FaultState fault_state_;
  std::unique_ptr<Telemetry> telemetry_;  // null unless telemetry.enabled

  // Contiguous channel pools (docs/PERF.md Layer 5): the gated per-cycle
  // sweep touches most channels at saturation, so keeping the Channel
  // objects themselves in one array (instead of heap-scattered unique_ptrs)
  // makes that walk cache-friendly. Capacity is reserved exactly in the
  // constructor before wiring -- handed-out pointers stay stable.
  std::vector<Channel<Flit>> flit_channels_;
  std::vector<Channel<Credit>> credit_channels_;
  std::vector<Channel<Lookahead>> la_channels_;
  // (sender, receiver) node per channel, in pool order: span ownership and
  // boundary classification are derived from these in setup_activity.
  std::vector<std::pair<NodeId, NodeId>> flit_ep_;
  std::vector<std::pair<NodeId, NodeId>> credit_ep_;
  std::vector<std::pair<NodeId, NodeId>> la_ep_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  std::vector<std::unique_ptr<Nic>> nics_;

  // --- intra-network parallelism (docs/PERF.md Layer 4) ---
  SpanPartition part_;
  std::vector<StepSpan> spans_;     // empty in serial mode
  std::unique_ptr<StepTeam> team_;  // non-null iff spans_ non-empty
  int budget_lease_ = 0;            // extra threads leased from thread_budget
  bool trace_recording_ = false;

  // --- activity machinery (docs/PERF.md) ---
  // Channels self-register here while holding messages; ids are assigned
  // contiguously per pool (flit < credit < lookahead) so the sweep can
  // dispatch without virtual calls. chan_items_ is maintained in both modes
  // (quiescent() needs it); the rest only drives the gated step.
  ActiveList chan_active_;
  int64_t chan_items_ = 0;
  int credit_id_base_ = 0;
  int la_id_base_ = 0;
  // One awake bit per node (DestMask bitsets: the same multi-word per-node
  // masks the datapath uses, sized to DestMask::kCapacity = 256 nodes).
  // Bits are set by wake edges and cleared when a component's post-tick
  // state shows it cannot act next cycle.
  DestMask router_awake_;
  DestMask inject_awake_;
  DestMask eject_awake_;
  // Timed injection wake-ups for sources that promise a future fire cycle
  // (identical-PRBS intervals, trace records, closed-loop response due
  // times); next_timed_wake_ caches the minimum so the per-cycle check is
  // one compare.
  std::vector<Cycle> inject_wake_at_;
  Cycle next_timed_wake_ = kCycleNever;
};

}  // namespace noc

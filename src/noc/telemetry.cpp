#include "noc/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

namespace noc {

const char* stall_class_name(StallClass c) {
  switch (c) {
    case StallClass::BufferEmpty: return "buffer_empty";
    case StallClass::NoFreeVc: return "no_free_vc";
    case StallClass::NoCredit: return "no_credit";
    case StallClass::LostSa: return "lost_sa";
    case StallClass::LostVa: return "lost_va";
  }
  return "?";
}

Telemetry::Telemetry(int num_nodes, const TelemetryConfig& cfg)
    : cfg_(cfg),
      num_nodes_(num_nodes),
      trace_on_(cfg.trace_sample_every > 0) {
  NOC_EXPECTS(num_nodes > 0);
  rows_.resize(static_cast<size_t>(num_nodes));
  samples_.reserve(static_cast<size_t>(cfg_.max_samples > 0 ? cfg_.max_samples
                                                            : 0));
  events_.reserve(static_cast<size_t>(
      trace_on_ && cfg_.max_trace_events > 0 ? cfg_.max_trace_events : 0));
  // Fault schedules are short (tens of events); one page of markers is
  // plenty and keeps record_fault allocation-free mid-run.
  markers_.reserve(256);
}

int64_t Telemetry::total_stalls(StallClass c) const {
  int64_t sum = 0;
  for (const StallRow& r : rows_) sum += r.counts[static_cast<size_t>(c)];
  return sum;
}

void Telemetry::reset_stalls() {
  for (StallRow& r : rows_) r = StallRow{};
}

void Telemetry::record_fault(Cycle now, FaultKind kind, NodeId a, NodeId b) {
  if (markers_.size() < markers_.capacity())
    markers_.push_back(FaultMarker{now, kind, a, b});
  if (trace_on_ && events_.size() < events_.capacity())
    events_.push_back(TraceEvent{now, 0, 0, TraceEventType::Fault,
                                 static_cast<uint8_t>(kind),
                                 static_cast<int16_t>(a),
                                 static_cast<int16_t>(b)});
}

namespace {

/// Comma-separated emission: JSON forbids trailing commas, so the writer
/// prefixes every element after the first.
struct JsonList {
  std::FILE* f;
  bool first = true;
  void sep() {
    if (!first) std::fputs(",\n", f);
    first = false;
  }
};

}  // namespace

bool Telemetry::write_perfetto_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  JsonList out{f};

  out.sep();
  std::fputs(
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"noc\"}}",
      f);
  for (int n = 0; n < num_nodes_; ++n) {
    out.sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"router %d\"}}",
                 n, n);
  }

  for (const TraceEvent& e : events_) {
    out.sep();
    const auto ts = static_cast<unsigned long long>(e.ts);
    const auto id = static_cast<unsigned long long>(e.id);
    switch (e.type) {
      case TraceEventType::PacketBegin:
      case TraceEventType::PacketEnd:
        std::fprintf(f,
                     "{\"ph\":\"%s\",\"cat\":\"pkt\",\"id\":\"0x%llx\","
                     "\"name\":\"pkt %llu\",\"pid\":0,\"tid\":%d,"
                     "\"ts\":%llu}",
                     e.type == TraceEventType::PacketBegin ? "b" : "e", id,
                     id, e.node, ts);
        break;
      case TraceEventType::HopBegin:
      case TraceEventType::HopEnd:
        std::fprintf(f,
                     "{\"ph\":\"%s\",\"cat\":\"hop\",\"id\":\"0x%llx.%d\","
                     "\"name\":\"pkt %llu @ r%d\",\"pid\":0,\"tid\":%d,"
                     "\"ts\":%llu}",
                     e.type == TraceEventType::HopBegin ? "b" : "e", id,
                     e.node, id, e.node, e.node, ts);
        break;
      case TraceEventType::VaGrant:
      case TraceEventType::SaGrant:
      case TraceEventType::Eject: {
        const char* name = e.type == TraceEventType::VaGrant ? "VA"
                           : e.type == TraceEventType::SaGrant ? "SA"
                                                               : "eject";
        std::fprintf(f,
                     "{\"ph\":\"i\",\"cat\":\"pkt\",\"s\":\"t\","
                     "\"name\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                     "\"args\":{\"pkt\":\"0x%llx\"}}",
                     name, e.node, ts, id);
        break;
      }
      case TraceEventType::Fault:
        std::fprintf(f,
                     "{\"ph\":\"i\",\"cat\":\"fault\",\"s\":\"g\","
                     "\"name\":\"%s %d-%d\",\"pid\":0,\"tid\":0,"
                     "\"ts\":%llu,\"args\":{\"a\":%d,\"b\":%d}}",
                     fault_kind_name(static_cast<FaultKind>(e.aux)), e.a,
                     e.b, ts, e.a, e.b);
        break;
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool Telemetry::write_timeseries_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(
      "cycle,injected_flits,delivered_flits,open_packets,awake_routers,"
      "fault_epoch\n",
      f);
  for (const TimeSample& s : samples_)
    std::fprintf(f, "%" PRIu64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%d,%"
                 PRIu64 "\n",
                 static_cast<uint64_t>(s.cycle), s.injected_flits,
                 s.delivered_flits, s.open_packets, s.awake_routers,
                 s.fault_epoch);
  for (const FaultMarker& m : markers_)
    std::fprintf(f, "# fault,%" PRIu64 ",%s,%d,%d\n",
                 static_cast<uint64_t>(m.cycle), fault_kind_name(m.kind),
                 m.a, m.b);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool Telemetry::write_timeseries_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"samples\":[\n", f);
  JsonList rows{f};
  for (const TimeSample& s : samples_) {
    rows.sep();
    std::fprintf(f,
                 "{\"cycle\":%" PRIu64 ",\"injected_flits\":%" PRId64
                 ",\"delivered_flits\":%" PRId64 ",\"open_packets\":%" PRId64
                 ",\"awake_routers\":%d,\"fault_epoch\":%" PRIu64 "}",
                 static_cast<uint64_t>(s.cycle), s.injected_flits,
                 s.delivered_flits, s.open_packets, s.awake_routers,
                 s.fault_epoch);
  }
  std::fputs("\n],\"faults\":[\n", f);
  JsonList faults{f};
  for (const FaultMarker& m : markers_) {
    faults.sep();
    std::fprintf(f,
                 "{\"cycle\":%" PRIu64 ",\"kind\":\"%s\",\"a\":%d,\"b\":%d}",
                 static_cast<uint64_t>(m.cycle), fault_kind_name(m.kind),
                 m.a, m.b);
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool Telemetry::write_stalls_csv(const std::string& path, int kx) const {
  NOC_EXPECTS(kx > 0);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("node,x,y", f);
  for (int c = 0; c < kNumStallClasses; ++c)
    std::fprintf(f, ",%s", stall_class_name(static_cast<StallClass>(c)));
  std::fputs("\n", f);
  for (int n = 0; n < num_nodes_; ++n) {
    std::fprintf(f, "%d,%d,%d", n, n % kx, n / kx);
    for (int c = 0; c < kNumStallClasses; ++c)
      std::fprintf(f, ",%" PRId64,
                   stalls(static_cast<NodeId>(n),
                          static_cast<StallClass>(c)));
    std::fputs("\n", f);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace noc

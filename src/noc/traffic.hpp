#pragma once
// Traffic generation (paper Sec 2.2 / 4.1).
//
// Each NIC injects packets according to a Bernoulli process of rate R.
// Patterns:
//  - UniformRequest : 1-flit requests to a uniform random other node.
//  - MixedPaper     : the paper's Fig 5 mix -- 50% broadcast requests,
//                     25% unicast requests, 25% unicast 5-flit responses.
//  - BroadcastOnly  : the paper's Fig 13 / Appendix D traffic.
//  - Transpose / BitComplement / Tornado / NearestNeighbor: classic
//    permutation patterns (extensions; used by the examples).
//
// `identical_prbs` reproduces the chip artifact of Sec 4.1: every NIC runs
// the same generator sequence, so injections and destination choices are
// synchronized across the whole chip and collide, which is what limited
// bypassing at low loads on silicon.

#include <optional>

#include "common/prbs.hpp"
#include "common/rng.hpp"
#include "noc/geometry.hpp"
#include "noc/packet.hpp"

namespace noc {

enum class TrafficPattern {
  UniformRequest,
  MixedPaper,
  BroadcastOnly,
  Transpose,
  BitComplement,
  Tornado,
  NearestNeighbor,
};

const char* traffic_pattern_name(TrafficPattern p);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::MixedPaper;
  /// Offered load in *logical* flits per node per cycle (a broadcast packet
  /// counts its flits once regardless of NIC duplication).
  double offered_flits_per_node_cycle = 0.1;
  bool identical_prbs = false;
  /// Broadcast destination sets include the source (Table 1's ejection load
  /// is k^2 R, i.e. self-delivery included).
  bool include_self_in_broadcast = true;
  uint64_t seed = 1;

  /// MixedPaper fractions (must sum to 1).
  double frac_broadcast_request = 0.50;
  double frac_unicast_request = 0.25;
  double frac_unicast_response = 0.25;
};

/// Per-NIC generator. Deterministic given (config, node).
class TrafficGenerator {
 public:
  TrafficGenerator(const MeshGeometry& geom, const TrafficConfig& cfg,
                   NodeId node);

  /// Possibly generate one logical packet this cycle (Bernoulli process).
  /// Packet ids are made globally unique from (node, local counter).
  std::optional<Packet> generate(Cycle now);

  /// Average flits per logical packet for this pattern (converts offered
  /// flit rate to packet rate).
  double avg_flits_per_packet() const;

  /// 64-bit PRBS payload word for the next flit.
  uint64_t next_payload();

  const TrafficConfig& config() const { return cfg_; }

  /// Change the offered load mid-run (0 stops injection; used to drain the
  /// network at the end of open-loop experiments).
  void set_offered_load(double flits_per_node_cycle) {
    cfg_.offered_flits_per_node_cycle = flits_per_node_cycle;
  }

 private:
  NodeId pick_unicast_dest();

  const MeshGeometry& geom_;
  TrafficConfig cfg_;
  NodeId node_;
  Xoshiro256 rng_;
  Prbs payload_prbs_;
  uint64_t next_local_id_ = 0;
  /// Identical-PRBS mode: deterministic rate accumulator so every NIC
  /// injects at exactly the same cycles (the on-chip generators were
  /// free-running identical LFSRs, not independent Bernoulli sources).
  double inject_credit_ = 0.0;
};

}  // namespace noc

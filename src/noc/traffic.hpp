#pragma once
// Traffic generation (paper Sec 2.2 / 4.1).
//
// The workload API is built around the abstract TrafficSource: one source
// per NIC, driven once per cycle for injection and notified of every flit
// drained at its node, so workloads can close the loop on deliveries (see
// docs/WORKLOADS.md for the full contract). Three families implement it:
//
//  - OpenLoopSource (this header): Bernoulli injection of the classic
//    synthetic patterns below, wrapping TrafficGenerator unchanged.
//  - ClosedLoopSource (noc/workload.hpp): coherence-shaped miss/probe/
//    response traffic with a bounded MSHR-style outstanding window.
//  - TraceSource (noc/workload.hpp): replay of recorded (cycle, src,
//    dest_mask, flits, class) records.
//
// Open-loop patterns:
//  - UniformRequest : 1-flit requests to a uniform random other node.
//  - MixedPaper     : the paper's Fig 5 mix -- 50% broadcast requests,
//                     25% unicast requests, 25% unicast 5-flit responses.
//  - BroadcastOnly  : the paper's Fig 13 / Appendix D traffic.
//  - Transpose / BitComplement / Tornado / NearestNeighbor: classic
//    permutation patterns (extensions; used by the examples).
//
// `identical_prbs` reproduces the chip artifact of Sec 4.1: every NIC runs
// the same generator sequence, so injections and destination choices are
// synchronized across the whole chip and collide, which is what limited
// bypassing at low loads on silicon.

#include <optional>
#include <string_view>

#include "common/active_set.hpp"
#include "common/prbs.hpp"
#include "common/rng.hpp"
#include "noc/geometry.hpp"
#include "noc/packet.hpp"

namespace noc {

enum class TrafficPattern {
  UniformRequest,
  MixedPaper,
  BroadcastOnly,
  Transpose,
  BitComplement,
  Tornado,
  NearestNeighbor,
};

const char* traffic_pattern_name(TrafficPattern p);

/// Inverse of traffic_pattern_name. Also accepts the short aliases used on
/// bench/example command lines ("uniform", "mixed", "broadcast", ...).
std::optional<TrafficPattern> parse_traffic_pattern(std::string_view name);

/// Shared (seed, node) stream derivations: every TrafficSource family draws
/// its RNG and payload-PRBS streams through these, so per-node streams stay
/// independent but reproducible -- and equivalent across source families.
inline uint64_t node_rng_seed(uint64_t seed, NodeId node) {
  return seed ^ SplitMix64(static_cast<uint64_t>(node) + 1).next();
}
inline uint32_t node_prbs_seed(uint64_t seed, NodeId node) {
  return static_cast<uint32_t>((seed + 77u) *
                               (static_cast<uint32_t>(node) + 13u)) |
         1u;
}

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::MixedPaper;
  /// Offered load in *logical* flits per node per cycle (a broadcast packet
  /// counts its flits once regardless of NIC duplication).
  double offered_flits_per_node_cycle = 0.1;
  bool identical_prbs = false;
  /// Legacy synchronized-PRBS destination mapping: the seed code mapped
  /// draws 0 and 1 both onto node+1, giving that destination 2x weight and
  /// breaking the chip's permutation property. Off by default (the fixed
  /// mapping draws from n-1 and skips self); kept reachable so old
  /// fig-bench baselines can be reproduced (see CHANGES.md).
  bool synced_dest_bias = false;
  /// Broadcast destination sets include the source (Table 1's ejection load
  /// is k^2 R, i.e. self-delivery included).
  bool include_self_in_broadcast = true;
  uint64_t seed = 1;

  /// MixedPaper fractions (must sum to 1).
  double frac_broadcast_request = 0.50;
  double frac_unicast_request = 0.25;
  double frac_unicast_response = 0.25;
};

/// Abstract per-node traffic source: the NIC's only view of the workload.
///
/// Contract (docs/WORKLOADS.md):
///  - Determinism: a source's behaviour is a pure function of
///    (config, seed, node) and the delivery events it observes, so
///    simulations are bit-identical at any ExperimentRunner thread count.
///  - Allocation: generate / on_delivery / next_payload must not touch the
///    heap once the network is warmed up (pre-size state in the
///    constructor; use the inline containers in src/common/).
///  - generate() is called once per cycle before the routers tick and may
///    emit at most one logical packet.
///  - on_delivery() is called for every flit drained at this node's NIC
///    (including locally-delivered broadcast self-copies), after the flit
///    has been counted by Metrics.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Possibly emit one logical packet this cycle.
  virtual std::optional<Packet> generate(Cycle now) = 0;

  /// 64-bit payload word for the next injected flit (PRBS stream).
  virtual uint64_t next_payload() = 0;

  /// A flit addressed to this node was drained at the NIC.
  virtual void on_delivery(const Flit& flit, Cycle now) {
    (void)flit;
    (void)now;
  }

  /// Fault mode only (docs/FAULTS.md): the NIC refused `dropped` of this
  /// source's own packet `pkt`'s destinations at submission time -- they
  /// are unreachable on the surviving topology and were counted as drops
  /// by Metrics. Closed-loop sources use this to retire transactions whose
  /// probe can never arrive instead of waiting forever. Called after the
  /// drop has been counted; open-loop sources need no reaction.
  virtual void on_drop(const Packet& pkt, const DestMask& dropped, Cycle now) {
    (void)pkt;
    (void)dropped;
    (void)now;
  }

  /// Change the injection rate mid-run. Open loop: offered flits per node
  /// per cycle (0 stops injection; used to drain at the end of a run).
  /// Closed loop: per-cycle probability of starting a new transaction when
  /// the window has room (clamped to [0,1]). Trace sources ignore it.
  /// Non-virtual on purpose: it wakes any activity-gated NIC that parked on
  /// the old rate before deferring to do_set_rate.
  void set_rate(double rate) {
    do_set_rate(rate);
    wake_.fire();
  }

  /// Earliest cycle >= `from` at which generate() might emit a packet or
  /// consume RNG state, assuming generate() is then called every cycle from
  /// the returned value on. kCycleNever when the source cannot fire again
  /// without external input (rate 0, trace exhausted, closed-loop window
  /// full). Gating contract (docs/PERF.md): skipping generate() for every
  /// cycle below the returned value must leave the source bit-identical to
  /// having called it each cycle. The conservative default -- "may fire
  /// right away" -- keeps the NIC polling every cycle.
  virtual Cycle next_fire_cycle(Cycle from) const { return from; }

  /// Installed by the Network: lets mutating entry points (set_rate) wake
  /// the sleeping NIC that polls this source.
  void set_wake_hook(const WakeHook& h) { wake_ = h; }

  /// True when the source holds no pending obligations (outstanding
  /// transactions, scheduled responses, unreplayed records). Open-loop
  /// sources are always idle: a Bernoulli process is memoryless.
  virtual bool idle() const { return true; }

  /// Reset per-window measurement state (start of the metrics window).
  virtual void begin_window(Cycle now) { (void)now; }

  /// Close the measurement window: window_stats freeze until the next
  /// begin_window, mirroring Metrics' window scoping.
  virtual void end_window(Cycle now) { (void)now; }

  /// Transaction-level statistics accumulated since begin_window. Open-loop
  /// sources report zeros; closed-loop sources report completed misses and
  /// their latencies; trace sources report replayed records.
  struct WindowStats {
    int64_t transactions = 0;
    double latency_sum = 0;
    double latency_max = 0;
    /// Per-leg breakdown (closed loop only, zeros elsewhere): the
    /// probe-to-owner leg is measured at the OWNER from the probe head's
    /// generation stamp, the data-return leg at the REQUESTER from the
    /// response's generation stamp at the owner to its tail delivery. The
    /// two legs plus the directory latency and the owner's response
    /// queueing compose the full transaction latency.
    int64_t probe_legs = 0;
    double probe_latency_sum = 0;
    int64_t response_legs = 0;
    double response_latency_sum = 0;
  };
  virtual WindowStats window_stats() const { return {}; }

 protected:
  virtual void do_set_rate(double rate) { (void)rate; }

 private:
  WakeHook wake_;
};

/// Per-NIC generator. Deterministic given (config, node).
class TrafficGenerator {
 public:
  TrafficGenerator(const MeshGeometry& geom, const TrafficConfig& cfg,
                   NodeId node);

  /// Possibly generate one logical packet this cycle (Bernoulli process).
  /// Packet ids are made globally unique from (node, local counter).
  /// `now` must be strictly increasing across calls; skipped cycles are
  /// allowed only below next_fire_cycle() (their bookkeeping is replayed
  /// bit-exactly, see the identical-PRBS accumulator).
  std::optional<Packet> generate(Cycle now);

  /// Gating hint (TrafficSource::next_fire_cycle semantics). Bernoulli
  /// generators draw RNG every cycle, so with a positive rate they may fire
  /// immediately; the identical-PRBS accumulator is deterministic and the
  /// exact fire cycle is predicted by replaying its per-cycle additions.
  Cycle next_fire_cycle(Cycle from) const;

  /// Average flits per logical packet for this pattern (converts offered
  /// flit rate to packet rate).
  double avg_flits_per_packet() const;

  /// 64-bit PRBS payload word for the next flit.
  uint64_t next_payload();

  const TrafficConfig& config() const { return cfg_; }

  /// Current injection rate (flits/node/cycle). Starts at the config's
  /// offered load; set_rate changes it without touching config(), so the
  /// config always reports what the experiment asked for. The first change
  /// since the last generate() stashes the outgoing rate: cycles a gated
  /// NIC slept through were governed by it and replay at that rate, so the
  /// new rate takes effect at exactly the cycle it would ungated.
  double rate() const { return rate_; }
  void set_rate(double flits_per_node_cycle) {
    if (replay_rate_ < 0.0) replay_rate_ = rate_;
    rate_ = flits_per_node_cycle;
  }

 private:
  NodeId pick_unicast_dest();

  const MeshGeometry& geom_;
  TrafficConfig cfg_;
  NodeId node_;
  double rate_;
  Xoshiro256 rng_;
  Prbs payload_prbs_;
  uint64_t next_local_id_ = 0;
  /// Identical-PRBS mode: deterministic rate accumulator so every NIC
  /// injects at exactly the same cycles (the on-chip generators were
  /// free-running identical LFSRs, not independent Bernoulli sources).
  double inject_credit_ = 0.0;
  /// Last cycle generate() ran; the gap to `now` is replayed one
  /// accumulator step at a time so a gated NIC that slept through
  /// guaranteed-silent cycles stays bit-identical to an ungated one.
  Cycle last_gen_cycle_ = -1;
  /// Rate in force before the first set_rate since the last generate()
  /// (the rate the slept-through cycles must replay at); < 0 = unchanged.
  double replay_rate_ = -1.0;
};

/// Open-loop synthetic traffic behind the TrafficSource interface: a thin
/// adapter over TrafficGenerator, bit-identical to driving the generator
/// directly.
class OpenLoopSource final : public TrafficSource {
 public:
  OpenLoopSource(const MeshGeometry& geom, const TrafficConfig& cfg,
                 NodeId node)
      : gen_(geom, cfg, node) {}

  std::optional<Packet> generate(Cycle now) override {
    return gen_.generate(now);
  }
  uint64_t next_payload() override { return gen_.next_payload(); }
  Cycle next_fire_cycle(Cycle from) const override {
    return gen_.next_fire_cycle(from);
  }

  TrafficGenerator& generator() { return gen_; }
  const TrafficGenerator& generator() const { return gen_; }

 protected:
  void do_set_rate(double rate) override { gen_.set_rate(rate); }

 private:
  TrafficGenerator gen_;
};

}  // namespace noc

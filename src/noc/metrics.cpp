#include "noc/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "noc/telemetry.hpp"

namespace noc {

Metrics::Metrics(const MeshGeometry& geom)
    : geom_(geom),
      link_flits_(static_cast<size_t>(geom.num_nodes())),
      injection_flits_(static_cast<size_t>(geom.num_nodes()), 0) {
  for (auto& arr : link_flits_) arr.fill(0);
}

void Metrics::on_logical_packet(PacketId logical_id, PacketKind kind,
                                Cycle gen, int deliveries) {
  NOC_EXPECTS(deliveries > 0);
  if (shared_ != nullptr) {
    // Capture shard: open-packet map churn is order-sensitive shared state;
    // buffer the event for the serial replay after the span barrier.
    captured_[static_cast<size_t>(capture_phase_)].push_back(
        {.kind = CapturedMetricsEvent::Kind::LogicalPacket,
         .pkind = kind,
         .node = capture_node_,
         .deliveries = deliveries,
         .id = logical_id,
         .cycle = gen});
    return;
  }
  auto [slot, inserted] = open_.find_or_insert(logical_id);
  if (inserted) {
    slot->gen = gen;
    slot->kind = kind;
    slot->remaining = deliveries;
    ++total_generated_;
  } else {
    // NIC-duplicated broadcast: copies accumulate onto one logical record.
    slot->remaining += deliveries;
  }
}

void Metrics::on_flit_received(PacketId logical_id, const Flit& f, Cycle now) {
  if (shared_ != nullptr) {
    captured_[static_cast<size_t>(capture_phase_)].push_back(
        {.kind = CapturedMetricsEvent::Kind::FlitReceived,
         .tail = is_tail(f.type),
         .node = capture_node_,
         .id = logical_id,
         .cycle = now});
    return;
  }
  apply_flit_received(logical_id, is_tail(f.type), now);
}

void Metrics::apply_flit_received(PacketId logical_id, bool tail, Cycle now) {
  ++lifetime_flits_received_;
  if (in_window_) ++window_flits_received_;
  if (!tail) return;
  OpenPacket* op = open_.find(logical_id);
  NOC_ASSERT(op != nullptr);
  NOC_ASSERT(op->remaining > 0);
  --op->remaining;
  retire_if_closed(logical_id, op, now);
}

void Metrics::on_packet_dropped(PacketId logical_id, int count, Cycle now) {
  NOC_EXPECTS(count > 0);
  if (shared_ != nullptr) {
    // Order-sensitive like the other lifecycle events: buffer for the
    // serial replay (NIC drops in the inject phase, router drop-branch
    // retirements in the router phase).
    captured_[static_cast<size_t>(capture_phase_)].push_back(
        {.kind = CapturedMetricsEvent::Kind::PacketDropped,
         .node = capture_node_,
         .deliveries = count,
         .id = logical_id,
         .cycle = now});
    return;
  }
  apply_packet_dropped(logical_id, count);
}

void Metrics::apply_packet_dropped(PacketId logical_id, int count) {
  OpenPacket* op = open_.find(logical_id);
  NOC_ASSERT(op != nullptr);
  NOC_ASSERT(op->remaining >= count);
  op->remaining -= count;
  op->dropped += count;
  retire_if_closed(logical_id, op, /*now=*/0);
}

void Metrics::retire_if_closed(PacketId logical_id, OpenPacket* op,
                               Cycle now) {
  if (op->remaining != 0) return;
  if (op->dropped > 0) {
    // Any lost delivery disqualifies the packet from the latency sample
    // (its "complete action" never happens); it is conserved as a drop.
    ++total_dropped_;
    if (in_window_) ++window_packets_dropped_;
  } else {
    ++total_completed_;
    if (in_window_) {
      const Cycle lat_cycles = now - op->gen;
      const auto lat = static_cast<double>(lat_cycles);
      latency_all_.add(lat);
      latency_by_kind_[static_cast<int>(op->kind)].add(lat);
      hist_all_.add(lat_cycles);
      hist_by_kind_[static_cast<int>(op->kind)].add(lat_cycles);
      ++window_packets_completed_;
    }
    if (telemetry_ != nullptr && telemetry_->tracing(logical_id))
      telemetry_->trace(TraceEventType::PacketEnd, now, logical_id, 0);
  }
  open_.erase(logical_id);
}

void Metrics::on_link_flit(NodeId node, PortDir port) {
  // Shards forward per-node counters straight to the shared instance: each
  // node is ticked by exactly one worker per cycle, so concurrent writers
  // always hit disjoint counters. in_window_ is only flipped between steps.
  if (shared_ != nullptr) {
    shared_->on_link_flit(node, port);
    return;
  }
  if (!in_window_) return;
  ++link_flits_[static_cast<size_t>(node)][static_cast<size_t>(port_index(port))];
}

void Metrics::on_injection_link(NodeId node) {
  if (shared_ != nullptr) {
    shared_->on_injection_link(node);
    return;
  }
  if (!in_window_) return;
  ++injection_flits_[static_cast<size_t>(node)];
}

void Metrics::apply(const CapturedMetricsEvent& e) {
  NOC_EXPECTS(shared_ == nullptr);  // replay targets the shared instance
  if (e.kind == CapturedMetricsEvent::Kind::LogicalPacket)
    on_logical_packet(e.id, e.pkind, e.cycle, e.deliveries);
  else if (e.kind == CapturedMetricsEvent::Kind::PacketDropped)
    apply_packet_dropped(e.id, e.deliveries);
  else
    apply_flit_received(e.id, e.tail, e.cycle);
}

void Metrics::begin_window(Cycle now) {
  in_window_ = true;
  window_start_ = now;
  window_end_ = now;
  latency_all_.reset();
  for (auto& s : latency_by_kind_) s.reset();
  hist_all_.reset();
  for (auto& h : hist_by_kind_) h.reset();
  window_flits_received_ = 0;
  window_packets_completed_ = 0;
  window_packets_dropped_ = 0;
  for (auto& arr : link_flits_) arr.fill(0);
  std::fill(injection_flits_.begin(), injection_flits_.end(), 0);
}

void Metrics::end_window(Cycle now) {
  in_window_ = false;
  window_end_ = now;
}

Cycle Metrics::window_cycles() const { return window_end_ - window_start_; }

Cycle LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  auto rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<int64_t>(rank, 1, count_);
  // Overflow samples are all >= kBins, i.e. above every binned sample: a
  // rank beyond the binned population resolves to the tracked max.
  if (rank > count_ - overflow_) return max_;
  int64_t cum = 0;
  for (int b = 0; b < kBins; ++b) {
    cum += bins_[static_cast<size_t>(b)];
    if (cum >= rank) return b;
  }
  return max_;
}

double Metrics::received_flits_per_cycle() const {
  const Cycle w = window_cycles();
  return w > 0 ? static_cast<double>(window_flits_received_) /
                     static_cast<double>(w)
               : 0.0;
}

double Metrics::max_bisection_link_load() const {
  const Cycle w = window_cycles();
  if (w <= 0) return 0.0;
  // The vertical cut between columns kx/2-1 and kx/2 crosses one E/W link
  // pair per row; rectangular meshes (kx != ky) cut ky rows.
  const int xw = geom_.kx() / 2 - 1;  // west column of the bisection cut
  int64_t worst = 0;
  for (int y = 0; y < geom_.ky(); ++y) {
    const NodeId west = geom_.id(xw, y), east = geom_.id(xw + 1, y);
    worst = std::max(
        worst, link_flits_[static_cast<size_t>(west)][port_index(PortDir::East)]);
    worst = std::max(
        worst, link_flits_[static_cast<size_t>(east)][port_index(PortDir::West)]);
  }
  return static_cast<double>(worst) / static_cast<double>(w);
}

double Metrics::avg_bisection_link_load() const {
  const Cycle w = window_cycles();
  if (w <= 0) return 0.0;
  const int xw = geom_.kx() / 2 - 1;
  int64_t total = 0;
  for (int y = 0; y < geom_.ky(); ++y) {
    const NodeId west = geom_.id(xw, y), east = geom_.id(xw + 1, y);
    total += link_flits_[static_cast<size_t>(west)][port_index(PortDir::East)];
    total += link_flits_[static_cast<size_t>(east)][port_index(PortDir::West)];
  }
  return static_cast<double>(total) / static_cast<double>(2 * geom_.ky()) /
         static_cast<double>(w);
}

double Metrics::max_ejection_link_load() const {
  const Cycle w = window_cycles();
  if (w <= 0) return 0.0;
  int64_t worst = 0;
  for (const auto& arr : link_flits_)
    worst = std::max(worst, arr[port_index(PortDir::Local)]);
  return static_cast<double>(worst) / static_cast<double>(w);
}

double Metrics::avg_ejection_link_load() const {
  const Cycle w = window_cycles();
  if (w <= 0) return 0.0;
  int64_t total = 0;
  for (const auto& arr : link_flits_) total += arr[port_index(PortDir::Local)];
  return static_cast<double>(total) / static_cast<double>(geom_.num_nodes()) /
         static_cast<double>(w);
}

}  // namespace noc

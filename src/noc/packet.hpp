#pragma once
// Packet descriptors and segmentation into flits (paper Sec 2.1: a packet is
// a head flit with the destination, body flits, and a tail flit; single-flit
// packets exist where one flit is both head and tail).

#include <vector>

#include "common/inline_vec.hpp"
#include "noc/flit.hpp"

namespace noc {

struct Packet {
  PacketId id = 0;
  NodeId src = 0;
  DestMask dest_mask;
  MsgClass mc = MsgClass::Request;
  int length = 1;  // flits
  Cycle gen_cycle = 0;
  /// For NIC-level broadcast duplication (no router multicast support): the
  /// logical broadcast this copy belongs to, used so latency is measured to
  /// the LAST delivered copy. 0 when the packet is its own logical packet.
  PacketId logical_id = 0;
  /// Workload correlation tag copied into every flit (see Flit::tag).
  uint64_t tag = 0;
  /// Routing class copied into every flit (see Flit::rc). Sources leave it
  /// at the default; the NIC stamps it from the network's RoutePolicy at
  /// submit time (route_class_for_packet), so trace records and externally
  /// submitted packets pick up whatever policy the network runs.
  RouteClass rc = RouteClass::XY;

  PacketId effective_logical_id() const { return logical_id ? logical_id : id; }
};

/// Globally-unique packet ids from (node, per-node counter): the node sits
/// in the high bits so sources on different nodes can never collide, and
/// ids are always non-zero -- which Flit::tag relies on as its untagged
/// sentinel. Every TrafficSource family allocates ids through this.
inline PacketId make_packet_id(NodeId node, uint64_t& next_local_id) {
  return ((static_cast<PacketId>(node) + 1) << 40) | next_local_id++;
}

/// Paper packet sizes (Fig 2 table): 1-flit requests, 5-flit responses.
constexpr int kRequestPacketLen = 1;
constexpr int kResponsePacketLen = 5;

inline int default_packet_length(MsgClass mc) {
  return mc == MsgClass::Request ? kRequestPacketLen : kResponsePacketLen;
}

/// Upper bound on flits per packet (paper max is the 5-flit response).
constexpr int kMaxPacketFlits = 8;
using FlitList = InlineVec<Flit, kMaxPacketFlits>;

/// Segment a packet into `out` without allocating (the NIC's injection
/// path). `payloads`/`npayloads` feed per-flit payload words (callers
/// typically use a PRBS stream); missing words default to 0.
void segment_packet_into(const Packet& p, const uint64_t* payloads,
                         int npayloads, FlitList& out);

/// Convenience wrapper returning a heap vector (tests / offline tools).
std::vector<Flit> segment_packet(const Packet& p,
                                 const std::vector<uint64_t>& payloads = {});

}  // namespace noc

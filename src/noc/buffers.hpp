#pragma once
// Virtual-channel buffering and credit-based flow control state.
//
// Paper configuration (Sec 3.3 / Fig 2): per input port, 2 message classes
// over 6 VCs -- Request: 4 VCs x 1 flit deep, Response: 2 VCs x 3 flits deep
// (10 x 64b latches per port). Upstream side (an output port, or a NIC's
// injection stage) tracks per-VC credits and a free-VC queue per message
// class for VC allocation.
//
// All state here lives in fixed-capacity inline containers (bounds below):
// the hardware's latch FIFOs and free-VC queues are statically sized, and
// mirroring that keeps the per-cycle datapath free of heap allocation
// (docs/PERF.md).

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.hpp"
#include "common/bit_mask.hpp"
#include "common/inline_vec.hpp"
#include "common/ring_buffer.hpp"
#include "noc/flit.hpp"
#include "noc/routing.hpp"

namespace noc {

/// Static bounds for the inline VC state. The paper's router uses depths
/// 1 and 3 over 6 VCs; the bounds leave headroom for ablation configs.
constexpr int kMaxVcDepth = 8;
constexpr int kMaxTotalVcs = 16;

/// One bit per VC id of a single port (downstream free/credit sets, SA-I
/// eligibility vectors). kMaxTotalVcs <= 32 so the arbiters can consume
/// word 0 directly.
using VcMask = BitMask<kMaxTotalVcs>;
static_assert(kMaxTotalVcs <= 32, "arbiters consume VcMask as one word");

/// One bit per (input port, VC id) pair of a whole router, laid out
/// structure-of-arrays: bit p * kMaxTotalVcs + v. The router's busy-VC set
/// lives in one of these, so "which ports hold work" and "how many VCs are
/// busy" are word ops instead of 5x16 object walks (docs/PERF.md Layer 5).
using VcSetMask = BitMask<kNumPorts * kMaxTotalVcs>;

/// VC lanes partition each message class's VCs for route-class isolation
/// (noc/route_policy.hpp, docs/ROUTING.md): lane Ordered carries only
/// dimension-ordered-XY traffic (O1TURN's XY subnetwork, the adaptive
/// policy's escape subnetwork, multicast trees), lane Free the rest
/// (O1TURN's YX subnetwork, adaptive traffic). Policies that need no
/// partition allocate with Any, which spans both lanes and behaves exactly
/// like the pre-lane single free-VC pool.
enum class VcLane : int8_t { Any = -1, Ordered = 0, Free = 1 };
constexpr int kNumVcLanes = 2;

/// VC organization shared by every input port in the network.
struct VcConfig {
  int vcs_per_mc[kNumMsgClasses] = {4, 2};
  int depth_per_mc[kNumMsgClasses] = {1, 3};

  int total_vcs() const { return vcs_per_mc[0] + vcs_per_mc[1]; }
  int total_buffers() const {
    return vcs_per_mc[0] * depth_per_mc[0] + vcs_per_mc[1] * depth_per_mc[1];
  }
  /// First VC id of a message class (VC ids are global per port).
  int vc_base(MsgClass mc) const {
    return mc == MsgClass::Request ? 0 : vcs_per_mc[0];
  }
  MsgClass mc_of_vc(int vc) const {
    NOC_EXPECTS(vc >= 0 && vc < total_vcs());
    return vc < vcs_per_mc[0] ? MsgClass::Request : MsgClass::Response;
  }
  int depth_of_vc(int vc) const {
    return depth_per_mc[static_cast<int>(mc_of_vc(vc))];
  }

  /// Lane split within a message class: the first ceil(n/2) VCs form the
  /// Ordered lane, the floor(n/2) rest the Free lane (an odd pool favours
  /// the ordered/escape side, which must never be empty).
  int lane_vcs(MsgClass mc, VcLane lane) const {
    NOC_EXPECTS(lane != VcLane::Any);
    const int n = vcs_per_mc[static_cast<int>(mc)];
    return lane == VcLane::Free ? n / 2 : n - n / 2;
  }
  VcLane lane_of_vc(int vc) const {
    const MsgClass mc = mc_of_vc(vc);
    return vc - vc_base(mc) < lane_vcs(mc, VcLane::Ordered) ? VcLane::Ordered
                                                            : VcLane::Free;
  }
  /// True when every message class populates both lanes -- the requirement
  /// for lane-splitting routing policies (route_policy_uses_lanes).
  bool lanes_available() const {
    for (int m = 0; m < kNumMsgClasses; ++m)
      if (lane_vcs(static_cast<MsgClass>(m), VcLane::Free) == 0) return false;
    return true;
  }
};

/// One multicast branch of the packet currently holding an input VC:
/// the output port it forks to, the destination partition, the downstream
/// VC allocated by VA, and per-branch send progress.
struct Branch {
  PortDir out = PortDir::Local;
  DestMask dests;
  int ds_vc = -1;        // downstream VC (VA result); -1 = not yet allocated
  int next_seq = 0;      // next flit sequence number to send on this branch
  bool tail_sent = false;
  /// Fault-mode drop branch (docs/FAULTS.md): `dests` cannot be reached on
  /// the surviving topology. The branch never allocates a VC or requests
  /// the switch; the router's per-tick fault sweep consumes its flits as if
  /// sent (one per cycle) and counts the tail as a dropped delivery, so the
  /// shared FIFO drains and sibling branches are never blocked. `out` is a
  /// meaningless placeholder.
  bool drop = false;

  bool needs_vc() const { return ds_vc < 0 && !drop; }
};

/// A packet forks to at most one live branch per output port, plus at most
/// one fault-mode drop branch for unreachable destinations.
using BranchList = InlineVec<Branch, kNumPorts + 1>;

/// State of one input VC: the flit FIFO plus the active packet's branch
/// bookkeeping. The branch state is also used by fully-bypassed packets
/// whose flits never enter the FIFO (DESIGN.md Sec 3).
class InputVc {
 public:
  void configure(int depth) {
    NOC_EXPECTS(depth >= 1 && depth <= kMaxVcDepth);
    depth_ = depth;
  }

  bool busy() const { return busy_; }
  bool empty() const { return fifo_.empty(); }
  int occupancy() const { return fifo_.size(); }
  int depth() const { return depth_; }

  /// Allocate this VC to a packet and install its branches. The head's
  /// route class is latched for the packet's lifetime (VA consults it).
  void open_packet(const Flit& head, const BranchList& branches);

  /// Route class of the packet currently holding this VC.
  RouteClass rc() const { return rc_; }

  /// Logical id of the packet currently holding this VC (latched from the
  /// head at open_packet). Close sites use it to stamp telemetry hop-exit
  /// trace events after the FIFO has drained (docs/OBSERVABILITY.md).
  PacketId logical() const { return logical_; }

  /// Release the VC after the tail has been sent on every branch.
  void close_packet();

  /// Buffer write. The FIFO stores flits in seq order; front_seq tracks the
  /// seq of the flit at the FIFO head (flits below it already left).
  void push(const Flit& f);

  /// The flit with sequence number `seq`, which must still be buffered.
  const Flit& flit_at_seq(int seq) const;
  bool has_seq(int seq) const;

  /// Pop the front flit once every branch has sent it. Returns it.
  Flit pop_front();
  int front_seq() const { return front_seq_; }

  BranchList& branches() { return branches_; }
  const BranchList& branches() const { return branches_; }

  /// Smallest next_seq over unfinished branches == the seq currently being
  /// serviced; INT_MAX when all branches are done.
  int current_seq() const;

  /// True when all branches have sent the tail.
  bool all_branches_done() const;

  /// Total flits of the active packet that have been accepted (bypassed or
  /// buffered); used to detect when a body flit may bypass in order.
  int accepted_flits = 0;
  int packet_len = 0;

 private:
  RingBuffer<Flit, kMaxVcDepth> fifo_;
  BranchList branches_;
  int depth_ = 1;
  int front_seq_ = 0;
  bool busy_ = false;
  RouteClass rc_ = RouteClass::XY;
  PacketId logical_ = 0;
};

/// Upstream-side view of one downstream input port: per-VC credit counters
/// plus per-MC free-VC queues used by VA (paper Fig 1: "VC allocation from a
/// free VC queue at each output port").
class DownstreamState {
 public:
  void configure(const VcConfig& cfg);

  /// VA: take a free downstream VC of class `mc` in `lane`, or -1. Lane
  /// Any spans both lanes and pops the least-recently-freed VC overall --
  /// release stamps make the two lane FIFOs merge into exactly the single
  /// global FIFO the pre-lane router allocated from, so unrestricted
  /// policies keep their bit-identical allocation order.
  int allocate_vc(MsgClass mc, VcLane lane = VcLane::Any);
  /// A vc_free credit arrived: the downstream VC finished its packet.
  void release_vc(int vc);

  bool has_free_vc(MsgClass mc, VcLane lane = VcLane::Any) const {
    return (free_.word(0) & member_word(mc, lane)) != 0;
  }
  int free_vc_count(MsgClass mc, VcLane lane = VcLane::Any) const {
    return std::popcount(free_.word(0) & member_word(mc, lane));
  }

  /// Buffer credits currently available across `lane`'s VCs of `mc`, free
  /// or allocated -- the downstream-occupancy signal the MinimalAdaptive
  /// policy scores productive ports by. Maintained incrementally (one add
  /// per consume/return), not recomputed per query.
  int lane_credits(MsgClass mc, VcLane lane) const {
    const int m = static_cast<int>(mc);
    if (lane == VcLane::Any)
      return lane_credit_sum_[m][0] + lane_credit_sum_[m][1];
    return lane_credit_sum_[m][static_cast<int>(lane)];
  }

  int credits(int vc) const { return credits_[static_cast<size_t>(vc)]; }
  /// Mask-backed credits(vc) > 0: the hot predicate of serviceable_seq /
  /// the SA-II request build (bit v of credit_mask() tracks exactly
  /// credits(v) > 0; consume/return keep it in sync).
  bool has_credit(int vc) const { return credit_.test(vc); }
  void consume_credit(int vc);
  void return_credit(int vc);

  /// Incrementally-maintained availability masks (exposed so the
  /// randomized cross-checks in tests/test_bit_mask.cpp can diff them
  /// against a from-scratch recompute).
  VcMask free_mask() const { return free_; }
  VcMask credit_mask() const { return credit_; }
  /// Static per-(mc, lane) VC membership, fixed at configure().
  VcMask lane_members(MsgClass mc, VcLane lane) const;

  const VcConfig& config() const { return cfg_; }

 private:
  /// Free-queue entry: the VC id plus its release stamp (the merge key for
  /// lane-Any allocation).
  struct FreeVc {
    int8_t vc = 0;
    uint64_t stamp = 0;
  };

  /// Word-0 view of the (mc, lane) membership mask; lane Any spans both
  /// lanes of the class.
  uint64_t member_word(MsgClass mc, VcLane lane) const {
    const int m = static_cast<int>(mc);
    if (lane == VcLane::Any) return class_member_[m].word(0);
    return member_[m][static_cast<int>(lane)].word(0);
  }

  VcConfig cfg_;
  std::array<int, kMaxTotalVcs> credits_{};
  /// Per-(message class, lane) FIFO free-VC queues: the masks answer the
  /// availability predicates, but allocation ORDER comes from these rings
  /// (least-recently-freed; lane-Any merges the two rings by stamp), which
  /// is what keeps VC allocation bit-identical across gating/threading
  /// modes.
  RingBuffer<FreeVc, kMaxTotalVcs> free_vcs_[kNumMsgClasses][kNumVcLanes];
  uint64_t next_stamp_ = 0;
  /// SoA availability state (docs/PERF.md Layer 5): bit v of free_ <=> VC v
  /// is in some free ring; bit v of credit_ <=> credits_[v] > 0;
  /// member_/class_member_ are the static lane/class partitions; the lane
  /// credit sums mirror sum(credits_ over lane members).
  VcMask free_;
  VcMask credit_;
  VcMask member_[kNumMsgClasses][kNumVcLanes];
  VcMask class_member_[kNumMsgClasses];
  int lane_credit_sum_[kNumMsgClasses][kNumVcLanes] = {};
  /// mc/lane of each VC id, precomputed at configure() (consume/return use
  /// them every credit event).
  int8_t mc_of_[kMaxTotalVcs] = {};
  int8_t lane_of_[kMaxTotalVcs] = {};
};

}  // namespace noc

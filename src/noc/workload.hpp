#pragma once
// First-class workloads behind the TrafficSource interface (the traffic the
// paper's router exists to serve, Sec 3: snoopy-coherence request/response):
//
//  - ClosedLoopSource: coherence-shaped miss/probe/response traffic with a
//    bounded outstanding-request window (MSHR-style). Each node issues a
//    broadcast probe when its window has room; the deterministic "owner" of
//    the probed line answers with a multi-flit data response after a fixed
//    directory latency; the requester retires the miss when the response
//    tail arrives. Load is controlled by the window size and issue
//    probability instead of an offered rate -- the network's sustained
//    throughput at a given window is the measurement.
//
//  - TraceSource: replays (cycle, src, dest_mask, flits, class) records
//    from an in-memory or on-disk trace; Network::record_trace captures
//    such traces from any running workload.
//
// Both preserve the two PR-1 invariants: behaviour is a deterministic
// function of (config, seed, node) plus observed deliveries -- coordination
// happens only through delivered flits and pure functions of their fields,
// never through shared state -- and steady-state stepping performs no heap
// allocations (all source state is pre-sized at construction).

#include <memory>
#include <string>
#include <vector>

#include "common/inline_vec.hpp"
#include "common/stats.hpp"
#include "common/vec_deque.hpp"
#include "noc/traffic.hpp"

namespace noc {

enum class WorkloadKind { OpenLoop, ClosedLoop, Trace };
const char* workload_kind_name(WorkloadKind k);

/// Hard cap on the per-node outstanding-request window (real MSHR files are
/// 4-32 entries; 64 bounds the inline storage).
constexpr int kMaxMshrWindow = 64;

struct ClosedLoopConfig {
  /// Max outstanding misses per node (MSHR entries). In [1, kMaxMshrWindow].
  int window = 4;
  /// Per-cycle probability of issuing a new miss when the window has room.
  /// 1.0 = saturating closed loop (the throughput-at-window measurement);
  /// lower values model compute phases between misses.
  double issue_prob = 1.0;
  /// Cycles between a probe's delivery at the owner and the data response
  /// entering the owner's NIC (tag directory / L2 lookup).
  Cycle directory_latency = 2;
  /// Cycles a node must wait after retiring a miss before issuing the next.
  Cycle think_time = 0;
  /// Data response length in flits (paper: 5-flit cache-line responses).
  int response_length = kResponsePacketLen;

  /// nullptr when every knob is in contract, else a printable description
  /// of the violated bound. CLI layers reject with the message;
  /// ClosedLoopSource asserts on it.
  const char* validate() const;
};

/// One replayable injection: at `cycle`, node `src` offered a packet.
struct TraceRecord {
  Cycle cycle = 0;
  NodeId src = 0;
  DestMask dest_mask;
  int length = 1;
  MsgClass mc = MsgClass::Request;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// An in-memory trace: records ordered by cycle (ties in capture order).
/// kx/ky is the mesh the trace was captured on (0 = unknown, a legacy v1
/// file); Network::record_trace stamps it, and replay layers check it with
/// trace_geometry_error before building a network, so a trace from the
/// wrong mesh fails with a message instead of a deep assert (or, worse, a
/// partial replay).
struct Trace {
  int kx = 0;
  int ky = 0;
  std::vector<TraceRecord> records;
};

/// Plain-text trace file I/O. Files with known geometry carry a
/// "# noc-trace v2 geometry KXxKY" header; geometry-less traces write (and
/// v1 files load under) the legacy "# noc-trace v1" header. One record per
/// line: cycle src dest_mask(hex) length class. save returns false on I/O
/// failure; load returns nullptr and, when `error` is non-null, a
/// path:line diagnostic on I/O or parse failure.
bool save_trace(const std::string& path, const Trace& trace);
std::shared_ptr<Trace> load_trace(const std::string& path,
                                  std::string* error = nullptr);

/// Empty when `trace` fits a kx x ky mesh (unknown geometry passes -- v1
/// files keep working and TraceSource still bound-checks every record);
/// else a printable mismatch description.
std::string trace_geometry_error(const Trace& trace, int kx, int ky);

struct TraceConfig {
  /// In-memory trace (preferred; shared read-only across sweep threads).
  std::shared_ptr<const Trace> trace;
  /// Loaded once per Network when `trace` is null.
  std::string path;
};

/// Which workload family a Network's sources come from, plus its knobs.
/// OpenLoop reads the existing NetworkConfig::traffic (pattern, offered
/// load, seeds) so all pre-existing configs behave unchanged.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::OpenLoop;
  ClosedLoopConfig closed;
  TraceConfig trace;
};

/// Resolve a TraceConfig to its in-memory trace (loading `path` if needed).
std::shared_ptr<const Trace> resolve_trace(const TraceConfig& cfg);

/// Factory: build node `node`'s source for the given workload. Seeding
/// derives from (traffic.seed, node) for every family. `resolved_trace`
/// lets the caller load a trace file once for all nodes (required non-null
/// for WorkloadKind::Trace when spec.trace.trace is null and path is
/// empty).
std::unique_ptr<TrafficSource> make_traffic_source(
    const MeshGeometry& geom, const TrafficConfig& traffic,
    const WorkloadSpec& spec, NodeId node,
    std::shared_ptr<const Trace> resolved_trace = nullptr);

/// Coherence-shaped closed loop (see file header). All cross-node
/// coordination is a pure function of delivered flit fields: the owner of a
/// probe is hash(tag, requester), computable identically at every node.
class ClosedLoopSource final : public TrafficSource {
 public:
  ClosedLoopSource(const MeshGeometry& geom, const TrafficConfig& traffic,
                   const ClosedLoopConfig& cfg, NodeId node);

  std::optional<Packet> generate(Cycle now) override;
  uint64_t next_payload() override { return payload_prbs_.next_bits(64); }
  void on_delivery(const Flit& flit, Cycle now) override;
  void on_drop(const Packet& pkt, const DestMask& dropped, Cycle now) override;
  Cycle next_fire_cycle(Cycle from) const override;
  bool idle() const override {
    return outstanding_.empty() && pending_.empty();
  }
  void begin_window(Cycle now) override;
  void end_window(Cycle now) override;
  WindowStats window_stats() const override;

  const ClosedLoopConfig& config() const { return cfg_; }
  int outstanding() const { return outstanding_.size(); }
  /// Lifetime counters (not window-scoped; conservation checks).
  int64_t issued_probes() const { return issued_; }
  int64_t completed_transactions() const { return completed_; }

  /// Deterministic owner of the line probed by (tag, requester): uniform
  /// over all nodes except the requester.
  NodeId owner_of(uint64_t tag, NodeId requester) const;

 protected:
  void do_set_rate(double rate) override;

 private:
  struct OutstandingMiss {
    uint64_t tag = 0;
    Cycle issued = 0;
  };
  struct PendingResponse {
    Cycle due = 0;
    uint64_t tag = 0;
    NodeId requester = 0;
  };

  const MeshGeometry& geom_;
  ClosedLoopConfig cfg_;
  NodeId node_;
  uint64_t seed_;  // node-independent: all nodes must agree on owner_of
  double issue_prob_;
  Xoshiro256 rng_;
  Prbs payload_prbs_;
  uint64_t next_local_id_ = 0;
  Cycle next_miss_eligible_ = 0;
  InlineVec<OutstandingMiss, kMaxMshrWindow> outstanding_;
  /// Responses this node owes, in due order (deliveries arrive in
  /// nondecreasing `now`, so appends keep the deque sorted). Bounded by the
  /// system-wide outstanding cap n * window, pre-sized in the constructor.
  VecDeque<PendingResponse> pending_;
  int64_t issued_ = 0;
  int64_t completed_ = 0;
  bool in_window_ = false;
  RunningStat window_latency_;
  /// Leg breakdown feeding WindowStats (see TrafficSource::WindowStats):
  /// probe-to-owner measured here when this node owns the probed line,
  /// data-return measured here when a response retires one of our misses.
  RunningStat window_probe_leg_;
  RunningStat window_response_leg_;
};

/// Trace replay: injects this node's records in order, one per cycle at the
/// earliest cycle >= the recorded one (NIC queues absorb any backlog).
class TraceSource final : public TrafficSource {
 public:
  TraceSource(const MeshGeometry& geom, const TrafficConfig& traffic,
              std::shared_ptr<const Trace> trace, NodeId node);

  std::optional<Packet> generate(Cycle now) override;
  uint64_t next_payload() override { return payload_prbs_.next_bits(64); }
  Cycle next_fire_cycle(Cycle from) const override;
  bool idle() const override { return next_ >= mine_.size(); }
  void begin_window(Cycle now) override;
  void end_window(Cycle now) override;
  WindowStats window_stats() const override;

  size_t records_total() const { return mine_.size(); }
  size_t records_replayed() const { return next_; }

 private:
  NodeId node_;
  Prbs payload_prbs_;
  std::shared_ptr<const Trace> trace_;  // keeps the shared records alive
  std::vector<TraceRecord> mine_;       // this node's records, time-ordered
  size_t next_ = 0;
  uint64_t next_local_id_ = 0;
  bool in_window_ = false;
  int64_t window_injected_ = 0;
};

}  // namespace noc

#include "noc/debug.hpp"

#include <cstdio>

namespace noc {

std::string describe(const Flit& f) {
  const char* ty = "?";
  switch (f.type) {
    case FlitType::Head: ty = "H"; break;
    case FlitType::Body: ty = "B"; break;
    case FlitType::Tail: ty = "T"; break;
    case FlitType::HeadTail: ty = "HT"; break;
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "flit{pkt=%llu src=%d dm=%llx bm=%llx mc=%d %s seq=%d/%d vc=%d}",
                static_cast<unsigned long long>(f.packet_id), f.src,
                static_cast<unsigned long long>(f.dest_mask),
                static_cast<unsigned long long>(f.branch_mask),
                static_cast<int>(f.mc), ty, f.seq, f.packet_len, f.vc);
  return buf;
}

}  // namespace noc

#include "noc/debug.hpp"

#include <cstdio>

namespace noc {

std::string describe(const Flit& f) {
  const char* ty = "?";
  switch (f.type) {
    case FlitType::Head: ty = "H"; break;
    case FlitType::Body: ty = "B"; break;
    case FlitType::Tail: ty = "T"; break;
    case FlitType::HeadTail: ty = "HT"; break;
  }
  char bm[DestMask::kMaxHexChars + 1];
  f.branch_mask.to_hex(bm);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "flit{pkt=%llu src=%d bm=%s mc=%d %s seq=%d/%d vc=%d}",
                static_cast<unsigned long long>(f.packet_id), f.src, bm,
                static_cast<int>(f.mc), ty, f.seq, f.packet_len, f.vc);
  return buf;
}

}  // namespace noc

#pragma once
// Network Interface Controller (paper Sec 2.1/3): packetizes and injects
// traffic into its router's Local input port and drains ejected flits.
//
// Injection side: the NIC drives an abstract TrafficSource (open-loop
// generator, closed-loop coherence engine, or trace replayer -- see
// docs/WORKLOADS.md), asking it for at most one logical packet per cycle.
// Packets go through per-message-class queues, VC allocation against the
// router's Local input port (credit-based), one flit per cycle on the 64b
// NIC->router link. In Proposed mode the NIC also raises the lookahead for
// each flit so injected flits can bypass the first router; the lookahead
// wire is latency-0 (the NIC abuts its router) and the NIC ticks before
// routers each cycle.
//
// When the routers lack multicast support the NIC duplicates a broadcast
// into k^2-1 unicast copies (paper Sec 2.3, TILE64/Teraflops behaviour);
// its own copy is delivered locally without entering the network.
//
// Ejection side: flits arrive from the router's Local output into small
// per-VC buffers and drain at 1 flit/cycle -- the ejection bandwidth that
// bounds broadcast throughput in Table 1. Every drained flit is reported
// back to the TrafficSource so closed-loop workloads can react to
// deliveries.

#include <optional>
#include <vector>

#include "common/vec_deque.hpp"
#include "noc/buffers.hpp"
#include "noc/energy_events.hpp"
#include "noc/metrics.hpp"
#include "noc/router.hpp"
#include "noc/traffic.hpp"
#include "sim/channel.hpp"

namespace noc {

struct Trace;  // noc/workload.hpp

class Nic {
 public:
  struct Channels {
    Channel<Flit>* flit_to_router = nullptr;    // latency 1
    Channel<Lookahead>* la_to_router = nullptr; // latency 0 (Proposed only)
    Channel<Credit>* credit_from_router = nullptr;
    Channel<Flit>* flit_from_router = nullptr;
    Channel<Credit>* credit_to_router = nullptr;
  };

  /// `source` must outlive the NIC (the Network owns both).
  Nic(NodeId node, const MeshGeometry& geom, const RouterConfig& router_cfg,
      TrafficSource* source, EnergyCounters* energy, Metrics* metrics);

  void connect(const Channels& ch) { ch_ = ch; }

  /// Injection half-cycle; must run before the routers' tick.
  void tick_inject(Cycle now);
  /// Ejection half-cycle; must run after the routers' tick.
  void tick_eject(Cycle now);

  /// Enqueue an externally-constructed packet (examples/tests drive the
  /// network directly through this).
  void submit_packet(Packet pkt);

  /// When set, every logical packet submitted at this NIC is appended to
  /// `out` as a TraceRecord (see Network::record_trace). Recording is off
  /// the steady-state no-allocation path.
  void set_trace_recorder(Trace* out) { trace_out_ = out; }

  /// Installed by a gating Network: fired whenever this NIC's injection
  /// half may have new work (an external submit_packet, or a delivery that
  /// can unblock a closed-loop source). Null hook = no-op (ungated).
  void set_inject_wake_hook(const WakeHook& h) { wake_inject_ = h; }

  /// Attach the network's fault-schedule state (docs/FAULTS.md): packets
  /// submitted toward destinations unreachable on the surviving topology
  /// are counted as drops at the door (and reported to the source) instead
  /// of being injected to hang in the mesh. Null = pristine fast path.
  void attach_faults(const FaultState* faults) { faults_ = faults; }

  /// Attach the network's telemetry sink (docs/OBSERVABILITY.md): the NIC
  /// stamps the inject-side begin of each sampled packet's lifecycle slice
  /// and an eject instant per drained tail. Null = off, one untaken branch
  /// per hook (the attach_faults pattern).
  void attach_telemetry(Telemetry* t) { telemetry_ = t; }

  /// Injection half holds queued packets or a transmission in progress.
  /// (Whether the *source* may fire is the Network's question, via
  /// TrafficSource::next_fire_cycle.)
  bool inject_busy() const;
  /// Ejection half holds undrained flits.
  bool eject_busy() const;

  bool idle() const;
  NodeId node() const { return node_; }
  TrafficSource& source() { return *source_; }
  const TrafficSource& source() const { return *source_; }

 private:
  struct ActiveTx {
    FlitList flits;
    int next = 0;
    int vc = -1;
    bool done() const { return next >= flits.size(); }
  };

  PacketKind classify(const Packet& pkt) const;
  void account_new_packet(const Packet& pkt, Cycle now);
  void enqueue_for_send(Packet pkt);
  bool try_activate(MsgClass mc);
  bool can_send(MsgClass mc) const;
  void send_flit(MsgClass mc, Cycle now);

  NodeId node_;
  const MeshGeometry& geom_;
  RouterConfig router_cfg_;
  EnergyCounters* energy_;
  Metrics* metrics_;
  TrafficSource* source_;
  const FaultState* faults_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  Trace* trace_out_ = nullptr;
  WakeHook wake_inject_;
  Channels ch_;

  DownstreamState ds_;  // router Local input port credits / free VCs
  VecDeque<Packet> queue_[kNumMsgClasses];
  std::optional<ActiveTx> active_[kNumMsgClasses];
  RoundRobinArbiter mc_rr_{kNumMsgClasses};

  // Ejection buffers, one FIFO per VC of the router's Local output. Bounded
  // by the VC depth (credit protocol), so fixed rings suffice.
  std::vector<RingBuffer<Flit, kMaxVcDepth>> rx_vcs_;
  RoundRobinArbiter rx_rr_{1};
};

}  // namespace noc

#pragma once
// Energy event counters.
//
// The simulator does not compute joules inline; it counts microarchitectural
// events (the quantities a power model multiplies by per-event energies).
// src/power turns these counts into the paper's mW breakdowns, and the same
// counts feed all three estimator families of Fig 8.

#include <cstdint>

namespace noc {

struct EnergyCounters {
  // Datapath events.
  int64_t xbar_traversals = 0;   // one per (flit, granted output) -- fanout
  int64_t link_traversals = 0;   // router-to-router link, one per flit copy
  int64_t nic_link_traversals = 0;  // NIC<->router links

  // Buffer events.
  int64_t buffer_writes = 0;
  int64_t buffer_reads = 0;

  // Control events.
  int64_t sa1_arbitrations = 0;  // mSA-I round-robin decisions
  int64_t sa2_arbitrations = 0;  // mSA-II matrix-arbiter decisions
  int64_t vc_allocations = 0;    // VA free-VC-queue pops
  int64_t lookaheads_sent = 0;   // 15b lookahead transmissions

  // Occupancy / time.
  int64_t cycles = 0;            // network cycles elapsed (per-router clock
                                 // and leakage scale with this)
  int64_t vc_active_cycles = 0;  // VC bookkeeping state busy-cycles

  // Microarchitectural outcomes (statistics, not energy).
  int64_t bypasses = 0;          // flits that fully bypassed a router
  int64_t partial_bypasses = 0;  // multicast flits that bypassed a subset
  int64_t buffered_hops = 0;     // flits that took the buffered pipeline

  void reset() { *this = EnergyCounters{}; }

  EnergyCounters& operator+=(const EnergyCounters& o);
  EnergyCounters delta_since(const EnergyCounters& baseline) const;

  /// Fraction of hop traversals that bypassed buffering entirely.
  double bypass_rate() const {
    const double total =
        static_cast<double>(bypasses + partial_bypasses + buffered_hops);
    return total > 0 ? static_cast<double>(bypasses) / total : 0.0;
  }
};

}  // namespace noc

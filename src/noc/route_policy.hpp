#pragma once
// Routing-policy subsystem: per-packet routing functions for unicasts on
// top of the paper's deadlock-free dimension-ordered multicast trees
// (docs/ROUTING.md).
//
// The chip hardwires XY. The paper blames part of its residual throughput
// gap on "XY routing imbalance", and bench/large_k_scaling.cpp quantifies
// that share growing with mesh radix. The policies here are the standard
// routing-level levers against it:
//
//   XY              -- the fabricated design (dimension-ordered, X first).
//   YX              -- the mirror tree (ablation, as before).
//   O1TURN          -- each unicast packet picks XY or YX deterministically
//                      from its id, halving worst-case channel load; the
//                      two orders run on disjoint VC lanes so each lane is
//                      an acyclic dimension-ordered subnetwork.
//   MinimalAdaptive -- per-hop productive-port choice by downstream credit
//                      occupancy on the Free lane, with a dimension-ordered
//                      XY escape on the Ordered lane (Duato's protocol) for
//                      deadlock freedom.
//
// Multicasts stay pinned to the dimension-ordered tree under every policy
// (faithful to the paper; adaptive multicast trees are not deadlock-free
// without far heavier machinery -- see docs/ROUTING.md). The per-packet
// RouteClass stamped at injection (route_class_for_packet) is what the
// datapath consumes: it selects both the routing function at each hop and
// the VC lane the packet may occupy (route_class_lane).
//
// Under a non-empty FaultPlan (docs/FAULTS.md) MinimalAdaptive becomes
// fault-aware: dead output ports drop out of the productive choice and the
// Ordered-lane escape hop comes from the surviving-topology spanning tree
// in noc/fault.hpp instead of escape_port() below (deadlock argument in
// docs/ROUTING.md "Escape routing on a faulted mesh"). The oblivious
// policies keep their static trees and stall on dead links until revival.

#include <optional>
#include <string_view>

#include "common/inline_vec.hpp"
#include "noc/buffers.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

namespace noc {

enum class RoutePolicy : uint8_t { XY = 0, YX = 1, O1Turn = 2, MinimalAdaptive = 3 };
constexpr int kNumRoutePolicies = 4;

const char* route_policy_name(RoutePolicy p);

/// Inverse of route_policy_name. Also accepts the aliases used on bench /
/// example command lines ("xy", "yx", "o1turn", "adaptive",
/// "minimal-adaptive").
std::optional<RoutePolicy> parse_route_policy(std::string_view name);

/// Policies that partition the VC pool into lanes (O1TURN's two orders,
/// MinimalAdaptive's escape class) need both lanes populated in every
/// message class: reject configs where a lane would be empty.
bool route_policy_uses_lanes(RoutePolicy p);

/// Route class stamped on a packet at injection. Multicasts are pinned to
/// the policy's ordered tree; O1TURN unicasts draw a deterministic coin
/// from the packet id (globally unique and identical in serial and
/// parallel runs, so the choice cannot depend on scheduling).
RouteClass route_class_for_packet(RoutePolicy policy, const Packet& pkt);

/// VC lane a packet of class `rc` may be allocated on output `out` under
/// `policy`. Local (ejection) is always Any: ejection channels are
/// terminal sinks the NIC drains unconditionally, so no channel-dependency
/// cycle can pass through them and restricting their lanes would only
/// waste ejection bandwidth. The Adaptive class maps to its PRIMARY lane
/// (Free); the escape fallback is requested explicitly by the router's VA
/// (see Router::allocate_branch_vcs).
VcLane route_class_lane(RoutePolicy policy, RouteClass rc, PortDir out);

/// Tree route for the ordered classes (XY / Escape use the XY tree, YX the
/// YX tree). The Adaptive class has no static tree -- the router picks the
/// port per hop from live credit state.
RouteSet class_tree_route(RouteClass rc, const MeshGeometry& geom,
                          NodeId here, DestMask dests);

/// Minimal (productive) output ports toward `dest`: the X-productive port
/// first, then the Y-productive one; empty only when dest == here.
using PortChoices = InlineVec<PortDir, 2>;
PortChoices productive_ports(const MeshGeometry& geom, NodeId here,
                             NodeId dest);

/// The escape hop toward `dest`: plain dimension-ordered XY (X before Y),
/// Local when dest == here. The escape subnetwork -- Ordered-lane VCs
/// reached only through this function -- is acyclic by the same argument
/// as the XY tree.
PortDir escape_port(const MeshGeometry& geom, NodeId here, NodeId dest);

}  // namespace noc

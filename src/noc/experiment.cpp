#include "noc/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "sim/thread_pool.hpp"

namespace noc {

double deliveries_per_offered_flit(const NetworkConfig& cfg) {
  const MeshGeometry geom(cfg.k, cfg.ky > 0 ? cfg.ky : cfg.k);
  const auto n = static_cast<double>(geom.num_nodes());
  const double bdel =
      cfg.traffic.include_self_in_broadcast ? n : n - 1.0;  // per bcast flit
  switch (cfg.traffic.pattern) {
    case TrafficPattern::BroadcastOnly:
      return bdel;
    case TrafficPattern::MixedPaper: {
      // Per logical packet: flits offered and flits delivered.
      const double offered = cfg.traffic.frac_broadcast_request * 1.0 +
                             cfg.traffic.frac_unicast_request * 1.0 +
                             cfg.traffic.frac_unicast_response * 5.0;
      const double delivered = cfg.traffic.frac_broadcast_request * bdel +
                               cfg.traffic.frac_unicast_request * 1.0 +
                               cfg.traffic.frac_unicast_response * 5.0;
      return delivered / offered;
    }
    default:
      return 1.0;
  }
}

PointResult measure_point(NetworkConfig cfg, double offered,
                          const MeasureOptions& opt, Trace* capture) {
  // Only the open loop has an offered rate to set; closed-loop and trace
  // workloads carry their own load knobs in the WorkloadSpec.
  if (cfg.workload.kind == WorkloadKind::OpenLoop)
    cfg.traffic.offered_flits_per_node_cycle = offered;
  Network net(cfg);
  if (capture != nullptr) net.record_trace(capture);
  Simulation sim(net);
  sim.run(opt.warmup);
  net.begin_measurement_window(sim.now());
  const EnergyCounters before = net.energy();
  sim.run(opt.window);
  net.end_measurement_window(sim.now());

  PointResult r;
  // Offered rate only describes the open loop; other workloads report 0
  // (their load lives in transactions / closed_loop_window).
  r.offered_fpc = cfg.workload.kind == WorkloadKind::OpenLoop ? offered : 0.0;
  r.avg_latency = net.metrics().avg_packet_latency();
  r.recv_flits_per_cycle = net.metrics().received_flits_per_cycle();
  r.recv_gbps = flits_per_cycle_to_gbps(r.recv_flits_per_cycle);
  r.completed_packets = net.metrics().completed_packets();
  r.dropped_packets = net.metrics().dropped_packets();
  r.max_ejection_load = net.metrics().max_ejection_link_load();
  r.max_bisection_load = net.metrics().max_bisection_link_load();
  r.energy = net.energy().delta_since(before);
  r.bypass_rate = r.energy.bypass_rate();

  const LatencyHistogram& hist = net.metrics().latency_hist();
  r.p50_latency = hist.percentile(0.50);
  r.p95_latency = hist.percentile(0.95);
  r.p99_latency = hist.percentile(0.99);
  r.min_latency = hist.min();
  r.max_latency = hist.max();
  if (const Telemetry* t = net.telemetry()) {
    for (int c = 0; c < kNumStallClasses; ++c)
      r.stall_cycles[c] = t->total_stalls(static_cast<StallClass>(c));
  }

  TrafficSource::WindowStats total;
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n) {
    const auto s = net.source(n).window_stats();
    total.transactions += s.transactions;
    total.latency_sum += s.latency_sum;
    total.latency_max = std::max(total.latency_max, s.latency_max);
    total.probe_legs += s.probe_legs;
    total.probe_latency_sum += s.probe_latency_sum;
    total.response_legs += s.response_legs;
    total.response_latency_sum += s.response_latency_sum;
  }
  r.transactions = total.transactions;
  r.avg_transaction_latency =
      total.transactions > 0
          ? total.latency_sum / static_cast<double>(total.transactions)
          : 0.0;
  r.max_transaction_latency = total.latency_max;
  r.probe_legs = total.probe_legs;
  r.avg_probe_latency =
      total.probe_legs > 0
          ? total.probe_latency_sum / static_cast<double>(total.probe_legs)
          : 0.0;
  r.response_legs = total.response_legs;
  r.avg_response_latency = total.response_legs > 0
                               ? total.response_latency_sum /
                                     static_cast<double>(total.response_legs)
                               : 0.0;
  r.transactions_per_cycle =
      opt.window > 0
          ? static_cast<double>(total.transactions) /
                static_cast<double>(opt.window)
          : 0.0;
  if (cfg.workload.kind == WorkloadKind::ClosedLoop)
    r.closed_loop_window = cfg.workload.closed.window;
  return r;
}

PointResult measure_workload(const NetworkConfig& cfg,
                             const MeasureOptions& opt, Trace* capture) {
  return measure_point(cfg, cfg.traffic.offered_flits_per_node_cycle, opt,
                       capture);
}

double zero_load_latency(NetworkConfig cfg, const MeasureOptions& opt) {
  MeasureOptions zl = opt;
  zl.window = std::max<Cycle>(opt.window, 20000);
  const double tiny = 0.002;
  return measure_point(cfg, tiny, zl).avg_latency;
}

SaturationResult find_saturation(NetworkConfig cfg, const MeasureOptions& opt) {
  // Offered load is the search variable: only the open loop has one.
  // Closed-loop workloads sweep their window instead (window_sweep).
  NOC_EXPECTS(cfg.workload.kind == WorkloadKind::OpenLoop);
  SaturationResult res;
  res.zero_load_latency = zero_load_latency(cfg, opt);
  const double threshold = 3.0 * res.zero_load_latency;
  const double limit = 1.0 / deliveries_per_offered_flit(cfg);

  // Geometric ramp until saturated, then bisect.
  double lo = limit * 0.05, hi = limit * 1.10;
  PointResult lo_pt = measure_point(cfg, lo, opt);
  if (lo_pt.avg_latency > threshold) {
    // Saturates below 5% of the ejection limit; bisect from ~0.
    hi = lo;
    lo = limit * 0.002;
  } else {
    double rate = lo;
    bool found = false;
    while (rate < hi) {
      const double next = rate * 1.5;
      PointResult pt = measure_point(cfg, std::min(next, hi), opt);
      if (pt.avg_latency > threshold) {
        lo = rate;
        hi = std::min(next, hi);
        found = true;
        break;
      }
      rate = next;
    }
    if (!found) {
      // Never saturated inside the physical envelope: report the limit.
      res.saturation_offered = hi;
      res.at_saturation = measure_point(cfg, hi, opt);
      res.saturation_gbps = res.at_saturation.recv_gbps;
      return res;
    }
  }
  for (int iter = 0; iter < 9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    PointResult pt = measure_point(cfg, mid, opt);
    if (pt.avg_latency > threshold)
      hi = mid;
    else
      lo = mid;
  }
  res.saturation_offered = 0.5 * (lo + hi);
  res.at_saturation = measure_point(cfg, res.saturation_offered, opt);
  res.saturation_gbps = res.at_saturation.recv_gbps;
  return res;
}

std::vector<PointResult> sweep_curve(NetworkConfig cfg,
                                     const std::vector<double>& offered,
                                     const MeasureOptions& opt) {
  NOC_EXPECTS(cfg.workload.kind == WorkloadKind::OpenLoop);
  std::vector<PointResult> out;
  out.reserve(offered.size());
  for (double r : offered) out.push_back(measure_point(cfg, r, opt));
  return out;
}

int ExperimentRunner::threads() const {
  return opt_.threads > 0 ? opt_.threads : ThreadPool::hardware_threads();
}

std::vector<PointResult> ExperimentRunner::run(
    const std::vector<SweepPoint>& points) const {
  std::vector<PointResult> out(points.size());
  // Each index is a fully independent simulation writing only its own slot:
  // the schedule cannot affect any result.
  parallel_for(threads(), static_cast<int>(points.size()), [&](int i) {
    const auto idx = static_cast<size_t>(i);
    out[idx] = measure_point(points[idx].cfg, points[idx].offered,
                             opt_.measure);
  });
  return out;
}

std::vector<PointResult> ExperimentRunner::sweep(
    const NetworkConfig& cfg, const std::vector<double>& offered) const {
  NOC_EXPECTS(cfg.workload.kind == WorkloadKind::OpenLoop);
  std::vector<SweepPoint> pts;
  pts.reserve(offered.size());
  for (double r : offered) pts.push_back(SweepPoint{cfg, r});
  return run(pts);
}

std::vector<std::vector<PointResult>> ExperimentRunner::sweep_all(
    const std::vector<NetworkConfig>& cfgs,
    const std::vector<double>& offered) const {
  for (const auto& cfg : cfgs)
    NOC_EXPECTS(cfg.workload.kind == WorkloadKind::OpenLoop);
  std::vector<SweepPoint> pts;
  pts.reserve(cfgs.size() * offered.size());
  for (const auto& cfg : cfgs)
    for (double r : offered) pts.push_back(SweepPoint{cfg, r});
  const auto flat = run(pts);
  std::vector<std::vector<PointResult>> curves(cfgs.size());
  for (size_t c = 0; c < cfgs.size(); ++c)
    curves[c].assign(flat.begin() + static_cast<long>(c * offered.size()),
                     flat.begin() + static_cast<long>((c + 1) * offered.size()));
  return curves;
}

std::vector<SaturationResult> ExperimentRunner::find_saturations(
    const std::vector<NetworkConfig>& cfgs) const {
  std::vector<SaturationResult> out(cfgs.size());
  parallel_for(threads(), static_cast<int>(cfgs.size()), [&](int i) {
    const auto idx = static_cast<size_t>(i);
    out[idx] = find_saturation(cfgs[idx], opt_.measure);
  });
  return out;
}

std::vector<PointResult> ExperimentRunner::window_sweep(
    const NetworkConfig& cfg, const std::vector<int>& windows) const {
  NOC_EXPECTS(cfg.workload.kind == WorkloadKind::ClosedLoop);
  std::vector<SweepPoint> pts;
  pts.reserve(windows.size());
  for (int w : windows) {
    SweepPoint p{cfg, 0.0};
    p.cfg.workload.closed.window = w;
    pts.push_back(std::move(p));
  }
  return run(pts);
}

MeasureOptions cli_measure_options(const CliArgs& args,
                                   const MeasureOptions& defaults) {
  MeasureOptions opt;
  opt.warmup = args.get_int("warmup", defaults.warmup);
  opt.window = args.get_int("window", defaults.window);
  return opt;
}

ExperimentOptions cli_experiment_options(const CliArgs& args,
                                         const MeasureOptions& defaults) {
  ExperimentOptions opt;
  opt.measure = cli_measure_options(args, defaults);
  opt.threads = static_cast<int>(args.get_int("threads", 0));
  return opt;
}

RoutePolicy cli_route_policy(const CliArgs& args, RoutePolicy dflt) {
  const std::string name = args.get_str("policy", "");
  if (name.empty()) return dflt;
  if (const auto p = parse_route_policy(name)) return *p;
  std::fprintf(stderr,
               "unknown routing policy: %s (valid: xy yx o1turn adaptive)\n",
               name.c_str());
  std::exit(1);
}

int cli_mesh_radix(const CliArgs& args, int dflt) {
  const int64_t k = args.get_int("k", dflt);
  if (k < 2 || k > kMaxMeshRadix) {
    std::fprintf(stderr,
                 "invalid --k %lld: mesh radix must be in 2..%d "
                 "(DestMask capacity is %d nodes)\n",
                 static_cast<long long>(k), kMaxMeshRadix,
                 DestMask::kCapacity);
    std::exit(1);
  }
  return static_cast<int>(k);
}

}  // namespace noc

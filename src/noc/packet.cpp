#include "noc/packet.hpp"

#include "common/assert.hpp"

namespace noc {

std::vector<Flit> segment_packet(const Packet& p,
                                 const std::vector<uint64_t>& payloads) {
  NOC_EXPECTS(p.length >= 1);
  NOC_EXPECTS(p.dest_mask != 0);
  std::vector<Flit> flits;
  flits.reserve(static_cast<size_t>(p.length));
  for (int i = 0; i < p.length; ++i) {
    Flit f;
    f.packet_id = p.id;
    f.logical_id = p.effective_logical_id();
    f.src = p.src;
    f.dest_mask = p.dest_mask;
    f.branch_mask = p.dest_mask;
    f.mc = p.mc;
    f.seq = i;
    f.packet_len = p.length;
    f.gen_cycle = p.gen_cycle;
    f.payload = i < static_cast<int>(payloads.size()) ? payloads[i] : 0;
    if (p.length == 1) {
      f.type = FlitType::HeadTail;
    } else if (i == 0) {
      f.type = FlitType::Head;
    } else if (i == p.length - 1) {
      f.type = FlitType::Tail;
    } else {
      f.type = FlitType::Body;
    }
    flits.push_back(f);
  }
  return flits;
}

}  // namespace noc

#include "noc/packet.hpp"

#include "common/assert.hpp"

namespace noc {

void segment_packet_into(const Packet& p, const uint64_t* payloads,
                         int npayloads, FlitList& out) {
  NOC_EXPECTS(p.length >= 1 && p.length <= kMaxPacketFlits);
  NOC_EXPECTS(p.dest_mask.any());
  out.clear();
  for (int i = 0; i < p.length; ++i) {
    Flit f;
    f.packet_id = p.id;
    f.logical_id = p.effective_logical_id();
    f.src = p.src;
    f.branch_mask = p.dest_mask;
    f.mc = p.mc;
    f.rc = p.rc;
    f.tag = p.tag;
    f.seq = i;
    f.packet_len = p.length;
    f.gen_cycle = p.gen_cycle;
    f.payload = i < npayloads ? payloads[i] : 0;
    if (p.length == 1) {
      f.type = FlitType::HeadTail;
    } else if (i == 0) {
      f.type = FlitType::Head;
    } else if (i == p.length - 1) {
      f.type = FlitType::Tail;
    } else {
      f.type = FlitType::Body;
    }
    out.push_back(f);
  }
}

std::vector<Flit> segment_packet(const Packet& p,
                                 const std::vector<uint64_t>& payloads) {
  FlitList flits;
  segment_packet_into(p, payloads.data(), static_cast<int>(payloads.size()),
                      flits);
  return std::vector<Flit>(flits.begin(), flits.end());
}

}  // namespace noc

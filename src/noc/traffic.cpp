#include "noc/traffic.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace noc {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRequest: return "uniform-request";
    case TrafficPattern::MixedPaper: return "mixed(50b/25u/25r)";
    case TrafficPattern::BroadcastOnly: return "broadcast-only";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::NearestNeighbor: return "nearest-neighbor";
  }
  return "?";
}

std::optional<TrafficPattern> parse_traffic_pattern(std::string_view name) {
  constexpr TrafficPattern kAll[] = {
      TrafficPattern::UniformRequest, TrafficPattern::MixedPaper,
      TrafficPattern::BroadcastOnly,  TrafficPattern::Transpose,
      TrafficPattern::BitComplement,  TrafficPattern::Tornado,
      TrafficPattern::NearestNeighbor,
  };
  for (TrafficPattern p : kAll)
    if (name == traffic_pattern_name(p)) return p;
  // Short command-line aliases.
  if (name == "uniform") return TrafficPattern::UniformRequest;
  if (name == "mixed") return TrafficPattern::MixedPaper;
  if (name == "broadcast") return TrafficPattern::BroadcastOnly;
  if (name == "bitcomp") return TrafficPattern::BitComplement;
  if (name == "neighbor") return TrafficPattern::NearestNeighbor;
  return std::nullopt;
}

TrafficGenerator::TrafficGenerator(const MeshGeometry& geom,
                                   const TrafficConfig& cfg, NodeId node)
    : geom_(geom),
      cfg_(cfg),
      node_(node),
      rate_(cfg.offered_flits_per_node_cycle),
      // Identical seeds across NICs reproduce the chip's synchronized-PRBS
      // artifact; otherwise each NIC gets an independent stream.
      rng_(cfg.identical_prbs ? cfg.seed : node_rng_seed(cfg.seed, node)),
      payload_prbs_(Prbs::Poly::PRBS31,
                    cfg.identical_prbs
                        ? static_cast<uint32_t>(cfg.seed | 1)
                        : node_prbs_seed(cfg.seed, node)) {
  NOC_EXPECTS(cfg.offered_flits_per_node_cycle >= 0.0);
}

double TrafficGenerator::avg_flits_per_packet() const {
  switch (cfg_.pattern) {
    case TrafficPattern::MixedPaper:
      return cfg_.frac_broadcast_request * kRequestPacketLen +
             cfg_.frac_unicast_request * kRequestPacketLen +
             cfg_.frac_unicast_response * kResponsePacketLen;
    default:
      return kRequestPacketLen;
  }
}

NodeId TrafficGenerator::pick_unicast_dest() {
  if (cfg_.identical_prbs) {
    // Keep every NIC's generator in lockstep: one draw per packet, shared
    // sequence. The chip's NICs map the PRBS destination field relative to
    // their own id, so a synchronized draw produces a permutation (every
    // node sends, no ejection hotspot) -- but the injection *cycles* and
    // packet *types* are identical chip-wide, which is what contends away
    // bypassing at low loads.
    const auto n = static_cast<NodeId>(geom_.num_nodes());
    const auto draw =
        static_cast<NodeId>(rng_.next_below(static_cast<uint64_t>(n)));
    NodeId d = (node_ + draw) % n;
    if (d == node_) d = (d + 1) % n;
    return d;
  }
  NodeId d;
  do {
    d = static_cast<NodeId>(rng_.next_below(
        static_cast<uint64_t>(geom_.num_nodes())));
  } while (d == node_);
  return d;
}

uint64_t TrafficGenerator::next_payload() { return payload_prbs_.next_bits(64); }

std::optional<Packet> TrafficGenerator::generate(Cycle now) {
  // At most one packet decision per cycle: offered loads beyond the source
  // capacity simply pin the injection process at saturation.
  const double p_packet = std::min(1.0, rate_ / avg_flits_per_packet());
  if (cfg_.identical_prbs) {
    // Fixed-interval deterministic injection, phase-aligned across all
    // NICs: the chip's identical free-running generators made every NIC
    // inject (and pick destinations) in unison, which is what contended
    // away bypassing even at low loads (paper Sec 4.1).
    inject_credit_ += p_packet;
    if (inject_credit_ < 1.0) return std::nullopt;
    inject_credit_ -= 1.0;
  } else if (!rng_.bernoulli(p_packet)) {
    return std::nullopt;
  }

  Packet pkt;
  pkt.src = node_;
  pkt.gen_cycle = now;
  pkt.id = make_packet_id(node_, next_local_id_);
  pkt.mc = MsgClass::Request;
  pkt.length = kRequestPacketLen;

  auto broadcast_mask = [&]() -> DestMask {
    DestMask m = geom_.all_nodes_mask();
    if (!cfg_.include_self_in_broadcast) m &= ~MeshGeometry::node_mask(node_);
    return m;
  };

  switch (cfg_.pattern) {
    case TrafficPattern::UniformRequest:
      pkt.dest_mask = MeshGeometry::node_mask(pick_unicast_dest());
      break;
    case TrafficPattern::BroadcastOnly:
      pkt.dest_mask = broadcast_mask();
      break;
    case TrafficPattern::MixedPaper: {
      const double u = rng_.next_double();
      if (u < cfg_.frac_broadcast_request) {
        pkt.dest_mask = broadcast_mask();
      } else if (u < cfg_.frac_broadcast_request + cfg_.frac_unicast_request) {
        pkt.dest_mask = MeshGeometry::node_mask(pick_unicast_dest());
      } else {
        pkt.dest_mask = MeshGeometry::node_mask(pick_unicast_dest());
        pkt.mc = MsgClass::Response;
        pkt.length = kResponsePacketLen;
      }
      break;
    }
    case TrafficPattern::Transpose: {
      const Coord c = geom_.coord(node_);
      const NodeId d = geom_.id(c.y, c.x);
      if (d == node_) return std::nullopt;  // diagonal nodes stay silent
      pkt.dest_mask = MeshGeometry::node_mask(d);
      break;
    }
    case TrafficPattern::BitComplement: {
      const NodeId d = (geom_.num_nodes() - 1) - node_;
      if (d == node_) return std::nullopt;
      pkt.dest_mask = MeshGeometry::node_mask(d);
      break;
    }
    case TrafficPattern::Tornado: {
      const Coord c = geom_.coord(node_);
      const int k = geom_.k();
      const int dx = (c.x + (k + 1) / 2 - 1) % k;
      if (dx == c.x) return std::nullopt;
      pkt.dest_mask = MeshGeometry::node_mask(geom_.id(dx, c.y));
      break;
    }
    case TrafficPattern::NearestNeighbor: {
      const Coord c = geom_.coord(node_);
      const int k = geom_.k();
      pkt.dest_mask = MeshGeometry::node_mask(geom_.id((c.x + 1) % k, c.y));
      break;
    }
  }
  NOC_ENSURES(pkt.dest_mask != 0);
  return pkt;
}

}  // namespace noc

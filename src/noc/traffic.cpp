#include "noc/traffic.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace noc {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRequest: return "uniform-request";
    case TrafficPattern::MixedPaper: return "mixed(50b/25u/25r)";
    case TrafficPattern::BroadcastOnly: return "broadcast-only";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::NearestNeighbor: return "nearest-neighbor";
  }
  return "?";
}

std::optional<TrafficPattern> parse_traffic_pattern(std::string_view name) {
  constexpr TrafficPattern kAll[] = {
      TrafficPattern::UniformRequest, TrafficPattern::MixedPaper,
      TrafficPattern::BroadcastOnly,  TrafficPattern::Transpose,
      TrafficPattern::BitComplement,  TrafficPattern::Tornado,
      TrafficPattern::NearestNeighbor,
  };
  for (TrafficPattern p : kAll)
    if (name == traffic_pattern_name(p)) return p;
  // Short command-line aliases.
  if (name == "uniform") return TrafficPattern::UniformRequest;
  if (name == "mixed") return TrafficPattern::MixedPaper;
  if (name == "broadcast") return TrafficPattern::BroadcastOnly;
  if (name == "bitcomp") return TrafficPattern::BitComplement;
  if (name == "neighbor") return TrafficPattern::NearestNeighbor;
  return std::nullopt;
}

TrafficGenerator::TrafficGenerator(const MeshGeometry& geom,
                                   const TrafficConfig& cfg, NodeId node)
    : geom_(geom),
      cfg_(cfg),
      node_(node),
      rate_(cfg.offered_flits_per_node_cycle),
      // Identical seeds across NICs reproduce the chip's synchronized-PRBS
      // artifact; otherwise each NIC gets an independent stream.
      rng_(cfg.identical_prbs ? cfg.seed : node_rng_seed(cfg.seed, node)),
      payload_prbs_(Prbs::Poly::PRBS31,
                    cfg.identical_prbs
                        ? static_cast<uint32_t>(cfg.seed | 1)
                        : node_prbs_seed(cfg.seed, node)) {
  NOC_EXPECTS(cfg.offered_flits_per_node_cycle >= 0.0);
}

double TrafficGenerator::avg_flits_per_packet() const {
  switch (cfg_.pattern) {
    case TrafficPattern::MixedPaper:
      return cfg_.frac_broadcast_request * kRequestPacketLen +
             cfg_.frac_unicast_request * kRequestPacketLen +
             cfg_.frac_unicast_response * kResponsePacketLen;
    default:
      return kRequestPacketLen;
  }
}

NodeId TrafficGenerator::pick_unicast_dest() {
  if (cfg_.identical_prbs) {
    // Keep every NIC's generator in lockstep: one draw per packet, shared
    // sequence. The chip's NICs map the PRBS destination field relative to
    // their own id, so a synchronized draw produces a permutation (every
    // node sends, every node receives exactly once, no ejection hotspot) --
    // but the injection *cycles* and packet *types* are identical
    // chip-wide, which is what contends away bypassing at low loads.
    const auto n = static_cast<NodeId>(geom_.num_nodes());
    if (cfg_.synced_dest_bias) {
      // Seed-faithful mapping: draws 0 and 1 both land on node+1 (2x
      // weight, permutation broken). Reachable only via the config flag.
      const auto draw =
          static_cast<NodeId>(rng_.next_below(static_cast<uint64_t>(n)));
      NodeId d = (node_ + draw) % n;
      if (d == node_) d = (d + 1) % n;
      return d;
    }
    // Draw an offset in [1, n) so every non-self destination has equal
    // weight and a synchronized draw is a true permutation.
    const auto draw = static_cast<NodeId>(
        rng_.next_below(static_cast<uint64_t>(n - 1)));
    return (node_ + 1 + draw) % n;
  }
  NodeId d;
  do {
    d = static_cast<NodeId>(rng_.next_below(
        static_cast<uint64_t>(geom_.num_nodes())));
  } while (d == node_);
  return d;
}

uint64_t TrafficGenerator::next_payload() { return payload_prbs_.next_bits(64); }

Cycle TrafficGenerator::next_fire_cycle(Cycle from) const {
  const double p_packet = std::min(1.0, rate_ / avg_flits_per_packet());
  if (p_packet <= 0.0) return kCycleNever;
  if (!cfg_.identical_prbs) return from;  // Bernoulli draws every cycle
  // Replay the per-cycle accumulation with the exact float operations the
  // generate() path performs, so the predicted fire cycle matches the
  // every-cycle path bit for bit. Capped so a denormal-small rate cannot
  // spin; waking early is always safe (the NIC just re-sleeps).
  double credit = inject_credit_;
  Cycle t = last_gen_cycle_;
  const Cycle cap = last_gen_cycle_ + (Cycle{1} << 20);
  do {
    ++t;
    credit += p_packet;
  } while (credit < 1.0 && t < cap);
  return std::max(from, t);
}

std::optional<Packet> TrafficGenerator::generate(Cycle now) {
  NOC_EXPECTS(now > last_gen_cycle_);
  const Cycle skipped = now - last_gen_cycle_ - 1;
  last_gen_cycle_ = now;
  // At most one packet decision per cycle: offered loads beyond the source
  // capacity simply pin the injection process at saturation. Cycles a gated
  // NIC slept through were governed by the rate in force back then
  // (set_rate stashes it), not by a rate changed this cycle boundary.
  const double p_now = std::min(1.0, rate_ / avg_flits_per_packet());
  const double p_slept =
      replay_rate_ < 0.0
          ? p_now
          : std::min(1.0, replay_rate_ / avg_flits_per_packet());
  replay_rate_ = -1.0;
  if (cfg_.identical_prbs) {
    // Fixed-interval deterministic injection, phase-aligned across all
    // NICs: the chip's identical free-running generators made every NIC
    // inject (and pick destinations) in unison, which is what contended
    // away bypassing even at low loads (paper Sec 4.1). Cycles a gated NIC
    // slept through are replayed one accumulator step at a time -- the
    // same float op sequence as the every-cycle path -- and cannot fire:
    // next_fire_cycle (computed at the slept rate) promised silence.
    for (Cycle s = 0; s < skipped; ++s) {
      inject_credit_ += p_slept;
      NOC_ASSERT(inject_credit_ < 1.0);
    }
    if (p_now <= 0.0) return std::nullopt;
    inject_credit_ += p_now;
    if (inject_credit_ < 1.0) return std::nullopt;
    inject_credit_ -= 1.0;
  } else if (p_now <= 0.0) {
    // Rate 0 consumes nothing (no draw): a gated NIC may sleep through it
    // and the ungated path stays stream-identical by taking the same
    // early exit.
    return std::nullopt;
  } else if (!rng_.bernoulli(p_now)) {
    return std::nullopt;
  }

  Packet pkt;
  pkt.src = node_;
  pkt.gen_cycle = now;
  pkt.id = make_packet_id(node_, next_local_id_);
  pkt.mc = MsgClass::Request;
  pkt.length = kRequestPacketLen;

  auto broadcast_mask = [&]() -> DestMask {
    DestMask m = geom_.all_nodes_mask();
    if (!cfg_.include_self_in_broadcast) m.clear(node_);
    return m;
  };

  switch (cfg_.pattern) {
    case TrafficPattern::UniformRequest:
      pkt.dest_mask = MeshGeometry::node_mask(pick_unicast_dest());
      break;
    case TrafficPattern::BroadcastOnly:
      pkt.dest_mask = broadcast_mask();
      break;
    case TrafficPattern::MixedPaper: {
      const double u = rng_.next_double();
      if (u < cfg_.frac_broadcast_request) {
        pkt.dest_mask = broadcast_mask();
      } else if (u < cfg_.frac_broadcast_request + cfg_.frac_unicast_request) {
        pkt.dest_mask = MeshGeometry::node_mask(pick_unicast_dest());
      } else {
        pkt.dest_mask = MeshGeometry::node_mask(pick_unicast_dest());
        pkt.mc = MsgClass::Response;
        pkt.length = kResponsePacketLen;
      }
      break;
    }
    case TrafficPattern::Transpose: {
      const Coord c = geom_.coord(node_);
      const NodeId d = geom_.id(c.y, c.x);
      if (d == node_) return std::nullopt;  // diagonal nodes stay silent
      pkt.dest_mask = MeshGeometry::node_mask(d);
      break;
    }
    case TrafficPattern::BitComplement: {
      const NodeId d = (geom_.num_nodes() - 1) - node_;
      if (d == node_) return std::nullopt;
      pkt.dest_mask = MeshGeometry::node_mask(d);
      break;
    }
    case TrafficPattern::Tornado: {
      const Coord c = geom_.coord(node_);
      const int k = geom_.k();
      const int dx = (c.x + (k + 1) / 2 - 1) % k;
      if (dx == c.x) return std::nullopt;
      pkt.dest_mask = MeshGeometry::node_mask(geom_.id(dx, c.y));
      break;
    }
    case TrafficPattern::NearestNeighbor: {
      const Coord c = geom_.coord(node_);
      const int k = geom_.k();
      if (k < 2) return std::nullopt;  // no neighbor to send to
      // Reflect at the east edge: the mesh has no wraparound link, so the
      // old (c.x+1)%k mapping sent the edge column a silent (k-1)-hop
      // packet across the whole row. With reflection every node still
      // injects 1-hop traffic, so the offered per-node rate is unchanged
      // (unlike Transpose/BitComplement, whose diagonal/fixed-point nodes
      // stay silent).
      const int dx = c.x + 1 < k ? c.x + 1 : c.x - 1;
      pkt.dest_mask = MeshGeometry::node_mask(geom_.id(dx, c.y));
      break;
    }
  }
  NOC_ENSURES(pkt.dest_mask.any());
  return pkt;
}

}  // namespace noc

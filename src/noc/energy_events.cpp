#include "noc/energy_events.hpp"

namespace noc {

EnergyCounters& EnergyCounters::operator+=(const EnergyCounters& o) {
  xbar_traversals += o.xbar_traversals;
  link_traversals += o.link_traversals;
  nic_link_traversals += o.nic_link_traversals;
  buffer_writes += o.buffer_writes;
  buffer_reads += o.buffer_reads;
  sa1_arbitrations += o.sa1_arbitrations;
  sa2_arbitrations += o.sa2_arbitrations;
  vc_allocations += o.vc_allocations;
  lookaheads_sent += o.lookaheads_sent;
  cycles += o.cycles;
  vc_active_cycles += o.vc_active_cycles;
  bypasses += o.bypasses;
  partial_bypasses += o.partial_bypasses;
  buffered_hops += o.buffered_hops;
  return *this;
}

EnergyCounters EnergyCounters::delta_since(
    const EnergyCounters& baseline) const {
  EnergyCounters d = *this;
  d.xbar_traversals -= baseline.xbar_traversals;
  d.link_traversals -= baseline.link_traversals;
  d.nic_link_traversals -= baseline.nic_link_traversals;
  d.buffer_writes -= baseline.buffer_writes;
  d.buffer_reads -= baseline.buffer_reads;
  d.sa1_arbitrations -= baseline.sa1_arbitrations;
  d.sa2_arbitrations -= baseline.sa2_arbitrations;
  d.vc_allocations -= baseline.vc_allocations;
  d.lookaheads_sent -= baseline.lookaheads_sent;
  d.cycles -= baseline.cycles;
  d.vc_active_cycles -= baseline.vc_active_cycles;
  d.bypasses -= baseline.bypasses;
  d.partial_bypasses -= baseline.partial_bypasses;
  d.buffered_hops -= baseline.buffered_hops;
  return d;
}

}  // namespace noc

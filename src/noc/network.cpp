#include "noc/network.hpp"

namespace noc {

NetworkConfig NetworkConfig::proposed(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::Proposed;
  c.router.multicast = true;
  return c;
}

NetworkConfig NetworkConfig::lowswing_multicast(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::ThreeStage;
  c.router.multicast = true;
  return c;
}

NetworkConfig NetworkConfig::baseline_3stage(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::ThreeStage;
  c.router.multicast = false;
  c.router.actionable_sa1_requests = false;  // textbook Fig-1 allocator
  return c;
}

NetworkConfig NetworkConfig::baseline_4stage(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::FourStage;
  c.router.multicast = false;
  c.router.actionable_sa1_requests = false;  // textbook Fig-1 allocator
  return c;
}

template <typename T>
Channel<T>* Network::make_channel(
    std::vector<std::unique_ptr<Channel<T>>>& pool, int latency) {
  pool.push_back(std::make_unique<Channel<T>>(latency));
  return pool.back().get();
}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg), geom_(cfg.k), metrics_(geom_) {
  const int n = geom_.num_nodes();
  routers_.reserve(static_cast<size_t>(n));
  sources_.reserve(static_cast<size_t>(n));
  nics_.reserve(static_cast<size_t>(n));
  // Resolve a file-backed trace once for all nodes.
  std::shared_ptr<const Trace> trace;
  if (cfg.workload.kind == WorkloadKind::Trace) {
    trace = resolve_trace(cfg.workload.trace);
    NOC_EXPECTS(trace != nullptr);
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, geom_, cfg.router,
                                                &energy_, &metrics_));
    sources_.push_back(
        make_traffic_source(geom_, cfg.traffic, cfg.workload, node, trace));
    nics_.push_back(std::make_unique<Nic>(node, geom_, cfg.router,
                                          sources_.back().get(), &energy_,
                                          &metrics_));
  }

  const bool bypass = cfg.router.has_bypass();
  const bool gated = cfg.activity_gating;

  // Router-to-router wiring. Each undirected edge gets one channel of each
  // kind per direction. We visit each edge once (East and North neighbors).
  // With gating, each channel learns which component its arrivals must wake.
  auto router_wake = [&](NodeId r) {
    return gated ? WakeHook{&router_awake_, r} : WakeHook{};
  };
  auto wire_edge = [&](NodeId a, PortDir a_out, NodeId b) {
    const PortDir b_out = opposite(a_out);
    auto* f_ab = make_channel(flit_channels_, 1);
    auto* f_ba = make_channel(flit_channels_, 1);
    auto* c_ab = make_channel(credit_channels_, 1);  // a's inport -> b's outport
    auto* c_ba = make_channel(credit_channels_, 1);  // b's inport -> a's outport
    Channel<Lookahead>* l_ab = bypass ? make_channel(la_channels_, 1) : nullptr;
    Channel<Lookahead>* l_ba = bypass ? make_channel(la_channels_, 1) : nullptr;
    f_ab->set_wake_target(router_wake(b));
    f_ba->set_wake_target(router_wake(a));
    c_ab->set_wake_target(router_wake(b));
    c_ba->set_wake_target(router_wake(a));
    if (l_ab != nullptr) l_ab->set_wake_target(router_wake(b));
    if (l_ba != nullptr) l_ba->set_wake_target(router_wake(a));

    Router::PortChannels pa;  // router a, port a_out
    pa.flit_out = f_ab;
    pa.flit_in = f_ba;
    pa.credit_in = c_ba;   // credits from b for flits a sent
    pa.credit_out = c_ab;  // credits a sends for flits received from b
    pa.la_out = l_ab;
    pa.la_in = l_ba;
    routers_[static_cast<size_t>(a)]->connect(a_out, pa);

    Router::PortChannels pb;  // router b, port b_out
    pb.flit_out = f_ba;
    pb.flit_in = f_ab;
    pb.credit_in = c_ab;
    pb.credit_out = c_ba;
    pb.la_out = l_ba;
    pb.la_in = l_ab;
    routers_[static_cast<size_t>(b)]->connect(b_out, pb);
  };

  for (int y = 0; y < cfg.k; ++y) {
    for (int x = 0; x < cfg.k; ++x) {
      const NodeId a = geom_.id(x, y);
      if (x + 1 < cfg.k) wire_edge(a, PortDir::East, geom_.id(x + 1, y));
      if (y + 1 < cfg.k) wire_edge(a, PortDir::North, geom_.id(x, y + 1));
    }
  }

  // NIC wiring through each router's Local port.
  for (NodeId node = 0; node < n; ++node) {
    auto* f_nr = make_channel(flit_channels_, 1);   // NIC -> router
    auto* f_rn = make_channel(flit_channels_, 1);   // router -> NIC
    auto* c_rn = make_channel(credit_channels_, 1); // router local-in -> NIC
    auto* c_nr = make_channel(credit_channels_, 1); // NIC rx -> router local-out
    Channel<Lookahead>* l_nr = bypass ? make_channel(la_channels_, 0) : nullptr;
    if (gated) {
      f_nr->set_wake_target(router_wake(node));
      f_rn->set_wake_target({&eject_awake_, node});
      c_rn->set_wake_target({&inject_awake_, node});
      c_nr->set_wake_target(router_wake(node));
      // Latency 0: the wake fires at send time, during the NIC injection
      // phase, so the router sees the lookahead the same cycle.
      if (l_nr != nullptr) l_nr->set_wake_target(router_wake(node));
    }

    Router::PortChannels pl;
    pl.flit_in = f_nr;
    pl.flit_out = f_rn;
    pl.credit_in = c_nr;
    pl.credit_out = c_rn;
    pl.la_in = l_nr;
    pl.la_out = nullptr;  // no lookahead toward the NIC
    routers_[static_cast<size_t>(node)]->connect(PortDir::Local, pl);

    Nic::Channels nc;
    nc.flit_to_router = f_nr;
    nc.la_to_router = l_nr;
    nc.credit_from_router = c_rn;
    nc.flit_from_router = f_rn;
    nc.credit_to_router = c_nr;
    nics_[static_cast<size_t>(node)]->connect(nc);
  }

  setup_activity();
}

void Network::setup_activity() {
  const int n = geom_.num_nodes();
  NOC_EXPECTS(n <= DestMask::kCapacity);  // one awake bit per node
  const bool gated = cfg_.activity_gating;

  // Contiguous channel ids per pool so the active-list sweep can recover
  // the typed pointer from the id alone. The in-flight counter is installed
  // unconditionally: quiescent() relies on it in both modes.
  const int total = static_cast<int>(flit_channels_.size() +
                                     credit_channels_.size() +
                                     la_channels_.size());
  chan_active_.init(total);
  ActiveList* reg = gated ? &chan_active_ : nullptr;
  int id = 0;
  for (auto& ch : flit_channels_) ch->set_activity(reg, id++, &chan_items_);
  credit_id_base_ = id;
  for (auto& ch : credit_channels_) ch->set_activity(reg, id++, &chan_items_);
  la_id_base_ = id;
  for (auto& ch : la_channels_) ch->set_activity(reg, id++, &chan_items_);

  inject_wake_at_.assign(static_cast<size_t>(n), kCycleNever);
  // Everything starts awake; idle components fall asleep after their first
  // tick, which keeps cycle 0 identical to the ungated phase walk.
  router_awake_ = inject_awake_ = eject_awake_ = DestMask::first_n(n);

  if (gated) {
    for (NodeId node = 0; node < n; ++node) {
      const WakeHook inject{&inject_awake_, node};
      nics_[static_cast<size_t>(node)]->set_inject_wake_hook(inject);
      sources_[static_cast<size_t>(node)]->set_wake_hook(inject);
    }
  }
}

void Network::step(Cycle now) {
  if (cfg_.activity_gating)
    step_gated(now);
  else
    step_full(now);
  ++energy_.cycles;
}

void Network::step_full(Cycle now) {
  for (auto& ch : flit_channels_) ch->begin_cycle(now);
  for (auto& ch : credit_channels_) ch->begin_cycle(now);
  for (auto& ch : la_channels_) ch->begin_cycle(now);
  for (auto& nic : nics_) nic->tick_inject(now);
  for (auto& r : routers_) r->tick(now);
  for (auto& nic : nics_) nic->tick_eject(now);
}

void Network::step_gated(Cycle now) {
  // 0. Timed wake-ups: sources that promised a future fire cycle.
  if (next_timed_wake_ <= now) {
    next_timed_wake_ = kCycleNever;
    const NodeId n = geom_.num_nodes();
    for (NodeId i = 0; i < n; ++i) {
      Cycle& at = inject_wake_at_[static_cast<size_t>(i)];
      if (at <= now) {
        inject_awake_.set(i);
        at = kCycleNever;
      } else if (at < next_timed_wake_) {
        next_timed_wake_ = at;
      }
    }
  }

  // 1. Channels holding messages deliver; newly visible arrivals wake their
  //    receivers (this runs before every component phase, so same-cycle
  //    consumption is guaranteed). Fully drained channels drop off the list
  //    -- their slots are all empty, so skipping begin_cycle is safe (see
  //    Channel's activity contract). Per-entry work is order-independent:
  //    begin_cycle touches only the channel itself and wake bits are ORed.
  chan_active_.sweep([&](int id) {
    if (id < credit_id_base_) {
      auto& ch = *flit_channels_[static_cast<size_t>(id)];
      ch.begin_cycle(now);
      return ch.stored() > 0;
    }
    if (id < la_id_base_) {
      auto& ch = *credit_channels_[static_cast<size_t>(id - credit_id_base_)];
      ch.begin_cycle(now);
      return ch.stored() > 0;
    }
    auto& ch = *la_channels_[static_cast<size_t>(id - la_id_base_)];
    ch.begin_cycle(now);
    return ch.stored() > 0;
  });

  // 2. NIC injection halves, ascending node id (the phase-walk order, so
  //    shared-accumulator metrics see identical floating-point ordering).
  //    A NIC stays awake while it holds queued work or its source may fire
  //    next cycle; otherwise it parks, with a timed wake if the source
  //    promised a future fire.
  const DestMask inject_pass = inject_awake_;
  inject_pass.for_each([&](int node) {
    const auto i = static_cast<size_t>(node);
    nics_[i]->tick_inject(now);
    if (nics_[i]->inject_busy()) return;
    const Cycle wake = sources_[i]->next_fire_cycle(now + 1);
    if (wake <= now + 1) return;
    inject_awake_.clear(node);
    // Overwrite unconditionally: an early hook wake may have left a stale
    // earlier entry that would otherwise fire a pointless timed wake.
    inject_wake_at_[i] = wake;
    if (wake < next_timed_wake_) next_timed_wake_ = wake;
  });

  // 3. Routers. Skipped ticks are exact no-ops for idle routers (no
  //    arbiter state advances without requests; the lookahead rotation is
  //    cycle-derived), so sleeping preserves bit-identical metrics.
  const DestMask router_pass = router_awake_;
  router_pass.for_each([&](int node) {
    const auto i = static_cast<size_t>(node);
    routers_[i]->tick(now);
    if (routers_[i]->idle()) router_awake_.clear(node);
  });

  // 4. NIC ejection halves.
  const DestMask eject_pass = eject_awake_;
  eject_pass.for_each([&](int node) {
    const auto i = static_cast<size_t>(node);
    nics_[i]->tick_eject(now);
    if (!nics_[i]->eject_busy()) eject_awake_.clear(node);
  });
}

void Network::record_trace(Trace* out) {
  for (auto& nic : nics_) nic->set_trace_recorder(out);
}

void Network::begin_measurement_window(Cycle now) {
  metrics_.begin_window(now);
  for (auto& src : sources_) src->begin_window(now);
}

void Network::end_measurement_window(Cycle now) {
  metrics_.end_window(now);
  for (auto& src : sources_) src->end_window(now);
}

bool Network::quiescent() const {
  if (metrics_.open_packets() != 0) return false;
  // The aggregate counter covers flit, credit AND lookahead channels: the
  // old flit-only scan let a drain phase end with a credit still on a wire,
  // corrupting back-to-back measurement windows.
  if (chan_items_ != 0) return false;
  for (const auto& r : routers_)
    if (!r->idle()) return false;
  for (const auto& nic : nics_)
    if (!nic->idle()) return false;
  for (const auto& src : sources_)
    if (!src->idle()) return false;
  return true;
}

}  // namespace noc

#include "noc/network.hpp"

#include "sim/thread_pool.hpp"

namespace noc {

NetworkConfig NetworkConfig::proposed(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::Proposed;
  c.router.multicast = true;
  return c;
}

NetworkConfig NetworkConfig::lowswing_multicast(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::ThreeStage;
  c.router.multicast = true;
  return c;
}

NetworkConfig NetworkConfig::baseline_3stage(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::ThreeStage;
  c.router.multicast = false;
  c.router.actionable_sa1_requests = false;  // textbook Fig-1 allocator
  return c;
}

NetworkConfig NetworkConfig::baseline_4stage(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::FourStage;
  c.router.multicast = false;
  c.router.actionable_sa1_requests = false;  // textbook Fig-1 allocator
  return c;
}

template <typename T>
Channel<T>* Network::make_channel(std::vector<Channel<T>>& pool, int latency) {
  // The constructor reserved the exact pool size up front; growing past it
  // would reallocate and dangle every pointer already wired in.
  NOC_ASSERT(pool.size() < pool.capacity());
  pool.emplace_back(latency);
  return &pool.back();
}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg),
      geom_(cfg.k, cfg.ky > 0 ? cfg.ky : cfg.k),
      metrics_(geom_) {
  const int n = geom_.num_nodes();
  // Fault schedule first: routers/NICs built below capture a pointer to
  // this state when the plan is non-empty (and none at all otherwise, so
  // pristine networks keep the fault-free fast path, bit for bit).
  fault_state_.init(geom_, cfg.fault);

  // Column-span partition for intra-network parallel stepping. The span
  // COUNT is fixed by the config (clamped to one span per column), so
  // results depend only on step_threads, never on how many workers the
  // budget actually grants.
  const int spans = SpanPartition::clamp_spans(geom_, cfg.step_threads);
  if (spans > 1) {
    part_ = SpanPartition(geom_, spans);
    spans_.resize(static_cast<size_t>(spans));
    for (int s = 0; s < spans; ++s) {
      StepSpan& sp = spans_[static_cast<size_t>(s)];
      sp.nodes = part_.nodes_of(s);
      sp.metrics = std::make_unique<Metrics>(geom_);
      sp.metrics->set_shared(&metrics_);
      // Per-cycle worst case per node: one packet submission plus the local
      // flit deliveries of a NIC-duplicated broadcast in the inject phase,
      // one drained flit in the eject phase. 8 covers both with slack. A
      // faulted network additionally retires router-phase drop events -- up
      // to one per input VC per node per cycle.
      sp.metrics->reserve_capture(
          sp.nodes.size() *
          (cfg.fault.empty() ? 8 : 8 + kNumPorts * kMaxTotalVcs));
    }
  }
  // Telemetry sink (docs/OBSERVABILITY.md). Packet-lifecycle tracing
  // appends to one shared event buffer from router/NIC hooks, which run on
  // workers under parallel stepping -- so tracing is disabled there. The
  // other probes stay on: stall rows are per-router (one worker each),
  // histograms ride the capture-replay path, and the time series samples on
  // the main thread after the merge.
  if (cfg.telemetry.enabled) {
    telemetry_ = std::make_unique<Telemetry>(n, cfg.telemetry);
    if (!spans_.empty()) telemetry_->disable_tracing();
    metrics_.set_telemetry(telemetry_.get());
  }

  // Each component records events into its owning span's shards; in serial
  // mode everything points at the globals, exactly as before.
  auto energy_for = [&](NodeId node) {
    return spans_.empty() ? &energy_
                          : &spans_[static_cast<size_t>(
                                part_.span_of_node(node))].energy;
  };
  auto metrics_for = [&](NodeId node) {
    return spans_.empty()
               ? &metrics_
               : spans_[static_cast<size_t>(part_.span_of_node(node))]
                     .metrics.get();
  };

  routers_.reserve(static_cast<size_t>(n));
  sources_.reserve(static_cast<size_t>(n));
  nics_.reserve(static_cast<size_t>(n));
  // Resolve a file-backed trace once for all nodes.
  std::shared_ptr<const Trace> trace;
  if (cfg.workload.kind == WorkloadKind::Trace) {
    trace = resolve_trace(cfg.workload.trace);
    NOC_EXPECTS(trace != nullptr);
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, geom_, cfg.router,
                                                energy_for(node),
                                                metrics_for(node)));
    sources_.push_back(
        make_traffic_source(geom_, cfg.traffic, cfg.workload, node, trace));
    nics_.push_back(std::make_unique<Nic>(node, geom_, cfg.router,
                                          sources_.back().get(),
                                          energy_for(node),
                                          metrics_for(node)));
    if (fault_state_.enabled()) {
      routers_.back()->attach_faults(&fault_state_);
      nics_.back()->attach_faults(&fault_state_);
    }
    if (telemetry_ != nullptr) {
      routers_.back()->attach_telemetry(telemetry_.get());
      nics_.back()->attach_telemetry(telemetry_.get());
    }
  }

  const bool bypass = cfg.router.has_bypass();
  const bool gated = cfg.activity_gating;

  // Exact pool sizes (pointer stability: see make_channel). Per undirected
  // mesh edge: one flit/credit/lookahead channel per direction; per node:
  // NIC flit + credit channels both ways, lookahead toward the router only.
  const int n_edges =
      (geom_.kx() - 1) * geom_.ky() + geom_.kx() * (geom_.ky() - 1);
  flit_channels_.reserve(static_cast<size_t>(2 * n_edges + 2 * n));
  credit_channels_.reserve(static_cast<size_t>(2 * n_edges + 2 * n));
  if (bypass) la_channels_.reserve(static_cast<size_t>(2 * n_edges + n));

  // Router-to-router wiring. Each undirected edge gets one channel of each
  // kind per direction. We visit each edge once (East and North neighbors).
  // With gating, each channel learns which component its arrivals must wake;
  // wake bits live in the receiver's owning span so every mask write during
  // a parallel step stays worker-local.
  auto router_mask = [&](NodeId r) {
    return spans_.empty()
               ? &router_awake_
               : &spans_[static_cast<size_t>(part_.span_of_node(r))]
                      .router_awake;
  };
  auto router_wake = [&](NodeId r) {
    return gated ? WakeHook{router_mask(r), r} : WakeHook{};
  };
  // Per-port wake refinement (docs/PERF.md Layer 5): a channel toward
  // router r arrives at exactly one input port, so its hook also ORs that
  // port's bit into r's wake word -- the ticking router then sweeps only
  // ports with work. Channels fire during the receiver-owned channel sweep
  // (or the same node's inject phase for the latency-0 NIC lookahead), both
  // before the router pass, so the bits are complete when r ticks; in
  // parallel mode the channel and the word share r's span, so the raw-word
  // OR stays worker-local.
  auto router_port_wake = [&](NodeId r, PortDir in_at_r) {
    WakeHook h = router_wake(r);
    if (gated && cfg.router.port_gating) {
      h.port_word = routers_[static_cast<size_t>(r)]->arm_port_wake();
      h.port_bits = uint64_t{1} << port_index(in_at_r);
    }
    return h;
  };
  auto wire_edge = [&](NodeId a, PortDir a_out, NodeId b) {
    const PortDir b_out = opposite(a_out);
    auto* f_ab = make_channel(flit_channels_, 1);
    auto* f_ba = make_channel(flit_channels_, 1);
    auto* c_ab = make_channel(credit_channels_, 1);  // a's inport -> b's outport
    auto* c_ba = make_channel(credit_channels_, 1);  // b's inport -> a's outport
    Channel<Lookahead>* l_ab = bypass ? make_channel(la_channels_, 1) : nullptr;
    Channel<Lookahead>* l_ba = bypass ? make_channel(la_channels_, 1) : nullptr;
    flit_ep_.push_back({a, b});
    flit_ep_.push_back({b, a});
    credit_ep_.push_back({a, b});
    credit_ep_.push_back({b, a});
    if (bypass) {
      la_ep_.push_back({a, b});
      la_ep_.push_back({b, a});
    }
    f_ab->set_wake_target(router_port_wake(b, b_out));
    f_ba->set_wake_target(router_port_wake(a, a_out));
    c_ab->set_wake_target(router_port_wake(b, b_out));
    c_ba->set_wake_target(router_port_wake(a, a_out));
    if (l_ab != nullptr) l_ab->set_wake_target(router_port_wake(b, b_out));
    if (l_ba != nullptr) l_ba->set_wake_target(router_port_wake(a, a_out));

    Router::PortChannels pa;  // router a, port a_out
    pa.flit_out = f_ab;
    pa.flit_in = f_ba;
    pa.credit_in = c_ba;   // credits from b for flits a sent
    pa.credit_out = c_ab;  // credits a sends for flits received from b
    pa.la_out = l_ab;
    pa.la_in = l_ba;
    routers_[static_cast<size_t>(a)]->connect(a_out, pa);

    Router::PortChannels pb;  // router b, port b_out
    pb.flit_out = f_ba;
    pb.flit_in = f_ab;
    pb.credit_in = c_ab;
    pb.credit_out = c_ba;
    pb.la_out = l_ba;
    pb.la_in = l_ab;
    routers_[static_cast<size_t>(b)]->connect(b_out, pb);
  };

  for (int y = 0; y < geom_.ky(); ++y) {
    for (int x = 0; x < geom_.kx(); ++x) {
      const NodeId a = geom_.id(x, y);
      if (x + 1 < geom_.kx()) wire_edge(a, PortDir::East, geom_.id(x + 1, y));
      if (y + 1 < geom_.ky()) wire_edge(a, PortDir::North, geom_.id(x, y + 1));
    }
  }

  // NIC wiring through each router's Local port. All five channels stay
  // inside the node and therefore inside its span.
  auto inject_mask = [&](NodeId node) {
    return spans_.empty()
               ? &inject_awake_
               : &spans_[static_cast<size_t>(part_.span_of_node(node))]
                      .inject_awake;
  };
  auto eject_mask = [&](NodeId node) {
    return spans_.empty()
               ? &eject_awake_
               : &spans_[static_cast<size_t>(part_.span_of_node(node))]
                      .eject_awake;
  };
  for (NodeId node = 0; node < n; ++node) {
    auto* f_nr = make_channel(flit_channels_, 1);   // NIC -> router
    auto* f_rn = make_channel(flit_channels_, 1);   // router -> NIC
    auto* c_rn = make_channel(credit_channels_, 1); // router local-in -> NIC
    auto* c_nr = make_channel(credit_channels_, 1); // NIC rx -> router local-out
    Channel<Lookahead>* l_nr = bypass ? make_channel(la_channels_, 0) : nullptr;
    flit_ep_.push_back({node, node});
    flit_ep_.push_back({node, node});
    credit_ep_.push_back({node, node});
    credit_ep_.push_back({node, node});
    if (bypass) la_ep_.push_back({node, node});
    if (gated) {
      f_nr->set_wake_target(router_port_wake(node, PortDir::Local));
      f_rn->set_wake_target({eject_mask(node), node});
      c_rn->set_wake_target({inject_mask(node), node});
      c_nr->set_wake_target(router_port_wake(node, PortDir::Local));
      // Latency 0: the wake fires at send time, during the NIC injection
      // phase, so the router sees the lookahead the same cycle.
      if (l_nr != nullptr)
        l_nr->set_wake_target(router_port_wake(node, PortDir::Local));
    }

    Router::PortChannels pl;
    pl.flit_in = f_nr;
    pl.flit_out = f_rn;
    pl.credit_in = c_nr;
    pl.credit_out = c_rn;
    pl.la_in = l_nr;
    pl.la_out = nullptr;  // no lookahead toward the NIC
    routers_[static_cast<size_t>(node)]->connect(PortDir::Local, pl);

    Nic::Channels nc;
    nc.flit_to_router = f_nr;
    nc.la_to_router = l_nr;
    nc.credit_from_router = c_rn;
    nc.flit_from_router = f_rn;
    nc.credit_to_router = c_nr;
    nics_[static_cast<size_t>(node)]->connect(nc);
  }

  setup_activity();

  if (!spans_.empty()) {
    // Lease extra workers from the shared budget for this network's
    // lifetime. A lease of 0 (budget exhausted, nested parallelism) leaves
    // a one-worker team: the spans are then stepped inline, still through
    // the sharded datapath, so results stay identical.
    budget_lease_ =
        thread_budget::acquire(static_cast<int>(spans_.size()) - 1);
    team_ = std::make_unique<StepTeam>(budget_lease_ + 1);
  }
}

Network::~Network() {
  team_.reset();
  thread_budget::release(budget_lease_);
}

void Network::setup_activity() {
  const int n = geom_.num_nodes();
  NOC_EXPECTS(n <= DestMask::kCapacity);  // one awake bit per node
  const bool gated = cfg_.activity_gating;
  const bool parallel = !spans_.empty();

  // Contiguous channel ids per pool so the active-list sweep can recover
  // the typed pointer from the id alone. The in-flight counter is installed
  // unconditionally: quiescent() relies on it in both modes.
  //
  // In parallel mode every channel is owned by its RECEIVER's span: it
  // registers on that span's active list and items counter, and a channel
  // whose sender lives in a different span is the boundary case -- it
  // becomes deferred (double-buffered sends committed by the owner after
  // the compute barrier).
  const int total = num_channels();
  chan_active_.init(total);
  for (auto& sp : spans_) sp.active.init(total);

  auto install = [&](auto& ch, const std::pair<NodeId, NodeId>& ep, int id,
                     auto cross_of) {
    if (!parallel) {
      ch.set_activity(gated ? &chan_active_ : nullptr, id, &chan_items_);
      return;
    }
    StepSpan& sp =
        spans_[static_cast<size_t>(part_.span_of_node(ep.second))];
    ch.set_activity(gated ? &sp.active : nullptr, id, &sp.items);
    sp.channels.push_back(id);
    if (part_.crosses(ep.first, ep.second)) {
      ch.set_deferred(true);
      cross_of(sp).push_back(&ch);
    }
  };
  int id = 0;
  for (size_t i = 0; i < flit_channels_.size(); ++i, ++id)
    install(flit_channels_[i], flit_ep_[i], id,
            [](StepSpan& sp) -> auto& { return sp.cross_flit; });
  credit_id_base_ = id;
  for (size_t i = 0; i < credit_channels_.size(); ++i, ++id)
    install(credit_channels_[i], credit_ep_[i], id,
            [](StepSpan& sp) -> auto& { return sp.cross_credit; });
  la_id_base_ = id;
  for (size_t i = 0; i < la_channels_.size(); ++i, ++id)
    install(la_channels_[i], la_ep_[i], id,
            [](StepSpan& sp) -> auto& { return sp.cross_la; });

  inject_wake_at_.assign(static_cast<size_t>(n), kCycleNever);
  // Everything starts awake; idle components fall asleep after their first
  // tick, which keeps cycle 0 identical to the ungated phase walk.
  router_awake_ = inject_awake_ = eject_awake_ = DestMask::first_n(n);
  for (auto& sp : spans_) {
    DestMask m;
    for (NodeId node : sp.nodes) m.set(node);
    sp.router_awake = sp.inject_awake = sp.eject_awake = m;
  }

  if (gated) {
    for (NodeId node = 0; node < n; ++node) {
      DestMask* mask =
          parallel ? &spans_[static_cast<size_t>(part_.span_of_node(node))]
                          .inject_awake
                   : &inject_awake_;
      const WakeHook inject{mask, node};
      nics_[static_cast<size_t>(node)]->set_inject_wake_hook(inject);
      sources_[static_cast<size_t>(node)]->set_wake_hook(inject);
    }
  }
}

void Network::step(Cycle now) {
  apply_faults(now);
  if (!spans_.empty())
    step_parallel(now);
  else if (cfg_.activity_gating)
    step_gated(now);
  else
    step_full(now);
  if (telemetry_ != nullptr && telemetry_->want_sample(now))
    sample_telemetry(now);
  ++energy_.cycles;
}

void Network::sample_telemetry(Cycle now) {
  TimeSample s;
  s.cycle = now;
  s.injected_flits = energy_.nic_link_traversals;
  s.delivered_flits = metrics_.lifetime_flits_received();
  s.open_packets = metrics_.open_packets();
  s.fault_epoch = fault_state_.epoch();
  // Awake-router count is a SCHEDULING observable -- how many routers the
  // gated sweep would visit -- so it legitimately differs across stepping
  // modes (ungated runs report every router awake) and is excluded from the
  // determinism comparisons in tests/test_gating_equivalence.cpp.
  if (!cfg_.activity_gating) {
    s.awake_routers = geom_.num_nodes();
  } else if (spans_.empty()) {
    s.awake_routers = router_awake_.count();
  } else {
    for (const auto& sp : spans_) s.awake_routers += sp.router_awake.count();
  }
  telemetry_->push_sample(s);
}

void Network::apply_faults(Cycle now) {
  // One compare on the pristine/idle path (next event kCycleNever). Runs
  // on the main thread before gating decisions and the span fan-out, so
  // every stepping mode sees identical fault state for the whole cycle.
  if (fault_state_.next_event_at() > now) return;
  const uint64_t epoch = fault_state_.epoch();
  const size_t applied_before = fault_state_.cursor();
  fault_state_.advance(now);
  if (telemetry_ != nullptr) {
    for (size_t i = applied_before; i < fault_state_.cursor(); ++i) {
      const FaultEvent& e = fault_state_.event(i);
      telemetry_->record_fault(now, e.kind, e.a, e.b);
    }
  }
  if (fault_state_.epoch() != epoch) {
    // The surviving topology changed: re-validate open escape-class
    // packets everywhere (routers convert stranded branches to drops).
    // Wedged/busy routers are never asleep (busy VCs keep them awake), so
    // no wake edges are needed.
    for (auto& r : routers_) r->on_topology_change(now);
  }
}

void Network::step_full(Cycle now) {
  for (auto& ch : flit_channels_) ch.begin_cycle(now);
  for (auto& ch : credit_channels_) ch.begin_cycle(now);
  for (auto& ch : la_channels_) ch.begin_cycle(now);
  for (auto& nic : nics_) nic->tick_inject(now);
  for (auto& r : routers_) r->tick(now);
  for (auto& nic : nics_) nic->tick_eject(now);
}

void Network::step_gated(Cycle now) {
  // 0. Timed wake-ups: sources that promised a future fire cycle.
  if (next_timed_wake_ <= now) {
    next_timed_wake_ = kCycleNever;
    const NodeId n = geom_.num_nodes();
    for (NodeId i = 0; i < n; ++i) {
      Cycle& at = inject_wake_at_[static_cast<size_t>(i)];
      if (at <= now) {
        inject_awake_.set(i);
        at = kCycleNever;
      } else if (at < next_timed_wake_) {
        next_timed_wake_ = at;
      }
    }
  }

  // 1. Channels holding messages deliver; newly visible arrivals wake their
  //    receivers (this runs before every component phase, so same-cycle
  //    consumption is guaranteed). Fully drained channels drop off the list
  //    -- their slots are all empty, so skipping begin_cycle is safe (see
  //    Channel's activity contract). Per-entry work is order-independent:
  //    begin_cycle touches only the channel itself and wake bits are ORed.
  chan_active_.sweep([&](int id) { return begin_channel(id, now); });

  // 2. NIC injection halves, ascending node id (the phase-walk order, so
  //    shared-accumulator metrics see identical floating-point ordering).
  //    A NIC stays awake while it holds queued work or its source may fire
  //    next cycle; otherwise it parks, with a timed wake if the source
  //    promised a future fire.
  const DestMask inject_pass = inject_awake_;
  inject_pass.for_each([&](int node) {
    const auto i = static_cast<size_t>(node);
    nics_[i]->tick_inject(now);
    if (nics_[i]->inject_busy()) return;
    const Cycle wake = sources_[i]->next_fire_cycle(now + 1);
    if (wake <= now + 1) return;
    inject_awake_.clear(node);
    // Overwrite unconditionally: an early hook wake may have left a stale
    // earlier entry that would otherwise fire a pointless timed wake.
    inject_wake_at_[i] = wake;
    if (wake < next_timed_wake_) next_timed_wake_ = wake;
  });

  // 3. Routers. Skipped ticks are exact no-ops for idle routers (no
  //    arbiter state advances without requests; the lookahead rotation is
  //    cycle-derived), so sleeping preserves bit-identical metrics.
  const DestMask router_pass = router_awake_;
  router_pass.for_each([&](int node) {
    const auto i = static_cast<size_t>(node);
    routers_[i]->tick(now);
    if (routers_[i]->idle()) router_awake_.clear(node);
  });

  // 4. NIC ejection halves.
  const DestMask eject_pass = eject_awake_;
  eject_pass.for_each([&](int node) {
    const auto i = static_cast<size_t>(node);
    nics_[i]->tick_eject(now);
    if (!nics_[i]->eject_busy()) eject_awake_.clear(node);
  });
}

bool Network::begin_channel(int id, Cycle now) {
  if (id < credit_id_base_) {
    auto& ch = flit_channels_[static_cast<size_t>(id)];
    ch.begin_cycle(now);
    return ch.stored() > 0;
  }
  if (id < la_id_base_) {
    auto& ch = credit_channels_[static_cast<size_t>(id - credit_id_base_)];
    ch.begin_cycle(now);
    return ch.stored() > 0;
  }
  auto& ch = la_channels_[static_cast<size_t>(id - la_id_base_)];
  ch.begin_cycle(now);
  return ch.stored() > 0;
}

// ---------------------------------------------------------------------------
// Intra-network parallel stepping (docs/PERF.md Layer 4).
//
// Schedule per cycle, with barriers between the phases:
//
//   A. compute  (parallel) -- each worker runs its spans' timed wakes,
//      channel deliveries, NIC-inject / router / NIC-eject passes. Every
//      write lands in span-owned state; sends on cross-span channels only
//      stage.
//   B. commit   (parallel) -- each owner replays the messages other spans
//      staged into its boundary channels, through the normal send path.
//   C. merge    (main thread) -- drain per-span energy shards (integer adds,
//      span order) and replay captured metrics events in exact serial order
//      (inject phase before eject phase, ascending node within each).
//
// Bit-identity to serial stepping holds because every within-cycle wake is
// intra-node, every cross-node interaction crosses a latency>=1 channel
// (visible only after the next cycle's begin_cycle), and phase C
// reconstructs the serial call order of all order-sensitive accumulation.

void Network::step_parallel(Cycle now) {
  flush_external_captures();
  if (team_->workers() > 1 && !trace_recording_) {
    StepCtx ctx{this, now};
    team_->run(&Network::compute_thunk, &ctx);
    team_->run(&Network::commit_thunk, &ctx);
  } else {
    step_spans_inline(now);
  }
  merge_spans();
}

void Network::compute_thunk(void* ctx, int worker) {
  auto* c = static_cast<StepCtx*>(ctx);
  Network& net = *c->net;
  const int workers = net.team_->workers();
  const int spans = static_cast<int>(net.spans_.size());
  // Strided span -> worker assignment: the worker count changes only the
  // schedule, never which span owns what, so results are grant-invariant.
  for (int s = worker; s < spans; s += workers) net.span_compute(s, c->now);
}

void Network::commit_thunk(void* ctx, int worker) {
  auto* c = static_cast<StepCtx*>(ctx);
  Network& net = *c->net;
  const int workers = net.team_->workers();
  const int spans = static_cast<int>(net.spans_.size());
  for (int s = worker; s < spans; s += workers) net.span_commit(s, c->now);
}

void Network::span_begin(int s, Cycle now) {
  StepSpan& sp = spans_[static_cast<size_t>(s)];
  if (!cfg_.activity_gating) {
    for (int id : sp.channels) begin_channel(id, now);
    return;
  }
  // Timed injection wake-ups, then the span's active channels (the per-span
  // mirror of step_gated's steps 0 and 1).
  if (sp.next_timed_wake <= now) {
    sp.next_timed_wake = kCycleNever;
    for (NodeId i : sp.nodes) {
      Cycle& at = inject_wake_at_[static_cast<size_t>(i)];
      if (at <= now) {
        sp.inject_awake.set(i);
        at = kCycleNever;
      } else if (at < sp.next_timed_wake) {
        sp.next_timed_wake = at;
      }
    }
  }
  sp.active.sweep([&](int id) { return begin_channel(id, now); });
}

void Network::span_inject_tick(StepSpan& sp, int node, Cycle now) {
  const auto i = static_cast<size_t>(node);
  sp.metrics->set_capture_point(kCaptureInject, node);
  nics_[i]->tick_inject(now);
  if (!cfg_.activity_gating) return;
  if (nics_[i]->inject_busy()) return;
  const Cycle wake = sources_[i]->next_fire_cycle(now + 1);
  if (wake <= now + 1) return;
  sp.inject_awake.clear(node);
  inject_wake_at_[i] = wake;  // element owned by this span: race-free
  if (wake < sp.next_timed_wake) sp.next_timed_wake = wake;
}

void Network::span_router_tick(StepSpan& sp, int node, Cycle now) {
  const auto i = static_cast<size_t>(node);
  sp.metrics->set_capture_point(kCaptureRouter, node);
  routers_[i]->tick(now);
  if (cfg_.activity_gating && routers_[i]->idle()) sp.router_awake.clear(node);
}

void Network::span_eject_tick(StepSpan& sp, int node, Cycle now) {
  const auto i = static_cast<size_t>(node);
  sp.metrics->set_capture_point(kCaptureEject, node);
  nics_[i]->tick_eject(now);
  if (cfg_.activity_gating && !nics_[i]->eject_busy())
    sp.eject_awake.clear(node);
}

void Network::span_compute(int s, Cycle now) {
  StepSpan& sp = spans_[static_cast<size_t>(s)];
  span_begin(s, now);
  if (cfg_.activity_gating) {
    sp.pass_scratch = sp.inject_awake;
    sp.pass_scratch.for_each(
        [&](int node) { span_inject_tick(sp, node, now); });
    sp.pass_scratch = sp.router_awake;
    sp.pass_scratch.for_each(
        [&](int node) { span_router_tick(sp, node, now); });
    sp.pass_scratch = sp.eject_awake;
    sp.pass_scratch.for_each(
        [&](int node) { span_eject_tick(sp, node, now); });
  } else {
    for (NodeId node : sp.nodes) span_inject_tick(sp, node, now);
    for (NodeId node : sp.nodes) span_router_tick(sp, node, now);
    for (NodeId node : sp.nodes) span_eject_tick(sp, node, now);
  }
}

void Network::span_commit(int s, Cycle now) {
  StepSpan& sp = spans_[static_cast<size_t>(s)];
  for (auto* ch : sp.cross_flit) ch->commit_staged(now);
  for (auto* ch : sp.cross_credit) ch->commit_staged(now);
  for (auto* ch : sp.cross_la) ch->commit_staged(now);
}

// Single-threaded drive of the sharded datapath, used when the budget
// granted no helpers and while recording traces (NIC recorders append in
// tick order, so the passes must walk nodes in GLOBAL ascending order to
// keep recorded traces identical to serial runs). Span execution order
// cannot affect results -- phase A is span-isolated -- so this produces
// exactly what the threaded schedule produces.
void Network::step_spans_inline(Cycle now) {
  const int spans = static_cast<int>(spans_.size());
  const int n = geom_.num_nodes();
  for (int s = 0; s < spans; ++s) span_begin(s, now);
  auto owner = [&](NodeId node) -> StepSpan& {
    return spans_[static_cast<size_t>(part_.span_of_node(node))];
  };
  if (cfg_.activity_gating) {
    for (auto& sp : spans_) sp.pass_scratch = sp.inject_awake;
    for (NodeId node = 0; node < n; ++node) {
      StepSpan& sp = owner(node);
      if (sp.pass_scratch.test(node)) span_inject_tick(sp, node, now);
    }
    for (auto& sp : spans_) sp.pass_scratch = sp.router_awake;
    for (NodeId node = 0; node < n; ++node) {
      StepSpan& sp = owner(node);
      if (sp.pass_scratch.test(node)) span_router_tick(sp, node, now);
    }
    for (auto& sp : spans_) sp.pass_scratch = sp.eject_awake;
    for (NodeId node = 0; node < n; ++node) {
      StepSpan& sp = owner(node);
      if (sp.pass_scratch.test(node)) span_eject_tick(sp, node, now);
    }
  } else {
    for (NodeId node = 0; node < n; ++node)
      span_inject_tick(owner(node), node, now);
    for (NodeId node = 0; node < n; ++node)
      span_router_tick(owner(node), node, now);
    for (NodeId node = 0; node < n; ++node)
      span_eject_tick(owner(node), node, now);
  }
  for (int s = 0; s < spans; ++s) span_commit(s, now);
}

// Packets submitted through a NIC between steps (tests, external drivers)
// land in the owner shard tagged with a stale capture point. Their events
// (packet creation, NIC-duplicated local deliveries) commute across
// distinct packets, so applying them span-by-span before the cycle starts
// reproduces the serial bookkeeping exactly.
void Network::flush_external_captures() {
  for (auto& sp : spans_) {
    if (sp.metrics->captured_empty()) continue;
    for (int phase = 0; phase < kNumCapturePhases; ++phase)
      for (const auto& e : sp.metrics->captured(phase)) metrics_.apply(e);
    sp.metrics->clear_captured();
  }
}

void Network::merge_spans() {
  // Deterministic merge, main thread. Energy shards are integer event
  // counts: span-ordered addition is exact. Metrics events replay in the
  // serial call order -- all inject-phase events before all eject-phase
  // events, ascending node id within each; each span captured its own nodes
  // in ascending order, so a per-span cursor walk needs no sorting.
  for (auto& sp : spans_) {
    energy_ += sp.energy;
    sp.energy.reset();
  }
  const int n = geom_.num_nodes();
  for (int phase = 0; phase < kNumCapturePhases; ++phase) {
    for (auto& sp : spans_) sp.replay_cursor = 0;
    for (NodeId node = 0; node < n; ++node) {
      StepSpan& sp = spans_[static_cast<size_t>(part_.span_of_node(node))];
      const auto& buf = sp.metrics->captured(phase);
      while (sp.replay_cursor < buf.size() &&
             buf[sp.replay_cursor].node == node)
        metrics_.apply(buf[sp.replay_cursor++]);
    }
  }
  for (auto& sp : spans_) sp.metrics->clear_captured();
}

void Network::record_trace(Trace* out) {
  trace_recording_ = out != nullptr;
  if (out != nullptr) {
    // Stamp the capture geometry so replay layers can reject a trace fed
    // to the wrong mesh (trace_geometry_error / the v2 file header).
    out->kx = geom_.kx();
    out->ky = geom_.ky();
  }
  for (auto& nic : nics_) nic->set_trace_recorder(out);
}

void Network::begin_measurement_window(Cycle now) {
  metrics_.begin_window(now);
  if (telemetry_ != nullptr) telemetry_->reset_stalls();
  for (auto& src : sources_) src->begin_window(now);
}

void Network::end_measurement_window(Cycle now) {
  metrics_.end_window(now);
  for (auto& src : sources_) src->end_window(now);
}

int64_t Network::channel_items() const {
  int64_t total = chan_items_;
  for (const auto& sp : spans_) total += sp.items;
  return total;
}

bool Network::quiescent() const {
  if (metrics_.open_packets() != 0) return false;
  // The aggregate counter covers flit, credit AND lookahead channels: the
  // old flit-only scan let a drain phase end with a credit still on a wire,
  // corrupting back-to-back measurement windows. In parallel mode the count
  // is sharded per span.
  if (channel_items() != 0) return false;
  for (const auto& r : routers_)
    if (!r->idle()) return false;
  for (const auto& nic : nics_)
    if (!nic->idle()) return false;
  for (const auto& src : sources_)
    if (!src->idle()) return false;
  return true;
}

}  // namespace noc

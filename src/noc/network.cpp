#include "noc/network.hpp"

namespace noc {

NetworkConfig NetworkConfig::proposed(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::Proposed;
  c.router.multicast = true;
  return c;
}

NetworkConfig NetworkConfig::lowswing_multicast(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::ThreeStage;
  c.router.multicast = true;
  return c;
}

NetworkConfig NetworkConfig::baseline_3stage(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::ThreeStage;
  c.router.multicast = false;
  c.router.actionable_sa1_requests = false;  // textbook Fig-1 allocator
  return c;
}

NetworkConfig NetworkConfig::baseline_4stage(int k) {
  NetworkConfig c;
  c.k = k;
  c.router.pipeline = PipelineMode::FourStage;
  c.router.multicast = false;
  c.router.actionable_sa1_requests = false;  // textbook Fig-1 allocator
  return c;
}

template <typename T>
Channel<T>* Network::make_channel(
    std::vector<std::unique_ptr<Channel<T>>>& pool, int latency) {
  pool.push_back(std::make_unique<Channel<T>>(latency));
  return pool.back().get();
}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg), geom_(cfg.k), metrics_(geom_) {
  const int n = geom_.num_nodes();
  routers_.reserve(static_cast<size_t>(n));
  sources_.reserve(static_cast<size_t>(n));
  nics_.reserve(static_cast<size_t>(n));
  // Resolve a file-backed trace once for all nodes.
  std::shared_ptr<const Trace> trace;
  if (cfg.workload.kind == WorkloadKind::Trace) {
    trace = resolve_trace(cfg.workload.trace);
    NOC_EXPECTS(trace != nullptr);
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, geom_, cfg.router,
                                                &energy_, &metrics_));
    sources_.push_back(
        make_traffic_source(geom_, cfg.traffic, cfg.workload, node, trace));
    nics_.push_back(std::make_unique<Nic>(node, geom_, cfg.router,
                                          sources_.back().get(), &energy_,
                                          &metrics_));
  }

  const bool bypass = cfg.router.has_bypass();

  // Router-to-router wiring. Each undirected edge gets one channel of each
  // kind per direction. We visit each edge once (East and North neighbors).
  auto wire_edge = [&](NodeId a, PortDir a_out, NodeId b) {
    const PortDir b_out = opposite(a_out);
    auto* f_ab = make_channel(flit_channels_, 1);
    auto* f_ba = make_channel(flit_channels_, 1);
    auto* c_ab = make_channel(credit_channels_, 1);  // a's inport -> b's outport
    auto* c_ba = make_channel(credit_channels_, 1);  // b's inport -> a's outport
    Channel<Lookahead>* l_ab = bypass ? make_channel(la_channels_, 1) : nullptr;
    Channel<Lookahead>* l_ba = bypass ? make_channel(la_channels_, 1) : nullptr;

    Router::PortChannels pa;  // router a, port a_out
    pa.flit_out = f_ab;
    pa.flit_in = f_ba;
    pa.credit_in = c_ba;   // credits from b for flits a sent
    pa.credit_out = c_ab;  // credits a sends for flits received from b
    pa.la_out = l_ab;
    pa.la_in = l_ba;
    routers_[static_cast<size_t>(a)]->connect(a_out, pa);

    Router::PortChannels pb;  // router b, port b_out
    pb.flit_out = f_ba;
    pb.flit_in = f_ab;
    pb.credit_in = c_ab;
    pb.credit_out = c_ba;
    pb.la_out = l_ba;
    pb.la_in = l_ab;
    routers_[static_cast<size_t>(b)]->connect(b_out, pb);
  };

  for (int y = 0; y < cfg.k; ++y) {
    for (int x = 0; x < cfg.k; ++x) {
      const NodeId a = geom_.id(x, y);
      if (x + 1 < cfg.k) wire_edge(a, PortDir::East, geom_.id(x + 1, y));
      if (y + 1 < cfg.k) wire_edge(a, PortDir::North, geom_.id(x, y + 1));
    }
  }

  // NIC wiring through each router's Local port.
  for (NodeId node = 0; node < n; ++node) {
    auto* f_nr = make_channel(flit_channels_, 1);   // NIC -> router
    auto* f_rn = make_channel(flit_channels_, 1);   // router -> NIC
    auto* c_rn = make_channel(credit_channels_, 1); // router local-in -> NIC
    auto* c_nr = make_channel(credit_channels_, 1); // NIC rx -> router local-out
    Channel<Lookahead>* l_nr = bypass ? make_channel(la_channels_, 0) : nullptr;

    Router::PortChannels pl;
    pl.flit_in = f_nr;
    pl.flit_out = f_rn;
    pl.credit_in = c_nr;
    pl.credit_out = c_rn;
    pl.la_in = l_nr;
    pl.la_out = nullptr;  // no lookahead toward the NIC
    routers_[static_cast<size_t>(node)]->connect(PortDir::Local, pl);

    Nic::Channels nc;
    nc.flit_to_router = f_nr;
    nc.la_to_router = l_nr;
    nc.credit_from_router = c_rn;
    nc.flit_from_router = f_rn;
    nc.credit_to_router = c_nr;
    nics_[static_cast<size_t>(node)]->connect(nc);
  }
}

void Network::step(Cycle now) {
  for (auto& ch : flit_channels_) ch->begin_cycle(now);
  for (auto& ch : credit_channels_) ch->begin_cycle(now);
  for (auto& ch : la_channels_) ch->begin_cycle(now);
  for (auto& nic : nics_) nic->tick_inject(now);
  for (auto& r : routers_) r->tick(now);
  for (auto& nic : nics_) nic->tick_eject(now);
  ++energy_.cycles;
}

void Network::record_trace(Trace* out) {
  for (auto& nic : nics_) nic->set_trace_recorder(out);
}

void Network::begin_measurement_window(Cycle now) {
  metrics_.begin_window(now);
  for (auto& src : sources_) src->begin_window(now);
}

void Network::end_measurement_window(Cycle now) {
  metrics_.end_window(now);
  for (auto& src : sources_) src->end_window(now);
}

bool Network::quiescent() const {
  if (metrics_.open_packets() != 0) return false;
  for (const auto& r : routers_)
    if (!r->idle()) return false;
  for (const auto& nic : nics_)
    if (!nic->idle()) return false;
  for (const auto& src : sources_)
    if (!src->idle()) return false;
  for (const auto& ch : flit_channels_)
    if (!ch->idle()) return false;
  return true;
}

}  // namespace noc

#pragma once
// The router microarchitecture (paper Figs 1 and 3).
//
// One parameterizable implementation covers the three designs evaluated in
// the paper:
//
//   FourStage  -- textbook baseline (Fig 1):
//                 stage 1: BW + mSA-I + VA | stage 2: NRC + mSA-II |
//                 stage 3: ST | stage 4: LT            => 4 cycles/hop
//   ThreeStage -- "aggressive" baseline of Sec 4.1 with fused single-cycle
//                 ST+LT                                => 3 cycles/hop
//   Proposed   -- ThreeStage buffered path + router-level multicast +
//                 lookahead virtual bypassing          => 1 cycle/hop on a
//                 successful bypass (Fig 3)
//
// Timing model (simulation tick t):
//   * Lookaheads sent by the upstream router during its SA phase of tick
//     t-1 arrive at tick t and enter mSA-II with priority. A winner
//     pre-allocates the crossbar for its flit, which arrives at t+1 and is
//     forwarded in the ST phase of t+1: one cycle per hop.
//   * Buffered path: BW + mSA-I at tick t (stage 1), mSA-II at t+1
//     (stage 2, candidate latched by SA-I), ST(+LT) at t+2.
//   * Credits cross a 1-cycle channel and are applied at the start of the
//     receiving tick, which yields exactly the paper's 3-cycle buffer/VC
//     turnaround (ST+LT, credit return, credit processing).

#include <array>
#include <optional>

#include "common/inline_vec.hpp"
#include "noc/arbiters.hpp"
#include "noc/buffers.hpp"
#include "noc/energy_events.hpp"
#include "noc/fault.hpp"
#include "noc/flit.hpp"
#include "noc/geometry.hpp"
#include "noc/metrics.hpp"
#include "noc/route_policy.hpp"
#include "noc/routing.hpp"
#include "noc/telemetry.hpp"
#include "sim/channel.hpp"

namespace noc {

enum class PipelineMode { FourStage, ThreeStage, Proposed };

struct RouterConfig {
  PipelineMode pipeline = PipelineMode::Proposed;
  /// Router-level multicast fork support (paper Sec 3.3). Without it the
  /// router only accepts unicast flits (the NIC duplicates broadcasts).
  bool multicast = true;
  /// A multicast lookahead may bypass on a subset of its requested output
  /// ports, buffering only the remainder. Ablation knob (DESIGN.md Sec 6).
  bool allow_partial_bypass = true;
  /// Lookaheads beat buffered requests in mSA-II (paper Sec 3.2). Ablation
  /// knob: when false, buffered flits arbitrate first.
  bool lookahead_priority = true;
  /// mSA-I only considers VCs whose output-port request is actionable
  /// (downstream VC + credit available). The proposed router's stage-1
  /// mSA-I/VA co-design implies this masking; the textbook Fig-1 baseline
  /// feeds raw per-VC outport requests into its round-robin circuit and
  /// wastes switch cycles on credit-blocked VCs.
  bool actionable_sa1_requests = true;
  /// Port-granular activity gating (docs/PERF.md Layer 5): under network
  /// activity gating, a ticking router sweeps only ports holding internal
  /// work or whose channels delivered this cycle (per-port wake bits set by
  /// the channel hooks), instead of all 5 ports x all VCs. Pure scheduling
  /// -- results are bit-identical either way. Ignored when the network runs
  /// ungated (the full phase walk already visits everything).
  bool port_gating = true;
  /// Routing policy (noc/route_policy.hpp, docs/ROUTING.md). The chip
  /// hardwires XY; YX is the mirror ablation; O1TURN and MinimalAdaptive
  /// load-balance unicasts over lane-partitioned VCs to attack the paper's
  /// "XY routing imbalance" share of the throughput gap. Multicasts stay
  /// on the dimension-ordered tree under every policy.
  RoutePolicy routing = RoutePolicy::XY;
  VcConfig vc;

  bool has_bypass() const { return pipeline == PipelineMode::Proposed; }
  /// Buffered-path pipeline depth in cycles (BW/SA-I .. flit on the link).
  int buffered_stages() const {
    return pipeline == PipelineMode::FourStage ? 4 : 3;
  }
};

/// Lookahead signal (paper: 15 bits -- output-port vector from NRC plus VC
/// and head metadata). We carry the full flit descriptor; only information
/// the hardware encodes or can derive from the header is used.
struct Lookahead {
  int in_port = 0;  // input port at the receiving router
  Flit flit;        // the flit that will arrive next cycle (vc/branch_mask set)
};

class Router {
 public:
  /// External wiring for one port, owned by the Network.
  struct PortChannels {
    Channel<Flit>* flit_in = nullptr;
    Channel<Flit>* flit_out = nullptr;
    Channel<Credit>* credit_in = nullptr;   // credits from downstream
    Channel<Credit>* credit_out = nullptr;  // credits to upstream
    Channel<Lookahead>* la_in = nullptr;
    Channel<Lookahead>* la_out = nullptr;
  };

  Router(NodeId node, const MeshGeometry& geom, const RouterConfig& cfg,
         EnergyCounters* energy, Metrics* metrics);

  void connect(PortDir port, const PortChannels& ch);

  /// One clock cycle. Phases: credits -> ST/BW -> SA-II(+lookaheads) ->
  /// SA-I/VA -> occupancy accounting.
  void tick(Cycle now);

  NodeId node() const { return node_; }
  const RouterConfig& config() const { return cfg_; }

  /// True when no flit is buffered or latched anywhere in this router.
  bool idle() const;

  /// Arm per-port wake gating (RouterConfig::port_gating under a gated
  /// network) and return the word the port-wake channel hooks OR their
  /// arriving port's bit into (WakeHook::port_word). kNumPorts < 64, so
  /// word 0 holds the whole mask.
  uint64_t* arm_port_wake() {
    port_wake_armed_ = true;
    return wake_ports_.word_ptr(0);
  }

  /// SoA busy-VC set (bit vc_bit(p, v) <=> input VC v of port p holds a
  /// packet); exposed for the zero-alloc / equivalence tests' cross-checks.
  const VcSetMask& busy_vcs() const { return busy_; }

  /// Downstream credit/VC view of an output port (exposed for tests).
  const DownstreamState& downstream(PortDir out) const {
    return out_[port_index(out)].ds;
  }

  /// Attach the network's fault-schedule state (docs/FAULTS.md). Called
  /// once at construction time for networks with a non-empty FaultPlan;
  /// the router reads dead-port / degrade flags through this pointer every
  /// tick (nullptr = pristine fast path, bit-identical to pre-fault builds).
  void attach_faults(const FaultState* faults) { faults_ = faults; }

  /// Attach the network's telemetry sink (docs/OBSERVABILITY.md). Same
  /// lifecycle as attach_faults: set once at construction when
  /// TelemetryConfig::enabled, nullptr otherwise -- every hot-path hook is
  /// one untaken branch on this pointer. Stall counters are only ever
  /// charged to busy VCs of swept ports, which makes the counts
  /// bit-identical across activity gating, port gating, and parallel
  /// stepping (a sleeping router has no busy VCs to charge).
  void attach_telemetry(Telemetry* t) { telemetry_ = t; }

  /// The fault schedule changed the surviving topology (link kill or
  /// revival). Re-validates every open Escape-class packet against the new
  /// escape tree: branches that have not started sending and whose route no
  /// longer matches convert in place to drop branches (graceful drain;
  /// docs/FAULTS.md). Adaptive packets need nothing -- VA re-aims them.
  void on_topology_change(Cycle now);

  /// Human-readable dump of all non-idle state (debugging stuck networks).
  void dump_state(FILE* out) const;

 private:
  struct GrantOut {
    PortDir out = PortDir::Local;
    int ds_vc = -1;
    DestMask dests;
  };

  /// At most one grant per output port per cycle; inline storage keeps the
  /// per-cycle grant vectors off the heap (docs/PERF.md).
  using GrantList = InlineVec<GrantOut, kNumPorts>;

  /// Switch-traversal latch: a buffered flit granted by mSA-II, traversing
  /// ST(+LT) this tick.
  struct StLatch {
    bool valid = false;
    int vc = -1;
    int seq = 0;
    GrantList outs;
  };

  /// Pre-allocated crossbar passage for a flit arriving this tick.
  struct BypassGrant {
    bool valid = false;
    int vc = -1;
    int seq = 0;
    bool full = false;  // all requested branches granted
    GrantList outs;
  };

  struct InputPort {
    std::vector<InputVc> vcs;
    RoundRobinArbiter sa1{1};
    int stage2_vc = -1;  // mSA-I winner awaiting mSA-II (stage-2 candidate)
    StLatch st;          // executes at the next tick's ST phase
    BypassGrant bypass;  // applies to the flit arriving next tick
    PortChannels ch;
    bool connected = false;
  };

  struct OutputPort {
    DownstreamState ds;
    MatrixArbiter sa2{kNumPorts};
    /// LT latch for the FourStage pipeline (ST fills it, LT drains it).
    std::optional<Flit> lt;
  };

  // --- phases (each sweeps only ports set in `active`) ---
  void apply_credits(Cycle now, const PortMask& active);
  void phase_st_and_bw(Cycle now, const PortMask& active);
  void phase_sa2(Cycle now, const PortMask& active);
  void phase_sa1_va(Cycle now, const PortMask& active);
  /// Fault-mode drop-branch sweep (docs/FAULTS.md): consumes one flit per
  /// cycle per drop branch as if sent and counts the tail as a dropped
  /// delivery. Runs between ST/BW and mSA-II -- after this tick's ST latch
  /// consumed its flit references, before new grants are issued -- so
  /// retire_sent_flits can safely pop swept flits. No-op (one integer
  /// compare) unless drop branches exist.
  void fault_tick(Cycle now);

  // --- helpers ---
  void process_lookaheads(Cycle now, const PortMask& active,
                          std::array<bool, kNumPorts>& out_claimed,
                          std::array<bool, kNumPorts>& in_claimed);
  void arbitrate_buffered(Cycle now,
                          std::array<bool, kNumPorts>& out_claimed,
                          std::array<bool, kNumPorts>& in_claimed);
  /// Install route/branch state for a head flit arriving at (port, vc).
  void open_packet_state(Cycle now, int port, const Flit& head);
  /// Route computation for a head under the configured policy: the ordered
  /// classes use their dimension-ordered tree; Adaptive heads get an
  /// initial productive-port aim from live credit state (re-aimed by VA
  /// every retry until a downstream VC is granted). Under a non-empty
  /// fault plan, Escape heads route on the surviving-topology tree and
  /// destinations that cannot be served (off-tree, or forbidden by the
  /// down-phase constraint for the arrival port; docs/ROUTING.md) are
  /// returned in `*drop` instead of the RouteSet.
  RouteSet route_head(int in_port, const Flit& head, DestMask* drop) const;
  /// Best productive port toward `dest` for an Adaptive packet: most free
  /// Free-lane VCs, then most Free-lane buffer credits, X-first tie-break.
  PortDir adaptive_port_choice(NodeId dest, MsgClass mc) const;
  /// VC lane branch `b` of a class-`rc` packet allocates from (the
  /// Adaptive class maps to its primary Free lane; escape is requested
  /// explicitly inside allocate_branch_vcs).
  VcLane branch_lane(RouteClass rc, PortDir out) const {
    return route_class_lane(cfg_.routing, rc, out);
  }
  /// Could VA equip this branch with a downstream VC right now? (The
  /// actionable-request mask of mSA-I; considers every adaptive candidate
  /// port plus the escape fallback for Adaptive packets.)
  bool branch_could_get_vc(RouteClass rc, MsgClass mc, const Branch& b) const;
  /// Route class the copy forwarded toward `go` carries downstream:
  /// an Adaptive flit granted an Ordered-lane (escape) VC continues as
  /// Escape -- stickiness the deadlock argument relies on.
  RouteClass downstream_rc(const Flit& f, const GrantOut& go) const;
  /// Forward one flit copy through the crossbar toward `go` (ST; plus LT
  /// for fused pipelines, or into the LT latch for FourStage).
  void forward_copy(Cycle now, const Flit& f, const GrantOut& go);
  /// Send the lookahead announcing `f` will traverse toward `go` next tick.
  void send_lookahead(Cycle now, const Flit& f, const GrantOut& go);
  void send_credit_upstream(Cycle now, int port, int vc, bool vc_free);
  /// VA for the packet holding (vc_id): lazy per-branch for unicasts and
  /// single-flit multicasts, atomic all-or-nothing for multi-flit
  /// multicasts (deadlock avoidance; see implementation comment).
  void allocate_branch_vcs(Cycle now, int vc_id, InputVc& ivc);
  /// Telemetry: why can this busy, unserviceable VC not move a flit?
  /// Disjoint by branch state: no buffered flit -> BufferEmpty; a buffered
  /// flit behind a held VC -> NoCredit; behind a VC-less branch ->
  /// NoFreeVc (docs/OBSERVABILITY.md "Stall taxonomy").
  StallClass classify_stalled_vc(const InputVc& ivc) const;
  /// Smallest sequence number among branches that can actually move this
  /// cycle (flit buffered, downstream VC allocated, credit available).
  /// INT_MAX when none can. Branches are deliberately NOT served in global
  /// lockstep: a branch with credits must be allowed to run ahead of a
  /// credit-stalled sibling, or multi-flit multicast trees deadlock (the
  /// stalled sibling may be waiting on exactly the resource the ready
  /// branch would free).
  int serviceable_seq(const InputVc& ivc) const;
  /// Branch bookkeeping after a copy of flit `seq` has been granted toward
  /// branch `b` (advances next_seq / tail_sent).
  static void advance_branch(Branch& b, const Flit& f);
  /// Pop + credit any fully-sent flits at the front of (port, vc)'s FIFO;
  /// closes the packet when every branch is done.
  void retire_sent_flits(Cycle now, int port, int vc);

  /// Bit of (input port, VC id) in the SoA busy set.
  static constexpr int vc_bit(int port, int vc) {
    return port * kMaxTotalVcs + vc;
  }
  /// One port's 16 busy-VC bits as a word (VC v of port p at bit v).
  uint32_t busy_slice(int port) const {
    return busy_.extract(port * kMaxTotalVcs, kMaxTotalVcs);
  }
  /// Ports holding carried-over work: a busy VC, an ST/bypass latch, a
  /// stage-2 candidate, or a pending LT. The complement may be skipped by a
  /// port-gated tick unless a wake bit says a channel delivered.
  PortMask internal_work_ports() const;

  NodeId node_;
  const MeshGeometry& geom_;
  RouterConfig cfg_;
  EnergyCounters* energy_;
  Metrics* metrics_;
  /// Fault-schedule view (nullptr on pristine networks: every fault check
  /// compiles to one branch on this pointer). Updated by the Network on the
  /// main thread at cycle boundaries only.
  const FaultState* faults_ = nullptr;
  /// Telemetry sink (nullptr = off; see attach_telemetry). Rows are
  /// per-router and each router is ticked by one worker, so plain adds
  /// need no synchronization under parallel stepping.
  Telemetry* telemetry_ = nullptr;
  /// Open drop branches across all input VCs; gates fault_tick's sweep.
  int open_drop_branches_ = 0;

  std::array<InputPort, kNumPorts> in_;
  std::array<OutputPort, kNumPorts> out_;

  /// SoA mirror of per-VC busy flags (docs/PERF.md Layer 5): set by
  /// open_packet_state, cleared at both close_packet sites. The energy
  /// walk, idle(), and the mSA-I scan are word ops over this instead of
  /// 5x16 InputVc object walks.
  VcSetMask busy_;
  /// Per-port wake bits (word 0 is the channel hooks' target): which ports
  /// had a flit/credit/lookahead delivery this cycle. Snapshot-and-cleared
  /// at the top of tick(); only meaningful when armed.
  PortMask wake_ports_;
  bool port_wake_armed_ = false;

  /// Persistent per-tick allocation scratch. Constructing a GrantList runs
  /// five GrantOut constructors (each zeroing a multi-word DestMask), which
  /// showed up in saturated-load profiles when done per tick; these are
  /// clear()ed instead (size reset only, storage reused).
  std::array<GrantList, kNumPorts> granted_scratch_;
  GrantList la_grantable_;                  // process_lookaheads scratch
  InlineVec<Branch*, kNumPorts> la_want_;
  BranchList open_branches_;                // open_packet_state scratch
};

}  // namespace noc

#pragma once
// Campaign execution: resolve a manifest, skip every point the result store
// already holds a valid record for, and fan the rest across the
// thread-budget-aware pool (sim/thread_pool.hpp) -- each point is a fully
// independent simulation writing one record file, so the schedule cannot
// change any byte of any record.
//
// Points run in two waves: everything without a trace dependency first
// (captures included), then the replay points, whose input trace is ALWAYS
// reloaded from the store's trace file -- never passed through memory --
// so a replay in the same process and a replay after a crash/resume see
// byte-for-byte the same input.
//
// `max_points` bounds how many incomplete points this invocation executes,
// in manifest order. It is the deterministic stand-in for "the campaign
// got killed here": tests and the CI smoke job run with a small
// max_points, then resume and assert the completed points were skipped.

#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"

namespace noc::campaign {

struct RunOptions {
  /// Worker threads for point fan-out. 0 = all hardware threads, 1 = serial.
  int threads = 0;
  /// Execute at most this many incomplete points (manifest order), < 0 =
  /// all. Skipped points do not count against it.
  int max_points = -1;
  /// Per-point console progress lines.
  bool verbose = false;
};

struct RunSummary {
  int executed = 0;
  int skipped = 0;   // valid record already present
  int deferred = 0;  // not attempted: max_points cut, or dep trace not yet
                     // on disk (runs on resume)
  int failed = 0;
  std::vector<std::string> errors;

  bool ok() const { return failed == 0; }
  bool complete() const { return failed == 0 && deferred == 0; }
};

/// Run `m` against `store`. The manifest must resolve (validate_manifest);
/// a resolve failure returns failed = 1 with the diagnostic in errors.
RunSummary run_campaign(const Manifest& m, const ResultStore& store,
                        const RunOptions& opt = {});

/// The canonical record metrics for a measured point / saturation search --
/// "items_per_second" first (flits/s at 1 GHz; delivered at saturation for
/// searches) so gathered reports feed tools/check_perf_regression.py.
/// Exposed so tests can build the expected record from a standalone
/// measure_workload/find_saturation run and diff bytes.
std::vector<std::pair<std::string, double>> point_report(
    const PointResult& r);
std::vector<std::pair<std::string, double>> saturation_report(
    const SaturationResult& s);

/// The record run_campaign would write for resolved point `r` completed
/// with `report` (host context filled from current_host()).
CampaignRecord make_record(const Manifest& m, const ResolvedPoint& r,
                           std::vector<std::pair<std::string, double>> report);

}  // namespace noc::campaign

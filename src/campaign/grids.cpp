#include "campaign/grids.hpp"

#include <string>

#include "common/assert.hpp"

namespace noc::campaign {

namespace {

CampaignPoint base_point(std::string id, PointKind kind, int k,
                         int step_threads) {
  CampaignPoint p;
  p.id = std::move(id);
  p.kind = kind;
  p.k = k;
  p.step_threads = step_threads;
  return p;
}

}  // namespace

Manifest design_space_manifest(int max_k, int step_threads) {
  NOC_EXPECTS(max_k >= 2 && max_k <= kMaxMeshRadix);
  Manifest m;
  m.name = "design_space";
  // examples/design_space_sweep.cpp defaults.
  m.default_warmup = 1500;
  m.default_window = 6000;

  // 1. Mesh radix sweep, uniform 1-flit requests.
  std::vector<int> radices = {2, 3, 4, 5, 6, 8};
  for (int k = 10; k <= max_k; k += 2) radices.push_back(k);
  for (int k : radices)
    m.points.push_back(base_point("radix/k=" + std::to_string(k),
                                  PointKind::Saturation, k, step_threads));

  // 2. Pattern sweep at the selected size.
  const TrafficPattern patterns[] = {
      TrafficPattern::UniformRequest, TrafficPattern::Transpose,
      TrafficPattern::BitComplement,  TrafficPattern::Tornado,
      TrafficPattern::NearestNeighbor, TrafficPattern::BroadcastOnly};
  for (TrafficPattern pat : patterns) {
    CampaignPoint p =
        base_point(std::string("pattern/") + traffic_pattern_name(pat),
                   PointKind::Saturation, max_k, step_threads);
    p.pattern = pat;
    m.points.push_back(p);
  }

  // 3. Routing-policy sweep on uniform and the adversarial transpose.
  for (RoutePolicy policy : {RoutePolicy::XY, RoutePolicy::YX,
                             RoutePolicy::O1Turn,
                             RoutePolicy::MinimalAdaptive})
    for (TrafficPattern pat :
         {TrafficPattern::UniformRequest, TrafficPattern::Transpose}) {
      CampaignPoint p = base_point(
          std::string("policy/") + route_policy_name(policy) + "/" +
              traffic_pattern_name(pat),
          PointKind::Saturation, max_k, step_threads);
      p.policy = policy;
      p.pattern = pat;
      m.points.push_back(p);
    }

  // 4. Pipeline sweep under the paper's mixed traffic.
  for (PipelinePreset preset :
       {PipelinePreset::Proposed, PipelinePreset::LowswingMulticast,
        PipelinePreset::Baseline3, PipelinePreset::Baseline4}) {
    CampaignPoint p =
        base_point(std::string("pipeline/") + pipeline_preset_name(preset),
                   PointKind::Saturation, max_k, step_threads);
    p.pipeline = preset;
    p.pattern = TrafficPattern::MixedPaper;
    m.points.push_back(p);
  }

  // 5. Fault axis (docs/FAULTS.md): degraded-mesh measure points, adaptive
  // (fault-aware rerouting) against xy (wedge-until-revival), at 1/2/4
  // permanently dead links. Measure -- not saturation -- because on a
  // faulted mesh the latency-3x search can chase drops instead of load.
  for (int links : {1, 2, 4})
    for (RoutePolicy policy : {RoutePolicy::MinimalAdaptive, RoutePolicy::XY}) {
      CampaignPoint p = base_point(
          std::string("fault/links=") + std::to_string(links) + "/" +
              route_policy_name(policy),
          PointKind::Measure, max_k, step_threads);
      p.policy = policy;
      p.offered = 0.20;
      p.fault_links = links;
      p.fault_seed = 7;
      p.fault_kill_at = 0;
      m.points.push_back(p);
    }
  return m;
}

Manifest large_k_manifest(bool short_mode, int step_threads) {
  Manifest m;
  m.name = "large_k";
  // bench/large_k_scaling.cpp's full/--short measurement windows.
  m.default_warmup = short_mode ? 300 : 2000;
  m.default_window = short_mode ? 800 : 6000;
  constexpr int kPolicyRequestVcs = 8;  // 4 per lane, see the bench header
  for (int k : {4, 8, 12, 16}) {
    // Paper-budget XY continuity row.
    m.points.push_back(base_point("k=" + std::to_string(k) + "/chip",
                                  PointKind::Saturation, k, step_threads));
    for (RoutePolicy policy : {RoutePolicy::XY, RoutePolicy::O1Turn,
                               RoutePolicy::MinimalAdaptive}) {
      CampaignPoint p = base_point(
          "k=" + std::to_string(k) + "/policy=" + route_policy_name(policy),
          PointKind::Saturation, k, step_threads);
      p.policy = policy;
      p.request_vcs = kPolicyRequestVcs;
      m.points.push_back(p);
    }
  }
  return m;
}

Manifest trace_ablation_manifest(int k) {
  NOC_EXPECTS(k >= 2 && k <= kMaxMeshRadix);
  Manifest m;
  m.name = "trace_ablation";
  m.default_warmup = 500;
  m.default_window = 2000;

  // One capture: saturating closed-loop coherence traffic on the proposed
  // router -- the workload whose injection schedule the ablation reuses.
  CampaignPoint cap = base_point("capture/closed-loop", PointKind::Capture,
                                 k, 1);
  cap.workload = WorkloadKind::ClosedLoop;
  cap.mshr_window = 4;
  m.points.push_back(cap);

  // Replay-many: the other pipeline presets plus a gating-off proposed
  // build, all fed byte-identical traffic.
  struct Ablation {
    const char* id;
    PipelinePreset preset;
    bool gating;
  };
  const Ablation ablations[] = {
      {"replay/proposed", PipelinePreset::Proposed, true},
      {"replay/proposed-nogate", PipelinePreset::Proposed, false},
      {"replay/lowswing", PipelinePreset::LowswingMulticast, true},
      {"replay/baseline3", PipelinePreset::Baseline3, true},
      {"replay/baseline4", PipelinePreset::Baseline4, true},
  };
  for (const Ablation& a : ablations) {
    CampaignPoint p = base_point(a.id, PointKind::Replay, k, 1);
    p.pipeline = a.preset;
    p.gating = a.gating;
    p.trace_from = "capture/closed-loop";
    m.points.push_back(p);
  }
  return m;
}

Manifest smoke_manifest() {
  Manifest m;
  m.name = "smoke";
  m.default_warmup = 200;
  m.default_window = 500;

  CampaignPoint measure = base_point("measure/k=2", PointKind::Measure, 2, 1);
  measure.offered = 0.05;
  m.points.push_back(measure);

  CampaignPoint mixed = base_point("measure/k=4-mixed", PointKind::Measure,
                                   4, 1);
  mixed.pattern = TrafficPattern::MixedPaper;
  mixed.offered = 0.08;
  m.points.push_back(mixed);

  m.points.push_back(base_point("saturation/k=2", PointKind::Saturation, 2,
                                1));

  CampaignPoint cap = base_point("capture/k=4", PointKind::Capture, 4, 1);
  cap.workload = WorkloadKind::ClosedLoop;
  cap.mshr_window = 2;
  m.points.push_back(cap);

  for (PipelinePreset preset :
       {PipelinePreset::Baseline3, PipelinePreset::Baseline4}) {
    CampaignPoint p =
        base_point(std::string("replay/") + pipeline_preset_name(preset),
                   PointKind::Replay, 4, 1);
    p.pipeline = preset;
    p.trace_from = "capture/k=4";
    m.points.push_back(p);
  }
  return m;
}

}  // namespace noc::campaign

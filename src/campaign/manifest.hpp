#pragma once
// Campaign manifests: the declarative layer over the experiment harness
// (docs/CAMPAIGN.md). A campaign is a named set of POINTS, each a fully
// resolved simulation (NetworkConfig x WorkloadSpec x RoutePolicy x k x
// step_threads) plus what to measure there:
//
//   measure     -- measure_workload at the point's own load knobs
//   saturation  -- find_saturation (open-loop only)
//   capture     -- measure AND record the injection trace
//                  (Network::record_trace), saved keyed by the point hash
//   replay      -- measure a trace workload replaying the capture named by
//                  `trace_from` (capture-once / replay-many ablation)
//
// Every point is CONTENT-HASHED from its canonical key: the fully resolved
// configuration (not the manifest text), a schema version tag, and -- for
// replay points -- the hash of the capture they depend on. The hash is the
// completed-work identity the result store keys records by, so re-running a
// campaign skips completed hashes (crash resume), and a change that only
// touches some points (a policy knob, a capture's workload) invalidates
// exactly those points' hashes and their dependents, nothing else.
//
// Manifests come from the builders in campaign/grids.hpp (the repo's own
// sweeps) or from a plain-text file ("# noc-campaign v1"; see
// docs/CAMPAIGN.md for the format and save/load below).

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "noc/experiment.hpp"
#include "noc/network.hpp"

namespace noc::campaign {

/// Bumped whenever the record schema or the meaning of a manifest field
/// changes incompatibly: every point hash embeds it, so old records are
/// invalidated wholesale instead of being silently misread.
constexpr int kCampaignSchemaVersion = 1;

enum class PointKind { Measure, Saturation, Capture, Replay };
constexpr int kNumPointKinds = 4;

const char* point_kind_name(PointKind k);
std::optional<PointKind> parse_point_kind(std::string_view name);

/// The four router builds the paper evaluates (NetworkConfig factories).
enum class PipelinePreset { Proposed, LowswingMulticast, Baseline3, Baseline4 };
constexpr int kNumPipelinePresets = 4;

const char* pipeline_preset_name(PipelinePreset p);
std::optional<PipelinePreset> parse_pipeline_preset(std::string_view name);

/// One campaign point. Field defaults mean "the preset's value"; anything
/// set here overrides the resolved NetworkConfig, and EVERY resolved field
/// feeds the content hash (campaign_point_key).
struct CampaignPoint {
  /// Unique within the manifest. Allowed chars: [A-Za-z0-9_.=/-] (ids name
  /// record files and report rows).
  std::string id;
  PointKind kind = PointKind::Measure;

  // --- network ---
  PipelinePreset pipeline = PipelinePreset::Proposed;
  int k = 4;
  int ky = 0;  // 0 = square
  RoutePolicy policy = RoutePolicy::XY;
  /// VC overrides per message class; 0 keeps the preset's pool.
  int request_vcs = 0;
  int response_vcs = 0;
  bool gating = true;
  int step_threads = 1;

  // --- workload ---
  /// Measure/capture points: which source family runs. Replay points are
  /// forced to WorkloadKind::Trace; saturation points to OpenLoop.
  WorkloadKind workload = WorkloadKind::OpenLoop;
  TrafficPattern pattern = TrafficPattern::UniformRequest;
  double offered = 0.10;  // open-loop measure points only
  bool identical_prbs = false;
  uint64_t seed = 1;
  /// Closed-loop knobs (workload == ClosedLoop).
  int mshr_window = 4;
  double issue_prob = 1.0;
  Cycle directory_latency = 2;
  Cycle think_time = 0;

  // --- faults (docs/FAULTS.md) ---
  /// Non-zero fault_links / fault_degrade turns the point into a degraded-
  /// mesh run: a deterministic plan from make_random_fault_plan(seed =
  /// fault_seed) kills `fault_links` links and degrades `fault_degrade`
  /// routers at `fault_kill_at`, reviving `fault_revive_after` cycles later
  /// (0 = permanent). All five fields feed the content hash -- but ONLY for
  /// faulted points, so every pre-fault hash in existing result stores
  /// stays valid.
  int fault_links = 0;
  int fault_degrade = 0;
  uint64_t fault_seed = 1;
  Cycle fault_kill_at = 0;
  Cycle fault_revive_after = 0;

  // --- telemetry (docs/OBSERVABILITY.md) ---
  /// Enable the telemetry probes for this point: stall attribution feeds
  /// the report's stall_* rows, and `telemetry_sample_every` > 0 samples
  /// the time series at that period. Both knobs feed the content hash ONLY
  /// for telemetry points (the fault-knob pattern above), so every
  /// pre-telemetry hash in existing result stores stays valid. Latency
  /// percentile rows do NOT need this -- the histogram is always on.
  bool telemetry = false;
  Cycle telemetry_sample_every = 0;

  // --- measurement ---
  /// 0 = the manifest's defaults.
  Cycle warmup = 0;
  Cycle window = 0;

  /// Replay points: id of the capture point whose trace is the input. The
  /// capture's hash is folded into this point's hash, so re-capturing
  /// invalidates every dependent replay.
  std::string trace_from;
};

struct Manifest {
  std::string name;
  Cycle default_warmup = 1000;
  Cycle default_window = 4000;
  std::vector<CampaignPoint> points;

  const CampaignPoint* find(std::string_view id) const;
};

/// Empty string when the manifest is well-formed; else a printable
/// diagnostic (duplicate/invalid ids, bad radix or VC bounds, replay points
/// whose trace_from is missing or is not a capture point, ...).
std::string validate_manifest(const Manifest& m);

/// Resolve a point to the exact NetworkConfig the harness will run. Replay
/// points come back with workload.kind == Trace and an EMPTY trace config:
/// the runner wires the capture's trace in (runner.hpp).
NetworkConfig point_config(const CampaignPoint& p);

MeasureOptions point_measure(const Manifest& m, const CampaignPoint& p);

/// Canonical content key: every resolved config and measurement field in a
/// fixed order plus the schema tag, doubles rendered with %.17g so the key
/// is exact. `dep_hash` is the capture's hash for replay points (empty
/// otherwise). Hash = 64-bit FNV-1a of the key, as 16 lowercase hex chars.
std::string campaign_point_key(const Manifest& m, const CampaignPoint& p,
                               const std::string& dep_hash);
std::string campaign_point_hash(const Manifest& m, const CampaignPoint& p,
                                const std::string& dep_hash);

/// A point with its resolved config, measurement options and content hash
/// (dependency hashes folded in). Order follows the manifest.
struct ResolvedPoint {
  const CampaignPoint* point = nullptr;
  NetworkConfig cfg;
  MeasureOptions measure;
  std::string key;
  std::string hash;
  /// Resolved capture dependency (replay points), else -1.
  int dep_index = -1;
};

/// Validate + resolve every point (captures first so dependency hashes
/// exist). On error returns an empty vector and sets *error.
std::vector<ResolvedPoint> resolve_manifest(const Manifest& m,
                                            std::string* error);

/// Plain-text manifest file I/O ("# noc-campaign v1" header; docs/CAMPAIGN.md
/// documents the stanza format). load returns nullptr and sets *error (when
/// non-null) with a file:line diagnostic on failure.
bool save_manifest(const std::string& path, const Manifest& m);
std::shared_ptr<Manifest> load_manifest(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace noc::campaign

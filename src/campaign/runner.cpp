#include "campaign/runner.hpp"

#include <cstdio>
#include <mutex>

#include "sim/thread_pool.hpp"

namespace noc::campaign {

std::vector<std::pair<std::string, double>> point_report(
    const PointResult& r) {
  std::vector<std::pair<std::string, double>> rep;
  rep.reserve(24);
  // Delivered flits/cycle at 1 GHz -> flits/second: the one metric every
  // point kind reports, and the column the perf gate compares.
  rep.emplace_back("items_per_second", r.recv_flits_per_cycle * 1e9);
  rep.emplace_back("offered_fpc", r.offered_fpc);
  rep.emplace_back("avg_latency", r.avg_latency);
  rep.emplace_back("recv_flits_per_cycle", r.recv_flits_per_cycle);
  rep.emplace_back("recv_gbps", r.recv_gbps);
  rep.emplace_back("bypass_rate", r.bypass_rate);
  rep.emplace_back("completed_packets",
                   static_cast<double>(r.completed_packets));
  rep.emplace_back("dropped_packets",
                   static_cast<double>(r.dropped_packets));
  rep.emplace_back("max_ejection_load", r.max_ejection_load);
  rep.emplace_back("max_bisection_load", r.max_bisection_load);
  rep.emplace_back("transactions", static_cast<double>(r.transactions));
  rep.emplace_back("avg_transaction_latency", r.avg_transaction_latency);
  rep.emplace_back("max_transaction_latency", r.max_transaction_latency);
  rep.emplace_back("transactions_per_cycle", r.transactions_per_cycle);
  rep.emplace_back("closed_loop_window",
                   static_cast<double>(r.closed_loop_window));
  rep.emplace_back("avg_probe_latency", r.avg_probe_latency);
  rep.emplace_back("avg_response_latency", r.avg_response_latency);
  // Latency order statistics (docs/OBSERVABILITY.md): always available --
  // the histogram in Metrics is unconditional. Report rows never feed the
  // content hash, so adding them leaves every existing hash valid.
  rep.emplace_back("p50_latency", static_cast<double>(r.p50_latency));
  rep.emplace_back("p95_latency", static_cast<double>(r.p95_latency));
  rep.emplace_back("p99_latency", static_cast<double>(r.p99_latency));
  rep.emplace_back("min_latency", static_cast<double>(r.min_latency));
  rep.emplace_back("max_latency", static_cast<double>(r.max_latency));
  // Stall attribution totals; zero unless the point enables telemetry.
  for (int c = 0; c < kNumStallClasses; ++c)
    rep.emplace_back(
        std::string("stall_") + stall_class_name(static_cast<StallClass>(c)),
        static_cast<double>(r.stall_cycles[c]));
  // The energy-event counts that differ across router configs -- the
  // ablation axis trace replay exists to compare.
  rep.emplace_back("xbar_traversals",
                   static_cast<double>(r.energy.xbar_traversals));
  rep.emplace_back("link_traversals",
                   static_cast<double>(r.energy.link_traversals));
  rep.emplace_back("buffer_writes",
                   static_cast<double>(r.energy.buffer_writes));
  rep.emplace_back("buffer_reads",
                   static_cast<double>(r.energy.buffer_reads));
  rep.emplace_back("vc_active_cycles",
                   static_cast<double>(r.energy.vc_active_cycles));
  rep.emplace_back("bypasses", static_cast<double>(r.energy.bypasses));
  rep.emplace_back("buffered_hops",
                   static_cast<double>(r.energy.buffered_hops));
  return rep;
}

std::vector<std::pair<std::string, double>> saturation_report(
    const SaturationResult& s) {
  std::vector<std::pair<std::string, double>> rep;
  rep.reserve(4 + 24);
  rep.emplace_back("items_per_second",
                   s.at_saturation.recv_flits_per_cycle * 1e9);
  rep.emplace_back("zero_load_latency", s.zero_load_latency);
  rep.emplace_back("saturation_offered", s.saturation_offered);
  rep.emplace_back("saturation_gbps", s.saturation_gbps);
  // The full point measured at saturation, prefixed to stay one flat map.
  for (auto& [key, value] : point_report(s.at_saturation))
    if (key != "items_per_second")
      rep.emplace_back("sat_" + key, value);
  return rep;
}

CampaignRecord make_record(
    const Manifest& m, const ResolvedPoint& r,
    std::vector<std::pair<std::string, double>> report) {
  CampaignRecord rec;
  rec.campaign = m.name;
  rec.point_id = r.point->id;
  rec.kind = point_kind_name(r.point->kind);
  rec.hash = r.hash;
  rec.host = current_host();
  rec.report = std::move(report);
  return rec;
}

namespace {

struct PointOutcome {
  bool executed = false;
  std::string error;  // non-empty = failed
};

/// Execute one resolved point and persist its record (and trace, for
/// captures). Runs on a worker thread; everything it touches is either
/// point-local or an atomically-renamed file keyed by the point hash.
PointOutcome execute_point(const Manifest& m, const ResultStore& store,
                           const ResolvedPoint& r,
                           const ResolvedPoint* dep) {
  PointOutcome out;
  out.executed = true;
  std::vector<std::pair<std::string, double>> report;
  switch (r.point->kind) {
    case PointKind::Measure:
      report = point_report(measure_workload(r.cfg, r.measure));
      break;
    case PointKind::Saturation:
      report = saturation_report(find_saturation(r.cfg, r.measure));
      break;
    case PointKind::Capture: {
      Trace trace;
      report = point_report(measure_workload(r.cfg, r.measure, &trace));
      if (!save_trace(store.trace_path(r.hash), trace)) {
        out.error = "cannot write trace " + store.trace_path(r.hash);
        return out;
      }
      report.emplace_back("trace_records",
                          static_cast<double>(trace.records.size()));
      break;
    }
    case PointKind::Replay: {
      // Always from the file, even when the capture ran moments ago in
      // this process: a fresh run and a resumed run must replay
      // byte-identical inputs.
      std::string err;
      const std::string path = store.trace_path(dep->hash);
      std::shared_ptr<Trace> trace = load_trace(path, &err);
      if (trace == nullptr) {
        out.error = err;
        return out;
      }
      const int ky = r.cfg.ky > 0 ? r.cfg.ky : r.cfg.k;
      if (std::string geo = trace_geometry_error(*trace, r.cfg.k, ky);
          !geo.empty()) {
        out.error = path + ": " + geo;
        return out;
      }
      NetworkConfig cfg = r.cfg;
      cfg.workload.trace.trace = std::move(trace);
      report = point_report(measure_workload(cfg, r.measure));
      break;
    }
  }
  if (!store.save_record(make_record(m, r, std::move(report))))
    out.error = "cannot write record " +
                store.record_path(r.point->id, r.hash);
  return out;
}

}  // namespace

RunSummary run_campaign(const Manifest& m, const ResultStore& store,
                        const RunOptions& opt) {
  RunSummary sum;
  std::string err;
  const auto resolved = resolve_manifest(m, &err);
  if (resolved.empty()) {
    sum.failed = 1;
    sum.errors.push_back(err);
    return sum;
  }
  if (!store.ensure_dirs()) {
    sum.failed = 1;
    sum.errors.push_back("cannot create results directory " + store.root());
    return sum;
  }

  // Decide the whole schedule up front so it is a pure function of
  // (manifest, store contents): the first `max_points` incomplete points in
  // manifest order, dependency wave first. Replays whose capture has no
  // trace on disk yet (its capture is deferred or later in the budget) are
  // deferred to the next invocation rather than failed.
  int budget = opt.max_points < 0 ? static_cast<int>(resolved.size())
                                  : opt.max_points;
  std::vector<const ResolvedPoint*> wave1, wave2;
  std::vector<bool> scheduled(resolved.size(), false);
  for (int wave = 0; wave < 2; ++wave) {
    for (size_t i = 0; i < resolved.size(); ++i) {
      const ResolvedPoint& r = resolved[i];
      const bool is_replay = r.point->kind == PointKind::Replay;
      if ((wave == 0) == is_replay) continue;
      // Each point is visited exactly once: non-replays in wave 0,
      // replays in wave 1.
      if (store.has_record(r.point->id, r.hash)) {
        ++sum.skipped;
        continue;
      }
      if (budget <= 0) {
        ++sum.deferred;
        continue;
      }
      if (is_replay) {
        const ResolvedPoint& dep = resolved[static_cast<size_t>(r.dep_index)];
        const bool trace_ready =
            store.has_record(dep.point->id, dep.hash) ||
            scheduled[static_cast<size_t>(r.dep_index)];
        if (!trace_ready) {
          ++sum.deferred;
          continue;
        }
      }
      (is_replay ? wave2 : wave1).push_back(&r);
      scheduled[i] = true;
      --budget;
    }
  }

  const int threads =
      opt.threads > 0 ? opt.threads : ThreadPool::hardware_threads();
  std::mutex mu;
  auto run_wave = [&](const std::vector<const ResolvedPoint*>& wave) {
    std::vector<PointOutcome> outcomes(wave.size());
    parallel_for(threads, static_cast<int>(wave.size()), [&](int i) {
      const auto idx = static_cast<size_t>(i);
      const ResolvedPoint& r = *wave[idx];
      const ResolvedPoint* dep =
          r.dep_index >= 0 ? &resolved[static_cast<size_t>(r.dep_index)]
                           : nullptr;
      outcomes[idx] = execute_point(m, store, r, dep);
      if (opt.verbose) {
        std::lock_guard<std::mutex> lock(mu);
        std::printf("  [%s] %s (%s)\n",
                    outcomes[idx].error.empty() ? "done" : "FAIL",
                    r.point->id.c_str(), r.hash.c_str());
        std::fflush(stdout);
      }
    });
    for (const PointOutcome& o : outcomes) {
      if (!o.error.empty()) {
        ++sum.failed;
        sum.errors.push_back(o.error);
      } else if (o.executed) {
        ++sum.executed;
      }
    }
  };
  run_wave(wave1);
  run_wave(wave2);
  return sum;
}

}  // namespace noc::campaign

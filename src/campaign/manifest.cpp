#include "campaign/manifest.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace noc::campaign {

const char* point_kind_name(PointKind k) {
  switch (k) {
    case PointKind::Measure: return "measure";
    case PointKind::Saturation: return "saturation";
    case PointKind::Capture: return "capture";
    case PointKind::Replay: return "replay";
  }
  return "?";
}

std::optional<PointKind> parse_point_kind(std::string_view name) {
  for (int i = 0; i < kNumPointKinds; ++i) {
    const auto k = static_cast<PointKind>(i);
    if (name == point_kind_name(k)) return k;
  }
  return std::nullopt;
}

const char* pipeline_preset_name(PipelinePreset p) {
  switch (p) {
    case PipelinePreset::Proposed: return "proposed";
    case PipelinePreset::LowswingMulticast: return "lowswing";
    case PipelinePreset::Baseline3: return "baseline3";
    case PipelinePreset::Baseline4: return "baseline4";
  }
  return "?";
}

std::optional<PipelinePreset> parse_pipeline_preset(std::string_view name) {
  for (int i = 0; i < kNumPipelinePresets; ++i) {
    const auto p = static_cast<PipelinePreset>(i);
    if (name == pipeline_preset_name(p)) return p;
  }
  return std::nullopt;
}

const CampaignPoint* Manifest::find(std::string_view id) const {
  for (const CampaignPoint& p : points)
    if (p.id == id) return &p;
  return nullptr;
}

namespace {

bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id)
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '.' && c != '=' && c != '/' && c != '-')
      return false;
  return true;
}

std::string point_error(const CampaignPoint& p, const std::string& what) {
  return "point '" + p.id + "': " + what;
}

}  // namespace

std::string validate_manifest(const Manifest& m) {
  if (m.name.empty() || !valid_id(m.name))
    return "campaign name must be non-empty ([A-Za-z0-9_.=/-])";
  if (m.default_warmup < 0 || m.default_window < 1)
    return "campaign defaults: warmup must be >= 0, window >= 1";
  if (m.points.empty()) return "manifest has no points";
  for (size_t i = 0; i < m.points.size(); ++i) {
    const CampaignPoint& p = m.points[i];
    if (!valid_id(p.id))
      return "point " + std::to_string(i) +
             ": id must be non-empty ([A-Za-z0-9_.=/-])";
    for (size_t j = 0; j < i; ++j)
      if (m.points[j].id == p.id) return point_error(p, "duplicate id");
    const int ky = p.ky > 0 ? p.ky : p.k;
    if (p.k < 2 || p.k > kMaxMeshRadix || ky < 2 || ky > kMaxMeshRadix ||
        p.k * ky > DestMask::kCapacity)
      return point_error(p, "mesh geometry out of range (2..kMaxMeshRadix, "
                            "k*ky <= DestMask capacity)");
    if (p.request_vcs < 0 || p.response_vcs < 0)
      return point_error(p, "VC overrides must be >= 0 (0 = preset)");
    if (p.step_threads < 1)
      return point_error(p, "step_threads must be >= 1");
    if (p.warmup < 0 || p.window < 0)
      return point_error(p, "warmup/window overrides must be >= 0");
    if (p.fault_links < 0 || p.fault_degrade < 0 || p.fault_kill_at < 0 ||
        p.fault_revive_after < 0)
      return point_error(p, "fault knobs must be >= 0");
    if (p.telemetry_sample_every < 0)
      return point_error(p, "telemetry-sample-every must be >= 0");
    if (p.telemetry_sample_every > 0 && !p.telemetry)
      return point_error(p,
                         "telemetry-sample-every needs 'telemetry on'");
    const int num_links = (p.k - 1) * ky + p.k * (ky - 1);
    if (p.fault_links > num_links)
      return point_error(p, "fault-links exceeds the mesh's link count");
    if (p.fault_degrade > p.k * ky)
      return point_error(p, "fault-degrade exceeds the node count");
    if (p.kind == PointKind::Saturation &&
        p.workload != WorkloadKind::OpenLoop)
      return point_error(p, "saturation points must be open-loop");
    if (p.kind == PointKind::Replay) {
      if (p.trace_from.empty())
        return point_error(p, "replay points need trace-from");
      const CampaignPoint* dep = m.find(p.trace_from);
      if (dep == nullptr)
        return point_error(p, "trace-from '" + p.trace_from +
                                  "' names no point in this manifest");
      if (dep->kind != PointKind::Capture)
        return point_error(p, "trace-from '" + p.trace_from +
                                  "' is not a capture point");
    } else if (!p.trace_from.empty()) {
      return point_error(p, "trace-from is only valid on replay points");
    }
    if (p.workload == WorkloadKind::ClosedLoop ||
        (p.kind == PointKind::Capture &&
         p.workload != WorkloadKind::OpenLoop)) {
      ClosedLoopConfig c;
      c.window = p.mshr_window;
      c.issue_prob = p.issue_prob;
      c.directory_latency = p.directory_latency;
      c.think_time = p.think_time;
      if (const char* err = c.validate()) return point_error(p, err);
    }
    if (p.workload == WorkloadKind::Trace && p.kind != PointKind::Replay)
      return point_error(p,
                         "trace workloads enter campaigns as replay points");
    // Lane-splitting policies need both lanes populated; catch it at
    // manifest time with a readable message instead of deep in Network
    // construction.
    NetworkConfig cfg = point_config(p);
    if (route_policy_uses_lanes(cfg.router.routing) &&
        !cfg.router.vc.lanes_available())
      return point_error(p, "policy needs >= 2 VCs per message class "
                            "(lane split; raise request-vcs/response-vcs)");
  }
  return {};
}

NetworkConfig point_config(const CampaignPoint& p) {
  NetworkConfig cfg;
  switch (p.pipeline) {
    case PipelinePreset::Proposed: cfg = NetworkConfig::proposed(p.k); break;
    case PipelinePreset::LowswingMulticast:
      cfg = NetworkConfig::lowswing_multicast(p.k);
      break;
    case PipelinePreset::Baseline3:
      cfg = NetworkConfig::baseline_3stage(p.k);
      break;
    case PipelinePreset::Baseline4:
      cfg = NetworkConfig::baseline_4stage(p.k);
      break;
  }
  cfg.ky = p.ky;
  cfg.router.routing = p.policy;
  if (p.request_vcs > 0) cfg.router.vc.vcs_per_mc[0] = p.request_vcs;
  if (p.response_vcs > 0) cfg.router.vc.vcs_per_mc[1] = p.response_vcs;
  cfg.activity_gating = p.gating;
  cfg.step_threads = p.step_threads;
  cfg.traffic.pattern = p.pattern;
  cfg.traffic.offered_flits_per_node_cycle = p.offered;
  cfg.traffic.identical_prbs = p.identical_prbs;
  cfg.traffic.seed = p.seed;
  cfg.workload.kind =
      p.kind == PointKind::Replay
          ? WorkloadKind::Trace
          : (p.kind == PointKind::Saturation ? WorkloadKind::OpenLoop
                                             : p.workload);
  cfg.workload.closed.window = p.mshr_window;
  cfg.workload.closed.issue_prob = p.issue_prob;
  cfg.workload.closed.directory_latency = p.directory_latency;
  cfg.workload.closed.think_time = p.think_time;
  if (p.fault_links > 0 || p.fault_degrade > 0) {
    const MeshGeometry geom(p.k, p.ky > 0 ? p.ky : p.k);
    cfg.fault = make_random_fault_plan(geom, p.fault_seed, p.fault_links,
                                       p.fault_degrade, p.fault_kill_at,
                                       p.fault_revive_after);
  }
  if (p.telemetry) {
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_every = p.telemetry_sample_every;
  }
  return cfg;
}

MeasureOptions point_measure(const Manifest& m, const CampaignPoint& p) {
  MeasureOptions opt;
  opt.warmup = p.warmup > 0 ? p.warmup : m.default_warmup;
  opt.window = p.window > 0 ? p.window : m.default_window;
  return opt;
}

namespace {

void append_kv(std::string& key, const char* name, const std::string& v) {
  key += name;
  key += '=';
  key += v;
  key += ';';
}

void append_int(std::string& key, const char* name, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  append_kv(key, name, buf);
}

void append_u64(std::string& key, const char* name, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  append_kv(key, name, buf);
}

void append_double(std::string& key, const char* name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  append_kv(key, name, buf);
}

}  // namespace

std::string campaign_point_key(const Manifest& m, const CampaignPoint& p,
                               const std::string& dep_hash) {
  // The key serializes the RESOLVED configuration, not the manifest fields:
  // two manifests that mean the same simulation hash identically, and any
  // future preset change flows into the hash automatically.
  const NetworkConfig cfg = point_config(p);
  const MeasureOptions opt = point_measure(m, p);
  std::string key;
  key.reserve(512);
  append_int(key, "schema", kCampaignSchemaVersion);
  append_kv(key, "kind", point_kind_name(p.kind));
  append_int(key, "k", cfg.k);
  append_int(key, "ky", cfg.ky);
  append_int(key, "pipeline", static_cast<int>(cfg.router.pipeline));
  append_int(key, "multicast", cfg.router.multicast ? 1 : 0);
  append_int(key, "partial_bypass", cfg.router.allow_partial_bypass ? 1 : 0);
  append_int(key, "la_priority", cfg.router.lookahead_priority ? 1 : 0);
  append_int(key, "sa1_actionable",
             cfg.router.actionable_sa1_requests ? 1 : 0);
  append_kv(key, "policy", route_policy_name(cfg.router.routing));
  append_int(key, "req_vcs", cfg.router.vc.vcs_per_mc[0]);
  append_int(key, "resp_vcs", cfg.router.vc.vcs_per_mc[1]);
  append_int(key, "req_depth", cfg.router.vc.depth_per_mc[0]);
  append_int(key, "resp_depth", cfg.router.vc.depth_per_mc[1]);
  append_int(key, "gating", cfg.activity_gating ? 1 : 0);
  append_int(key, "step_threads", cfg.step_threads);
  append_kv(key, "pattern", traffic_pattern_name(cfg.traffic.pattern));
  append_double(key, "offered", cfg.traffic.offered_flits_per_node_cycle);
  append_int(key, "identical_prbs", cfg.traffic.identical_prbs ? 1 : 0);
  append_int(key, "synced_bias", cfg.traffic.synced_dest_bias ? 1 : 0);
  append_int(key, "self_bcast",
             cfg.traffic.include_self_in_broadcast ? 1 : 0);
  append_u64(key, "seed", cfg.traffic.seed);
  append_double(key, "frac_bcast", cfg.traffic.frac_broadcast_request);
  append_double(key, "frac_ureq", cfg.traffic.frac_unicast_request);
  append_double(key, "frac_uresp", cfg.traffic.frac_unicast_response);
  append_kv(key, "workload", workload_kind_name(cfg.workload.kind));
  append_int(key, "mshr", cfg.workload.closed.window);
  append_double(key, "issue_prob", cfg.workload.closed.issue_prob);
  append_int(key, "dir_latency", cfg.workload.closed.directory_latency);
  append_int(key, "think", cfg.workload.closed.think_time);
  append_int(key, "resp_len", cfg.workload.closed.response_length);
  append_int(key, "warmup", opt.warmup);
  append_int(key, "window", opt.window);
  // Fault knobs hash CONDITIONALLY: pristine points keep their pre-fault
  // key byte-for-byte, so existing result stores stay valid across the
  // schema's fault extension.
  if (p.fault_links > 0 || p.fault_degrade > 0) {
    append_int(key, "fault_links", p.fault_links);
    append_int(key, "fault_degrade", p.fault_degrade);
    append_u64(key, "fault_seed", p.fault_seed);
    append_int(key, "fault_kill_at", p.fault_kill_at);
    append_int(key, "fault_revive_after", p.fault_revive_after);
  }
  // Telemetry knobs hash conditionally for the same reason: points without
  // them keep their existing key byte-for-byte.
  if (p.telemetry) {
    append_int(key, "telemetry", 1);
    append_int(key, "telemetry_sample", p.telemetry_sample_every);
  }
  if (!dep_hash.empty()) append_kv(key, "trace", dep_hash);
  return key;
}

std::string campaign_point_hash(const Manifest& m, const CampaignPoint& p,
                                const std::string& dep_hash) {
  const std::string key = campaign_point_key(m, p, dep_hash);
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, h);
  return hex;
}

std::vector<ResolvedPoint> resolve_manifest(const Manifest& m,
                                            std::string* error) {
  if (std::string err = validate_manifest(m); !err.empty()) {
    if (error != nullptr) *error = err;
    return {};
  }
  std::vector<ResolvedPoint> out(m.points.size());
  // Pass 1: everything without a trace dependency (captures included), so
  // pass 2's replay points can fold their capture's hash in.
  for (size_t i = 0; i < m.points.size(); ++i) {
    const CampaignPoint& p = m.points[i];
    if (p.kind == PointKind::Replay) continue;
    out[i].point = &p;
    out[i].cfg = point_config(p);
    out[i].measure = point_measure(m, p);
    out[i].key = campaign_point_key(m, p, {});
    out[i].hash = campaign_point_hash(m, p, {});
  }
  for (size_t i = 0; i < m.points.size(); ++i) {
    const CampaignPoint& p = m.points[i];
    if (p.kind != PointKind::Replay) continue;
    int dep = -1;
    for (size_t j = 0; j < m.points.size(); ++j)
      if (m.points[j].id == p.trace_from) dep = static_cast<int>(j);
    NOC_ASSERT(dep >= 0);  // validate_manifest guarantees it
    out[i].point = &p;
    out[i].cfg = point_config(p);
    out[i].measure = point_measure(m, p);
    out[i].dep_index = dep;
    const std::string& dep_hash = out[static_cast<size_t>(dep)].hash;
    out[i].key = campaign_point_key(m, p, dep_hash);
    out[i].hash = campaign_point_hash(m, p, dep_hash);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Manifest file I/O.

bool save_manifest(const std::string& path, const Manifest& m) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "# noc-campaign v1\n");
  std::fprintf(f, "campaign %s\n", m.name.c_str());
  std::fprintf(f, "warmup %" PRId64 "\n", m.default_warmup);
  std::fprintf(f, "window %" PRId64 "\n", m.default_window);
  for (const CampaignPoint& p : m.points) {
    std::fprintf(f, "\npoint %s\n", p.id.c_str());
    std::fprintf(f, "  kind %s\n", point_kind_name(p.kind));
    std::fprintf(f, "  pipeline %s\n", pipeline_preset_name(p.pipeline));
    std::fprintf(f, "  k %d\n", p.k);
    if (p.ky > 0) std::fprintf(f, "  ky %d\n", p.ky);
    std::fprintf(f, "  policy %s\n", route_policy_name(p.policy));
    if (p.request_vcs > 0) std::fprintf(f, "  request-vcs %d\n", p.request_vcs);
    if (p.response_vcs > 0)
      std::fprintf(f, "  response-vcs %d\n", p.response_vcs);
    if (!p.gating) std::fprintf(f, "  gating off\n");
    if (p.step_threads > 1)
      std::fprintf(f, "  step-threads %d\n", p.step_threads);
    std::fprintf(f, "  workload %s\n", workload_kind_name(p.workload));
    std::fprintf(f, "  pattern %s\n", traffic_pattern_name(p.pattern));
    std::fprintf(f, "  offered %.17g\n", p.offered);
    if (p.identical_prbs) std::fprintf(f, "  identical-prbs on\n");
    std::fprintf(f, "  seed %" PRIu64 "\n", p.seed);
    if (p.workload == WorkloadKind::ClosedLoop) {
      std::fprintf(f, "  mshr-window %d\n", p.mshr_window);
      std::fprintf(f, "  issue-prob %.17g\n", p.issue_prob);
      std::fprintf(f, "  directory-latency %" PRId64 "\n",
                   p.directory_latency);
      std::fprintf(f, "  think-time %" PRId64 "\n", p.think_time);
    }
    if (p.fault_links > 0 || p.fault_degrade > 0) {
      std::fprintf(f, "  fault-links %d\n", p.fault_links);
      std::fprintf(f, "  fault-degrade %d\n", p.fault_degrade);
      std::fprintf(f, "  fault-seed %" PRIu64 "\n", p.fault_seed);
      std::fprintf(f, "  fault-kill-at %" PRId64 "\n", p.fault_kill_at);
      std::fprintf(f, "  fault-revive-after %" PRId64 "\n",
                   p.fault_revive_after);
    }
    if (p.telemetry) {
      std::fprintf(f, "  telemetry on\n");
      if (p.telemetry_sample_every > 0)
        std::fprintf(f, "  telemetry-sample-every %" PRId64 "\n",
                     p.telemetry_sample_every);
    }
    if (p.warmup > 0) std::fprintf(f, "  warmup %" PRId64 "\n", p.warmup);
    if (p.window > 0) std::fprintf(f, "  window %" PRId64 "\n", p.window);
    if (!p.trace_from.empty())
      std::fprintf(f, "  trace-from %s\n", p.trace_from.c_str());
    std::fprintf(f, "end\n");
  }
  return std::fclose(f) == 0;
}

namespace {

struct ParseCtx {
  const std::string& path;
  int line = 0;
  std::string* error;

  std::shared_ptr<Manifest> fail(const std::string& what) const {
    if (error != nullptr)
      *error = path + ":" + std::to_string(line) + ": " + what;
    return nullptr;
  }
};

bool parse_on_off(const std::string& v, bool* out) {
  if (v == "on" || v == "true" || v == "1") return *out = true, true;
  if (v == "off" || v == "false" || v == "0") return *out = false, true;
  return false;
}

}  // namespace

std::shared_ptr<Manifest> load_manifest(const std::string& path,
                                        std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  ParseCtx ctx{path, 0, error};
  if (f == nullptr) return ctx.fail("cannot open manifest");
  auto m = std::make_shared<Manifest>();
  CampaignPoint* cur = nullptr;
  bool saw_header = false;
  char buf[512];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    ++ctx.line;
    std::string line(buf);
    if (!saw_header) {
      if (line.rfind("# noc-campaign v1", 0) != 0) {
        std::fclose(f);
        return ctx.fail("missing '# noc-campaign v1' header");
      }
      saw_header = true;
      continue;
    }
    std::istringstream is(line);
    std::string kw;
    if (!(is >> kw) || kw[0] == '#') continue;
    std::string val;
    std::getline(is >> std::ws, val);
    while (!val.empty() && (val.back() == '\n' || val.back() == '\r' ||
                            val.back() == ' ' || val.back() == '\t'))
      val.pop_back();
    auto fail = [&](const std::string& what) {
      std::fclose(f);
      return ctx.fail(what);
    };
    if (cur == nullptr) {
      if (kw == "campaign") {
        m->name = val;
      } else if (kw == "warmup") {
        m->default_warmup = std::atoll(val.c_str());
      } else if (kw == "window") {
        m->default_window = std::atoll(val.c_str());
      } else if (kw == "point") {
        m->points.emplace_back();
        cur = &m->points.back();
        cur->id = val;
      } else {
        return fail("unknown campaign-level keyword '" + kw + "'");
      }
      continue;
    }
    // Inside a point stanza.
    if (kw == "end") {
      cur = nullptr;
    } else if (kw == "kind") {
      auto k = parse_point_kind(val);
      if (!k) return fail("unknown point kind '" + val + "'");
      cur->kind = *k;
    } else if (kw == "pipeline") {
      auto p = parse_pipeline_preset(val);
      if (!p) return fail("unknown pipeline preset '" + val + "'");
      cur->pipeline = *p;
    } else if (kw == "k") {
      cur->k = std::atoi(val.c_str());
    } else if (kw == "ky") {
      cur->ky = std::atoi(val.c_str());
    } else if (kw == "policy") {
      auto p = parse_route_policy(val);
      if (!p) return fail("unknown routing policy '" + val + "'");
      cur->policy = *p;
    } else if (kw == "request-vcs") {
      cur->request_vcs = std::atoi(val.c_str());
    } else if (kw == "response-vcs") {
      cur->response_vcs = std::atoi(val.c_str());
    } else if (kw == "gating") {
      if (!parse_on_off(val, &cur->gating))
        return fail("gating must be on|off");
    } else if (kw == "step-threads") {
      cur->step_threads = std::atoi(val.c_str());
    } else if (kw == "workload") {
      if (val == workload_kind_name(WorkloadKind::OpenLoop) ||
          val == "open") {
        cur->workload = WorkloadKind::OpenLoop;
      } else if (val == workload_kind_name(WorkloadKind::ClosedLoop) ||
                 val == "closed") {
        cur->workload = WorkloadKind::ClosedLoop;
      } else if (val == workload_kind_name(WorkloadKind::Trace)) {
        cur->workload = WorkloadKind::Trace;
      } else {
        return fail("unknown workload '" + val + "'");
      }
    } else if (kw == "pattern") {
      auto p = parse_traffic_pattern(val);
      if (!p) return fail("unknown traffic pattern '" + val + "'");
      cur->pattern = *p;
    } else if (kw == "offered") {
      cur->offered = std::atof(val.c_str());
    } else if (kw == "identical-prbs") {
      if (!parse_on_off(val, &cur->identical_prbs))
        return fail("identical-prbs must be on|off");
    } else if (kw == "seed") {
      cur->seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (kw == "mshr-window") {
      cur->mshr_window = std::atoi(val.c_str());
    } else if (kw == "issue-prob") {
      cur->issue_prob = std::atof(val.c_str());
    } else if (kw == "directory-latency") {
      cur->directory_latency = std::atoll(val.c_str());
    } else if (kw == "think-time") {
      cur->think_time = std::atoll(val.c_str());
    } else if (kw == "fault-links") {
      cur->fault_links = std::atoi(val.c_str());
    } else if (kw == "fault-degrade") {
      cur->fault_degrade = std::atoi(val.c_str());
    } else if (kw == "fault-seed") {
      cur->fault_seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (kw == "fault-kill-at") {
      cur->fault_kill_at = std::atoll(val.c_str());
    } else if (kw == "fault-revive-after") {
      cur->fault_revive_after = std::atoll(val.c_str());
    } else if (kw == "telemetry") {
      if (!parse_on_off(val, &cur->telemetry))
        return fail("telemetry must be on|off");
    } else if (kw == "telemetry-sample-every") {
      cur->telemetry_sample_every = std::atoll(val.c_str());
    } else if (kw == "warmup") {
      cur->warmup = std::atoll(val.c_str());
    } else if (kw == "window") {
      cur->window = std::atoll(val.c_str());
    } else if (kw == "trace-from") {
      cur->trace_from = val;
    } else {
      return fail("unknown point keyword '" + kw + "'");
    }
  }
  std::fclose(f);
  if (cur != nullptr) {
    ctx.line += 1;
    return ctx.fail("point '" + cur->id + "' not closed with 'end'");
  }
  if (std::string err = validate_manifest(*m); !err.empty()) {
    ctx.line = 0;
    return ctx.fail(err);
  }
  return m;
}

}  // namespace noc::campaign

#pragma once
// Content-addressed record store for campaign results (docs/CAMPAIGN.md).
//
// Layout under one results root:
//
//   <root>/records/<id-sanitized>.<hash>.json   one record per point
//   <root>/traces/<hash>.trace                  capture points' traces
//
// The HASH in the filename is the point's content hash (manifest.hpp): a
// record is valid for exactly one resolved configuration, so "is this point
// done?" is a filename probe plus a validating parse -- that is the whole
// crash-resume story. Records are written atomically (tmp + rename): a
// campaign killed mid-write leaves at worst a *.tmp file the next run
// ignores, never a half-record that parses.
//
// Records are deliberately timestamp-free: the same point run serially,
// in parallel, or across a kill/resume must produce BIT-IDENTICAL record
// files (tests/test_campaign.cpp diffs the bytes). Host context (core
// count, thread-budget grant) is recorded -- it is deterministic per host
// and makes wall-clock-adjacent numbers interpretable -- but wall-clock
// itself stays in the CLI's console output.

#include <string>
#include <utility>
#include <vector>

#include "campaign/manifest.hpp"

namespace noc::campaign {

/// Execution-host facts recorded in every record (satellite: the
/// 0.88x-on-1-core speedup number needs this to be interpretable).
struct HostContext {
  unsigned hardware_concurrency = 0;
  int thread_budget = 0;
};
HostContext current_host();

/// One completed point. `report` is an ordered metric -> value map,
/// serialized verbatim as the record's "report" object; the runner puts an
/// "items_per_second" metric first so gathered reports slot straight into
/// tools/check_perf_regression.py.
struct CampaignRecord {
  int schema = kCampaignSchemaVersion;
  std::string campaign;
  std::string point_id;
  std::string kind;  // point_kind_name
  std::string hash;  // 16 hex chars, the content hash
  HostContext host;
  std::vector<std::pair<std::string, double>> report;
};

/// `id` with '/' flattened for use in a filename ('/' is legal in point
/// ids; records live in one flat directory).
std::string sanitize_id(const std::string& id);

class ResultStore {
 public:
  explicit ResultStore(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }
  std::string records_dir() const { return root_ + "/records"; }
  std::string traces_dir() const { return root_ + "/traces"; }
  std::string record_path(const std::string& point_id,
                          const std::string& hash) const;
  std::string trace_path(const std::string& hash) const;

  /// mkdir -p for root/records/traces. False on failure.
  bool ensure_dirs() const;

  /// True when a VALID record for (point_id, hash) exists: parses, schema
  /// and hash match, status complete. A stale record from an older config
  /// has a different hash, hence a different filename, hence false.
  bool has_record(const std::string& point_id, const std::string& hash) const;

  bool load_record(const std::string& point_id, const std::string& hash,
                   CampaignRecord* out) const;

  /// Atomic write (tmp + rename) of the canonical serialization.
  bool save_record(const CampaignRecord& rec) const;

  /// Exact bytes save_record(rec) writes -- tests diff these across
  /// serial/parallel/resumed executions.
  static std::string serialize_record(const CampaignRecord& rec);

  /// Delete the records and traces belonging to this manifest's resolved
  /// points. Returns how many files were removed.
  int remove_campaign(const Manifest& m) const;

 private:
  std::string root_;
};

/// Merge a manifest's records into one google-benchmark-schema report at
/// `out_path` (rows named "<campaign>/<point-id>", items_per_second plus
/// every other report metric as extras) consumable by
/// tools/check_perf_regression.py. Points without a valid record are
/// returned in `missing`; the report is still written for the rest.
struct GatherResult {
  int complete = 0;
  std::vector<std::string> missing;
  bool wrote = false;
};
GatherResult gather_campaign(const Manifest& m, const ResultStore& store,
                             const std::string& out_path);

}  // namespace noc::campaign

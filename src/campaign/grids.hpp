#pragma once
// The repo's own sweep grids expressed as campaign manifests: the same
// (config, workload, policy, k) points examples/design_space_sweep.cpp and
// bench/large_k_scaling.cpp build by hand, declared once so they can run
// resumably under tools/campaign (and so those binaries and the campaign
// agree on what "the design-space sweep" is -- the binaries keep their
// console tables; the manifests are the durable record).

#include "campaign/manifest.hpp"

namespace noc::campaign {

/// examples/design_space_sweep.cpp as a manifest: radix sweep (2..8 plus
/// even radices up to max_k), pattern sweep, routing-policy x
/// {uniform, transpose}, and the four-pipeline sweep under mixed traffic --
/// all saturation searches.
Manifest design_space_manifest(int max_k = 4, int step_threads = 1);

/// bench/large_k_scaling.cpp's point grid: per radix in {4, 8, 12, 16} the
/// paper-budget XY continuity row plus {xy, o1turn, adaptive} at the
/// lane-capable 8-VC request budget. `short_mode` uses the CI-sized
/// windows.
Manifest large_k_manifest(bool short_mode = false, int step_threads = 1);

/// Capture-once/replay-many router ablation (docs/CAMPAIGN.md): one
/// closed-loop capture on the proposed k x k router, replayed across the
/// other three pipeline presets and a gating-off proposed build -- the
/// fast inner loop for router ablation under identical offered traffic.
Manifest trace_ablation_manifest(int k = 4);

/// A seconds-sized campaign for CI smoke and tests: two open-loop measure
/// points, one saturation point, one capture and two replays at k in
/// {2, 4} with tiny windows.
Manifest smoke_manifest();

}  // namespace noc::campaign

#include "campaign/result_store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/thread_pool.hpp"

namespace noc::campaign {

HostContext current_host() {
  HostContext h;
  h.hardware_concurrency = std::thread::hardware_concurrency();
  h.thread_budget = thread_budget::total();
  return h;
}

std::string sanitize_id(const std::string& id) {
  std::string out = id;
  for (char& c : out)
    if (c == '/') c = '_';
  return out;
}

std::string ResultStore::record_path(const std::string& point_id,
                                     const std::string& hash) const {
  return records_dir() + "/" + sanitize_id(point_id) + "." + hash + ".json";
}

std::string ResultStore::trace_path(const std::string& hash) const {
  return traces_dir() + "/" + hash + ".trace";
}

namespace {

bool mkdir_p(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return true;
  if (errno != ENOENT) return false;
  const size_t slash = dir.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return false;
  if (!mkdir_p(dir.substr(0, slash))) return false;
  return ::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string s;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, n);
  std::fclose(f);
  return s;
}

// Records are self-written with a fixed serialization (below), so the
// "parser" is a pair of key scanners, not a JSON library. Anything that
// does not scan cleanly fails validation and the point reruns -- the safe
// direction for a result cache.

bool scan_string(const std::string& body, const char* key,
                 std::string* out) {
  const std::string pat = std::string("\"") + key + "\": \"";
  const size_t at = body.find(pat);
  if (at == std::string::npos) return false;
  const size_t start = at + pat.size();
  const size_t end = body.find('"', start);
  if (end == std::string::npos) return false;
  *out = body.substr(start, end - start);
  return true;
}

bool scan_number(const std::string& body, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\": ";
  const size_t at = body.find(pat);
  if (at == std::string::npos) return false;
  char* end = nullptr;
  const char* start = body.c_str() + at + pat.size();
  *out = std::strtod(start, &end);
  return end != start;
}

}  // namespace

bool ResultStore::ensure_dirs() const {
  return mkdir_p(records_dir()) && mkdir_p(traces_dir());
}

std::string ResultStore::serialize_record(const CampaignRecord& rec) {
  std::string out;
  out.reserve(1024);
  char line[192];
  std::snprintf(line, sizeof line,
                "{\n"
                "  \"schema\": %d,\n"
                "  \"campaign\": \"%s\",\n"
                "  \"point\": \"%s\",\n"
                "  \"kind\": \"%s\",\n"
                "  \"hash\": \"%s\",\n"
                "  \"status\": \"complete\",\n",
                rec.schema, rec.campaign.c_str(), rec.point_id.c_str(),
                rec.kind.c_str(), rec.hash.c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "  \"host\": {\n"
                "    \"hardware_concurrency\": %u,\n"
                "    \"thread_budget\": %d\n"
                "  },\n"
                "  \"report\": {\n",
                rec.host.hardware_concurrency, rec.host.thread_budget);
  out += line;
  for (size_t i = 0; i < rec.report.size(); ++i) {
    std::snprintf(line, sizeof line, "    \"%s\": %.17g%s\n",
                  rec.report[i].first.c_str(), rec.report[i].second,
                  i + 1 < rec.report.size() ? "," : "");
    out += line;
  }
  out += "  }\n}\n";
  return out;
}

bool ResultStore::save_record(const CampaignRecord& rec) const {
  const std::string path = record_path(rec.point_id, rec.hash);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = serialize_record(rec);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ResultStore::load_record(const std::string& point_id,
                              const std::string& hash,
                              CampaignRecord* out) const {
  const std::string body = read_file(record_path(point_id, hash));
  if (body.empty()) return false;
  CampaignRecord rec;
  double schema = 0;
  std::string status;
  if (!scan_number(body, "schema", &schema) ||
      static_cast<int>(schema) != kCampaignSchemaVersion)
    return false;
  if (!scan_string(body, "status", &status) || status != "complete")
    return false;
  if (!scan_string(body, "hash", &rec.hash) || rec.hash != hash) return false;
  if (!scan_string(body, "point", &rec.point_id) || rec.point_id != point_id)
    return false;
  if (!scan_string(body, "campaign", &rec.campaign)) return false;
  if (!scan_string(body, "kind", &rec.kind)) return false;
  double hw = 0, budget = 0;
  if (scan_number(body, "hardware_concurrency", &hw))
    rec.host.hardware_concurrency = static_cast<unsigned>(hw);
  if (scan_number(body, "thread_budget", &budget))
    rec.host.thread_budget = static_cast<int>(budget);
  // The report object: "name": value pairs between the "report" brace and
  // the closing brace.
  const size_t rep = body.find("\"report\": {");
  if (rep == std::string::npos) return false;
  size_t pos = rep + std::strlen("\"report\": {");
  const size_t rep_end = body.find('}', pos);
  if (rep_end == std::string::npos) return false;
  while (true) {
    const size_t q0 = body.find('"', pos);
    if (q0 == std::string::npos || q0 > rep_end) break;
    const size_t q1 = body.find('"', q0 + 1);
    if (q1 == std::string::npos || q1 > rep_end) return false;
    const size_t colon = body.find(':', q1);
    if (colon == std::string::npos || colon > rep_end) return false;
    char* end = nullptr;
    const char* start = body.c_str() + colon + 1;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    rec.report.emplace_back(body.substr(q0 + 1, q1 - q0 - 1), v);
    pos = static_cast<size_t>(end - body.c_str());
  }
  if (rec.report.empty()) return false;
  *out = std::move(rec);
  return true;
}

bool ResultStore::has_record(const std::string& point_id,
                             const std::string& hash) const {
  CampaignRecord rec;
  return load_record(point_id, hash, &rec);
}

int ResultStore::remove_campaign(const Manifest& m) const {
  std::string err;
  const auto resolved = resolve_manifest(m, &err);
  int removed = 0;
  for (const ResolvedPoint& r : resolved) {
    if (std::remove(record_path(r.point->id, r.hash).c_str()) == 0)
      ++removed;
    if (r.point->kind == PointKind::Capture &&
        std::remove(trace_path(r.hash).c_str()) == 0)
      ++removed;
  }
  return removed;
}

GatherResult gather_campaign(const Manifest& m, const ResultStore& store,
                             const std::string& out_path) {
  GatherResult g;
  std::string err;
  const auto resolved = resolve_manifest(m, &err);
  std::string out;
  out.reserve(4096);
  char line[192];
  std::snprintf(line, sizeof line,
                "{\n"
                "  \"context\": {\n"
                "    \"campaign\": \"%s\",\n"
                "    \"schema\": %d,\n"
                "    \"points\": %zu\n"
                "  },\n"
                "  \"benchmarks\": [\n",
                m.name.c_str(), kCampaignSchemaVersion, resolved.size());
  out += line;
  bool first = true;
  for (const ResolvedPoint& r : resolved) {
    CampaignRecord rec;
    if (!store.load_record(r.point->id, r.hash, &rec)) {
      g.missing.push_back(r.point->id);
      continue;
    }
    ++g.complete;
    if (!first) out += ",\n";
    first = false;
    std::snprintf(line, sizeof line,
                  "    {\n"
                  "      \"name\": \"%s/%s\",\n"
                  "      \"run_type\": \"iteration\",\n"
                  "      \"hash\": \"%s\",\n"
                  "      \"kind\": \"%s\"",
                  m.name.c_str(), r.point->id.c_str(), rec.hash.c_str(),
                  rec.kind.c_str());
    out += line;
    for (const auto& [key, value] : rec.report) {
      std::snprintf(line, sizeof line, ",\n      \"%s\": %.17g", key.c_str(),
                    value);
      out += line;
    }
    out += "\n    }";
  }
  out += "\n  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) return g;
  g.wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
            std::fclose(f) == 0;
  return g;
}

}  // namespace noc::campaign

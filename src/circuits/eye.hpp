#pragma once
// Vertical-eye model for repeated vs. repeaterless low-swing links (paper
// Fig 12 / Appendix C): 2mm link traversal realized either as two 1mm
// RSD-repeated segments (one extra cycle, fresh swing each segment) or as a
// single 2mm repeaterless drive. The repeaterless wire settles through a
// larger RC, so wire-resistance variation erodes its eye faster; the
// repeated version costs ~28% more energy and one extra cycle.

#include <vector>

#include "circuits/rsd.hpp"

namespace noc::ckt {

struct EyeConfig {
  RsdParams rsd;
  double data_rate_gbps = 2.5;  // paper's Fig 12 point
  double total_mm = 2.0;
};

struct EyePoint {
  double r_variation = 0;      // fractional wire-R deviation (e.g. +0.2)
  double eye_repeated_mv = 0;  // 1mm-repeated configuration
  double eye_repeaterless_mv = 0;
};

/// Vertical eye (mV) of a single RSD segment of `mm` at the configured data
/// rate, with wire resistance scaled by (1 + r_variation).
double vertical_eye_mv(const EyeConfig& cfg, double mm, double r_variation);

/// Sweep of Fig 12: repeated = per-1mm-segment eye (regenerated at the
/// repeater), repeaterless = full-length eye.
std::vector<EyePoint> eye_vs_resistance_variation(
    const std::vector<double>& r_variations, const EyeConfig& cfg = {});

/// Energy per bit of the two configurations (fJ); repeated should come out
/// ~28% higher (paper Appendix C).
double repeated_energy_per_bit_fj(const EyeConfig& cfg = {});
double repeaterless_energy_per_bit_fj(const EyeConfig& cfg = {});

/// Latency in cycles at the network clock: repeated takes one extra cycle.
int repeated_extra_cycles();

}  // namespace noc::ckt

#include "circuits/montecarlo.hpp"

#include "common/assert.hpp"

namespace noc::ckt {

SwingTradeoffPoint evaluate_swing(double swing_v,
                                  const MonteCarloConfig& cfg) {
  NOC_EXPECTS(swing_v > 0.0 && cfg.runs > 0);
  SenseAmp sa(cfg.sense_amp);
  TriStateRsd rsd(cfg.rsd);
  Xoshiro256 rng(cfg.seed ^ static_cast<uint64_t>(swing_v * 1e6));

  int failures = 0;
  for (int i = 0; i < cfg.runs; ++i)
    if (!sa.sample_resolves(swing_v, rng)) ++failures;

  SwingTradeoffPoint pt;
  pt.swing_v = swing_v;
  pt.energy_per_bit_fj = rsd.energy_per_bit_fj(cfg.link_mm, swing_v);
  pt.failure_prob_mc =
      static_cast<double>(failures) / static_cast<double>(cfg.runs);
  pt.failure_prob_analytic = sa.failure_probability(swing_v);
  pt.sigma_margin = sa.sigma_margin(swing_v);
  return pt;
}

std::vector<SwingTradeoffPoint> swing_tradeoff_sweep(
    const std::vector<double>& swings_v, const MonteCarloConfig& cfg) {
  std::vector<SwingTradeoffPoint> out;
  out.reserve(swings_v.size());
  for (double s : swings_v) out.push_back(evaluate_swing(s, cfg));
  return out;
}

double choose_min_swing_for_sigma(double target_sigma,
                                  const MonteCarloConfig& cfg, double step_v) {
  NOC_EXPECTS(target_sigma > 0.0 && step_v > 0.0);
  SenseAmp sa(cfg.sense_amp);
  for (double s = step_v; s < 1.2; s += step_v)
    if (sa.sigma_margin(s) >= target_sigma) return s;
  return 1.2;
}

}  // namespace noc::ckt

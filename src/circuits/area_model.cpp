#include "circuits/area_model.hpp"

namespace noc::ckt {

AreaReport router_area(const AreaConfig& cfg) {
  AreaReport r;
  const double crosspoints =
      static_cast<double>(cfg.ports) * cfg.ports * cfg.flit_bits;
  r.xbar_fullswing_um2 = crosspoints * cfg.um2_per_xbar_crosspoint_bit;
  r.xbar_lowswing_um2 = r.xbar_fullswing_um2 * cfg.differential_factor *
                        cfg.layout_restriction_factor;

  const double buffers = static_cast<double>(cfg.ports) *
                         cfg.buffers_per_port * cfg.flit_bits *
                         cfg.um2_per_buffer_bit;
  const double vc_state =
      static_cast<double>(cfg.ports) * cfg.vcs_per_port * cfg.um2_per_vc_state;
  const double base_logic = cfg.allocator_um2 + cfg.misc_logic_um2;

  r.router_fullswing_um2 =
      r.xbar_fullswing_um2 + buffers + vc_state + base_logic;
  r.bypass_overhead_um2 = cfg.bypass_logic_fraction * r.router_fullswing_um2;
  r.router_lowswing_um2 = (r.router_fullswing_um2 - r.xbar_fullswing_um2) +
                          r.xbar_lowswing_um2 + r.bypass_overhead_um2 +
                          cfg.lowswing_integration_um2;
  return r;
}

}  // namespace noc::ckt

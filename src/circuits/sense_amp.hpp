#pragma once
// Sense-amplifier model (paper Sec 4.3): the primary noise source of the
// low-swing datapath is the sense-amp input offset from process variation.
// The chip chose a 300mV swing for >3-sigma reliability from 1000-run
// Monte-Carlo Spice; we model the offset as N(0, sigma) with sigma set so
// that a 300mV differential swing (±150mV at the input) is exactly 3 sigma.

#include "common/rng.hpp"

namespace noc::ckt {

struct SenseAmpParams {
  double offset_sigma_v = 0.050;  // 150mV margin / 3 sigma
  /// Residual ISI / attenuation eats into the margin: the usable input is
  /// eye_fraction * (swing / 2).
  double eye_fraction = 1.0;
};

class SenseAmp {
 public:
  explicit SenseAmp(const SenseAmpParams& p = {}) : p_(p) {}

  /// Draw one process-variation instance; returns true if it resolves a
  /// differential input of `swing_v` correctly.
  bool sample_resolves(double swing_v, Xoshiro256& rng) const;

  /// Analytic failure probability: P(|offset| > margin).
  double failure_probability(double swing_v) const;

  /// Margin in sigmas at `swing_v`.
  double sigma_margin(double swing_v) const;

  const SenseAmpParams& params() const { return p_; }

 private:
  SenseAmpParams p_;
};

}  // namespace noc::ckt

#include "circuits/timing_model.hpp"

namespace noc::ckt {

namespace {

CriticalPathReport evaluate(std::vector<PathComponent> comps,
                            const TimingConfig& cfg, bool fabricated) {
  CriticalPathReport r;
  r.components = std::move(comps);
  for (const auto& c : r.components) {
    r.pre_layout_ps += c.logic_ps;
    r.post_layout_ps += c.logic_ps * cfg.layout_logic_factor + c.wire_ps;
  }
  r.measured_ps = fabricated ? r.post_layout_ps * cfg.silicon_factor : 0.0;
  return r;
}

std::vector<PathComponent> baseline_components() {
  // Stage 2: grant-enable from the stage-1 winner latch, 5x5 matrix
  // arbitration, grant decode, crossbar select drive, credit check, and
  // register overhead (clk->q + setup + skew). Pre-layout sums to 549ps.
  return {
      {"clk->q + setup + skew", 90.0, 6.0},
      {"stage-1 winner request fanout", 59.0, 8.0},
      {"mSA-II 5x5 matrix arbiter", 160.0, 12.0},
      {"grant decode + VC credit check", 60.0, 6.0},
      {"crossbar select driver setup", 180.0, 22.0},
  };
}

std::vector<PathComponent> proposed_components() {
  // The lookahead path inserts a priority mux between incoming lookaheads
  // and buffered requests before the matrix arbiter (44ps of logic, 1.08x
  // pre-layout) and brings long inter-router lookahead wires plus bypass
  // enable routing into the stage (post-layout wire adders, 1.21x).
  auto comps = baseline_components();
  comps.insert(comps.begin() + 2,
               PathComponent{"lookahead priority mux", 44.0, 33.0});
  comps.push_back(PathComponent{"lookahead wire span + bypass enable", 0.0,
                                54.0});
  return comps;
}

}  // namespace

CriticalPathReport baseline_critical_path(const TimingConfig& cfg) {
  return evaluate(baseline_components(), cfg, /*fabricated=*/false);
}

CriticalPathReport proposed_critical_path(const TimingConfig& cfg) {
  return evaluate(proposed_components(), cfg, /*fabricated=*/true);
}

double prelayout_overhead(const TimingConfig& cfg) {
  return proposed_critical_path(cfg).pre_layout_ps /
         baseline_critical_path(cfg).pre_layout_ps;
}

double postlayout_overhead(const TimingConfig& cfg) {
  return proposed_critical_path(cfg).post_layout_ps /
         baseline_critical_path(cfg).post_layout_ps;
}

}  // namespace noc::ckt

#pragma once
// Router area model (paper Table 4 / Sec 4.3).
//
// The low-swing crossbar pays 3.1x over a synthesized full-swing crossbar:
// differential signaling doubles the wire count and noise-sensitive custom
// placement restricts packing. At the router level the overhead dilutes to
// 1.4x; virtual bypassing adds ~5% (Sec 1 lessons).

namespace noc::ckt {

struct AreaConfig {
  int flit_bits = 64;
  int ports = 5;
  int buffers_per_port = 10;
  int vcs_per_port = 6;

  // um^2 building blocks (45nm SOI standard-cell / custom estimates,
  // fitted so the totals land on the paper's Table 4 values).
  double um2_per_xbar_crosspoint_bit = 16.775;  // synthesized full-swing
  double differential_factor = 2.0;             // low-swing wire doubling
  double layout_restriction_factor = 1.55;      // shielding + keepouts
  double um2_per_buffer_bit = 38.0;             // latch-based FIFO cell
  double um2_per_vc_state = 520.0;              // bookkeeping per VC
  double allocator_um2 = 21000.0;               // mSA-I + mSA-II + VA
  double misc_logic_um2 = 42190.0;  // NRC, credit tracking, clocking, DFT
  double bypass_logic_fraction = 0.05;          // paper: ~5% for bypassing
  double lowswing_integration_um2 = 23650.0;    // LVDD grid, RSD keepouts
};

struct AreaReport {
  double xbar_fullswing_um2 = 0;
  double xbar_lowswing_um2 = 0;
  double router_fullswing_um2 = 0;  // baseline router, synthesized xbar
  double router_lowswing_um2 = 0;   // fabricated router (bypass + RSD xbar)
  double xbar_overhead() const { return xbar_lowswing_um2 / xbar_fullswing_um2; }
  double router_overhead() const {
    return router_lowswing_um2 / router_fullswing_um2;
  }
  double bypass_overhead_um2 = 0;
};

AreaReport router_area(const AreaConfig& cfg = {});

}  // namespace noc::ckt

#include "circuits/xbar_circuit.hpp"

#include "common/assert.hpp"

namespace noc::ckt {

double xbar_dynamic_power_uw(int multicast_count,
                             const XbarCircuitConfig& cfg) {
  NOC_EXPECTS(multicast_count >= 1 && multicast_count <= cfg.ports * cfg.ports);
  TriStateRsd rsd(cfg.rsd);
  // Each granted output drives its vertical wire plus the attached link.
  const double per_output_fj =
      rsd.energy_per_bit_fj(cfg.vertical_wire_mm + cfg.link_mm);
  const double e_bit_fj =
      cfg.input_fixed_fj_per_bit + multicast_count * per_output_fj;
  // fJ/bit * Gbit/s = uW.
  return e_bit_fj * cfg.data_rate_gbps;
}

double xbar_energy_per_delivered_bit_fj(int multicast_count,
                                        const XbarCircuitConfig& cfg) {
  const double p_uw = xbar_dynamic_power_uw(multicast_count, cfg);
  // Delivered bandwidth scales with the multicast count.
  return p_uw / (cfg.data_rate_gbps * multicast_count);
}

}  // namespace noc::ckt

#include "circuits/wire.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace noc::ckt {

double wire_delay_ps(const WireParams& w, double mm, double r_drv_ohm,
                     double c_load_ff) {
  NOC_EXPECTS(mm >= 0.0 && r_drv_ohm >= 0.0);
  const double r_wire = w.resistance(mm);
  const double c_wire = w.capacitance_ff(mm);
  // ps = Ohm * fF * 1e-3.
  const double t_drv = r_drv_ohm * (c_wire + c_load_ff) * 1e-3;
  const double t_wire = (0.38 * r_wire * c_wire + r_wire * c_load_ff) * 1e-3;
  return t_drv + t_wire;
}

double settled_fraction(double t_ps, double tau_ps) {
  NOC_EXPECTS(tau_ps > 0.0);
  return 1.0 - std::exp(-t_ps / tau_ps);
}

}  // namespace noc::ckt

#pragma once
// On-chip wire model for the datapath links (paper Sec 3.4: 64-bit links of
// 0.15um-width / 0.30um-space fully shielded differential wires).
//
// Distributed RC with Elmore-style delay; resistance/capacitance per mm are
// 45nm intermediate-metal values for that geometry.

namespace noc::ckt {

struct WireParams {
  double r_ohm_per_mm = 500.0;  // 0.15um-wide Cu, barrier included
  double c_ff_per_mm = 230.0;   // per wire, shielded (ground both sides)
  /// Differential pairs switch two wires per transition.
  bool differential = true;

  double resistance(double mm) const { return r_ohm_per_mm * mm; }
  double capacitance_ff(double mm) const { return c_ff_per_mm * mm; }
  double switched_cap_ff(double mm) const {
    return (differential ? 2.0 : 1.0) * capacitance_ff(mm);
  }
};

/// Distributed-RC wire delay (ps): 0.38 * R * C for the wire itself plus
/// the source-resistance term R_drv * C_total. Capacitance in fF,
/// resistance in ohms -> time in ps (1 fF * 1 Ohm = 1e-3 ps; handled here).
double wire_delay_ps(const WireParams& w, double mm, double r_drv_ohm,
                     double c_load_ff = 0.0);

/// Single-pole settling fraction after `t_ps` for a lumped tau (used by the
/// eye model): 1 - exp(-t/tau).
double settled_fraction(double t_ps, double tau_ps);

}  // namespace noc::ckt

#include "circuits/rsd.hpp"

#include "common/assert.hpp"

namespace noc::ckt {

double TriStateRsd::energy_per_bit_fj(double mm) const {
  return energy_per_bit_fj(mm, p_.swing_v);
}

double TriStateRsd::energy_per_bit_fj(double mm, double swing_v) const {
  NOC_EXPECTS(mm > 0.0 && swing_v > 0.0);
  const double c_ff = p_.wire.switched_cap_ff(mm) + p_.c_fixed_ff;
  const double lvdd = swing_v + p_.lvdd_headroom_v;
  // Charge drawn from LVDD to swing the wire: C * Vswing; energy C*Vs*LVDD.
  const double e_wire_fj = p_.activity * c_ff * swing_v * lvdd;
  return e_wire_fj + p_.e_sense_amp_fj + p_.e_clocking_fj;
}

double TriStateRsd::st_lt_delay_ps(double mm) const {
  return p_.t_fixed_ps +
         wire_delay_ps(p_.wire, mm, p_.r_drive_ohm, p_.c_fixed_ff);
}

double TriStateRsd::max_data_rate_ghz(double mm) const {
  return 1000.0 / st_lt_delay_ps(mm);
}

double FullSwingRepeatedLink::energy_per_bit_fj(double mm) const {
  NOC_EXPECTS(mm > 0.0);
  const double c_ff =
      p_.wire.switched_cap_ff(mm) * p_.repeater_cap_overhead;
  return p_.activity * c_ff * p_.vdd * p_.vdd;
}

double fullswing_vs_lowswing_ratio(double mm, double swing_v) {
  TriStateRsd ls;
  FullSwingRepeatedLink fs;
  return fs.energy_per_bit_fj(mm) / ls.energy_per_bit_fj(mm, swing_v);
}

}  // namespace noc::ckt

#pragma once
// Tri-state reduced-swing driver (RSD) model (paper Sec 3.4, Fig 4).
//
// The chip's datapath drives crossbar vertical wires and links with 4-PMOS
// stacked tri-state drivers from a second supply LVDD, producing a 300mV
// differential swing; sense amplifiers recover full swing at the receiver.
// This model captures:
//  - energy per bit vs. swing and wire length (Fig 7: up to 3.2x less than
//    an equivalent full-swing repeater at 300mV on 1mm),
//  - the maximum single-cycle ST+LT data rate vs. link length (measured
//    5.4 GHz at 1mm, 2.6 GHz at 2mm),
//  - the repeated vs. repeaterless trade-off used in Fig 12.

#include "circuits/wire.hpp"

namespace noc::ckt {

struct RsdParams {
  WireParams wire;                 // differential shielded link wires
  double swing_v = 0.30;           // differential swing (Monte-Carlo chosen)
  double lvdd_headroom_v = 0.25;   // LVDD tracks swing + headroom
  double r_drive_ohm = 258.0;      // 4-PMOS stack on-resistance
  double c_fixed_ff = 18.0;        // driver diffusion + sense-amp input
  double e_sense_amp_fj = 11.0;    // per evaluation
  double e_clocking_fj = 6.0;      // SA strobe + enable alignment delay cell
  /// Datapath overhead before the wire: crossbar vertical-wire segment and
  /// SA resolve time. Together with r_drive this fits the chip's measured
  /// single-cycle ST+LT points: 5.4 GHz at 1mm and 2.6 GHz at 2mm.
  double t_fixed_ps = 68.6;
  double activity = 0.5;           // PRBS data

  double lvdd_v() const { return swing_v + lvdd_headroom_v; }
};

struct FullSwingRepeaterParams {
  WireParams wire{.r_ohm_per_mm = 500.0, .c_ff_per_mm = 210.0,
                  .differential = false};
  double vdd = 1.1;
  double repeater_cap_overhead = 1.35;  // repeater gate/diffusion loading
  double activity = 0.5;
};

class TriStateRsd {
 public:
  explicit TriStateRsd(const RsdParams& p = {}) : p_(p) {}

  /// Energy per transmitted bit over `mm` of link (fJ). Swing-linear
  /// dynamic term (C * Vswing * LVDD) plus sense-amp and strobe energy.
  double energy_per_bit_fj(double mm) const;

  /// Same, at an explicit swing (for the Fig 10 sweep).
  double energy_per_bit_fj(double mm, double swing_v) const;

  /// Worst-case ST+LT delay through crossbar + `mm` link (ps).
  double st_lt_delay_ps(double mm) const;

  /// Maximum clock frequency for single-cycle ST+LT (GHz).
  double max_data_rate_ghz(double mm) const;

  const RsdParams& params() const { return p_; }

 private:
  RsdParams p_;
};

class FullSwingRepeatedLink {
 public:
  explicit FullSwingRepeatedLink(const FullSwingRepeaterParams& p = {})
      : p_(p) {}

  double energy_per_bit_fj(double mm) const;

  const FullSwingRepeaterParams& params() const { return p_; }

 private:
  FullSwingRepeaterParams p_;
};

/// Energy ratio full-swing / low-swing at `mm` (the paper's headline 3.2x at
/// 1mm, 300mV).
double fullswing_vs_lowswing_ratio(double mm, double swing_v = 0.30);

}  // namespace noc::ckt

#include "circuits/sense_amp.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace noc::ckt {

bool SenseAmp::sample_resolves(double swing_v, Xoshiro256& rng) const {
  NOC_EXPECTS(swing_v > 0.0);
  const double offset = rng.gaussian() * p_.offset_sigma_v;
  const double margin = p_.eye_fraction * swing_v / 2.0;
  return std::abs(offset) < margin;
}

double SenseAmp::failure_probability(double swing_v) const {
  const double z = sigma_margin(swing_v);
  // P(|N(0,1)| > z) = erfc(z / sqrt(2)).
  return std::erfc(z / std::sqrt(2.0));
}

double SenseAmp::sigma_margin(double swing_v) const {
  NOC_EXPECTS(swing_v > 0.0);
  return p_.eye_fraction * swing_v / 2.0 / p_.offset_sigma_v;
}

}  // namespace noc::ckt

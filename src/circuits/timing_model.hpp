#pragma once
// Critical-path timing model (paper Table 3 / Sec 4.2).
//
// Both the baseline and the proposed router are critical in pipeline
// stage 2, where mSA-II runs. The model composes the stage from named
// component delays (pre-layout logic depth), applies a layout factor plus
// per-path wire adders for post-layout, and a silicon non-ideality factor
// (contaminated clock, supply fluctuation, temperature) for the measured
// chip. The lookahead path adds a priority mux pre-layout and long
// lookahead wires post-layout -- which is why the overhead grows from 8%
// (pre) to 21% (post), the paper's headline observation.

#include <string>
#include <vector>

namespace noc::ckt {

struct PathComponent {
  std::string name;
  double logic_ps = 0;  // pre-layout contribution
  double wire_ps = 0;   // additional post-layout wire delay
};

struct TimingConfig {
  /// Post-layout multiplies logic by this (cell sizing after placement) and
  /// adds the per-component wire delays.
  double layout_logic_factor = 1.10;
  /// Measured silicon vs post-layout: clock contamination, supply droop,
  /// temperature (Sec 4.2 lists these as unpredictable at design time).
  double silicon_factor = 1.2119;
};

struct CriticalPathReport {
  std::vector<PathComponent> components;
  double pre_layout_ps = 0;
  double post_layout_ps = 0;
  double measured_ps = 0;  // only meaningful for the fabricated design
  double fmax_ghz() const { return 1000.0 / measured_ps; }
};

/// Stage-2 path of the baseline router (mSA-II matrix arbitration).
CriticalPathReport baseline_critical_path(const TimingConfig& cfg = {});

/// Stage-2 path of the virtual-bypassed router (adds lookahead priority
/// muxing and lookahead wire spans).
CriticalPathReport proposed_critical_path(const TimingConfig& cfg = {});

/// Table 3 ratios.
double prelayout_overhead(const TimingConfig& cfg = {});   // ~1.08x
double postlayout_overhead(const TimingConfig& cfg = {});  // ~1.21x

}  // namespace noc::ckt

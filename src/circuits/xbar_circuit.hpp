#pragma once
// 1-bit 5x5 tri-state-RSD crossbar power vs. multicast count (paper Fig 11 /
// Appendix C). The tri-state RSD disconnects unused vertical wires, so
// dynamic power grows linearly with the number of simultaneously driven
// outputs -- the circuit-level basis of the router's energy-efficient
// multicast.

#include "circuits/rsd.hpp"

namespace noc::ckt {

struct XbarCircuitConfig {
  RsdParams rsd;
  int ports = 5;
  double vertical_wire_mm = 0.25;  // crossbar column height
  double link_mm = 1.0;            // attached link per output
  double data_rate_gbps = 5.0;
  /// Input horizontal wire + enable distribution, driven once regardless of
  /// multicast count.
  double input_fixed_fj_per_bit = 14.0;
};

/// Dynamic power (uW) of the 1b crossbar delivering to `multicast_count`
/// outputs (1 = unicast ... ports = broadcast).
double xbar_dynamic_power_uw(int multicast_count,
                             const XbarCircuitConfig& cfg = {});

/// Energy per delivered bit (fJ) -- constant-ish in multicast count, the
/// figure's efficiency message.
double xbar_energy_per_delivered_bit_fj(int multicast_count,
                                        const XbarCircuitConfig& cfg = {});

}  // namespace noc::ckt

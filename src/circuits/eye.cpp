#include "circuits/eye.hpp"

#include "common/assert.hpp"

namespace noc::ckt {

double vertical_eye_mv(const EyeConfig& cfg, double mm, double r_variation) {
  NOC_EXPECTS(mm > 0.0 && cfg.data_rate_gbps > 0.0);
  WireParams w = cfg.rsd.wire;
  w.r_ohm_per_mm *= (1.0 + r_variation);
  // Lumped settling model: tau = (R_drv + R_wire/2) * C_total.
  const double c_total_ff = w.capacitance_ff(mm) + cfg.rsd.c_fixed_ff;
  const double tau_ps =
      (cfg.rsd.r_drive_ohm + 0.5 * w.resistance(mm)) * c_total_ff * 1e-3;
  const double t_bit_ps = 1000.0 / cfg.data_rate_gbps;
  return cfg.rsd.swing_v * 1000.0 * settled_fraction(t_bit_ps, tau_ps);
}

std::vector<EyePoint> eye_vs_resistance_variation(
    const std::vector<double>& r_variations, const EyeConfig& cfg) {
  std::vector<EyePoint> out;
  out.reserve(r_variations.size());
  for (double rv : r_variations) {
    EyePoint p;
    p.r_variation = rv;
    p.eye_repeated_mv = vertical_eye_mv(cfg, cfg.total_mm / 2.0, rv);
    p.eye_repeaterless_mv = vertical_eye_mv(cfg, cfg.total_mm, rv);
    out.push_back(p);
  }
  return out;
}

double repeated_energy_per_bit_fj(const EyeConfig& cfg) {
  TriStateRsd rsd(cfg.rsd);
  // Two full transmit/sense stages plus the intermediate repeater's strobe
  // distribution and re-driver enable (the overhead that makes the repeated
  // configuration ~28% more expensive, paper Appendix C).
  constexpr double repeater_stage_overhead_fj = 18.2;
  return 2.0 * rsd.energy_per_bit_fj(cfg.total_mm / 2.0) +
         repeater_stage_overhead_fj;
}

double repeaterless_energy_per_bit_fj(const EyeConfig& cfg) {
  TriStateRsd rsd(cfg.rsd);
  return rsd.energy_per_bit_fj(cfg.total_mm);
}

int repeated_extra_cycles() { return 1; }

}  // namespace noc::ckt

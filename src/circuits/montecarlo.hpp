#pragma once
// Monte-Carlo engine for the swing-vs-reliability trade-off (paper Fig 10 /
// Appendix C): 1000-run sampling of sense-amp offsets at each voltage swing,
// producing link failure probability alongside energy per bit.

#include <vector>

#include "circuits/rsd.hpp"
#include "circuits/sense_amp.hpp"

namespace noc::ckt {

struct SwingTradeoffPoint {
  double swing_v = 0;
  double energy_per_bit_fj = 0;   // 1mm tri-state RSD at this swing
  double failure_prob_mc = 0;     // Monte-Carlo estimate
  double failure_prob_analytic = 0;  // erfc cross-check
  double sigma_margin = 0;
};

struct MonteCarloConfig {
  int runs = 1000;  // the paper's 1000-run Spice methodology
  uint64_t seed = 2012;
  double link_mm = 1.0;
  SenseAmpParams sense_amp;
  RsdParams rsd;
};

/// One swing point.
SwingTradeoffPoint evaluate_swing(double swing_v, const MonteCarloConfig& cfg);

/// Full Fig 10 sweep.
std::vector<SwingTradeoffPoint> swing_tradeoff_sweep(
    const std::vector<double>& swings_v, const MonteCarloConfig& cfg = {});

/// The chip's design choice: smallest swing (on a grid) meeting the target
/// sigma margin (paper: 300mV for >= 3 sigma).
double choose_min_swing_for_sigma(double target_sigma,
                                  const MonteCarloConfig& cfg = {},
                                  double step_v = 0.025);

}  // namespace noc::ckt

#pragma once
// Aligned console tables and CSV emission for the bench harnesses.
//
// Every bench binary prints the paper's table/figure as rows on stdout and
// can optionally mirror them to a CSV file for plotting.

#include <string>
#include <vector>

namespace noc {

class Table {
 public:
  explicit Table(std::string title = {});

  Table& set_columns(std::vector<std::string> headers);

  /// Append a row of pre-formatted cells. Row length may be shorter than the
  /// header; missing cells render empty.
  Table& add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  Table& add_separator();

  /// Render to stdout with column alignment.
  void print() const;

  /// Render to CSV (RFC-4180-ish quoting) at `path`; returns false on I/O
  /// failure. Separator rows are skipped.
  bool write_csv(const std::string& path) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Format helpers used by the benches.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_percent(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> is_separator_;
};

}  // namespace noc

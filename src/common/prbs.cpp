#include "common/prbs.hpp"

#include <bit>

#include "common/assert.hpp"

namespace noc {

Prbs::Prbs(Poly poly, uint32_t seed) : poly_(poly) {
  switch (poly) {
    case Poly::PRBS7:
      order_ = 7;
      tap_ = 6;
      break;
    case Poly::PRBS15:
      order_ = 15;
      tap_ = 14;
      break;
    case Poly::PRBS23:
      order_ = 23;
      tap_ = 18;
      break;
    case Poly::PRBS31:
      order_ = 31;
      tap_ = 28;
      break;
    default:
      NOC_EXPECTS(false && "unknown PRBS polynomial");
  }
  const uint32_t mask = (order_ == 31) ? 0x7fffffffu : ((1u << order_) - 1u);
  state_ = seed & mask;
  if (state_ == 0) state_ = 1;  // all-zero state is the LFSR's fixed point
}

int Prbs::next_bit() {
  const int b1 = static_cast<int>((state_ >> (order_ - 1)) & 1u);
  const int b2 = static_cast<int>((state_ >> (tap_ - 1)) & 1u);
  const int fb = b1 ^ b2;
  state_ = ((state_ << 1) | static_cast<uint32_t>(fb));
  const uint32_t mask = (order_ == 31) ? 0x7fffffffu : ((1u << order_) - 1u);
  state_ &= mask;
  return b1;
}

uint64_t Prbs::next_bits(int n) {
  NOC_EXPECTS(n >= 1 && n <= 64);
  uint64_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 1) | static_cast<uint64_t>(next_bit());
  return v;
}

uint64_t Prbs::period() const { return (uint64_t{1} << order_) - 1; }

int hamming_distance(uint64_t a, uint64_t b) { return std::popcount(a ^ b); }

double prbs_toggle_rate(Prbs::Poly poly, int words, int width) {
  NOC_EXPECTS(words > 0 && width >= 1 && width <= 64);
  Prbs gen(poly);
  uint64_t prev = gen.next_bits(width);
  long toggles = 0;
  for (int i = 0; i < words; ++i) {
    uint64_t cur = gen.next_bits(width);
    toggles += hamming_distance(prev, cur);
    prev = cur;
  }
  return static_cast<double>(toggles) /
         (static_cast<double>(words) * static_cast<double>(width));
}

}  // namespace noc

#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace noc {

uint64_t SplitMix64::next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state would lock the generator at zero; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Xoshiro256::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::next_below(uint64_t bound) {
  NOC_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Xoshiro256::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Xoshiro256::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace noc

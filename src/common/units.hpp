#pragma once
// Unit helpers. The simulator works in cycles and flits; the paper reports
// Gb/s, mW and pJ. Conversions live here so every bench uses identical
// arithmetic (e.g. the paper's 1024 Gb/s ejection-limit conversion:
// 16 nodes x 64 b/flit x 1 flit/cycle x 1 GHz).

#include <cstdint>

namespace noc {

constexpr double kFlitBits = 64.0;        // paper: 64-bit flits
constexpr double kDefaultClockGHz = 1.0;  // paper: 1 GHz network clock

/// flits-per-cycle (aggregate) -> Gb/s at `ghz` clock.
constexpr double flits_per_cycle_to_gbps(double fpc, double ghz = kDefaultClockGHz,
                                         double flit_bits = kFlitBits) {
  return fpc * flit_bits * ghz;
}

/// Gb/s -> aggregate flits-per-cycle.
constexpr double gbps_to_flits_per_cycle(double gbps, double ghz = kDefaultClockGHz,
                                         double flit_bits = kFlitBits) {
  return gbps / (flit_bits * ghz);
}

/// Joules per event * events per second -> watts. Convenience aliases keep
/// the power code readable (pJ * GHz = mW).
constexpr double pj_per_cycle_to_mw(double pj, double ghz = kDefaultClockGHz) {
  return pj * ghz;  // 1 pJ/cycle at 1 GHz = 1 mW
}

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;
constexpr double kFemto = 1e-15;
constexpr double kGiga = 1e9;
constexpr double kMega = 1e6;

}  // namespace noc

#include "common/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

namespace noc {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  is_separator_.push_back(false);
  return *this;
}

Table& Table::add_separator() {
  rows_.emplace_back();
  is_separator_.push_back(true);
  return *this;
}

void Table::print() const {
  // Compute column widths over header + all rows.
  size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> width(ncols, 0);
  for (size_t c = 0; c < headers_.size(); ++c)
    width[c] = std::max(width[c], headers_[c].size());
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto print_rule = [&] {
    std::string line = "+";
    for (size_t c = 0; c < ncols; ++c)
      line += std::string(width[c] + 2, '-') + "+";
    std::cout << line << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      line += " " + v + std::string(width[c] - v.size(), ' ') + " |";
    }
    std::cout << line << "\n";
  };

  if (!title_.empty()) std::cout << "== " << title_ << " ==\n";
  print_rule();
  if (!headers_.empty()) {
    print_cells(headers_);
    print_rule();
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (is_separator_[i])
      print_rule();
    else
      print_cells(rows_[i]);
  }
  print_rule();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::string v = cells[c];
      const bool needs_quote = v.find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        std::string q = "\"";
        for (char ch : v) {
          if (ch == '"') q += '"';
          q += ch;
        }
        q += '"';
        v = q;
      }
      out << v;
      if (c + 1 < cells.size()) out << ',';
    }
    out << '\n';
  };
  if (!headers_.empty()) emit(headers_);
  for (size_t i = 0; i < rows_.size(); ++i)
    if (!is_separator_[i]) emit(rows_[i]);
  return static_cast<bool>(out);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace noc

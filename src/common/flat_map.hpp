#pragma once
// U64FlatMap<V>: open-addressing hash map with uint64_t keys.
//
// Replaces std::unordered_map on the metrics hot path (one insert per
// generated packet, one erase per completed packet). Node-based maps
// allocate per insert; this map stores slots in flat arrays, uses linear
// probing with backward-shift deletion (no tombstones, so churn never
// forces a rehash), and only allocates when the element count exceeds the
// high-water mark -- allocation-free in steady state.
//
// Keys are arbitrary 64-bit values (0 included); occupancy is tracked in a
// separate byte array rather than a reserved key.

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace noc {

template <typename V>
class U64FlatMap {
 public:
  explicit U64FlatMap(size_t initial_capacity = 64) {
    allocate_slots(round_up(initial_capacity));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grow so that `n` elements fit without rehashing.
  void reserve(size_t n) {
    const size_t need = round_up(n * 4 / 3 + 1);
    if (need > keys_.size()) rehash(need);
  }

  V* find(uint64_t key) {
    size_t i = mix(key) & mask_;
    while (full_[i]) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(uint64_t key) const {
    return const_cast<U64FlatMap*>(this)->find(key);
  }

  /// Returns (value slot, inserted). A new slot holds a value-initialized V.
  std::pair<V*, bool> find_or_insert(uint64_t key) {
    if ((size_ + 1) * 4 > keys_.size() * 3) rehash(keys_.size() * 2);
    size_t i = mix(key) & mask_;
    while (full_[i]) {
      if (keys_[i] == key) return {&vals_[i], false};
      i = (i + 1) & mask_;
    }
    full_[i] = 1;
    keys_[i] = key;
    vals_[i] = V{};
    ++size_;
    return {&vals_[i], true};
  }

  /// Erase `key`; returns false if absent. Backward-shift deletion keeps
  /// probe chains intact without tombstones.
  bool erase(uint64_t key) {
    size_t i = mix(key) & mask_;
    while (full_[i]) {
      if (keys_[i] == key) {
        erase_slot(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

 private:
  static size_t round_up(size_t n) {
    size_t cap = 16;
    while (cap < n) cap *= 2;
    return cap;
  }

  /// SplitMix64 finalizer: full-avalanche mix for sequential packet ids.
  static size_t mix(uint64_t k) {
    k += 0x9e3779b97f4a7c15ULL;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(k ^ (k >> 31));
  }

  void allocate_slots(size_t cap) {
    keys_.assign(cap, 0);
    vals_.assign(cap, V{});
    full_.assign(cap, 0);
    mask_ = cap - 1;
  }

  void rehash(size_t new_cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    std::vector<uint8_t> old_full = std::move(full_);
    allocate_slots(new_cap);
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_full[i]) continue;
      auto [slot, inserted] = find_or_insert(old_keys[i]);
      NOC_ASSERT(inserted);
      *slot = std::move(old_vals[i]);
    }
  }

  void erase_slot(size_t hole) {
    full_[hole] = 0;
    --size_;
    // Shift back any element whose probe chain crossed the hole.
    size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (!full_[j]) return;
      const size_t ideal = mix(keys_[j]) & mask_;
      // Movable iff the hole lies on j's probe path: distance(ideal -> j)
      // must be at least distance(hole -> j).
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        keys_[hole] = keys_[j];
        vals_[hole] = std::move(vals_[j]);
        full_[hole] = 1;
        full_[j] = 0;
        hole = j;
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> vals_;
  std::vector<uint8_t> full_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace noc

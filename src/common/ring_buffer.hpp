#pragma once
// RingBuffer<T, N>: a fixed-capacity FIFO with inline storage.
//
// Replaces the std::deque-backed VC flit FIFOs (paper Sec 3.3: 1- and
// 3-flit-deep latch FIFOs per VC) and the free-VC queues. Capacity is a
// compile-time bound; the *usable* depth may be restricted further at
// runtime by the owner (InputVc::configure), matching the hardware's
// per-message-class buffer depths. Push/pop never allocate.
//
// Indexed access is relative to the front: at(0) is the oldest element.

#include <array>
#include <utility>

#include "common/assert.hpp"

namespace noc {

template <typename T, int N>
class RingBuffer {
 public:
  static constexpr int capacity() { return N; }

  int size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == N; }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  void push_back(const T& v) {
    NOC_EXPECTS(count_ < N);
    slots_[static_cast<size_t>(index(count_))] = v;
    ++count_;
  }

  /// Remove and return the oldest element.
  T pop_front() {
    NOC_EXPECTS(count_ > 0);
    T v = std::move(slots_[static_cast<size_t>(head_)]);
    head_ = (head_ + 1) % N;
    --count_;
    return v;
  }

  T& front() {
    NOC_EXPECTS(count_ > 0);
    return slots_[static_cast<size_t>(head_)];
  }
  const T& front() const {
    NOC_EXPECTS(count_ > 0);
    return slots_[static_cast<size_t>(head_)];
  }

  /// i-th element from the front (0 = oldest).
  T& at(int i) {
    NOC_EXPECTS(i >= 0 && i < count_);
    return slots_[static_cast<size_t>(index(i))];
  }
  const T& at(int i) const {
    NOC_EXPECTS(i >= 0 && i < count_);
    return slots_[static_cast<size_t>(index(i))];
  }

 private:
  int index(int i) const { return (head_ + i) % N; }

  std::array<T, N> slots_{};
  int head_ = 0;
  int count_ = 0;
};

}  // namespace noc

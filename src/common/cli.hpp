#pragma once
// Tiny shared command-line helper for the benches and examples, so each
// binary stops hand-rolling the same warmup/window/threads/pattern parsing.
//
// Flags are `--name=value` or `--name value`; bare `--name` registers as
// present (boolean). Unknown flags are collected so callers can reject
// typos. The NoC-specific conveniences (MeasureOptions / ExperimentOptions
// / TrafficPattern extraction) live in noc/experiment.hpp and noc/traffic.hpp
// to keep common/ free of simulator types.

#include <cstdint>
#include <string>
#include <vector>

namespace noc {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& flag) const;
  int64_t get_int(const std::string& flag, int64_t dflt) const;
  double get_double(const std::string& flag, double dflt) const;
  std::string get_str(const std::string& flag, const std::string& dflt) const;

  /// --help / -h was passed.
  bool help() const { return help_; }

  /// Flags that were never looked up by any get_*/has call -- typo guard.
  /// Call after all lookups; prints to stderr and returns false if any.
  bool check_unused() const;

 private:
  struct Flag {
    std::string name;   // without leading dashes
    std::string value;  // empty for bare flags
    mutable bool used = false;
  };
  const Flag* find(const std::string& flag) const;

  std::vector<Flag> flags_;
  bool help_ = false;
};

/// Parse --step-threads (intra-network parallel stepping worker count,
/// NetworkConfig::step_threads). Defaults to `dflt` (1 = serial); exits
/// with a clear message on values < 1. Plain int, no simulator types, so
/// every bench and example shares one validation path.
int cli_step_threads(const CliArgs& args, int dflt = 1);

}  // namespace noc

#pragma once
// Activity tracking primitives for the gated cycle core (docs/PERF.md).
//
// ActiveList is a dense integer membership set: components register by id
// when they become able to do work, and Network::step sweeps the list once
// per cycle, dropping entries whose keep-predicate fails. Storage is
// pre-sized at init (capacity == universe, duplicates excluded by the
// membership flags), so steady-state insert/sweep never touches the heap.
//
// WakeHook is a one-bit wake target: a component sets a bit in a
// Network-owned per-node mask (a DestMask, one bit per node -- the same
// multi-word bitset the datapath uses for destination sets) to schedule
// another component (or itself) for execution. Null hooks are no-ops, so
// ungated networks pay nothing.

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/dest_mask.hpp"

namespace noc {

class ActiveList {
 public:
  void init(int universe) {
    member_.assign(static_cast<size_t>(universe), 0);
    items_.clear();
    items_.reserve(static_cast<size_t>(universe));
  }

  int universe() const { return static_cast<int>(member_.size()); }
  int size() const { return static_cast<int>(items_.size()); }
  bool empty() const { return items_.empty(); }
  bool contains(int id) const {
    return member_[static_cast<size_t>(id)] != 0;
  }

  /// Idempotent; returns true when newly inserted.
  bool insert(int id) {
    NOC_EXPECTS(id >= 0 && id < universe());
    if (member_[static_cast<size_t>(id)]) return false;
    member_[static_cast<size_t>(id)] = 1;
    items_.push_back(id);
    return true;
  }

  /// Visit every current entry once; keep(id) == false removes it. Entries
  /// inserted during the sweep are not visited this pass (they joined for
  /// the next cycle). Visit order is insertion order and compaction is
  /// stable, but callers must not depend on it: all per-entry work this
  /// list carries is order-independent (see Network::step_gated).
  template <typename Keep>
  void sweep(Keep&& keep) {
    size_t w = 0;
    const size_t n = items_.size();  // exclude mid-sweep inserts
    for (size_t r = 0; r < n; ++r) {
      const int32_t id = items_[r];
      if (keep(id))
        items_[w++] = id;
      else
        member_[static_cast<size_t>(id)] = 0;
    }
    // Slide entries appended mid-sweep down over the holes.
    for (size_t r = n; r < items_.size(); ++r) items_[w++] = items_[r];
    items_.resize(w);
  }

 private:
  std::vector<int32_t> items_;
  std::vector<uint8_t> member_;
};

struct WakeHook {
  DestMask* mask = nullptr;
  int bit = 0;
  /// Optional port-granular wake target: a storage word of the receiving
  /// router's per-port wake mask (BitMask::word_ptr) plus the arriving
  /// port's bit. Kept as a raw word pointer so this header needs no
  /// dependency on the mask's width; only the owning router ever reads or
  /// clears the word, and every channel that writes it is owned by the same
  /// span, so parallel stepping stays race-free (docs/PERF.md Layer 5).
  uint64_t* port_word = nullptr;
  uint64_t port_bits = 0;

  void fire() const {
    if (mask != nullptr) mask->set(bit);
    if (port_word != nullptr) *port_word |= port_bits;
  }
};

}  // namespace noc

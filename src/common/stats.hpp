#pragma once
// Streaming statistics used throughout the simulator and benches.

#include <cstdint>
#include <limits>
#include <vector>

namespace noc {

/// Numerically-stable running mean/variance (Welford) with min/max.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;   // population variance
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
/// the end buckets. Supports quantile queries for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void add(double x);
  void reset();

  int64_t count() const { return total_; }
  double quantile(double q) const;  // q in [0,1]
  const std::vector<int64_t>& buckets() const { return counts_; }
  double bucket_low(int i) const;
  double bucket_width() const { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Simple rate counter: events per elapsed cycle window.
class RateCounter {
 public:
  void add(int64_t events = 1) { events_ += events; }
  void set_window(int64_t cycles) { cycles_ = cycles; }
  void reset() { events_ = 0; cycles_ = 0; }

  int64_t events() const { return events_; }
  int64_t window() const { return cycles_; }
  double rate() const {
    return cycles_ > 0 ? static_cast<double>(events_) /
                             static_cast<double>(cycles_)
                       : 0.0;
  }

 private:
  int64_t events_ = 0;
  int64_t cycles_ = 0;
};

}  // namespace noc

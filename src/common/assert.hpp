#pragma once
// Lightweight contract-checking macros in the spirit of the C++ Core
// Guidelines' Expects/Ensures (I.6/I.8). They stay active in release builds:
// a cycle-accurate model that silently corrupts flit state is worse than one
// that stops, and the checks are far off the simulator's hot path.

#include <cstdio>
#include <cstdlib>

namespace noc {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace noc

#define NOC_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::noc::contract_violation("Precondition", #cond, __FILE__,   \
                                      __LINE__))

#define NOC_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::noc::contract_violation("Postcondition", #cond, __FILE__,   \
                                      __LINE__))

#define NOC_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                       \
          : ::noc::contract_violation("Invariant", #cond, __FILE__,    \
                                      __LINE__))

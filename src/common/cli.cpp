#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace noc {

namespace {
std::string strip_dashes(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && s[i] == '-') ++i;
  return s.substr(i);
}

// Anything dash-prefixed that is not a negative number counts as a flag,
// single or double dash -- so `-threads 8` registers (and fails the
// unused-flag guard as a typo) instead of vanishing as a positional.
bool looks_like_flag(const std::string& s) {
  return s.size() >= 2 && s[0] == '-' && !(s[1] >= '0' && s[1] <= '9') &&
         s[1] != '.';
}
}  // namespace

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (!looks_like_flag(arg)) continue;  // positional args are ignored
    Flag f;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      f.name = strip_dashes(arg.substr(0, eq));
      f.value = arg.substr(eq + 1);
    } else {
      f.name = strip_dashes(arg);
      // `--flag value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && !looks_like_flag(argv[i + 1]))
        f.value = argv[++i];
    }
    flags_.push_back(std::move(f));
  }
}

const CliArgs::Flag* CliArgs::find(const std::string& flag) const {
  const std::string name = strip_dashes(flag);
  // Mark every occurrence used (a repeated flag is not a typo) and let the
  // last one win, the usual command-line convention.
  const Flag* hit = nullptr;
  for (const Flag& f : flags_) {
    if (f.name == name) {
      f.used = true;
      hit = &f;
    }
  }
  return hit;
}

bool CliArgs::has(const std::string& flag) const {
  return find(flag) != nullptr;
}

namespace {
// A malformed numeric value must stop the run, not silently truncate
// ("--window 12o00" -> 12) past the typo guard. These helpers back a
// convenience CLI for benches/examples, so exiting here is fine.
[[noreturn]] void bad_value(const std::string& flag,
                            const std::string& value) {
  std::fprintf(stderr, "invalid value for --%s: '%s'\n", flag.c_str(),
               value.c_str());
  std::exit(1);
}
}  // namespace

int64_t CliArgs::get_int(const std::string& flag, int64_t dflt) const {
  const Flag* f = find(flag);
  if (f == nullptr) return dflt;
  // A numeric flag given without a value ("--window" or "--window --next")
  // is the same silent-misconfiguration class as a malformed value.
  if (f->value.empty()) bad_value(f->name, f->value);
  char* end = nullptr;
  const int64_t v = std::strtoll(f->value.c_str(), &end, 10);
  if (end == f->value.c_str() || *end != '\0') bad_value(f->name, f->value);
  return v;
}

double CliArgs::get_double(const std::string& flag, double dflt) const {
  const Flag* f = find(flag);
  if (f == nullptr) return dflt;
  if (f->value.empty()) bad_value(f->name, f->value);
  char* end = nullptr;
  const double v = std::strtod(f->value.c_str(), &end);
  if (end == f->value.c_str() || *end != '\0') bad_value(f->name, f->value);
  return v;
}

std::string CliArgs::get_str(const std::string& flag,
                             const std::string& dflt) const {
  const Flag* f = find(flag);
  return f != nullptr && !f->value.empty() ? f->value : dflt;
}

bool CliArgs::check_unused() const {
  bool clean = true;
  for (const Flag& f : flags_) {
    if (!f.used) {
      std::fprintf(stderr, "unknown flag: --%s\n", f.name.c_str());
      clean = false;
    }
  }
  return clean;
}

int cli_step_threads(const CliArgs& args, int dflt) {
  const int64_t t = args.get_int("step-threads", dflt);
  if (t < 1) {
    std::fprintf(stderr,
                 "invalid --step-threads %lld: need >= 1 "
                 "(1 = serial stepping)\n",
                 static_cast<long long>(t));
    std::exit(1);
  }
  return static_cast<int>(t);
}

}  // namespace noc

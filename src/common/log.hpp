#pragma once
// Minimal leveled logging. The simulator is quiet by default; tests and
// debugging can raise the level per-process.

#include <cstdarg>

namespace noc {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging gated on the global level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace noc

#define NOC_LOG_DEBUG(...) ::noc::logf(::noc::LogLevel::Debug, __VA_ARGS__)
#define NOC_LOG_INFO(...) ::noc::logf(::noc::LogLevel::Info, __VA_ARGS__)
#define NOC_LOG_WARN(...) ::noc::logf(::noc::LogLevel::Warn, __VA_ARGS__)
#define NOC_LOG_ERROR(...) ::noc::logf(::noc::LogLevel::Error, __VA_ARGS__)

#pragma once
// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** (public-domain, Blackman & Vigna) seeded through
// SplitMix64 rather than std::mt19937 so that (a) streams are cheap enough to
// give every NIC its own generator and (b) results are bit-reproducible
// across standard-library implementations, which the regression tests rely
// on.

#include <cstdint>

namespace noc {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also usable as a tiny standalone generator for non-critical choices.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next();

 private:
  uint64_t state_;
};

/// xoshiro256**: the simulator's workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  uint64_t next_below(uint64_t bound);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Zero-mean unit-variance Gaussian via Box-Muller (cached pair).
  double gaussian();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace noc

#pragma once
// VecDeque<T>: a growable circular-buffer FIFO.
//
// std::deque allocates and frees fixed-size blocks as its window slides,
// so even a bounded-occupancy queue keeps hitting the allocator. VecDeque
// stores elements in one contiguous ring that only reallocates when the
// high-water occupancy grows -- after warmup the NIC packet queues built on
// it are allocation-free (the simulator's steady-state no-allocation
// invariant, docs/PERF.md).

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace noc {

template <typename T>
class VecDeque {
 public:
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t capacity() const { return slots_.size(); }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  void reserve(size_t n) {
    if (n > slots_.size()) regrow(round_up(n));
  }

  void push_back(T v) {
    if (count_ == slots_.size()) regrow(round_up(count_ + 1));
    slots_[(head_ + count_) % slots_.size()] = std::move(v);
    ++count_;
  }

  T pop_front() {
    NOC_EXPECTS(count_ > 0);
    T v = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return v;
  }

  T& front() {
    NOC_EXPECTS(count_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    NOC_EXPECTS(count_ > 0);
    return slots_[head_];
  }

 private:
  static size_t round_up(size_t n) {
    size_t cap = 8;
    while (cap < n) cap *= 2;
    return cap;
  }

  void regrow(size_t new_cap) {
    std::vector<T> fresh(new_cap);
    for (size_t i = 0; i < count_; ++i)
      fresh[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    slots_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace noc

#include "common/log.hpp"

#include <cstdio>

namespace noc {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Trace: return "TRACE";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace noc

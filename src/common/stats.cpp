#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace noc {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ = m2_ + other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), width_((hi - lo) / buckets), counts_(buckets, 0) {
  NOC_EXPECTS(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<int64_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::quantile(double q) const {
  NOC_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(total_)));
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return bucket_low(static_cast<int>(i)) + width_ / 2;
  }
  return bucket_low(static_cast<int>(counts_.size()) - 1) + width_ / 2;
}

double Histogram::bucket_low(int i) const { return lo_ + width_ * i; }

}  // namespace noc

#pragma once
// DestMask: fixed-capacity multi-word destination bitset (one bit per mesh
// node). Replaces the raw uint64_t mask that capped the simulator at 64
// nodes: 4 x 64-bit words cover k <= 16 (256 nodes), large enough to study
// how far past the prototype the paper's theoretical-limit analysis holds
// (docs/SCALING.md).
//
// Design constraints (in priority order):
//  - Zero heap: plain array storage, trivially copyable, so Flit/Packet/
//    Branch copies stay memcpy and the steady-state no-allocation invariant
//    (docs/PERF.md) is untouched.
//  - Single-word fast path: masks on k <= 8 meshes only ever populate word
//    0, so the word loops below are written to short-circuit (any, lowest,
//    for_each) or to unroll into straight-line word ops the compiler
//    vectorizes (and/or/andnot/count). k <= 8 configs keep their perf; the
//    regression gate on the existing k=8 microbench rows enforces it.
//  - No silent truncation, even at compile time: the uint64_t constructor
//    is explicit, so the pre-multiword idioms that would quietly produce a
//    word-0-only mask (`dest_mask = 1u << n`, comparisons against integer
//    literals) are build errors. Single bits come from bit()/node_mask,
//    all-ones masks from first_n; a literal single-word mask is spelled
//    DestMask{0x1f}.
//
// Word-boundary pitfalls this type exists to make unrepresentable are
// catalogued in docs/SCALING.md; tests/test_routing.cpp and
// tests/test_multiflit_multicast.cpp pin destination sets that straddle the
// 64/128/192-bit seams.

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace noc {

class DestMask {
 public:
  static constexpr int kWords = 4;
  static constexpr int kCapacity = kWords * 64;  // nodes => mesh k <= 16
  /// Hex digits of the widest mask (to_hex buffer sizing).
  static constexpr int kMaxHexChars = kCapacity / 4;

  constexpr DestMask() = default;
  /// Explicit on purpose: a bare integer is only ever a *single-word* mask,
  /// and letting `mask = 1 << n` convert silently would reintroduce the
  /// word-0 truncation bug this class exists to make unrepresentable
  /// (docs/SCALING.md). Spell literals DestMask{0x1f}; build single bits
  /// with bit().
  constexpr explicit DestMask(uint64_t low) : w_{low, 0, 0, 0} {}

  /// Mask with only bit `n` set.
  static constexpr DestMask bit(int n) {
    NOC_EXPECTS(n >= 0 && n < kCapacity);
    DestMask m;
    m.w_[word_of(n)] = bit_of(n);
    return m;
  }

  /// Mask with the lowest `n` bits set (the all-nodes mask of an n-node
  /// mesh).
  static constexpr DestMask first_n(int n) {
    NOC_EXPECTS(n >= 0 && n <= kCapacity);
    DestMask m;
    for (int w = 0; w < kWords; ++w) {
      const int low = w * 64;
      if (n >= low + 64)
        m.w_[w] = ~uint64_t{0};
      else if (n > low)
        m.w_[w] = (uint64_t{1} << (n - low)) - 1;
    }
    return m;
  }

  constexpr bool test(int n) const {
    NOC_EXPECTS(n >= 0 && n < kCapacity);
    return (w_[word_of(n)] & bit_of(n)) != 0;
  }
  constexpr void set(int n) {
    NOC_EXPECTS(n >= 0 && n < kCapacity);
    w_[word_of(n)] |= bit_of(n);
  }
  constexpr void clear(int n) {
    NOC_EXPECTS(n >= 0 && n < kCapacity);
    w_[word_of(n)] &= ~bit_of(n);
  }

  constexpr bool any() const {
    // Word 0 first: on k <= 8 meshes it decides alone.
    return w_[0] != 0 || (w_[1] | w_[2] | w_[3]) != 0;
  }
  constexpr bool none() const { return !any(); }

  constexpr int count() const {
    return std::popcount(w_[0]) + std::popcount(w_[1]) +
           std::popcount(w_[2]) + std::popcount(w_[3]);
  }

  /// Index of the lowest set bit; kCapacity when empty.
  constexpr int lowest() const {
    for (int w = 0; w < kWords; ++w)
      if (w_[w] != 0) return w * 64 + std::countr_zero(w_[w]);
    return kCapacity;
  }

  /// Clear the lowest set bit (no-op when empty).
  constexpr void clear_lowest() {
    for (int w = 0; w < kWords; ++w) {
      if (w_[w] != 0) {
        w_[w] &= w_[w] - 1;
        return;
      }
    }
  }

  /// Visit every set bit in ascending index order: fn(int index). The inner
  /// clear-lowest loop never re-scans lower words, so iteration cost is
  /// O(set bits) plus one zero-test per word above the last populated one.
  template <typename Fn>
  constexpr void for_each(Fn&& fn) const {
    for (int w = 0; w < kWords; ++w)
      for (uint64_t rest = w_[w]; rest != 0; rest &= rest - 1)
        fn(w * 64 + std::countr_zero(rest));
  }

  constexpr uint64_t word(int i) const {
    NOC_EXPECTS(i >= 0 && i < kWords);
    return w_[i];
  }

  /// this & ~other without materializing the complement.
  constexpr DestMask andnot(const DestMask& other) const {
    DestMask r;
    for (int w = 0; w < kWords; ++w) r.w_[w] = w_[w] & ~other.w_[w];
    return r;
  }

  constexpr DestMask& operator&=(const DestMask& o) {
    for (int w = 0; w < kWords; ++w) w_[w] &= o.w_[w];
    return *this;
  }
  constexpr DestMask& operator|=(const DestMask& o) {
    for (int w = 0; w < kWords; ++w) w_[w] |= o.w_[w];
    return *this;
  }
  constexpr DestMask& operator^=(const DestMask& o) {
    for (int w = 0; w < kWords; ++w) w_[w] ^= o.w_[w];
    return *this;
  }

  friend constexpr DestMask operator&(DestMask a, const DestMask& b) {
    return a &= b;
  }
  friend constexpr DestMask operator|(DestMask a, const DestMask& b) {
    return a |= b;
  }
  friend constexpr DestMask operator^(DestMask a, const DestMask& b) {
    return a ^= b;
  }
  friend constexpr DestMask operator~(const DestMask& a) {
    DestMask r;
    for (int w = 0; w < kWords; ++w) r.w_[w] = ~a.w_[w];
    return r;
  }

  friend constexpr bool operator==(const DestMask&, const DestMask&) = default;

  /// Lowercase hex, most-significant digit first, no leading zeros ("0" for
  /// the empty mask) -- single-word masks render exactly like the old
  /// %" PRIx64 " output, so v1 trace files round-trip unchanged. `buf` must
  /// hold at least kMaxHexChars + 1 bytes; returns the string length.
  int to_hex(char* buf) const {
    int digits = (kCapacity - leading_zero_bits_nibble_aligned()) / 4;
    if (digits == 0) digits = 1;
    for (int i = 0; i < digits; ++i) {
      const int shift = (digits - 1 - i) * 4;
      const uint64_t nib = (w_[shift / 64] >> (shift % 64)) & 0xF;
      buf[i] = nib < 10 ? static_cast<char>('0' + nib)
                        : static_cast<char>('a' + nib - 10);
    }
    buf[digits] = '\0';
    return digits;
  }

  /// Parse a hex string as written by to_hex (case-insensitive). Returns
  /// false on an empty string, a non-hex character, or a value wider than
  /// kCapacity bits.
  static bool from_hex(const char* s, DestMask& out) {
    int len = 0;
    while (s[len] != '\0') ++len;
    if (len == 0 || len > kMaxHexChars) return false;
    DestMask m;
    for (int i = 0; i < len; ++i) {
      const char c = s[i];
      uint64_t nib;
      if (c >= '0' && c <= '9')
        nib = static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        nib = static_cast<uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        nib = static_cast<uint64_t>(c - 'A' + 10);
      else
        return false;
      const int shift = (len - 1 - i) * 4;
      m.w_[shift / 64] |= nib << (shift % 64);
    }
    out = m;
    return true;
  }

 private:
  static constexpr int word_of(int n) { return n >> 6; }
  static constexpr uint64_t bit_of(int n) {
    return uint64_t{1} << (n & 63);
  }

  /// Leading-zero bit count rounded DOWN to a nibble (to_hex helper).
  int leading_zero_bits_nibble_aligned() const {
    for (int w = kWords - 1; w >= 0; --w)
      if (w_[w] != 0)
        return ((kWords - 1 - w) * 64 + std::countl_zero(w_[w])) & ~3;
    return kCapacity;
  }

  uint64_t w_[kWords] = {};
};

}  // namespace noc

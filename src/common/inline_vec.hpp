#pragma once
// InlineVec<T, N>: a fixed-capacity vector with inline storage.
//
// The router datapath builds small per-cycle collections (branch lists,
// grant lists, flit bursts) whose sizes are bounded by hardware structure --
// at most one branch per output port, at most kMaxPacketFlits flits per
// packet. std::vector heap-allocates for these; InlineVec keeps them in the
// owning object so Network::step performs no allocations in steady state
// (see docs/PERF.md).
//
// Elements must be default-constructible; clear() only resets the size (it
// does not destroy elements), which is fine for the trivially-destructible
// value types used on the hot path.

#include <array>

#include "common/assert.hpp"

namespace noc {

template <typename T, int N>
class InlineVec {
 public:
  InlineVec() = default;
  /// n value-initialized elements (mirrors std::vector<T> v(n)).
  explicit InlineVec(int n) { resize(n); }

  static constexpr int capacity() { return N; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == N; }

  void clear() { size_ = 0; }
  void resize(int n) {
    NOC_EXPECTS(n >= 0 && n <= N);
    for (int i = size_; i < n; ++i) items_[static_cast<size_t>(i)] = T{};
    size_ = n;
  }

  void push_back(const T& v) {
    NOC_EXPECTS(size_ < N);
    items_[static_cast<size_t>(size_++)] = v;
  }

  void pop_back() {
    NOC_EXPECTS(size_ > 0);
    --size_;
  }

  T& operator[](int i) {
    NOC_EXPECTS(i >= 0 && i < size_);
    return items_[static_cast<size_t>(i)];
  }
  const T& operator[](int i) const {
    NOC_EXPECTS(i >= 0 && i < size_);
    return items_[static_cast<size_t>(i)];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* begin() { return items_.data(); }
  T* end() { return items_.data() + size_; }
  const T* begin() const { return items_.data(); }
  const T* end() const { return items_.data() + size_; }

 private:
  std::array<T, N> items_{};
  int size_ = 0;
};

}  // namespace noc

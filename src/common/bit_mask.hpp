#pragma once
// BitMask<N>: fixed-width multi-word bitset -- the DestMask idiom
// (common/dest_mask.hpp) generalized to any bit count, so the router
// datapath can model its per-port / per-VC candidate sets as wide masks
// instead of per-element loops (docs/PERF.md Layer 5).
//
// Same design constraints as DestMask, in the same priority order:
//  - Zero heap: plain array storage, trivially copyable; hot-path state
//    built on BitMask keeps the steady-state no-allocation invariant.
//  - Word-0 fast path: masks narrower than 64 bits compile to single-word
//    ops (kWords == 1 collapses every loop below), and wider masks
//    short-circuit on word 0 first.
//  - No silent truncation: the uint64_t constructor is explicit and
//    operators keep bits above kBits cleared, so count()/any()/== never see
//    phantom tail bits (operator~ masks the last word).
//
// The noc layer instantiates three aliases (noc/routing.hpp,
// noc/buffers.hpp): PortMask over the 5 router ports, VcMask over the VC
// ids of one port, and VcSetMask over ports x VCs. Word-boundary behavior
// is pinned by tests/test_bit_mask.cpp, including the randomized
// incremental-vs-recompute cross-checks.

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace noc {

template <int NBits>
class BitMask {
  static_assert(NBits >= 1, "empty mask");

 public:
  static constexpr int kBits = NBits;
  static constexpr int kWords = (NBits + 63) / 64;

  constexpr BitMask() = default;
  /// Explicit for the same reason DestMask's is: a bare integer is only
  /// ever a word-0 mask, and silent conversion would reintroduce the
  /// truncation bugs the multi-word types exist to prevent.
  constexpr explicit BitMask(uint64_t low) : w_{} {
    NOC_EXPECTS(kBits >= 64 || (low >> kBits) == 0);
    w_[0] = low;
  }

  /// Mask with only bit `n` set.
  static constexpr BitMask bit(int n) {
    NOC_EXPECTS(n >= 0 && n < kBits);
    BitMask m;
    m.w_[word_of(n)] = bit_of(n);
    return m;
  }

  /// Mask with the lowest `n` bits set.
  static constexpr BitMask first_n(int n) {
    NOC_EXPECTS(n >= 0 && n <= kBits);
    BitMask m;
    for (int w = 0; w < kWords; ++w) {
      const int low = w * 64;
      if (n >= low + 64)
        m.w_[w] = ~uint64_t{0};
      else if (n > low)
        m.w_[w] = (uint64_t{1} << (n - low)) - 1;
    }
    return m;
  }

  constexpr bool test(int n) const {
    NOC_EXPECTS(n >= 0 && n < kBits);
    return (w_[word_of(n)] & bit_of(n)) != 0;
  }
  constexpr void set(int n) {
    NOC_EXPECTS(n >= 0 && n < kBits);
    w_[word_of(n)] |= bit_of(n);
  }
  constexpr void clear(int n) {
    NOC_EXPECTS(n >= 0 && n < kBits);
    w_[word_of(n)] &= ~bit_of(n);
  }
  constexpr void clear_all() {
    for (int w = 0; w < kWords; ++w) w_[w] = 0;
  }

  constexpr bool any() const {
    uint64_t acc = w_[0];
    if (acc != 0) return true;  // word-0 fast path
    for (int w = 1; w < kWords; ++w) acc |= w_[w];
    return acc != 0;
  }
  constexpr bool none() const { return !any(); }

  constexpr int count() const {
    int c = 0;
    for (int w = 0; w < kWords; ++w) c += std::popcount(w_[w]);
    return c;
  }

  /// Index of the lowest set bit; kBits when empty.
  constexpr int lowest() const {
    for (int w = 0; w < kWords; ++w)
      if (w_[w] != 0) return w * 64 + std::countr_zero(w_[w]);
    return kBits;
  }

  /// Clear the lowest set bit (no-op when empty).
  constexpr void clear_lowest() {
    for (int w = 0; w < kWords; ++w) {
      if (w_[w] != 0) {
        w_[w] &= w_[w] - 1;
        return;
      }
    }
  }

  /// Visit every set bit in ascending index order: fn(int index).
  template <typename Fn>
  constexpr void for_each(Fn&& fn) const {
    for (int w = 0; w < kWords; ++w)
      for (uint64_t rest = w_[w]; rest != 0; rest &= rest - 1)
        fn(w * 64 + std::countr_zero(rest));
  }

  /// Up to 32 consecutive bits starting at `pos`, as a plain word (bit i of
  /// the result = mask bit pos+i). Handles slices that straddle a word
  /// boundary; the router uses it to pull one port's VC set out of a
  /// VcSetMask in O(1).
  constexpr uint32_t extract(int pos, int width) const {
    NOC_EXPECTS(width >= 1 && width <= 32);
    NOC_EXPECTS(pos >= 0 && pos + width <= kBits);
    const int w = word_of(pos);
    const int off = pos & 63;
    uint64_t slice = w_[w] >> off;
    if (off != 0 && off + width > 64) slice |= w_[w + 1] << (64 - off);
    const uint32_t keep =
        width == 32 ? ~uint32_t{0} : (uint32_t{1} << width) - 1;
    return static_cast<uint32_t>(slice) & keep;
  }

  constexpr uint64_t word(int i) const {
    NOC_EXPECTS(i >= 0 && i < kWords);
    return w_[i];
  }

  /// Mutable storage-word pointer. Exists for exactly one caller: the
  /// activity machinery's WakeHook ORs a port bit into a router's wake mask
  /// through a raw word pointer so common/active_set.hpp needs no dependency
  /// on the mask's width (src/noc/network.cpp, docs/PERF.md Layer 5).
  constexpr uint64_t* word_ptr(int i) {
    NOC_EXPECTS(i >= 0 && i < kWords);
    return &w_[i];
  }

  /// this & ~other without materializing the complement.
  constexpr BitMask andnot(const BitMask& other) const {
    BitMask r;
    for (int w = 0; w < kWords; ++w) r.w_[w] = w_[w] & ~other.w_[w];
    return r;
  }

  constexpr BitMask& operator&=(const BitMask& o) {
    for (int w = 0; w < kWords; ++w) w_[w] &= o.w_[w];
    return *this;
  }
  constexpr BitMask& operator|=(const BitMask& o) {
    for (int w = 0; w < kWords; ++w) w_[w] |= o.w_[w];
    return *this;
  }
  constexpr BitMask& operator^=(const BitMask& o) {
    for (int w = 0; w < kWords; ++w) w_[w] ^= o.w_[w];
    return *this;
  }

  friend constexpr BitMask operator&(BitMask a, const BitMask& b) {
    return a &= b;
  }
  friend constexpr BitMask operator|(BitMask a, const BitMask& b) {
    return a |= b;
  }
  friend constexpr BitMask operator^(BitMask a, const BitMask& b) {
    return a ^= b;
  }
  /// Complement within kBits: tail bits of the last word stay cleared so
  /// any()/count()/== keep exact semantics at non-multiple-of-64 widths.
  friend constexpr BitMask operator~(const BitMask& a) {
    BitMask r;
    for (int w = 0; w < kWords; ++w) r.w_[w] = ~a.w_[w] & live_bits(w);
    return r;
  }

  friend constexpr bool operator==(const BitMask&, const BitMask&) = default;

 private:
  static constexpr int word_of(int n) { return n >> 6; }
  static constexpr uint64_t bit_of(int n) { return uint64_t{1} << (n & 63); }
  /// Valid-bit mask of storage word `w` (all-ones except a partial tail).
  static constexpr uint64_t live_bits(int w) {
    const int used = kBits - w * 64;
    return used >= 64 ? ~uint64_t{0} : (uint64_t{1} << used) - 1;
  }

  uint64_t w_[kWords] = {};
};

}  // namespace noc

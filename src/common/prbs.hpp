#pragma once
// Pseudo-random binary sequence (PRBS) generators.
//
// The chip's NICs generate payloads and injection decisions from on-die PRBS
// circuits; the paper specifically calls out that *identical* PRBS
// generators at every NIC synchronized the traffic and inflated low-load
// contention (Sec 4.1). We model the same LFSRs so that both the artifact
// and the Fig 7 "energy on PRBS data" measurement are reproducible.

#include <cstdint>

namespace noc {

/// Fibonacci LFSR implementing the standard PRBS polynomials.
/// PRBS7  : x^7 + x^6 + 1
/// PRBS15 : x^15 + x^14 + 1
/// PRBS23 : x^23 + x^18 + 1
/// PRBS31 : x^31 + x^28 + 1
class Prbs {
 public:
  enum class Poly { PRBS7, PRBS15, PRBS23, PRBS31 };

  explicit Prbs(Poly poly, uint32_t seed = 1);

  /// Advance one bit.
  int next_bit();

  /// Assemble `n` bits (MSB-first), n in [1, 64].
  uint64_t next_bits(int n);

  /// Sequence period for this polynomial (2^k - 1).
  uint64_t period() const;

  Poly poly() const { return poly_; }

 private:
  Poly poly_;
  uint32_t state_;
  int order_;
  int tap_;  // second feedback tap position (first is `order_`)
};

/// Hamming distance between consecutive words; used by the energy model to
/// weight data-dependent switching on links and crossbars.
int hamming_distance(uint64_t a, uint64_t b);

/// Average toggle probability per wire of a PRBS-driven 64b bus (~0.5).
double prbs_toggle_rate(Prbs::Poly poly, int words, int width = 64);

}  // namespace noc

#include "theory/chip_models.hpp"

#include "theory/mesh_limits.hpp"

namespace noc::theory {

double ChipModel::delay_per_hop_min_ns() const {
  return min_stages_per_hop / clock_ghz;
}

double ChipModel::delay_per_hop_max_ns() const {
  return max_stages_per_hop / clock_ghz;
}

double ChipModel::zero_load_unicast_cycles() const {
  return unicast_avg_hops(k) * stages_per_hop;
}

double ChipModel::zero_load_broadcast_cycles() const {
  const double far = broadcast_avg_hops(k);
  if (multicast_support) return far * stages_per_hop;
  // The source NIC serializes k^2 - 1 unicast copies, one per cycle; the
  // last copy then still has to reach the furthest destination.
  const double serialization = static_cast<double>(k) * k - 1.0;
  return serialization + far * stages_per_hop;
}

double ChipModel::bisection_bandwidth_gbps() const {
  // k links cross the bisection in one direction, per parallel network.
  return k * channel_bits * clock_ghz * parallel_networks;
}

double ChipModel::channel_load_unicast_coeff() const {
  return static_cast<double>(k) * k;
}

double ChipModel::channel_load_broadcast_coeff() const {
  const double n = static_cast<double>(k) * k;
  return multicast_support ? n : n * n;
}

ChipModel intel_teraflops() {
  ChipModel m;
  m.name = "Intel Teraflops";
  m.node_process = "65nm (8x10 die, modeled 8x8)";
  m.k = 8;
  m.clock_ghz = 5.0;
  m.channel_bits = 39;
  m.parallel_networks = 1;
  m.stages_per_hop = 5;  // five-pipeline-stage router
  m.min_stages_per_hop = 5;
  m.max_stages_per_hop = 5;
  m.multicast_support = false;
  return m;
}

ChipModel tilera_tile64() {
  ChipModel m;
  m.name = "Tilera TILE64";
  m.node_process = "90nm";
  m.k = 8;
  m.clock_ghz = 0.75;
  m.channel_bits = 32;
  m.parallel_networks = 5;  // UDN/IDN/MDN/TDN/static
  m.stages_per_hop = 1.5;   // 1 cycle straight-through, 2 turning
  m.min_stages_per_hop = 1;
  m.max_stages_per_hop = 2;
  m.multicast_support = false;
  return m;
}

ChipModel swift_noc() {
  ChipModel m;
  m.name = "SWIFT";
  m.node_process = "90nm (2x2 die, modeled 8x8)";
  m.k = 8;
  m.clock_ghz = 0.225;
  m.channel_bits = 64;
  m.parallel_networks = 1;
  m.stages_per_hop = 2;  // token-flow-control pipeline without a token
  m.min_stages_per_hop = 2;
  m.max_stages_per_hop = 4;
  m.multicast_support = false;
  return m;
}

ChipModel this_work(int k) {
  ChipModel m;
  m.name = k == 4 ? "This work (4x4)" : "This work (as 8x8)";
  m.node_process = "45nm SOI";
  m.k = k;
  m.clock_ghz = 1.0;
  m.channel_bits = 64;
  m.parallel_networks = 1;
  m.stages_per_hop = 1;  // single-cycle virtual-bypassed hop
  m.min_stages_per_hop = 1;
  m.max_stages_per_hop = 3;  // buffered path when the bypass loses
  m.multicast_support = true;
  return m;
}

std::vector<ChipModel> table2_chips() {
  return {intel_teraflops(), tilera_tile64(), swift_noc(), this_work(8),
          this_work(4)};
}

}  // namespace noc::theory

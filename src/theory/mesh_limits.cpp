#include "theory/mesh_limits.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"

namespace noc::theory {

double unicast_avg_hops(int k) {
  NOC_EXPECTS(k >= 2);
  return 2.0 * (k + 1) / 3.0;
}

double broadcast_avg_hops(int k) {
  NOC_EXPECTS(k >= 2);
  if (k % 2 == 0) return (3.0 * k - 1.0) / 2.0;
  return static_cast<double>((k - 1) * (3 * k + 1)) / (2.0 * k);
}

double unicast_avg_hops_exact(int k) {
  // Direct enumeration (independent of the simulator's DestMask capacity,
  // so arbitrary k works -- this is what the large-k scaling bench compares
  // measured saturation against at every simulable radix).
  NOC_EXPECTS(k >= 2);
  long total = 0, pairs = 0;
  for (int x1 = 0; x1 < k; ++x1)
    for (int y1 = 0; y1 < k; ++y1)
      for (int x2 = 0; x2 < k; ++x2)
        for (int y2 = 0; y2 < k; ++y2) {
          if (x1 == x2 && y1 == y2) continue;
          total += std::abs(x1 - x2) + std::abs(y1 - y2);
          ++pairs;
        }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

double broadcast_avg_hops_exact(int k) {
  NOC_EXPECTS(k >= 2);
  long total = 0;
  for (int x = 0; x < k; ++x)
    for (int y = 0; y < k; ++y)
      total += std::max(x, k - 1 - x) + std::max(y, k - 1 - y);
  return static_cast<double>(total) / (static_cast<double>(k) * k);
}

double unicast_bisection_load(int k, double R) { return k * R / 4.0; }
double unicast_ejection_load(double R) { return R; }
double broadcast_bisection_load(int k, double R) {
  return static_cast<double>(k) * k * R / 4.0;
}
double broadcast_ejection_load(int k, double R) {
  return static_cast<double>(k) * k * R;
}

double unicast_max_injection_rate(int k) {
  // max R such that max(L_bisection, L_ejection) <= 1 flit/cycle.
  return std::min(1.0, 4.0 / k);
}

double broadcast_max_injection_rate(int k) {
  return 1.0 / (static_cast<double>(k) * k);
}

double aggregate_throughput_limit_gbps(int k, double flit_bits,
                                       double clock_ghz) {
  return static_cast<double>(k) * k * flit_bits * clock_ghz;
}

double unicast_energy_limit(int k, double e_xbar, double e_link) {
  const double h = unicast_avg_hops(k);
  // H crossbars en route + the ejection crossbar + H links (Table 1).
  return h * e_xbar + e_xbar + h * e_link;
}

double broadcast_energy_limit(int k, double e_xbar, double e_link) {
  const double n = static_cast<double>(k) * k;
  return n * e_xbar + (n - 1.0) * e_link;
}

double zero_load_latency_limit_unicast(int k, int packet_len) {
  return unicast_avg_hops(k) + 2.0 + (packet_len - 1);
}

double zero_load_latency_limit_broadcast(int k, int packet_len) {
  return broadcast_avg_hops(k) + 2.0 + (packet_len - 1);
}

double zero_load_latency_limit_mixed(int k) {
  return 0.50 * zero_load_latency_limit_broadcast(k, 1) +
         0.25 * zero_load_latency_limit_unicast(k, 1) +
         0.25 * zero_load_latency_limit_unicast(k, 5);
}

}  // namespace noc::theory

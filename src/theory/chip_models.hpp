#pragma once
// Analytical models of prior mesh-NoC chip prototypes (paper Table 2 /
// Appendix B): Intel Teraflops, Tilera TILE64, SWIFT, and this work (both
// scaled to 8x8 for comparability and as the fabricated 4x4).
//
// Zero-load latency = serialization (for NIC-duplicated broadcasts,
// k^2 - 1 copies leave one per cycle) + hops x pipeline-stages-per-hop.
// "Channel load" follows the paper's aggregate-injected-flit-equivalents
// definition: unicast k^2 R; broadcast k^4 R without multicast support,
// k^2 R with it (reproduces every printed entry).

#include <string>
#include <vector>

namespace noc::theory {

struct ChipModel {
  std::string name;
  std::string node_process;   // e.g. "65nm"
  int k = 8;                  // mesh radix used for the comparison
  double clock_ghz = 1.0;
  double channel_bits = 64;   // per network
  int parallel_networks = 1;  // TILE64 has 5 independent meshes
  double stages_per_hop = 1;  // average router pipeline depth per hop
  double min_stages_per_hop = 1;  // best case (straight-through / bypass)
  double max_stages_per_hop = 1;  // worst case (turning / buffered)
  bool multicast_support = false;

  // --- Table 2 rows ---
  double delay_per_hop_min_ns() const;
  double delay_per_hop_max_ns() const;
  double zero_load_unicast_cycles() const;
  double zero_load_broadcast_cycles() const;
  double bisection_bandwidth_gbps() const;
  /// Coefficients of R in the channel-load rows.
  double channel_load_unicast_coeff() const;    // k^2
  double channel_load_broadcast_coeff() const;  // k^4 or k^2
};

/// The five comparison columns of Table 2, in print order.
std::vector<ChipModel> table2_chips();

ChipModel intel_teraflops();
ChipModel tilera_tile64();
ChipModel swift_noc();
ChipModel this_work(int k);  // k = 8 (scaled) or 4 (fabricated)

}  // namespace noc::theory

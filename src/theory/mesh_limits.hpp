#pragma once
// Theoretical limits of a k x k mesh NoC (paper Table 1 / Appendix A).
//
// Assumptions (paper Appendix A): perfect routing (balanced minimal paths),
// perfect flow control (links never idle under backlog), perfect router
// microarchitecture (only ST+LT delay/energy per hop).
//
// The formulas are implemented exactly as printed in Table 1. Two of them
// are slightly loose relative to exact enumeration, and we provide the exact
// counterparts for cross-checking (see DESIGN.md "paper-formula quirks"):
//  - unicast H_avg = 2(k+1)/3 conditions on src/dst differing per dimension;
//    the exact uniform average (src != dst) is 2k/3.
//  - broadcast H for even k, (3k-1)/2, is 0.5 above the exact
//    average-furthest distance (3k-2)/2; the odd-k formula is exact.

#include "noc/geometry.hpp"

namespace noc::theory {

/// --- Table 1, latency (hops == cycles under assumption 3) ---
double unicast_avg_hops(int k);    // 2(k+1)/3
double broadcast_avg_hops(int k);  // (3k-1)/2 even, (k-1)(3k+1)/2k odd

/// Exact enumerated counterparts (for tests and the quirk discussion).
double unicast_avg_hops_exact(int k);
double broadcast_avg_hops_exact(int k);

/// --- Table 1, channel loads at per-node flit injection rate R ---
double unicast_bisection_load(int k, double R);    // k R / 4
double unicast_ejection_load(double R);            // R
double broadcast_bisection_load(int k, double R);  // k^2 R / 4
double broadcast_ejection_load(int k, double R);   // k^2 R

/// --- Table 1, throughput limit: max sustainable R (flits/node/cycle) ---
/// Unicast: ejection-limited for k <= 4 (R = 1), bisection-limited beyond
/// (R = 4/k). Broadcast: always ejection-limited, R = 1/k^2.
double unicast_max_injection_rate(int k);
double broadcast_max_injection_rate(int k);

/// Aggregate ejection-capacity limit in Gb/s: k^2 nodes x flit_bits x f.
/// The paper's 1024 Gb/s for the 4x4 at 64b / 1 GHz.
double aggregate_throughput_limit_gbps(int k, double flit_bits = 64.0,
                                       double clock_ghz = 1.0);

/// --- Table 1, energy limits per packet (units of the caller's Exbar/Elink)
double unicast_energy_limit(int k, double e_xbar, double e_link);
double broadcast_energy_limit(int k, double e_xbar, double e_link);

/// Zero-load latency including the 2 NIC link cycles the paper adds for
/// Fig 5's limit lines, plus serialization for multi-flit packets.
double zero_load_latency_limit_unicast(int k, int packet_len = 1);
double zero_load_latency_limit_broadcast(int k, int packet_len = 1);

/// Weighted Fig 5 mixed-traffic latency limit (50% broadcast request, 25%
/// unicast request, 25% 5-flit unicast response).
double zero_load_latency_limit_mixed(int k);

}  // namespace noc::theory

#pragma once
// Top-level simulation driver: owns the cycle counter and steps a stepped
// system (the Network) through warmup / measurement / drain phases.

#include <functional>

#include "sim/tickable.hpp"

namespace noc {

/// Anything that can be stepped one cycle at a time (the Network implements
/// this with its internal multi-phase ordering).
class Steppable {
 public:
  virtual ~Steppable() = default;
  virtual void step(Cycle now) = 0;
};

class Simulation {
 public:
  explicit Simulation(Steppable& system) : system_(system) {}

  Cycle now() const { return now_; }

  /// Run `cycles` more cycles.
  void run(Cycle cycles);

  /// Run until `pred()` returns true or `max_cycles` more cycles elapse.
  /// Returns true if the predicate fired.
  bool run_until(const std::function<bool()>& pred, Cycle max_cycles);

 private:
  Steppable& system_;
  Cycle now_ = 0;
};

}  // namespace noc

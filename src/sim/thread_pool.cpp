#include "sim/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/assert.hpp"

namespace noc {

ThreadPool::ThreadPool(int threads) {
  NOC_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(int threads, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = std::min(threads, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w) pool.submit(drain);
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace noc

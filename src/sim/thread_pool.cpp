#include "sim/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/assert.hpp"

namespace noc {

ThreadPool::ThreadPool(int threads) {
  NOC_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(int threads, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // The caller drains too, so only workers-1 extra threads are needed; they
  // are leased from the shared budget and the loop degrades gracefully to
  // serial when none are available (nested parallelism, exhausted cap).
  const int workers = std::min(threads, n);
  const int extra =
      workers <= 1 ? 0 : thread_budget::acquire(workers - 1);
  if (extra == 0) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    ThreadPool pool(extra);
    for (int w = 0; w < extra; ++w) pool.submit(drain);
    drain();  // the caller is a worker as well
    pool.wait_idle();
  }
  thread_budget::release(extra);
  if (first_error) std::rethrow_exception(first_error);
}

namespace thread_budget {
namespace {

// used_ starts at 1: the root thread is always running. Function-local
// statics avoid init-order races with any static-constructed user.
std::atomic<int>& total_atomic() {
  static std::atomic<int> v{ThreadPool::hardware_threads()};
  return v;
}
std::atomic<int>& used_atomic() {
  static std::atomic<int> v{1};
  return v;
}
std::atomic<int>& peak_atomic() {
  static std::atomic<int> v{1};
  return v;
}

void raise_peak(int seen) {
  auto& peak = peak_atomic();
  int cur = peak.load(std::memory_order_relaxed);
  while (cur < seen &&
         !peak.compare_exchange_weak(cur, seen, std::memory_order_relaxed)) {
  }
}

}  // namespace

void set_total(int total) {
  total_atomic().store(total < 1 ? 1 : total, std::memory_order_relaxed);
  peak_atomic().store(used_atomic().load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

int total() { return total_atomic().load(std::memory_order_relaxed); }
int in_use() { return used_atomic().load(std::memory_order_relaxed); }
int peak_in_use() { return peak_atomic().load(std::memory_order_relaxed); }

int acquire(int want) {
  if (want <= 0) return 0;
  auto& used = used_atomic();
  int cur = used.load(std::memory_order_relaxed);
  int grant;
  do {
    grant = std::min(want, total() - cur);
    if (grant <= 0) return 0;
  } while (!used.compare_exchange_weak(cur, cur + grant,
                                       std::memory_order_relaxed));
  raise_peak(cur + grant);
  return grant;
}

void release(int granted) {
  if (granted <= 0) return;
  const int prev =
      used_atomic().fetch_sub(granted, std::memory_order_relaxed);
  NOC_EXPECTS(prev - granted >= 1);
}

}  // namespace thread_budget

}  // namespace noc

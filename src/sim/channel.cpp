// Channel is a header-only template; this translation unit exists to host
// future non-template channel helpers and to keep the build graph explicit.
#include "sim/channel.hpp"

#include "sim/step_team.hpp"

namespace noc {
namespace {

// Brief spin before blocking: one simulated cycle is far shorter than a
// futex round-trip, so helpers almost always catch the next epoch (and the
// caller the last completion) without a syscall.
constexpr int kSpinIters = 4096;

}  // namespace

StepTeam::StepTeam(int workers) : workers_(workers < 1 ? 1 : workers) {
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

StepTeam::~StepTeam() {
  stop_.store(true, std::memory_order_seq_cst);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  epoch_.notify_all();
  for (auto& t : threads_) t.join();
}

void StepTeam::run(WorkerFn fn, void* ctx) {
  if (threads_.empty()) {
    fn(ctx, 0);
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (sleepers_.load(std::memory_order_seq_cst) > 0) epoch_.notify_all();

  fn(ctx, 0);

  // Barrier: epoch e is complete once the helpers have logged e*(W-1)
  // cumulative completions.
  const uint64_t target = epoch * static_cast<uint64_t>(workers_ - 1);
  uint64_t d = done_.load(std::memory_order_acquire);
  for (int i = 0; i < kSpinIters && d < target; ++i)
    d = done_.load(std::memory_order_acquire);
  if (d >= target) return;
  caller_waiting_.store(true, std::memory_order_seq_cst);
  d = done_.load(std::memory_order_seq_cst);
  while (d < target) {
    done_.wait(d, std::memory_order_seq_cst);
    d = done_.load(std::memory_order_seq_cst);
  }
  caller_waiting_.store(false, std::memory_order_seq_cst);
}

void StepTeam::worker_loop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int i = 0; i < kSpinIters && e == seen; ++i)
      e = epoch_.load(std::memory_order_acquire);
    if (e == seen) {
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      e = epoch_.load(std::memory_order_seq_cst);
      while (e == seen) {
        epoch_.wait(seen, std::memory_order_seq_cst);
        e = epoch_.load(std::memory_order_seq_cst);
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = e;
    fn_(ctx_, worker);
    done_.fetch_add(1, std::memory_order_seq_cst);
    if (caller_waiting_.load(std::memory_order_seq_cst)) done_.notify_all();
  }
}

}  // namespace noc

#include "sim/simulation.hpp"

namespace noc {

void Simulation::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    system_.step(now_);
    ++now_;
  }
}

bool Simulation::run_until(const std::function<bool()>& pred,
                           Cycle max_cycles) {
  const Cycle end = now_ + max_cycles;
  while (now_ < end) {
    if (pred()) return true;
    system_.step(now_);
    ++now_;
  }
  return pred();
}

}  // namespace noc

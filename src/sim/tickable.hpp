#pragma once
// Synchronous simulation primitives.
//
// The NoC is modeled as a fully synchronous design: every component
// implements Tickable and is stepped once per clock cycle in a fixed phase
// order chosen so that all cross-component communication flows through
// Channel objects with >= 1 cycle of latency (or explicitly-ordered 0-cycle
// lookahead wires). This gives cycle-accurate register-transfer semantics
// without a delta-cycle event queue.

#include <cstdint>
#include <limits>

namespace noc {

using Cycle = int64_t;

/// Sentinel for "no such cycle" (e.g. a traffic source that can never fire
/// again without external input; see TrafficSource::next_fire_cycle).
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

class Tickable {
 public:
  virtual ~Tickable() = default;

  /// Advance one clock cycle. `now` is the cycle being executed.
  virtual void tick(Cycle now) = 0;
};

}  // namespace noc

#pragma once
// A small fixed-size worker pool for fanning independent simulations across
// cores (the ExperimentRunner's engine).
//
// Design notes:
//  - Jobs are opaque std::function<void()>; the pool makes no ordering
//    promises between jobs, so callers that need deterministic output must
//    write results into caller-owned slots keyed by task index (which is
//    exactly what parallel_for does).
//  - wait_idle() blocks until the queue is empty AND no worker is mid-job,
//    so it is a full barrier.
//  - parallel_for is the intended entry point: it self-schedules indices
//    through an atomic cursor (good load balance for sweep points whose
//    runtimes differ), falls back to a plain loop for <=1 thread or item,
//    and rethrows the first exception any invocation threw.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace noc {

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a job. Jobs must not throw (parallel_for wraps user callbacks
  /// to capture exceptions before they reach the pool).
  void submit(std::function<void()> job);

  /// Block until all submitted jobs have finished.
  void wait_idle();

  /// Number of hardware threads, at least 1.
  static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: job or stop
  std::condition_variable idle_cv_;  // signals wait_idle: all drained
  int active_ = 0;
  bool stop_ = false;
};

/// Run fn(0), ..., fn(n-1) across up to `threads` workers. Serial (and
/// pool-free) when threads <= 1 or n <= 1. Blocks until every index has
/// run; rethrows the first exception thrown by any invocation.
void parallel_for(int threads, int n, const std::function<void(int)>& fn);

}  // namespace noc

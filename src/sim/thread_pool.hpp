#pragma once
// A small fixed-size worker pool for fanning independent simulations across
// cores (the ExperimentRunner's engine).
//
// Design notes:
//  - Jobs are opaque std::function<void()>; the pool makes no ordering
//    promises between jobs, so callers that need deterministic output must
//    write results into caller-owned slots keyed by task index (which is
//    exactly what parallel_for does).
//  - wait_idle() blocks until the queue is empty AND no worker is mid-job,
//    so it is a full barrier.
//  - parallel_for is the intended entry point: it self-schedules indices
//    through an atomic cursor (good load balance for sweep points whose
//    runtimes differ), falls back to a plain loop for <=1 thread or item,
//    and rethrows the first exception any invocation threw.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace noc {

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a job. Jobs must not throw (parallel_for wraps user callbacks
  /// to capture exceptions before they reach the pool).
  void submit(std::function<void()> job);

  /// Block until all submitted jobs have finished.
  void wait_idle();

  /// Number of hardware threads, at least 1.
  static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: job or stop
  std::condition_variable idle_cv_;  // signals wait_idle: all drained
  int active_ = 0;
  bool stop_ = false;
};

/// Run fn(0), ..., fn(n-1) across up to `threads` workers. Serial (and
/// pool-free) when threads <= 1 or n <= 1. Blocks until every index has
/// run; rethrows the first exception thrown by any invocation.
///
/// Worker threads beyond the caller are leased from thread_budget (below),
/// so point-level sweeps and intra-network stepping compose without
/// oversubscribing: when the budget is exhausted the loop runs serially on
/// the caller. The caller always participates in draining, so a lease of E
/// extra threads executes on E + 1 threads total.
void parallel_for(int threads, int n, const std::function<void(int)>& fn);

/// Process-wide budget of concurrently-running simulation threads, shared
/// by every layer that spawns workers (ExperimentRunner point fan-out via
/// parallel_for, Network's intra-step span team). The root thread counts as
/// one permanently-held unit, so `total` is the cap on simultaneously
/// *running* threads, not on spawned helpers.
///
/// Layers request EXTRA threads with acquire(want) and get back however
/// many fit under the cap (possibly 0 -> run serial); they must release()
/// the same grant when done. Grants are leases, not reservations: a Network
/// holds its lease for its whole lifetime, a parallel_for only for the
/// loop. Never-exceeds is the invariant tests assert via peak_in_use().
namespace thread_budget {

/// Set the cap (min 1; the root thread itself). Also resets peak_in_use()
/// to the current in_use() so tests can scope their assertion.
void set_total(int total);
int total();

/// Threads currently leased, including the root thread's implicit unit.
int in_use();

/// High-water mark of in_use() since the last set_total().
int peak_in_use();

/// Lease up to `want` extra threads; returns the granted count in
/// [0, want]. Thread-safe.
int acquire(int want);
void release(int granted);

}  // namespace thread_budget

}  // namespace noc

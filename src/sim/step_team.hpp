#pragma once
// Persistent worker team for intra-network parallel stepping.
//
// A Network that steps with `step_threads > 1` drives every cycle through
// the same fixed set of threads; spawning per step (or per phase) would
// dwarf the work of a cycle. StepTeam keeps N-1 helper threads parked on an
// epoch counter and lets the caller act as worker 0, so `run()` is one
// atomic bump plus (at most) one futex wake on each side.
//
// The callable is a raw function pointer + context, not std::function:
// run() sits inside the steady-state step loop and must not allocate
// (docs/PERF.md zero-alloc invariant), and std::function's small-buffer
// limit is an implementation detail we refuse to bet on.
//
// run() is a full barrier: it returns only after every worker has finished
// the epoch. Two consecutive run() calls therefore give the two-phase
// schedule Network::step needs (compute span-local, then commit boundary
// state) with no other synchronization.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace noc {

class StepTeam {
 public:
  using WorkerFn = void (*)(void* ctx, int worker);

  /// A team of `workers` total workers (including the calling thread).
  /// `workers <= 1` spawns nothing and run() degenerates to a direct call.
  explicit StepTeam(int workers);
  ~StepTeam();

  StepTeam(const StepTeam&) = delete;
  StepTeam& operator=(const StepTeam&) = delete;

  int workers() const { return workers_; }

  /// Execute fn(ctx, w) for every w in [0, workers); the caller runs w == 0.
  /// Returns after all workers completed (barrier). Not reentrant.
  void run(WorkerFn fn, void* ctx);

 private:
  void worker_loop(int worker);

  int workers_ = 1;
  // epoch_ ticks once per run(); helpers chase it. done_ counts cumulative
  // helper completions, so epoch e is finished when done_ == e*(workers-1).
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  // Futex wakes are syscalls; both sides skip notify unless the other side
  // announced it may actually be blocked. The flag checks race with the
  // block, but std::atomic::wait re-validates the value after registering
  // as a waiter, so a stale "no sleeper" read can only happen when the
  // would-be sleeper is guaranteed to re-read the fresh counter.
  std::atomic<int> sleepers_{0};
  std::atomic<bool> caller_waiting_{false};
  WorkerFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::vector<std::thread> threads_;
};

}  // namespace noc

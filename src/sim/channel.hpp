#pragma once
// Point-to-point synchronous channels (pipelined wires).
//
// A Channel<T> models a set of wires with a fixed latency in cycles:
// messages sent during tick t become visible to the receiver's tick at
// t + latency. Latency 0 is allowed for the NIC->router lookahead shortcut
// (the NIC is physically adjacent to its router and its injection request
// feeds mSA-II combinationally); correctness then relies on the global
// phase order executing the sender before the receiver in the same tick.

#include <deque>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/tickable.hpp"

namespace noc {

template <typename T>
class Channel {
 public:
  explicit Channel(int latency = 1) : latency_(latency) {
    NOC_EXPECTS(latency >= 0);
  }

  int latency() const { return latency_; }

  /// Send a message during tick `now`; it arrives at `now + latency`.
  void send(Cycle now, T msg) {
    if (latency_ == 0) {
      arrivals_.push_back(std::move(msg));
    } else {
      in_flight_.emplace_back(now + latency_, std::move(msg));
    }
  }

  /// Called once at the start of every tick (before any component runs):
  /// moves messages whose arrival time is `now` into the arrival buffer.
  void begin_cycle(Cycle now) {
    arrivals_.clear();
    while (!in_flight_.empty() && in_flight_.front().first <= now) {
      NOC_ASSERT(in_flight_.front().first == now);  // never skip a delivery
      arrivals_.push_back(std::move(in_flight_.front().second));
      in_flight_.pop_front();
    }
  }

  /// Messages arriving this tick, in send order.
  const std::vector<T>& arrivals() const { return arrivals_; }

  /// Take all arrivals (consuming them so repeated reads are safe).
  std::vector<T> take_arrivals() {
    std::vector<T> out;
    out.swap(arrivals_);
    return out;
  }

  bool idle() const { return in_flight_.empty() && arrivals_.empty(); }
  size_t in_flight_count() const { return in_flight_.size(); }

 private:
  int latency_;
  std::deque<std::pair<Cycle, T>> in_flight_;
  std::vector<T> arrivals_;
};

}  // namespace noc

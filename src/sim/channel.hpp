#pragma once
// Point-to-point synchronous channels (pipelined wires).
//
// A Channel<T> models a set of wires with a fixed latency in cycles:
// messages sent during tick t become visible to the receiver's tick at
// t + latency. Latency 0 is allowed for the NIC->router lookahead shortcut
// (the NIC is physically adjacent to its router and its injection request
// feeds mSA-II combinationally); correctness then relies on the global
// phase order executing the sender before the receiver in the same tick.
//
// Storage is a ring of latency+1 slot vectors indexed by cycle modulo the
// ring size: send() appends to the slot that becomes visible at now+latency,
// begin_cycle() clears the slot about to be reused and exposes the current
// one. Slot vectors keep their capacity across cycles, so a warmed-up
// channel never allocates (docs/PERF.md). begin_cycle must be called for
// every consecutive cycle, which the Network's step loop guarantees.

#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/tickable.hpp"

namespace noc {

template <typename T>
class Channel {
 public:
  explicit Channel(int latency = 1)
      : latency_(latency), slots_(static_cast<size_t>(latency + 1)) {
    NOC_EXPECTS(latency >= 0);
  }

  int latency() const { return latency_; }

  /// Send a message during tick `now`; it arrives at `now + latency`.
  void send(Cycle now, T msg) {
    slots_[slot_index(now + latency_)].push_back(std::move(msg));
  }

  /// Called once at the start of every tick (before any component runs):
  /// recycles the slot whose messages were exposed latency+1 ticks ago (it
  /// becomes this tick's send target) and exposes this tick's arrivals.
  void begin_cycle(Cycle now) {
    NOC_EXPECTS(prev_ < 0 || now == prev_ + 1);  // a gap would drop messages
    prev_ = now;
    slots_[slot_index(now + latency_)].clear();
    cur_ = slot_index(now);
  }

  /// Messages arriving this tick, in send order.
  const std::vector<T>& arrivals() const { return slots_[cur_]; }

  /// Take all arrivals (consuming them so repeated reads are safe).
  std::vector<T> take_arrivals() {
    std::vector<T> out;
    out.swap(slots_[cur_]);
    return out;
  }

  bool idle() const {
    for (const auto& s : slots_)
      if (!s.empty()) return false;
    return true;
  }

  size_t in_flight_count() const {
    size_t n = 0;
    for (size_t i = 0; i < slots_.size(); ++i)
      if (i != cur_) n += slots_[i].size();
    return n;
  }

 private:
  size_t slot_index(Cycle c) const {
    return static_cast<size_t>(c % (latency_ + 1));
  }

  int latency_;
  std::vector<std::vector<T>> slots_;
  size_t cur_ = 0;
  Cycle prev_ = -1;
};

}  // namespace noc

#pragma once
// Point-to-point synchronous channels (pipelined wires).
//
// A Channel<T> models a set of wires with a fixed latency in cycles:
// messages sent during tick t become visible to the receiver's tick at
// t + latency. Latency 0 is allowed for the NIC->router lookahead shortcut
// (the NIC is physically adjacent to its router and its injection request
// feeds mSA-II combinationally); correctness then relies on the global
// phase order executing the sender before the receiver in the same tick.
//
// Storage is a ring of latency+1 slot vectors indexed by cycle modulo the
// ring size: send() appends to the slot that becomes visible at now+latency,
// begin_cycle() clears the slot about to be reused and exposes the current
// one. Slot vectors keep their capacity across cycles, so a warmed-up
// channel never allocates (docs/PERF.md).
//
// Activity contract (docs/PERF.md "activity-gated stepping"): a channel
// holding any message must receive begin_cycle for every consecutive cycle
// until it is fully drained -- the Network keeps such channels on its active
// list. While a channel is drained, begin_cycle may be skipped entirely:
// every slot is empty, so send() simply fast-forwards the ring to the
// current cycle. An ungated Network calls begin_cycle on every channel every
// cycle, which trivially satisfies the contract.

#include <span>
#include <utility>
#include <vector>

#include "common/active_set.hpp"
#include "common/assert.hpp"
#include "sim/tickable.hpp"

namespace noc {

template <typename T>
class Channel {
 public:
  explicit Channel(int latency = 1)
      : latency_(latency), slots_(static_cast<size_t>(latency + 1)) {
    NOC_EXPECTS(latency >= 0);
  }

  int latency() const { return latency_; }

  /// Activity wiring (installed by a gating Network): the channel inserts
  /// itself into `reg` under `id` whenever it holds messages, and
  /// `items_counter` (shared across all of a Network's channels) tracks the
  /// aggregate in-flight count for O(1) quiescence checks. Either pointer
  /// may be null.
  void set_activity(ActiveList* reg, int id, int64_t* items_counter) {
    registry_ = reg;
    id_ = id;
    items_counter_ = items_counter;
  }

  /// Wake target fired when arrivals become visible to the receiver: at
  /// begin_cycle for latency >= 1, at send for latency 0 (whose messages
  /// are visible the same cycle, before the receiver's phase runs).
  void set_wake_target(const WakeHook& wake) { wake_ = wake; }

  /// Cross-span boundary mode (docs/PERF.md Layer 4). A deferred channel's
  /// send() only appends to a private staging buffer -- it touches none of
  /// the ring, counters, registry or wake state, so the sender's worker may
  /// run concurrently with the receiver's. The receiver-side worker replays
  /// the staged messages through the normal send path with commit_staged()
  /// after the compute-phase barrier of the SAME cycle, preserving the
  /// exact arrival cycle (now + latency) and send order. Latency-0 channels
  /// cannot be deferred: their wake must fire inside the sender's phase.
  void set_deferred(bool on) {
    NOC_EXPECTS(!on || latency_ >= 1);
    deferred_ = on;
    // Zero-alloc invariant: pre-size the staging buffer for the per-cycle
    // worst case (one flit, a credit per VC, one lookahead) at partition
    // time rather than growing it under load.
    if (on) staging_.reserve(16);
  }
  bool deferred() const { return deferred_; }

  /// Send a message during tick `now`; it arrives at `now + latency`.
  /// By const reference: messages here are trivially copyable and copied
  /// into the slot exactly once (a by-value parameter cost a second copy
  /// per send on the hot path).
  void send(Cycle now, const T& msg) {
    if (deferred_) {
      staging_.push_back(msg);
      return;
    }
    send_direct(now, msg);
  }

  /// Replay messages staged by a cross-span sender during tick `now`. Must
  /// run on the owning (receiver-side) worker, after the sender's phase.
  void commit_staged(Cycle now) {
    for (const auto& msg : staging_) send_direct(now, msg);
    staging_.clear();
  }

  /// Called at the start of a tick, before any component runs: recycles the
  /// slot whose messages were exposed latency+1 ticks ago (it becomes this
  /// tick's send target) and exposes this tick's arrivals, waking the
  /// receiver when they are non-empty.
  void begin_cycle(Cycle now) {
    if (prev_ >= 0 && now == prev_ + 1) {
      // Consecutive tick (the hot path, modulo-free): the ring advances one
      // slot per cycle, so the slot to recycle -- slot_index(now + latency_)
      // -- is exactly the slot exposed last tick, i.e. the old cur_.
      auto& recycle = slots_[cur_];
      if (!recycle.empty()) {
        stored_ -= static_cast<int>(recycle.size());
        if (items_counter_ != nullptr)
          *items_counter_ -= static_cast<int64_t>(recycle.size());
        recycle.clear();
      }
      ++cur_;
      if (cur_ == slots_.size()) cur_ = 0;
    } else {
      // First call, a gap, or a same-cycle restep. A gap is only legal
      // while fully drained (activity contract above); all slots are empty,
      // so there is nothing to recycle.
      NOC_EXPECTS(prev_ < 0 || stored_ == 0);
      cur_ = slot_index(now);
    }
    prev_ = now;
    if (!slots_[cur_].empty()) wake_.fire();
  }

  /// Messages arriving this tick, in send order (a borrowed view: valid
  /// until the next begin_cycle / take_arrivals on this channel).
  std::span<const T> arrivals() const {
    const auto& s = slots_[cur_];
    return {s.data(), s.size()};
  }

  /// Take all arrivals (consuming them so repeated reads are safe).
  std::vector<T> take_arrivals() {
    std::vector<T> out;
    out.swap(slots_[cur_]);
    stored_ -= static_cast<int>(out.size());
    if (items_counter_ != nullptr)
      *items_counter_ -= static_cast<int64_t>(out.size());
    return out;
  }

  /// Total messages in the ring, including arrivals already exposed but not
  /// yet recycled. O(1).
  int stored() const { return stored_; }

  bool idle() const { return stored_ == 0; }

 private:
  size_t slot_index(Cycle c) const {
    return static_cast<size_t>(c % (latency_ + 1));
  }

  void send_direct(Cycle now, const T& msg) {
    if (stored_ == 0 && prev_ != now) {
      // Drained channels may have skipped begin_cycle (activity gating);
      // every slot is empty, so realigning the ring to `now` is safe.
      prev_ = now;
      cur_ = slot_index(now);
    }
    NOC_ASSERT(prev_ == now);  // active channels are stepped every cycle
    // cur_ == slot_index(now), so the send target slot_index(now + latency_)
    // is cur_ + latency_ with a single conditional wrap (latency_ < ring).
    size_t tgt = cur_ + static_cast<size_t>(latency_);
    if (tgt >= slots_.size()) tgt -= slots_.size();
    slots_[tgt].push_back(msg);
    ++stored_;
    if (items_counter_ != nullptr) ++*items_counter_;
    if (latency_ == 0) wake_.fire();
    if (registry_ != nullptr) registry_->insert(id_);
  }

  int latency_;
  std::vector<std::vector<T>> slots_;
  size_t cur_ = 0;
  Cycle prev_ = -1;
  int stored_ = 0;
  ActiveList* registry_ = nullptr;
  int id_ = -1;
  int64_t* items_counter_ = nullptr;
  WakeHook wake_;
  bool deferred_ = false;
  std::vector<T> staging_;  // cross-span sends awaiting commit_staged
};

}  // namespace noc

// The steady-state no-allocation invariant (docs/PERF.md): once a network
// is warmed up, Network::step must not touch the heap. Verified with a
// counting global operator new/delete -- the strongest form of the check,
// since it also catches allocations hidden inside library containers.
//
// This TU must not run anything between the counter snapshots except the
// simulation itself (gtest assertions allocate).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "noc/network.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"
#include "sim/thread_pool.hpp"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

// The nothrow forms must be overridden too: libstdc++ allocates temporary
// buffers (std::stable_sort etc.) through them, and mixing its allocator
// with our free() is an alloc-dealloc mismatch under ASan.
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace noc {
namespace {

uint64_t allocations_during_run(NetworkConfig cfg, Cycle warmup,
                                Cycle measured) {
  Network net(cfg);
  Simulation sim(net);
  sim.run(warmup);
  // Window bookkeeping (metrics + per-source transaction stats) is part of
  // the measured regime in real sweeps.
  net.begin_measurement_window(sim.now());
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim.run(measured);
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  net.end_measurement_window(sim.now());
  return after - before;
}

TEST(ZeroAlloc, ProposedRouterSteadyStateMixedTraffic) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, ProposedRouterSteadyStateBroadcast) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.offered_flits_per_node_cycle = 0.04;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, BaselineRouterWithNicDuplication) {
  // The unicast baseline duplicates broadcasts at the NIC: its packet
  // queues see far more churn, and must still be allocation-free once the
  // ring capacities have grown to the steady-state high-water mark.
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.04;
  EXPECT_EQ(allocations_during_run(cfg, 4000, 6000), 0u);
}

TEST(ZeroAlloc, GatedIdenticalPrbsSleepWake) {
  // Sparse identical-PRBS traffic drives the activity machinery hardest:
  // NICs park on timed wake-ups between synchronized bursts, channels churn
  // on and off the active list, routers sleep between waves. None of that
  // bookkeeping may touch the heap.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.identical_prbs = true;
  cfg.traffic.offered_flits_per_node_cycle = 0.05;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, FourStagePipelineSteadyState) {
  NetworkConfig cfg = NetworkConfig::baseline_4stage(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.08;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, ClosedLoopSourceSteadyState) {
  // Closed-loop coherence: outstanding-miss tracking, owed-response queues
  // and latency stats must all live in pre-sized source state.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 8;
  cfg.workload.closed.issue_prob = 1.0;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, ClosedLoopWithNicDuplicationSteadyState) {
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 2;
  cfg.workload.closed.issue_prob = 0.02;
  EXPECT_EQ(allocations_during_run(cfg, 4000, 6000), 0u);
}

TEST(ZeroAlloc, TraceReplaySteadyState) {
  // Record a trace first (recording may allocate freely), then verify the
  // replay datapath is allocation-free across the measured window.
  auto trace = std::make_shared<Trace>();
  {
    NetworkConfig rec = NetworkConfig::proposed(4);
    rec.traffic.pattern = TrafficPattern::MixedPaper;
    rec.traffic.offered_flits_per_node_cycle = 0.08;
    Network net(rec);
    net.record_trace(trace.get());
    Simulation sim(net);
    sim.run(10000);
  }
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::Trace;
  cfg.workload.trace.trace = trace;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, O1TurnSteadyStateUniformSaturated) {
  // Lane-partitioned VC allocation (stamped per-lane free queues) and the
  // per-packet order coin are inline state; saturating load keeps both
  // lanes churning.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::O1Turn;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.50;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, O1TurnSteadyStateMixedTraffic) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::O1Turn;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, AdaptiveSteadyStateUniformSaturated) {
  // The adaptive re-aim path (productive-port scoring + escape fallback)
  // runs every VA retry under backpressure; it must stay heap-free.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.50;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, AdaptiveSteadyStateClosedLoop) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 8;
  cfg.workload.closed.issue_prob = 1.0;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, LargeK12SteadyStateMixedTraffic) {
  // k=12 (144 nodes, multi-word DestMask): the widened masks live inline in
  // Flit/Packet/Branch, so the invariant must hold unchanged -- any heap
  // touch here means mask state leaked into a dynamic container.
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.02;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 4000), 0u);
}

TEST(ZeroAlloc, LargeK12ClosedLoopSteadyState) {
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 2;
  cfg.workload.closed.issue_prob = 0.02;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 4000), 0u);
}

TEST(ZeroAlloc, ParallelSteppingSteadyState) {
  // Intra-network parallel stepping (docs/PERF.md Layer 4): per-span
  // scratch (active lists, masks, staging buffers, capture shards) is
  // preallocated at partition time or grown during warmup; the steady-state
  // barrier loop itself must never touch the heap. Force a real budget so
  // the threaded schedule actually runs even on small CI hosts.
  const int saved = noc::thread_budget::total();
  noc::thread_budget::set_total(8);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.step_threads = 4;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.06;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
  noc::thread_budget::set_total(saved);
}

TEST(ZeroAlloc, ParallelSteppingUngatedSteadyState) {
  const int saved = noc::thread_budget::total();
  noc::thread_budget::set_total(8);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.step_threads = 2;
  cfg.activity_gating = false;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.08;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 5000), 0u);
  noc::thread_budget::set_total(saved);
}

TEST(ZeroAlloc, PortGatingSteadyState) {
  // Per-port gating (docs/PERF.md Layer 5): the wake-port words, the
  // internal-work mask build and the phase skips are all inline state; the
  // sparse identical-PRBS regime churns ports on and off every burst.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.port_gating = true;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.identical_prbs = true;
  cfg.traffic.offered_flits_per_node_cycle = 0.05;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
  cfg.router.port_gating = false;  // router-level gating only
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, PortGatingParallelSteppingSteadyState) {
  // The per-port axis under domain-decomposed stepping: wake-port words are
  // written by channel hooks on the receiver's span, so the threaded
  // schedule exercises the same inline paths (and must stay heap-free) with
  // the bits armed.
  const int saved = noc::thread_budget::total();
  noc::thread_budget::set_total(8);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.06;
  cfg.router.port_gating = true;
  cfg.step_threads = 1;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
  cfg.step_threads = 4;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
  noc::thread_budget::set_total(saved);
}

TEST(ZeroAlloc, FaultedAdaptiveSteadyState) {
  // Fault mode (docs/FAULTS.md): the schedule advance, the escape-tree
  // recompute on each epoch change, the in-flight branch conversion and the
  // drop-branch sweep all run INSIDE the measured window here (kill at
  // 4000, revive at 5000, kill again at 7000 against warmup 3000 + 6000
  // measured) and must never touch the heap -- FaultState preallocates
  // every table at init.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.20;
  cfg.fault.kill_link(4000, 5, 6)
      .kill_link(4000, 9, 10)
      .degrade_router(4000, 6)
      .revive_link(5000, 5, 6)
      .revive_link(5000, 9, 10)
      .restore_router(5000, 6)
      .kill_link(7000, 10, 11);
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, FaultedParallelSteppingSteadyState) {
  // The same mid-window fault schedule under span-parallel stepping: the
  // main-thread apply_faults + on_topology_change fan-out and the capture
  // replay of PacketDropped events must stay heap-free too.
  const int saved = noc::thread_budget::total();
  noc::thread_budget::set_total(8);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.step_threads = 4;
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  cfg.fault.kill_link(4000, 27, 35)
      .kill_link(4000, 28, 36)
      .revive_link(6000, 27, 35)
      .kill_link(7500, 18, 19);
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
  noc::thread_budget::set_total(saved);
}

TEST(ZeroAlloc, TelemetrySteadyState) {
  // Telemetry (docs/OBSERVABILITY.md): the stall counters are inline
  // per-router arrays, the time-series ring and the trace-event buffer are
  // reserved at construction, and tracing stops (rather than growing) when
  // the buffer fills -- so probes-on steady state must stay heap-free with
  // sampling AND packet-lifecycle tracing armed inside the measured window.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 32;
  cfg.telemetry.trace_sample_every = 16;
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
}

TEST(ZeroAlloc, TelemetryFaultedParallelSteppingSteadyState) {
  // Probes on under span-parallel stepping with a mid-window kill/revive:
  // tracing auto-disables in parallel mode, but the per-router stall rows,
  // the main-thread time-series sampling and the fault-marker ring all stay
  // armed -- and every one of them is preallocated.
  const int saved = noc::thread_budget::total();
  noc::thread_budget::set_total(8);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.step_threads = 4;
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 32;
  cfg.telemetry.trace_sample_every = 16;
  cfg.fault.kill_link(4000, 27, 35).revive_link(6000, 27, 35);
  EXPECT_EQ(allocations_during_run(cfg, 3000, 6000), 0u);
  noc::thread_budget::set_total(saved);
}

TEST(ZeroAlloc, SanityCounterIsLive) {
  // Guard against the override silently not linking: an explicit heap
  // allocation must bump the counter.
  const uint64_t before = g_allocations.load();
  auto* p = new int(42);
  EXPECT_GT(g_allocations.load(), before);
  delete p;
}

}  // namespace
}  // namespace noc

// Table 1 formulas: printed values for the paper's configurations, and the
// documented relationship to exact enumeration (DESIGN.md quirks).
#include <gtest/gtest.h>

#include "theory/mesh_limits.hpp"

namespace noc::theory {
namespace {

TEST(Table1, PaperValuesK4) {
  // The fabricated 4x4: unicast H = 2(4+1)/3 = 3.33, broadcast H = 5.5.
  EXPECT_NEAR(unicast_avg_hops(4), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(broadcast_avg_hops(4), 5.5, 1e-12);
}

TEST(Table1, PaperValuesK8) {
  // Table 2's 8x8 columns: 6 (unicast) and 11.5 (broadcast).
  EXPECT_NEAR(unicast_avg_hops(8), 6.0, 1e-12);
  EXPECT_NEAR(broadcast_avg_hops(8), 11.5, 1e-12);
}

TEST(Table1, OddKBroadcastFormulaIsExact) {
  for (int k : {3, 5, 7}) {
    EXPECT_NEAR(broadcast_avg_hops(k), broadcast_avg_hops_exact(k), 1e-9)
        << "k=" << k;
  }
}

TEST(Table1, EvenKBroadcastFormulaIsHalfAboveExact) {
  // (3k-1)/2 vs the exact (3k-2)/2: the printed formula is 0.5 loose.
  for (int k : {2, 4, 6, 8}) {
    EXPECT_NEAR(broadcast_avg_hops(k) - broadcast_avg_hops_exact(k), 0.5, 1e-9)
        << "k=" << k;
  }
}

TEST(Table1, UnicastFormulaVsExact) {
  // 2(k+1)/3 = E[|dx|+|dy|] conditioned on per-dimension difference; it
  // upper-bounds the exact uniform (src != dst) average, which is 2k/3.
  for (int k : {2, 3, 4, 6, 8}) {
    const double exact = unicast_avg_hops_exact(k);
    EXPECT_NEAR(exact, 2.0 * k / 3.0, 1e-9);
    EXPECT_GT(unicast_avg_hops(k), exact);
  }
}

TEST(Table1, ChannelLoads) {
  const double R = 0.1;
  EXPECT_DOUBLE_EQ(unicast_bisection_load(4, R), 0.1);     // kR/4
  EXPECT_DOUBLE_EQ(unicast_ejection_load(R), 0.1);         // R
  EXPECT_DOUBLE_EQ(broadcast_bisection_load(4, R), 0.4);   // k^2 R/4
  EXPECT_DOUBLE_EQ(broadcast_ejection_load(4, R), 1.6);    // k^2 R
}

TEST(Table1, ThroughputLimits) {
  // Unicast: ejection-limited up to k=4, bisection beyond.
  EXPECT_DOUBLE_EQ(unicast_max_injection_rate(2), 1.0);
  EXPECT_DOUBLE_EQ(unicast_max_injection_rate(4), 1.0);
  EXPECT_DOUBLE_EQ(unicast_max_injection_rate(8), 0.5);
  EXPECT_DOUBLE_EQ(unicast_max_injection_rate(16), 0.25);
  // Broadcast: always ejection-limited at 1/k^2.
  EXPECT_DOUBLE_EQ(broadcast_max_injection_rate(4), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(broadcast_max_injection_rate(8), 1.0 / 64.0);
}

TEST(Table1, AggregateLimitIs1024GbpsForTheChip) {
  // 16 nodes x 64b x 1GHz (paper Sec 4.1).
  EXPECT_DOUBLE_EQ(aggregate_throughput_limit_gbps(4), 1024.0);
  EXPECT_DOUBLE_EQ(aggregate_throughput_limit_gbps(8), 4096.0);
}

TEST(Table1, EnergyLimits) {
  const double ex = 1.0, el = 2.0;
  // Unicast: H crossbars + ejection crossbar + H links.
  EXPECT_NEAR(unicast_energy_limit(4, ex, el),
              10.0 / 3.0 * ex + ex + 10.0 / 3.0 * el, 1e-12);
  // Broadcast: k^2 crossbars + (k^2-1) links -- grows quadratically.
  EXPECT_NEAR(broadcast_energy_limit(4, ex, el), 16 * ex + 15 * el, 1e-12);
  EXPECT_GT(broadcast_energy_limit(8, ex, el),
            3.9 * broadcast_energy_limit(4, ex, el));
}

TEST(Fig5Limits, LatencyLimitLines) {
  // Unicast request: 3.33 hops + 2 NIC cycles.
  EXPECT_NEAR(zero_load_latency_limit_unicast(4, 1), 16.0 / 3.0, 1e-12);
  // 5-flit response adds 4 cycles of serialization.
  EXPECT_NEAR(zero_load_latency_limit_unicast(4, 5), 16.0 / 3.0 + 4, 1e-12);
  EXPECT_NEAR(zero_load_latency_limit_broadcast(4, 1), 7.5, 1e-12);
  // Mixed = 0.5*7.5 + 0.25*5.33 + 0.25*9.33.
  EXPECT_NEAR(zero_load_latency_limit_mixed(4), 7.4167, 1e-3);
}

class LimitMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(LimitMonotonicity, HopsGrowWithK) {
  const int k = GetParam();
  EXPECT_LT(unicast_avg_hops(k), unicast_avg_hops(k + 1));
  EXPECT_LT(broadcast_avg_hops(k), broadcast_avg_hops(k + 2));
  EXPECT_GT(broadcast_avg_hops(k), unicast_avg_hops(k));
}

INSTANTIATE_TEST_SUITE_P(Ks, LimitMonotonicity,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12));

}  // namespace
}  // namespace noc::theory

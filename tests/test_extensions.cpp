// Extensions beyond the paper's figures: YX-tree routing (to probe the
// paper's "XY routing imbalance" explanation) and the chip's 0.8V second
// operating voltage (Fig 2 lists 1.1V and 0.8V supplies).
#include <gtest/gtest.h>

#include <bit>

#include "noc/experiment.hpp"
#include "noc/routing.hpp"
#include "power/energy_model.hpp"
#include "power/tech_params.hpp"

namespace noc {
namespace {

TEST(YxRouting, PartitionDisjointAndComplete) {
  MeshGeometry g(4);
  for (NodeId here = 0; here < g.num_nodes(); ++here) {
    const RouteSet rs = yx_tree_route(g, here, g.all_nodes_mask());
    DestMask seen;
    for (int p = 0; p < kNumPorts; ++p) {
      EXPECT_TRUE((seen & rs.port_dests[static_cast<size_t>(p)]).none());
      seen |= rs.port_dests[static_cast<size_t>(p)];
    }
    EXPECT_EQ(seen, g.all_nodes_mask());
  }
}

TEST(YxRouting, ResolvesYBeforeX) {
  MeshGeometry g(4);
  // From (0,0) to (2,2): YX goes North first.
  const RouteSet rs =
      yx_tree_route(g, g.id(0, 0), MeshGeometry::node_mask(g.id(2, 2)));
  EXPECT_TRUE(rs[PortDir::North].any());
  EXPECT_TRUE(rs[PortDir::East].none());
}

TEST(YxRouting, MirrorsXyTree) {
  // YX at (x,y) toward dests == XY at (y,x) toward transposed dests.
  MeshGeometry g(4);
  const NodeId here = g.id(1, 2);
  const DestMask dests = MeshGeometry::node_mask(g.id(3, 0)) |
                         MeshGeometry::node_mask(g.id(0, 3));
  const RouteSet yx = yx_tree_route(g, here, dests);
  DestMask dests_t;
  for (NodeId n : g.nodes_in(dests)) {
    const Coord c = g.coord(n);
    dests_t |= MeshGeometry::node_mask(g.id(c.y, c.x));
  }
  const RouteSet xy = xy_tree_route(g, g.id(2, 1), dests_t);
  EXPECT_EQ(std::popcount(yx.request_vector()),
            std::popcount(xy.request_vector()));
  // N<->E and S<->W swap under transposition.
  EXPECT_EQ(yx[PortDir::North].any(), xy[PortDir::East].any());
  EXPECT_EQ(yx[PortDir::South].any(), xy[PortDir::West].any());
}

TEST(YxRouting, NetworkDeliversEverything) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::YX;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(YxRouting, TransposeFavorsOneOrder) {
  // Transpose traffic loads XY and YX asymmetrically -- routing order is
  // a real design lever, which is the point of the ablation.
  const MeasureOptions fast{.warmup = 1000, .window = 4000};
  NetworkConfig xy = NetworkConfig::proposed(4);
  NetworkConfig yx = NetworkConfig::proposed(4);
  yx.router.routing = RoutePolicy::YX;
  xy.traffic.pattern = yx.traffic.pattern = TrafficPattern::Transpose;
  const auto sx = find_saturation(xy, fast);
  const auto sy = find_saturation(yx, fast);
  // Same zero-load (both minimal); throughputs within 2x of each other and
  // both deliver.
  EXPECT_NEAR(sx.zero_load_latency, sy.zero_load_latency, 1.0);
  EXPECT_GT(sx.saturation_gbps, 0.0);
  EXPECT_GT(sy.saturation_gbps, 0.0);
}

TEST(VoltageScaling, PowerDropsQuadraticallyAt08V) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto pt = measure_point(cfg, 0.02, {.warmup = 1000, .window = 4000});
  const auto tech = power::calibrated_tech45();
  const auto p11 =
      power::compute_power_at_voltage(pt.energy, 16, tech, true, 1.0, 1.1);
  const auto p08 =
      power::compute_power_at_voltage(pt.energy, 16, tech, true, 1.0, 0.8);
  EXPECT_LT(p08.total_mw(), p11.total_mw());
  // Buffers are pure-VDD dynamic: exactly (0.8/1.1)^2.
  EXPECT_NEAR(p08.buffers_mw / p11.buffers_mw, 0.8 * 0.8 / (1.1 * 1.1), 1e-9);
  // Leakage scales sub-quadratically.
  EXPECT_GT(p08.leakage_mw / p11.leakage_mw,
            p08.buffers_mw / p11.buffers_mw);
  // Nominal voltage reproduces the base model.
  const auto base = power::compute_power(pt.energy, 16, tech, true);
  EXPECT_NEAR(
      power::compute_power_at_voltage(pt.energy, 16, tech, true, 1.0, 1.1)
          .total_mw(),
      base.total_mw(), 1e-9);
}

TEST(VoltageScaling, FmaxDerates) {
  EXPECT_NEAR(power::fmax_at_voltage(1.1), 1.04, 1e-9);
  const double f08 = power::fmax_at_voltage(0.8);
  EXPECT_LT(f08, 1.04);
  EXPECT_GT(f08, 0.3);
  // Monotone in voltage.
  EXPECT_LT(power::fmax_at_voltage(0.7), f08);
  EXPECT_GT(power::fmax_at_voltage(1.2), 1.04);
}

}  // namespace
}  // namespace noc

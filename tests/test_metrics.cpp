#include <gtest/gtest.h>

#include "noc/metrics.hpp"

namespace noc {
namespace {

Flit tail_flit(PacketId id, int seq = 0, int len = 1) {
  Flit f;
  f.packet_id = id;
  f.logical_id = id;
  f.seq = seq;
  f.packet_len = len;
  f.type = seq == len - 1 ? (len == 1 ? FlitType::HeadTail : FlitType::Tail)
                          : (seq == 0 ? FlitType::Head : FlitType::Body);
  return f;
}

TEST(Metrics, SingleDeliveryLatency) {
  MeshGeometry g(4);
  Metrics m(g);
  m.begin_window(0);
  m.on_logical_packet(1, PacketKind::UnicastRequest, 10, 1);
  m.on_flit_received(1, tail_flit(1), 25);
  m.end_window(100);
  EXPECT_EQ(m.completed_packets(), 1);
  EXPECT_DOUBLE_EQ(m.avg_packet_latency(), 15.0);
  EXPECT_EQ(m.open_packets(), 0);
}

TEST(Metrics, BroadcastCompletesAtLastDelivery) {
  MeshGeometry g(4);
  Metrics m(g);
  m.begin_window(0);
  m.on_logical_packet(2, PacketKind::Broadcast, 0, 3);
  m.on_flit_received(2, tail_flit(2), 5);
  m.on_flit_received(2, tail_flit(2), 9);
  EXPECT_EQ(m.completed_packets(), 0);  // one destination still waiting
  m.on_flit_received(2, tail_flit(2), 14);
  EXPECT_EQ(m.completed_packets(), 1);
  m.end_window(50);
  EXPECT_DOUBLE_EQ(m.avg_packet_latency(), 14.0);  // latency to the LAST
  EXPECT_DOUBLE_EQ(m.latency_stat(PacketKind::Broadcast).mean(), 14.0);
}

TEST(Metrics, BodyFlitsCountTowardThroughputNotCompletion) {
  MeshGeometry g(4);
  Metrics m(g);
  m.begin_window(0);
  m.on_logical_packet(3, PacketKind::UnicastResponse, 0, 1);
  for (int s = 0; s < 5; ++s) m.on_flit_received(3, tail_flit(3, s, 5), s + 9);
  m.end_window(20);
  EXPECT_EQ(m.received_flits(), 5);
  EXPECT_EQ(m.completed_packets(), 1);
  EXPECT_DOUBLE_EQ(m.received_flits_per_cycle(), 0.25);
}

TEST(Metrics, DuplicatedCopiesAccumulateOneLogicalRecord) {
  MeshGeometry g(4);
  Metrics m(g);
  m.begin_window(0);
  // NIC duplication reports each copy; completion requires all 15.
  for (int i = 0; i < 15; ++i)
    m.on_logical_packet(4, PacketKind::Broadcast, 2, 1);
  for (int i = 0; i < 14; ++i) m.on_flit_received(4, tail_flit(4), 10 + i);
  EXPECT_EQ(m.completed_packets(), 0);
  m.on_flit_received(4, tail_flit(4), 40);
  EXPECT_EQ(m.completed_packets(), 1);
  m.end_window(50);
  EXPECT_DOUBLE_EQ(m.avg_packet_latency(), 38.0);
}

TEST(Metrics, WindowExcludesOutsideCompletions) {
  MeshGeometry g(4);
  Metrics m(g);
  m.on_logical_packet(5, PacketKind::UnicastRequest, 0, 1);
  m.on_flit_received(5, tail_flit(5), 3);  // before the window: not counted
  m.begin_window(10);
  m.on_logical_packet(6, PacketKind::UnicastRequest, 11, 1);
  m.on_flit_received(6, tail_flit(6), 15);
  m.end_window(20);
  EXPECT_EQ(m.completed_packets(), 1);
  EXPECT_EQ(m.received_flits(), 1);
  EXPECT_EQ(m.total_completed(), 2);  // lifetime counter still sees both
}

TEST(Metrics, LinkLoadAccounting) {
  MeshGeometry g(4);
  Metrics m(g);
  m.begin_window(0);
  // 10 flits east across the bisection on one link, 4 ejections elsewhere.
  for (int i = 0; i < 10; ++i) m.on_link_flit(g.id(1, 2), PortDir::East);
  for (int i = 0; i < 4; ++i) m.on_link_flit(g.id(0, 0), PortDir::Local);
  m.end_window(20);
  EXPECT_DOUBLE_EQ(m.max_bisection_link_load(), 0.5);
  EXPECT_DOUBLE_EQ(m.max_ejection_link_load(), 0.2);
  EXPECT_DOUBLE_EQ(m.avg_ejection_link_load(), 4.0 / 16 / 20);
}

}  // namespace
}  // namespace noc

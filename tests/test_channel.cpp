#include <gtest/gtest.h>

#include "sim/channel.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

TEST(Channel, OneCycleLatency) {
  Channel<int> ch(1);
  ch.begin_cycle(0);
  ch.send(0, 42);
  EXPECT_TRUE(ch.arrivals().empty());
  ch.begin_cycle(1);
  ASSERT_EQ(ch.arrivals().size(), 1u);
  EXPECT_EQ(ch.arrivals()[0], 42);
  ch.begin_cycle(2);
  EXPECT_TRUE(ch.arrivals().empty());
}

TEST(Channel, ZeroLatencyVisibleSameCycle) {
  Channel<int> ch(0);
  ch.begin_cycle(5);
  ch.send(5, 7);
  ASSERT_EQ(ch.arrivals().size(), 1u);
  EXPECT_EQ(ch.arrivals()[0], 7);
  ch.begin_cycle(6);
  EXPECT_TRUE(ch.arrivals().empty());
}

TEST(Channel, MultiCycleLatencyPreservesOrder) {
  Channel<int> ch(3);
  ch.begin_cycle(0);
  ch.send(0, 1);
  ch.send(0, 2);
  ch.begin_cycle(1);
  ch.send(1, 3);
  ch.begin_cycle(2);
  EXPECT_TRUE(ch.arrivals().empty());
  ch.begin_cycle(3);
  ASSERT_EQ(ch.arrivals().size(), 2u);
  EXPECT_EQ(ch.arrivals()[0], 1);
  EXPECT_EQ(ch.arrivals()[1], 2);
  ch.begin_cycle(4);
  ASSERT_EQ(ch.arrivals().size(), 1u);
  EXPECT_EQ(ch.arrivals()[0], 3);
}

TEST(Channel, TakeArrivalsConsumes) {
  Channel<int> ch(1);
  ch.begin_cycle(0);
  ch.send(0, 9);
  ch.begin_cycle(1);
  auto got = ch.take_arrivals();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(ch.arrivals().empty());
}

TEST(Channel, IdleTracking) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.idle());
  ch.begin_cycle(0);
  ch.send(0, 1);
  EXPECT_FALSE(ch.idle());
  ch.begin_cycle(1);
  EXPECT_FALSE(ch.idle());
  ch.begin_cycle(2);
  EXPECT_FALSE(ch.idle());  // arrival pending consumption
  ch.begin_cycle(3);
  EXPECT_TRUE(ch.idle());
}

TEST(Channel, DrainedChannelToleratesSkippedCycles) {
  // Activity gating stops calling begin_cycle on drained channels; a later
  // send must fast-forward the ring and deliver with normal latency.
  Channel<int> ch(1);
  ch.begin_cycle(0);
  ch.send(0, 1);
  ch.begin_cycle(1);
  ASSERT_EQ(ch.arrivals().size(), 1u);
  ch.begin_cycle(2);  // recycles the exposed slot; channel fully drained
  EXPECT_EQ(ch.stored(), 0);

  ch.send(10, 5);  // eight skipped begin_cycles
  EXPECT_EQ(ch.stored(), 1);
  ch.begin_cycle(11);
  ASSERT_EQ(ch.arrivals().size(), 1u);
  EXPECT_EQ(ch.arrivals()[0], 5);
  ch.begin_cycle(12);
  EXPECT_EQ(ch.stored(), 0);
  EXPECT_TRUE(ch.idle());
}

TEST(Channel, ZeroLatencySendAfterSkippedCycles) {
  // The NIC->router lookahead shortcut: latency 0, first send may happen on
  // a cycle whose begin_cycle was skipped, and the message must be visible
  // the same cycle.
  Channel<int> ch(0);
  ch.begin_cycle(0);
  ch.begin_cycle(1);
  ch.send(7, 42);
  ASSERT_EQ(ch.arrivals().size(), 1u);
  EXPECT_EQ(ch.arrivals()[0], 42);
  ch.begin_cycle(8);
  EXPECT_TRUE(ch.arrivals().empty());
  EXPECT_EQ(ch.stored(), 0);
}

TEST(Channel, StoredCountsEverythingInTheRing) {
  Channel<int> ch(2);
  ch.begin_cycle(0);
  ch.send(0, 1);
  ch.send(0, 2);
  EXPECT_EQ(ch.stored(), 2);
  ch.begin_cycle(1);
  ch.send(1, 3);
  EXPECT_EQ(ch.stored(), 3);
  ch.begin_cycle(2);  // two arrivals exposed, still stored
  EXPECT_EQ(ch.stored(), 3);
  ch.begin_cycle(3);  // first pair recycled
  EXPECT_EQ(ch.stored(), 1);
  ch.begin_cycle(4);
  EXPECT_EQ(ch.stored(), 0);
}

struct Counter : Steppable {
  Cycle last = -1;
  int steps = 0;
  void step(Cycle now) override {
    last = now;
    ++steps;
  }
};

TEST(Simulation, RunAdvancesCycles) {
  Counter c;
  Simulation sim(c);
  sim.run(10);
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(c.steps, 10);
  EXPECT_EQ(c.last, 9);
}

TEST(Simulation, RunUntilPredicate) {
  Counter c;
  Simulation sim(c);
  EXPECT_TRUE(sim.run_until([&] { return c.steps >= 5; }, 100));
  EXPECT_EQ(c.steps, 5);
  EXPECT_FALSE(sim.run_until([&] { return false; }, 10));
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include "noc/buffers.hpp"
#include "noc/packet.hpp"

namespace noc {
namespace {

TEST(VcConfig, PaperOrganization) {
  // Sec 3.3: 4 REQ VCs x 1 deep + 2 RESP VCs x 3 deep = 6 VCs / 10 buffers.
  VcConfig c;
  EXPECT_EQ(c.total_vcs(), 6);
  EXPECT_EQ(c.total_buffers(), 10);
  EXPECT_EQ(c.vc_base(MsgClass::Request), 0);
  EXPECT_EQ(c.vc_base(MsgClass::Response), 4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(c.mc_of_vc(v), MsgClass::Request);
    EXPECT_EQ(c.depth_of_vc(v), 1);
  }
  for (int v = 4; v < 6; ++v) {
    EXPECT_EQ(c.mc_of_vc(v), MsgClass::Response);
    EXPECT_EQ(c.depth_of_vc(v), 3);
  }
}

Flit make_head(int len) {
  Packet p;
  p.id = 1;
  p.src = 0;
  p.dest_mask = MeshGeometry::node_mask(5);
  p.length = len;
  return segment_packet(p).front();
}

TEST(InputVc, OpenPushPopClose) {
  InputVc vc;
  vc.configure(3);
  Packet p;
  p.id = 9;
  p.dest_mask = MeshGeometry::node_mask(2);
  p.length = 3;
  p.mc = MsgClass::Response;
  auto flits = segment_packet(p);
  BranchList br(1);
  br[0].out = PortDir::East;
  br[0].dests = p.dest_mask;
  vc.open_packet(flits[0], br);
  EXPECT_TRUE(vc.busy());
  for (const auto& f : flits) vc.push(f);
  EXPECT_EQ(vc.occupancy(), 3);
  EXPECT_TRUE(vc.has_seq(1));
  EXPECT_EQ(vc.flit_at_seq(2).seq, 2);

  // Branch advances; flits retire in order.
  for (int s = 0; s < 3; ++s) {
    vc.branches()[0].next_seq = s + 1;
    if (s == 2) vc.branches()[0].tail_sent = true;
    Flit f = vc.pop_front();
    EXPECT_EQ(f.seq, s);
  }
  EXPECT_TRUE(vc.all_branches_done());
  vc.close_packet();
  EXPECT_FALSE(vc.busy());
}

TEST(InputVc, CurrentSeqIsMinOverUnfinishedBranches) {
  InputVc vc;
  vc.configure(1);
  Flit h = make_head(1);
  BranchList br(3);
  br[0].out = PortDir::East;
  br[1].out = PortDir::North;
  br[2].out = PortDir::Local;
  for (auto& b : br) b.dests = DestMask::bit(0);
  vc.open_packet(h, br);
  EXPECT_EQ(vc.current_seq(), 0);
  vc.branches()[0].next_seq = 1;
  vc.branches()[0].tail_sent = true;
  EXPECT_EQ(vc.current_seq(), 0);  // two branches still at 0
  vc.branches()[1].next_seq = 1;
  vc.branches()[1].tail_sent = true;
  vc.branches()[2].next_seq = 1;
  vc.branches()[2].tail_sent = true;
  EXPECT_TRUE(vc.all_branches_done());
}

TEST(DownstreamState, CreditsMatchDepths) {
  DownstreamState ds;
  ds.configure(VcConfig{});
  for (int v = 0; v < 4; ++v) EXPECT_EQ(ds.credits(v), 1);
  for (int v = 4; v < 6; ++v) EXPECT_EQ(ds.credits(v), 3);
}

TEST(DownstreamState, VcAllocationExhaustsAndRecycles) {
  DownstreamState ds;
  ds.configure(VcConfig{});
  EXPECT_EQ(ds.free_vc_count(MsgClass::Request), 4);
  std::vector<int> got;
  for (int i = 0; i < 4; ++i) {
    const int v = ds.allocate_vc(MsgClass::Request);
    ASSERT_GE(v, 0);
    got.push_back(v);
  }
  EXPECT_EQ(ds.allocate_vc(MsgClass::Request), -1);
  // Response pool unaffected.
  EXPECT_EQ(ds.free_vc_count(MsgClass::Response), 2);
  ds.release_vc(got[2]);
  EXPECT_EQ(ds.allocate_vc(MsgClass::Request), got[2]);
}

TEST(DownstreamState, CreditConsumeReturnRoundTrip) {
  DownstreamState ds;
  ds.configure(VcConfig{});
  ds.consume_credit(5);
  ds.consume_credit(5);
  EXPECT_EQ(ds.credits(5), 1);
  ds.return_credit(5);
  EXPECT_EQ(ds.credits(5), 2);
  ds.return_credit(5);
  EXPECT_EQ(ds.credits(5), 3);
}

TEST(Packet, SegmentationTypes) {
  Packet p;
  p.id = 4;
  p.dest_mask = DestMask::bit(0);
  p.length = 5;
  auto flits = segment_packet(p);
  ASSERT_EQ(flits.size(), 5u);
  EXPECT_EQ(flits[0].type, FlitType::Head);
  EXPECT_EQ(flits[1].type, FlitType::Body);
  EXPECT_EQ(flits[3].type, FlitType::Body);
  EXPECT_EQ(flits[4].type, FlitType::Tail);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(flits[static_cast<size_t>(i)].seq, i);
}

TEST(Packet, SingleFlitIsHeadTail) {
  Packet p;
  p.id = 4;
  p.dest_mask = DestMask::bit(0);
  p.length = 1;
  auto flits = segment_packet(p);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].type, FlitType::HeadTail);
  EXPECT_TRUE(is_head(flits[0].type));
  EXPECT_TRUE(is_tail(flits[0].type));
}

TEST(Packet, LogicalIdPropagates) {
  Packet p;
  p.id = 10;
  p.logical_id = 3;
  p.dest_mask = DestMask::bit(0);
  auto flits = segment_packet(p);
  EXPECT_EQ(flits[0].logical_id, 3u);
  p.logical_id = 0;
  EXPECT_EQ(segment_packet(p)[0].logical_id, 10u);
}

}  // namespace
}  // namespace noc

// End-to-end smoke: every network configuration delivers packets.
#include <gtest/gtest.h>

#include "noc/experiment.hpp"
#include "noc/network.hpp"

namespace noc {
namespace {

TEST(Smoke, ProposedDeliversMixedTraffic) {
  NetworkConfig cfg = NetworkConfig::proposed();
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.05;
  Network net(cfg);
  Simulation sim(net);
  sim.run(2000);
  EXPECT_GT(net.metrics().total_completed(), 0);
}

TEST(Smoke, Baseline3StageDeliversMixedTraffic) {
  NetworkConfig cfg = NetworkConfig::baseline_3stage();
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.02;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3000);
  EXPECT_GT(net.metrics().total_completed(), 0);
}

TEST(Smoke, Baseline4StageDeliversUnicast) {
  NetworkConfig cfg = NetworkConfig::baseline_4stage();
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.05;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3000);
  EXPECT_GT(net.metrics().total_completed(), 0);
}

TEST(Smoke, DrainsToQuiescence) {
  NetworkConfig cfg = NetworkConfig::proposed();
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.offered_flits_per_node_cycle = 0.02;
  Network net(cfg);
  Simulation sim(net);
  sim.run(1000);
  // Stop injecting and drain.
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  const bool drained =
      sim.run_until([&] { return net.quiescent(); }, 2000);
  EXPECT_TRUE(drained);
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include <vector>

#include "common/prbs.hpp"

namespace noc {
namespace {

class PrbsPeriodTest : public ::testing::TestWithParam<Prbs::Poly> {};

TEST_P(PrbsPeriodTest, FullPeriodForSmallPolys) {
  const Prbs::Poly poly = GetParam();
  Prbs gen(poly, 1);
  if (gen.period() > (1u << 16)) GTEST_SKIP() << "period too long to verify";
  // A maximal-length LFSR repeats exactly after 2^k - 1 bits.
  std::vector<int> first;
  const auto period = static_cast<int>(gen.period());
  for (int i = 0; i < period; ++i) first.push_back(gen.next_bit());
  for (int i = 0; i < period; ++i) EXPECT_EQ(gen.next_bit(), first[i]) << i;
}

TEST_P(PrbsPeriodTest, BalancedOnesAndZeros) {
  const Prbs::Poly poly = GetParam();
  Prbs gen(poly, 1);
  // Warm the register out of the near-zero states a seed of 1 starts in
  // (long LFSRs emit a biased prefix there; balance is a full-period and
  // steady-state property).
  for (int i = 0; i < 1 << 14; ++i) gen.next_bit();
  const int n = 1 << 15;
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += gen.next_bit();
  EXPECT_NEAR(ones / static_cast<double>(n), 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllPolys, PrbsPeriodTest,
                         ::testing::Values(Prbs::Poly::PRBS7,
                                           Prbs::Poly::PRBS15,
                                           Prbs::Poly::PRBS23,
                                           Prbs::Poly::PRBS31));

TEST(Prbs, ZeroSeedIsEscaped) {
  Prbs gen(Prbs::Poly::PRBS7, 0);
  int ones = 0;
  for (int i = 0; i < 127; ++i) ones += gen.next_bit();
  EXPECT_GT(ones, 0);  // an all-zero LFSR would emit only zeros
}

TEST(Prbs, NextBitsAssemblesWords) {
  Prbs a(Prbs::Poly::PRBS15, 3), b(Prbs::Poly::PRBS15, 3);
  uint64_t w = a.next_bits(8);
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits = (bits << 1) | static_cast<uint64_t>(b.next_bit());
  EXPECT_EQ(w, bits);
}

TEST(Prbs, HammingDistance) {
  EXPECT_EQ(hamming_distance(0, 0), 0);
  EXPECT_EQ(hamming_distance(0xFF, 0x00), 8);
  EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming_distance(~0ull, 0), 64);
}

TEST(Prbs, ToggleRateNearHalf) {
  // PRBS-driven buses switch ~50% of wires per word -- the activity factor
  // the power model assumes.
  const double rate = prbs_toggle_rate(Prbs::Poly::PRBS31, 4000, 64);
  EXPECT_NEAR(rate, 0.5, 0.03);
}

}  // namespace
}  // namespace noc

// Partition geometry for intra-network parallel stepping (docs/PERF.md
// Layer 4): every router/NIC/channel must be owned by exactly one span and
// the boundary-channel classification must be exact, over square and
// rectangular meshes, even and uneven span counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "noc/network.hpp"
#include "noc/partition.hpp"

namespace noc {
namespace {

TEST(SpanPartition, CoversEveryNodeExactlyOnceAcrossShapes) {
  for (int kx : {4, 5, 8, 12, 16}) {
    for (int ky : {4, 8, 16}) {
      const MeshGeometry geom(kx, ky);
      for (int workers = 1; workers <= 8; ++workers) {
        const int spans = SpanPartition::clamp_spans(geom, workers);
        ASSERT_GE(spans, 1);
        ASSERT_LE(spans, kx);
        const SpanPartition part(geom, spans);
        SCOPED_TRACE("kx=" + std::to_string(kx) + " ky=" + std::to_string(ky) +
                     " spans=" + std::to_string(spans));

        std::vector<int> owned(static_cast<size_t>(geom.num_nodes()), 0);
        for (int s = 0; s < part.num_spans(); ++s) {
          const auto [x0, x1] = part.columns_of(s);
          EXPECT_LT(x0, x1) << "empty span";
          for (NodeId node : part.nodes_of(s)) {
            EXPECT_EQ(part.span_of_node(node), s);
            ++owned[static_cast<size_t>(node)];
          }
        }
        for (NodeId node = 0; node < geom.num_nodes(); ++node)
          EXPECT_EQ(owned[static_cast<size_t>(node)], 1) << "node " << node;
      }
    }
  }
}

TEST(SpanPartition, SpansAreContiguousAndBalanced) {
  for (int kx : {4, 7, 13, 16}) {
    const MeshGeometry geom(kx, 4);
    for (int spans = 1; spans <= kx && spans <= 8; ++spans) {
      const SpanPartition part(geom, spans);
      int prev_end = 0;
      int min_w = kx, max_w = 0;
      for (int s = 0; s < spans; ++s) {
        const auto [x0, x1] = part.columns_of(s);
        EXPECT_EQ(x0, prev_end) << "gap or overlap before span " << s;
        prev_end = x1;
        min_w = std::min(min_w, x1 - x0);
        max_w = std::max(max_w, x1 - x0);
        for (int x = x0; x < x1; ++x) EXPECT_EQ(part.span_of_column(x), s);
      }
      EXPECT_EQ(prev_end, kx);
      // Uneven kx/spans divisions may differ by at most one column.
      EXPECT_LE(max_w - min_w, 1);
    }
  }
}

TEST(SpanPartition, CrossClassificationOnlyAtColumnBoundaries) {
  const MeshGeometry geom(8, 4);
  const SpanPartition part(geom, 3);  // columns [0,2) [2,5) [5,8)
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x + 1 < 8; ++x) {
      const NodeId a = geom.id(x, y), b = geom.id(x + 1, y);
      const bool boundary = (x + 1 == 2) || (x + 1 == 5);
      EXPECT_EQ(part.crosses(a, b), boundary) << "x=" << x << " y=" << y;
    }
    // North/South neighbours never cross a column span.
    if (y + 1 < 4) {
      for (int x = 0; x < 8; ++x)
        EXPECT_FALSE(part.crosses(geom.id(x, y), geom.id(x, y + 1)));
    }
  }
}

TEST(SpanPartition, ClampSpans) {
  const MeshGeometry geom(6, 6);
  EXPECT_EQ(SpanPartition::clamp_spans(geom, 0), 1);
  EXPECT_EQ(SpanPartition::clamp_spans(geom, 1), 1);
  EXPECT_EQ(SpanPartition::clamp_spans(geom, 4), 4);
  EXPECT_EQ(SpanPartition::clamp_spans(geom, 6), 6);
  EXPECT_EQ(SpanPartition::clamp_spans(geom, 99), 6);  // one per column max
}

// The Network-level ownership invariant: with step_threads > 1 every
// channel id appears on exactly one span's owned list, and the deferred
// (cross-span) subset is exactly 6 channels per boundary-crossing adjacent
// router pair (flit + credit + lookahead, both directions) -- NIC and
// North/South channels never cross.
TEST(NetworkPartition, EveryChannelOwnedExactlyOnceAndBoundariesExact) {
  struct Case {
    int k, ky, step_threads;
  };
  for (const Case& c : {Case{4, 0, 2}, Case{4, 0, 4}, Case{6, 0, 4},
                        Case{8, 0, 3}, Case{4, 8, 2}, Case{5, 3, 4}}) {
    SCOPED_TRACE("k=" + std::to_string(c.k) + " ky=" + std::to_string(c.ky) +
                 " st=" + std::to_string(c.step_threads));
    NetworkConfig cfg = NetworkConfig::proposed(c.k);
    cfg.ky = c.ky;
    cfg.step_threads = c.step_threads;
    Network net(cfg);
    const int spans = net.num_step_spans();
    ASSERT_GT(spans, 1);

    std::vector<int> owners(static_cast<size_t>(net.num_channels()), 0);
    std::set<NodeId> nodes_seen;
    int cross_total = 0;
    for (int s = 0; s < spans; ++s) {
      for (int id : net.span_channel_ids(s)) {
        ASSERT_GE(id, 0);
        ASSERT_LT(id, net.num_channels());
        ++owners[static_cast<size_t>(id)];
      }
      for (NodeId node : net.span_nodes(s)) {
        EXPECT_TRUE(nodes_seen.insert(node).second)
            << "node " << node << " in two spans";
      }
      cross_total += net.span_cross_channel_count(s);
    }
    for (size_t id = 0; id < owners.size(); ++id)
      EXPECT_EQ(owners[id], 1) << "channel " << id;
    EXPECT_EQ(static_cast<int>(nodes_seen.size()), net.geom().num_nodes());

    // Exact boundary census: each crossing E/W adjacency contributes 2
    // flit + 2 credit + 2 lookahead channels (proposed() has bypass).
    const int boundaries = spans - 1;
    EXPECT_EQ(cross_total, 6 * net.geom().ky() * boundaries);
  }
}

// step_threads must not change wiring when it resolves to a single span.
TEST(NetworkPartition, SingleSpanIsSerial) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.step_threads = 1;
  Network net(cfg);
  EXPECT_EQ(net.num_step_spans(), 1);
  EXPECT_EQ(net.step_workers(), 1);
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace noc {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.5);
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.buckets().front(), 2);
  EXPECT_EQ(h.buckets().back(), 2);
}

TEST(Histogram, QuantilesOrdered) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100);
  const double q10 = h.quantile(0.10), q50 = h.quantile(0.50),
               q99 = h.quantile(0.99);
  EXPECT_LT(q10, q50);
  EXPECT_LT(q50, q99);
  EXPECT_NEAR(q50, 50.0, 2.0);
}

TEST(RateCounter, Rate) {
  RateCounter r;
  r.add(30);
  r.set_window(100);
  EXPECT_DOUBLE_EQ(r.rate(), 0.3);
  r.reset();
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace noc {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextBelowIsInRange) {
  Xoshiro256 rng(5);
  for (uint64_t bound : {1ull, 2ull, 16ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  const int n = 16, trials = 160000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(n)];
  const double expected = trials / static_cast<double>(n);
  for (int c : counts) EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  const int trials = 100000;
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    for (int i = 0; i < trials; ++i)
      if (rng.bernoulli(p)) ++hits;
    EXPECT_NEAR(hits / static_cast<double>(trials), p, 0.01);
  }
}

TEST(Xoshiro256, GaussianMoments) {
  Xoshiro256 rng(31);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

}  // namespace
}  // namespace noc

// Fault-injection subsystem (noc/fault.hpp, docs/FAULTS.md): deterministic
// plan generation, the surviving-topology escape tree, fault-aware adaptive
// rerouting around dead links, drop accounting and its conservation law
// (generated == completed + dropped), the degraded-mesh throughput gate
// (adaptive vs xy), word-boundary faulted unicasts at k=12, and the
// randomized fault-schedule soak CI runs under TSan (FaultSoak.*, seed from
// FAULT_SOAK_SEED).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "noc/experiment.hpp"
#include "noc/fault.hpp"
#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

Packet unicast(NodeId src, NodeId dest, PacketId id) {
  Packet p;
  p.id = id;
  p.src = src;
  p.dest_mask = MeshGeometry::node_mask(dest);
  return p;
}

void drain_with_drops(Network& net, Simulation& sim, Cycle bound) {
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, bound))
      << "faulted network failed to drain -- possible deadlock";
  EXPECT_EQ(net.metrics().total_generated(),
            net.metrics().total_completed() + net.metrics().total_dropped());
}

TEST(FaultPlan, RandomPlanIsDeterministic) {
  const MeshGeometry g(6);
  const FaultPlan a = make_random_fault_plan(g, 42, 3, 2, 100, 50);
  const FaultPlan b = make_random_fault_plan(g, 42, 3, 2, 100, 50);
  ASSERT_EQ(a.events.size(), b.events.size());
  // 3 kills + 2 degrades, each revived 50 cycles later.
  EXPECT_EQ(a.events.size(), 10u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].a, b.events[i].a);
    EXPECT_EQ(a.events[i].b, b.events[i].b);
  }
  // A different seed draws a different schedule.
  const FaultPlan c = make_random_fault_plan(g, 43, 3, 2, 100, 50);
  bool differs = false;
  for (size_t i = 0; i < a.events.size(); ++i)
    differs |= a.events[i].a != c.events[i].a || a.events[i].b != c.events[i].b;
  EXPECT_TRUE(differs);
}

TEST(FaultState, PristineCombTreeShape) {
  // Epoch 0 of any non-empty plan is the full mesh; the escape tree is the
  // comb rooted at node 0 (up hops prefer South then West): columns drain
  // South to row 0, row 0 drains West to the root.
  const MeshGeometry g(4);
  FaultState fs;
  fs.init(g, FaultPlan{}.kill_link(1000, 5, 6));
  ASSERT_TRUE(fs.enabled());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_TRUE(fs.on_escape_tree(n));
    EXPECT_EQ(fs.escape_next(n, n), PortDir::Local);
  }
  EXPECT_EQ(fs.escape_next(5, 0), PortDir::South);   // (1,1) -> (1,0)
  EXPECT_EQ(fs.escape_next(1, 0), PortDir::West);    // row 0 spine
  EXPECT_EQ(fs.escape_next(0, 5), PortDir::East);    // down: 0 -> 1 -> 5
  EXPECT_EQ(fs.escape_next(1, 5), PortDir::North);
  EXPECT_EQ(fs.escape_next(15, 3), PortDir::South);  // column tooth
}

TEST(FaultState, KillAndReviveTrackEpochs) {
  const MeshGeometry g(4);
  FaultState fs;
  fs.init(g, FaultPlan{}.kill_link(100, 1, 2).revive_link(200, 1, 2));
  EXPECT_EQ(fs.epoch(), 0u);
  EXPECT_FALSE(fs.advance(99));
  EXPECT_FALSE(fs.port_dead(1, PortDir::East));
  EXPECT_TRUE(fs.advance(100));
  EXPECT_TRUE(fs.port_dead(1, PortDir::East));
  EXPECT_TRUE(fs.port_dead(2, PortDir::West));
  EXPECT_EQ(fs.epoch(), 1u);
  // The spine is cut east of node 1. The orientation is FIXED (up = toward
  // node 0), so spine nodes 2 and 3 lose their only up links and fall off
  // the tree even though the mesh stays connected; the columns above them
  // reattach westward.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const bool expect_on = n != 2 && n != 3;
    EXPECT_EQ(fs.on_escape_tree(n), expect_on) << "node " << n;
  }
  EXPECT_TRUE(fs.connected(0, 2));
  EXPECT_EQ(fs.escape_next(6, 0), PortDir::West);  // tooth reattached at 5
  EXPECT_TRUE(fs.advance(200));
  EXPECT_FALSE(fs.port_dead(1, PortDir::East));
  EXPECT_EQ(fs.epoch(), 2u);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_TRUE(fs.on_escape_tree(n));
  EXPECT_EQ(fs.next_event_at(), kCycleNever);
}

TEST(FaultState, OffTreeAndDisconnectedNodes) {
  const MeshGeometry g(4);
  // Node 5 = (1,1): killing its South and West links leaves it connected
  // (via North/East) but off the escape tree -- both its "up" directions
  // are gone, so no up*/down* path can serve it.
  FaultState fs;
  fs.init(g, FaultPlan{}.kill_link(0, 5, 1).kill_link(0, 5, 4));
  fs.advance(0);
  EXPECT_TRUE(fs.connected(0, 5));
  EXPECT_FALSE(fs.on_escape_tree(5));
  EXPECT_FALSE(fs.escape_reachable(0, 5));
  EXPECT_FALSE(fs.escape_reachable(5, 0));
  // Corner node 15 = (3,3) has only two links; killing both disconnects it.
  FaultState cut;
  cut.init(g, FaultPlan{}.kill_link(0, 15, 14).kill_link(0, 15, 11));
  cut.advance(0);
  EXPECT_FALSE(cut.connected(0, 15));
  EXPECT_FALSE(cut.escape_reachable(0, 15));
  EXPECT_TRUE(cut.escape_reachable(0, 14));
}

TEST(Faults, AdaptiveReroutesAroundDeadLink) {
  // Kill the row-1 link 5-6 (not a tree edge) from cycle 0: 5 -> 6 and
  // 5 -> 7 have East as their only productive port, so adaptive must take
  // the surviving escape tree (down through row 0) and still deliver.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  cfg.fault.kill_link(0, 5, 6);
  Network net(cfg);
  Simulation sim(net);
  sim.run(1);  // let the cycle-0 kill apply before submitting
  net.nic(5).submit_packet(unicast(5, 6, 1));
  net.nic(5).submit_packet(unicast(5, 7, 2));
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 5000));
  EXPECT_EQ(net.metrics().total_completed(), 2);
  EXPECT_EQ(net.metrics().total_dropped(), 0);
}

TEST(Faults, UnreachableDestinationIsCountedDropNotHang) {
  // Corner node 15 fully cut off: packets toward it are refused at the
  // door, counted as drops, and the network stays live and drainable.
  for (RoutePolicy policy :
       {RoutePolicy::MinimalAdaptive, RoutePolicy::XY}) {
    SCOPED_TRACE(route_policy_name(policy));
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.router.routing = policy;
    cfg.traffic.offered_flits_per_node_cycle = 0.0;
    cfg.fault.kill_link(0, 15, 14).kill_link(0, 15, 11);
    Network net(cfg);
    Simulation sim(net);
    sim.run(1);  // let the cycle-0 kills apply before submitting
    net.nic(0).submit_packet(unicast(0, 15, 1));  // unreachable -> drop
    net.nic(0).submit_packet(unicast(0, 5, 2));   // untouched path
    ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 5000));
    EXPECT_EQ(net.metrics().total_completed(), 1);
    EXPECT_EQ(net.metrics().total_dropped(), 1);
    EXPECT_EQ(net.metrics().total_generated(),
              net.metrics().total_completed() + net.metrics().total_dropped());
  }
}

TEST(Faults, OffTreeDestinationDropsUnderAdaptive) {
  // Node 5 connected but off the escape tree (both up links dead): adaptive
  // cannot guarantee deadlock-free delivery, so the packet is dropped at
  // the door; a broadcast loses exactly that destination and completes the
  // rest.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  cfg.fault.kill_link(0, 5, 1).kill_link(0, 5, 4);
  Network net(cfg);
  Simulation sim(net);
  sim.run(1);  // let the cycle-0 kills apply before submitting
  net.nic(0).submit_packet(unicast(0, 5, 1));
  Packet bcast;
  bcast.id = 2;
  bcast.src = 0;
  bcast.dest_mask = MeshGeometry(4).all_nodes_mask();
  net.nic(0).submit_packet(std::move(bcast));
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 10000));
  // Unicast fully dropped; broadcast delivered 15 of 16 with 1 dropped.
  EXPECT_EQ(net.metrics().total_dropped(), 2);
  EXPECT_EQ(net.metrics().total_completed(), 0);
  EXPECT_EQ(net.metrics().total_generated(),
            net.metrics().total_completed() + net.metrics().total_dropped());
}

TEST(Faults, DegradedRouterStillDeliversEverything) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.15;
  cfg.fault.degrade_router(0, 5).degrade_router(0, 10);
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  EXPECT_GT(net.metrics().total_completed(), 0);
  drain_with_drops(net, sim, 30000);
  EXPECT_EQ(net.metrics().total_dropped(), 0);  // degrade slows, never cuts
}

TEST(Faults, KillReviveMidTrafficConservesPackets) {
  // Links die under live adaptive traffic at 1000 (epoch conversion of
  // in-flight escape branches), revive at 3000, die again at 5000 and stay
  // dead. Every generated packet must end completed or dropped.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.25;
  cfg.fault.kill_link(1000, 5, 6)
      .kill_link(1000, 9, 10)
      .revive_link(3000, 5, 6)
      .revive_link(3000, 9, 10)
      .kill_link(5000, 6, 7);
  Network net(cfg);
  Simulation sim(net);
  sim.run(7000);
  EXPECT_GT(net.metrics().total_completed(), 0);
  drain_with_drops(net, sim, 30000);
}

TEST(Faults, BroadcastTrafficSurvivesFaults) {
  // NIC-duplicated broadcasts (escape-class trees) across a kill/revive:
  // exercises the escape tree as a multicast route, not just unicast hops.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.offered_flits_per_node_cycle = 0.05;
  cfg.fault.kill_link(500, 5, 6).revive_link(2500, 5, 6);
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  EXPECT_GT(net.metrics().total_completed(), 0);
  drain_with_drops(net, sim, 30000);
}

TEST(Faults, AdaptiveSustainsTwiceXyThroughputWithTwoDeadLinks) {
  // The degraded-mesh headline (ISSUE acceptance): on an 8x8 uniform mesh
  // with the two central vertical links dead ((3,3)-(3,4), (4,3)-(4,4)),
  // fault-aware adaptive sustains >= 2x the delivered throughput of xy.
  // Dead vertical links are xy's worst case: y-phase packets wedge in the
  // center columns, turning packets back up into every row's East/West
  // VCs, and the tree saturation spreads until deliveries stop. Adaptive
  // routes around the cut and sustains the full offered load.
  const MeasureOptions opt{.warmup = 2000, .window = 4000};
  auto run = [&](RoutePolicy policy) {
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.router.routing = policy;
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.fault.kill_link(0, 27, 35).kill_link(0, 28, 36);
    return measure_point(cfg, 0.10, opt);
  };
  const PointResult adaptive = run(RoutePolicy::MinimalAdaptive);
  const PointResult xy = run(RoutePolicy::XY);
  // 0.10 offered on 64 nodes = 6.4 flits/cycle; adaptive sustains it.
  EXPECT_GT(adaptive.recv_flits_per_cycle, 5.0);
  EXPECT_GE(adaptive.recv_flits_per_cycle, 2.0 * xy.recv_flits_per_cycle)
      << "adaptive=" << adaptive.recv_flits_per_cycle
      << " xy=" << xy.recv_flits_per_cycle;
}

TEST(Faults, WordBoundarySeamUnicastsOnFaultedK12) {
  // k=12 puts DestMask seams at bits 63/64 and 127/128. Kill two links
  // that cut the XY paths of seam-straddling pairs; adaptive must deliver
  // every reachable seam unicast on the surviving topology.
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  // 63 = (3,5), 64 = (4,5): kill 63-64 itself plus 127-128 ((7,10)-(8,10)).
  cfg.fault.kill_link(0, 63, 64).kill_link(0, 127, 128);
  Network net(cfg);
  Simulation sim(net);
  PacketId id = 1;
  const std::pair<NodeId, NodeId> pairs[] = {
      {0, 63}, {0, 64}, {63, 64}, {64, 63}, {0, 127},
      {0, 128}, {127, 128}, {128, 127}, {143, 64}};
  for (const auto& [src, dest] : pairs)
    net.nic(src).submit_packet(unicast(src, dest, id++));
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  EXPECT_EQ(net.metrics().total_completed(),
            static_cast<int64_t>(std::size(pairs)));
  EXPECT_EQ(net.metrics().total_dropped(), 0);
}

// ---------------------------------------------------------------------------
// Randomized fault-schedule soak: the CI fault-soak job runs this suite
// under TSan with FAULT_SOAK_SEED drawn per run (and echoed into the log so
// any failure reproduces locally with the same seed).

TEST(FaultSoak, RandomScheduleSoak) {
  uint64_t seed = 12345;
  if (const char* env = std::getenv("FAULT_SOAK_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  std::printf("[ FaultSoak ] FAULT_SOAK_SEED=%llu\n",
              static_cast<unsigned long long>(seed));

  NetworkConfig cfg = NetworkConfig::proposed(6);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.30;
  cfg.traffic.seed = seed;
  // Kill 3 links and degrade 2 routers at 1200, revive at 3700; then a
  // second, permanent wave from a derived seed at 5200.
  cfg.fault = make_random_fault_plan(MeshGeometry(6), seed, 3, 2, 1200, 2500);
  const FaultPlan second =
      make_random_fault_plan(MeshGeometry(6), seed ^ 0x9e3779b97f4a7c15ULL,
                             2, 1, 5200, 0);
  for (const FaultEvent& e : second.events) cfg.fault.events.push_back(e);

  Network net(cfg);
  Simulation sim(net);
  sim.run(1000);
  int64_t last = net.metrics().total_completed();
  for (int window = 0; window < 14; ++window) {
    sim.run(500);
    const int64_t done = net.metrics().total_completed();
    ASSERT_GT(done, last) << "no packet completed in 500-cycle window "
                          << window << " (seed " << seed << ")";
    last = done;
  }
  drain_with_drops(net, sim, 60000);
}

TEST(FaultSoak, SerialParallelBitIdenticalUnderSchedule) {
  // The soak's cross-check: the same randomized schedule, serial vs 3-span
  // parallel stepping, must agree bit-for-bit including the drop counts.
  uint64_t seed = 12345;
  if (const char* env = std::getenv("FAULT_SOAK_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  NetworkConfig cfg = NetworkConfig::proposed(6);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.seed = seed;
  cfg.fault = make_random_fault_plan(MeshGeometry(6), seed, 3, 1, 800, 1500);
  const MeasureOptions opt{.warmup = 600, .window = 2500};
  const PointResult serial = measure_point(cfg, 0.25, opt);
  cfg.step_threads = 3;
  const PointResult parallel = measure_point(cfg, 0.25, opt);
  EXPECT_EQ(serial.avg_latency, parallel.avg_latency);
  EXPECT_EQ(serial.recv_flits_per_cycle, parallel.recv_flits_per_cycle);
  EXPECT_EQ(serial.completed_packets, parallel.completed_packets);
  EXPECT_EQ(serial.dropped_packets, parallel.dropped_packets);
  EXPECT_EQ(serial.energy.vc_allocations, parallel.energy.vc_allocations);
  EXPECT_EQ(serial.energy.bypasses, parallel.energy.bypasses);
}

}  // namespace
}  // namespace noc

// Integration: conservation (every generated packet fully delivered, no
// loss, no duplication) across designs, traffic patterns and mesh sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

struct DeliveryCase {
  int k;
  PipelineMode pipeline;
  bool multicast;
  TrafficPattern pattern;
  double offered;
};

class DeliveryTest : public ::testing::TestWithParam<DeliveryCase> {};

TEST_P(DeliveryTest, AllPacketsDeliveredExactlyOnce) {
  const auto& c = GetParam();
  NetworkConfig cfg;
  cfg.k = c.k;
  cfg.router.pipeline = c.pipeline;
  cfg.router.multicast = c.multicast;
  cfg.traffic.pattern = c.pattern;
  cfg.traffic.offered_flits_per_node_cycle = c.offered;
  cfg.traffic.seed = 99;
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  const bool drained = sim.run_until([&] { return net.quiescent(); }, 30000);
  EXPECT_TRUE(drained) << "network failed to drain (lost or stuck flits)";
  EXPECT_GT(net.metrics().total_generated(), 100);
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
  EXPECT_EQ(net.metrics().open_packets(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeliveryTest,
    ::testing::Values(
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::MixedPaper, 0.10},
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::BroadcastOnly, 0.04},
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::UniformRequest, 0.20},
        DeliveryCase{4, PipelineMode::ThreeStage, false,
                     TrafficPattern::MixedPaper, 0.06},
        DeliveryCase{4, PipelineMode::ThreeStage, true,
                     TrafficPattern::BroadcastOnly, 0.04},
        DeliveryCase{4, PipelineMode::FourStage, false,
                     TrafficPattern::UniformRequest, 0.10},
        DeliveryCase{2, PipelineMode::Proposed, true,
                     TrafficPattern::BroadcastOnly, 0.10},
        DeliveryCase{3, PipelineMode::Proposed, true,
                     TrafficPattern::MixedPaper, 0.08},
        DeliveryCase{5, PipelineMode::Proposed, true,
                     TrafficPattern::MixedPaper, 0.05},
        DeliveryCase{8, PipelineMode::Proposed, true,
                     TrafficPattern::UniformRequest, 0.10},
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::Transpose, 0.15},
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::BitComplement, 0.15},
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::Tornado, 0.15},
        DeliveryCase{4, PipelineMode::Proposed, true,
                     TrafficPattern::NearestNeighbor, 0.3}));

TEST(DeliveryAblations, PartialBypassOffStillDelivers) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.allow_partial_bypass = false;
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.offered_flits_per_node_cycle = 0.04;
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(DeliveryAblations, FairLookaheadsStillDeliver) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.lookahead_priority = false;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(DeliveryAblations, IdenticalPrbsStillDelivers) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.identical_prbs = true;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(DeliveryStress, NearSaturationDrainsEventually) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.offered_flits_per_node_cycle = 0.055;  // ~88% of 1/16 limit
  Network net(cfg);
  Simulation sim(net);
  sim.run(6000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 60000));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

}  // namespace
}  // namespace noc

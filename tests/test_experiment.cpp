#include <gtest/gtest.h>

#include "noc/experiment.hpp"

namespace noc {
namespace {

TEST(Experiment, DeliveriesPerOfferedFlit) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  EXPECT_DOUBLE_EQ(deliveries_per_offered_flit(cfg), 1.0);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  EXPECT_DOUBLE_EQ(deliveries_per_offered_flit(cfg), 16.0);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  // (0.5*16 + 0.25*1 + 0.25*5) / (0.5 + 0.25 + 0.25*5) = 9.5 / 2.
  EXPECT_DOUBLE_EQ(deliveries_per_offered_flit(cfg), 4.75);
  cfg.traffic.include_self_in_broadcast = false;
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  EXPECT_DOUBLE_EQ(deliveries_per_offered_flit(cfg), 15.0);
}

TEST(Experiment, MeasurePointIsDeterministic) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.seed = 5;
  const MeasureOptions opt{.warmup = 500, .window = 2000};
  auto a = measure_point(cfg, 0.08, opt);
  auto b = measure_point(cfg, 0.08, opt);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.completed_packets, b.completed_packets);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
}

TEST(Experiment, SeedsChangeTheRealization) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  const MeasureOptions opt{.warmup = 500, .window = 2000};
  cfg.traffic.seed = 5;
  auto a = measure_point(cfg, 0.08, opt);
  cfg.traffic.seed = 6;
  auto b = measure_point(cfg, 0.08, opt);
  EXPECT_NE(a.completed_packets, b.completed_packets);
  // ... but the statistics agree within a few percent.
  EXPECT_NEAR(a.avg_latency, b.avg_latency, 0.15 * a.avg_latency);
}

TEST(Experiment, SaturationAboveZeroLoadThreshold) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto s = find_saturation(cfg, {.warmup = 1000, .window = 4000});
  EXPECT_GT(s.zero_load_latency, 6.9);  // >= exact limit 7.0 - noise
  EXPECT_GT(s.saturation_offered, 0.02);
  EXPECT_LE(s.saturation_offered, 1.1 / 16.0);
  EXPECT_GT(s.saturation_gbps, 400.0);
  // At the saturation point the latency criterion holds approximately.
  EXPECT_GT(s.at_saturation.avg_latency, 1.8 * s.zero_load_latency);
}

TEST(Experiment, SweepCurveMatchesPointMeasurements) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  const MeasureOptions opt{.warmup = 500, .window = 2000};
  auto curve = sweep_curve(cfg, {0.05, 0.1}, opt);
  ASSERT_EQ(curve.size(), 2u);
  auto solo = measure_point(cfg, 0.1, opt);
  EXPECT_DOUBLE_EQ(curve[1].avg_latency, solo.avg_latency);
}

}  // namespace
}  // namespace noc

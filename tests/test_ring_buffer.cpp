// The inline containers backing the zero-allocation datapath: RingBuffer
// (VC FIFOs / free-VC queues), InlineVec (branch & grant lists), VecDeque
// (NIC packet queues), U64FlatMap (metrics open-packet table).
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/flat_map.hpp"
#include "common/inline_vec.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/vec_deque.hpp"

namespace noc {
namespace {

TEST(RingBuffer, FillDrainAndWrapAround) {
  RingBuffer<int, 3> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), 3);

  // Cycle enough times that head wraps the storage repeatedly.
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 10; ++round) {
    while (!rb.full()) rb.push_back(next_in++);
    EXPECT_EQ(rb.size(), 3);
    // Indexed access is relative to the front.
    for (int i = 0; i < rb.size(); ++i) EXPECT_EQ(rb.at(i), next_out + i);
    EXPECT_EQ(rb.pop_front(), next_out++);
    EXPECT_EQ(rb.pop_front(), next_out++);
    EXPECT_EQ(rb.front(), next_out);
  }
  while (!rb.empty()) EXPECT_EQ(rb.pop_front(), next_out++);
  EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, DepthOneEdgeCase) {
  // The paper's request VCs are 1 flit deep: push/pop alternation must work
  // at capacity 1 (and the compile-time capacity can exceed the usable
  // depth, as InputVc::configure does).
  RingBuffer<int, 1> rb;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(rb.empty());
    rb.push_back(i);
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.front(), i);
    EXPECT_EQ(rb.pop_front(), i);
  }
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int, 4> rb;
  rb.push_back(1);
  rb.push_back(2);
  rb.pop_front();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push_back(9);
  EXPECT_EQ(rb.front(), 9);
  EXPECT_EQ(rb.size(), 1);
}

TEST(InlineVec, PushIndexIterateResize) {
  InlineVec<int, 5> v;
  EXPECT_TRUE(v.empty());
  v.push_back(3);
  v.push_back(1);
  v.push_back(4);
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v.back(), 4);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 8);

  InlineVec<int, 5> sized(4);
  EXPECT_EQ(sized.size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sized[i], 0);  // value-initialized
}

TEST(VecDeque, FifoOrderAcrossRegrowth) {
  VecDeque<int> q;
  // Interleave pushes and pops so head is offset when capacity grows.
  int next_in = 0, next_out = 0;
  for (int i = 0; i < 5; ++i) q.push_back(next_in++);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop_front(), next_out++);
  for (int i = 0; i < 100; ++i) q.push_back(next_in++);  // forces regrowth
  while (!q.empty()) EXPECT_EQ(q.pop_front(), next_out++);
  EXPECT_EQ(next_out, next_in);
}

TEST(U64FlatMap, MatchesReferenceMapUnderChurn) {
  // Randomized insert/find/erase churn (including key 0) checked against
  // std::unordered_map -- exercises backward-shift deletion and rehashing.
  U64FlatMap<int> m(16);
  std::unordered_map<uint64_t, int> ref;
  Xoshiro256 rng(123);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.next_below(512);  // dense: lots of collisions
    switch (rng.next_below(3)) {
      case 0: {
        auto [slot, inserted] = m.find_or_insert(key);
        auto [it, ref_inserted] = ref.try_emplace(key, 0);
        ASSERT_EQ(inserted, ref_inserted);
        *slot = static_cast<int>(key) + step;
        it->second = static_cast<int>(key) + step;
        break;
      }
      case 1: {
        int* found = m.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
      case 2:
        ASSERT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    int* found = m.find(k);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
}

TEST(U64FlatMap, ReserveAvoidsGrowthAndKeepsContents) {
  U64FlatMap<int> m(16);
  m.reserve(1000);
  for (uint64_t k = 0; k < 1000; ++k) *m.find_or_insert(k).first = static_cast<int>(k);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), static_cast<int>(k));
  }
  EXPECT_EQ(m.size(), 1000u);
}

}  // namespace
}  // namespace noc

// BitMask<N>: the fixed-width multi-word bitset underneath the router's
// SoA datapath state (PortMask / VcMask / VcSetMask, docs/PERF.md Layer 5).
// Word-boundary behavior is the dangerous part -- bit 63/64/65 straddles,
// the tail-masked complement, extract() slices crossing a word seam -- plus
// the contract the incremental availability masks rely on: a long random
// sequence of set/clear operations leaves exactly the same mask a
// from-scratch recompute would build. The DownstreamState cross-checks live
// here too, diffing its incrementally-maintained free/credit masks and lane
// credit sums against a shadow model after every randomized VA/credit event.
#include <gtest/gtest.h>

#include <bitset>
#include <cstdint>
#include <vector>

#include "common/bit_mask.hpp"
#include "common/rng.hpp"
#include "noc/buffers.hpp"

namespace noc {
namespace {

TEST(BitMask, SingleWordBasics) {
  BitMask<5> m;
  EXPECT_TRUE(m.none());
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.lowest(), 5);  // empty => kBits

  m.set(0);
  m.set(4);
  EXPECT_TRUE(m.any());
  EXPECT_EQ(m.count(), 2);
  EXPECT_EQ(m.lowest(), 0);
  EXPECT_TRUE(m.test(0));
  EXPECT_FALSE(m.test(1));
  EXPECT_TRUE(m.test(4));

  m.clear_lowest();
  EXPECT_EQ(m.lowest(), 4);
  m.clear(4);
  EXPECT_TRUE(m.none());
  m.clear_lowest();  // no-op when empty
  EXPECT_TRUE(m.none());
}

TEST(BitMask, ConstructorsAndFirstN) {
  EXPECT_EQ(BitMask<5>(uint64_t{0b10110}).count(), 3);
  EXPECT_EQ(BitMask<5>::bit(3), BitMask<5>(uint64_t{0b01000}));
  EXPECT_EQ(BitMask<5>::first_n(0).count(), 0);
  EXPECT_EQ(BitMask<5>::first_n(5), BitMask<5>(uint64_t{0b11111}));

  // first_n across word boundaries: 80-bit mask (the VcSetMask shape).
  const auto m64 = BitMask<80>::first_n(64);
  EXPECT_EQ(m64.word(0), ~uint64_t{0});
  EXPECT_EQ(m64.word(1), 0u);
  const auto m65 = BitMask<80>::first_n(65);
  EXPECT_EQ(m65.word(1), 1u);
  EXPECT_EQ(m65.count(), 65);
  EXPECT_EQ(BitMask<80>::first_n(80).count(), 80);
}

TEST(BitMask, WordBoundarySetClearLowest) {
  BitMask<80> m;
  m.set(63);
  m.set(64);
  m.set(79);
  EXPECT_EQ(m.count(), 3);
  EXPECT_EQ(m.word(0), uint64_t{1} << 63);
  EXPECT_EQ(m.word(1), (uint64_t{1} << 15) | 1u);

  EXPECT_EQ(m.lowest(), 63);
  m.clear_lowest();
  EXPECT_EQ(m.lowest(), 64);  // crosses into word 1
  m.clear(64);
  EXPECT_EQ(m.lowest(), 79);
  m.clear_lowest();
  EXPECT_EQ(m.lowest(), 80);
  EXPECT_TRUE(m.none());
}

TEST(BitMask, IterationOrderAcrossWords) {
  BitMask<80> m;
  const int bits[] = {0, 1, 62, 63, 64, 65, 78, 79};
  for (int b : bits) m.set(b);
  std::vector<int> seen;
  m.for_each([&](int b) { seen.push_back(b); });
  ASSERT_EQ(seen.size(), 8u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], bits[i]);
}

TEST(BitMask, OperatorsKeepTailClear) {
  // 70-bit mask: word 1 has only 6 live bits, so ~ must not set bits 70..127
  // (count/any/== would otherwise see phantom bits).
  BitMask<70> m;
  m.set(3);
  m.set(69);
  const auto inv = ~m;
  EXPECT_EQ(inv.count(), 68);
  EXPECT_FALSE(inv.test(3));
  EXPECT_FALSE(inv.test(69));
  EXPECT_TRUE(inv.test(68));
  EXPECT_EQ(inv.word(1) >> 6, 0u) << "complement leaked past kBits";

  EXPECT_EQ((m & inv).count(), 0);
  EXPECT_EQ((m | inv), BitMask<70>::first_n(70));
  EXPECT_EQ((m ^ m).count(), 0);
  EXPECT_EQ(m.andnot(m).count(), 0);
  EXPECT_EQ(inv.andnot(m), inv);
}

TEST(BitMask, ExtractWithinAndAcrossWords) {
  BitMask<80> m;
  m.set(2);
  m.set(62);
  m.set(63);
  m.set(64);
  m.set(66);
  // Word-0 interior slice.
  EXPECT_EQ(m.extract(0, 5), 0b00100u);
  // Full-width 32-bit slice.
  EXPECT_EQ(m.extract(2, 32), 1u);
  // Straddling the 64-bit seam: bits 62..77 -> local bits 0,1,2,4.
  EXPECT_EQ(m.extract(62, 16), 0b10111u);
  // Slice entirely inside word 1.
  EXPECT_EQ(m.extract(64, 16), 0b101u);
  // Tail slice ending exactly at kBits.
  m.set(79);
  EXPECT_EQ(m.extract(76, 4), 0b1000u);
}

TEST(BitMask, WordPtrAliasesStorage) {
  // The WakeHook contract: ORing into word_ptr(0) is the same as set().
  BitMask<5> m;
  *m.word_ptr(0) |= uint64_t{1} << 3;
  EXPECT_TRUE(m.test(3));
  EXPECT_EQ(m, BitMask<5>::bit(3));
}

// Randomized incremental-vs-recompute cross-check: a BitMask driven by a
// long random set/clear sequence must match a std::bitset shadow (and every
// derived query) at each step, including the multi-word width.
template <int N>
void random_cross_check(uint64_t seed) {
  Xoshiro256 rng(seed);
  BitMask<N> m;
  std::bitset<static_cast<size_t>(N)> shadow;
  for (int step = 0; step < 4000; ++step) {
    const int bit = static_cast<int>(rng.next_u64() % N);
    if (rng.bernoulli(0.5)) {
      m.set(bit);
      shadow.set(static_cast<size_t>(bit));
    } else {
      m.clear(bit);
      shadow.reset(static_cast<size_t>(bit));
    }
    ASSERT_EQ(m.count(), static_cast<int>(shadow.count())) << "step " << step;
    ASSERT_EQ(m.any(), shadow.any());
    int expected_lowest = N;
    for (int i = 0; i < N; ++i)
      if (shadow.test(static_cast<size_t>(i))) {
        expected_lowest = i;
        break;
      }
    ASSERT_EQ(m.lowest(), expected_lowest);
    // Rebuild from scratch out of the shadow and compare wholesale.
    BitMask<N> rebuilt;
    for (int i = 0; i < N; ++i)
      if (shadow.test(static_cast<size_t>(i))) rebuilt.set(i);
    ASSERT_EQ(m, rebuilt) << "step " << step;
  }
}

TEST(BitMask, RandomizedIncrementalVsRecomputeNarrow) {
  random_cross_check<5>(0x5eed01);
  random_cross_check<16>(0x5eed02);
}

TEST(BitMask, RandomizedIncrementalVsRecomputeMultiWord) {
  random_cross_check<80>(0x5eed03);
  random_cross_check<130>(0x5eed04);
}

// DownstreamState keeps free/credit availability as incrementally-updated
// masks plus per-lane credit sums. Drive it with a random but legal
// allocate/release/consume/return sequence and diff every mask against a
// from-scratch shadow recompute after each event.
TEST(BitMask, DownstreamStateMasksMatchShadowModel) {
  VcConfig cfg;  // paper shape: 4x1 Request, 2x3 Response
  DownstreamState ds;
  ds.configure(cfg);
  const int total = cfg.total_vcs();

  std::vector<bool> free_shadow(static_cast<size_t>(total), true);
  std::vector<int> credit_shadow(static_cast<size_t>(total));
  for (int vc = 0; vc < total; ++vc)
    credit_shadow[static_cast<size_t>(vc)] = cfg.depth_of_vc(vc);

  auto check = [&]() {
    VcMask free_expect, credit_expect;
    for (int vc = 0; vc < total; ++vc) {
      if (free_shadow[static_cast<size_t>(vc)]) free_expect.set(vc);
      if (credit_shadow[static_cast<size_t>(vc)] > 0) credit_expect.set(vc);
    }
    ASSERT_EQ(ds.free_mask(), free_expect);
    ASSERT_EQ(ds.credit_mask(), credit_expect);
    for (int m = 0; m < kNumMsgClasses; ++m) {
      const auto mc = static_cast<MsgClass>(m);
      int want_free = 0;
      for (int vc = 0; vc < total; ++vc)
        if (free_shadow[static_cast<size_t>(vc)] && cfg.mc_of_vc(vc) == mc)
          ++want_free;
      ASSERT_EQ(ds.free_vc_count(mc), want_free);
      ASSERT_EQ(ds.has_free_vc(mc), want_free > 0);
      for (int l = 0; l < kNumVcLanes; ++l) {
        const auto lane = static_cast<VcLane>(l);
        int want_credits = 0;
        for (int vc = 0; vc < total; ++vc)
          if (cfg.mc_of_vc(vc) == mc && cfg.lane_of_vc(vc) == lane)
            want_credits += credit_shadow[static_cast<size_t>(vc)];
        ASSERT_EQ(ds.lane_credits(mc, lane), want_credits);
      }
      ASSERT_EQ(ds.lane_credits(mc, VcLane::Any),
                ds.lane_credits(mc, VcLane::Ordered) +
                    ds.lane_credits(mc, VcLane::Free));
    }
    for (int vc = 0; vc < total; ++vc)
      ASSERT_EQ(ds.has_credit(vc), credit_shadow[static_cast<size_t>(vc)] > 0);
  };

  Xoshiro256 rng(0xdeadf00d);
  check();
  for (int step = 0; step < 20000; ++step) {
    switch (rng.next_u64() % 4) {
      case 0: {  // VA
        const auto mc = static_cast<MsgClass>(rng.next_u64() % kNumMsgClasses);
        const auto lane = static_cast<VcLane>(static_cast<int>(rng.next_u64() % 3) - 1);
        const int vc = ds.allocate_vc(mc, lane);
        if (vc >= 0) {
          ASSERT_TRUE(free_shadow[static_cast<size_t>(vc)]);
          ASSERT_EQ(cfg.mc_of_vc(vc), mc);
          if (lane != VcLane::Any) {
            ASSERT_EQ(cfg.lane_of_vc(vc), lane);
          }
          free_shadow[static_cast<size_t>(vc)] = false;
        }
        break;
      }
      case 1: {  // downstream packet finished
        const int vc = static_cast<int>(rng.next_u64() % total);
        if (!free_shadow[static_cast<size_t>(vc)]) {
          ds.release_vc(vc);
          free_shadow[static_cast<size_t>(vc)] = true;
        }
        break;
      }
      case 2: {  // flit sent downstream
        const int vc = static_cast<int>(rng.next_u64() % total);
        if (credit_shadow[static_cast<size_t>(vc)] > 0) {
          ds.consume_credit(vc);
          --credit_shadow[static_cast<size_t>(vc)];
        }
        break;
      }
      default: {  // credit returned
        const int vc = static_cast<int>(rng.next_u64() % total);
        if (credit_shadow[static_cast<size_t>(vc)] < cfg.depth_of_vc(vc)) {
          ds.return_credit(vc);
          ++credit_shadow[static_cast<size_t>(vc)];
        }
        break;
      }
    }
    check();
  }
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"

namespace noc {
namespace {

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_int(42), "42");
  EXPECT_EQ(Table::fmt_percent(0.487), "48.7%");
  EXPECT_EQ(Table::fmt_percent(0.5, 0), "50%");
}

TEST(Table, CsvRoundTrip) {
  Table t("test");
  t.set_columns({"a", "b"});
  t.add_row({"1", "x,y"});
  t.add_separator();
  t.add_row({"2", "he said \"hi\""});
  const std::string path = "/tmp/noc_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);       // quoted comma
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, RowsShorterThanHeaderAreLegal) {
  Table t;
  t.set_columns({"a", "b", "c"});
  t.add_row({"only one"});
  EXPECT_EQ(t.rows().size(), 1u);
  t.print();  // must not crash
}

TEST(Table, PrintAlignsWithoutCrashing) {
  Table t("alignment");
  t.set_columns({"short", "a much longer header"});
  t.add_row({"the longest cell in this column", "x"});
  t.add_separator();
  t.add_row({"y", "z"});
  t.print();
  SUCCEED();
}

}  // namespace
}  // namespace noc

// Pipeline-depth exactness: the defining latency property of each design.
// A single packet in an otherwise empty network must see:
//   Proposed : 1 cycle/hop  -> latency = hops + 2 NIC links
//   ThreeStage: 3 cycles per router + 1 injection link
//   FourStage : 4 cycles per router + 1 injection link
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

/// Inject one unicast packet from src to dst in an idle network and return
/// its generation->delivery latency.
double one_packet_latency(NetworkConfig cfg, NodeId src, NodeId dst,
                          int length = 1,
                          MsgClass mc = MsgClass::Request) {
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(5);  // settle
  Packet p;
  p.id = 777;
  p.src = src;
  p.dest_mask = MeshGeometry::node_mask(dst);
  p.mc = mc;
  p.length = length;
  p.gen_cycle = sim.now();
  net.metrics().begin_window(sim.now());
  net.nic(src).submit_packet(p);
  const bool done =
      sim.run_until([&] { return net.metrics().completed_packets() > 0; },
                    300);
  EXPECT_TRUE(done);
  net.metrics().end_window(sim.now());
  return net.metrics().avg_packet_latency();
}

class HopLatencyTest : public ::testing::TestWithParam<int> {};

TEST_P(HopLatencyTest, ProposedSingleCyclePerHop) {
  const int hops = GetParam();
  NetworkConfig cfg = NetworkConfig::proposed(4);
  MeshGeometry g(4);
  // Walk east then north to get exactly `hops` hops.
  const NodeId src = g.id(0, 0);
  const NodeId dst = hops <= 3 ? g.id(hops, 0) : g.id(3, hops - 3);
  // Exactly one cycle per hop plus the two NIC link cycles: the
  // theoretical latency limit of Table 1 / Fig 5.
  EXPECT_EQ(one_packet_latency(cfg, src, dst), hops + 2);
}

TEST_P(HopLatencyTest, ThreeStageBaselinePerHop) {
  const int hops = GetParam();
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  MeshGeometry g(4);
  const NodeId src = g.id(0, 0);
  const NodeId dst = hops <= 3 ? g.id(hops, 0) : g.id(3, hops - 3);
  // 3 cycles in each of (hops+1) routers; the last router's fused ST+LT
  // lands the flit at the NIC, so only the injection link adds a cycle.
  EXPECT_EQ(one_packet_latency(cfg, src, dst), 3 * (hops + 1) + 1);
}

TEST_P(HopLatencyTest, FourStageBaselinePerHop) {
  const int hops = GetParam();
  NetworkConfig cfg = NetworkConfig::baseline_4stage(4);
  MeshGeometry g(4);
  const NodeId src = g.id(0, 0);
  const NodeId dst = hops <= 3 ? g.id(hops, 0) : g.id(3, hops - 3);
  EXPECT_EQ(one_packet_latency(cfg, src, dst), 4 * (hops + 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(Hops, HopLatencyTest, ::testing::Values(1, 2, 3, 4, 6));

TEST(Pipeline, MultiFlitAddsSerialization) {
  // A 5-flit response adds exactly 4 cycles of serialization on the
  // bypassed path (flits stream one per cycle behind the head).
  NetworkConfig cfg = NetworkConfig::proposed(4);
  MeshGeometry g(4);
  const double l1 = one_packet_latency(cfg, g.id(0, 0), g.id(2, 0), 1,
                                       MsgClass::Response);
  const double l5 = one_packet_latency(cfg, g.id(0, 0), g.id(2, 0), 5,
                                       MsgClass::Response);
  EXPECT_EQ(l5 - l1, 4);
}

TEST(Pipeline, BroadcastReachesFurthestInHopsPlusTwo) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(5);
  MeshGeometry g(4);
  Packet p;
  p.id = 888;
  p.src = g.id(0, 0);  // corner: furthest node is 6 hops away
  p.dest_mask = g.all_nodes_mask();
  p.gen_cycle = sim.now();
  net.metrics().begin_window(sim.now());
  net.nic(p.src).submit_packet(p);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().completed_packets() > 0; }, 300));
  net.metrics().end_window(sim.now());
  // Single-cycle hops through the XY tree: furthest(0,0)=6, +2 NIC links.
  EXPECT_EQ(net.metrics().avg_packet_latency(), 6 + 2);
}

TEST(Pipeline, BypassRateIsOneAtZeroLoad) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(5);
  MeshGeometry g(4);
  Packet p;
  p.id = 1;
  p.src = g.id(0, 0);
  p.dest_mask = MeshGeometry::node_mask(g.id(3, 3));
  p.gen_cycle = sim.now();
  net.nic(p.src).submit_packet(p);
  sim.run(50);
  // Every router hop of a solo flit bypasses; nothing is ever buffered.
  EXPECT_EQ(net.energy().buffered_hops, 0);
  EXPECT_EQ(net.energy().buffer_writes, 0);
  EXPECT_EQ(net.energy().bypasses, 7);  // 6 hops -> 7 routers traversed
}

TEST(Pipeline, LookaheadContentionForcesBuffering) {
  // Two flits arriving at the same router wanting the same output in the
  // same cycle: one bypasses, the other is buffered onto the 3-stage path.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(5);
  MeshGeometry g(4);
  // Two equidistant packets whose lookaheads request the Local output of
  // router (3,1) in the same cycle: one bypasses into ejection, the other
  // is forced onto the buffered path (paper Sec 3.2 caveat).
  Packet a, b;
  a.id = 1;
  a.src = g.id(1, 1);  // 2 hops west of (3,1)
  a.dest_mask = MeshGeometry::node_mask(g.id(3, 1));
  a.gen_cycle = sim.now();
  b.id = 2;
  b.src = g.id(3, 3);  // 2 hops north of (3,1)
  b.dest_mask = MeshGeometry::node_mask(g.id(3, 1));
  b.gen_cycle = sim.now();
  net.nic(a.src).submit_packet(a);
  net.nic(b.src).submit_packet(b);
  sim.run(60);
  EXPECT_EQ(net.metrics().total_completed(), 2);
  EXPECT_GE(net.energy().buffered_hops, 1);  // the loser got buffered
  EXPECT_GE(net.energy().bypasses, 1);
}

}  // namespace
}  // namespace noc

// The textbook Fig-1 allocator path must not drift (docs/PERF.md Layer 5).
//
// The baseline_3stage / baseline_4stage factories model the paper's Fig-1
// reference router with actionable_sa1_requests = false: mSA-I considers
// every busy VC, including ones whose stage-2 request cannot possibly win
// this cycle. That wasteful-but-faithful behaviour is the comparison anchor
// for the paper's allocator claims, so datapath refactors (SoA busy masks,
// wide-mask arbiter inputs, per-port gating) must leave it bit-identical.
// These goldens were recorded from the pre-refactor scalar implementation;
// every counter is an exact integer event count, so any allocator-visible
// change -- an extra arbitration, a reordered grant, a missed retry --
// fails loudly rather than shifting an average.
#include <gtest/gtest.h>

#include "noc/experiment.hpp"
#include "noc/network.hpp"

namespace noc {
namespace {

constexpr MeasureOptions kOpt{.warmup = 300, .window = 900};

TEST(TextbookAllocator, FactoriesKeepFig1Semantics) {
  // The knob itself: both textbook factories must request the
  // non-actionable mSA-I scan (and the proposed router must not).
  EXPECT_FALSE(NetworkConfig::baseline_3stage(4).router.actionable_sa1_requests);
  EXPECT_FALSE(NetworkConfig::baseline_4stage(4).router.actionable_sa1_requests);
  EXPECT_TRUE(NetworkConfig::proposed(4).router.actionable_sa1_requests);
}

TEST(TextbookAllocator, FourStageMixedGolden) {
  NetworkConfig cfg = NetworkConfig::baseline_4stage(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.seed = 5;
  const PointResult r = measure_point(cfg, 0.06, kOpt);
  EXPECT_EQ(r.completed_packets, 432);
  EXPECT_EQ(r.energy.xbar_traversals, 14030);
  EXPECT_EQ(r.energy.link_traversals, 10188);
  EXPECT_EQ(r.energy.nic_link_traversals, 7683);
  EXPECT_EQ(r.energy.buffer_writes, 14028);
  EXPECT_EQ(r.energy.buffer_reads, 14030);
  EXPECT_EQ(r.energy.sa1_arbitrations, 16547);
  EXPECT_EQ(r.energy.sa2_arbitrations, 14031);
  EXPECT_EQ(r.energy.vc_allocations, 15760);
  EXPECT_EQ(r.energy.vc_active_cycles, 35055);
  // The Fig-1 router has no lookahead datapath at all.
  EXPECT_EQ(r.energy.lookaheads_sent, 0);
  EXPECT_EQ(r.energy.bypasses, 0);
}

TEST(TextbookAllocator, ThreeStageUniformGolden) {
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.seed = 5;
  const PointResult r = measure_point(cfg, 0.10, kOpt);
  EXPECT_EQ(r.completed_packets, 1461);
  EXPECT_EQ(r.energy.xbar_traversals, 5318);
  EXPECT_EQ(r.energy.link_traversals, 3856);
  EXPECT_EQ(r.energy.buffer_writes, 5315);
  EXPECT_EQ(r.energy.sa1_arbitrations, 5444);
  EXPECT_EQ(r.energy.sa2_arbitrations, 5321);
  EXPECT_EQ(r.energy.vc_allocations, 6771);
  EXPECT_EQ(r.energy.vc_active_cycles, 10781);
}

TEST(TextbookAllocator, FourStage8x8Golden) {
  // A larger mesh keeps multi-hop contention in the pinned regime (the 4x4
  // points are dominated by short paths).
  NetworkConfig cfg = NetworkConfig::baseline_4stage(8);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.seed = 11;
  const PointResult r = measure_point(cfg, 0.08, kOpt);
  EXPECT_EQ(r.completed_packets, 4609);
  EXPECT_EQ(r.energy.xbar_traversals, 29170);
  EXPECT_EQ(r.energy.link_traversals, 24555);
  EXPECT_EQ(r.energy.buffer_writes, 29183);
  EXPECT_EQ(r.energy.sa1_arbitrations, 30233);
  EXPECT_EQ(r.energy.sa2_arbitrations, 29166);
  EXPECT_EQ(r.energy.vc_allocations, 33802);
  EXPECT_EQ(r.energy.vc_active_cycles, 59645);
}

TEST(TextbookAllocator, GoldenHoldsUnderEveryStepMode) {
  // The same pinned scenario through the gated, ungated, port-gated and
  // parallel step paths: one fingerprint, four schedules.
  int64_t ref_sa1 = -1;
  for (int mode = 0; mode < 4; ++mode) {
    NetworkConfig cfg = NetworkConfig::baseline_4stage(4);
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.seed = 5;
    cfg.activity_gating = mode != 1;
    cfg.router.port_gating = mode != 2;
    cfg.step_threads = mode == 3 ? 4 : 1;
    const PointResult r = measure_point(cfg, 0.06, kOpt);
    EXPECT_EQ(r.completed_packets, 432) << "mode " << mode;
    EXPECT_EQ(r.energy.sa1_arbitrations, 16547) << "mode " << mode;
    EXPECT_EQ(r.energy.sa2_arbitrations, 14031) << "mode " << mode;
    if (ref_sa1 < 0) ref_sa1 = r.energy.sa1_arbitrations;
    EXPECT_EQ(r.energy.sa1_arbitrations, ref_sa1);
  }
}

}  // namespace
}  // namespace noc

// The parallel sweep engine: thread pool semantics and the hard guarantee
// that ExperimentRunner output is bit-identical to the serial path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "noc/experiment.hpp"
#include "noc/network.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"
#include "sim/thread_pool.hpp"

namespace noc {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(8, 257, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallbackAndEmptyRange) {
  int calls = 0;
  parallel_for(1, 5, [&](int) { ++calls; });  // no pool: plain loop
  EXPECT_EQ(calls, 5);
  parallel_for(4, 0, [&](int) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(3, 20,
                   [](int i) {
                     if (i % 7 == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

void expect_identical(const PointResult& a, const PointResult& b) {
  // The simulation is deterministic, so every field must match exactly --
  // including the raw event counters, which catch any divergence the
  // aggregate statistics could mask.
  EXPECT_EQ(a.offered_fpc, b.offered_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.recv_flits_per_cycle, b.recv_flits_per_cycle);
  EXPECT_EQ(a.recv_gbps, b.recv_gbps);
  EXPECT_EQ(a.bypass_rate, b.bypass_rate);
  EXPECT_EQ(a.completed_packets, b.completed_packets);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.max_ejection_load, b.max_ejection_load);
  EXPECT_EQ(a.max_bisection_load, b.max_bisection_load);
  EXPECT_EQ(a.energy.xbar_traversals, b.energy.xbar_traversals);
  EXPECT_EQ(a.energy.link_traversals, b.energy.link_traversals);
  EXPECT_EQ(a.energy.nic_link_traversals, b.energy.nic_link_traversals);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(a.energy.sa1_arbitrations, b.energy.sa1_arbitrations);
  EXPECT_EQ(a.energy.sa2_arbitrations, b.energy.sa2_arbitrations);
  EXPECT_EQ(a.energy.vc_allocations, b.energy.vc_allocations);
  EXPECT_EQ(a.energy.lookaheads_sent, b.energy.lookaheads_sent);
  EXPECT_EQ(a.energy.bypasses, b.energy.bypasses);
  EXPECT_EQ(a.energy.partial_bypasses, b.energy.partial_bypasses);
  EXPECT_EQ(a.energy.buffered_hops, b.energy.buffered_hops);
  // The always-on latency histogram (docs/OBSERVABILITY.md): order
  // statistics are exact ranks, so they must be bit-identical too.
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  // Stall attribution (zero for both unless the config enables telemetry).
  for (int c = 0; c < kNumStallClasses; ++c)
    EXPECT_EQ(a.stall_cycles[c], b.stall_cycles[c]) << stall_class_name(
        static_cast<StallClass>(c));
}

TEST(ExperimentRunner, ParallelSweepIsBitIdenticalToSerial) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.seed = 7;
  const MeasureOptions measure{.warmup = 400, .window = 1500};
  const std::vector<double> loads = {0.04, 0.10, 0.16};

  const auto serial = sweep_curve(cfg, loads, measure);

  // More workers than points, on any machine: the schedule must not matter.
  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 3}};
  const auto parallel = runner.sweep(cfg, loads);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i)
    expect_identical(parallel[i], serial[i]);
}

TEST(ExperimentRunner, SweepAllMatchesPerConfigSerialCurves) {
  NetworkConfig prop = NetworkConfig::proposed(4);
  prop.traffic.pattern = TrafficPattern::MixedPaper;
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  base.traffic.pattern = TrafficPattern::MixedPaper;
  const MeasureOptions measure{.warmup = 300, .window = 1000};
  const std::vector<double> loads = {0.03, 0.08};

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 3}};
  const auto curves = runner.sweep_all({prop, base}, loads);
  ASSERT_EQ(curves.size(), 2u);
  const std::vector<NetworkConfig> cfgs = {prop, base};
  for (size_t c = 0; c < cfgs.size(); ++c) {
    const auto serial = sweep_curve(cfgs[c], loads, measure);
    ASSERT_EQ(curves[c].size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
      expect_identical(curves[c][i], serial[i]);
  }
}

TEST(ExperimentRunner, MixedConfigBatchMatchesPointMeasurements) {
  NetworkConfig prop = NetworkConfig::proposed(4);
  prop.traffic.pattern = TrafficPattern::UniformRequest;
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  base.traffic.pattern = TrafficPattern::UniformRequest;
  const MeasureOptions measure{.warmup = 300, .window = 1000};

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 2}};
  const auto results =
      runner.run({SweepPoint{prop, 0.10}, SweepPoint{base, 0.05}});
  ASSERT_EQ(results.size(), 2u);
  expect_identical(results[0], measure_point(prop, 0.10, measure));
  expect_identical(results[1], measure_point(base, 0.05, measure));
}

TEST(ExperimentRunner, FindSaturationsMatchesSerialSearch) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  const MeasureOptions measure{.warmup = 500, .window = 1500};

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 2}};
  const auto sats = runner.find_saturations({cfg, cfg});
  const auto serial = find_saturation(cfg, measure);
  ASSERT_EQ(sats.size(), 2u);
  for (const auto& s : sats) {
    EXPECT_EQ(s.zero_load_latency, serial.zero_load_latency);
    EXPECT_EQ(s.saturation_offered, serial.saturation_offered);
    EXPECT_EQ(s.saturation_gbps, serial.saturation_gbps);
    expect_identical(s.at_saturation, serial.at_saturation);
  }
}

TEST(ExperimentRunner, LargeKSweepsBitIdenticalToSerial) {
  // The acceptance bar for the multi-word DestMask datapath: k=12 and k=16
  // sweeps run end-to-end and the parallel engine reproduces the serial
  // metrics bit for bit, exactly as it does at the paper's k=4.
  for (int k : {12, 16}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    NetworkConfig cfg = NetworkConfig::proposed(k);
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 11;
    const MeasureOptions measure{.warmup = 200, .window = 500};
    const std::vector<double> loads = {0.02, 0.05};

    const auto serial = sweep_curve(cfg, loads, measure);
    const ExperimentRunner runner{
        ExperimentOptions{.measure = measure, .threads = 3}};
    const auto parallel = runner.sweep(cfg, loads);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      expect_identical(parallel[i], serial[i]);
      EXPECT_GT(serial[i].completed_packets, 0);
    }
  }
}

TEST(ExperimentRunner, ThreadsResolution) {
  EXPECT_GE(ExperimentRunner{}.threads(), 1);
  const ExperimentRunner one{ExperimentOptions{.measure = {}, .threads = 1}};
  EXPECT_EQ(one.threads(), 1);
}

// ---------------------------------------------------------------------------
// Intra-network parallel stepping (docs/PERF.md Layer 4): for every pattern
// x workload x policy x gating combination, metrics must be bit-identical
// across step_threads in {1, 2, 4}.

// Force a real multi-thread budget regardless of the host's core count so
// the threaded schedule genuinely runs (restored on scope exit: other tests
// assume the default).
struct ScopedBudget {
  int saved;
  explicit ScopedBudget(int total) : saved(thread_budget::total()) {
    thread_budget::set_total(total);
  }
  ~ScopedBudget() { thread_budget::set_total(saved); }
};

void expect_step_threads_invisible(NetworkConfig cfg, double offered,
                                   const MeasureOptions& measure) {
  cfg.step_threads = 1;
  const PointResult serial = measure_point(cfg, offered, measure);
  for (int st : {2, 4}) {
    SCOPED_TRACE("step_threads=" + std::to_string(st));
    cfg.step_threads = st;
    const PointResult par = measure_point(cfg, offered, measure);
    expect_identical(par, serial);
    // The full latency statistics too: RunningStat accumulation order must
    // have been reconstructed exactly, not just the integer counters.
    EXPECT_EQ(par.avg_latency, serial.avg_latency);
  }
}

TEST(ParallelStepping, BitIdenticalAcrossPatternsAndGating) {
  const MeasureOptions measure{.warmup = 300, .window = 900};
  for (bool gating : {true, false}) {
    for (TrafficPattern p : {TrafficPattern::UniformRequest,
                             TrafficPattern::MixedPaper,
                             TrafficPattern::BroadcastOnly}) {
      SCOPED_TRACE("gating=" + std::to_string(gating) +
                   " pattern=" + std::to_string(static_cast<int>(p)));
      ScopedBudget budget(8);
      NetworkConfig cfg = NetworkConfig::proposed(8);
      cfg.traffic.pattern = p;
      cfg.traffic.seed = 5;
      cfg.activity_gating = gating;
      const double offered = p == TrafficPattern::BroadcastOnly ? 0.01 : 0.08;
      expect_step_threads_invisible(cfg, offered, measure);
    }
  }
}

TEST(ParallelStepping, BitIdenticalAcrossPoliciesAndPipelines) {
  const MeasureOptions measure{.warmup = 300, .window = 900};
  ScopedBudget budget(8);
  for (RoutePolicy policy : {RoutePolicy::XY, RoutePolicy::O1Turn,
                             RoutePolicy::MinimalAdaptive}) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.router.routing = policy;
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    expect_step_threads_invisible(cfg, 0.10, measure);
  }
  {
    // The unicast baseline exercises NIC broadcast duplication, whose local
    // deliveries flow through the inject-phase capture path.
    NetworkConfig cfg = NetworkConfig::baseline_3stage(8);
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    expect_step_threads_invisible(cfg, 0.03, measure);
  }
}

TEST(ParallelStepping, BitIdenticalAcrossWorkloads) {
  const MeasureOptions measure{.warmup = 300, .window = 900};
  ScopedBudget budget(8);
  {
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.workload.kind = WorkloadKind::ClosedLoop;
    cfg.workload.closed.window = 4;
    cfg.workload.closed.issue_prob = 0.3;
    expect_step_threads_invisible(cfg, 0.0, measure);
  }
  {
    // Trace replay: record serially, then replay under every thread count.
    auto trace = std::make_shared<Trace>();
    {
      NetworkConfig rec = NetworkConfig::proposed(8);
      rec.traffic.pattern = TrafficPattern::MixedPaper;
      rec.traffic.offered_flits_per_node_cycle = 0.06;
      Network net(rec);
      net.record_trace(trace.get());
      Simulation sim(net);
      sim.run(4000);
    }
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.workload.kind = WorkloadKind::Trace;
    cfg.workload.trace.trace = trace;
    expect_step_threads_invisible(cfg, 0.0, measure);
  }
  {
    // Identical-PRBS synchronized bursts stress the timed-wake sharding.
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.identical_prbs = true;
    expect_step_threads_invisible(cfg, 0.04, measure);
  }
}

TEST(ParallelStepping, BitIdenticalAtLargeAndRectangularK) {
  // k=12 / k=16 cross DestMask word boundaries; 4x8 is the rectangular
  // acceptance case (kx != ky, spans over 4 columns of 8-row height).
  const MeasureOptions measure{.warmup = 200, .window = 500};
  ScopedBudget budget(8);
  for (int k : {12, 16}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    NetworkConfig cfg = NetworkConfig::proposed(k);
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 11;
    expect_step_threads_invisible(cfg, 0.04, measure);
  }
  {
    SCOPED_TRACE("rect 4x8");
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.ky = 8;
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 3;
    expect_step_threads_invisible(cfg, 0.06, measure);
  }
}

TEST(ParallelStepping, BitIdenticalUnderFaultSchedules) {
  // Faults are applied on the main thread at the top of step() before span
  // workers launch (partition.hpp), so a kill/revive schedule -- including
  // one that severs a node and produces drops -- must be invisible to the
  // span decomposition.
  const MeasureOptions measure{.warmup = 300, .window = 900};
  ScopedBudget budget(8);
  for (RoutePolicy policy :
       {RoutePolicy::MinimalAdaptive, RoutePolicy::XY}) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.router.routing = policy;
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 17;
    // Vertical center cut in-window, revived before the end; corner 63 is
    // permanently severed mid-window so the drop path runs threaded too.
    cfg.fault.kill_link(400, 27, 35)
        .kill_link(400, 28, 36)
        .degrade_router(400, 27)
        .revive_link(900, 27, 35)
        .revive_link(900, 28, 36)
        .restore_router(900, 27)
        .kill_link(700, 63, 62)
        .kill_link(700, 63, 55);
    expect_step_threads_invisible(cfg, 0.08, measure);
  }
  {
    SCOPED_TRACE("k=12 word-boundary seam");
    NetworkConfig cfg = NetworkConfig::proposed(12);
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 11;
    cfg.fault.kill_link(300, 63, 64).kill_link(300, 127, 128);
    const MeasureOptions small{.warmup = 200, .window = 500};
    expect_step_threads_invisible(cfg, 0.04, small);
  }
}

TEST(ParallelStepping, TraceRecordingMatchesSerialRecording) {
  // Recording runs the inline global-node-order path: the recorded trace
  // must be byte-for-byte what a serial network records.
  auto record = [](int step_threads) {
    auto trace = std::make_shared<Trace>();
    NetworkConfig cfg = NetworkConfig::proposed(8);
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.offered_flits_per_node_cycle = 0.06;
    cfg.step_threads = step_threads;
    Network net(cfg);
    net.record_trace(trace.get());
    Simulation sim(net);
    sim.run(2000);
    return trace;
  };
  ScopedBudget budget(8);
  const auto serial = record(1);
  const auto par = record(4);
  ASSERT_EQ(par->records.size(), serial->records.size());
  for (size_t i = 0; i < serial->records.size(); ++i) {
    EXPECT_EQ(par->records[i].cycle, serial->records[i].cycle);
    EXPECT_EQ(par->records[i].src, serial->records[i].src);
    EXPECT_EQ(par->records[i].length, serial->records[i].length);
  }
}

// ---------------------------------------------------------------------------
// Thread budget: nested parallelism (point fan-out x intra-network teams)
// must never exceed the configured total.

TEST(ThreadBudget, AcquireReleaseNeverExceedsTotal) {
  ScopedBudget budget(4);
  EXPECT_EQ(thread_budget::total(), 4);
  EXPECT_EQ(thread_budget::in_use(), 1);  // the root thread
  const int a = thread_budget::acquire(2);
  EXPECT_EQ(a, 2);
  const int b = thread_budget::acquire(5);  // only 1 left under the cap
  EXPECT_EQ(b, 1);
  EXPECT_EQ(thread_budget::acquire(1), 0);  // exhausted
  EXPECT_EQ(thread_budget::in_use(), 4);
  thread_budget::release(b);
  thread_budget::release(a);
  EXPECT_EQ(thread_budget::in_use(), 1);
  EXPECT_EQ(thread_budget::peak_in_use(), 4);
}

TEST(ThreadBudget, NetworkTeamsClampUnderTheCap) {
  ScopedBudget budget(3);  // root + at most 2 helpers
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.step_threads = 4;
  Network a(cfg);  // leases 2 of the 3 requested helpers
  EXPECT_EQ(a.num_step_spans(), 4);
  EXPECT_EQ(a.step_workers(), 3);
  Network b(cfg);  // budget exhausted: steps its 4 spans inline
  EXPECT_EQ(b.num_step_spans(), 4);
  EXPECT_EQ(b.step_workers(), 1);
  EXPECT_LE(thread_budget::in_use(), 3);
  EXPECT_LE(thread_budget::peak_in_use(), 3);
}

TEST(ThreadBudget, NestedSweepAndSteppingStaysUnderTotal) {
  ScopedBudget budget(5);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.step_threads = 4;  // each point would like 3 extra threads
  const MeasureOptions measure{.warmup = 100, .window = 300};
  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 4}};
  const auto results = runner.sweep(cfg, {0.02, 0.04, 0.06, 0.08});
  EXPECT_EQ(results.size(), 4u);
  // Whatever the interleaving, the lease arithmetic must have stayed under
  // the cap, and everything must have been returned.
  EXPECT_LE(thread_budget::peak_in_use(), 5);
  EXPECT_EQ(thread_budget::in_use(), 1);
  // And budget clamping must not have changed results (grant-invariance).
  cfg.step_threads = 1;
  const auto serial = sweep_curve(cfg, {0.02, 0.04, 0.06, 0.08}, measure);
  for (size_t i = 0; i < serial.size(); ++i)
    expect_identical(results[i], serial[i]);
}

}  // namespace
}  // namespace noc

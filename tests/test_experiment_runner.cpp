// The parallel sweep engine: thread pool semantics and the hard guarantee
// that ExperimentRunner output is bit-identical to the serial path.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "noc/experiment.hpp"
#include "sim/thread_pool.hpp"

namespace noc {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(8, 257, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallbackAndEmptyRange) {
  int calls = 0;
  parallel_for(1, 5, [&](int) { ++calls; });  // no pool: plain loop
  EXPECT_EQ(calls, 5);
  parallel_for(4, 0, [&](int) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(3, 20,
                   [](int i) {
                     if (i % 7 == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

void expect_identical(const PointResult& a, const PointResult& b) {
  // The simulation is deterministic, so every field must match exactly --
  // including the raw event counters, which catch any divergence the
  // aggregate statistics could mask.
  EXPECT_EQ(a.offered_fpc, b.offered_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.recv_flits_per_cycle, b.recv_flits_per_cycle);
  EXPECT_EQ(a.recv_gbps, b.recv_gbps);
  EXPECT_EQ(a.bypass_rate, b.bypass_rate);
  EXPECT_EQ(a.completed_packets, b.completed_packets);
  EXPECT_EQ(a.max_ejection_load, b.max_ejection_load);
  EXPECT_EQ(a.max_bisection_load, b.max_bisection_load);
  EXPECT_EQ(a.energy.xbar_traversals, b.energy.xbar_traversals);
  EXPECT_EQ(a.energy.link_traversals, b.energy.link_traversals);
  EXPECT_EQ(a.energy.nic_link_traversals, b.energy.nic_link_traversals);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(a.energy.sa1_arbitrations, b.energy.sa1_arbitrations);
  EXPECT_EQ(a.energy.sa2_arbitrations, b.energy.sa2_arbitrations);
  EXPECT_EQ(a.energy.vc_allocations, b.energy.vc_allocations);
  EXPECT_EQ(a.energy.lookaheads_sent, b.energy.lookaheads_sent);
  EXPECT_EQ(a.energy.bypasses, b.energy.bypasses);
  EXPECT_EQ(a.energy.partial_bypasses, b.energy.partial_bypasses);
  EXPECT_EQ(a.energy.buffered_hops, b.energy.buffered_hops);
}

TEST(ExperimentRunner, ParallelSweepIsBitIdenticalToSerial) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.seed = 7;
  const MeasureOptions measure{.warmup = 400, .window = 1500};
  const std::vector<double> loads = {0.04, 0.10, 0.16};

  const auto serial = sweep_curve(cfg, loads, measure);

  // More workers than points, on any machine: the schedule must not matter.
  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 3}};
  const auto parallel = runner.sweep(cfg, loads);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i)
    expect_identical(parallel[i], serial[i]);
}

TEST(ExperimentRunner, SweepAllMatchesPerConfigSerialCurves) {
  NetworkConfig prop = NetworkConfig::proposed(4);
  prop.traffic.pattern = TrafficPattern::MixedPaper;
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  base.traffic.pattern = TrafficPattern::MixedPaper;
  const MeasureOptions measure{.warmup = 300, .window = 1000};
  const std::vector<double> loads = {0.03, 0.08};

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 3}};
  const auto curves = runner.sweep_all({prop, base}, loads);
  ASSERT_EQ(curves.size(), 2u);
  const std::vector<NetworkConfig> cfgs = {prop, base};
  for (size_t c = 0; c < cfgs.size(); ++c) {
    const auto serial = sweep_curve(cfgs[c], loads, measure);
    ASSERT_EQ(curves[c].size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
      expect_identical(curves[c][i], serial[i]);
  }
}

TEST(ExperimentRunner, MixedConfigBatchMatchesPointMeasurements) {
  NetworkConfig prop = NetworkConfig::proposed(4);
  prop.traffic.pattern = TrafficPattern::UniformRequest;
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  base.traffic.pattern = TrafficPattern::UniformRequest;
  const MeasureOptions measure{.warmup = 300, .window = 1000};

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 2}};
  const auto results =
      runner.run({SweepPoint{prop, 0.10}, SweepPoint{base, 0.05}});
  ASSERT_EQ(results.size(), 2u);
  expect_identical(results[0], measure_point(prop, 0.10, measure));
  expect_identical(results[1], measure_point(base, 0.05, measure));
}

TEST(ExperimentRunner, FindSaturationsMatchesSerialSearch) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  const MeasureOptions measure{.warmup = 500, .window = 1500};

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 2}};
  const auto sats = runner.find_saturations({cfg, cfg});
  const auto serial = find_saturation(cfg, measure);
  ASSERT_EQ(sats.size(), 2u);
  for (const auto& s : sats) {
    EXPECT_EQ(s.zero_load_latency, serial.zero_load_latency);
    EXPECT_EQ(s.saturation_offered, serial.saturation_offered);
    EXPECT_EQ(s.saturation_gbps, serial.saturation_gbps);
    expect_identical(s.at_saturation, serial.at_saturation);
  }
}

TEST(ExperimentRunner, LargeKSweepsBitIdenticalToSerial) {
  // The acceptance bar for the multi-word DestMask datapath: k=12 and k=16
  // sweeps run end-to-end and the parallel engine reproduces the serial
  // metrics bit for bit, exactly as it does at the paper's k=4.
  for (int k : {12, 16}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    NetworkConfig cfg = NetworkConfig::proposed(k);
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 11;
    const MeasureOptions measure{.warmup = 200, .window = 500};
    const std::vector<double> loads = {0.02, 0.05};

    const auto serial = sweep_curve(cfg, loads, measure);
    const ExperimentRunner runner{
        ExperimentOptions{.measure = measure, .threads = 3}};
    const auto parallel = runner.sweep(cfg, loads);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      expect_identical(parallel[i], serial[i]);
      EXPECT_GT(serial[i].completed_packets, 0);
    }
  }
}

TEST(ExperimentRunner, ThreadsResolution) {
  EXPECT_GE(ExperimentRunner{}.threads(), 1);
  const ExperimentRunner one{ExperimentOptions{.measure = {}, .threads = 1}};
  EXPECT_EQ(one.threads(), 1);
}

}  // namespace
}  // namespace noc

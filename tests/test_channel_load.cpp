// The simulator's measured channel loads must track Table 1's formulas at
// low-to-moderate load (perfect-routing assumptions hold best there).
#include <gtest/gtest.h>

#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

namespace noc {
namespace {

TEST(ChannelLoad, BroadcastEjectionMatchesKSquaredR) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  const double R = 0.02;  // flits/node/cycle, well below the 1/16 limit
  auto pt = measure_point(cfg, R, {.warmup = 2000, .window = 20000});
  // L_ejection = k^2 R = 0.32. Every ejection link carries every broadcast.
  const double expect = theory::broadcast_ejection_load(4, R);
  EXPECT_NEAR(pt.max_ejection_load, expect, 0.05 * expect + 0.01);
}

TEST(ChannelLoad, UnicastEjectionMatchesR) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  const double R = 0.2;
  auto pt = measure_point(cfg, R, {.warmup = 2000, .window = 20000});
  // L_ejection = R on average; the max over 16 links sits a bit above.
  EXPECT_NEAR(pt.max_ejection_load, R, 0.35 * R);
}

TEST(ChannelLoad, UnicastBisectionNearKRover4) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  const double R = 0.3;
  auto pt = measure_point(cfg, R, {.warmup = 2000, .window = 20000});
  const double expect = theory::unicast_bisection_load(4, R);  // kR/4 = 0.3
  // XY routing does not balance perfectly (the paper's stated reason the
  // chip sits below the theoretical limit), so allow asymmetry upward.
  EXPECT_GT(pt.max_bisection_load, 0.6 * expect);
  EXPECT_LT(pt.max_bisection_load, 1.8 * expect);
}

TEST(ChannelLoad, BroadcastBisectionBelowEjection) {
  // Appendix A: broadcast throughput is ejection-limited, not
  // bisection-limited -- the tree shares bandwidth across the cut.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto pt = measure_point(cfg, 0.03, {.warmup = 2000, .window = 20000});
  EXPECT_LT(pt.max_bisection_load, pt.max_ejection_load);
}

TEST(ChannelLoad, DuplicatingBaselineMultipliesInjectionLoad) {
  // Without router multicast the source NIC injects k^2-1 copies: the
  // injection links see ~15x the logical broadcast flit rate.
  NetworkConfig prop = NetworkConfig::proposed(4);
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  prop.traffic.pattern = base.traffic.pattern = TrafficPattern::BroadcastOnly;
  const double R = 0.01;
  auto pp = measure_point(prop, R, {.warmup = 2000, .window = 20000});
  auto bp = measure_point(base, R, {.warmup = 2000, .window = 20000});
  // Proposed ejects 16 flits per logical bcast but injects 1; the baseline
  // injects 15. Compare network link traversals per delivered flit.
  const double prop_links =
      static_cast<double>(pp.energy.link_traversals) /
      static_cast<double>(pp.energy.cycles);
  const double base_links =
      static_cast<double>(bp.energy.link_traversals) /
      static_cast<double>(bp.energy.cycles);
  // Tree: 15 links per bcast. Duplication: ~2.5 avg hops x 15 copies = ~37.
  EXPECT_GT(base_links, 2.0 * prop_links);
}

}  // namespace
}  // namespace noc

// XY-tree routing properties: coverage (every destination reached exactly
// once), deadlock-freedom by dimension order (no Y->X turns), minimality.
#include <gtest/gtest.h>

#include <bit>
#include <queue>
#include <utility>

#include "common/rng.hpp"
#include "noc/routing.hpp"

namespace noc {
namespace {

TEST(Ports, OppositeIsInvolution) {
  for (int i = 0; i < kNumPorts; ++i)
    EXPECT_EQ(opposite(opposite(port_dir(i))), port_dir(i));
}

TEST(Routing, UnicastXYGoesXFirst) {
  MeshGeometry g(4);
  // From (0,0) to (2,2): must head East until the column matches.
  EXPECT_EQ(xy_route(g, g.id(0, 0), g.id(2, 2)), PortDir::East);
  EXPECT_EQ(xy_route(g, g.id(1, 0), g.id(2, 2)), PortDir::East);
  EXPECT_EQ(xy_route(g, g.id(2, 0), g.id(2, 2)), PortDir::North);
  EXPECT_EQ(xy_route(g, g.id(2, 1), g.id(2, 2)), PortDir::North);
  EXPECT_EQ(xy_route(g, g.id(2, 2), g.id(2, 2)), PortDir::Local);
}

TEST(Routing, RequestVectorIs5Bits) {
  MeshGeometry g(4);
  const RouteSet rs = xy_tree_route(g, g.id(1, 1), g.all_nodes_mask());
  EXPECT_EQ(rs.request_vector() & ~0x1Fu, 0u);
  EXPECT_EQ(rs.fanout(), 5);  // interior node broadcasts to all 5 ports
}

TEST(Routing, PartitionIsDisjointAndComplete) {
  MeshGeometry g(4);
  for (NodeId here = 0; here < g.num_nodes(); ++here) {
    const DestMask all = g.all_nodes_mask();
    const RouteSet rs = xy_tree_route(g, here, all);
    DestMask seen;
    for (int p = 0; p < kNumPorts; ++p) {
      EXPECT_TRUE((seen & rs.port_dests[p]).none()) << "overlap at node " << here;
      seen |= rs.port_dests[p];
    }
    EXPECT_EQ(seen, all);
  }
}

// Simulate tree expansion hop by hop; verify coverage, no duplicates, and
// dimension order (a flit that has turned into Y never goes back to X).
struct TreeWalkResult {
  int deliveries = 0;
  int duplicate_deliveries = 0;
  bool y_to_x_turn = false;
  int max_hops = 0;
  int link_traversals = 0;
};

TreeWalkResult walk_tree(const MeshGeometry& g, NodeId src, DestMask dests) {
  TreeWalkResult res;
  std::vector<int> delivered(static_cast<size_t>(g.num_nodes()), 0);
  struct Item {
    NodeId at;
    DestMask mask;
    bool moved_y;
    int hops;
  };
  std::queue<Item> q;
  q.push({src, dests, false, 0});
  while (!q.empty()) {
    Item it = q.front();
    q.pop();
    const RouteSet rs = xy_tree_route(g, it.at, it.mask);
    for (int p = 0; p < kNumPorts; ++p) {
      const DestMask m = rs.port_dests[static_cast<size_t>(p)];
      if (m.none()) continue;
      const PortDir d = port_dir(p);
      if (d == PortDir::Local) {
        EXPECT_EQ(m, MeshGeometry::node_mask(it.at));
        ++res.deliveries;
        if (delivered[static_cast<size_t>(it.at)]++) ++res.duplicate_deliveries;
        continue;
      }
      const bool is_x = d == PortDir::East || d == PortDir::West;
      if (it.moved_y && is_x) res.y_to_x_turn = true;
      ++res.link_traversals;
      const Coord nc = neighbor_coord(g.coord(it.at), d);
      EXPECT_TRUE(g.valid(nc)) << "route left the mesh";
      q.push({g.id(nc), m, it.moved_y || !is_x, it.hops + 1});
      res.max_hops = std::max(res.max_hops, it.hops + 1);
    }
  }
  return res;
}

class TreeWalkTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeWalkTest, BroadcastCoversAllNodesOnce) {
  MeshGeometry g(GetParam());
  for (NodeId src = 0; src < g.num_nodes(); ++src) {
    const auto res = walk_tree(g, src, g.all_nodes_mask());
    EXPECT_EQ(res.deliveries, g.num_nodes());
    EXPECT_EQ(res.duplicate_deliveries, 0);
    EXPECT_FALSE(res.y_to_x_turn) << "dimension order violated";
    EXPECT_EQ(res.max_hops, g.furthest_distance(src)) << "non-minimal tree";
    // A spanning tree of k^2 nodes uses exactly k^2 - 1 links.
    EXPECT_EQ(res.link_traversals, g.num_nodes() - 1);
  }
}

TEST_P(TreeWalkTest, UnicastIsMinimalXY) {
  MeshGeometry g(GetParam());
  for (NodeId s = 0; s < g.num_nodes(); ++s)
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      const auto res = walk_tree(g, s, MeshGeometry::node_mask(d));
      EXPECT_EQ(res.deliveries, 1);
      EXPECT_EQ(res.max_hops, g.manhattan(s, d));
      EXPECT_FALSE(res.y_to_x_turn);
    }
}

TEST_P(TreeWalkTest, ArbitraryMulticastSetsCovered) {
  MeshGeometry g(GetParam());
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const auto src =
        static_cast<NodeId>(rng.next_below(g.num_nodes()));
    DestMask m;
    const int count = 1 + static_cast<int>(rng.next_below(g.num_nodes()));
    for (int i = 0; i < count; ++i)
      m |= MeshGeometry::node_mask(
          static_cast<NodeId>(rng.next_below(g.num_nodes())));
    const auto res = walk_tree(g, src, m);
    EXPECT_EQ(res.deliveries, m.count());
    EXPECT_EQ(res.duplicate_deliveries, 0);
    EXPECT_FALSE(res.y_to_x_turn);
  }
}

// 10 and 12 put the mesh past 64 nodes: their destination sets span
// multiple DestMask words, so every tree-walk property above also checks
// the multi-word partition logic.
INSTANTIATE_TEST_SUITE_P(Sizes, TreeWalkTest,
                         ::testing::Values(2, 3, 4, 6, 8, 10, 12));

TEST(Routing, RectangularMeshTreeProperties) {
  // Rectangular groundwork: the XY tree's coverage/minimality/dimension-
  // order properties are shape-independent; pin them on a 4x8 mesh (and
  // its transpose) where an x/y stride mix-up would leave the mesh or
  // double-deliver immediately.
  for (const auto& [kx, ky] : {std::pair{4, 8}, std::pair{8, 4}}) {
    MeshGeometry g(kx, ky);
    for (NodeId src = 0; src < g.num_nodes(); ++src) {
      const auto res = walk_tree(g, src, g.all_nodes_mask());
      EXPECT_EQ(res.deliveries, g.num_nodes());
      EXPECT_EQ(res.duplicate_deliveries, 0);
      EXPECT_FALSE(res.y_to_x_turn);
      EXPECT_EQ(res.max_hops, g.furthest_distance(src));
      EXPECT_EQ(res.link_traversals, g.num_nodes() - 1);
    }
    for (NodeId s = 0; s < g.num_nodes(); ++s)
      for (NodeId d = 0; d < g.num_nodes(); ++d) {
        const auto res = walk_tree(g, s, MeshGeometry::node_mask(d));
        EXPECT_EQ(res.deliveries, 1);
        EXPECT_EQ(res.max_hops, g.manhattan(s, d));
        EXPECT_FALSE(res.y_to_x_turn);
      }
  }
}

TEST(Routing, WordBoundaryMulticastPartition) {
  // Destination sets that straddle the 64-bit word seams of DestMask: on a
  // 12x12 mesh nodes 63/64 are adjacent in id but live in different words,
  // as do 127/128. A partition bug that drops or duplicates a high word
  // shows up as a missed or doubled delivery here.
  MeshGeometry g(12);
  ASSERT_EQ(g.num_nodes(), 144);
  const NodeId seam_pairs[][2] = {{63, 64}, {127, 128}};
  for (const auto& pair : seam_pairs) {
    DestMask m = MeshGeometry::node_mask(pair[0]) |
                 MeshGeometry::node_mask(pair[1]);
    EXPECT_EQ(m.count(), 2);
    for (NodeId src : {0, 63, 64, 143}) {
      const auto res = walk_tree(g, src, m);
      EXPECT_EQ(res.deliveries, 2) << "src " << src;
      EXPECT_EQ(res.duplicate_deliveries, 0) << "src " << src;
      EXPECT_FALSE(res.y_to_x_turn);
    }
  }
  // A set with one destination in every word (nodes 1, 70, 130, plus the
  // last node 143 in word 2): full coverage across all populated words.
  const DestMask wide = MeshGeometry::node_mask(1) |
                        MeshGeometry::node_mask(70) |
                        MeshGeometry::node_mask(130) |
                        MeshGeometry::node_mask(143);
  const auto res = walk_tree(g, 71, wide);
  EXPECT_EQ(res.deliveries, 4);
  EXPECT_EQ(res.duplicate_deliveries, 0);
}

TEST(Routing, LargeKBroadcastPartitionDisjointAndComplete) {
  // The k=4 PartitionIsDisjointAndComplete property, repeated where the
  // all-nodes mask occupies two-and-a-bit words.
  MeshGeometry g(12);
  const DestMask all = g.all_nodes_mask();
  EXPECT_EQ(all.count(), 144);
  for (NodeId here = 0; here < g.num_nodes(); ++here) {
    const RouteSet rs = xy_tree_route(g, here, all);
    DestMask seen;
    for (int p = 0; p < kNumPorts; ++p) {
      EXPECT_EQ((seen & rs.port_dests[static_cast<size_t>(p)]).count(), 0)
          << "overlap at node " << here;
      seen |= rs.port_dests[static_cast<size_t>(p)];
    }
    EXPECT_EQ(seen, all);
  }
}

}  // namespace
}  // namespace noc

// Multi-flit multicast: no paper traffic class sends multi-flit broadcasts,
// but the router's per-branch machinery supports them (branches advance
// independently per seq, buffer slots retire only when every branch has
// sent a flit). These tests push that corner hard.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

void submit(Network& net, Simulation& sim, PacketId id, NodeId src,
            DestMask dests, MsgClass mc, int len) {
  Packet p;
  p.id = id;
  p.src = src;
  p.dest_mask = dests;
  p.mc = mc;
  p.length = len;
  p.gen_cycle = sim.now();
  net.nic(src).submit_packet(p);
}

class MultiflitMulticastTest : public ::testing::TestWithParam<bool> {};

TEST_P(MultiflitMulticastTest, FiveFlitBroadcastReachesAllNodes) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  net.metrics().begin_window(sim.now());
  submit(net, sim, 1, 5, net.geom().all_nodes_mask(), MsgClass::Response, 5);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 2000));
  net.metrics().end_window(sim.now());
  // 16 destinations x 5 flits each.
  EXPECT_EQ(net.metrics().received_flits(), 80);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 2000));
}

TEST_P(MultiflitMulticastTest, ConcurrentMultiflitBroadcastsDrain) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  // Every node broadcasts a 5-flit response simultaneously: worst-case
  // pressure on the 2x3-deep response VCs and the ejection links.
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    submit(net, sim, static_cast<PacketId>(1000 + n), n,
           net.geom().all_nodes_mask(), MsgClass::Response, 5);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 20000));
  EXPECT_EQ(net.metrics().total_completed(), 16);
}

TEST_P(MultiflitMulticastTest, ArbitraryMulticastSets) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  MeshGeometry g(4);
  // A 3-destination multicast spanning both dimensions, 5 flits.
  const DestMask m = MeshGeometry::node_mask(g.id(3, 0)) |
                     MeshGeometry::node_mask(g.id(0, 3)) |
                     MeshGeometry::node_mask(g.id(3, 3));
  net.metrics().begin_window(sim.now());
  submit(net, sim, 2, g.id(0, 0), m, MsgClass::Response, 5);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 2000));
  net.metrics().end_window(sim.now());
  EXPECT_EQ(net.metrics().received_flits(), 15);  // 3 dests x 5 flits
}

TEST_P(MultiflitMulticastTest, MixedWithRegularTrafficDrains) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.08;
  Network net(cfg);
  Simulation sim(net);
  sim.run(100);
  // Inject multi-flit broadcasts on top of live mixed traffic.
  for (NodeId n = 0; n < 4; ++n)
    submit(net, sim, static_cast<PacketId>(5000 + n), n,
           net.geom().all_nodes_mask(), MsgClass::Response, 5);
  sim.run(2000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST_P(MultiflitMulticastTest, LargeKWordBoundaryMulticast) {
  // k=12 (144 nodes): a 5-flit multicast whose destination set straddles
  // every DestMask word seam the mesh reaches (63|64 and 127|128), plus the
  // last node. Exercises multi-word branch partitioning through the full
  // router datapath, not just the routing function.
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  const DestMask m = MeshGeometry::node_mask(63) |
                     MeshGeometry::node_mask(64) |
                     MeshGeometry::node_mask(127) |
                     MeshGeometry::node_mask(128) |
                     MeshGeometry::node_mask(143);
  net.metrics().begin_window(sim.now());
  submit(net, sim, 3, 0, m, MsgClass::Response, 5);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 4000));
  net.metrics().end_window(sim.now());
  EXPECT_EQ(net.metrics().received_flits(), 25);  // 5 dests x 5 flits
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 4000));
}

TEST_P(MultiflitMulticastTest, LargeKBroadcastReachesAllHundredNodes) {
  // k=10 broadcast: the all-nodes mask spans two words (100 bits); every
  // node must be reached exactly once with all 5 flits.
  NetworkConfig cfg = NetworkConfig::proposed(10);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  net.metrics().begin_window(sim.now());
  submit(net, sim, 4, 55, net.geom().all_nodes_mask(), MsgClass::Response, 5);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 8000));
  net.metrics().end_window(sim.now());
  EXPECT_EQ(net.metrics().received_flits(), 500);  // 100 dests x 5 flits
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 8000));
}

TEST_P(MultiflitMulticastTest, LargeKConcurrentSeamBroadcastsDrain) {
  // Concurrent broadcasts from sources sitting right at the word seams of
  // a k=12 mesh; conservation must hold once the network drains.
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.router.allow_partial_bypass = GetParam();
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  for (NodeId n : {0, 63, 64, 127, 128, 143})
    submit(net, sim, static_cast<PacketId>(7000 + n), n,
           net.geom().all_nodes_mask(), MsgClass::Response, 5);
  EXPECT_TRUE(sim.run_until([&] { return net.quiescent(); }, 60000));
  EXPECT_EQ(net.metrics().total_completed(), 6);
}

INSTANTIATE_TEST_SUITE_P(PartialBypass, MultiflitMulticastTest,
                         ::testing::Bool());

}  // namespace
}  // namespace noc

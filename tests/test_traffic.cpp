#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <vector>

#include "noc/traffic.hpp"

namespace noc {
namespace {

TrafficConfig base_cfg(TrafficPattern p, double rate = 0.2) {
  TrafficConfig c;
  c.pattern = p;
  c.offered_flits_per_node_cycle = rate;
  c.seed = 7;
  return c;
}

TEST(Traffic, BernoulliRateIsRespected) {
  MeshGeometry g(4);
  TrafficGenerator gen(g, base_cfg(TrafficPattern::UniformRequest, 0.25), 3);
  int packets = 0;
  const int cycles = 40000;
  for (Cycle t = 0; t < cycles; ++t)
    if (gen.generate(t)) ++packets;
  EXPECT_NEAR(packets / static_cast<double>(cycles), 0.25, 0.02);
}

TEST(Traffic, MixedPaperComposition) {
  MeshGeometry g(4);
  TrafficGenerator gen(g, base_cfg(TrafficPattern::MixedPaper, 0.4), 5);
  int bcast = 0, ureq = 0, uresp = 0, total = 0;
  for (Cycle t = 0; t < 60000; ++t) {
    auto p = gen.generate(t);
    if (!p) continue;
    ++total;
    if (p->dest_mask.count() > 1) {
      ++bcast;
      EXPECT_EQ(p->mc, MsgClass::Request);
      EXPECT_EQ(p->length, 1);
    } else if (p->mc == MsgClass::Response) {
      ++uresp;
      EXPECT_EQ(p->length, 5);
    } else {
      ++ureq;
      EXPECT_EQ(p->length, 1);
    }
  }
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(bcast / static_cast<double>(total), 0.50, 0.03);
  EXPECT_NEAR(ureq / static_cast<double>(total), 0.25, 0.03);
  EXPECT_NEAR(uresp / static_cast<double>(total), 0.25, 0.03);
  // Offered flit accounting: avg 2 flits per logical packet.
  EXPECT_DOUBLE_EQ(gen.avg_flits_per_packet(), 2.0);
}

TEST(Traffic, BroadcastMaskIncludesSelfByDefault) {
  MeshGeometry g(4);
  TrafficGenerator gen(g, base_cfg(TrafficPattern::BroadcastOnly, 0.5), 6);
  for (Cycle t = 0; t < 100; ++t) {
    if (auto p = gen.generate(t)) {
      EXPECT_EQ(p->dest_mask, g.all_nodes_mask());
      EXPECT_EQ(p->dest_mask.count(), 16);
    }
  }
}

TEST(Traffic, BroadcastMaskWithoutSelf) {
  MeshGeometry g(4);
  auto cfg = base_cfg(TrafficPattern::BroadcastOnly, 0.5);
  cfg.include_self_in_broadcast = false;
  TrafficGenerator gen(g, cfg, 6);
  for (Cycle t = 0; t < 100; ++t) {
    if (auto p = gen.generate(t)) {
      EXPECT_EQ(p->dest_mask.count(), 15);
      EXPECT_TRUE((p->dest_mask & MeshGeometry::node_mask(6)).none());
    }
  }
}

TEST(Traffic, UnicastNeverTargetsSelfAndIsRoughlyUniform) {
  MeshGeometry g(4);
  TrafficGenerator gen(g, base_cfg(TrafficPattern::UniformRequest, 0.9), 9);
  std::map<NodeId, int> dests;
  int total = 0;
  for (Cycle t = 0; t < 30000; ++t) {
    if (auto p = gen.generate(t)) {
      const NodeId d = g.nodes_in(p->dest_mask).front();
      EXPECT_NE(d, 9);
      ++dests[d];
      ++total;
    }
  }
  EXPECT_EQ(dests.size(), 15u);
  for (auto& [d, c] : dests)
    EXPECT_NEAR(c / static_cast<double>(total), 1.0 / 15.0, 0.02);
}

TEST(Traffic, IdenticalPrbsSynchronizesInjections) {
  MeshGeometry g(4);
  auto cfg = base_cfg(TrafficPattern::MixedPaper, 0.1);
  cfg.identical_prbs = true;
  TrafficGenerator a(g, cfg, 0), b(g, cfg, 11);
  for (Cycle t = 0; t < 5000; ++t) {
    auto pa = a.generate(t), pb = b.generate(t);
    EXPECT_EQ(pa.has_value(), pb.has_value()) << "cycle " << t;
    if (pa && pb) {
      // Same packet type chip-wide...
      EXPECT_EQ(pa->mc, pb->mc);
      EXPECT_EQ(pa->dest_mask.count() > 1,
                pb->dest_mask.count() > 1);
    }
  }
}

TEST(Traffic, IndependentSeedsDesynchronize) {
  MeshGeometry g(4);
  auto cfg = base_cfg(TrafficPattern::UniformRequest, 0.1);
  TrafficGenerator a(g, cfg, 0), b(g, cfg, 11);
  int same = 0, events = 0;
  for (Cycle t = 0; t < 20000; ++t) {
    const bool ia = a.generate(t).has_value();
    const bool ib = b.generate(t).has_value();
    if (ia || ib) ++events;
    if (ia && ib) ++same;
  }
  // Coincidence rate should be ~R^2/(2R - R^2) ~ 5%, not ~100%.
  EXPECT_LT(same / static_cast<double>(events), 0.15);
}

TEST(Traffic, PermutationPatterns) {
  MeshGeometry g(4);
  for (auto pat : {TrafficPattern::Transpose, TrafficPattern::BitComplement,
                   TrafficPattern::Tornado, TrafficPattern::NearestNeighbor}) {
    TrafficGenerator gen(g, base_cfg(pat, 0.9), 6);
    for (Cycle t = 0; t < 200; ++t) {
      if (auto p = gen.generate(t)) {
        EXPECT_EQ(p->dest_mask.count(), 1);
        EXPECT_TRUE((p->dest_mask & MeshGeometry::node_mask(6)).none())
            << traffic_pattern_name(pat) << " targeted self";
      }
    }
  }
}

TEST(Traffic, TransposeDiagonalStaysSilent) {
  MeshGeometry g(4);
  // Node (1,1) = id 5 is on the diagonal: transpose maps it to itself.
  TrafficGenerator gen(g, base_cfg(TrafficPattern::Transpose, 0.9), 5);
  for (Cycle t = 0; t < 500; ++t) EXPECT_FALSE(gen.generate(t).has_value());
}

// Destination histogram over many unicast draws; shared by the PRBS-mode
// regression tests below.
std::map<NodeId, int> dest_histogram(TrafficConfig cfg, NodeId node,
                                     int cycles, int* total_out) {
  MeshGeometry g(4);
  TrafficGenerator gen(g, cfg, node);
  std::map<NodeId, int> dests;
  int total = 0;
  for (Cycle t = 0; t < cycles; ++t) {
    if (auto p = gen.generate(t)) {
      ++dests[g.nodes_in(p->dest_mask).front()];
      ++total;
    }
  }
  *total_out = total;
  return dests;
}

TEST(Traffic, SyncedPrbsDestinationsAreUnbiased) {
  // Regression for the synchronized-PRBS destination bug: draws 0 and 1
  // both mapped to node+1, so one destination carried 2x probability. The
  // fixed mapping draws from n-1 and must be uniform over all 15 others.
  auto cfg = base_cfg(TrafficPattern::UniformRequest, 0.9);
  cfg.identical_prbs = true;
  int total = 0;
  const NodeId node = 9;
  const auto dests = dest_histogram(cfg, node, 30000, &total);
  ASSERT_GT(total, 20000);
  EXPECT_EQ(dests.size(), 15u);
  EXPECT_EQ(dests.count(node), 0u);
  for (const auto& [d, c] : dests)
    EXPECT_NEAR(c / static_cast<double>(total), 1.0 / 15.0, 0.02)
        << "destination " << d << " over/under-weighted";
}

TEST(Traffic, SyncedPrbsLegacyBiasReachableBehindFlag) {
  // The seed-faithful mapping stays available for baseline comparisons and
  // must exhibit exactly the documented artifact: node+1 at ~2x weight.
  auto cfg = base_cfg(TrafficPattern::UniformRequest, 0.9);
  cfg.identical_prbs = true;
  cfg.synced_dest_bias = true;
  int total = 0;
  const NodeId node = 9;
  const auto dests = dest_histogram(cfg, node, 30000, &total);
  ASSERT_GT(total, 20000);
  const double hot = dests.at((node + 1) % 16) / static_cast<double>(total);
  EXPECT_NEAR(hot, 2.0 / 16.0, 0.02);
  for (const auto& [d, c] : dests) {
    if (d == (node + 1) % 16) continue;
    EXPECT_NEAR(c / static_cast<double>(total), 1.0 / 16.0, 0.02);
  }
}

TEST(Traffic, SyncedPrbsDrawsFormAPermutation) {
  // All 16 generators share one PRBS stream; at every synchronized fire the
  // relative mapping must scatter them onto 16 DISTINCT destinations (the
  // chip's permutation property the bias was breaking).
  MeshGeometry g(4);
  auto cfg = base_cfg(TrafficPattern::UniformRequest, 0.9);
  cfg.identical_prbs = true;
  std::vector<TrafficGenerator> gens;
  for (NodeId n = 0; n < 16; ++n) gens.emplace_back(g, cfg, n);
  int fires = 0;
  for (Cycle t = 0; t < 2000; ++t) {
    DestMask seen;
    int count = 0;
    for (auto& gen : gens) {
      if (auto p = gen.generate(t)) {
        seen |= p->dest_mask;
        ++count;
      }
    }
    if (count == 0) continue;
    ASSERT_EQ(count, 16);  // synchronized: all fire together
    EXPECT_EQ(seen.count(), 16) << "destination collision at " << t;
    ++fires;
  }
  EXPECT_GT(fires, 500);
}

TEST(Traffic, NonSyncedDestinationsStayUniform) {
  // The independent-stream path must be untouched by the fix: uniform over
  // the 15 non-self destinations (histogram twin of the synced test).
  int total = 0;
  const auto dests = dest_histogram(
      base_cfg(TrafficPattern::UniformRequest, 0.9), 9, 30000, &total);
  ASSERT_GT(total, 20000);
  EXPECT_EQ(dests.size(), 15u);
  for (const auto& [d, c] : dests)
    EXPECT_NEAR(c / static_cast<double>(total), 1.0 / 15.0, 0.02);
}

TEST(Traffic, NearestNeighborReflectsAtTheEastEdge) {
  // The east-edge column used to wrap to x=0: a (k-1)-hop packet on a mesh
  // with no wraparound link. It must now reflect to its west neighbor, so
  // every node emits genuine 1-hop traffic.
  MeshGeometry g(4);
  for (NodeId n = 0; n < 16; ++n) {
    TrafficGenerator gen(g, base_cfg(TrafficPattern::NearestNeighbor, 0.9), n);
    for (Cycle t = 0; t < 100; ++t) {
      if (auto p = gen.generate(t)) {
        const NodeId d = g.nodes_in(p->dest_mask).front();
        EXPECT_EQ(g.manhattan(n, d), 1) << "node " << n << " -> " << d;
        const Coord c = g.coord(n);
        EXPECT_EQ(d, c.x + 1 < g.k() ? g.id(c.x + 1, c.y)
                                     : g.id(c.x - 1, c.y));
      }
    }
  }
}

TEST(Traffic, GeneratorToleratesSkippedCyclesBelowNextFire) {
  // The gating contract: calling generate() only at next_fire_cycle() must
  // yield the same fire cycles and packets as calling it every cycle.
  MeshGeometry g(4);
  auto cfg = base_cfg(TrafficPattern::MixedPaper, 0.05);
  cfg.identical_prbs = true;
  TrafficGenerator dense(g, cfg, 3), sparse(g, cfg, 3);
  Cycle next = 0;
  for (Cycle t = 0; t < 20000; ++t) {
    auto pd = dense.generate(t);
    if (t < next) {
      ASSERT_FALSE(pd.has_value()) << "next_fire_cycle missed a fire at " << t;
      continue;
    }
    auto ps = sparse.generate(t);
    ASSERT_EQ(pd.has_value(), ps.has_value()) << "cycle " << t;
    if (pd) {
      EXPECT_EQ(pd->dest_mask, ps->dest_mask);
      EXPECT_EQ(pd->mc, ps->mc);
      EXPECT_EQ(pd->gen_cycle, ps->gen_cycle);
    }
    next = sparse.next_fire_cycle(t + 1);
  }
}

TEST(Traffic, PacketIdsAreUniquePerNodeAndMonotone) {
  MeshGeometry g(4);
  TrafficGenerator gen(g, base_cfg(TrafficPattern::UniformRequest, 0.9), 2);
  PacketId last = 0;
  for (Cycle t = 0; t < 1000; ++t) {
    if (auto p = gen.generate(t)) {
      EXPECT_GT(p->id, last);
      last = p->id;
    }
  }
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include "noc/geometry.hpp"

namespace noc {
namespace {

TEST(Geometry, IdCoordRoundTrip) {
  MeshGeometry g(4);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_EQ(g.id(g.coord(n)), n);
}

TEST(Geometry, RowMajorLayout) {
  MeshGeometry g(4);
  EXPECT_EQ(g.id(0, 0), 0);
  EXPECT_EQ(g.id(3, 0), 3);
  EXPECT_EQ(g.id(0, 1), 4);
  EXPECT_EQ(g.id(3, 3), 15);
}

TEST(Geometry, Manhattan) {
  MeshGeometry g(4);
  EXPECT_EQ(g.manhattan(g.id(0, 0), g.id(3, 3)), 6);
  EXPECT_EQ(g.manhattan(g.id(1, 2), g.id(1, 2)), 0);
  EXPECT_EQ(g.manhattan(g.id(2, 1), g.id(0, 1)), 2);
}

TEST(Geometry, FurthestDistanceCorners) {
  MeshGeometry g(4);
  EXPECT_EQ(g.furthest_distance(g.id(0, 0)), 6);  // opposite corner
  EXPECT_EQ(g.furthest_distance(g.id(1, 1)), 4);  // center-ish
  EXPECT_EQ(g.furthest_distance(g.id(3, 0)), 6);
}

TEST(Geometry, AllNodesMask) {
  MeshGeometry g(4);
  EXPECT_EQ(g.all_nodes_mask(), DestMask{0xFFFF});
  MeshGeometry g2(2);
  EXPECT_EQ(g2.all_nodes_mask(), DestMask{0xF});
}

TEST(Geometry, NodesInMask) {
  MeshGeometry g(4);
  const DestMask m = MeshGeometry::node_mask(3) | MeshGeometry::node_mask(9);
  const auto nodes = g.nodes_in(m);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 3);
  EXPECT_EQ(nodes[1], 9);
}

TEST(Geometry, LargeKMasksSpanWords) {
  // Multi-word DestMask: the 12x12 all-nodes mask is 144 bits (two full
  // words plus 16 bits of the third), and per-node masks round-trip across
  // the word seams.
  MeshGeometry g(12);
  const DestMask all = g.all_nodes_mask();
  EXPECT_EQ(all.count(), 144);
  EXPECT_EQ(all.word(0), ~uint64_t{0});
  EXPECT_EQ(all.word(1), ~uint64_t{0});
  EXPECT_EQ(all.word(2), 0xFFFFull);
  EXPECT_EQ(all.word(3), 0ull);
  for (NodeId n : {0, 63, 64, 127, 128, 143}) {
    const DestMask m = MeshGeometry::node_mask(n);
    EXPECT_EQ(m.count(), 1);
    EXPECT_EQ(m.lowest(), n);
    EXPECT_TRUE(all.test(n));
    const auto nodes = g.nodes_in(m);
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0], n);
  }
  // k=16 fills the capacity exactly.
  MeshGeometry g16(16);
  EXPECT_EQ(g16.all_nodes_mask().count(), DestMask::kCapacity);
  EXPECT_EQ(g16.all_nodes_mask(), ~DestMask{});
}

TEST(DestMaskOps, HexRoundTripAcrossWords) {
  char buf[DestMask::kMaxHexChars + 1];
  // Single-word masks render like plain %x output (trace-format back
  // compat), wider masks as one big hex number.
  DestMask m{0x1f};
  EXPECT_EQ(m.to_hex(buf), 2);
  EXPECT_STREQ(buf, "1f");
  m = DestMask::bit(64) | DestMask::bit(0);
  m.to_hex(buf);
  EXPECT_STREQ(buf, "10000000000000001");
  DestMask back;
  ASSERT_TRUE(DestMask::from_hex(buf, back));
  EXPECT_EQ(back, m);
  DestMask::bit(255).to_hex(buf);
  ASSERT_TRUE(DestMask::from_hex(buf, back));
  EXPECT_EQ(back, DestMask::bit(255));
  EXPECT_EQ(DestMask{}.to_hex(buf), 1);
  EXPECT_STREQ(buf, "0");
  EXPECT_FALSE(DestMask::from_hex("", back));
  EXPECT_FALSE(DestMask::from_hex("xyz", back));
  EXPECT_FALSE(DestMask::from_hex(
      "10000000000000000000000000000000000000000000000000000000000000000",
      back));  // 65 digits: wider than capacity
}

TEST(DestMaskOps, IterationAndSetAlgebra) {
  DestMask m;
  for (int n : {3, 63, 64, 190, 255}) m.set(n);
  EXPECT_EQ(m.count(), 5);
  std::vector<int> seen;
  m.for_each([&](int n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<int>{3, 63, 64, 190, 255}));
  EXPECT_EQ(m.lowest(), 3);
  m.clear_lowest();
  EXPECT_EQ(m.lowest(), 63);
  m.clear(64);
  EXPECT_FALSE(m.test(64));
  const DestMask a = DestMask::bit(63) | DestMask::bit(200);
  EXPECT_EQ((m & a), DestMask::bit(63));
  EXPECT_EQ(m.andnot(a), DestMask::bit(190) | DestMask::bit(255));
  EXPECT_EQ(DestMask::first_n(130).count(), 130);
  EXPECT_TRUE(DestMask::first_n(130).test(129));
  EXPECT_FALSE(DestMask::first_n(130).test(130));
}

class GeometryKTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometryKTest, FurthestIsMaxOverNodes) {
  MeshGeometry g(GetParam());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    int want = 0;
    for (NodeId d = 0; d < g.num_nodes(); ++d)
      want = std::max(want, g.manhattan(s, d));
    EXPECT_EQ(g.furthest_distance(s), want);
  }
}

TEST_P(GeometryKTest, ExactAveragesWithinBounds) {
  MeshGeometry g(GetParam());
  const double uni = g.exact_avg_unicast_hops();
  const double bc = g.exact_avg_broadcast_hops();
  EXPECT_GT(uni, 0.0);
  EXPECT_LE(uni, 2.0 * (GetParam() - 1));
  EXPECT_GE(bc, uni);  // furthest >= average
  EXPECT_LE(bc, 2.0 * (GetParam() - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometryKTest,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16));

TEST(RectGeometry, FourByEightLayout) {
  // Rectangular groundwork: 4 columns x 8 rows, row-major ids with the
  // x-stride = kx (NOT the row count).
  MeshGeometry g(4, 8);
  EXPECT_EQ(g.kx(), 4);
  EXPECT_EQ(g.ky(), 8);
  EXPECT_EQ(g.num_nodes(), 32);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 4; ++x) {
      const NodeId n = g.id(x, y);
      EXPECT_EQ(n, y * 4 + x);
      EXPECT_EQ(g.coord(n), (Coord{x, y}));
    }
  EXPECT_TRUE(g.valid(Coord{3, 7}));
  EXPECT_FALSE(g.valid(Coord{4, 0}));  // x bound is kx, not ky
  EXPECT_FALSE(g.valid(Coord{0, 8}));
  EXPECT_TRUE(MeshGeometry(8, 4).valid(Coord{7, 3}));
}

TEST(RectGeometry, DistancesAndMasks) {
  MeshGeometry g(4, 8);
  EXPECT_EQ(g.manhattan(g.id(0, 0), g.id(3, 7)), 10);
  // Corner-to-corner dominates from every node; center minimizes it.
  EXPECT_EQ(g.furthest_distance(g.id(0, 0)), 10);
  EXPECT_EQ(g.furthest_distance(g.id(3, 7)), 10);
  EXPECT_EQ(g.furthest_distance(g.id(2, 4)), 2 + 4);
  EXPECT_EQ(g.all_nodes_mask().count(), 32);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    int want = 0;
    for (NodeId d = 0; d < g.num_nodes(); ++d)
      want = std::max(want, g.manhattan(s, d));
    EXPECT_EQ(g.furthest_distance(s), want);
  }
  const double uni = g.exact_avg_unicast_hops();
  EXPECT_GT(uni, 0.0);
  EXPECT_LT(uni, 10.0);
  EXPECT_GE(g.exact_avg_broadcast_hops(), uni);
}

TEST(RectGeometry, CapacityBoundedShapes) {
  // Any shape fits as long as the node count does: a 2x128 strip is the
  // DestMask capacity exactly; 16x16 remains the square maximum.
  EXPECT_EQ(MeshGeometry(2, 128).num_nodes(), DestMask::kCapacity);
  EXPECT_EQ(MeshGeometry(128, 2).num_nodes(), DestMask::kCapacity);
  EXPECT_EQ(MeshGeometry(16, 16).num_nodes(), 256);
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include "noc/geometry.hpp"

namespace noc {
namespace {

TEST(Geometry, IdCoordRoundTrip) {
  MeshGeometry g(4);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_EQ(g.id(g.coord(n)), n);
}

TEST(Geometry, RowMajorLayout) {
  MeshGeometry g(4);
  EXPECT_EQ(g.id(0, 0), 0);
  EXPECT_EQ(g.id(3, 0), 3);
  EXPECT_EQ(g.id(0, 1), 4);
  EXPECT_EQ(g.id(3, 3), 15);
}

TEST(Geometry, Manhattan) {
  MeshGeometry g(4);
  EXPECT_EQ(g.manhattan(g.id(0, 0), g.id(3, 3)), 6);
  EXPECT_EQ(g.manhattan(g.id(1, 2), g.id(1, 2)), 0);
  EXPECT_EQ(g.manhattan(g.id(2, 1), g.id(0, 1)), 2);
}

TEST(Geometry, FurthestDistanceCorners) {
  MeshGeometry g(4);
  EXPECT_EQ(g.furthest_distance(g.id(0, 0)), 6);  // opposite corner
  EXPECT_EQ(g.furthest_distance(g.id(1, 1)), 4);  // center-ish
  EXPECT_EQ(g.furthest_distance(g.id(3, 0)), 6);
}

TEST(Geometry, AllNodesMask) {
  MeshGeometry g(4);
  EXPECT_EQ(g.all_nodes_mask(), 0xFFFFull);
  MeshGeometry g2(2);
  EXPECT_EQ(g2.all_nodes_mask(), 0xFull);
}

TEST(Geometry, NodesInMask) {
  MeshGeometry g(4);
  const DestMask m = MeshGeometry::node_mask(3) | MeshGeometry::node_mask(9);
  const auto nodes = g.nodes_in(m);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 3);
  EXPECT_EQ(nodes[1], 9);
}

class GeometryKTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometryKTest, FurthestIsMaxOverNodes) {
  MeshGeometry g(GetParam());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    int want = 0;
    for (NodeId d = 0; d < g.num_nodes(); ++d)
      want = std::max(want, g.manhattan(s, d));
    EXPECT_EQ(g.furthest_distance(s), want);
  }
}

TEST_P(GeometryKTest, ExactAveragesWithinBounds) {
  MeshGeometry g(GetParam());
  const double uni = g.exact_avg_unicast_hops();
  const double bc = g.exact_avg_broadcast_hops();
  EXPECT_GT(uni, 0.0);
  EXPECT_LE(uni, 2.0 * (GetParam() - 1));
  EXPECT_GE(bc, uni);  // furthest >= average
  EXPECT_LE(bc, 2.0 * (GetParam() - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometryKTest, ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace noc

// The routing-policy subsystem (noc/route_policy.hpp, docs/ROUTING.md):
// class assignment, adaptive port selection, end-to-end delivery under
// every policy, deadlock-freedom soaks at saturation for the
// lane-partitioned policies, word-boundary unicasts above DestMask bit 63,
// and serial/parallel bit-identity per policy.
#include <gtest/gtest.h>

#include "noc/experiment.hpp"
#include "noc/network.hpp"
#include "noc/route_policy.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

constexpr RoutePolicy kAllPolicies[] = {
    RoutePolicy::XY, RoutePolicy::YX, RoutePolicy::O1Turn,
    RoutePolicy::MinimalAdaptive};

Packet unicast(NodeId src, NodeId dest, PacketId id) {
  Packet p;
  p.id = id;
  p.src = src;
  p.dest_mask = MeshGeometry::node_mask(dest);
  return p;
}

TEST(RoutePolicy, NamesRoundTrip) {
  for (RoutePolicy p : kAllPolicies)
    EXPECT_EQ(parse_route_policy(route_policy_name(p)), p);
  EXPECT_EQ(parse_route_policy("minimal-adaptive"),
            RoutePolicy::MinimalAdaptive);
  EXPECT_FALSE(parse_route_policy("zigzag").has_value());
}

TEST(RoutePolicy, ClassAssignment) {
  Packet multi;
  multi.id = 9;
  multi.src = 0;
  multi.dest_mask = DestMask::first_n(16);
  // Multicasts are pinned to the ordered tree under every policy.
  EXPECT_EQ(route_class_for_packet(RoutePolicy::XY, multi), RouteClass::XY);
  EXPECT_EQ(route_class_for_packet(RoutePolicy::YX, multi), RouteClass::YX);
  EXPECT_EQ(route_class_for_packet(RoutePolicy::O1Turn, multi),
            RouteClass::XY);
  EXPECT_EQ(route_class_for_packet(RoutePolicy::MinimalAdaptive, multi),
            RouteClass::Escape);

  const Packet uni = unicast(0, 5, 42);
  EXPECT_EQ(route_class_for_packet(RoutePolicy::XY, uni), RouteClass::XY);
  EXPECT_EQ(route_class_for_packet(RoutePolicy::YX, uni), RouteClass::YX);
  EXPECT_EQ(route_class_for_packet(RoutePolicy::MinimalAdaptive, uni),
            RouteClass::Adaptive);
}

TEST(RoutePolicy, O1TurnCoinIsDeterministicAndBalanced) {
  int yx = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const Packet p = unicast(0, 5, static_cast<PacketId>(i) + 1);
    const RouteClass a = route_class_for_packet(RoutePolicy::O1Turn, p);
    const RouteClass b = route_class_for_packet(RoutePolicy::O1Turn, p);
    EXPECT_EQ(a, b);  // pure function of the packet id
    EXPECT_TRUE(a == RouteClass::XY || a == RouteClass::YX);
    if (a == RouteClass::YX) ++yx;
  }
  // A fair deterministic coin: both orders well represented.
  EXPECT_GT(yx, n / 4);
  EXPECT_LT(yx, 3 * n / 4);
}

TEST(RoutePolicy, ProductivePortsAreMinimalAndXFirst) {
  MeshGeometry g(12);  // seams at ids 63/64 and 127/128
  for (NodeId here : {0, 63, 64, 127, 128, 143}) {
    for (NodeId dest : {0, 63, 64, 127, 128, 143}) {
      const auto ports = productive_ports(g, here, dest);
      const Coord c = g.coord(here), d = g.coord(dest);
      const int expect =
          static_cast<int>(c.x != d.x) + static_cast<int>(c.y != d.y);
      ASSERT_EQ(ports.size(), expect) << here << "->" << dest;
      for (const PortDir p : ports) {
        // Every productive hop shrinks the Manhattan distance by one.
        const Coord nc = neighbor_coord(c, p);
        ASSERT_TRUE(g.valid(nc));
        EXPECT_EQ(g.manhattan(g.id(nc), dest), g.manhattan(here, dest) - 1);
      }
      // The escape hop is the XY-productive one (X before Y).
      const PortDir esc = escape_port(g, here, dest);
      if (here == dest) {
        EXPECT_EQ(esc, PortDir::Local);
      } else {
        EXPECT_EQ(esc, ports[0]);
        EXPECT_EQ(esc, xy_route(g, here, dest));
      }
    }
  }
}

TEST(RoutePolicy, LanePartitionCoversEveryMessageClass) {
  const VcConfig cfg;  // paper config: 4x1 REQ + 2x3 RESP
  EXPECT_TRUE(cfg.lanes_available());
  for (int m = 0; m < kNumMsgClasses; ++m) {
    const auto mc = static_cast<MsgClass>(m);
    EXPECT_EQ(cfg.lane_vcs(mc, VcLane::Ordered) + cfg.lane_vcs(mc, VcLane::Free),
              cfg.vcs_per_mc[m]);
    EXPECT_GE(cfg.lane_vcs(mc, VcLane::Ordered), cfg.lane_vcs(mc, VcLane::Free));
  }
  // Lane-restricted allocation never hands out the other lane's VCs.
  DownstreamState ds;
  ds.configure(cfg);
  for (int i = 0; i < cfg.lane_vcs(MsgClass::Request, VcLane::Ordered); ++i) {
    const int vc = ds.allocate_vc(MsgClass::Request, VcLane::Ordered);
    ASSERT_GE(vc, 0);
    EXPECT_EQ(cfg.lane_of_vc(vc), VcLane::Ordered);
  }
  EXPECT_EQ(ds.allocate_vc(MsgClass::Request, VcLane::Ordered), -1);
  EXPECT_TRUE(ds.has_free_vc(MsgClass::Request, VcLane::Free));
  EXPECT_TRUE(ds.has_free_vc(MsgClass::Request, VcLane::Any));
}

void drain_and_check_conservation(Network& net, Simulation& sim,
                                  Cycle bound) {
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, bound))
      << "network failed to drain -- possible deadlock";
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(RoutePolicy, EveryPolicyDeliversMixedTraffic) {
  for (RoutePolicy policy : kAllPolicies) {
    SCOPED_TRACE(route_policy_name(policy));
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.router.routing = policy;
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.offered_flits_per_node_cycle = 0.10;
    Network net(cfg);
    Simulation sim(net);
    sim.run(4000);
    drain_and_check_conservation(net, sim, 30000);
  }
}

// Deadlock-freedom soak: drive the lane-partitioned policies well past
// saturation and require global forward progress in every sub-window (no
// packet can starve beyond the window bound if completions keep flowing
// and the network then drains to empty).
void saturation_soak(NetworkConfig cfg, double offered) {
  cfg.traffic.offered_flits_per_node_cycle = offered;
  Network net(cfg);
  Simulation sim(net);
  sim.run(1000);  // fill the network past saturation
  int64_t last = net.metrics().total_completed();
  for (int window = 0; window < 10; ++window) {
    sim.run(500);
    const int64_t now = net.metrics().total_completed();
    ASSERT_GT(now, last) << "no packet completed in a 500-cycle window "
                         << window << " -- stalled network";
    last = now;
  }
  drain_and_check_conservation(net, sim, 50000);
}

TEST(RoutePolicy, O1TurnSoakUniformSaturated) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::O1Turn;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  saturation_soak(cfg, 0.80);
}

TEST(RoutePolicy, AdaptiveSoakUniformSaturated) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  saturation_soak(cfg, 0.80);
}

TEST(RoutePolicy, AdaptiveSoakTransposeSaturated) {
  // Transpose concentrates load on the diagonal: the pattern where
  // adaptive actually exercises both productive ports under pressure.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::Transpose;
  saturation_soak(cfg, 0.60);
}

TEST(RoutePolicy, O1TurnSoakMixedWithMulticasts) {
  // Multicasts pinned to the XY lane share it with half the unicasts:
  // the multi-flit-response + broadcast mix under lane pressure.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::O1Turn;
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  saturation_soak(cfg, 0.40);
}

// Fault-schedule soak (docs/FAULTS.md): drive adaptive past saturation and
// kill links mid-soak -- including a spine cut that orphans escape-tree
// nodes and forces drops -- then revive them. Progress must continue in
// every window and the drain must conserve packets through the drop path.
void faulted_saturation_soak(NetworkConfig cfg, double offered) {
  cfg.traffic.offered_flits_per_node_cycle = offered;
  cfg.fault.kill_link(1500, 5, 6)
      .kill_link(2500, 1, 2)   // spine cut: row-0 tail off-tree -> drops
      .degrade_router(2500, 10)
      .revive_link(4000, 5, 6)
      .revive_link(4000, 1, 2)
      .restore_router(4000, 10);
  Network net(cfg);
  Simulation sim(net);
  sim.run(1000);  // fill the network past saturation
  int64_t last = net.metrics().total_completed();
  for (int window = 0; window < 10; ++window) {
    sim.run(500);
    const int64_t now = net.metrics().total_completed();
    ASSERT_GT(now, last) << "no packet completed in a 500-cycle window "
                         << window << " -- stalled faulted network";
    last = now;
  }
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 50000))
      << "faulted network failed to drain -- possible deadlock";
  EXPECT_EQ(net.metrics().total_generated(),
            net.metrics().total_completed() + net.metrics().total_dropped());
}

TEST(RoutePolicy, AdaptiveFaultSoakUniformSaturated) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  faulted_saturation_soak(cfg, 0.80);
}

TEST(RoutePolicy, AdaptiveFaultSoakTransposeSaturated) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::Transpose;
  faulted_saturation_soak(cfg, 0.60);
}

TEST(RoutePolicy, AdaptiveSoakClosedLoopSaturating) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 8;
  cfg.workload.closed.issue_prob = 1.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(1000);
  int64_t last = net.metrics().total_completed();
  for (int window = 0; window < 6; ++window) {
    sim.run(500);
    const int64_t now = net.metrics().total_completed();
    ASSERT_GT(now, last) << "closed loop stalled";
    last = now;
  }
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 50000));
}

// Word-boundary unicasts: destinations whose mask bits straddle the 64-bit
// seams of DestMask, injected under every policy. k=10 puts the seam at
// 63/64 inside a 100-node mesh; k=12 adds the 127/128 seam.
void seam_unicasts(RoutePolicy policy, int k,
                   std::initializer_list<std::pair<NodeId, NodeId>> pairs) {
  SCOPED_TRACE(std::string(route_policy_name(policy)) + " k=" +
               std::to_string(k));
  NetworkConfig cfg = NetworkConfig::proposed(k);
  cfg.router.routing = policy;
  cfg.traffic.offered_flits_per_node_cycle = 0.0;  // externally driven
  Network net(cfg);
  Simulation sim(net);
  PacketId id = 1;
  for (const auto& [src, dest] : pairs) {
    Packet p = unicast(src, dest, id++);
    p.mc = id % 2 == 0 ? MsgClass::Request : MsgClass::Response;
    p.length = default_packet_length(p.mc);
    net.nic(src).submit_packet(std::move(p));
  }
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 20000));
  EXPECT_EQ(net.metrics().total_completed(),
            static_cast<int64_t>(pairs.size()));
}

TEST(RoutePolicy, WordBoundaryUnicastsAllPolicies) {
  for (RoutePolicy policy : kAllPolicies) {
    // k=10: nodes 63 and 64 are adjacent ids in different words.
    seam_unicasts(policy, 10,
                  {{0, 63}, {0, 64}, {63, 64}, {64, 63}, {99, 63}, {5, 99}});
    // k=12: both seams (63/64 and 127/128) populated.
    seam_unicasts(policy, 12,
                  {{0, 127}, {0, 128}, {127, 128}, {128, 127}, {143, 64}});
  }
}

void expect_point_identical(const PointResult& a, const PointResult& b) {
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.recv_flits_per_cycle, b.recv_flits_per_cycle);
  EXPECT_EQ(a.completed_packets, b.completed_packets);
  EXPECT_EQ(a.energy.xbar_traversals, b.energy.xbar_traversals);
  EXPECT_EQ(a.energy.vc_allocations, b.energy.vc_allocations);
  EXPECT_EQ(a.energy.bypasses, b.energy.bypasses);
  EXPECT_EQ(a.energy.sa2_arbitrations, b.energy.sa2_arbitrations);
}

TEST(RoutePolicy, ParallelSweepBitIdenticalPerPolicy) {
  // The PR-1 invariant, per policy: adaptive credit inspection and the
  // O1TURN coin are functions of per-point state only, so a pooled sweep
  // must reproduce the serial result bit-for-bit.
  const MeasureOptions measure{.warmup = 300, .window = 900};
  const std::vector<double> loads = {0.06, 0.14};
  for (RoutePolicy policy : kAllPolicies) {
    SCOPED_TRACE(route_policy_name(policy));
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.router.routing = policy;
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 11;
    const auto serial = sweep_curve(cfg, loads, measure);
    const ExperimentRunner runner{
        ExperimentOptions{.measure = measure, .threads = 3}};
    const auto parallel = runner.sweep(cfg, loads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
      expect_point_identical(parallel[i], serial[i]);
  }
}

TEST(RoutePolicy, ClosedLoopLegBreakdownDecomposesMissLatency) {
  // The per-kind latency satellite: probe and response legs are reported
  // and bound the full transaction latency from below.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 4;
  const PointResult r =
      measure_workload(cfg, {.warmup = 1000, .window = 4000});
  ASSERT_GT(r.transactions, 0);
  ASSERT_GT(r.probe_legs, 0);
  ASSERT_GT(r.response_legs, 0);
  EXPECT_GT(r.avg_probe_latency, 0.0);
  EXPECT_GT(r.avg_response_latency, 0.0);
  // Every retired miss saw one probe delivery at its owner and one data
  // return; in a steady window the leg counts track transactions closely.
  EXPECT_NEAR(static_cast<double>(r.probe_legs),
              static_cast<double>(r.transactions),
              0.2 * static_cast<double>(r.transactions) + 8.0);
  EXPECT_EQ(r.response_legs, r.transactions);
  // The legs compose the transaction: probe leg + directory latency +
  // response leg can exceed the average transaction only through window
  // edge effects, and the transaction is never shorter than either leg.
  EXPECT_GT(r.avg_transaction_latency, r.avg_probe_latency);
  EXPECT_GT(r.avg_transaction_latency, r.avg_response_latency);
}

}  // namespace
}  // namespace noc

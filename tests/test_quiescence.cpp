// Drain correctness: Network::quiescent() must stay false while ANY message
// is still on a wire -- including credits and lookaheads, which the old
// implementation ignored (it scanned flit channels only). A drain phase that
// ends with a credit in flight hands the next measurement window a network
// whose flow-control state is still settling.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

NetworkConfig silent_config(bool gating) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.activity_gating = gating;
  cfg.traffic.offered_flits_per_node_cycle = 0.0;  // packets injected by hand
  return cfg;
}

Packet single_flit_packet(NodeId src, NodeId dest, Cycle now) {
  uint64_t local_id = 0;
  Packet pkt;
  pkt.id = make_packet_id(src, local_id);
  pkt.src = src;
  pkt.dest_mask = MeshGeometry::node_mask(dest);
  pkt.mc = MsgClass::Request;
  pkt.length = 1;
  pkt.gen_cycle = now;
  return pkt;
}

class QuiescenceTest : public ::testing::TestWithParam<bool> {};

TEST_P(QuiescenceTest, CreditInFlightBlocksQuiescence) {
  Network net(silent_config(GetParam()));
  Simulation sim(net);
  ASSERT_TRUE(net.quiescent());

  net.nic(0).submit_packet(single_flit_packet(0, 1, sim.now()));
  EXPECT_FALSE(net.quiescent());

  // Step to the cycle the packet completes: the ejecting NIC has just put
  // its buffer credit on the wire (and upstream VC-release credits may
  // still be propagating), so the network must NOT report quiescent even
  // though every packet is delivered.
  ASSERT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() == 1; }, 100));
  EXPECT_EQ(net.metrics().open_packets(), 0);
  EXPECT_GT(net.channel_items(), 0);  // the parked credit
  EXPECT_FALSE(net.quiescent());

  // Once the credits land and recycle, quiescence must follow -- and only
  // with an empty channel counter.
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 100));
  EXPECT_EQ(net.channel_items(), 0);
}

TEST_P(QuiescenceTest, DrainOutlastsTheLastDelivery) {
  // Count how many cycles quiescence trails the last delivery: it must be
  // at least the credit-return latency (> 0), i.e. the old flit-only scan
  // would have ended the drain early.
  Network net(silent_config(GetParam()));
  Simulation sim(net);
  net.nic(5).submit_packet(single_flit_packet(5, 6, sim.now()));
  ASSERT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() == 1; }, 100));
  const Cycle delivered_at = sim.now();
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 100));
  EXPECT_GT(sim.now(), delivered_at);
}

INSTANTIATE_TEST_SUITE_P(GatedAndFull, QuiescenceTest,
                         ::testing::Values(true, false));

}  // namespace
}  // namespace noc

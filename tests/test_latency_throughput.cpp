// System-level latency/throughput properties corresponding to the paper's
// headline claims (Figs 5 and 13), at test-sized simulation lengths.
#include <gtest/gtest.h>

#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

namespace noc {
namespace {

MeasureOptions fast{.warmup = 1500, .window = 6000};

TEST(ZeroLoad, ProposedTracksExactTheory) {
  // Unicast: exact average hops 2.5 + 2 NIC links; allow light contention.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  const double zl = zero_load_latency(cfg, fast);
  EXPECT_GT(zl, theory::unicast_avg_hops_exact(4) + 2.0 - 0.05);
  EXPECT_LT(zl, theory::unicast_avg_hops_exact(4) + 2.0 + 1.0);
}

TEST(ZeroLoad, ProposedBroadcastTracksExactTheory) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  const double zl = zero_load_latency(cfg, fast);
  EXPECT_GT(zl, theory::broadcast_avg_hops_exact(4) + 2.0 - 0.05);
  EXPECT_LT(zl, theory::broadcast_avg_hops_exact(4) + 2.0 + 1.0);
}

TEST(ZeroLoad, PipelineOrdering) {
  // 1-cycle bypassed < 3-stage < 4-stage, under identical traffic.
  for (auto pat :
       {TrafficPattern::UniformRequest, TrafficPattern::MixedPaper}) {
    NetworkConfig p = NetworkConfig::proposed(4);
    NetworkConfig b3 = NetworkConfig::baseline_3stage(4);
    NetworkConfig b4 = NetworkConfig::baseline_4stage(4);
    p.traffic.pattern = b3.traffic.pattern = b4.traffic.pattern = pat;
    const double zp = zero_load_latency(p, fast);
    const double z3 = zero_load_latency(b3, fast);
    const double z4 = zero_load_latency(b4, fast);
    EXPECT_LT(zp, z3);
    EXPECT_LT(z3, z4);
  }
}

TEST(ZeroLoad, IdenticalPrbsArtifactInflatesLatency) {
  // The chip artifact of Sec 4.1: synchronized generators contend even at
  // low load; removing them (paper: RTL sims with distinct generators)
  // recovers near-limit latency.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  const double independent = zero_load_latency(cfg, fast);
  cfg.traffic.identical_prbs = true;
  const double identical = zero_load_latency(cfg, fast);
  EXPECT_GT(identical, independent + 3.0);
}

TEST(ZeroLoad, BaselineBroadcastPaysSerialization) {
  // NIC duplication serializes k^2-1 copies: baseline broadcast zero-load
  // latency must exceed the 15-cycle injection serialization alone.
  NetworkConfig b = NetworkConfig::baseline_3stage(4);
  b.traffic.pattern = TrafficPattern::BroadcastOnly;
  EXPECT_GT(zero_load_latency(b, fast), 15.0);
}

TEST(Latency, MonotoneInOfferedLoad) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  auto curve = sweep_curve(cfg, {0.02, 0.08, 0.14, 0.18}, fast);
  for (size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].avg_latency, curve[i - 1].avg_latency * 0.98)
        << "latency should not decrease with load";
}

TEST(Throughput, ReceivedTracksOfferedBelowSaturation) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  for (double offered : {0.01, 0.02, 0.03}) {
    auto pt = measure_point(cfg, offered, fast);
    const double expect_fpc = offered * 16 * 16;  // 16 deliveries/bcast flit
    EXPECT_NEAR(pt.recv_flits_per_cycle, expect_fpc, 0.08 * expect_fpc);
  }
}

TEST(Throughput, NeverExceedsEjectionLimit) {
  // 16 NICs x 1 flit/cycle = 16 flits/cycle = 1024 Gb/s, Table 1.
  for (auto pat :
       {TrafficPattern::BroadcastOnly, TrafficPattern::MixedPaper}) {
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.traffic.pattern = pat;
    const double limit = 1.0 / deliveries_per_offered_flit(cfg);
    auto pt = measure_point(cfg, 1.05 * limit, fast);  // overdrive
    EXPECT_LE(pt.recv_flits_per_cycle, 16.0 + 1e-9);
    EXPECT_LE(pt.recv_gbps, theory::aggregate_throughput_limit_gbps(4) + 1e-6);
  }
}

TEST(Throughput, ProposedBeatsBaselineSaturation) {
  // Fig 5 / Fig 13 headline: higher saturation throughput for the proposed
  // design under both mixed and broadcast traffic.
  for (auto pat :
       {TrafficPattern::MixedPaper, TrafficPattern::BroadcastOnly}) {
    NetworkConfig p = NetworkConfig::proposed(4);
    NetworkConfig b = NetworkConfig::baseline_3stage(4);
    p.traffic.pattern = b.traffic.pattern = pat;
    const auto sp = find_saturation(p, fast);
    const auto sb = find_saturation(b, fast);
    EXPECT_GT(sp.saturation_gbps, 1.3 * sb.saturation_gbps)
        << traffic_pattern_name(pat);
  }
}

TEST(Throughput, BypassRateFallsWithLoad) {
  // Sec 3.2: lookahead conflicts at high load force buffering.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  auto low = measure_point(cfg, 0.02, fast);
  auto high = measure_point(cfg, 0.17, fast);
  EXPECT_GT(low.bypass_rate, 0.85);
  EXPECT_LT(high.bypass_rate, low.bypass_rate);
}

TEST(Throughput, SmallerRequestClassSustainsTurnaround) {
  // The paper chose 4 REQ VCs >= the 3-cycle turnaround; shrinking the REQ
  // class to 2 VCs must cost broadcast saturation throughput.
  NetworkConfig full = NetworkConfig::proposed(4);
  NetworkConfig small = NetworkConfig::proposed(4);
  small.router.vc.vcs_per_mc[0] = 2;
  full.traffic.pattern = small.traffic.pattern = TrafficPattern::BroadcastOnly;
  const auto sf = find_saturation(full, fast);
  const auto ss = find_saturation(small, fast);
  EXPECT_GT(sf.saturation_gbps, ss.saturation_gbps);
}

}  // namespace
}  // namespace noc

// Campaign subsystem (src/campaign/): content hashing, manifest file
// round-trips, crash-resume via the result store, and the
// capture-once/replay-many guarantee -- replayed records must be
// bit-identical to standalone runs of the same trace, and the record bytes
// must not depend on thread count or on where a run was killed.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "campaign/grids.hpp"
#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "campaign/runner.hpp"
#include "noc/experiment.hpp"
#include "noc/workload.hpp"

using namespace noc;
using namespace noc::campaign;

namespace {

std::string fresh_root(const std::string& name, const Manifest& m) {
  const std::string root = ::testing::TempDir() + "campaign_" + name;
  // Tests may rerun in a dirty TempDir: wipe any records from a previous
  // invocation so "executed" counts are deterministic.
  ResultStore store(root);
  (void)store.remove_campaign(m);
  return root;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Record files for every resolved point of `m`, concatenated in manifest
// order -- one string to diff across runs.
std::string all_record_bytes(const Manifest& m, const ResultStore& store) {
  std::string err;
  const auto points = resolve_manifest(m, &err);
  EXPECT_FALSE(points.empty()) << err;
  std::string all;
  for (const auto& p : points) {
    const std::string bytes =
        slurp(store.record_path(p.point->id, p.hash));
    EXPECT_FALSE(bytes.empty()) << "missing record for " << p.point->id;
    all += bytes;
  }
  return all;
}

// A tiny capture-once/replay-many ablation: one open-loop capture replayed
// across three router pipelines. Open-loop capture keeps the test fast and
// replay-exact at these window sizes.
Manifest tiny_ablation_manifest() {
  Manifest m;
  m.name = "test-ablation";
  m.default_warmup = 200;
  m.default_window = 600;
  CampaignPoint cap;
  cap.id = "capture/uniform";
  cap.kind = PointKind::Capture;
  cap.k = 4;
  cap.pattern = TrafficPattern::MixedPaper;
  cap.offered = 0.08;
  cap.seed = 11;
  m.points.push_back(cap);
  const PipelinePreset presets[] = {PipelinePreset::Proposed,
                                    PipelinePreset::Baseline3,
                                    PipelinePreset::Baseline4};
  for (PipelinePreset p : presets) {
    CampaignPoint rep;
    rep.id = std::string("replay/") + pipeline_preset_name(p);
    rep.kind = PointKind::Replay;
    rep.pipeline = p;
    rep.k = 4;
    rep.trace_from = cap.id;
    m.points.push_back(rep);
  }
  return m;
}

}  // namespace

TEST(CampaignManifest, SameManifestResolvesToIdenticalHashes) {
  const Manifest a = smoke_manifest();
  const Manifest b = smoke_manifest();
  std::string err;
  const auto pa = resolve_manifest(a, &err);
  ASSERT_FALSE(pa.empty()) << err;
  const auto pb = resolve_manifest(b, &err);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].key, pb[i].key) << pa[i].point->id;
    EXPECT_EQ(pa[i].hash, pb[i].hash) << pa[i].point->id;
    EXPECT_EQ(pa[i].hash.size(), 16u);
  }
}

TEST(CampaignManifest, FileRoundTripPreservesHashes) {
  const Manifest m = smoke_manifest();
  const std::string path = ::testing::TempDir() + "campaign_roundtrip.campaign";
  ASSERT_TRUE(save_manifest(path, m));
  std::string err;
  const auto loaded = load_manifest(path, &err);
  ASSERT_NE(loaded, nullptr) << err;
  EXPECT_EQ(loaded->name, m.name);
  const auto pa = resolve_manifest(m, &err);
  const auto pb = resolve_manifest(*loaded, &err);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].point->id, pb[i].point->id);
    EXPECT_EQ(pa[i].hash, pb[i].hash) << pa[i].point->id;
  }
  std::remove(path.c_str());
}

TEST(CampaignManifest, HashTracksConfigAndDependencyChanges) {
  Manifest m = smoke_manifest();
  std::string err;
  const auto base = resolve_manifest(m, &err);
  ASSERT_FALSE(base.empty()) << err;

  // A knob change on one point moves exactly that point's hash.
  Manifest knob = smoke_manifest();
  knob.points[0].offered += 0.01;
  const auto moved = resolve_manifest(knob, &err);
  ASSERT_EQ(moved.size(), base.size());
  EXPECT_NE(moved[0].hash, base[0].hash);
  for (size_t i = 1; i < base.size(); ++i)
    EXPECT_EQ(moved[i].hash, base[i].hash) << base[i].point->id;

  // A capture change cascades into every dependent replay's hash.
  Manifest recap = smoke_manifest();
  for (auto& p : recap.points)
    if (p.kind == PointKind::Capture) p.seed += 1;
  const auto cascaded = resolve_manifest(recap, &err);
  ASSERT_EQ(cascaded.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    const PointKind kind = base[i].point->kind;
    if (kind == PointKind::Capture || kind == PointKind::Replay)
      EXPECT_NE(cascaded[i].hash, base[i].hash) << base[i].point->id;
    else
      EXPECT_EQ(cascaded[i].hash, base[i].hash) << base[i].point->id;
  }
}

TEST(CampaignRunner, RecordsBitIdenticalSerialVsParallel) {
  const Manifest m = smoke_manifest();
  ResultStore serial(fresh_root("serial", m));
  ResultStore parallel(fresh_root("parallel", m));

  RunOptions opt;
  opt.threads = 1;
  const RunSummary rs = run_campaign(m, serial, opt);
  ASSERT_TRUE(rs.complete()) << (rs.errors.empty() ? "" : rs.errors[0]);
  EXPECT_EQ(rs.executed, static_cast<int>(m.points.size()));

  opt.threads = 4;
  const RunSummary rp = run_campaign(m, parallel, opt);
  ASSERT_TRUE(rp.complete()) << (rp.errors.empty() ? "" : rp.errors[0]);

  EXPECT_EQ(all_record_bytes(m, serial), all_record_bytes(m, parallel));
}

TEST(CampaignRunner, KillAndResumeSkipsCompletedPoints) {
  const Manifest m = smoke_manifest();
  ResultStore oneshot(fresh_root("oneshot", m));
  ResultStore resumed(fresh_root("resumed", m));

  RunOptions opt;
  opt.threads = 2;
  ASSERT_TRUE(run_campaign(m, oneshot, opt).complete());

  // "Kill" after two points: max_points is the deterministic stand-in for
  // a campaign killed mid-run (runner.hpp).
  RunOptions cut = opt;
  cut.max_points = 2;
  const RunSummary first = run_campaign(m, resumed, cut);
  ASSERT_TRUE(first.ok()) << (first.errors.empty() ? "" : first.errors[0]);
  EXPECT_EQ(first.executed, 2);
  EXPECT_EQ(first.skipped, 0);
  EXPECT_GT(first.deferred, 0);

  // Resume: completed hashes are skipped, the rest run to completion.
  const RunSummary second = run_campaign(m, resumed, opt);
  ASSERT_TRUE(second.complete())
      << (second.errors.empty() ? "" : second.errors[0]);
  EXPECT_EQ(second.skipped, 2);
  EXPECT_EQ(second.executed,
            static_cast<int>(m.points.size()) - 2);

  // The kill point must not leak into any record byte.
  EXPECT_EQ(all_record_bytes(m, oneshot), all_record_bytes(m, resumed));

  // And a third run is a pure no-op.
  const RunSummary third = run_campaign(m, resumed, opt);
  EXPECT_TRUE(third.complete());
  EXPECT_EQ(third.executed, 0);
  EXPECT_EQ(third.skipped, static_cast<int>(m.points.size()));
}

TEST(CampaignRunner, CorruptRecordIsRerunNotTrusted) {
  const Manifest m = smoke_manifest();
  ResultStore store(fresh_root("corrupt", m));
  RunOptions opt;
  opt.threads = 2;
  ASSERT_TRUE(run_campaign(m, store, opt).complete());

  std::string err;
  const auto points = resolve_manifest(m, &err);
  ASSERT_FALSE(points.empty()) << err;
  const std::string victim =
      store.record_path(points[0].point->id, points[0].hash);
  const std::string good = slurp(victim);
  ASSERT_FALSE(good.empty());

  // Truncate the record mid-file: has_record must reject it and the next
  // run must re-execute exactly that point.
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << good.substr(0, good.size() / 2);
  }
  EXPECT_FALSE(store.has_record(points[0].point->id, points[0].hash));
  const RunSummary again = run_campaign(m, store, opt);
  ASSERT_TRUE(again.complete());
  EXPECT_EQ(again.executed, 1);
  EXPECT_EQ(again.skipped, static_cast<int>(m.points.size()) - 1);
  EXPECT_EQ(slurp(victim), good);
}

TEST(CampaignRunner, ReplayRecordsMatchStandaloneTraceRuns) {
  const Manifest m = tiny_ablation_manifest();
  ResultStore store(fresh_root("ablation", m));
  RunOptions opt;
  opt.threads = 2;
  const RunSummary rs = run_campaign(m, store, opt);
  ASSERT_TRUE(rs.complete()) << (rs.errors.empty() ? "" : rs.errors[0]);

  std::string err;
  const auto points = resolve_manifest(m, &err);
  ASSERT_EQ(points.size(), 4u) << err;

  // One trace on disk, stamped with the capture's geometry.
  const std::string trace_file = store.trace_path(points[0].hash);
  std::string load_err;
  const auto trace = load_trace(trace_file, &load_err);
  ASSERT_NE(trace, nullptr) << load_err;
  EXPECT_EQ(trace->kx, 4);
  ASSERT_GT(trace->records.size(), 50u);

  // Each replay record must equal, byte for byte, a standalone
  // measure_workload over the same loaded trace -- the campaign layer adds
  // bookkeeping, never perturbation.
  for (size_t i = 1; i < points.size(); ++i) {
    NetworkConfig cfg = points[i].cfg;
    cfg.workload.trace.trace = trace;
    const PointResult r = measure_workload(cfg, points[i].measure);
    const CampaignRecord expect =
        make_record(m, points[i], point_report(r));
    EXPECT_EQ(ResultStore::serialize_record(expect),
              slurp(store.record_path(points[i].point->id, points[i].hash)))
        << points[i].point->id;
  }
}

TEST(CampaignGather, ReportCoversEveryPointOrNamesTheMissing) {
  const Manifest m = smoke_manifest();
  ResultStore store(fresh_root("gather", m));
  const std::string report = store.root() + "/report.json";

  // Partial store: gather still writes, naming the missing points.
  RunOptions cut;
  cut.threads = 2;
  cut.max_points = 2;
  ASSERT_TRUE(run_campaign(m, store, cut).ok());
  const GatherResult partial = gather_campaign(m, store, report);
  EXPECT_TRUE(partial.wrote);
  EXPECT_EQ(partial.complete, 2);
  EXPECT_EQ(partial.missing.size(), m.points.size() - 2);

  // Complete store: every row present, none missing.
  ASSERT_TRUE(run_campaign(m, store, {.threads = 2}).complete());
  const GatherResult full = gather_campaign(m, store, report);
  EXPECT_TRUE(full.wrote);
  EXPECT_EQ(full.complete, static_cast<int>(m.points.size()));
  EXPECT_TRUE(full.missing.empty());
  const std::string bytes = slurp(report);
  EXPECT_NE(bytes.find("\"benchmarks\""), std::string::npos);
  for (const auto& p : m.points)
    EXPECT_NE(bytes.find(m.name + "/" + p.id), std::string::npos) << p.id;
}

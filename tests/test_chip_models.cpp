// Table 2 reproduction: the analytical chip models must regenerate the
// printed rows (with the two small documented deviations for TILE64).
#include <gtest/gtest.h>

#include "theory/chip_models.hpp"

namespace noc::theory {
namespace {

TEST(Table2, TeraflopsRow) {
  const ChipModel m = intel_teraflops();
  EXPECT_NEAR(m.delay_per_hop_min_ns(), 1.0, 1e-9);       // paper: 1ns
  EXPECT_NEAR(m.zero_load_unicast_cycles(), 30.0, 1e-9);  // paper: 30
  EXPECT_NEAR(m.zero_load_broadcast_cycles(), 120.5, 1e-9);  // paper: 120.5
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 1560.0, 1e-6);   // paper: 1560
  EXPECT_DOUBLE_EQ(m.channel_load_unicast_coeff(), 64.0);    // 64R
  EXPECT_DOUBLE_EQ(m.channel_load_broadcast_coeff(), 4096.0);  // 4096R
}

TEST(Table2, Tile64Row) {
  const ChipModel m = tilera_tile64();
  EXPECT_NEAR(m.delay_per_hop_min_ns(), 1.33, 0.01);      // paper: 1.3ns
  EXPECT_NEAR(m.zero_load_unicast_cycles(), 9.0, 1e-9);   // paper: 9
  // Paper prints 77.5; serialization + 1.5 cycles/hop gives 80.25 (3.5%
  // deviation, documented in DESIGN.md).
  EXPECT_NEAR(m.zero_load_broadcast_cycles(), 80.25, 1e-9);
  EXPECT_NEAR(m.zero_load_broadcast_cycles(), 77.5, 3.0);
  // Paper prints 937.5 Gb/s; 5 networks x 8 links x 32b x 750MHz = 960.
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 960.0, 1e-6);
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 937.5, 25.0);
  EXPECT_DOUBLE_EQ(m.channel_load_broadcast_coeff(), 4096.0);
}

TEST(Table2, SwiftRow) {
  const ChipModel m = swift_noc();
  EXPECT_NEAR(m.delay_per_hop_min_ns(), 8.9, 0.03);   // paper: 8.9ns
  EXPECT_NEAR(m.delay_per_hop_max_ns(), 17.8, 0.03);  // paper: 17.8ns
  EXPECT_NEAR(m.zero_load_unicast_cycles(), 12.0, 1e-9);     // paper: 12
  EXPECT_NEAR(m.zero_load_broadcast_cycles(), 86.0, 1e-9);   // paper: 86
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 115.2, 1e-6);    // paper: 112.5
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 112.5, 3.0);
}

TEST(Table2, ThisWorkAs8x8Row) {
  const ChipModel m = this_work(8);
  EXPECT_NEAR(m.zero_load_unicast_cycles(), 6.0, 1e-9);     // paper: 6
  EXPECT_NEAR(m.zero_load_broadcast_cycles(), 11.5, 1e-9);  // paper: 11.5
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 512.0, 1e-6);   // paper: 512
  EXPECT_DOUBLE_EQ(m.channel_load_unicast_coeff(), 64.0);   // 64R
  EXPECT_DOUBLE_EQ(m.channel_load_broadcast_coeff(), 64.0);  // 64R
}

TEST(Table2, ThisWork4x4Row) {
  const ChipModel m = this_work(4);
  EXPECT_NEAR(m.delay_per_hop_min_ns(), 1.0, 1e-9);   // paper: 1-3ns
  EXPECT_NEAR(m.delay_per_hop_max_ns(), 3.0, 1e-9);
  EXPECT_NEAR(m.zero_load_unicast_cycles(), 10.0 / 3.0, 1e-9);  // paper: 3.3
  EXPECT_NEAR(m.zero_load_broadcast_cycles(), 5.5, 1e-9);       // paper: 5.5
  EXPECT_NEAR(m.bisection_bandwidth_gbps(), 256.0, 1e-6);       // paper: 256
  EXPECT_DOUBLE_EQ(m.channel_load_unicast_coeff(), 16.0);       // 16R
  EXPECT_DOUBLE_EQ(m.channel_load_broadcast_coeff(), 16.0);     // 16R
}

TEST(Table2, MulticastSupportSlashesBroadcastLoad) {
  // The paper's core comparison: router-level multicast turns k^4 R into
  // k^2 R aggregate load -- a factor of k^2.
  const ChipModel with = this_work(8);
  ChipModel without = this_work(8);
  without.multicast_support = false;
  EXPECT_DOUBLE_EQ(
      without.channel_load_broadcast_coeff() / with.channel_load_broadcast_coeff(),
      64.0);
}

TEST(Table2, FiveColumnsInPrintOrder) {
  const auto chips = table2_chips();
  ASSERT_EQ(chips.size(), 5u);
  EXPECT_EQ(chips[0].name, "Intel Teraflops");
  EXPECT_EQ(chips[1].name, "Tilera TILE64");
  EXPECT_EQ(chips[2].name, "SWIFT");
  EXPECT_EQ(chips[3].name, "This work (as 8x8)");
  EXPECT_EQ(chips[4].name, "This work (4x4)");
}

}  // namespace
}  // namespace noc::theory

#include <gtest/gtest.h>

#include <vector>

#include "noc/arbiters.hpp"

namespace noc {
namespace {

TEST(RoundRobin, GrantsOnlyRequesters) {
  RoundRobinArbiter a(6);
  for (int i = 0; i < 100; ++i) {
    const uint32_t req = 0b101010;
    const int w = a.arbitrate(req);
    ASSERT_GE(w, 0);
    EXPECT_TRUE(req & (1u << w));
  }
}

TEST(RoundRobin, NoRequestsNoGrant) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.arbitrate(0), -1);
}

TEST(RoundRobin, FairUnderFullLoad) {
  // With all 6 requesting persistently, each wins exactly 1 in 6 grants.
  RoundRobinArbiter a(6);
  std::vector<int> wins(6, 0);
  for (int i = 0; i < 600; ++i) ++wins[a.arbitrate(0b111111)];
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(RoundRobin, StarvationFree) {
  // Requester 5 competes against everyone and still wins within n grants.
  RoundRobinArbiter a(6);
  int since_last = 0;
  for (int i = 0; i < 1000; ++i) {
    const int w = a.arbitrate(0b111111);
    if (w == 5)
      since_last = 0;
    else
      EXPECT_LT(++since_last, 6);
  }
}

TEST(RoundRobin, PointerAdvancesPastWinner) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.arbitrate(0b0001), 0);
  // Next search starts at 1: requester 0 loses to 1 now.
  EXPECT_EQ(a.arbitrate(0b0011), 1);
  EXPECT_EQ(a.arbitrate(0b0011), 0);  // wraps
}

TEST(RoundRobin, PeekDoesNotMutate) {
  RoundRobinArbiter a(4);
  const int p1 = a.peek(0b1111);
  const int p2 = a.peek(0b1111);
  EXPECT_EQ(p1, p2);
}

TEST(Matrix, GrantsOnlyRequesters) {
  MatrixArbiter m(5);
  for (int i = 0; i < 100; ++i) {
    const uint32_t req = 0b10110;
    const int w = m.arbitrate(req);
    ASSERT_GE(w, 0);
    EXPECT_TRUE(req & (1u << w));
  }
}

TEST(Matrix, SingleRequesterAlwaysWins) {
  MatrixArbiter m(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(m.arbitrate(0b01000), 3);
}

TEST(Matrix, LeastRecentlyServedUnderFullLoad) {
  // A matrix arbiter under persistent full request load degenerates to
  // round-robin service: equal shares, bounded waiting.
  MatrixArbiter m(5);
  std::vector<int> wins(5, 0);
  int gap[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 500; ++i) {
    const int w = m.arbitrate(0b11111);
    ++wins[w];
    for (int j = 0; j < 5; ++j) {
      if (j == w)
        gap[j] = 0;
      else
        EXPECT_LE(++gap[j], 5);
    }
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(Matrix, WinnerIsDemoted) {
  MatrixArbiter m(3);
  const int first = m.arbitrate(0b011);
  const int second = m.arbitrate(0b011);
  EXPECT_NE(first, second);
}

TEST(Matrix, NoRequestsNoGrant) {
  MatrixArbiter m(5);
  EXPECT_EQ(m.arbitrate(0), -1);
}

}  // namespace
}  // namespace noc

#include <gtest/gtest.h>

#include "circuits/area_model.hpp"
#include "circuits/eye.hpp"
#include "circuits/montecarlo.hpp"
#include "circuits/rsd.hpp"
#include "circuits/sense_amp.hpp"
#include "circuits/timing_model.hpp"
#include "circuits/wire.hpp"
#include "circuits/xbar_circuit.hpp"

namespace noc::ckt {
namespace {

TEST(Wire, DelayGrowsSuperlinearlyWithLength) {
  WireParams w;
  const double d1 = wire_delay_ps(w, 1.0, 300.0);
  const double d2 = wire_delay_ps(w, 2.0, 300.0);
  EXPECT_GT(d2, 2.0 * d1 * 0.9);
  EXPECT_GT(d2 - d1, d1 - wire_delay_ps(w, 0.0, 300.0));  // convex in L
}

TEST(Rsd, MeasuredDataRates) {
  // Paper Sec 4.3: single-cycle ST+LT at 5.4 GHz (1mm) and 2.6 GHz (2mm).
  TriStateRsd rsd;
  EXPECT_NEAR(rsd.max_data_rate_ghz(1.0), 5.4, 0.15);
  EXPECT_NEAR(rsd.max_data_rate_ghz(2.0), 2.6, 0.15);
}

TEST(Rsd, HeadlineEnergyRatio) {
  // Paper Fig 7: up to 3.2x less energy than a full-swing repeater at 1mm.
  EXPECT_NEAR(fullswing_vs_lowswing_ratio(1.0, 0.30), 3.2, 0.35);
}

TEST(Rsd, EnergyMonotoneInSwingAndLength) {
  TriStateRsd rsd;
  double prev = 0;
  for (double s : {0.15, 0.20, 0.30, 0.45, 0.60}) {
    const double e = rsd.energy_per_bit_fj(1.0, s);
    EXPECT_GT(e, prev);
    prev = e;
  }
  EXPECT_GT(rsd.energy_per_bit_fj(2.0), rsd.energy_per_bit_fj(1.0));
}

TEST(SenseAmpModel, ThreeSigmaAt300mV) {
  // The chip picked 300mV for >= 3-sigma reliability (Sec 4.3).
  SenseAmp sa;
  EXPECT_NEAR(sa.sigma_margin(0.30), 3.0, 1e-9);
  EXPECT_LT(sa.failure_probability(0.30), 0.003);
  EXPECT_GT(sa.failure_probability(0.10), 0.10);
}

TEST(SenseAmpModel, FailureProbabilityDecreasesWithSwing) {
  SenseAmp sa;
  double prev = 1.0;
  for (double s : {0.10, 0.15, 0.20, 0.30, 0.45}) {
    const double p = sa.failure_probability(s);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(MonteCarlo, TracksAnalyticFailureProbability) {
  MonteCarloConfig cfg;
  cfg.runs = 20000;
  for (double s : {0.10, 0.15, 0.20}) {
    const auto pt = evaluate_swing(s, cfg);
    EXPECT_NEAR(pt.failure_prob_mc, pt.failure_prob_analytic,
                0.02 + 0.2 * pt.failure_prob_analytic)
        << "swing " << s;
  }
}

TEST(MonteCarlo, TradeoffIsMonotone) {
  // Fig 10: energy rises with swing while failure probability falls.
  auto pts = swing_tradeoff_sweep({0.10, 0.20, 0.30, 0.40, 0.50});
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].energy_per_bit_fj, pts[i - 1].energy_per_bit_fj);
    EXPECT_LE(pts[i].failure_prob_mc, pts[i - 1].failure_prob_mc + 0.01);
  }
}

TEST(MonteCarlo, ChipChoosesTheChips300mV) {
  EXPECT_NEAR(choose_min_swing_for_sigma(3.0), 0.30, 0.026);
}

TEST(Eye, RepeatedHasLargerMarginButCostsMore) {
  // Paper Fig 12 / App C: 1mm-repeated has the larger eye; repeaterless is
  // ~28% cheaper and one cycle faster.
  auto pts = eye_vs_resistance_variation({-0.3, 0.0, 0.3});
  for (const auto& p : pts)
    EXPECT_GT(p.eye_repeated_mv, p.eye_repeaterless_mv);
  const double e_rep = repeated_energy_per_bit_fj();
  const double e_direct = repeaterless_energy_per_bit_fj();
  EXPECT_NEAR((e_rep - e_direct) / e_rep, 0.28, 0.10);
  EXPECT_EQ(repeated_extra_cycles(), 1);
}

TEST(Eye, MarginShrinksWithWireResistance) {
  auto pts = eye_vs_resistance_variation({-0.2, 0.0, 0.2, 0.4});
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].eye_repeated_mv, pts[i - 1].eye_repeated_mv);
    EXPECT_LT(pts[i].eye_repeaterless_mv, pts[i - 1].eye_repeaterless_mv);
  }
}

TEST(XbarCircuit, PowerLinearInMulticastCount) {
  // Paper Fig 11: dynamic power grows linearly with multicast count.
  const double p1 = xbar_dynamic_power_uw(1);
  const double p2 = xbar_dynamic_power_uw(2);
  const double p3 = xbar_dynamic_power_uw(3);
  const double p5 = xbar_dynamic_power_uw(5);
  EXPECT_NEAR(p2 - p1, p3 - p2, 1e-9);  // equal increments
  EXPECT_NEAR(p5 - p1, 4 * (p2 - p1), 1e-9);
}

TEST(XbarCircuit, EnergyPerDeliveredBitImprovesWithFanout) {
  // The fixed input cost amortizes: multicast delivery is cheaper per bit.
  EXPECT_LT(xbar_energy_per_delivered_bit_fj(5),
            xbar_energy_per_delivered_bit_fj(1));
}

TEST(Timing, Table3Values) {
  // Pre-layout: 549ps baseline vs 593ps proposed (1.08x).
  const auto base = baseline_critical_path();
  const auto prop = proposed_critical_path();
  EXPECT_NEAR(base.pre_layout_ps, 549.0, 2.0);
  EXPECT_NEAR(prop.pre_layout_ps, 593.0, 2.0);
  EXPECT_NEAR(prelayout_overhead(), 1.08, 0.01);
  // Post-layout: 658ps vs 793ps (1.21x).
  EXPECT_NEAR(base.post_layout_ps, 658.0, 5.0);
  EXPECT_NEAR(prop.post_layout_ps, 793.0, 5.0);
  EXPECT_NEAR(postlayout_overhead(), 1.21, 0.015);
  // Measured silicon: 961ps -> 1.04 GHz.
  EXPECT_NEAR(prop.measured_ps, 961.0, 6.0);
  EXPECT_NEAR(prop.fmax_ghz(), 1.04, 0.01);
}

TEST(Timing, LookaheadComponentsExplainOverhead) {
  const auto base = baseline_critical_path();
  const auto prop = proposed_critical_path();
  EXPECT_EQ(prop.components.size(), base.components.size() + 2);
  EXPECT_GT(prop.pre_layout_ps, base.pre_layout_ps);
  // The wire share of the overhead grows after layout (8% -> 21%).
  EXPECT_GT(postlayout_overhead(), prelayout_overhead());
}

TEST(Area, Table4Values) {
  const auto r = router_area();
  // Paper: 26,840 um^2 synthesized full-swing crossbar.
  EXPECT_NEAR(r.xbar_fullswing_um2, 26840.0, 200.0);
  // 83,200 um^2 low-swing (3.1x).
  EXPECT_NEAR(r.xbar_lowswing_um2, 83200.0, 800.0);
  EXPECT_NEAR(r.xbar_overhead(), 3.1, 0.05);
  // Routers: 227,230 vs 318,600 um^2 (1.4x).
  EXPECT_NEAR(r.router_fullswing_um2, 227230.0, 3500.0);
  EXPECT_NEAR(r.router_lowswing_um2, 318600.0, 5000.0);
  EXPECT_NEAR(r.router_overhead(), 1.4, 0.03);
  // Virtual bypassing costs ~5% of the router (Sec 1 lessons).
  EXPECT_NEAR(r.bypass_overhead_um2 / r.router_fullswing_um2, 0.05, 1e-9);
}

TEST(Area, OverheadDilutesAtHigherIntegration) {
  // 3.1x at the crossbar, 1.4x at the router -- the paper's dilution story.
  const auto r = router_area();
  EXPECT_LT(r.router_overhead(), r.xbar_overhead());
}

}  // namespace
}  // namespace noc::ckt

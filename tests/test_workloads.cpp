// The pluggable workload API: closed-loop coherence and trace-replay
// sources behind TrafficSource, their determinism at any thread count
// (mirroring test_experiment_runner.cpp), trace record -> replay round
// trips, and the truthful-config set_rate contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "noc/experiment.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

void expect_identical(const PointResult& a, const PointResult& b) {
  // Deterministic simulation: every field must match exactly, including
  // the transaction-level results the workload API added.
  EXPECT_EQ(a.offered_fpc, b.offered_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.recv_flits_per_cycle, b.recv_flits_per_cycle);
  EXPECT_EQ(a.recv_gbps, b.recv_gbps);
  EXPECT_EQ(a.bypass_rate, b.bypass_rate);
  EXPECT_EQ(a.completed_packets, b.completed_packets);
  EXPECT_EQ(a.max_ejection_load, b.max_ejection_load);
  EXPECT_EQ(a.max_bisection_load, b.max_bisection_load);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.avg_transaction_latency, b.avg_transaction_latency);
  EXPECT_EQ(a.max_transaction_latency, b.max_transaction_latency);
  EXPECT_EQ(a.transactions_per_cycle, b.transactions_per_cycle);
  EXPECT_EQ(a.closed_loop_window, b.closed_loop_window);
  EXPECT_EQ(a.energy.xbar_traversals, b.energy.xbar_traversals);
  EXPECT_EQ(a.energy.link_traversals, b.energy.link_traversals);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.vc_allocations, b.energy.vc_allocations);
  EXPECT_EQ(a.energy.bypasses, b.energy.bypasses);
}

NetworkConfig closed_loop_cfg(int window, double issue_prob = 1.0) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = window;
  cfg.workload.closed.issue_prob = issue_prob;
  cfg.traffic.seed = 11;
  return cfg;
}

// ---------------------------------------------------------------------------
// parse_traffic_pattern (inverse of traffic_pattern_name).

TEST(ParseTrafficPattern, RoundTripsEveryCanonicalName) {
  for (TrafficPattern p :
       {TrafficPattern::UniformRequest, TrafficPattern::MixedPaper,
        TrafficPattern::BroadcastOnly, TrafficPattern::Transpose,
        TrafficPattern::BitComplement, TrafficPattern::Tornado,
        TrafficPattern::NearestNeighbor}) {
    const auto parsed = parse_traffic_pattern(traffic_pattern_name(p));
    ASSERT_TRUE(parsed.has_value()) << traffic_pattern_name(p);
    EXPECT_EQ(*parsed, p);
  }
}

TEST(ParseTrafficPattern, AcceptsCliAliases) {
  EXPECT_EQ(parse_traffic_pattern("uniform"),
            TrafficPattern::UniformRequest);
  EXPECT_EQ(parse_traffic_pattern("mixed"), TrafficPattern::MixedPaper);
  EXPECT_EQ(parse_traffic_pattern("broadcast"),
            TrafficPattern::BroadcastOnly);
  EXPECT_EQ(parse_traffic_pattern("bitcomp"),
            TrafficPattern::BitComplement);
  EXPECT_EQ(parse_traffic_pattern("neighbor"),
            TrafficPattern::NearestNeighbor);
}

TEST(ParseTrafficPattern, RejectsUnknownNames) {
  EXPECT_FALSE(parse_traffic_pattern("").has_value());
  EXPECT_FALSE(parse_traffic_pattern("hotspot").has_value());
}

// ---------------------------------------------------------------------------
// set_rate keeps config() truthful (the old set_offered_load silently
// mutated the generator's config copy).

TEST(OpenLoopSource, SetRateLeavesConfigTruthful) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.10;
  Network net(cfg);
  auto& src = dynamic_cast<OpenLoopSource&>(net.source(0));
  net.source(0).set_rate(0.0);
  EXPECT_EQ(src.generator().rate(), 0.0);
  EXPECT_EQ(src.generator().config().offered_flits_per_node_cycle, 0.10);
  // And rate 0 really stops injection.
  TrafficGenerator gen(net.geom(), cfg.traffic, 0);
  gen.set_rate(0.0);
  for (Cycle t = 0; t < 2000; ++t) EXPECT_FALSE(gen.generate(t).has_value());
}

// ---------------------------------------------------------------------------
// Closed-loop source semantics.

TEST(ClosedLoop, CompletesTransactionsAndMeasuresLatency) {
  const auto r = measure_workload(closed_loop_cfg(4),
                                  {.warmup = 1000, .window = 4000});
  EXPECT_GT(r.transactions, 100);
  EXPECT_GT(r.avg_transaction_latency, 0.0);
  EXPECT_GE(r.max_transaction_latency, r.avg_transaction_latency);
  EXPECT_GT(r.transactions_per_cycle, 0.0);
  EXPECT_EQ(r.closed_loop_window, 4);
  // A miss is probe (>= zero-load broadcast latency) + directory + 5-flit
  // response: the round trip cannot be faster than ~12 cycles on a 4x4.
  EXPECT_GT(r.avg_transaction_latency, 12.0);
}

TEST(ClosedLoop, WindowBoundsOutstandingMisses) {
  NetworkConfig cfg = closed_loop_cfg(2);
  Network net(cfg);
  Simulation sim(net);
  for (int step = 0; step < 40; ++step) {
    sim.run(50);
    for (NodeId n = 0; n < net.geom().num_nodes(); ++n) {
      const auto& src = dynamic_cast<const ClosedLoopSource&>(
          net.nic(n).source());
      EXPECT_LE(src.outstanding(), 2);
    }
  }
}

TEST(ClosedLoop, LargerWindowSustainsMoreThroughput) {
  // A long directory lookup makes window=1 latency-bound (one round trip
  // at a time); a wider window overlaps misses and must win throughput
  // until the probes' k^2-deliveries ejection wall.
  const MeasureOptions opt{.warmup = 1500, .window = 6000};
  NetworkConfig one = closed_loop_cfg(1);
  NetworkConfig eight = closed_loop_cfg(8);
  one.workload.closed.directory_latency = 40;
  eight.workload.closed.directory_latency = 40;
  const auto w1 = measure_workload(one, opt);
  const auto w8 = measure_workload(eight, opt);
  EXPECT_GT(w8.transactions_per_cycle, 1.5 * w1.transactions_per_cycle);
  // More outstanding misses also means more queueing per miss.
  EXPECT_GT(w8.avg_transaction_latency, w1.avg_transaction_latency);
}

TEST(ClosedLoop, DrainsToQuiescenceAndConserves) {
  NetworkConfig cfg = closed_loop_cfg(4, 0.05);
  Network net(cfg);
  Simulation sim(net);
  sim.run(3000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));
  // Every issued probe got its data response; nothing lost or duplicated.
  int64_t issued = 0, completed = 0;
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n) {
    const auto& src =
        dynamic_cast<const ClosedLoopSource&>(net.nic(n).source());
    issued += src.issued_probes();
    completed += src.completed_transactions();
    EXPECT_EQ(src.outstanding(), 0);
  }
  EXPECT_GT(issued, 100);
  EXPECT_EQ(issued, completed);
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(ClosedLoop, WorksWithNicLevelBroadcastDuplication) {
  // The unicast baseline duplicates each probe into k^2-1 copies at the
  // NIC; owner election must still fire exactly once per probe.
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 2;
  cfg.workload.closed.issue_prob = 0.02;
  Network net(cfg);
  Simulation sim(net);
  sim.run(4000);
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
    net.nic(n).source().set_rate(0.0);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 60000));
  int64_t issued = 0, completed = 0;
  for (NodeId n = 0; n < net.geom().num_nodes(); ++n) {
    const auto& src =
        dynamic_cast<const ClosedLoopSource&>(net.nic(n).source());
    issued += src.issued_probes();
    completed += src.completed_transactions();
  }
  EXPECT_GT(issued, 20);
  EXPECT_EQ(issued, completed);
}

TEST(ClosedLoop, OwnerElectionIsUniformAndExcludesRequester) {
  NetworkConfig cfg = closed_loop_cfg(1);
  Network net(cfg);
  const auto& src =
      dynamic_cast<const ClosedLoopSource&>(net.nic(0).source());
  int counts[16] = {};
  for (uint64_t tag = 1; tag <= 16000; ++tag) {
    const NodeId owner = src.owner_of(tag, 3);
    ASSERT_NE(owner, 3);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 16);
    ++counts[owner];
  }
  for (NodeId n = 0; n < 16; ++n) {
    if (n == 3) continue;
    EXPECT_NEAR(counts[n] / 16000.0, 1.0 / 15.0, 0.01);
  }
}

TEST(ClosedLoop, WindowSweepBitIdenticalAcrossThreadCounts) {
  const MeasureOptions measure{.warmup = 400, .window = 1500};
  const NetworkConfig cfg = closed_loop_cfg(4);
  const std::vector<int> windows = {1, 2, 4};

  const ExperimentRunner serial{
      ExperimentOptions{.measure = measure, .threads = 1}};
  const ExperimentRunner parallel{
      ExperimentOptions{.measure = measure, .threads = 3}};
  const auto a = serial.window_sweep(cfg, windows);
  const auto b = parallel.window_sweep(cfg, windows);
  ASSERT_EQ(a.size(), windows.size());
  ASSERT_EQ(b.size(), windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(a[i].closed_loop_window, windows[i]);
    expect_identical(a[i], b[i]);
  }
}

// ---------------------------------------------------------------------------
// Trace recording and replay.

Trace record_open_loop_trace(Cycle cycles, double load = 0.08) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = load;
  cfg.traffic.seed = 21;
  Trace trace;
  Network net(cfg);
  net.record_trace(&trace);
  Simulation sim(net);
  sim.run(cycles);
  return trace;
}

TEST(TraceWorkload, RecordThenReplayReproducesTheTraceExactly) {
  const Trace trace = record_open_loop_trace(3000);
  ASSERT_GT(trace.records.size(), 100u);

  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::Trace;
  cfg.workload.trace.trace = std::make_shared<Trace>(trace);
  Trace replayed;
  Network net(cfg);
  net.record_trace(&replayed);
  Simulation sim(net);
  sim.run(3000);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 30000));

  // Replay injects each node's records at their recorded cycles (one per
  // node per cycle, which open-loop capture guarantees), so re-recording
  // the replay reproduces the original trace record for record.
  ASSERT_EQ(replayed.records.size(), trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i)
    EXPECT_EQ(replayed.records[i], trace.records[i]) << "record " << i;
  EXPECT_EQ(net.metrics().total_generated(),
            static_cast<int64_t>(trace.records.size()));
  EXPECT_EQ(net.metrics().total_generated(), net.metrics().total_completed());
}

TEST(TraceWorkload, FileSaveLoadRoundTrip) {
  const Trace trace = record_open_loop_trace(1000);
  const std::string path = ::testing::TempDir() + "noc_trace_roundtrip.txt";
  ASSERT_TRUE(save_trace(path, trace));
  const auto loaded = load_trace(path);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->records.size(), trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i)
    EXPECT_EQ(loaded->records[i], trace.records[i]) << "record " << i;
  std::remove(path.c_str());
}

TEST(TraceWorkload, GeometryHeaderRoundTripAtK12) {
  // Capture on a k=12 network so record_trace stamps the geometry and
  // save_trace emits the v2 header; masks at k=12 straddle 64-bit word
  // boundaries, so this also exercises multi-word serialization through
  // the capture path (not just hand-built records).
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.offered_flits_per_node_cycle = 0.02;
  cfg.traffic.seed = 7;
  Trace trace;
  {
    Network net(cfg);
    net.record_trace(&trace);
    Simulation sim(net);
    sim.run(600);
  }
  ASSERT_GT(trace.records.size(), 20u);
  EXPECT_EQ(trace.kx, 12);
  EXPECT_EQ(trace.ky, 12);

  const std::string path = ::testing::TempDir() + "noc_trace_v2_k12.txt";
  ASSERT_TRUE(save_trace(path, trace));
  std::string err;
  const auto loaded = load_trace(path, &err);
  ASSERT_NE(loaded, nullptr) << err;
  EXPECT_EQ(loaded->kx, 12);
  EXPECT_EQ(loaded->ky, 12);
  ASSERT_EQ(loaded->records.size(), trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i)
    EXPECT_EQ(loaded->records[i], trace.records[i]) << "record " << i;

  // Geometry checks: the stamped trace replays on its own mesh but is
  // rejected -- with a message naming both geometries -- on a 4x4 one.
  EXPECT_EQ(trace_geometry_error(*loaded, 12, 12), "");
  const std::string mismatch = trace_geometry_error(*loaded, 4, 4);
  EXPECT_NE(mismatch.find("12x12"), std::string::npos) << mismatch;
  EXPECT_NE(mismatch.find("4x4"), std::string::npos) << mismatch;
  std::remove(path.c_str());
}

TEST(TraceWorkload, LoadRequiresTraceHeader) {
  // A headerless file (pre-versioning format) must be rejected with a
  // diagnostic that says what went wrong, not silently mis-parsed.
  const std::string path = ::testing::TempDir() + "noc_trace_nohdr.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "100 0 1 1 0\n");
  std::fclose(f);
  std::string err;
  EXPECT_EQ(load_trace(path, &err), nullptr);
  EXPECT_NE(err.find("not a noc-trace file"), std::string::npos) << err;
  // v2 header with geometry outside [2, kMaxMeshRadix] is also rejected.
  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# noc-trace v2 geometry 99x99\n100 0 1 1 0\n");
  std::fclose(f);
  err.clear();
  EXPECT_EQ(load_trace(path, &err), nullptr);
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(TraceWorkload, LargeKMultiWordMaskFileRoundTrip) {
  // k=12 broadcasts carry 144-bit destination masks: the trace text format
  // must round-trip masks wider than one word (they serialize as one big
  // hex number, see save_trace).
  Trace trace;
  const MeshGeometry g(12);
  trace.records.push_back({5, 0, g.all_nodes_mask(), 1, MsgClass::Request});
  trace.records.push_back(
      {9, 130,
       MeshGeometry::node_mask(63) | MeshGeometry::node_mask(64) |
           MeshGeometry::node_mask(143),
       5, MsgClass::Response});
  trace.records.push_back({12, 143, MeshGeometry::node_mask(1), 1,
                           MsgClass::Request});
  const std::string path = ::testing::TempDir() + "noc_trace_largek.txt";
  ASSERT_TRUE(save_trace(path, trace));
  const auto loaded = load_trace(path);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->records.size(), trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i)
    EXPECT_EQ(loaded->records[i], trace.records[i]) << "record " << i;
  std::remove(path.c_str());

  // And the replay path accepts it end-to-end on a k=12 network.
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.workload.kind = WorkloadKind::Trace;
  cfg.workload.trace.trace = std::make_shared<Trace>(trace);
  Network net(cfg);
  Simulation sim(net);
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 20000));
  EXPECT_EQ(net.metrics().total_generated(), 3);
  EXPECT_EQ(net.metrics().total_completed(), 3);
}

TEST(TraceWorkload, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_EQ(load_trace("/nonexistent/definitely/missing.trace"), nullptr);
  const std::string path = ::testing::TempDir() + "noc_trace_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# noc-trace v1\nnot a record at all\n");
  std::fclose(f);
  EXPECT_EQ(load_trace(path), nullptr);
  // Parsable but out-of-range fields (message class 7, zero dest mask)
  // must be rejected too, not cast into the simulator.
  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# noc-trace v1\n100 0 1 1 7\n");
  std::fclose(f);
  EXPECT_EQ(load_trace(path), nullptr);
  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# noc-trace v1\n100 0 0 1 0\n");
  std::fclose(f);
  EXPECT_EQ(load_trace(path), nullptr);
  std::remove(path.c_str());
}

TEST(TraceWorkload, ReplayMeasurementBitIdenticalAcrossThreadCounts) {
  const auto trace =
      std::make_shared<const Trace>(record_open_loop_trace(6000));
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::Trace;
  cfg.workload.trace.trace = trace;
  const MeasureOptions measure{.warmup = 500, .window = 3000};

  const auto serial = measure_workload(cfg, measure);
  EXPECT_GT(serial.transactions, 0);  // records replayed inside the window
  EXPECT_GT(serial.completed_packets, 0);

  const ExperimentRunner runner{
      ExperimentOptions{.measure = measure, .threads = 3}};
  const auto batch =
      runner.run({SweepPoint{cfg, 0.0}, SweepPoint{cfg, 0.0}});
  ASSERT_EQ(batch.size(), 2u);
  expect_identical(batch[0], serial);
  expect_identical(batch[1], serial);
}

TEST(TraceWorkload, SourceExposesReplayProgress) {
  Trace trace;
  trace.records.push_back({5, 0, MeshGeometry::node_mask(3), 1,
                           MsgClass::Request});
  trace.records.push_back({9, 0, MeshGeometry::node_mask(7), 5,
                           MsgClass::Response});
  trace.records.push_back({9, 2, MeshGeometry::node_mask(0), 1,
                           MsgClass::Request});
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::Trace;
  cfg.workload.trace.trace = std::make_shared<Trace>(trace);
  Network net(cfg);
  Simulation sim(net);
  const auto& src0 = dynamic_cast<const TraceSource&>(net.nic(0).source());
  const auto& src1 = dynamic_cast<const TraceSource&>(net.nic(1).source());
  EXPECT_EQ(src0.records_total(), 2u);
  EXPECT_EQ(src1.records_total(), 0u);
  EXPECT_TRUE(src1.idle());
  ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 1000));
  EXPECT_EQ(src0.records_replayed(), 2u);
  EXPECT_EQ(net.metrics().total_completed(), 3);
}

}  // namespace
}  // namespace noc

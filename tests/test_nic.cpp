#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

TEST(Nic, InjectsAtMostOneFlitPerCycle) {
  // Saturate one NIC's source queue with 5-flit responses and verify the
  // injection link never carries more than 1 flit/cycle and exactly
  // serializes the packets.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  for (int i = 0; i < 6; ++i) {
    Packet p;
    p.id = static_cast<PacketId>(100 + i);
    p.src = 0;
    p.dest_mask = MeshGeometry::node_mask(15);
    p.mc = MsgClass::Response;
    p.length = 5;
    p.gen_cycle = sim.now();
    net.nic(0).submit_packet(p);
  }
  net.metrics().begin_window(sim.now());
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 6; }, 500));
  net.metrics().end_window(sim.now());
  // 30 flits over >= 30 cycles of injection link time.
  EXPECT_EQ(net.metrics().received_flits(), 30);
  EXPECT_GE(sim.now(), 30);
}

TEST(Nic, RequestAndResponseInterleaveOnDistinctVcs) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  Packet req;
  req.id = 1;
  req.src = 0;
  req.dest_mask = MeshGeometry::node_mask(5);
  req.mc = MsgClass::Request;
  req.length = 1;
  req.gen_cycle = sim.now();
  Packet resp;
  resp.id = 2;
  resp.src = 0;
  resp.dest_mask = MeshGeometry::node_mask(5);
  resp.mc = MsgClass::Response;
  resp.length = 5;
  resp.gen_cycle = sim.now();
  net.nic(0).submit_packet(resp);
  net.nic(0).submit_packet(req);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 2; }, 200));
  // The 1-flit request must not wait for the whole 5-flit response: it
  // interleaves on its own message class.
  EXPECT_LE(sim.now() - 3, 5 + 2 + 4 + 3);
}

TEST(Nic, DuplicatesBroadcastWithoutRouterMulticast) {
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  Packet p;
  p.id = 7;
  p.src = 5;
  p.dest_mask = net.geom().all_nodes_mask();
  p.gen_cycle = sim.now();
  net.metrics().begin_window(sim.now());
  net.nic(5).submit_packet(p);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 500));
  net.metrics().end_window(sim.now());
  // One logical completion; 16 flits received (15 network + 1 local copy).
  EXPECT_EQ(net.metrics().total_completed(), 1);
  EXPECT_EQ(net.metrics().received_flits(), 16);
  // 15 serialized injections on the source's injection link.
  EXPECT_EQ(net.energy().nic_link_traversals,
            15 /*inject*/ + 15 /*eject*/);
}

TEST(Nic, MulticastRouterSendsSingleFlit) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  Packet p;
  p.id = 7;
  p.src = 5;
  p.dest_mask = net.geom().all_nodes_mask();
  p.gen_cycle = sim.now();
  net.metrics().begin_window(sim.now());
  net.nic(5).submit_packet(p);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 500));
  net.metrics().end_window(sim.now());
  EXPECT_EQ(net.metrics().received_flits(), 16);
  // One injection; 16 ejections; 15 router-router links (spanning tree).
  EXPECT_EQ(net.energy().nic_link_traversals, 1 + 16);
  EXPECT_EQ(net.energy().link_traversals, 15);
}

TEST(Nic, BroadcastLatencyIsFurthestDelivery) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;
  Network net(cfg);
  Simulation sim(net);
  sim.run(3);
  MeshGeometry g(4);
  Packet p;
  p.id = 9;
  p.src = g.id(1, 1);  // furthest distance 4
  p.dest_mask = g.all_nodes_mask();
  p.gen_cycle = sim.now();
  net.metrics().begin_window(sim.now());
  net.nic(p.src).submit_packet(p);
  EXPECT_TRUE(sim.run_until(
      [&] { return net.metrics().total_completed() >= 1; }, 500));
  net.metrics().end_window(sim.now());
  EXPECT_EQ(net.metrics().avg_packet_latency(), 4 + 2);
}

}  // namespace
}  // namespace noc

// Event-count consistency: the microarchitectural identities the power
// model depends on (Fig 6/8 are only as good as these invariants).
#include <gtest/gtest.h>

#include "noc/experiment.hpp"

namespace noc {
namespace {

PointResult run_point(NetworkConfig cfg, TrafficPattern pat, double offered) {
  cfg.traffic.pattern = pat;
  return measure_point(cfg, offered, {.warmup = 1500, .window = 6000});
}

TEST(EnergyCounters, XbarTraversalsSplitIntoLinksAndEjections) {
  for (auto pat :
       {TrafficPattern::UniformRequest, TrafficPattern::BroadcastOnly,
        TrafficPattern::MixedPaper}) {
    auto pt = run_point(NetworkConfig::proposed(4), pat, 0.03);
    const auto& e = pt.energy;
    // Every crossbar grant drives either an inter-router link or the
    // ejection wire; NIC link events = injections + ejections.
    EXPECT_GE(e.xbar_traversals, e.link_traversals);
    const int64_t ejections = e.xbar_traversals - e.link_traversals;
    EXPECT_GE(e.nic_link_traversals, ejections);
    EXPECT_GE(ejections, 0);
  }
}

TEST(EnergyCounters, BufferReadsTrackWrites) {
  // For unicast traffic each buffered flit is written once and read once;
  // the measurement window can cut the pipeline mid-flight, so allow slack
  // of one flit per VC network-wide (16 routers x 5 ports x 6 VCs).
  for (auto mk : {&NetworkConfig::proposed, &NetworkConfig::baseline_3stage,
                  &NetworkConfig::baseline_4stage}) {
    auto pt = run_point(mk(4), TrafficPattern::UniformRequest, 0.1);
    EXPECT_LE(pt.energy.buffer_reads, pt.energy.buffer_writes + 16 * 5 * 6);
    EXPECT_NEAR(static_cast<double>(pt.energy.buffer_reads),
                static_cast<double>(pt.energy.buffer_writes),
                0.02 * static_cast<double>(pt.energy.buffer_writes) + 500);
  }
}

TEST(EnergyCounters, BaselineNeverBypasses) {
  auto pt = run_point(NetworkConfig::baseline_3stage(4),
                      TrafficPattern::MixedPaper, 0.05);
  EXPECT_EQ(pt.energy.bypasses, 0);
  EXPECT_EQ(pt.energy.partial_bypasses, 0);
  EXPECT_EQ(pt.energy.lookaheads_sent, 0);
  EXPECT_GT(pt.energy.buffered_hops, 0);
}

TEST(EnergyCounters, ProposedBuffersLessThanNoBypass) {
  // Fig 6 C->D mechanism: bypass removes buffer writes at equal traffic.
  auto d = run_point(NetworkConfig::proposed(4),
                     TrafficPattern::BroadcastOnly, 0.03);
  auto c = run_point(NetworkConfig::lowswing_multicast(4),
                     TrafficPattern::BroadcastOnly, 0.03);
  EXPECT_LT(d.energy.buffer_writes, c.energy.buffer_writes / 2);
}

TEST(EnergyCounters, MulticastSlashesDatapathEvents) {
  // Fig 6 B->C mechanism: the tree shares links; per delivered flit the
  // duplicating baseline burns several times the link traversals.
  auto c = run_point(NetworkConfig::lowswing_multicast(4),
                     TrafficPattern::BroadcastOnly, 0.02);
  auto b = run_point(NetworkConfig::baseline_3stage(4),
                     TrafficPattern::BroadcastOnly, 0.02);
  const double c_per_recv = static_cast<double>(c.energy.link_traversals) /
                            static_cast<double>(c.recv_flits_per_cycle);
  const double b_per_recv = static_cast<double>(b.energy.link_traversals) /
                            static_cast<double>(b.recv_flits_per_cycle);
  EXPECT_GT(b_per_recv, 2.0 * c_per_recv);
}

TEST(EnergyCounters, TreeLinkCountMatchesSpanningTree) {
  // At low load each broadcast crosses exactly k^2-1 router-router links.
  auto pt = run_point(NetworkConfig::proposed(4),
                      TrafficPattern::BroadcastOnly, 0.005);
  const double links_per_bcast =
      static_cast<double>(pt.energy.link_traversals) /
      (static_cast<double>(pt.energy.nic_link_traversals) / 17.0);
  EXPECT_NEAR(links_per_bcast, 15.0, 0.2);
}

TEST(EnergyCounters, DeltaSinceIsExact) {
  EnergyCounters a;
  a.buffer_writes = 10;
  a.cycles = 100;
  EnergyCounters b = a;
  b.buffer_writes = 25;
  b.cycles = 160;
  b.bypasses = 3;
  const EnergyCounters d = b.delta_since(a);
  EXPECT_EQ(d.buffer_writes, 15);
  EXPECT_EQ(d.cycles, 60);
  EXPECT_EQ(d.bypasses, 3);
}

TEST(EnergyCounters, AccumulateIsInverseOfDelta) {
  EnergyCounters a;
  a.xbar_traversals = 5;
  a.sa1_arbitrations = 2;
  EnergyCounters b;
  b.xbar_traversals = 7;
  b.sa2_arbitrations = 4;
  EnergyCounters sum = a;
  sum += b;
  EXPECT_EQ(sum.xbar_traversals, 12);
  EXPECT_EQ(sum.delta_since(b).xbar_traversals, a.xbar_traversals);
}

TEST(EnergyCounters, BypassRateBounds) {
  EnergyCounters e;
  EXPECT_DOUBLE_EQ(e.bypass_rate(), 0.0);
  e.bypasses = 3;
  e.buffered_hops = 1;
  EXPECT_DOUBLE_EQ(e.bypass_rate(), 0.75);
}

}  // namespace
}  // namespace noc

// The telemetry subsystem (docs/OBSERVABILITY.md): exact-rank histogram
// percentiles, probe bookkeeping, exporter output validity, and the
// campaign integration (conditional content hashing + manifest roundtrip).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/manifest.hpp"
#include "noc/metrics.hpp"
#include "noc/network.hpp"
#include "noc/telemetry.hpp"
#include "sim/simulation.hpp"

namespace noc {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram: percentile() promises the smallest latency L with at
// least ceil(q * count) samples <= L -- exact ranks, not interpolation.

TEST(LatencyHistogram, ExactPercentilesOnKnownSamples) {
  LatencyHistogram h;
  for (Cycle lat = 1; lat <= 100; ++lat) h.add(lat);  // one sample each
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.percentile(0.50), 50);
  EXPECT_EQ(h.percentile(0.95), 95);
  EXPECT_EQ(h.percentile(0.99), 99);
  EXPECT_EQ(h.percentile(1.0), 100);
  // Rank 1 (ceil(0.001 * 100) = 1) is the smallest sample.
  EXPECT_EQ(h.percentile(0.001), 1);
}

TEST(LatencyHistogram, SkewedMassAndSingletonTail) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(10);
  h.add(500);  // one outlier
  EXPECT_EQ(h.percentile(0.50), 10);
  EXPECT_EQ(h.percentile(0.99), 10);   // rank 99 is still in the bulk
  EXPECT_EQ(h.percentile(1.0), 500);   // rank 100 is the outlier
  EXPECT_EQ(h.max(), 500);
}

TEST(LatencyHistogram, OverflowFallsBackToObservedMax) {
  LatencyHistogram h;
  h.add(5);
  h.add(LatencyHistogram::kBins + 123);  // beyond the binned range
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.percentile(0.50), 5);
  // The rank-2 request lands in the overflow region: exact bins cannot
  // resolve it, so the observed max is the documented answer.
  EXPECT_EQ(h.percentile(1.0), LatencyHistogram::kBins + 123);
  EXPECT_EQ(h.max(), LatencyHistogram::kBins + 123);
}

TEST(LatencyHistogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.99), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.add(7);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

// ---------------------------------------------------------------------------
// Probe bookkeeping.

TEST(Telemetry, StallCountersAccumulateAndReset) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  Telemetry t(4, cfg);
  t.add_stall(2, StallClass::NoCredit, 3);
  t.add_stall(2, StallClass::NoCredit);
  t.add_stall(0, StallClass::LostSa);
  EXPECT_EQ(t.stalls(2, StallClass::NoCredit), 4);
  EXPECT_EQ(t.total_stalls(StallClass::NoCredit), 4);
  EXPECT_EQ(t.total_stalls(StallClass::LostSa), 1);
  EXPECT_EQ(t.total_stalls(StallClass::BufferEmpty), 0);
  t.reset_stalls();
  EXPECT_EQ(t.total_stalls(StallClass::NoCredit), 0);
}

TEST(Telemetry, TimeSeriesRingStopsAtCapacity) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_every = 10;
  cfg.max_samples = 4;
  Telemetry t(4, cfg);
  EXPECT_FALSE(t.want_sample(15));  // off-period
  for (Cycle c = 0; c < 100; c += 10) {
    if (t.want_sample(c)) t.push_sample(TimeSample{c, 0, 0, 0, 0, 0});
  }
  EXPECT_EQ(t.samples().size(), 4u);  // ring full, sampling stopped
  EXPECT_EQ(t.samples().back().cycle, 30);
}

TEST(Telemetry, TraceSamplingAndDisable) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.trace_sample_every = 4;
  Telemetry t(4, cfg);
  EXPECT_TRUE(t.tracing(8));
  EXPECT_FALSE(t.tracing(9));
  t.disable_tracing();  // what Network does under span-parallel stepping
  EXPECT_FALSE(t.tracing(8));

  TelemetryConfig off;
  off.enabled = true;  // trace_sample_every stays 0
  Telemetry quiet(4, off);
  EXPECT_FALSE(quiet.tracing(0));  // no modulo-by-zero, just off
}

// ---------------------------------------------------------------------------
// Exporters: run a real faulted network, then validate the artifacts. The
// C++ side checks structure via substrings; CI additionally json.load()s
// the trace (.github/workflows/ci.yml telemetry smoke).

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Telemetry, ExportersProduceValidArtifacts) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.offered_flits_per_node_cycle = 0.15;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 25;
  cfg.telemetry.trace_sample_every = 1;  // trace every packet
  cfg.fault.kill_link(400, 5, 6).revive_link(800, 5, 6);

  Network net(cfg);
  ASSERT_NE(net.telemetry(), nullptr);
  Simulation sim(net);
  sim.run(1200);

  const Telemetry& t = *net.telemetry();
  EXPECT_FALSE(t.trace_events().empty());
  EXPECT_FALSE(t.samples().empty());
  ASSERT_EQ(t.fault_markers().size(), 2u);
  EXPECT_EQ(t.fault_markers()[0].cycle, 400);
  EXPECT_EQ(t.fault_markers()[1].cycle, 800);

  const std::string dir = ::testing::TempDir();
  const std::string trace = dir + "telemetry_trace.json";
  const std::string ts_csv = dir + "telemetry_ts.csv";
  const std::string ts_json = dir + "telemetry_ts.json";
  const std::string stalls = dir + "telemetry_stalls.csv";
  ASSERT_TRUE(t.write_perfetto_json(trace));
  ASSERT_TRUE(t.write_timeseries_csv(ts_csv));
  ASSERT_TRUE(t.write_timeseries_json(ts_json));
  ASSERT_TRUE(t.write_stalls_csv(stalls, cfg.k));

  const std::string tj = slurp(trace);
  EXPECT_NE(tj.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tj.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(tj.find("\"cat\":\"pkt\""), std::string::npos);
  EXPECT_NE(tj.find("\"cat\":\"hop\""), std::string::npos);
  EXPECT_NE(tj.find("link-down 5-6"), std::string::npos);
  EXPECT_EQ(tj.find("NaN"), std::string::npos);

  const std::string tc = slurp(ts_csv);
  EXPECT_EQ(tc.rfind("cycle,injected_flits,delivered_flits", 0), 0u);
  EXPECT_NE(tc.find("# fault,400,link-down,5,6"), std::string::npos);

  const std::string sc = slurp(stalls);
  EXPECT_EQ(sc.rfind("node,x,y,buffer_empty,no_free_vc,no_credit", 0), 0u);
  // 16 routers + header.
  EXPECT_EQ(std::count(sc.begin(), sc.end(), '\n'), 17);

  for (const std::string& p : {trace, ts_csv, ts_json, stalls})
    std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// Campaign integration: the telemetry knobs hash conditionally (like the
// fault axis) so pre-telemetry result stores stay valid, and the manifest
// text roundtrips them.

TEST(CampaignTelemetry, KnobsHashOnlyWhenEnabled) {
  campaign::Manifest m;
  m.name = "telemetry-hash";
  campaign::CampaignPoint p;
  p.id = "probe";
  p.k = 4;
  p.offered = 0.10;
  m.points.push_back(p);
  std::string err;
  const auto base = campaign::resolve_manifest(m, &err);
  ASSERT_FALSE(base.empty()) << err;
  // Off-point keys never mention telemetry: every pre-telemetry hash in an
  // existing result store remains the completed-work identity.
  EXPECT_EQ(base[0].key.find("telemetry"), std::string::npos);

  campaign::Manifest on = m;
  on.points[0].telemetry = true;
  on.points[0].telemetry_sample_every = 50;
  const auto probed = campaign::resolve_manifest(on, &err);
  ASSERT_FALSE(probed.empty()) << err;
  EXPECT_NE(probed[0].key.find("telemetry"), std::string::npos);
  EXPECT_NE(probed[0].hash, base[0].hash);
  EXPECT_TRUE(probed[0].cfg.telemetry.enabled);
  EXPECT_EQ(probed[0].cfg.telemetry.sample_every, 50);
}

TEST(CampaignTelemetry, ManifestRoundTripPreservesKnobs) {
  campaign::Manifest m;
  m.name = "telemetry-roundtrip";
  campaign::CampaignPoint p;
  p.id = "probe";
  p.k = 4;
  p.telemetry = true;
  p.telemetry_sample_every = 32;
  m.points.push_back(p);
  const std::string path =
      ::testing::TempDir() + "telemetry_roundtrip.campaign";
  ASSERT_TRUE(campaign::save_manifest(path, m));
  std::string err;
  const auto loaded = campaign::load_manifest(path, &err);
  ASSERT_NE(loaded, nullptr) << err;
  ASSERT_EQ(loaded->points.size(), 1u);
  EXPECT_TRUE(loaded->points[0].telemetry);
  EXPECT_EQ(loaded->points[0].telemetry_sample_every, 32);
  const auto a = campaign::resolve_manifest(m, &err);
  const auto b = campaign::resolve_manifest(*loaded, &err);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(a[0].hash, b[0].hash);
  std::remove(path.c_str());
}

TEST(CampaignTelemetry, SampleEveryWithoutTelemetryIsInvalid) {
  campaign::Manifest m;
  m.name = "telemetry-invalid";
  campaign::CampaignPoint p;
  p.id = "probe";
  p.k = 4;
  p.telemetry_sample_every = 32;  // but telemetry stays off
  m.points.push_back(p);
  EXPECT_FALSE(campaign::validate_manifest(m).empty());
}

}  // namespace
}  // namespace noc

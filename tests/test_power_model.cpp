#include <gtest/gtest.h>

#include "noc/experiment.hpp"
#include "power/energy_model.hpp"
#include "power/estimators.hpp"
#include "power/orion.hpp"
#include "power/tech_params.hpp"

namespace noc::power {
namespace {

EnergyCounters sample_events() {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto pt = measure_point(cfg, 0.03, {.warmup = 1500, .window = 5000});
  return pt.energy;
}

TEST(EnergyModel, BreakdownSumsToTotal) {
  const auto ev = sample_events();
  const auto p = compute_power(ev, 16, calibrated_tech45(), true);
  EXPECT_NEAR(p.total_mw(),
              p.clock_mw + p.leakage_mw + p.vc_state_mw + p.allocators_mw +
                  p.lookahead_mw + p.buffers_mw + p.datapath_mw,
              1e-9);
  EXPECT_GT(p.total_mw(), 0.0);
}

TEST(EnergyModel, LowSwingCutsDatapathByCalibredRatio) {
  // Fig 6 A->B: identical events, swapped datapath energy: 48.3% reduction.
  const auto ev = sample_events();
  const auto fs = compute_power(ev, 16, calibrated_tech45(), false);
  const auto ls = compute_power(ev, 16, calibrated_tech45(), true);
  EXPECT_NEAR(1.0 - ls.datapath_mw / fs.datapath_mw, 0.483, 0.002);
  // Non-datapath categories unchanged.
  EXPECT_DOUBLE_EQ(fs.buffers_mw, ls.buffers_mw);
  EXPECT_DOUBLE_EQ(fs.clock_mw, ls.clock_mw);
}

TEST(EnergyModel, StaticPartsScaleWithRouterCount) {
  const auto ev = sample_events();
  const auto p16 = compute_power(ev, 16, calibrated_tech45(), true);
  const auto p64 = compute_power(ev, 64, calibrated_tech45(), true);
  EXPECT_NEAR(p64.clock_mw / p16.clock_mw, 4.0, 1e-9);
  EXPECT_NEAR(p64.leakage_mw / p16.leakage_mw, 4.0, 1e-9);
  // Dynamic parts depend on events, not router count.
  EXPECT_DOUBLE_EQ(p64.buffers_mw, p16.buffers_mw);
}

TEST(EnergyModel, LeakageMatchesChipMeasurement) {
  // Paper: 76.7 mW measured leakage.
  const auto ev = sample_events();
  const auto p = compute_power(ev, 16, calibrated_tech45(), true);
  EXPECT_NEAR(p.leakage_mw, 76.7, 0.5);
}

TEST(EnergyModel, LowLoadPerRouterNearChip) {
  // Paper Sec 4.1: ~13.2 mW/router at injection rate 3/255; VC state
  // 1.9 mW/router. Our calibration should land in that neighbourhood.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.identical_prbs = true;
  auto pt = measure_point(cfg, 3.0 / 255.0 / 16.0,
                          {.warmup = 2000, .window = 8000});
  const auto p =
      per_router(compute_power(pt.energy, 16, calibrated_tech45(), true), 16);
  EXPECT_NEAR(p.vc_state_mw, 1.9, 0.05);
  EXPECT_GT(p.total_mw(), 9.0);
  EXPECT_LT(p.total_mw(), 17.0);
}

TEST(EnergyModel, TheoreticalLimitBelowActual) {
  const auto ev = sample_events();
  const auto p = compute_power(ev, 16, calibrated_tech45(), true);
  const double limit = theoretical_power_limit_mw(ev, 16, calibrated_tech45());
  EXPECT_LT(limit, p.total_mw());
  EXPECT_GT(limit, 0.0);
}

TEST(Estimators, OrionOverestimatesRoughly5x) {
  const auto ev = sample_events();
  const auto measured = estimate_power(Estimator::Measured, ev, 16, true);
  const auto orion = estimate_power(Estimator::Orion, ev, 16, true);
  const double ratio = orion.total_mw() / measured.total_mw();
  EXPECT_GT(ratio, 3.5);   // paper: 4.8-5.3x
  EXPECT_LT(ratio, 7.0);
}

TEST(Estimators, PostLayoutWithin15Percent) {
  const auto ev = sample_events();
  const auto measured = estimate_power(Estimator::Measured, ev, 16, true);
  const auto pl = estimate_power(Estimator::PostLayout, ev, 16, true);
  const double dev = pl.total_mw() / measured.total_mw();
  EXPECT_GT(dev, 0.85);  // paper: 6-13% deviation
  EXPECT_LT(dev, 1.15);
}

TEST(Estimators, RelativeAccuracyPreserved) {
  // Fig 8's punchline: all three estimators agree on the *relative*
  // baseline-vs-proposed reduction even though absolutes differ wildly.
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  base.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto bpt = measure_point(base, 0.02, {.warmup = 1500, .window = 5000});
  NetworkConfig prop = NetworkConfig::proposed(4);
  prop.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto ppt = measure_point(prop, 0.02, {.warmup = 1500, .window = 5000});
  const auto cmp =
      compare_all_estimators(bpt.energy, false, ppt.energy, true, 16);
  ASSERT_EQ(cmp.size(), 3u);
  const double ref = cmp[2].relative_reduction();  // measured
  EXPECT_GT(ref, 0.15);
  for (const auto& c : cmp)
    EXPECT_NEAR(c.relative_reduction(), ref, 0.15)
        << estimator_name(c.which);
}

TEST(Orion, DerivedEnergiesArePositiveAndOrdered) {
  OrionModel m;
  EXPECT_GT(m.buffer_write_energy_pj(), m.buffer_read_energy_pj());
  EXPECT_GT(m.link_energy_pj(), 0.0);
  EXPECT_GT(m.crossbar_energy_pj(), 0.0);
  EXPECT_GT(m.clock_power_per_router_mw(), 0.0);
  EXPECT_GT(m.leakage_per_router_mw(), 0.0);
}

TEST(Orion, SizeFactorDrivesAbsoluteError) {
  // Wider assumed devices -> proportionally larger per-event energy (the
  // wordline/bitline wire terms dilute the scaling somewhat).
  OrionConfig small;
  small.transistor_size_factor = 1.0;
  OrionConfig big;
  big.transistor_size_factor = 5.0;
  const double ratio = OrionModel(big).buffer_write_energy_pj() /
                       OrionModel(small).buffer_write_energy_pj();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 5.0);
}

}  // namespace
}  // namespace noc::power

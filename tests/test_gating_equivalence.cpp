// Activity-gated stepping must be metric-invisible (docs/PERF.md): for any
// traffic pattern, workload family and pipeline mode, a network stepped with
// activity gating on must produce bit-identical PointResults -- every
// latency average, throughput figure and raw energy event count -- to the
// same config stepped through the full phase walk. Gating may only skip
// work that is a provable no-op, so any divergence here is a missed wake-up
// edge or a skipped tick that was not actually idle.
#include <gtest/gtest.h>

#include <algorithm>

#include "noc/experiment.hpp"
#include "noc/network.hpp"
#include "noc/workload.hpp"
#include "sim/simulation.hpp"
#include "sim/thread_pool.hpp"

namespace noc {
namespace {

void expect_identical(const PointResult& a, const PointResult& b) {
  EXPECT_EQ(a.offered_fpc, b.offered_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.recv_flits_per_cycle, b.recv_flits_per_cycle);
  EXPECT_EQ(a.recv_gbps, b.recv_gbps);
  EXPECT_EQ(a.bypass_rate, b.bypass_rate);
  EXPECT_EQ(a.completed_packets, b.completed_packets);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.max_ejection_load, b.max_ejection_load);
  EXPECT_EQ(a.max_bisection_load, b.max_bisection_load);
  EXPECT_EQ(a.energy.xbar_traversals, b.energy.xbar_traversals);
  EXPECT_EQ(a.energy.link_traversals, b.energy.link_traversals);
  EXPECT_EQ(a.energy.nic_link_traversals, b.energy.nic_link_traversals);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(a.energy.sa1_arbitrations, b.energy.sa1_arbitrations);
  EXPECT_EQ(a.energy.sa2_arbitrations, b.energy.sa2_arbitrations);
  EXPECT_EQ(a.energy.vc_allocations, b.energy.vc_allocations);
  EXPECT_EQ(a.energy.lookaheads_sent, b.energy.lookaheads_sent);
  EXPECT_EQ(a.energy.bypasses, b.energy.bypasses);
  EXPECT_EQ(a.energy.partial_bypasses, b.energy.partial_bypasses);
  EXPECT_EQ(a.energy.buffered_hops, b.energy.buffered_hops);
  EXPECT_EQ(a.energy.vc_active_cycles, b.energy.vc_active_cycles);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.avg_transaction_latency, b.avg_transaction_latency);
  EXPECT_EQ(a.max_transaction_latency, b.max_transaction_latency);
  EXPECT_EQ(a.transactions_per_cycle, b.transactions_per_cycle);
  // The always-on latency histogram (docs/OBSERVABILITY.md): exact-rank
  // order statistics, so bit-identical across gating like everything else.
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  // Stall attribution (zero for both unless the config enables telemetry).
  for (int c = 0; c < kNumStallClasses; ++c)
    EXPECT_EQ(a.stall_cycles[c], b.stall_cycles[c]) << stall_class_name(
        static_cast<StallClass>(c));
}

constexpr MeasureOptions kOpt{.warmup = 300, .window = 900};

void expect_gating_invisible(NetworkConfig cfg, double offered) {
  SCOPED_TRACE(std::string("pattern=") +
               traffic_pattern_name(cfg.traffic.pattern) +
               " workload=" + workload_kind_name(cfg.workload.kind) +
               " pipeline=" + std::to_string(static_cast<int>(
                                  cfg.router.pipeline)) +
               (cfg.traffic.identical_prbs ? " identical-prbs" : ""));
  cfg.activity_gating = true;
  const PointResult gated = measure_point(cfg, offered, kOpt);
  cfg.activity_gating = false;
  const PointResult full = measure_point(cfg, offered, kOpt);
  expect_identical(gated, full);
}

/// Per-port gating axis (docs/PERF.md Layer 5): with network-level gating
/// on, toggling RouterConfig::port_gating must be metric-invisible, and the
/// port-gated run must also match the full ungated phase walk (a port bit
/// missed by a wake hook shows up as a skipped phase action here).
void expect_port_gating_invisible(NetworkConfig cfg, double offered) {
  SCOPED_TRACE(std::string("port-gating pattern=") +
               traffic_pattern_name(cfg.traffic.pattern) +
               " workload=" + workload_kind_name(cfg.workload.kind) +
               " policy=" + std::to_string(static_cast<int>(
                                cfg.router.routing)) +
               " pipeline=" + std::to_string(static_cast<int>(
                                  cfg.router.pipeline)));
  cfg.activity_gating = true;
  cfg.router.port_gating = true;
  const PointResult ported = measure_point(cfg, offered, kOpt);
  cfg.router.port_gating = false;
  const PointResult router_only = measure_point(cfg, offered, kOpt);
  expect_identical(ported, router_only);
  cfg.activity_gating = false;
  const PointResult full = measure_point(cfg, offered, kOpt);
  expect_identical(ported, full);
}

NetworkConfig pipeline_config(PipelineMode p) {
  switch (p) {
    case PipelineMode::Proposed: return NetworkConfig::proposed(4);
    case PipelineMode::ThreeStage: return NetworkConfig::lowswing_multicast(4);
    case PipelineMode::FourStage: return NetworkConfig::baseline_4stage(4);
  }
  return NetworkConfig::proposed(4);
}

constexpr PipelineMode kPipelines[] = {
    PipelineMode::Proposed, PipelineMode::ThreeStage, PipelineMode::FourStage};

TEST(GatingEquivalence, OpenLoopAllPatternsAllPipelines) {
  constexpr TrafficPattern kPatterns[] = {
      TrafficPattern::UniformRequest, TrafficPattern::MixedPaper,
      TrafficPattern::BroadcastOnly,  TrafficPattern::Transpose,
      TrafficPattern::BitComplement,  TrafficPattern::Tornado,
      TrafficPattern::NearestNeighbor};
  for (PipelineMode p : kPipelines) {
    for (TrafficPattern pattern : kPatterns) {
      NetworkConfig cfg = pipeline_config(p);
      cfg.traffic.pattern = pattern;
      cfg.traffic.seed = 7;
      const double offered =
          pattern == TrafficPattern::BroadcastOnly ? 0.04 : 0.10;
      expect_gating_invisible(cfg, offered);
    }
  }
}

TEST(GatingEquivalence, IdenticalPrbsTimedSleep) {
  // The identical-PRBS accumulator is the one source that predicts exact
  // future fire cycles, driving the timed-wake path; cover it at a load
  // sparse enough that NICs park between bursts, for every pipeline.
  for (PipelineMode p : kPipelines) {
    for (TrafficPattern pattern :
         {TrafficPattern::UniformRequest, TrafficPattern::MixedPaper}) {
      NetworkConfig cfg = pipeline_config(p);
      cfg.traffic.pattern = pattern;
      cfg.traffic.identical_prbs = true;
      expect_gating_invisible(cfg, 0.05);
    }
  }
}

TEST(GatingEquivalence, RoutingPoliciesAllWorkloadShapes) {
  // The routing-policy axis: O1TURN's lane coin and MinimalAdaptive's
  // credit-driven port choice read only state a sleeping router cannot
  // change, so gating must stay metric-invisible under every policy --
  // including at a sparse load where components actually park, and under
  // the broadcast-heavy mix where multicasts share the ordered lane.
  constexpr RoutePolicy kPolicies[] = {
      RoutePolicy::XY, RoutePolicy::YX, RoutePolicy::O1Turn,
      RoutePolicy::MinimalAdaptive};
  for (RoutePolicy policy : kPolicies) {
    for (TrafficPattern pattern :
         {TrafficPattern::UniformRequest, TrafficPattern::MixedPaper}) {
      NetworkConfig cfg = NetworkConfig::proposed(4);
      cfg.router.routing = policy;
      cfg.traffic.pattern = pattern;
      cfg.traffic.seed = 13;
      expect_gating_invisible(cfg, 0.05);
      expect_gating_invisible(cfg, 0.30);
    }
    NetworkConfig closed = NetworkConfig::proposed(4);
    closed.router.routing = policy;
    closed.workload.kind = WorkloadKind::ClosedLoop;
    closed.workload.closed.window = 4;
    closed.workload.closed.issue_prob = 0.05;
    closed.workload.closed.think_time = 6;
    expect_gating_invisible(closed, 0.0);
  }
}

TEST(GatingEquivalence, PortGatingAllPoliciesAllWorkloads) {
  // on/off x policy x workload bit-identity for the per-port axis: sparse
  // open loop (ports genuinely park), a denser point (wake bits churn every
  // cycle), and closed loop (response traffic wakes ports the requester
  // side left idle).
  constexpr RoutePolicy kPolicies[] = {
      RoutePolicy::XY, RoutePolicy::YX, RoutePolicy::O1Turn,
      RoutePolicy::MinimalAdaptive};
  for (RoutePolicy policy : kPolicies) {
    for (TrafficPattern pattern :
         {TrafficPattern::UniformRequest, TrafficPattern::MixedPaper}) {
      NetworkConfig cfg = NetworkConfig::proposed(4);
      cfg.router.routing = policy;
      cfg.traffic.pattern = pattern;
      cfg.traffic.seed = 17;
      expect_port_gating_invisible(cfg, 0.05);
      expect_port_gating_invisible(cfg, 0.30);
    }
    NetworkConfig closed = NetworkConfig::proposed(4);
    closed.router.routing = policy;
    closed.workload.kind = WorkloadKind::ClosedLoop;
    closed.workload.closed.window = 4;
    closed.workload.closed.issue_prob = 0.05;
    closed.workload.closed.think_time = 6;
    expect_port_gating_invisible(closed, 0.0);
  }
}

TEST(GatingEquivalence, PortGatingAllPipelinesAndMulticast) {
  // The LT latch (FourStage) and multi-branch forks (multicast) hold
  // internal work on OUTPUT ports; the internal-work mask must keep those
  // ports in the sweep with no delivery wake.
  for (PipelineMode p : kPipelines) {
    NetworkConfig cfg = pipeline_config(p);
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.seed = 23;
    expect_port_gating_invisible(cfg, 0.08);
  }
  NetworkConfig bc = NetworkConfig::proposed(4);
  bc.traffic.pattern = TrafficPattern::BroadcastOnly;
  expect_port_gating_invisible(bc, 0.04);
}

TEST(GatingEquivalence, PortGatingLargeK12) {
  // Above 64 nodes the node-level wake masks are multi-word; the per-port
  // words ride on the same hooks, so cover the high-word routers too.
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.seed = 29;
  expect_port_gating_invisible(cfg, 0.02);
}

TEST(GatingEquivalence, FaultScheduleIsGatingInvisible) {
  // Fault mode (docs/FAULTS.md): apply_faults runs at the top of every
  // step in both modes, wedged routers never sleep (busy components stay
  // on the active list), and drop events land in the same cycle whether or
  // not anything was parked -- so a mid-window kill/revive schedule must
  // stay bit-invisible to gating, drops included.
  for (RoutePolicy policy :
       {RoutePolicy::MinimalAdaptive, RoutePolicy::XY}) {
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.router.routing = policy;
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.traffic.seed = 31;
    // Inside kOpt's 300+900 window: kill at 500 (with an off-tree node 5
    // under adaptive: both its up links die), revive at 900.
    cfg.fault.kill_link(500, 5, 1)
        .kill_link(500, 5, 4)
        .degrade_router(500, 10)
        .revive_link(900, 5, 1)
        .revive_link(900, 5, 4)
        .restore_router(900, 10);
    expect_gating_invisible(cfg, 0.05);
    expect_gating_invisible(cfg, 0.25);
    expect_port_gating_invisible(cfg, 0.10);
  }
}

TEST(GatingEquivalence, TelemetryProbesAreDeterministicObservers) {
  // Telemetry (docs/OBSERVABILITY.md) must be a pure observer: with the
  // probes on, stall attribution and the latency order statistics must be
  // bit-identical across gating on/off AND serial vs step_threads=4 -- the
  // stall counters are charged only over busy VCs of swept ports, so every
  // stepping mode counts the same cycles by construction. Covered across a
  // mid-window kill/revive epoch, where rerouting shifts the stall mix.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.seed = 37;
  cfg.fault.kill_link(500, 5, 1)
      .kill_link(500, 5, 4)
      .revive_link(900, 5, 1)
      .revive_link(900, 5, 4);
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = 64;
  cfg.activity_gating = true;

  const PointResult base = measure_point(cfg, 0.25, kOpt);
  // The probes saw real traffic (all-zero counters would make the equality
  // checks below vacuous), and the ranks are ordered as ranks must be.
  int64_t total_stalls = 0;
  for (int64_t s : base.stall_cycles) total_stalls += s;
  EXPECT_GT(total_stalls, 0);
  EXPECT_GT(base.completed_packets, 0);
  EXPECT_LE(base.min_latency, base.p50_latency);
  EXPECT_LE(base.p50_latency, base.p95_latency);
  EXPECT_LE(base.p95_latency, base.p99_latency);
  EXPECT_LE(base.p99_latency, base.max_latency);

  {
    SCOPED_TRACE("telemetry x gating off");
    NetworkConfig ungated = cfg;
    ungated.activity_gating = false;
    expect_identical(base, measure_point(ungated, 0.25, kOpt));
  }
  {
    SCOPED_TRACE("telemetry x step_threads=4");
    const int saved = thread_budget::total();
    thread_budget::set_total(std::max(4, saved));
    NetworkConfig threaded = cfg;
    threaded.step_threads = 4;
    const PointResult par = measure_point(threaded, 0.25, kOpt);
    thread_budget::set_total(saved);
    expect_identical(base, par);
  }
  {
    // Observer effect: switching the probes off must not move a single
    // base metric (stall rows aside -- they read zero without telemetry).
    SCOPED_TRACE("telemetry off");
    NetworkConfig off = cfg;
    off.telemetry.enabled = false;
    const PointResult dark = measure_point(off, 0.25, kOpt);
    PointResult expect_dark = base;
    for (int c = 0; c < kNumStallClasses; ++c) expect_dark.stall_cycles[c] = 0;
    expect_identical(expect_dark, dark);
  }
}

TEST(GatingEquivalence, NearSaturation) {
  // Dense traffic exercises every arbitration path with nothing asleep;
  // gating must degrade into the full walk without perturbing a thing.
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  expect_gating_invisible(cfg, 0.60);
}

TEST(GatingEquivalence, ClosedLoopAllPipelines) {
  for (PipelineMode p : kPipelines) {
    NetworkConfig cfg = pipeline_config(p);
    cfg.workload.kind = WorkloadKind::ClosedLoop;
    cfg.workload.closed.window = 4;
    cfg.workload.closed.issue_prob = 0.05;  // sparse: think-time sleeps
    cfg.workload.closed.think_time = 6;
    expect_gating_invisible(cfg, 0.0);
  }
}

TEST(GatingEquivalence, ClosedLoopSaturating) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 8;
  cfg.workload.closed.issue_prob = 1.0;
  expect_gating_invisible(cfg, 0.0);
}

TEST(GatingEquivalence, TraceReplay) {
  auto trace = std::make_shared<Trace>();
  {
    NetworkConfig rec = NetworkConfig::proposed(4);
    rec.traffic.pattern = TrafficPattern::MixedPaper;
    rec.traffic.offered_flits_per_node_cycle = 0.06;
    Network net(rec);
    net.record_trace(trace.get());
    Simulation sim(net);
    sim.run(2000);
  }
  ASSERT_FALSE(trace->records.empty());
  for (PipelineMode p : kPipelines) {
    NetworkConfig cfg = pipeline_config(p);
    cfg.workload.kind = WorkloadKind::Trace;
    cfg.workload.trace.trace = trace;
    expect_gating_invisible(cfg, 0.0);
  }
}

TEST(GatingEquivalence, LargeK12OpenLoop) {
  // 144 nodes: the awake bitmasks are now multi-word DestMasks, so gating
  // equivalence above 64 nodes checks the wake machinery's high words
  // (a one-word-truncation bug would leave nodes 64+ permanently asleep or
  // permanently awake and diverge immediately).
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.seed = 9;
  expect_gating_invisible(cfg, 0.01);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.traffic.identical_prbs = true;  // timed sleeps on high-word nodes
  expect_gating_invisible(cfg, 0.03);
}

TEST(GatingEquivalence, LargeK12ClosedLoop) {
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = 2;
  cfg.workload.closed.issue_prob = 0.02;
  cfg.workload.closed.think_time = 6;
  expect_gating_invisible(cfg, 0.0);
}

TEST(GatingEquivalence, MidRunRateChangeOverSleepingNics) {
  // Regression: set_rate while identical-PRBS NICs are parked between
  // fires. The slept-through cycles were governed by the OLD rate; the
  // replay must use it (TrafficGenerator stashes it), or the accumulator
  // phase -- and every subsequent fire -- diverges from the ungated walk.
  struct Totals {
    int64_t completed;
    double latency_sum;
    int64_t xbar;
  };
  Totals results[2];
  for (bool gating : {true, false}) {
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.activity_gating = gating;
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.identical_prbs = true;
    cfg.traffic.offered_flits_per_node_cycle = 0.02;  // fires ~100 apart
    Network net(cfg);
    Simulation sim(net);
    sim.run(517);  // mid-sleep for every NIC
    for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
      net.nic(n).source().set_rate(0.17);
    sim.run(2000);
    for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
      net.nic(n).source().set_rate(0.0);  // a second change, mid-sleep again
    sim.run(300);
    for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
      net.nic(n).source().set_rate(0.05);
    sim.run(1000);
    results[gating ? 0 : 1] =
        Totals{net.metrics().total_completed(),
               net.metrics().latency_stat().sum(),
               net.energy().xbar_traversals};
  }
  EXPECT_EQ(results[0].completed, results[1].completed);
  EXPECT_EQ(results[0].latency_sum, results[1].latency_sum);
  EXPECT_EQ(results[0].xbar, results[1].xbar);
}

TEST(GatingEquivalence, DrainReachesQuiescenceAtTheSameCycle) {
  // quiescent() is a pure function of architectural state, so a gated and
  // an ungated network must drain in exactly the same number of cycles.
  Cycle reference = -1;
  for (bool gating : {true, false}) {
    NetworkConfig cfg = NetworkConfig::proposed(4);
    cfg.activity_gating = gating;
    cfg.traffic.pattern = TrafficPattern::MixedPaper;
    cfg.traffic.offered_flits_per_node_cycle = 0.10;
    Network net(cfg);
    Simulation sim(net);
    sim.run(1000);
    for (NodeId n = 0; n < net.geom().num_nodes(); ++n)
      net.nic(n).source().set_rate(0.0);
    ASSERT_TRUE(sim.run_until([&] { return net.quiescent(); }, 10000));
    if (reference < 0)
      reference = sim.now();
    else
      EXPECT_EQ(sim.now(), reference);
  }
}

}  // namespace
}  // namespace noc

// Simulator performance microbenchmarks (google-benchmark). Not a paper
// figure -- this guards the cycle-accurate model's own speed so the sweep
// benches stay laptop-scale.
//
// Besides the console table, the run always writes BENCH_perf.json (google
// benchmark's JSON schema) into the working directory so the perf
// trajectory can be tracked across PRs. Each scenario reports:
//   items_per_second  -- node-cycles simulated per second
//   cycles_per_sec    -- Network::step calls per second (1e9 / ns-per-step)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "noc/experiment.hpp"
#include "noc/network.hpp"
#include "sim/simulation.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace noc;

constexpr int kCyclesPerIter = 100;

void run_cycles(benchmark::State& state, NetworkConfig cfg, double offered) {
  cfg.traffic.offered_flits_per_node_cycle = offered;
  Network net(cfg);
  Simulation sim(net);
  sim.run(500);  // warm the pipelines
  for (auto _ : state) {
    sim.run(kCyclesPerIter);
    benchmark::DoNotOptimize(net.metrics().total_completed());
  }
  state.SetItemsProcessed(state.iterations() * kCyclesPerIter *
                          net.geom().num_nodes());
  state.counters["cycles_per_sec"] =
      benchmark::Counter(kCyclesPerIter,
                         benchmark::Counter::kIsIterationInvariantRate);
  state.counters["completed"] =
      static_cast<double>(net.metrics().total_completed());
}

void BM_Proposed4x4Mixed(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Proposed4x4Mixed)->Unit(benchmark::kMicrosecond);

/// The fig5 curve's low-load point (identical-PRBS mixed traffic at 0.05
/// flits/node/cycle), where the router spends most cycles idle: the
/// activity-gating headline. Arg 0 = full phase walk, Arg 1 = gated;
/// compare items_per_second between the two rows for the gating speedup.
void BM_Fig5MixedLowLoad(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.identical_prbs = true;
  cfg.activity_gating = state.range(0) != 0;
  run_cycles(state, cfg, 0.05);
}
BENCHMARK(BM_Fig5MixedLowLoad)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Per-port activity gating (docs/PERF.md Layer 5) at the same low-load
/// point: both rows run with router-level gating on; Arg 0 disables the
/// per-port wake bits (an awake router sweeps all five ports), Arg 1
/// enables them (phases visit only ports with internal work or a
/// delivery). Low load is where port granularity pays -- an awake router
/// typically has traffic on one or two ports. Results are bit-identical
/// across the two rows (tests/test_gating_equivalence.cpp).
void BM_Fig5MixedLowLoadPort(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  cfg.traffic.identical_prbs = true;
  cfg.router.port_gating = state.range(0) != 0;
  run_cycles(state, cfg, 0.05);
}
BENCHMARK(BM_Fig5MixedLowLoadPort)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_Proposed4x4BroadcastSaturated(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  run_cycles(state, cfg, 0.055);
}
BENCHMARK(BM_Proposed4x4BroadcastSaturated)->Unit(benchmark::kMicrosecond);

void BM_Baseline4x4Mixed(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  run_cycles(state, cfg, 0.06);
}
BENCHMARK(BM_Baseline4x4Mixed)->Unit(benchmark::kMicrosecond);

void BM_Proposed8x8Uniform(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Proposed8x8Uniform)->Unit(benchmark::kMicrosecond);

/// Policy-dispatch overhead guard: the same scenario as
/// BM_Proposed8x8Uniform routed O1TURN, so the routing-policy subsystem's
/// hot-path additions (route-class checks, lane-aware VC allocation with
/// stamped per-lane free queues) are gated against the 10% regression
/// threshold alongside the XY rows.
void BM_Proposed8x8O1TURN(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.router.routing = RoutePolicy::O1Turn;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Proposed8x8O1TURN)->Unit(benchmark::kMicrosecond);

/// Forces a real worker budget for the duration of a benchmark so the
/// intra-network stepping rows record honest threaded numbers even when the
/// recording host reports few cores (the CI perf gate normalizes by the
/// median ratio, so only the relative spread matters).
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int total)
      : saved_(thread_budget::total()) {
    thread_budget::set_total(std::max(total, saved_));
  }
  ~ScopedThreadBudget() { thread_budget::set_total(saved_); }

 private:
  int saved_;
};

/// Saturated uniform load with domain-decomposed stepping (docs/PERF.md
/// Layer 4). Arg = step_threads: compare the Arg(4) row's items_per_second
/// against Arg(1) for the intra-network speedup; the Arg(1) row doubles as
/// the serial-overhead guard (the partition machinery is bypassed at one
/// span, so it must track BM_Proposed8x8Uniform).
void BM_Proposed8x8UniformSat(benchmark::State& state) {
  ScopedThreadBudget budget(4);
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.step_threads = static_cast<int>(state.range(0));
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  run_cycles(state, cfg, 0.35);
}
BENCHMARK(BM_Proposed8x8UniformSat)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Proposed16x16UniformSat(benchmark::State& state) {
  ScopedThreadBudget budget(4);
  NetworkConfig cfg = NetworkConfig::proposed(16);
  cfg.step_threads = static_cast<int>(state.range(0));
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  run_cycles(state, cfg, 0.20);
}
BENCHMARK(BM_Proposed16x16UniformSat)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Past the single-word DestMask boundary (144 nodes): tracks the cost of
/// the multi-word mask datapath at a radix the old uint64_t mask could not
/// represent. items_per_second is node-cycles/s, so this row is comparable
/// across radices.
void BM_Proposed12x12Uniform(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(12);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Proposed12x12Uniform)->Unit(benchmark::kMicrosecond);

/// Degraded-mesh rows (docs/FAULTS.md): uniform 8x8 with Arg dead links
/// from the seeded planner, killed at cycle 0. Fault-mode adaptive routes
/// off the surviving escape tree while xy wedges on the dead links, so
/// these rows are expected slower than their pristine twins and are
/// exempted from the CI perf gate via --allow-slower 'Degraded'.
void BM_Degraded8x8Adaptive(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.fault = make_random_fault_plan(MeshGeometry(8), /*seed=*/7,
                                     static_cast<int>(state.range(0)),
                                     /*degrades=*/0, /*kill_at=*/0,
                                     /*revive_after=*/0);
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Degraded8x8Adaptive)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_Degraded8x8XY(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  cfg.fault = make_random_fault_plan(MeshGeometry(8), /*seed=*/7,
                                     static_cast<int>(state.range(0)),
                                     /*degrades=*/0, /*kill_at=*/0,
                                     /*revive_after=*/0);
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Degraded8x8XY)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_NetworkConstruction(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Network net(NetworkConfig::proposed(k));
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(BM_NetworkConstruction)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

/// Multi-point sweep through ExperimentRunner: the workload the parallel
/// engine accelerates. Thread count is the benchmark argument (1 = serial
/// fallback), so the speedup is visible directly in the JSON.
void BM_ParallelSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  const std::vector<double> loads = {0.05, 0.10, 0.15, 0.20,
                                     0.25, 0.30, 0.35, 0.40};
  ExperimentOptions opt;
  opt.measure = MeasureOptions{.warmup = 300, .window = 700};
  opt.threads = threads;
  const ExperimentRunner runner{opt};
  for (auto _ : state) {
    auto results = runner.sweep(cfg, loads);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(loads.size()));
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)  // serial fallback
    ->Arg(std::max(2, ThreadPool::hardware_threads()))  // pooled path
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Console for humans, BENCH_perf.json for the cross-PR perf tracker:
  // default the library's file-output flags unless the caller overrides.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_perf.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int our_argc = static_cast<int>(args.size());
  benchmark::Initialize(&our_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(our_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

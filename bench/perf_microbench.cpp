// Simulator performance microbenchmarks (google-benchmark). Not a paper
// figure -- this guards the cycle-accurate model's own speed so the sweep
// benches stay laptop-scale.
#include <benchmark/benchmark.h>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace noc;

void run_cycles(benchmark::State& state, NetworkConfig cfg, double offered) {
  cfg.traffic.offered_flits_per_node_cycle = offered;
  Network net(cfg);
  Simulation sim(net);
  sim.run(500);  // warm the pipelines
  for (auto _ : state) {
    sim.run(100);
    benchmark::DoNotOptimize(net.metrics().total_completed());
  }
  state.SetItemsProcessed(state.iterations() * 100 *
                          net.geom().num_nodes());
  state.counters["completed"] =
      static_cast<double>(net.metrics().total_completed());
}

void BM_Proposed4x4Mixed(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Proposed4x4Mixed)->Unit(benchmark::kMicrosecond);

void BM_Proposed4x4BroadcastSaturated(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  run_cycles(state, cfg, 0.055);
}
BENCHMARK(BM_Proposed4x4BroadcastSaturated)->Unit(benchmark::kMicrosecond);

void BM_Baseline4x4Mixed(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::baseline_3stage(4);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;
  run_cycles(state, cfg, 0.06);
}
BENCHMARK(BM_Baseline4x4Mixed)->Unit(benchmark::kMicrosecond);

void BM_Proposed8x8Uniform(benchmark::State& state) {
  NetworkConfig cfg = NetworkConfig::proposed(8);
  cfg.traffic.pattern = TrafficPattern::UniformRequest;
  run_cycles(state, cfg, 0.10);
}
BENCHMARK(BM_Proposed8x8Uniform)->Unit(benchmark::kMicrosecond);

void BM_NetworkConstruction(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Network net(NetworkConfig::proposed(k));
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// Regenerates Table 1: theoretical limits of a k x k mesh NoC for unicast
// and broadcast traffic, as printed, plus the exact enumerated cross-checks
// discussed in DESIGN.md.
#include <cstdio>

#include "common/table.hpp"
#include "theory/mesh_limits.hpp"

using noc::Table;
namespace th = noc::theory;

int main() {
  std::printf("Table 1: Theoretical limits of a k x k mesh NoC (paper Sec 2.2)\n");
  std::printf("Loads are per unit injection rate R (flits/node/cycle).\n\n");

  Table t("Theoretical limits (formulas as printed in the paper)");
  t.set_columns({"k", "H_uni", "H_uni exact", "H_bcast", "H_bcast exact",
                 "L_bis uni (xR)", "L_ej uni (xR)", "L_bis bc (xR)",
                 "L_ej bc (xR)", "R_max uni", "R_max bcast",
                 "E_uni (Ex=El=1)", "E_bc (Ex=El=1)"});
  for (int k : {2, 3, 4, 5, 6, 7, 8, 10, 12, 16}) {
    t.add_row({Table::fmt_int(k), Table::fmt(th::unicast_avg_hops(k)),
               Table::fmt(th::unicast_avg_hops_exact(k)),
               Table::fmt(th::broadcast_avg_hops(k)),
               Table::fmt(th::broadcast_avg_hops_exact(k)),
               Table::fmt(th::unicast_bisection_load(k, 1.0)),
               Table::fmt(th::unicast_ejection_load(1.0)),
               Table::fmt(th::broadcast_bisection_load(k, 1.0)),
               Table::fmt(th::broadcast_ejection_load(k, 1.0)),
               Table::fmt(th::unicast_max_injection_rate(k), 3),
               Table::fmt(th::broadcast_max_injection_rate(k), 4),
               Table::fmt(th::unicast_energy_limit(k, 1.0, 1.0)),
               Table::fmt(th::broadcast_energy_limit(k, 1.0, 1.0))});
  }
  t.print();

  std::printf("\nPaper anchor points:\n");
  std::printf("  k=4: H_uni=%.2f (paper 3.3), H_bcast=%.2f (paper 5.5)\n",
              th::unicast_avg_hops(4), th::broadcast_avg_hops(4));
  std::printf("  k=8: H_uni=%.2f (paper 6),   H_bcast=%.2f (paper 11.5)\n",
              th::unicast_avg_hops(8), th::broadcast_avg_hops(8));
  std::printf("  Aggregate ejection limit, k=4 @64b/1GHz: %.0f Gb/s (paper 1024)\n",
              th::aggregate_throughput_limit_gbps(4));
  std::printf("\nFig 5 latency-limit lines (hops + 2 NIC cycles + serialization):\n");
  std::printf("  unicast request %.2f | unicast response %.2f | broadcast %.2f | mixed %.2f\n",
              th::zero_load_latency_limit_unicast(4, 1),
              th::zero_load_latency_limit_unicast(4, 5),
              th::zero_load_latency_limit_broadcast(4, 1),
              th::zero_load_latency_limit_mixed(4));
  return 0;
}

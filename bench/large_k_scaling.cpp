// Large-k mesh scaling: saturation throughput vs. the paper's theoretical
// limits at k in {4, 8, 12, 16} -- the question the multi-word DestMask
// datapath exists to answer (Table 1 is a function of k; the 16-node chip
// pins k=4, this sweep asks how close larger meshes get to their OWN
// limits).
//
// Uniform 1-flit request traffic: the unicast limit crosses over from
// ejection-limited (R = 1, k <= 4) to bisection-limited (R = 4/k) exactly
// where the radix sweep starts, so the "fraction of limit" column tracks
// how much of the shrinking per-node budget real routing/flow control
// delivers as k grows.
//
// Results append to BENCH_perf.json (google-benchmark JSON schema, same
// file bench_perf_microbench writes) so the cross-PR perf tracker carries
// the large-k points; the CI `large-k smoke` step runs `--short` and
// uploads the file.
//
// Flags: --warmup N --window N --threads N --out FILE
//        --short     CI-sized measurement windows (same k list)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N]\n"
        "          [--short] [--out FILE]\n",
        argv[0]);
    return 0;
  }
  const bool short_mode = args.has("short");
  const MeasureOptions opt = cli_measure_options(
      args, short_mode ? MeasureOptions{.warmup = 300, .window = 800}
                       : MeasureOptions{.warmup = 2000, .window = 6000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const std::string out_path = args.get_str("out", "BENCH_perf.json");
  if (!args.check_unused()) return 1;

  const std::vector<int> radices = {4, 8, 12, 16};
  std::vector<NetworkConfig> cfgs;
  for (int k : radices) {
    NetworkConfig cfg = NetworkConfig::proposed(k);
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfgs.push_back(cfg);
  }

  std::printf(
      "Large-k scaling: proposed router, uniform 1-flit requests, %s mode\n"
      "(saturation = offered load where latency reaches 3x zero-load)\n\n",
      short_mode ? "short" : "full");

  const auto sats = runner.find_saturations(cfgs);

  Table t("Saturation vs theoretical limit across mesh radix");
  t.set_columns({"k", "Nodes", "Zero-load lat (cyc)", "Theory H+2",
                 "Sat R (fl/node/cyc)", "Limit R", "Sat (Gb/s)",
                 "Fraction of limit"});
  std::vector<benchjson::Entry> entries;
  for (size_t i = 0; i < radices.size(); ++i) {
    const int k = radices[i];
    const auto& s = sats[i];
    const double limit_r = theory::unicast_max_injection_rate(k);
    const double frac = s.saturation_offered / limit_r;
    t.add_row({Table::fmt_int(k), Table::fmt_int(k * k),
               Table::fmt(s.zero_load_latency, 2),
               Table::fmt(theory::unicast_avg_hops_exact(k) + 2.0, 2),
               Table::fmt(s.saturation_offered, 3), Table::fmt(limit_r, 3),
               Table::fmt(s.saturation_gbps, 0), Table::fmt(frac, 3)});
    benchjson::Entry e;
    e.name = "large_k_scaling/k=" + std::to_string(k);
    // Delivered flits/cycle at saturation, at 1 GHz -> flits/second.
    e.items_per_second = s.at_saturation.recv_flits_per_cycle * 1e9;
    e.extra_key = "fraction_of_limit";
    e.extra_value = frac;
    entries.push_back(e);
  }
  t.print();

  if (benchjson::append_entries(out_path, entries))
    std::printf("\nAppended %zu large-k entries to %s\n", entries.size(),
                out_path.c_str());
  else
    std::fprintf(stderr, "\nWARNING: could not write %s\n", out_path.c_str());

  std::printf(
      "\nReading the table: past k=4 the unicast limit is bisection-bound\n"
      "(R = 4/k), so absolute Gb/s keeps growing while the per-node budget\n"
      "shrinks. The fraction-of-limit column is the scaling story: XY\n"
      "routing imbalance and finite VC/credit turnaround cost a roughly\n"
      "constant share of the theoretical envelope at every radix the\n"
      "multi-word DestMask can reach.\n");
  return 0;
}

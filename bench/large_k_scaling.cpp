// Large-k mesh scaling: saturation throughput vs. the paper's theoretical
// limits at k in {4, 8, 12, 16}, per ROUTING POLICY -- the question the
// multi-word DestMask datapath and the routing-policy subsystem exist to
// answer together (Table 1 is a function of k; the 16-node chip pins k=4
// and XY routing; this sweep asks how close larger meshes get to their OWN
// limits and how much of the residual gap is the XY share the paper blames
// on routing imbalance).
//
// Uniform 1-flit request traffic: the unicast limit crosses over from
// ejection-limited (R = 1, k <= 4) to bisection-limited (R = 4/k) exactly
// where the radix sweep starts, so the "fraction of limit" column tracks
// how much of the shrinking per-node budget each routing policy delivers
// as k grows. O1TURN and minimal-adaptive attack the XY share
// (docs/ROUTING.md); the headline comparison is their fraction-of-limit vs
// XY's at k >= 8.
//
// VC budget: the policy rows all run at 8x1 request VCs (4 per lane), NOT
// the chip's 4x1. At the fabricated budget a 2-VC lane saturates on the
// 3-cycle VC turnaround (an XY network cut to 2 request VCs loses half its
// throughput), so a 4-VC comparison measures pool granularity, not
// routing. At 8 VCs lane granularity is off the critical path and the
// residual differences are pure routing -- which is also an honest reading
// of why the chip could hardwire XY: at its tiny VC budget the
// load-balancing policies cannot pay for their lanes. The first row per
// radix keeps XY at the paper budget (emitted under the PR-4 entry name),
// so the cross-PR fraction-of-limit trajectory stays comparable.
//
// Results append to BENCH_perf.json (google-benchmark JSON schema, same
// file bench_perf_microbench writes) so the cross-PR perf tracker carries
// the large-k trajectory per policy; the CI `large-k smoke` step runs
// `--short` and uploads the file.
//
// Flags: --warmup N --window N --threads N --out FILE
//        --short     CI-sized measurement windows (same k/policy lists)
//        --all-policies  add the YX mirror (skipped by default: on uniform
//                        traffic it is XY reflected)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "campaign/grids.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "sim/thread_pool.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N]\n"
        "          [--step-threads N] [--short] [--all-policies]\n"
        "          [--out FILE]\n",
        argv[0]);
    return 0;
  }
  const bool short_mode = args.has("short");
  const MeasureOptions opt = cli_measure_options(
      args, short_mode ? MeasureOptions{.warmup = 300, .window = 800}
                       : MeasureOptions{.warmup = 2000, .window = 6000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const std::string out_path = args.get_str("out", "BENCH_perf.json");
  const int step_threads = cli_step_threads(args);
  const bool all_policies = args.has("all-policies");
  if (!args.check_unused()) return 1;

  // The point grid is campaign::large_k_manifest -- the same manifest
  // `campaign run --grid large-k` executes resumably -- so this bench and
  // the campaign engine agree on the grid. Per radix: the paper-budget XY
  // continuity row ("<k>/chip"), then the policy rows at the lane-capable
  // VC budget. --all-policies splices the YX mirror in after XY.
  campaign::Manifest manifest =
      campaign::large_k_manifest(short_mode, step_threads);
  if (all_policies) {
    for (size_t i = 0; i < manifest.points.size(); ++i) {
      if (manifest.points[i].id.rfind("/policy=xy") == std::string::npos)
        continue;
      campaign::CampaignPoint yx = manifest.points[i];
      yx.id = "k=" + std::to_string(yx.k) + "/policy=yx";
      yx.policy = RoutePolicy::YX;
      manifest.points.insert(manifest.points.begin() +
                                 static_cast<long>(++i),
                             yx);
    }
  }
  std::string err;
  const auto points = campaign::resolve_manifest(manifest, &err);
  if (points.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  // One flat batch: every (k, row) saturation search is independent, so
  // the runner fans them all across the pool at once.
  std::vector<NetworkConfig> cfgs;
  cfgs.reserve(points.size());
  for (const auto& p : points) cfgs.push_back(p.cfg);

  std::printf(
      "Large-k scaling: proposed router, uniform 1-flit requests, %s mode\n"
      "(saturation = offered load where latency reaches 3x zero-load;\n"
      " one row per routing policy per radix; step_threads=%d)\n\n",
      short_mode ? "short" : "full", step_threads);

  const auto sats = runner.find_saturations(cfgs);

  Table t("Saturation vs theoretical limit across mesh radix and policy");
  t.set_columns({"k", "Policy", "Req VCs", "Zero-load lat (cyc)",
                 "Sat R (fl/node/cyc)", "Limit R", "Sat (Gb/s)",
                 "Lat min/max (cyc)", "Fraction of limit"});
  std::vector<benchjson::Entry> entries;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    const int k = points[i].point->k;
    const bool paper_row =
        points[i].point->id.rfind("/chip") != std::string::npos;
    const auto& s = sats[i];
    const char* policy = route_policy_name(cfgs[i].router.routing);
    const double limit_r = theory::unicast_max_injection_rate(k);
    const double frac = s.saturation_offered / limit_r;
    t.add_row({Table::fmt_int(k),
               paper_row ? std::string(policy) + " (chip)"
                         : std::string(policy),
               Table::fmt_int(cfgs[i].router.vc.vcs_per_mc[0]),
               Table::fmt(s.zero_load_latency, 2),
               Table::fmt(s.saturation_offered, 3), Table::fmt(limit_r, 3),
               Table::fmt(s.saturation_gbps, 0),
               // Extremes at the saturation point (the mean alone hides the
               // queueing tail docs/OBSERVABILITY.md's histograms explain).
               Table::fmt_int(static_cast<int64_t>(
                   s.at_saturation.min_latency)) +
                   "/" +
                   Table::fmt_int(
                       static_cast<int64_t>(s.at_saturation.max_latency)),
               Table::fmt(frac, 3)});
    // The continuity row keeps the PR-4 entry name so the cross-PR
    // trajectory lines up; policy rows carry the policy in the name.
    // Delivered flits/cycle at saturation, at 1 GHz -> flits/second.
    entries.emplace_back(
        paper_row ? "large_k_scaling/k=" + std::to_string(k)
                  : "large_k_scaling/k=" + std::to_string(k) +
                        "/policy=" + policy,
        s.at_saturation.recv_flits_per_cycle * 1e9, "fraction_of_limit",
        frac);
  }
  t.print();

  // Intra-network stepping speedup (docs/PERF.md Layer 4): wall-clock of
  // the k=16 uniform saturation search, serial vs step_threads=4 on the
  // SAME search. Recorded as its own cross-PR entry; the budget is forced
  // so the threaded schedule really runs even on small recording hosts.
  // The entry carries the host context (core count, thread-budget grant) so
  // a sub-1x ratio recorded on a small machine is interpretable, and on a
  // single-core host the timed passes are skipped outright: 4 workers
  // time-slicing 1 core measures the scheduler, not the decomposition.
  {
    const unsigned cores = std::thread::hardware_concurrency();
    const int saved_budget = thread_budget::total();
    benchjson::Entry e;
    e.name = "large_k_scaling/k=16/step_threads=4_speedup";
    if (cores < 2) {
      std::printf(
          "\nk=16 step_threads=4 speedup: SKIPPED (1 hardware thread; a "
          "speedup\nratio on a time-sliced core is noise)\n");
      e.extra("skipped_single_core", 1.0);
    } else {
      thread_budget::set_total(std::max(4, saved_budget));
      NetworkConfig cfg = NetworkConfig::proposed(16);
      cfg.traffic.pattern = TrafficPattern::UniformRequest;
      double secs[2] = {0.0, 0.0};
      for (int pass = 0; pass < 2; ++pass) {
        cfg.step_threads = pass == 0 ? 1 : 4;
        const auto t0 = std::chrono::steady_clock::now();
        const auto sat = runner.find_saturations({cfg});
        const auto t1 = std::chrono::steady_clock::now();
        secs[pass] = std::chrono::duration<double>(t1 - t0).count();
        (void)sat;
      }
      thread_budget::set_total(saved_budget);
      const double speedup = secs[1] > 0.0 ? secs[0] / secs[1] : 0.0;
      std::printf(
          "\nk=16 uniform saturation-search wall-clock: serial %.2fs,"
          " step_threads=4 %.2fs -> %.2fx (%u hardware threads)\n",
          secs[0], secs[1], speedup, cores);
      e.items_per_second = secs[1] > 0.0 ? 1.0 / secs[1] : 0.0;
      e.extra("speedup_vs_serial", speedup);
    }
    e.extra("host_hw_concurrency", static_cast<double>(cores));
    e.extra("host_thread_budget", static_cast<double>(saved_budget));
    entries.push_back(e);
  }

  if (benchjson::append_entries(out_path, entries))
    std::printf("\nAppended %zu large-k entries to %s\n", entries.size(),
                out_path.c_str());
  else
    std::fprintf(stderr, "\nWARNING: could not write %s\n", out_path.c_str());

  std::printf(
      "\nReading the table: past k=4 the unicast limit is bisection-bound\n"
      "(R = 4/k), so absolute Gb/s keeps growing while the per-node budget\n"
      "shrinks. The fraction-of-limit column is the scaling story: the gap\n"
      "left by XY is part routing imbalance (what o1turn/adaptive recover\n"
      "by spreading unicasts over both dimension orders or around\n"
      "congestion) and part finite VC/credit turnaround (what remains).\n");
  return 0;
}

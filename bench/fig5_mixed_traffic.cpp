// Regenerates Fig 5: throughput-latency evaluation with mixed traffic
// (50% broadcast request / 25% unicast request / 25% unicast response) at
// 1 GHz -- proposed NoC vs the aggressive single-cycle-ST+LT baseline vs the
// theoretical mesh limits. The chip's identical-PRBS artifact is on, as in
// the measurement; the clean-generator numbers are reported alongside
// (paper: RTL sims show 0.04 cycles/hop of contention without it).
#include <cstdio>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N] [--out FILE]\n",
        argv[0]);
    return 0;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 3000, .window = 12000});
  // Fan every (config, load) point across all cores; results are
  // bit-identical to the serial sweep (each point owns its network + RNG).
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const std::string out_path = args.get_str("out", "");
  if (!args.check_unused()) return 1;
  NetworkConfig prop = NetworkConfig::proposed(4);
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  prop.traffic.pattern = base.traffic.pattern = TrafficPattern::MixedPaper;
  prop.traffic.identical_prbs = base.traffic.identical_prbs = true;

  std::printf("Fig 5: Throughput-latency with mixed traffic at 1GHz\n");
  std::printf("Traffic: 50%% bcast REQ (1 flit), 25%% uni REQ (1 flit), 25%% uni RESP (5 flits)\n\n");

  const double limit_gbps = theory::aggregate_throughput_limit_gbps(4);
  const double limit_lat = theory::zero_load_latency_limit_mixed(4);

  // Latency-throughput curve.
  std::vector<double> loads;
  const double cap = 1.0 / deliveries_per_offered_flit(prop);
  for (double f : {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.72, 0.78,
                   0.84, 0.88, 0.92})
    loads.push_back(f * cap);

  Table t("Average packet latency vs offered load (identical-PRBS NICs)");
  t.set_columns({"Offered (flits/node/cyc)", "Received (Gb/s)",
                 "Proposed lat (cyc)", "Baseline lat (cyc)", "Bypass rate",
                 "Latency reduction"});
  // One batch over both configs' curves: 2x loads.size() independent points.
  const auto curves = runner.sweep_all({prop, base}, loads);
  const auto& pc = curves[0];
  const auto& bc = curves[1];
  for (size_t i = 0; i < loads.size(); ++i) {
    const bool base_sane = bc[i].avg_latency < 1500;
    t.add_row({Table::fmt(loads[i], 4), Table::fmt(pc[i].recv_gbps, 0),
               Table::fmt(pc[i].avg_latency, 1),
               base_sane ? Table::fmt(bc[i].avg_latency, 1) : ">saturated",
               Table::fmt(pc[i].bypass_rate, 2),
               base_sane
                   ? Table::fmt_percent(1 - pc[i].avg_latency / bc[i].avg_latency)
                   : "-"});
  }
  t.print();

  // Headline numbers: both adaptive saturation searches in parallel.
  auto sats = runner.find_saturations({prop, base});
  auto sp = sats[0];
  auto sb = sats[1];

  NetworkConfig clean = prop;
  clean.traffic.identical_prbs = false;
  const double zl_clean = zero_load_latency(clean, opt);

  Table h("Fig 5 headline numbers (saturation = 3x zero-load latency)");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"Theoretical latency limit (cycles)", Table::fmt(limit_lat, 2),
             "7.42 (3.33/5.5 hops + 2 NIC cyc)"});
  h.add_row({"Zero-load latency, proposed (cycles)",
             Table::fmt(sp.zero_load_latency, 2), "~13.1 (limit + 5.7)"});
  h.add_row({"  ... gap to limit (cycles)",
             Table::fmt(sp.zero_load_latency - limit_lat, 2), "5.7"});
  h.add_row({"  ... with distinct generators",
             Table::fmt(zl_clean, 2), "limit + ~0.13 (0.04 cyc/hop)"});
  h.add_row({"Zero-load latency, baseline (cycles)",
             Table::fmt(sb.zero_load_latency, 2), "-"});
  h.add_row({"Latency reduction before saturation",
             Table::fmt_percent(1 - sp.zero_load_latency / sb.zero_load_latency),
             "48.7%"});
  h.add_row({"Saturation throughput, proposed (Gb/s)",
             Table::fmt(sp.saturation_gbps, 0), "892"});
  h.add_row({"  ... fraction of 1024 Gb/s limit",
             Table::fmt_percent(sp.saturation_gbps / limit_gbps), "87.1%"});
  h.add_row({"Saturation throughput, baseline (Gb/s)",
             Table::fmt(sb.saturation_gbps, 0), "~425"});
  h.add_row({"Throughput improvement",
             Table::fmt(sp.saturation_gbps / sb.saturation_gbps, 2) + "x",
             "2.1x"});
  h.print();

  // Headline numbers for the cross-PR tracker, through the shared
  // bench_json writer (same file/schema as the other benches) when --out
  // is given.
  if (!out_path.empty()) {
    std::vector<benchjson::Entry> entries;
    entries.emplace_back("fig5_mixed_traffic/proposed",
                         sp.at_saturation.recv_flits_per_cycle * 1e9);
    entries.back()
        .extra("saturation_gbps", sp.saturation_gbps)
        .extra("zero_load_latency_cycles", sp.zero_load_latency);
    entries.emplace_back("fig5_mixed_traffic/baseline3",
                         sb.at_saturation.recv_flits_per_cycle * 1e9);
    entries.back()
        .extra("saturation_gbps", sb.saturation_gbps)
        .extra("zero_load_latency_cycles", sb.zero_load_latency);
    if (benchjson::append_entries(out_path, entries))
      std::printf("\nAppended %zu fig5 entries to %s\n", entries.size(),
                  out_path.c_str());
    else
      std::fprintf(stderr, "\nWARNING: could not write %s\n",
                   out_path.c_str());
  }

  std::printf(
      "\nGap notes: the residual throughput gap to the limit comes from separable\n"
      "allocation (mSA-I/mSA-II) and XY load imbalance, as in the paper; our\n"
      "textbook baseline saturates somewhat higher than the authors' pre-layout\n"
      "baseline sims, so the improvement factor lands below the paper's 2.1x\n"
      "(see EXPERIMENTS.md).\n");
  return 0;
}

// Regenerates Fig 13 (Appendix D): throughput-latency evaluation with
// broadcast-only traffic at 1GHz. Performance benefits exceed the mixed
// case: the paper's point that broadcast-heavy coherence gains most.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf("usage: %s [--warmup N] [--window N] [--threads N]\n",
                argv[0]);
    return 0;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 3000, .window = 12000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  if (!args.check_unused()) return 1;
  NetworkConfig prop = NetworkConfig::proposed(4);
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  prop.traffic.pattern = base.traffic.pattern = TrafficPattern::BroadcastOnly;
  prop.traffic.identical_prbs = base.traffic.identical_prbs = true;

  std::printf("Fig 13: Throughput-latency with broadcast-only traffic at 1GHz\n\n");

  std::vector<double> loads;
  for (double f :
       {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.78, 0.84, 0.9, 0.94})
    loads.push_back(f / 16.0);  // broadcast ejection limit: R = 1/k^2

  Table t("Average packet latency vs offered load (identical-PRBS NICs)");
  t.set_columns({"Offered (flits/node/cyc)", "Received (Gb/s)",
                 "Proposed lat (cyc)", "Baseline lat (cyc)", "Bypass rate"});
  // Both curves as one parallel batch of independent points.
  const auto curves = runner.sweep_all({prop, base}, loads);
  const auto& pc = curves[0];
  const auto& bc = curves[1];
  for (size_t i = 0; i < loads.size(); ++i) {
    const bool base_sane = bc[i].avg_latency < 1500;
    t.add_row({Table::fmt(loads[i], 4), Table::fmt(pc[i].recv_gbps, 0),
               Table::fmt(pc[i].avg_latency, 1),
               base_sane ? Table::fmt(bc[i].avg_latency, 1) : ">saturated",
               Table::fmt(pc[i].bypass_rate, 2)});
  }
  t.print();

  auto sats = runner.find_saturations({prop, base});
  auto sp = sats[0];
  auto sb = sats[1];
  const double limit_gbps = theory::aggregate_throughput_limit_gbps(4);

  Table h("Fig 13 headline numbers");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"Theoretical latency limit (cycles)",
             Table::fmt(theory::zero_load_latency_limit_broadcast(4), 2),
             "7.5"});
  h.add_row({"Zero-load latency, proposed (cycles)",
             Table::fmt(sp.zero_load_latency, 2), "~13.8 (limit + 6.3)"});
  h.add_row({"Zero-load latency, baseline (cycles)",
             Table::fmt(sb.zero_load_latency, 2), "-"});
  h.add_row({"Latency reduction",
             Table::fmt_percent(1 - sp.zero_load_latency / sb.zero_load_latency),
             "55.1%"});
  h.add_row({"Saturation throughput, proposed (Gb/s)",
             Table::fmt(sp.saturation_gbps, 0), "~932"});
  h.add_row({"  ... fraction of 1024 Gb/s limit",
             Table::fmt_percent(sp.saturation_gbps / limit_gbps), "91%"});
  h.add_row({"Saturation throughput, baseline (Gb/s)",
             Table::fmt(sb.saturation_gbps, 0), "~424"});
  h.add_row({"Throughput improvement",
             Table::fmt(sp.saturation_gbps / sb.saturation_gbps, 2) + "x",
             "2.2x"});
  h.print();

  std::printf(
      "\nCompared to mixed traffic (fig5), both the latency reduction and the\n"
      "throughput improvement grow -- the paper's conclusion that benefits\n"
      "increase as traffic becomes more broadcast-intensive.\n");
  return 0;
}

// Regenerates Fig 13 (Appendix D): throughput-latency evaluation with
// broadcast-only traffic at 1GHz. Performance benefits exceed the mixed
// case: the paper's point that broadcast-heavy coherence gains most.
#include <cstdio>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N] [--out FILE]\n",
        argv[0]);
    return 0;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 3000, .window = 12000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const std::string out_path = args.get_str("out", "");
  if (!args.check_unused()) return 1;
  NetworkConfig prop = NetworkConfig::proposed(4);
  NetworkConfig base = NetworkConfig::baseline_3stage(4);
  prop.traffic.pattern = base.traffic.pattern = TrafficPattern::BroadcastOnly;
  prop.traffic.identical_prbs = base.traffic.identical_prbs = true;

  std::printf("Fig 13: Throughput-latency with broadcast-only traffic at 1GHz\n\n");

  std::vector<double> loads;
  for (double f :
       {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.78, 0.84, 0.9, 0.94})
    loads.push_back(f / 16.0);  // broadcast ejection limit: R = 1/k^2

  Table t("Average packet latency vs offered load (identical-PRBS NICs)");
  t.set_columns({"Offered (flits/node/cyc)", "Received (Gb/s)",
                 "Proposed lat (cyc)", "Baseline lat (cyc)", "Bypass rate"});
  // Both curves as one parallel batch of independent points.
  const auto curves = runner.sweep_all({prop, base}, loads);
  const auto& pc = curves[0];
  const auto& bc = curves[1];
  for (size_t i = 0; i < loads.size(); ++i) {
    const bool base_sane = bc[i].avg_latency < 1500;
    t.add_row({Table::fmt(loads[i], 4), Table::fmt(pc[i].recv_gbps, 0),
               Table::fmt(pc[i].avg_latency, 1),
               base_sane ? Table::fmt(bc[i].avg_latency, 1) : ">saturated",
               Table::fmt(pc[i].bypass_rate, 2)});
  }
  t.print();

  auto sats = runner.find_saturations({prop, base});
  auto sp = sats[0];
  auto sb = sats[1];
  const double limit_gbps = theory::aggregate_throughput_limit_gbps(4);

  Table h("Fig 13 headline numbers");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"Theoretical latency limit (cycles)",
             Table::fmt(theory::zero_load_latency_limit_broadcast(4), 2),
             "7.5"});
  h.add_row({"Zero-load latency, proposed (cycles)",
             Table::fmt(sp.zero_load_latency, 2), "~13.8 (limit + 6.3)"});
  h.add_row({"Zero-load latency, baseline (cycles)",
             Table::fmt(sb.zero_load_latency, 2), "-"});
  h.add_row({"Latency reduction",
             Table::fmt_percent(1 - sp.zero_load_latency / sb.zero_load_latency),
             "55.1%"});
  h.add_row({"Saturation throughput, proposed (Gb/s)",
             Table::fmt(sp.saturation_gbps, 0), "~932"});
  h.add_row({"  ... fraction of 1024 Gb/s limit",
             Table::fmt_percent(sp.saturation_gbps / limit_gbps), "91%"});
  h.add_row({"Saturation throughput, baseline (Gb/s)",
             Table::fmt(sb.saturation_gbps, 0), "~424"});
  h.add_row({"Throughput improvement",
             Table::fmt(sp.saturation_gbps / sb.saturation_gbps, 2) + "x",
             "2.2x"});
  h.print();

  // Headline numbers for the cross-PR tracker, through the shared
  // bench_json writer when --out is given.
  if (!out_path.empty()) {
    std::vector<benchjson::Entry> entries;
    entries.emplace_back("fig13_broadcast_traffic/proposed",
                         sp.at_saturation.recv_flits_per_cycle * 1e9);
    entries.back()
        .extra("saturation_gbps", sp.saturation_gbps)
        .extra("zero_load_latency_cycles", sp.zero_load_latency);
    entries.emplace_back("fig13_broadcast_traffic/baseline3",
                         sb.at_saturation.recv_flits_per_cycle * 1e9);
    entries.back()
        .extra("saturation_gbps", sb.saturation_gbps)
        .extra("zero_load_latency_cycles", sb.zero_load_latency);
    if (benchjson::append_entries(out_path, entries))
      std::printf("\nAppended %zu fig13 entries to %s\n", entries.size(),
                  out_path.c_str());
    else
      std::fprintf(stderr, "\nWARNING: could not write %s\n",
                   out_path.c_str());
  }

  std::printf(
      "\nCompared to mixed traffic (fig5), both the latency reduction and the\n"
      "throughput improvement grow -- the paper's conclusion that benefits\n"
      "increase as traffic becomes more broadcast-intensive.\n");
  return 0;
}

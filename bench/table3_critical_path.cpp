// Regenerates Table 3: critical path analysis of the baseline vs the
// virtual-bypassed router (pre-layout, post-layout, measured silicon).
#include <cstdio>

#include "common/table.hpp"
#include "circuits/timing_model.hpp"

using noc::Table;
namespace ckt = noc::ckt;

int main() {
  std::printf("Table 3: Critical path analysis (paper Sec 4.2)\n");
  std::printf("Both designs are critical in pipeline stage 2 (mSA-II).\n\n");

  const auto base = ckt::baseline_critical_path();
  const auto prop = ckt::proposed_critical_path();

  Table t("Critical path (ps)");
  t.set_columns({"Netlist", "Baseline router", "Virtual-bypassed router",
                 "Overhead", "Paper"});
  t.add_row({"Pre-layout", Table::fmt(base.pre_layout_ps, 0),
             Table::fmt(prop.pre_layout_ps, 0),
             Table::fmt(ckt::prelayout_overhead(), 2) + "x",
             "549 / 593 (1.08x)"});
  t.add_row({"Post-layout", Table::fmt(base.post_layout_ps, 0),
             Table::fmt(prop.post_layout_ps, 0),
             Table::fmt(ckt::postlayout_overhead(), 2) + "x",
             "658 / 793 (1.21x)"});
  t.add_row({"Measured (fabricated design)", "-",
             Table::fmt(prop.measured_ps, 0), "-", "961 (1/1.04GHz)"});
  t.print();

  std::printf("\nMax frequency of the fabricated router: %.3f GHz (paper: 1.04)\n",
              prop.fmax_ghz());

  Table c("Stage-2 path composition, virtual-bypassed router");
  c.set_columns({"Component", "Logic (ps)", "Post-layout wire adder (ps)"});
  for (const auto& comp : prop.components)
    c.add_row({comp.name, Table::fmt(comp.logic_ps, 0),
               Table::fmt(comp.wire_ps, 0)});
  c.print();

  std::printf(
      "\nReading: the lookahead priority mux costs 44ps of logic (8%% pre-layout\n"
      "overhead); after layout the long lookahead wires and bypass enables grow\n"
      "the overhead to 21%%. Silicon adds another ~21%% of non-idealities (clock\n"
      "contamination, supply droop, temperature) the design phase cannot predict.\n"
      "If cores, not routers, set the clock (Intel SCC runs routers at 2x core\n"
      "frequency), this overhead is masked (paper Sec 4.2).\n");
  return 0;
}

// Regenerates Fig 10 (Appendix C): low-swing signaling trade-off between
// reliability and energy efficiency -- 1000-run Monte Carlo of sense-amp
// offset at each voltage swing, for the 1mm 5 Gb/s tri-state RSD.
#include <cstdio>

#include "common/table.hpp"
#include "circuits/montecarlo.hpp"

using noc::Table;
namespace ckt = noc::ckt;

int main() {
  std::printf("Fig 10: Swing vs reliability vs energy (1mm, 5Gb/s tri-state RSD)\n");
  std::printf("Methodology: %d Monte-Carlo samples of N(0,sigma) sense-amp offset\n"
              "per swing (the paper runs 1000 Spice trials).\n\n",
              ckt::MonteCarloConfig{}.runs);

  ckt::MonteCarloConfig cfg;
  std::vector<double> swings = {0.05, 0.10, 0.15, 0.20, 0.25,
                                0.30, 0.35, 0.40, 0.50, 0.60};
  const auto pts = ckt::swing_tradeoff_sweep(swings, cfg);

  Table t("Swing sweep");
  t.set_columns({"Swing (mV)", "Energy (fJ/b)", "Fail prob (MC)",
                 "Fail prob (erfc)", "Margin (sigma)"});
  for (const auto& p : pts) {
    t.add_row({Table::fmt(p.swing_v * 1000, 0),
               Table::fmt(p.energy_per_bit_fj, 1),
               Table::fmt(p.failure_prob_mc, 4),
               Table::fmt(p.failure_prob_analytic, 5),
               Table::fmt(p.sigma_margin, 2)});
  }
  t.print();

  const double chosen = ckt::choose_min_swing_for_sigma(3.0, cfg);
  Table h("Design choice");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"Smallest swing with >= 3-sigma margin",
             Table::fmt(chosen * 1000, 0) + " mV", "300 mV"});
  h.add_row({"Energy at the chosen swing",
             Table::fmt(ckt::evaluate_swing(chosen, cfg).energy_per_bit_fj, 1) +
                 " fJ/b",
             "(relative scale)"});
  h.print();

  std::printf(
      "\nThe trade-off is explicit: each 50mV of swing saved cuts datapath\n"
      "energy but erodes sense-amp margin; offset-compensation circuits could\n"
      "push below 300mV at the cost of design complexity (paper Sec 4.3).\n");
  return 0;
}

// Regenerates Fig 7: measured energy efficiency of the proposed low-swing
// circuit on pseudo-random binary sequence data -- tri-state RSD vs an
// equivalent full-swing repeated link, across swing levels and link
// lengths, plus the single-cycle ST+LT data-rate ceiling.
#include <cstdio>

#include "common/prbs.hpp"
#include "common/table.hpp"
#include "circuits/rsd.hpp"

using noc::Table;
namespace ckt = noc::ckt;

int main() {
  std::printf("Fig 7: Energy efficiency of the low-swing datapath on PRBS data\n\n");

  // The chip measures with PRBS stimulus; verify the activity assumption.
  const double toggle = noc::prbs_toggle_rate(noc::Prbs::Poly::PRBS31, 4000);
  std::printf("PRBS-31 toggle rate on a 64b bus: %.3f (energy model assumes 0.5)\n\n",
              toggle);

  ckt::TriStateRsd rsd;
  ckt::FullSwingRepeatedLink fs;

  Table t("Energy per bit vs link length (300 mV swing)");
  t.set_columns({"Link (mm)", "Tri-state RSD (fJ/b)", "Full-swing rep (fJ/b)",
                 "Ratio", "RSD max rate (GHz)"});
  for (double mm : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    t.add_row({Table::fmt(mm, 1), Table::fmt(rsd.energy_per_bit_fj(mm), 1),
               Table::fmt(fs.energy_per_bit_fj(mm), 1),
               Table::fmt(ckt::fullswing_vs_lowswing_ratio(mm), 2) + "x",
               Table::fmt(rsd.max_data_rate_ghz(mm), 2)});
  }
  t.print();

  Table s("Energy per bit vs voltage swing (1mm link)");
  s.set_columns({"Swing (mV)", "RSD energy (fJ/b)", "Full-swing/RSD ratio"});
  for (double swing : {0.15, 0.20, 0.25, 0.30, 0.40, 0.50}) {
    s.add_row({Table::fmt(swing * 1000, 0),
               Table::fmt(rsd.energy_per_bit_fj(1.0, swing), 1),
               Table::fmt(ckt::fullswing_vs_lowswing_ratio(1.0, swing), 2) +
                   "x"});
  }
  s.print();

  Table h("Fig 7 / Sec 4.3 headline numbers");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"Energy ratio at 300mV, 1mm",
             Table::fmt(ckt::fullswing_vs_lowswing_ratio(1.0, 0.30), 2) + "x",
             "up to 3.2x"});
  h.add_row({"Single-cycle ST+LT max rate, 1mm",
             Table::fmt(rsd.max_data_rate_ghz(1.0), 2) + " GHz", "5.4 GHz"});
  h.add_row({"Single-cycle ST+LT max rate, 2mm",
             Table::fmt(rsd.max_data_rate_ghz(2.0), 2) + " GHz", "2.6 GHz"});
  h.print();

  std::printf(
      "\nThe tri-state RSD reduces the total charge and delay per transition\n"
      "(C*Vswing*LVDD instead of C*VDD^2), which buys both the 3.2x energy\n"
      "gain and the multi-GHz single-cycle crossbar+link traversal.\n");
  return 0;
}

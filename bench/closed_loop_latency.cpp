// Closed-loop load-window sweep: the request/response measurement the chip
// was built for but the paper could only approximate with open-loop mixes
// (Sec 4.1). A saturating ClosedLoopSource at every node issues broadcast
// probes against a bounded MSHR window; the swept window size takes the
// role offered load plays in Fig 5, and the reported curve is sustained
// miss throughput + end-to-end miss latency per window, split into the
// probe-to-owner and data-return legs (PointResult::avg_probe_latency /
// avg_response_latency) so a latency shift is attributable to the request
// or the response network.
//
// Numbers are appended to BENCH_perf.json (google-benchmark's JSON schema,
// same file bench_perf_microbench writes) so the cross-PR perf tracker
// sees the closed-loop trajectory too.
//
// Flags: --warmup N --window N --threads N --dir-latency N --out FILE
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N]\n"
        "          [--dir-latency N] [--out FILE]\n",
        argv[0]);
    return 0;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 2000, .window = 8000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const std::string out_path = args.get_str("out", "BENCH_perf.json");

  NetworkConfig cfg = NetworkConfig::proposed(4);
  const double nodes = cfg.k * cfg.k;
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.issue_prob = 1.0;  // saturating closed loop
  cfg.workload.closed.directory_latency = args.get_int("dir-latency", 2);
  if (const char* err = cfg.workload.closed.validate()) {
    std::fprintf(stderr, "%s\n", err);
    return 1;
  }
  if (!args.check_unused()) return 1;

  std::printf(
      "Closed-loop coherence sweep: broadcast probe -> owner's 5-flit data\n"
      "response, saturating MSHR window, proposed 4x4 NoC at 1 GHz\n\n");

  const std::vector<int> windows = {1, 2, 4, 8, 16, 32};
  const auto curve = runner.window_sweep(cfg, windows);

  Table t("Sustained throughput and miss latency vs outstanding window");
  t.set_columns({"Window", "Misses/node/cyc", "Miss lat avg (cyc)",
                 "Probe leg (cyc)", "Data leg (cyc)", "Miss lat max (cyc)",
                 "Net pkt lat (cyc)", "Net lat min/max", "Recv (Gb/s)",
                 "Bypass rate"});
  std::vector<benchjson::Entry> entries;
  for (const PointResult& p : curve) {
    t.add_row({Table::fmt_int(p.closed_loop_window),
               Table::fmt(p.transactions_per_cycle / nodes, 4),
               Table::fmt(p.avg_transaction_latency, 1),
               Table::fmt(p.avg_probe_latency, 1),
               Table::fmt(p.avg_response_latency, 1),
               Table::fmt(p.max_transaction_latency, 0),
               Table::fmt(p.avg_latency, 1),
               // Per-packet extremes from the always-on latency histogram
               // (docs/OBSERVABILITY.md): the min is the zero-load network
               // round trip, the max the deepest queueing excursion.
               Table::fmt_int(static_cast<int64_t>(p.min_latency)) + "/" +
                   Table::fmt_int(static_cast<int64_t>(p.max_latency)),
               Table::fmt(p.recv_gbps, 0), Table::fmt(p.bypass_rate, 2)});
    // transactions/cycle at 1 GHz -> transactions/second.
    entries.emplace_back(
        "closed_loop_latency/window=" + std::to_string(p.closed_loop_window),
        p.transactions_per_cycle * 1e9, "miss_latency_cycles",
        p.avg_transaction_latency);
  }
  t.print();

  if (benchjson::append_entries(out_path, entries))
    std::printf("\nAppended %zu closed-loop entries to %s\n", entries.size(),
                out_path.c_str());
  else
    std::fprintf(stderr, "\nWARNING: could not write %s\n", out_path.c_str());

  std::printf(
      "\nThe window-1 point is the pure round-trip: probe broadcast + "
      "directory\nlookup + 5-flit response with zero queueing. Throughput "
      "scales with the\nwindow until the probes' broadcast ejection load "
      "(k^2 flits delivered per\nprobe) pins the NICs' 1-flit/cycle drain, "
      "after which extra MSHRs only\nbuy queueing latency -- the same "
      "ejection wall as Table 1's broadcast\nlimit.\n");
  return 0;
}

// Ablation bench (DESIGN.md Sec 6): isolates the contribution of each
// microarchitectural choice the paper's design bundles together --
// lookahead bypass, partial multicast bypass, lookahead priority, the
// identical-PRBS artifact, and the VC organization around the paper's
// 4x1 REQ + 2x3 RESP design point.
#include <cstdio>

#include "common/table.hpp"
#include "noc/experiment.hpp"

using namespace noc;
using noc::Table;

namespace {

struct Variant {
  const char* label;
  NetworkConfig cfg;
};

void run(const char* title, TrafficPattern pat,
         const std::vector<Variant>& variants) {
  const MeasureOptions opt{.warmup = 2000, .window = 8000};
  Table t(title);
  t.set_columns({"Variant", "Zero-load lat (cyc)", "Sat throughput (Gb/s)",
                 "Bypass rate @sat"});
  for (auto v : variants) {
    v.cfg.traffic.pattern = pat;
    auto s = find_saturation(v.cfg, opt);
    t.add_row({v.label, Table::fmt(s.zero_load_latency, 2),
               Table::fmt(s.saturation_gbps, 0),
               Table::fmt(s.at_saturation.bypass_rate, 2)});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Ablations around the fabricated design point (4x4, 1GHz, 64b)\n\n");

  NetworkConfig D = NetworkConfig::proposed(4);
  NetworkConfig C = NetworkConfig::lowswing_multicast(4);  // no bypass
  NetworkConfig no_partial = D;
  no_partial.router.allow_partial_bypass = false;
  NetworkConfig fair_la = D;
  fair_la.router.lookahead_priority = false;
  NetworkConfig artifact = D;
  artifact.traffic.identical_prbs = true;

  run("Bypass machinery (broadcast-only traffic)",
      TrafficPattern::BroadcastOnly,
      {{"D: full design", D},
       {"no lookahead bypass (3-stage)", C},
       {"all-or-nothing multicast bypass", no_partial},
       {"buffered flits arbitrate first", fair_la},
       {"identical-PRBS NICs (chip artifact)", artifact}});

  // VC organization sweep around the paper's 4x1 + 2x3 point (Sec 3.3:
  // REQ VCs must cover the 3-cycle turnaround; RESP VCs trade throughput
  // for critical path and buffer power).
  std::vector<Variant> vcs;
  static const int req_counts[] = {2, 3, 4, 6};
  static NetworkConfig cfgs[4];
  static char labels[4][48];
  for (int i = 0; i < 4; ++i) {
    cfgs[i] = NetworkConfig::proposed(4);
    cfgs[i].router.vc.vcs_per_mc[0] = req_counts[i];
    std::snprintf(labels[i], sizeof labels[i], "%d REQ VCs x 1 deep%s",
                  req_counts[i], req_counts[i] == 4 ? " (paper)" : "");
    vcs.push_back({labels[i], cfgs[i]});
  }
  run("Request-class VC count vs the 3-cycle turnaround (broadcast-only)",
      TrafficPattern::BroadcastOnly, vcs);

  run("Mixed traffic sanity on the same variants", TrafficPattern::MixedPaper,
      {{"D: full design", D},
       {"no lookahead bypass (3-stage)", C},
       {"identical-PRBS NICs (chip artifact)", artifact}});

  // Routing-order ablation: the paper attributes part of the throughput gap
  // to "imbalance in load" from XY routing; YX is the mirror tree.
  NetworkConfig yx = D;
  yx.router.routing = RoutePolicy::YX;
  run("Dimension order under uniform unicast", TrafficPattern::UniformRequest,
      {{"XY tree (the chip)", D}, {"YX tree", yx}});
  run("Dimension order under transpose (adversarial)",
      TrafficPattern::Transpose,
      {{"XY tree (the chip)", D}, {"YX tree", yx}});

  std::printf(
      "Reading: bypass buys ~zero-load = hops+2 and higher saturation via the\n"
      "3-cycle buffer turnaround; REQ VC counts below 3 cannot cover the\n"
      "turnaround and lose broadcast throughput, matching the paper's choice\n"
      "of 4; lookahead priority costs little at these loads because the\n"
      "bypass path drains contention quickly.\n");
  return 0;
}

// Regenerates Fig 6: measured power reduction at 653 Gb/s broadcast
// delivery at 1 GHz, across the four configurations:
//   A: full-swing unicast network (3-stage, NIC-duplicated broadcasts)
//   B: low-swing unicast network
//   C: low-swing broadcast network (router multicast, no buffer bypass)
//   D: low-swing broadcast network with multicast buffer bypass (the chip)
// Configurations that cannot sustain 653 Gb/s delivered (A and B saturate
// below it) are measured near their own saturation and their *dynamic*
// power is extrapolated to 653 Gb/s worth of delivered bits; static power
// (clock, leakage, VC state) is load-independent.
#include <cstdio>

#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "power/energy_model.hpp"
#include "power/tech_params.hpp"

using namespace noc;
using namespace noc::power;
using noc::Table;

namespace {

struct ConfigRow {
  const char* label;
  NetworkConfig net;
  bool lowswing;
  PowerBreakdown power;
};

PowerBreakdown measure_at_653(const NetworkConfig& net_cfg, bool lowswing) {
  const double target_gbps = 653.0;
  NetworkConfig cfg = net_cfg;
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.identical_prbs = true;
  auto sat = find_saturation(cfg, {.warmup = 2000, .window = 8000});
  const double want_offered =
      target_gbps / 1024.0 / deliveries_per_offered_flit(cfg) * 16.0;
  const double offered = std::min(want_offered, 0.9 * sat.saturation_offered);
  auto pt = measure_point(cfg, offered, {.warmup = 3000, .window = 10000});
  PowerBreakdown p = compute_power(pt.energy, 16, calibrated_tech45(), lowswing);
  const double scale = target_gbps / pt.recv_gbps;
  p.allocators_mw *= scale;
  p.lookahead_mw *= scale;
  p.buffers_mw *= scale;
  p.datapath_mw *= scale;
  return p;
}

}  // namespace

int main() {
  std::printf("Fig 6: Power reduction at 653 Gb/s broadcast delivery, 1GHz\n\n");

  ConfigRow rows[] = {
      {"A: full-swing unicast", NetworkConfig::baseline_3stage(4), false, {}},
      {"B: low-swing unicast", NetworkConfig::baseline_3stage(4), true, {}},
      {"C: + router-level broadcast", NetworkConfig::lowswing_multicast(4),
       true, {}},
      {"D: + multicast buffer bypass", NetworkConfig::proposed(4), true, {}},
  };
  for (auto& r : rows) r.power = measure_at_653(r.net, r.lowswing);

  Table t("Power breakdown at 653 Gb/s delivered (mW)");
  t.set_columns({"Config", "Clocking(+leak)", "Router logic", "Buffers",
                 "Datapath (xbar+links)", "Total"});
  for (const auto& r : rows) {
    t.add_row({r.label, Table::fmt(r.power.clocking_segment_mw(), 1),
               Table::fmt(r.power.router_logic_mw(), 1),
               Table::fmt(r.power.buffers_mw, 1),
               Table::fmt(r.power.datapath_mw, 1),
               Table::fmt(r.power.total_mw(), 1)});
  }
  t.print();

  const auto& A = rows[0].power;
  const auto& B = rows[1].power;
  const auto& C = rows[2].power;
  const auto& D = rows[3].power;

  Table h("Fig 6 called-out reductions");
  h.set_columns({"Optimization", "Category", "This repro", "Paper"});
  h.add_row({"A->B tri-state RSD crossbars", "datapath",
             Table::fmt_percent(1 - B.datapath_mw / A.datapath_mw), "48.3%"});
  h.add_row({"B->C router-level broadcast", "router logic",
             Table::fmt_percent(1 - C.router_logic_mw() / B.router_logic_mw()),
             "13.9%"});
  h.add_row({"C->D multicast buffer bypass", "buffers",
             Table::fmt_percent(1 - D.buffers_mw / C.buffers_mw), "32.2%"});
  h.add_row({"A->D all", "total",
             Table::fmt_percent(1 - D.total_mw() / A.total_mw()), "38.2%"});
  h.add_row({"Chip power at 653 Gb/s (config D)", "total",
             Table::fmt(D.total_mw(), 1) + " mW", "427.3 mW"});
  h.print();

  std::printf(
      "\nNotes: our event-count model also credits B->C with large datapath and\n"
      "buffer savings (one tree flit replaces 15 unicasts), so the A->D total\n"
      "reduction exceeds the paper's 38.2%% -- see EXPERIMENTS.md discussion.\n"
      "Broadcasts in C/D share bandwidth until forced to fork, which is the\n"
      "mechanism behind every row of this figure (paper Sec 3.3/3.4).\n");
  return 0;
}

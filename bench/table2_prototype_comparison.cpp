// Regenerates Table 2: comparison of mesh NoC chip prototypes (Teraflops,
// TILE64, SWIFT, this work as 8x8, this work 4x4).
#include <cstdio>

#include "common/table.hpp"
#include "theory/chip_models.hpp"

using noc::Table;
namespace th = noc::theory;

int main() {
  std::printf("Table 2: Comparison of mesh NoC chip prototypes (paper Sec 2.3)\n\n");

  const auto chips = th::table2_chips();
  Table t("Prototype comparison (R = injection rate/core)");
  t.set_columns({"Metric", chips[0].name, chips[1].name, chips[2].name,
                 chips[3].name, chips[4].name});
  auto row = [&](const char* name, auto getter, int precision = 1) {
    std::vector<std::string> cells{name};
    for (const auto& c : chips) cells.push_back(Table::fmt(getter(c), precision));
    t.add_row(cells);
  };
  {
    std::vector<std::string> cells{"Clock frequency (GHz)"};
    for (const auto& c : chips) cells.push_back(Table::fmt(c.clock_ghz, 3));
    t.add_row(cells);
  }
  row("Delay per hop, best (ns)",
      [](const th::ChipModel& c) { return c.delay_per_hop_min_ns(); }, 2);
  row("Delay per hop, worst (ns)",
      [](const th::ChipModel& c) { return c.delay_per_hop_max_ns(); }, 2);
  row("Zero-load latency, unicast (cycles)",
      [](const th::ChipModel& c) { return c.zero_load_unicast_cycles(); });
  row("Zero-load latency, broadcast (cycles)",
      [](const th::ChipModel& c) { return c.zero_load_broadcast_cycles(); });
  row("Bisection bandwidth (Gb/s)",
      [](const th::ChipModel& c) { return c.bisection_bandwidth_gbps(); });
  row("Channel load, unicast (xR)",
      [](const th::ChipModel& c) { return c.channel_load_unicast_coeff(); }, 0);
  row("Channel load, broadcast (xR)",
      [](const th::ChipModel& c) { return c.channel_load_broadcast_coeff(); },
      0);
  t.print();

  std::printf(
      "\nPaper values for reference:\n"
      "  zero-load unicast:   30 / 9 / 12 / 6 / 3.3 cycles\n"
      "  zero-load broadcast: 120.5 / 77.5 / 86 / 11.5 / 5.5 cycles\n"
      "  bisection bandwidth: 1560 / 937.5 / 112.5 / 512 / 256 Gb/s\n"
      "  channel load uni/bc: 64R,4096R / 64R,4096R / 64R,4096R / 64R,64R / 16R,16R\n"
      "Known deviations (DESIGN.md): TILE64 broadcast 80.25 vs 77.5 (we model\n"
      "1.5 cycles/hop uniformly) and TILE64 bisection 960 vs 937.5 (we use the\n"
      "nominal 750 MHz clock).\n");
  return 0;
}

// Regenerates Table 4: area comparison of full-swing vs low-swing crossbar
// and router, plus the ~5% virtual-bypassing overhead.
#include <cstdio>

#include "common/table.hpp"
#include "circuits/area_model.hpp"

using noc::Table;
namespace ckt = noc::ckt;

int main() {
  std::printf("Table 4: Area comparison with full-swing signaling (paper Sec 4.3)\n\n");

  const auto r = ckt::router_area();
  Table t("Area (um^2)");
  t.set_columns({"Block", "This model", "Paper", "Overhead"});
  t.add_row({"Synthesized full-swing crossbar",
             Table::fmt(r.xbar_fullswing_um2, 0), "26,840", "1.0x"});
  t.add_row({"Proposed low-swing crossbar", Table::fmt(r.xbar_lowswing_um2, 0),
             "83,200", Table::fmt(r.xbar_overhead(), 2) + "x (paper 3.1x)"});
  t.add_row({"Router with full-swing crossbar",
             Table::fmt(r.router_fullswing_um2, 0), "227,230", "1.0x"});
  t.add_row({"Router with low-swing crossbar",
             Table::fmt(r.router_lowswing_um2, 0), "318,600",
             Table::fmt(r.router_overhead(), 2) + "x (paper 1.4x)"});
  t.print();

  std::printf(
      "\nVirtual-bypassing logic: %.0f um^2 = %.1f%% of the baseline router\n"
      "(paper Sec 1: ~5%% area overhead).\n",
      r.bypass_overhead_um2,
      100.0 * r.bypass_overhead_um2 / r.router_fullswing_um2);
  std::printf(
      "The 3.1x crossbar overhead (differential wires + noise-driven layout\n"
      "restrictions) dilutes to 1.4x at the router, and would dilute further\n"
      "against a full tile with core and caches (paper Sec 4.3).\n");
  return 0;
}

// Regenerates Fig 8: ORION 2.0 vs post-layout vs measured power, for the
// baseline and the proposed NoC at 653 Gb/s / 1.1V / 1GHz. All three
// estimator families consume identical simulator event counts, exactly as
// the paper drives all three with the same workload.
#include <cstdio>

#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "power/estimators.hpp"

using namespace noc;
using namespace noc::power;
using noc::Table;

namespace {

/// Event counts for delivering 653 Gb/s of broadcast traffic. A design that
/// saturates below that (the unicast baseline) is measured near its own
/// saturation and its event counts are scaled to the common workload, so
/// every estimator sees the same delivered bits for both designs.
EnergyCounters events_at_653(NetworkConfig cfg) {
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  cfg.traffic.identical_prbs = true;
  auto sat = find_saturation(cfg, {.warmup = 2000, .window = 8000});
  const double want =
      653.0 / 1024.0 / deliveries_per_offered_flit(cfg) * 16.0;
  const double offered = std::min(want, 0.9 * sat.saturation_offered);
  auto pt = measure_point(cfg, offered, {.warmup = 3000, .window = 10000});
  const double s = 653.0 / pt.recv_gbps;
  EnergyCounters e = pt.energy;
  auto scale = [s](int64_t& v) {
    v = static_cast<int64_t>(static_cast<double>(v) * s + 0.5);
  };
  scale(e.xbar_traversals);
  scale(e.link_traversals);
  scale(e.nic_link_traversals);
  scale(e.buffer_writes);
  scale(e.buffer_reads);
  scale(e.sa1_arbitrations);
  scale(e.sa2_arbitrations);
  scale(e.vc_allocations);
  scale(e.lookaheads_sent);
  return e;
}

}  // namespace

int main() {
  std::printf("Fig 8: Power estimates vs measurements (653 Gb/s, 1.1V, 1GHz)\n\n");

  const EnergyCounters base_ev = events_at_653(NetworkConfig::baseline_3stage(4));
  const EnergyCounters prop_ev = events_at_653(NetworkConfig::proposed(4));

  const auto cmp = compare_all_estimators(base_ev, /*baseline_lowswing=*/false,
                                          prop_ev, /*proposed_lowswing=*/true,
                                          16);
  const double measured_base = cmp[2].baseline.total_mw();
  const double measured_prop = cmp[2].proposed.total_mw();

  Table t("Total power by estimator (mW)");
  t.set_columns({"Estimator", "Baseline", "Proposed", "Proposed/measured",
                 "Relative reduction"});
  for (const auto& c : cmp) {
    t.add_row({estimator_name(c.which), Table::fmt(c.baseline.total_mw(), 0),
               Table::fmt(c.proposed.total_mw(), 0),
               Table::fmt(c.proposed.total_mw() / measured_prop, 2) + "x",
               Table::fmt_percent(c.relative_reduction())});
  }
  t.print();

  Table d("Category detail, proposed design (mW)");
  d.set_columns({"Estimator", "Clocking", "Logic+buffers", "Datapath"});
  for (const auto& c : cmp) {
    d.add_row({estimator_name(c.which),
               Table::fmt(c.proposed.clocking_segment_mw(), 0),
               Table::fmt(c.proposed.logic_and_buffer_segment_mw(), 0),
               Table::fmt(c.proposed.datapath_mw, 0)});
  }
  d.print();

  Table h("Fig 8 / Sec 4.4 headline numbers");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"ORION absolute over-estimation",
             Table::fmt(cmp[0].proposed.total_mw() / measured_prop, 1) + "x",
             "4.8-5.3x"});
  h.add_row({"Post-layout deviation",
             Table::fmt(cmp[1].proposed.total_mw() / measured_prop, 2) + "x",
             "1.06-1.13x"});
  h.add_row({"ORION relative reduction",
             Table::fmt_percent(cmp[0].relative_reduction()), "~32%"});
  h.add_row({"Post-layout relative reduction",
             Table::fmt_percent(cmp[1].relative_reduction()), "~34%"});
  h.add_row({"Measured relative reduction",
             Table::fmt_percent(cmp[2].relative_reduction()), "38%"});
  h.print();

  (void)measured_base;
  std::printf(
      "\nReading: ORION's assumed transistor sizes dwarf the chip's custom\n"
      "circuits, so its absolute numbers are unusable for power budgets, yet\n"
      "its relative ranking of designs holds -- fine for early design-space\n"
      "exploration. Post-layout tracks measurements closely but needs complete\n"
      "extracted netlists and days of simulation (paper Sec 4.4).\n");
  return 0;
}

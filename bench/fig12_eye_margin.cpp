// Regenerates Fig 12 (Appendix C): simulated vertical eye at 2.5 Gb/s under
// wire-resistance variation for the two 2mm-LT configurations: 1mm-repeated
// vs 2mm-repeaterless tri-state RSD.
#include <cstdio>

#include "common/table.hpp"
#include "circuits/eye.hpp"

using noc::Table;
namespace ckt = noc::ckt;

int main() {
  std::printf("Fig 12: Repeated vs repeaterless low-swing 2mm link traversal\n");
  std::printf("(2.5 Gb/s, 300 mV launched swing, vertical eye vs wire-R variation)\n\n");

  std::vector<double> rvar = {-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const auto pts = ckt::eye_vs_resistance_variation(rvar);

  Table t("Vertical eye (mV)");
  t.set_columns({"Wire-R variation", "1mm-repeated", "2mm-repeaterless",
                 "Margin advantage"});
  for (const auto& p : pts) {
    t.add_row({Table::fmt_percent(p.r_variation, 0),
               Table::fmt(p.eye_repeated_mv, 1),
               Table::fmt(p.eye_repeaterless_mv, 1),
               Table::fmt(p.eye_repeated_mv - p.eye_repeaterless_mv, 1) +
                   " mV"});
  }
  t.print();

  const double e_rep = ckt::repeated_energy_per_bit_fj();
  const double e_dir = ckt::repeaterless_energy_per_bit_fj();
  Table h("Trade-off summary");
  h.set_columns({"Metric", "This repro", "Paper"});
  h.add_row({"Repeated energy premium",
             Table::fmt_percent((e_rep - e_dir) / e_rep), "28% more energy"});
  h.add_row({"Repeated latency premium",
             Table::fmt_int(ckt::repeated_extra_cycles()) + " cycle",
             "1 additional cycle"});
  h.add_row({"Repeated eye at nominal R",
             Table::fmt(pts[3].eye_repeated_mv, 0) + " mV", "larger"});
  h.add_row({"Repeaterless eye at nominal R",
             Table::fmt(pts[3].eye_repeaterless_mv, 0) + " mV", "smaller"});
  h.print();

  std::printf(
      "\nReading: re-amplifying at 1mm restores the full swing mid-flight, so\n"
      "the repeated link tolerates much more wire-R variation -- but costs ~28%%\n"
      "more energy and one extra cycle (paper App C, Fig 12).\n");
  return 0;
}

#pragma once
// Shared helper for binaries that append custom rows into BENCH_perf.json
// (google-benchmark's JSON schema, the file bench_perf_microbench writes):
// closed_loop_latency, large_k_scaling, the fig table benches and the
// campaign gather step all feed the cross-PR perf tracker through this.
// Header-only on purpose -- bench/ binaries link only noc_core.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace noc::benchjson {

/// One appended benchmark row: items_per_second plus any number of
/// bench-specific extra metrics (named so the JSON stays self-describing).
struct Entry {
  std::string name;
  double items_per_second = 0;
  std::vector<std::pair<std::string, double>> extras;

  Entry() = default;
  Entry(std::string name_, double ips) : name(std::move(name_)),
                                         items_per_second(ips) {}
  Entry(std::string name_, double ips, std::string extra_key,
        double extra_value)
      : name(std::move(name_)), items_per_second(ips) {
    extras.emplace_back(std::move(extra_key), extra_value);
  }

  Entry& extra(std::string key, double value) {
    extras.emplace_back(std::move(key), value);
    return *this;
  }
};

inline std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string s;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, n);
  std::fclose(f);
  return s;
}

inline std::string format_entries(const std::vector<Entry>& entries) {
  std::string out;
  char line[320];
  for (size_t i = 0; i < entries.size(); ++i) {
    std::snprintf(line, sizeof line,
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"run_type\": \"iteration\",\n"
                  "      \"items_per_second\": %.6e",
                  entries[i].name.c_str(), entries[i].items_per_second);
    out += line;
    for (const auto& [key, value] : entries[i].extras) {
      std::snprintf(line, sizeof line, ",\n      \"%s\": %.6f", key.c_str(),
                    value);
      out += line;
    }
    out += "\n    }";
    out += i + 1 < entries.size() ? ",\n" : "\n";
  }
  return out;
}

/// Append entries into the existing file's "benchmarks" array (the array is
/// the last bracketed region in google-benchmark's output), or create a
/// minimal file when absent/unparseable.
inline bool append_entries(const std::string& path,
                           const std::vector<Entry>& entries) {
  std::string body = read_file(path);
  const size_t close = body.rfind(']');
  std::string out;
  if (close == std::string::npos) {
    out = "{\n  \"context\": {},\n  \"benchmarks\": [\n" +
          format_entries(entries) + "  ]\n}\n";
  } else {
    // Comma only if the array already holds an entry.
    size_t prev = close;
    while (prev > 0 && (body[prev - 1] == ' ' || body[prev - 1] == '\n' ||
                        body[prev - 1] == '\t' || body[prev - 1] == '\r'))
      --prev;
    const bool empty_array = prev > 0 && body[prev - 1] == '[';
    out = body.substr(0, close) + (empty_array ? "\n" : ",\n") +
          format_entries(entries) + body.substr(close);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(out.data(), 1, out.size(), f);
  return std::fclose(f) == 0;
}

}  // namespace noc::benchjson

// Regenerates Fig 11 (Appendix C): measured dynamic power of the 1b 5x5
// tri-state-RSD crossbar with 1mm links vs multicast count -- the linear
// growth that makes router-level multicast energy-efficient.
#include <cstdio>

#include "common/table.hpp"
#include "circuits/xbar_circuit.hpp"

using noc::Table;
namespace ckt = noc::ckt;

int main() {
  std::printf("Fig 11: 1b 5x5 tri-state RSD crossbar dynamic power vs multicast count\n");
  std::printf("(1mm links, 5 Gb/s, 300 mV swing)\n\n");

  Table t("Dynamic power vs simultaneously driven outputs");
  t.set_columns({"Cast", "Power (uW)", "Increment (uW)",
                 "Energy per delivered bit (fJ)"});
  double prev = 0;
  for (int n : {1, 2, 3, 4, 5}) {
    const double p = ckt::xbar_dynamic_power_uw(n);
    const char* label = n == 1 ? "unicast" : (n == 5 ? "broadcast" : "");
    t.add_row({Table::fmt_int(n) + std::string(label[0] ? " (" : "") +
                   label + std::string(label[0] ? ")" : ""),
               Table::fmt(p, 1), n == 1 ? "-" : Table::fmt(p - prev, 1),
               Table::fmt(ckt::xbar_energy_per_delivered_bit_fj(n), 1)});
    prev = p;
  }
  t.print();

  const double inc21 =
      ckt::xbar_dynamic_power_uw(2) - ckt::xbar_dynamic_power_uw(1);
  const double inc54 =
      ckt::xbar_dynamic_power_uw(5) - ckt::xbar_dynamic_power_uw(4);
  std::printf(
      "\nLinearity check: +%.1f uW per extra output at 2-cast, +%.1f at 5-cast\n"
      "(the tri-state RSD disconnects undriven vertical wires, so each extra\n"
      "copy costs exactly one vertical wire + link -- paper Sec 3.4/App C).\n"
      "Energy per *delivered* bit falls with fanout as the input wire\n"
      "amortizes: multicast in the crossbar beats replicated unicasts.\n",
      inc21, inc54);
  return 0;
}

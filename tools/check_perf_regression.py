#!/usr/bin/env python3
"""Compare a bench_perf_microbench run against the committed baseline.

Usage:
    check_perf_regression.py CURRENT.json BASELINE.json [--threshold 0.10]

Both files use the google-benchmark JSON schema (bench_perf_microbench
always writes one, see bench/perf_microbench.cpp). For every benchmark
present in both files that reports items_per_second, the current value must
be no more than THRESHOLD below the baseline; anything faster, or any
benchmark missing from the baseline (a newly added scenario), passes.

Exit codes (CI distinguishes them): 0 = pass, 1 = regression (or a
benchmark vanished from the current run), 2 = usage error, 3 = the
baseline file is missing/unreadable or holds no usable entries -- refresh
bench/BENCH_perf_baseline.json rather than hunting a phantom regression.

Benchmarks whose name matches --skip (default: the thread-scaling
ParallelSweep rows, meaningless across machines with different core counts)
are ignored.

With --normalize, every current/baseline ratio is divided by the MEDIAN
ratio over the benchmarks common to both files. That cancels the absolute
speed difference between the baseline machine and the current one, so the
gate detects a *scenario* regressing relative to the rest of the suite --
the realistic way a datapath change slips through -- and stays meaningful
when CI runner hardware differs from the machine that recorded the
baseline. The median (unlike a mean) is unmoved when a minority of
benchmarks improves a lot, so a genuinely beneficial PR does not turn
unrelated rows red. (A uniform slowdown across every scenario cancels out
too; catch those by refreshing the baseline on same-class hardware and
running without --normalize.)

The committed baseline (bench/BENCH_perf_baseline.json) should be refreshed
whenever the CI runner hardware class changes or a PR deliberately shifts
the perf envelope: rerun bench_perf_microbench on the target machine and
commit the JSON it writes.
"""

import argparse
import json
import re
import sys


def load_items_per_second(path, skip_re):
    """name -> items_per_second. With --benchmark_repetitions the file holds
    per-repetition rows plus aggregates; the mean aggregate wins, else the
    per-repetition values are averaged. Non-mean aggregates (stddev, median,
    and especially cv, whose items_per_second is a dimensionless ratio that
    would read as a catastrophic regression) are ignored."""
    with open(path) as f:
        data = json.load(f)
    sums, counts, means = {}, {}, {}
    for b in data.get("benchmarks", []):
        name = b.get("run_name", b.get("name", ""))
        ips = b.get("items_per_second")
        if ips is None or skip_re.search(name):
            continue
        # Belt and braces for older google-benchmark versions that tag
        # aggregates only through the name suffix, not run_type.
        if name.endswith(("_cv", "_mean", "_median", "_stddev")):
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "mean":
                means[name] = float(ips)
        else:
            sums[name] = sums.get(name, 0.0) + float(ips)
            counts[name] = counts.get(name, 0) + 1
    out = {name: s / counts[name] for name, s in sums.items()}
    out.update(means)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional regression (default 0.10)")
    ap.add_argument("--skip", default=r"ParallelSweep",
                    help="regex of benchmark names to ignore")
    ap.add_argument("--normalize", action="store_true",
                    help="compare machine-normalized ratios (see module doc)")
    ap.add_argument("--allow-slower", default=None, metavar="REGEX",
                    help="regex of benchmarks expected slower than baseline: "
                         "matching rows are reported but exempt from the "
                         "threshold and excluded from the --normalize median "
                         "(e.g. the Degraded fault rows, docs/FAULTS.md)")
    args = ap.parse_args()

    skip_re = re.compile(args.skip)
    allow_re = re.compile(args.allow_slower) if args.allow_slower else None
    try:
        current = load_items_per_second(args.current, skip_re)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read current run {args.current}: {e}")
        return 2
    try:
        baseline = load_items_per_second(args.baseline, skip_re)
    except (OSError, json.JSONDecodeError) as e:
        # Distinct exit code: a lost baseline is a repo/CI plumbing problem,
        # not a perf regression, and the fix (refresh the baseline) differs.
        print(f"error: cannot read baseline {args.baseline}: {e}")
        return 3

    if not current:
        print(f"error: no items_per_second entries in {args.current}")
        return 2
    if not baseline:
        print(f"error: no items_per_second entries in baseline "
              f"{args.baseline}; refresh bench/BENCH_perf_baseline.json "
              f"(docs/PERF.md 'Refreshing the perf baseline')")
        return 3

    if args.normalize:
        common = sorted(n for n in set(current) & set(baseline)
                        if baseline[n] > 0
                        and not (allow_re and allow_re.search(n)))
        if not common:
            print("error: --normalize needs benchmarks common to both files")
            return 2
        ratios = sorted(current[n] / baseline[n] for n in common)
        mid = len(ratios) // 2
        median = (ratios[mid] if len(ratios) % 2
                  else 0.5 * (ratios[mid - 1] + ratios[mid]))
        # Scale the baseline to this machine's speed: a benchmark now fails
        # only when it lost ground relative to the suite's median ratio.
        for name in baseline:
            baseline[name] *= median
        print(f"(baseline scaled by the median current/baseline ratio "
              f"{median:.3f} over {len(common)} common benchmarks)")

    failures = []
    print(f"{'benchmark':45s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None or base <= 0:
            print(f"{name:45s} {'(new)':>12s} {cur:12.3e}       -")
            continue
        ratio = cur / base
        flag = ""
        if ratio < 1.0 - args.threshold:
            if allow_re and allow_re.search(name):
                flag = "  (slower, allowed)"
            else:
                failures.append((name, base, cur, ratio))
                flag = "  <-- REGRESSION"
        print(f"{name:45s} {base:12.3e} {cur:12.3e} {ratio:6.2f}x{flag}")

    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"{name:45s} present in baseline, MISSING from current run")

    status = 0
    if missing:
        # A silently vanished benchmark is exactly how a regression gate
        # stops gating: fail loudly instead of shrugging (and instead of
        # the KeyError a naive current[name] lookup would raise).
        print(f"\nFAIL: {len(missing)} benchmark(s) present in the baseline "
              f"are missing from the current run: {', '.join(missing)}.\n"
              f"If they were deliberately removed or renamed, refresh "
              f"bench/BENCH_perf_baseline.json (see docs/PERF.md "
              f"'Refreshing the perf baseline').")
        status = 1
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} in items_per_second.")
        status = 1
    if status == 0:
        print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}.")
    return status


if __name__ == "__main__":
    sys.exit(main())

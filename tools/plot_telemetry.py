#!/usr/bin/env python3
"""Render the telemetry artifacts written by `campaign telemetry` (or any
Telemetry exporter run -- docs/OBSERVABILITY.md).

usage: plot_telemetry.py DIR [--out OUTDIR]

DIR must hold stalls.csv / links.csv / timeseries.csv as written by the
exporters. With matplotlib installed this renders PNGs into OUTDIR
(default: DIR): a per-router stall-mix heatmap (one panel per stall
class), a per-link load heatmap, and the time series with fault markers.
Without matplotlib it falls back to ASCII heatmaps and a sparkline on
stdout -- same data, no dependency to install.
"""

import csv
import os
import sys

STALL_CLASSES = ["buffer_empty", "no_free_vc", "no_credit", "lost_sa",
                 "lost_va"]
LINK_PORTS = ["east", "west", "north", "south", "local"]


def load_grid_csv(path, value_cols):
    """Rows of node,x,y,<value_cols> -> (kx, ky, {col: {(x, y): value}})."""
    grids = {c: {} for c in value_cols}
    kx = ky = 0
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            if row["node"].startswith("#"):
                continue
            x, y = int(row["x"]), int(row["y"])
            kx, ky = max(kx, x + 1), max(ky, y + 1)
            for c in value_cols:
                grids[c][(x, y)] = int(row[c])
    return kx, ky, grids


def load_timeseries(path):
    """timeseries.csv -> (samples as dict lists, fault markers).

    Fault markers ride as '# fault,<cycle>,<kind>,<a>,<b>' comment lines.
    """
    samples, faults = [], []
    with open(path, newline="") as f:
        header = None
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("# fault,"):
                _, cycle, kind, a, b = line.split(",")
                faults.append({"cycle": int(cycle), "kind": kind,
                               "a": int(a), "b": int(b)})
                continue
            if header is None:
                header = line.split(",")
                continue
            vals = line.split(",")
            samples.append({h: int(v) for h, v in zip(header, vals)})
    return samples, faults


# ---------------------------------------------------------------------------
# Text fallback.

SHADES = " .:-=+*#%@"


def ascii_heatmap(kx, ky, grid, title):
    print(f"\n{title}")
    peak = max(grid.values(), default=0)
    if peak == 0:
        print("  (all zero)")
        return
    # y increases upward (mesh coordinates), so print top row first.
    for y in range(ky - 1, -1, -1):
        row = ""
        for x in range(kx):
            v = grid.get((x, y), 0)
            row += SHADES[min(len(SHADES) - 1, v * (len(SHADES) - 1) // peak)]
        print(f"  y={y:<2d} {row}")
    print(f"       peak={peak}")


def sparkline(values):
    peak = max(values, default=0)
    if peak == 0:
        return "(flat)"
    return "".join(
        SHADES[min(len(SHADES) - 1, v * (len(SHADES) - 1) // peak)]
        for v in values)


def render_text(kx, ky, stalls, links, samples, faults):
    totals = {c: sum(stalls[c].values()) for c in STALL_CLASSES}
    print("stall attribution (non-productive busy-VC cycles, by class):")
    for c in STALL_CLASSES:
        print(f"  {c:<14s} {totals[c]:>12d}")
    combined = {}
    for c in STALL_CLASSES:
        for xy, v in stalls[c].items():
            combined[xy] = combined.get(xy, 0) + v
    ascii_heatmap(kx, ky, combined, "per-router total stalls")
    for c in STALL_CLASSES:
        if totals[c] > 0:
            ascii_heatmap(kx, ky, stalls[c], f"per-router {c}")

    mesh_load = {}
    for p in ("east", "west", "north", "south"):
        for xy, v in links[p].items():
            mesh_load[xy] = mesh_load.get(xy, 0) + v
    ascii_heatmap(kx, ky, mesh_load, "per-router mesh-link flits (E+W+N+S)")
    ascii_heatmap(kx, ky, links["local"], "per-router ejection flits")

    if samples:
        delivered = [s["delivered_flits"] for s in samples]
        deltas = [b - a for a, b in zip(delivered, delivered[1:])]
        print("\ndelivered flits per sample interval:")
        print("  " + sparkline(deltas))
        open_pkts = [s["open_packets"] for s in samples]
        print("open packets:")
        print("  " + sparkline(open_pkts))
        for fl in faults:
            print(f"  fault @ cycle {fl['cycle']}: {fl['kind']} "
                  f"{fl['a']}-{fl['b']}")


# ---------------------------------------------------------------------------
# matplotlib rendering.

def render_png(kx, ky, stalls, links, samples, faults, outdir, plt):
    def grid_array(grid):
        return [[grid.get((x, y), 0) for x in range(kx)]
                for y in range(ky)]

    fig, axes = plt.subplots(1, len(STALL_CLASSES),
                             figsize=(4 * len(STALL_CLASSES), 4))
    for ax, c in zip(axes, STALL_CLASSES):
        im = ax.imshow(grid_array(stalls[c]), origin="lower",
                       cmap="inferno")
        ax.set_title(c)
        fig.colorbar(im, ax=ax, shrink=0.7)
    fig.suptitle("per-router stall attribution (cycles)")
    fig.tight_layout()
    path = os.path.join(outdir, "stalls_heatmap.png")
    fig.savefig(path, dpi=120)
    print(f"wrote {path}")

    fig, axes = plt.subplots(1, len(LINK_PORTS),
                             figsize=(4 * len(LINK_PORTS), 4))
    for ax, p in zip(axes, LINK_PORTS):
        im = ax.imshow(grid_array(links[p]), origin="lower", cmap="viridis")
        ax.set_title(f"{p} link flits")
        fig.colorbar(im, ax=ax, shrink=0.7)
    fig.suptitle("per-link load")
    fig.tight_layout()
    path = os.path.join(outdir, "links_heatmap.png")
    fig.savefig(path, dpi=120)
    print(f"wrote {path}")

    if samples:
        cycles = [s["cycle"] for s in samples]
        fig, ax = plt.subplots(figsize=(10, 5))
        ax.plot(cycles, [s["injected_flits"] for s in samples],
                label="injected flits")
        ax.plot(cycles, [s["delivered_flits"] for s in samples],
                label="delivered flits")
        ax2 = ax.twinx()
        ax2.plot(cycles, [s["open_packets"] for s in samples], "g--",
                 label="open packets")
        for fl in faults:
            ax.axvline(fl["cycle"], color="r", linestyle=":",
                       label=f"{fl['kind']} {fl['a']}-{fl['b']}")
        ax.set_xlabel("cycle")
        ax.legend(loc="upper left")
        ax2.legend(loc="lower right")
        fig.tight_layout()
        path = os.path.join(outdir, "timeseries.png")
        fig.savefig(path, dpi=120)
        print(f"wrote {path}")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 1 or "--help" in argv or "-h" in argv:
        print(__doc__.strip())
        return 2
    indir = args[0]
    outdir = indir
    if "--out" in argv:
        outdir = argv[argv.index("--out") + 1]
        os.makedirs(outdir, exist_ok=True)

    stalls_path = os.path.join(indir, "stalls.csv")
    links_path = os.path.join(indir, "links.csv")
    ts_path = os.path.join(indir, "timeseries.csv")
    for p in (stalls_path, links_path):
        if not os.path.exists(p):
            print(f"missing {p} (run `campaign telemetry --out-dir {indir}` "
                  "first)", file=sys.stderr)
            return 1

    kx, ky, stalls = load_grid_csv(stalls_path, STALL_CLASSES)
    _, _, links = load_grid_csv(links_path, LINK_PORTS)
    samples, faults = ([], [])
    if os.path.exists(ts_path):
        samples, faults = load_timeseries(ts_path)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available: text rendering\n")
        render_text(kx, ky, stalls, links, samples, faults)
        return 0
    render_png(kx, ky, stalls, links, samples, faults, outdir, plt)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)

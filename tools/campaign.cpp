// `campaign`: run / status / gather / clean for campaign manifests
// (src/campaign/, docs/CAMPAIGN.md).
//
//   campaign run    <manifest> [--threads N] [--max-points N] [--quiet]
//   campaign status <manifest>
//   campaign gather <manifest> [--out FILE]
//   campaign clean  <manifest>
//   campaign emit --grid NAME [--out FILE] [grid options]
//
// <manifest> is either a manifest file path or `--grid NAME` for one of the
// built-in grids (design-space | large-k | trace-ablation | smoke), with
// grid options --k N, --step-threads N, --short. Results live under
// --results DIR (default: campaign-results/<campaign-name>).
//
// `run` executes only the points without a valid record -- re-running a
// killed or partially-invalidated campaign resumes where it left off;
// --max-points N bounds one invocation (the CI smoke job's deterministic
// "kill"). `gather` merges the records into one google-benchmark-schema
// report for tools/check_perf_regression.py-style consumers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "campaign/grids.hpp"
#include "campaign/runner.hpp"
#include "common/cli.hpp"

using namespace noc;
using namespace noc::campaign;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <run|status|gather|clean|emit> [<manifest-file>]\n"
      "  manifest source: a positional manifest file path, or\n"
      "    --grid NAME   built-in grid: design-space | large-k |\n"
      "                  trace-ablation | smoke\n"
      "    --k N         grid mesh radix (design-space, trace-ablation)\n"
      "    --step-threads N  intra-network stepping threads (grids)\n"
      "    --short       CI-sized windows (large-k)\n"
      "  common:\n"
      "    --results DIR results root (default campaign-results/<name>)\n"
      "  run:\n"
      "    --threads N   point fan-out workers (0 = all cores)\n"
      "    --max-points N  execute at most N incomplete points\n"
      "    --quiet       suppress per-point lines\n"
      "  gather/emit:\n"
      "    --out FILE    output path (gather: campaign_report.json;\n"
      "                  emit: stdout manifest path, default <name>.campaign)\n",
      argv0);
}

bool build_manifest(const CliArgs& args, const std::string& path,
                    Manifest* out) {
  const std::string grid = args.get_str("grid", "");
  if (!grid.empty()) {
    const int k = static_cast<int>(args.get_int("k", 4));
    const int step_threads = cli_step_threads(args);
    if (grid == "design-space") {
      *out = design_space_manifest(k, step_threads);
    } else if (grid == "large-k") {
      *out = large_k_manifest(args.has("short"), step_threads);
    } else if (grid == "trace-ablation") {
      *out = trace_ablation_manifest(k);
    } else if (grid == "smoke") {
      *out = smoke_manifest();
    } else {
      std::fprintf(stderr,
                   "unknown grid '%s' (valid: design-space large-k "
                   "trace-ablation smoke)\n",
                   grid.c_str());
      return false;
    }
    return true;
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "no manifest: pass a manifest file or --grid NAME\n");
    return false;
  }
  std::string err;
  auto m = load_manifest(path, &err);
  if (m == nullptr) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return false;
  }
  *out = *m;
  return true;
}

int cmd_run(const Manifest& m, const ResultStore& store,
            const CliArgs& args) {
  RunOptions opt;
  opt.threads = static_cast<int>(args.get_int("threads", 0));
  opt.max_points = static_cast<int>(args.get_int("max-points", -1));
  opt.verbose = !args.has("quiet");
  if (!args.check_unused()) return 1;
  std::printf("campaign '%s': %zu points -> %s\n", m.name.c_str(),
              m.points.size(), store.root().c_str());
  const auto t0 = std::chrono::steady_clock::now();
  const RunSummary sum = run_campaign(m, store, opt);
  const auto t1 = std::chrono::steady_clock::now();
  for (const std::string& e : sum.errors)
    std::fprintf(stderr, "error: %s\n", e.c_str());
  std::printf(
      "executed %d, skipped %d (already complete), deferred %d, failed %d "
      "in %.1fs\n",
      sum.executed, sum.skipped, sum.deferred, sum.failed,
      std::chrono::duration<double>(t1 - t0).count());
  if (sum.deferred > 0)
    std::printf("re-run to continue (deferred points resume where this "
                "invocation stopped)\n");
  return sum.ok() ? 0 : 1;
}

int cmd_status(const Manifest& m, const ResultStore& store,
               const CliArgs& args) {
  if (!args.check_unused()) return 1;
  std::string err;
  const auto resolved = resolve_manifest(m, &err);
  if (resolved.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  int complete = 0;
  for (const ResolvedPoint& r : resolved) {
    const bool done = store.has_record(r.point->id, r.hash);
    complete += done ? 1 : 0;
    std::printf("  %-9s %s  %s (%s)\n", done ? "complete" : "pending",
                r.hash.c_str(), r.point->id.c_str(),
                point_kind_name(r.point->kind));
  }
  std::printf("campaign '%s': %d/%zu points complete under %s\n",
              m.name.c_str(), complete, resolved.size(),
              store.root().c_str());
  return 0;
}

int cmd_gather(const Manifest& m, const ResultStore& store,
               const CliArgs& args) {
  const std::string out =
      args.get_str("out", store.root() + "/campaign_report.json");
  if (!args.check_unused()) return 1;
  const GatherResult g = gather_campaign(m, store, out);
  for (const std::string& id : g.missing)
    std::fprintf(stderr, "missing record: %s\n", id.c_str());
  if (!g.wrote) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("gathered %d/%zu records into %s\n", g.complete,
              m.points.size(), out.c_str());
  return g.missing.empty() ? 0 : 1;
}

int cmd_clean(const Manifest& m, const ResultStore& store,
              const CliArgs& args) {
  if (!args.check_unused()) return 1;
  const int removed = store.remove_campaign(m);
  std::printf("removed %d file(s) for campaign '%s' under %s\n", removed,
              m.name.c_str(), store.root().c_str());
  return 0;
}

int cmd_emit(const Manifest& m, const CliArgs& args) {
  const std::string out = args.get_str("out", m.name + ".campaign");
  if (!args.check_unused()) return 1;
  if (!save_manifest(out, m)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu-point manifest '%s' to %s\n", m.points.size(),
              m.name.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (argc < 2 || args.help()) {
    usage(argv[0]);
    return argc < 2 ? 1 : 0;
  }
  const std::string cmd = argv[1];
  // The first non-flag token after the subcommand is the manifest path
  // (CliArgs ignores positionals; flag values are consumed by their flag).
  std::string manifest_path;
  for (int i = 2; i < argc; ++i) {
    const bool is_flag = argv[i][0] == '-';
    if (is_flag) {
      // Skip this flag's value token ("--name value" form).
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          argv[i + 1][0] != '-')
        ++i;
      continue;
    }
    manifest_path = argv[i];
    break;
  }

  Manifest m;
  if (!build_manifest(args, manifest_path, &m)) return 1;
  if (std::string err = validate_manifest(m); !err.empty()) {
    std::fprintf(stderr, "invalid manifest: %s\n", err.c_str());
    return 1;
  }

  if (cmd == "emit") return cmd_emit(m, args);

  const ResultStore store(
      args.get_str("results", "campaign-results/" + m.name));
  if (cmd == "run") return cmd_run(m, store, args);
  if (cmd == "status") return cmd_status(m, store, args);
  if (cmd == "gather") return cmd_gather(m, store, args);
  if (cmd == "clean") return cmd_clean(m, store, args);
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  usage(argv[0]);
  return 1;
}

// `campaign`: run / status / gather / clean for campaign manifests
// (src/campaign/, docs/CAMPAIGN.md).
//
//   campaign run    <manifest> [--threads N] [--max-points N] [--quiet]
//   campaign status <manifest>
//   campaign gather <manifest> [--out FILE]
//   campaign clean  <manifest>
//   campaign emit --grid NAME [--out FILE] [grid options]
//   campaign telemetry [--k N] [--out-dir DIR] [...]   (docs/OBSERVABILITY.md)
//
// <manifest> is either a manifest file path or `--grid NAME` for one of the
// built-in grids (design-space | large-k | trace-ablation | smoke), with
// grid options --k N, --step-threads N, --short. Results live under
// --results DIR (default: campaign-results/<campaign-name>).
//
// `run` executes only the points without a valid record -- re-running a
// killed or partially-invalidated campaign resumes where it left off;
// --max-points N bounds one invocation (the CI smoke job's deterministic
// "kill"). `gather` merges the records into one google-benchmark-schema
// report for tools/check_perf_regression.py-style consumers.
#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "campaign/grids.hpp"
#include "campaign/runner.hpp"
#include "common/cli.hpp"

using namespace noc;
using namespace noc::campaign;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <run|status|gather|clean|emit|telemetry> [<manifest-file>]\n"
      "  manifest source: a positional manifest file path, or\n"
      "    --grid NAME   built-in grid: design-space | large-k |\n"
      "                  trace-ablation | smoke\n"
      "    --k N         grid mesh radix (design-space, trace-ablation)\n"
      "    --step-threads N  intra-network stepping threads (grids)\n"
      "    --short       CI-sized windows (large-k)\n"
      "  common:\n"
      "    --results DIR results root (default campaign-results/<name>)\n"
      "  run:\n"
      "    --threads N   point fan-out workers (0 = all cores)\n"
      "    --max-points N  execute at most N incomplete points\n"
      "    --quiet       suppress per-point lines\n"
      "  gather/emit:\n"
      "    --out FILE    output path (gather: campaign_report.json;\n"
      "                  emit: stdout manifest path, default <name>.campaign)\n"
      "  telemetry (no manifest; one instrumented run, docs/OBSERVABILITY.md):\n"
      "    --k N           mesh radix (default 8)\n"
      "    --out-dir DIR   artifact directory (default telemetry-out)\n"
      "    --offered R     open-loop load (default 0.15 flits/node/cycle)\n"
      "    --warmup/--window N  phase lengths (defaults 2000/6000)\n"
      "    --sample-every N     time-series period (default 50)\n"
      "    --trace-every N      packet trace sampling (default 64)\n",
      argv0);
}

bool build_manifest(const CliArgs& args, const std::string& path,
                    Manifest* out) {
  const std::string grid = args.get_str("grid", "");
  if (!grid.empty()) {
    const int k = static_cast<int>(args.get_int("k", 4));
    const int step_threads = cli_step_threads(args);
    if (grid == "design-space") {
      *out = design_space_manifest(k, step_threads);
    } else if (grid == "large-k") {
      *out = large_k_manifest(args.has("short"), step_threads);
    } else if (grid == "trace-ablation") {
      *out = trace_ablation_manifest(k);
    } else if (grid == "smoke") {
      *out = smoke_manifest();
    } else {
      std::fprintf(stderr,
                   "unknown grid '%s' (valid: design-space large-k "
                   "trace-ablation smoke)\n",
                   grid.c_str());
      return false;
    }
    return true;
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "no manifest: pass a manifest file or --grid NAME\n");
    return false;
  }
  std::string err;
  auto m = load_manifest(path, &err);
  if (m == nullptr) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return false;
  }
  *out = *m;
  return true;
}

int cmd_run(const Manifest& m, const ResultStore& store,
            const CliArgs& args) {
  RunOptions opt;
  opt.threads = static_cast<int>(args.get_int("threads", 0));
  opt.max_points = static_cast<int>(args.get_int("max-points", -1));
  opt.verbose = !args.has("quiet");
  if (!args.check_unused()) return 1;
  std::printf("campaign '%s': %zu points -> %s\n", m.name.c_str(),
              m.points.size(), store.root().c_str());
  const auto t0 = std::chrono::steady_clock::now();
  const RunSummary sum = run_campaign(m, store, opt);
  const auto t1 = std::chrono::steady_clock::now();
  for (const std::string& e : sum.errors)
    std::fprintf(stderr, "error: %s\n", e.c_str());
  std::printf(
      "executed %d, skipped %d (already complete), deferred %d, failed %d "
      "in %.1fs\n",
      sum.executed, sum.skipped, sum.deferred, sum.failed,
      std::chrono::duration<double>(t1 - t0).count());
  if (sum.deferred > 0)
    std::printf("re-run to continue (deferred points resume where this "
                "invocation stopped)\n");
  return sum.ok() ? 0 : 1;
}

int cmd_status(const Manifest& m, const ResultStore& store,
               const CliArgs& args) {
  if (!args.check_unused()) return 1;
  std::string err;
  const auto resolved = resolve_manifest(m, &err);
  if (resolved.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  // Per-grid rollup: point ids are path-shaped (grids.cpp emits
  // "<axis>/<point>"), so the prefix before the first '/' is the grid a
  // point belongs to; prefix-less ids land under "(ungrouped)". "blocked"
  // counts replay points that cannot run yet because their capture has no
  // record -- pending, but not actionable by a bare re-run.
  struct GroupCounts {
    int complete = 0;
    int pending = 0;
    int blocked = 0;
  };
  std::map<std::string, GroupCounts> groups;
  int complete = 0;
  for (const ResolvedPoint& r : resolved) {
    const bool done = store.has_record(r.point->id, r.hash);
    bool blocked = false;
    if (!done && r.dep_index >= 0) {
      const ResolvedPoint& dep = resolved[static_cast<size_t>(r.dep_index)];
      blocked = !store.has_record(dep.point->id, dep.hash);
    }
    complete += done ? 1 : 0;
    const size_t slash = r.point->id.find('/');
    const std::string group =
        slash == std::string::npos ? "(ungrouped)"
                                   : r.point->id.substr(0, slash);
    GroupCounts& g = groups[group];
    if (done)
      ++g.complete;
    else if (blocked)
      ++g.blocked;
    else
      ++g.pending;
    std::printf("  %-9s %s  %s (%s)\n",
                done ? "complete" : (blocked ? "blocked" : "pending"),
                r.hash.c_str(), r.point->id.c_str(),
                point_kind_name(r.point->kind));
  }
  std::printf("campaign '%s' under %s:\n", m.name.c_str(),
              store.root().c_str());
  for (const auto& [name, g] : groups)
    std::printf("  %-24s %d complete, %d pending, %d blocked (of %d)\n",
                name.c_str(), g.complete, g.pending, g.blocked,
                g.complete + g.pending + g.blocked);
  std::printf("total: %d/%zu points complete\n", complete, resolved.size());
  return 0;
}

int cmd_gather(const Manifest& m, const ResultStore& store,
               const CliArgs& args) {
  const std::string out =
      args.get_str("out", store.root() + "/campaign_report.json");
  if (!args.check_unused()) return 1;
  const GatherResult g = gather_campaign(m, store, out);
  for (const std::string& id : g.missing)
    std::fprintf(stderr, "missing record: %s\n", id.c_str());
  if (!g.wrote) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("gathered %d/%zu records into %s\n", g.complete,
              m.points.size(), out.c_str());
  return g.missing.empty() ? 0 : 1;
}

int cmd_clean(const Manifest& m, const ResultStore& store,
              const CliArgs& args) {
  if (!args.check_unused()) return 1;
  const int removed = store.remove_campaign(m);
  std::printf("removed %d file(s) for campaign '%s' under %s\n", removed,
              m.name.c_str(), store.root().c_str());
  return 0;
}

bool mkdir_p(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return true;
  if (errno != ENOENT) return false;
  const size_t slash = dir.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return false;
  if (!mkdir_p(dir.substr(0, slash))) return false;
  return ::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST;
}

bool write_links_csv(const std::string& path, const Network& net) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("node,x,y,east,west,north,south,local\n", f);
  const MeshGeometry& g = net.geom();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const Coord c = g.coord(n);
    std::fprintf(f, "%d,%d,%d", n, c.x, c.y);
    for (PortDir p : {PortDir::East, PortDir::West, PortDir::North,
                      PortDir::South, PortDir::Local})
      std::fprintf(f, ",%lld",
                   static_cast<long long>(net.metrics().link_flits(n, p)));
    std::fputs("\n", f);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// One instrumented 8x8 adaptive run with a mid-run link kill: the
/// single-command telemetry demo (docs/OBSERVABILITY.md). Two back-to-back
/// measurement windows -- pristine, then one with a central link dying a
/// quarter of the way in -- and every exporter's artifact written to
/// --out-dir for tools/plot_telemetry.py.
int cmd_telemetry(const CliArgs& args) {
  const int k = cli_mesh_radix(args, 8);
  const std::string dir = args.get_str("out-dir", "telemetry-out");
  const double offered = args.get_double("offered", 0.15);
  const Cycle warmup = args.get_int("warmup", 2000);
  const Cycle window = args.get_int("window", 6000);
  const Cycle sample_every = args.get_int("sample-every", 50);
  const auto trace_every =
      static_cast<uint64_t>(args.get_int("trace-every", 64));
  const int step_threads = cli_step_threads(args);
  if (!args.check_unused()) return 1;

  NetworkConfig cfg = NetworkConfig::proposed(k);
  cfg.router.routing = RoutePolicy::MinimalAdaptive;
  cfg.step_threads = step_threads;
  cfg.traffic.offered_flits_per_node_cycle = offered;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_every = sample_every;
  cfg.telemetry.trace_sample_every = trace_every;
  // Kill a central horizontal link a quarter into the second window; the
  // faulted window's tail statistics show the rerouting detour inflation.
  const MeshGeometry geom(k, k);
  const NodeId fa = geom.id(k / 2 - 1, k / 2);
  const NodeId fb = geom.id(k / 2, k / 2);
  cfg.fault.kill_link(warmup + window + window / 4, fa, fb);

  Network net(cfg);
  Simulation sim(net);
  struct WindowRow {
    const char* name;
    int64_t packets = 0;
    double avg = 0;
    Cycle p50 = 0, p95 = 0, p99 = 0, min = 0, max = 0;
  };
  auto run_window = [&](const char* name) {
    net.begin_measurement_window(sim.now());
    sim.run(window);
    net.end_measurement_window(sim.now());
    const LatencyHistogram& h = net.metrics().latency_hist();
    return WindowRow{name,
                     h.count(),
                     net.metrics().avg_packet_latency(),
                     h.percentile(0.50),
                     h.percentile(0.95),
                     h.percentile(0.99),
                     h.min(),
                     h.max()};
  };
  sim.run(warmup);
  const WindowRow rows[2] = {run_window("pristine"), run_window("faulted")};

  std::printf("telemetry run: %dx%d adaptive, offered %.2f, link %d-%d "
              "killed at cycle %lld\n",
              k, k, offered, fa, fb,
              static_cast<long long>(warmup + window + window / 4));
  std::printf("%-9s %9s %9s %6s %6s %6s %6s %6s\n", "window", "packets",
              "avg", "p50", "p95", "p99", "min", "max");
  for (const WindowRow& r : rows)
    std::printf("%-9s %9lld %9.2f %6lld %6lld %6lld %6lld %6lld\n", r.name,
                static_cast<long long>(r.packets), r.avg,
                static_cast<long long>(r.p50), static_cast<long long>(r.p95),
                static_cast<long long>(r.p99), static_cast<long long>(r.min),
                static_cast<long long>(r.max));

  if (!mkdir_p(dir)) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  const Telemetry* t = net.telemetry();
  bool ok = true;
  // stalls.csv / links.csv are window-scoped and cover the FAULTED window
  // (both reset at begin_measurement_window): the heatmaps show where the
  // rerouted traffic piles up around the dead link.
  ok = t->write_perfetto_json(dir + "/trace.json") && ok;
  ok = t->write_timeseries_csv(dir + "/timeseries.csv") && ok;
  ok = t->write_timeseries_json(dir + "/timeseries.json") && ok;
  ok = t->write_stalls_csv(dir + "/stalls.csv", k) && ok;
  ok = write_links_csv(dir + "/links.csv", net) && ok;
  if (!ok) {
    std::fprintf(stderr, "cannot write telemetry artifacts under %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf(
      "wrote %s/{trace.json,timeseries.csv,timeseries.json,stalls.csv,"
      "links.csv}\n"
      "render: python3 tools/plot_telemetry.py %s\n"
      "trace.json loads in Perfetto (ui.perfetto.dev) or chrome://tracing\n",
      dir.c_str(), dir.c_str());
  return 0;
}

int cmd_emit(const Manifest& m, const CliArgs& args) {
  const std::string out = args.get_str("out", m.name + ".campaign");
  if (!args.check_unused()) return 1;
  if (!save_manifest(out, m)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu-point manifest '%s' to %s\n", m.points.size(),
              m.name.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (argc < 2 || args.help()) {
    usage(argv[0]);
    return argc < 2 ? 1 : 0;
  }
  const std::string cmd = argv[1];
  // `telemetry` is manifest-free: one instrumented demo run.
  if (cmd == "telemetry") return cmd_telemetry(args);
  // The first non-flag token after the subcommand is the manifest path
  // (CliArgs ignores positionals; flag values are consumed by their flag).
  std::string manifest_path;
  for (int i = 2; i < argc; ++i) {
    const bool is_flag = argv[i][0] == '-';
    if (is_flag) {
      // Skip this flag's value token ("--name value" form).
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          argv[i + 1][0] != '-')
        ++i;
      continue;
    }
    manifest_path = argv[i];
    break;
  }

  Manifest m;
  if (!build_manifest(args, manifest_path, &m)) return 1;
  if (std::string err = validate_manifest(m); !err.empty()) {
    std::fprintf(stderr, "invalid manifest: %s\n", err.c_str());
    return 1;
  }

  if (cmd == "emit") return cmd_emit(m, args);

  const ResultStore store(
      args.get_str("results", "campaign-results/" + m.name));
  if (cmd == "run") return cmd_run(m, store, args);
  if (cmd == "status") return cmd_status(m, store, args);
  if (cmd == "gather") return cmd_gather(m, store, args);
  if (cmd == "clean") return cmd_clean(m, store, args);
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  usage(argv[0]);
  return 1;
}

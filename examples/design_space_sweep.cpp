// Design-space exploration with the experiment harness: mesh radix,
// pipeline, and traffic pattern sweeps -- the early-stage study ORION-class
// models target (paper Sec 4.4), run on the cycle-accurate model instead.
//
// Every sweep fans its independent saturation searches across all cores via
// ExperimentRunner; results are bit-identical to running them one by one.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N]\n"
        "          [--step-threads N] [--k N]\n"
        "  --k extends the radix sweep past its default 2..8 list (even\n"
        "  radices 10..k are appended) and sizes the pattern/pipeline\n"
        "  sweeps (default 4; up to %d -- larger values are rejected, not\n"
        "  truncated)\n"
        "  --step-threads parallelizes each individual simulation on top of\n"
        "  the cross-simulation fan-out (bit-identical results; the shared\n"
        "  thread budget keeps the two levels from oversubscribing)\n",
        argv[0], kMaxMeshRadix);
    return 0;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 1500, .window = 6000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const int max_k = cli_mesh_radix(args, 4);
  const int step_threads = cli_step_threads(args);
  if (!args.check_unused()) return 1;
  std::printf("design-space sweep: step-threads %d\n\n", step_threads);

  // 1. Mesh radix sweep: how the proposed router scales past the chip.
  //    --k extends the sweep past the default list (multi-word DestMask:
  //    anything up to kMaxMeshRadix simulates).
  Table k_sweep("Mesh radix sweep, uniform 1-flit requests");
  k_sweep.set_columns({"k", "Zero-load lat (cyc)", "Theory H+2",
                       "Sat throughput (Gb/s)", "Ejection-limit (Gb/s)"});
  std::vector<int> radices = {2, 3, 4, 5, 6, 8};
  for (int k = 10; k <= max_k; k += 2) radices.push_back(k);
  std::vector<NetworkConfig> k_cfgs;
  for (int k : radices) {
    NetworkConfig cfg = NetworkConfig::proposed(k);
    cfg.traffic.pattern = TrafficPattern::UniformRequest;
    cfg.step_threads = step_threads;
    k_cfgs.push_back(cfg);
  }
  auto k_sats = runner.find_saturations(k_cfgs);
  for (size_t i = 0; i < k_cfgs.size(); ++i) {
    const int k = radices[i];
    const auto& s = k_sats[i];
    k_sweep.add_row(
        {Table::fmt_int(k), Table::fmt(s.zero_load_latency, 2),
         Table::fmt(theory::unicast_avg_hops_exact(k) + 2.0, 2),
         Table::fmt(s.saturation_gbps, 0),
         Table::fmt(theory::aggregate_throughput_limit_gbps(k) *
                        theory::unicast_max_injection_rate(k), 0)});
  }
  k_sweep.print();
  std::printf("\n");

  // 2. Pattern sweep at the selected size: adversarial permutations.
  const std::string kxk =
      std::to_string(max_k) + "x" + std::to_string(max_k);
  Table pat("Traffic-pattern sweep, proposed " + kxk);
  pat.set_columns({"Pattern", "Zero-load lat (cyc)", "Sat throughput (Gb/s)"});
  const TrafficPattern patterns[] = {
      TrafficPattern::UniformRequest, TrafficPattern::Transpose,
      TrafficPattern::BitComplement,  TrafficPattern::Tornado,
      TrafficPattern::NearestNeighbor, TrafficPattern::BroadcastOnly};
  std::vector<NetworkConfig> pat_cfgs;
  for (auto p : patterns) {
    NetworkConfig cfg = NetworkConfig::proposed(max_k);
    cfg.traffic.pattern = p;
    cfg.step_threads = step_threads;
    pat_cfgs.push_back(cfg);
  }
  auto pat_sats = runner.find_saturations(pat_cfgs);
  for (size_t i = 0; i < pat_cfgs.size(); ++i) {
    pat.add_row({traffic_pattern_name(patterns[i]),
                 Table::fmt(pat_sats[i].zero_load_latency, 2),
                 Table::fmt(pat_sats[i].saturation_gbps, 0)});
  }
  pat.print();
  std::printf("\n");

  // 3. Routing-policy sweep: the XY-imbalance lever (docs/ROUTING.md) on
  //    uniform traffic and on the adversarial transpose permutation, where
  //    load balancing shows its largest spread.
  Table pol("Routing-policy sweep, proposed " + kxk);
  pol.set_columns({"Policy", "Uniform sat (Gb/s)", "Transpose sat (Gb/s)"});
  const std::vector<RoutePolicy> policy_list = {
      RoutePolicy::XY, RoutePolicy::YX, RoutePolicy::O1Turn,
      RoutePolicy::MinimalAdaptive};
  std::vector<NetworkConfig> pol_cfgs;
  for (RoutePolicy p : policy_list)
    for (TrafficPattern pattern :
         {TrafficPattern::UniformRequest, TrafficPattern::Transpose}) {
      NetworkConfig cfg = NetworkConfig::proposed(max_k);
      cfg.router.routing = p;
      cfg.traffic.pattern = pattern;
      cfg.step_threads = step_threads;
      pol_cfgs.push_back(cfg);
    }
  auto pol_sats = runner.find_saturations(pol_cfgs);
  for (size_t i = 0; i < policy_list.size(); ++i) {
    pol.add_row({route_policy_name(policy_list[i]),
                 Table::fmt(pol_sats[2 * i].saturation_gbps, 0),
                 Table::fmt(pol_sats[2 * i + 1].saturation_gbps, 0)});
  }
  pol.print();
  std::printf("\n");

  // 4. Pipeline sweep under the paper's mixed traffic.
  Table pipe("Pipeline sweep, mixed traffic, " + kxk);
  pipe.set_columns({"Router", "Zero-load lat (cyc)", "Sat throughput (Gb/s)"});
  struct Row {
    const char* name;
    NetworkConfig cfg;
  } rows[] = {
      {"proposed (1-cycle bypass + multicast)",
       NetworkConfig::proposed(max_k)},
      {"3-stage + multicast, no bypass",
       NetworkConfig::lowswing_multicast(max_k)},
      {"3-stage unicast baseline", NetworkConfig::baseline_3stage(max_k)},
      {"4-stage textbook baseline", NetworkConfig::baseline_4stage(max_k)},
  };
  std::vector<NetworkConfig> pipe_cfgs;
  for (auto& r : rows) {
    r.cfg.traffic.pattern = TrafficPattern::MixedPaper;
    r.cfg.step_threads = step_threads;
    pipe_cfgs.push_back(r.cfg);
  }
  auto pipe_sats = runner.find_saturations(pipe_cfgs);
  for (size_t i = 0; i < pipe_cfgs.size(); ++i) {
    pipe.add_row({rows[i].name, Table::fmt(pipe_sats[i].zero_load_latency, 2),
                  Table::fmt(pipe_sats[i].saturation_gbps, 0)});
  }
  pipe.print();

  std::printf(
      "\nNotes: unicast saturation becomes bisection-limited past k=4 (Table 1's\n"
      "crossover); adversarial permutations stress XY's load imbalance; each\n"
      "pipeline stage removed buys both latency and buffer-turnaround\n"
      "throughput, multicast buys the broadcast column outright.\n");
  return 0;
}

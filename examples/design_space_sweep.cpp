// Design-space exploration with the experiment harness: mesh radix,
// pipeline, and traffic pattern sweeps -- the early-stage study ORION-class
// models target (paper Sec 4.4), run on the cycle-accurate model instead.
//
// The point grid is campaign::design_space_manifest (src/campaign/grids.hpp)
// -- the SAME manifest `campaign run --grid design-space` executes resumably
// -- so this binary and the campaign engine cannot drift apart on what "the
// design-space sweep" is. Here every resolved point's saturation search is
// fanned across all cores in one batch via ExperimentRunner; results are
// bit-identical to running them one by one (and to the campaign's records).
#include <cstdio>
#include <string>

#include "campaign/grids.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--warmup N] [--window N] [--threads N]\n"
        "          [--step-threads N] [--k N]\n"
        "  --k extends the radix sweep past its default 2..8 list (even\n"
        "  radices 10..k are appended) and sizes the pattern/pipeline\n"
        "  sweeps (default 4; up to %d -- larger values are rejected, not\n"
        "  truncated)\n"
        "  --step-threads parallelizes each individual simulation on top of\n"
        "  the cross-simulation fan-out (bit-identical results; the shared\n"
        "  thread budget keeps the two levels from oversubscribing)\n",
        argv[0], kMaxMeshRadix);
    return 0;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 1500, .window = 6000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  const int max_k = cli_mesh_radix(args, 4);
  const int step_threads = cli_step_threads(args);
  if (!args.check_unused()) return 1;
  std::printf("design-space sweep: step-threads %d\n\n", step_threads);

  // The declarative grid, resolved to concrete configs. Point ids are
  // namespaced radix/ pattern/ policy/ pipeline/ in construction order, so
  // the table sections below slice the one batched result array.
  const campaign::Manifest manifest =
      campaign::design_space_manifest(max_k, step_threads);
  std::string err;
  const auto points = campaign::resolve_manifest(manifest, &err);
  if (points.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::vector<NetworkConfig> cfgs;
  cfgs.reserve(points.size());
  for (const auto& p : points) cfgs.push_back(p.cfg);

  // Every saturation search in the whole design space, one parallel batch.
  const auto sats = runner.find_saturations(cfgs);

  auto section = [&](const char* prefix, auto&& row) {
    for (size_t i = 0; i < points.size(); ++i)
      if (points[i].point->id.rfind(prefix, 0) == 0) row(points[i], sats[i]);
  };

  // 1. Mesh radix sweep: how the proposed router scales past the chip.
  Table k_sweep("Mesh radix sweep, uniform 1-flit requests");
  k_sweep.set_columns({"k", "Zero-load lat (cyc)", "Theory H+2",
                       "Sat throughput (Gb/s)", "Ejection-limit (Gb/s)"});
  section("radix/", [&](const campaign::ResolvedPoint& p,
                        const SaturationResult& s) {
    const int k = p.point->k;
    k_sweep.add_row(
        {Table::fmt_int(k), Table::fmt(s.zero_load_latency, 2),
         Table::fmt(theory::unicast_avg_hops_exact(k) + 2.0, 2),
         Table::fmt(s.saturation_gbps, 0),
         Table::fmt(theory::aggregate_throughput_limit_gbps(k) *
                        theory::unicast_max_injection_rate(k), 0)});
  });
  k_sweep.print();
  std::printf("\n");

  // 2. Pattern sweep at the selected size: adversarial permutations.
  const std::string kxk =
      std::to_string(max_k) + "x" + std::to_string(max_k);
  Table pat("Traffic-pattern sweep, proposed " + kxk);
  pat.set_columns({"Pattern", "Zero-load lat (cyc)", "Sat throughput (Gb/s)"});
  section("pattern/", [&](const campaign::ResolvedPoint& p,
                          const SaturationResult& s) {
    pat.add_row({traffic_pattern_name(p.point->pattern),
                 Table::fmt(s.zero_load_latency, 2),
                 Table::fmt(s.saturation_gbps, 0)});
  });
  pat.print();
  std::printf("\n");

  // 3. Routing-policy sweep: the XY-imbalance lever (docs/ROUTING.md) on
  //    uniform traffic and on the adversarial transpose permutation, where
  //    load balancing shows its largest spread. Points alternate
  //    uniform/transpose per policy (grid construction order).
  Table pol("Routing-policy sweep, proposed " + kxk);
  pol.set_columns({"Policy", "Uniform sat (Gb/s)", "Transpose sat (Gb/s)"});
  {
    const char* policy = nullptr;
    double uniform_gbps = 0;
    section("policy/", [&](const campaign::ResolvedPoint& p,
                           const SaturationResult& s) {
      if (p.point->pattern == TrafficPattern::UniformRequest) {
        policy = route_policy_name(p.point->policy);
        uniform_gbps = s.saturation_gbps;
        return;
      }
      pol.add_row({policy, Table::fmt(uniform_gbps, 0),
                   Table::fmt(s.saturation_gbps, 0)});
    });
  }
  pol.print();
  std::printf("\n");

  // 4. Pipeline sweep under the paper's mixed traffic.
  Table pipe("Pipeline sweep, mixed traffic, " + kxk);
  pipe.set_columns({"Router", "Zero-load lat (cyc)", "Sat throughput (Gb/s)"});
  const char* pipeline_labels[] = {
      "proposed (1-cycle bypass + multicast)",
      "3-stage + multicast, no bypass",
      "3-stage unicast baseline",
      "4-stage textbook baseline",
  };
  section("pipeline/", [&](const campaign::ResolvedPoint& p,
                           const SaturationResult& s) {
    pipe.add_row({pipeline_labels[static_cast<int>(p.point->pipeline)],
                  Table::fmt(s.zero_load_latency, 2),
                  Table::fmt(s.saturation_gbps, 0)});
  });
  pipe.print();

  std::printf(
      "\nNotes: unicast saturation becomes bisection-limited past k=4 (Table 1's\n"
      "crossover); adversarial permutations stress XY's load imbalance; each\n"
      "pipeline stage removed buys both latency and buffer-turnaround\n"
      "throughput, multicast buys the broadcast column outright.\n");
  return 0;
}

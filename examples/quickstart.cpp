// Quickstart: build the paper's 16-node mesh, run mixed traffic, print the
// headline latency/throughput/energy numbers. Start here.
//
// Flags: --pattern NAME (e.g. uniform, mixed, broadcast, transpose)
//        --load R (flits/node/cycle)
//        --k N (mesh radix, 2..16; beyond DestMask capacity is rejected)
//        --policy NAME (xy | yx | o1turn | adaptive; default the chip's xy)
//        --step-threads N (intra-network parallel stepping; 1 = serial,
//                          results are bit-identical either way)
//        --telemetry (arm the observability probes, docs/OBSERVABILITY.md:
//                     prints the latency percentile table and the
//                     per-class stall attribution after the run)
#include <cstdio>

#include "common/cli.hpp"
#include "noc/experiment.hpp"
#include "noc/telemetry.hpp"
#include "power/energy_model.hpp"
#include "power/tech_params.hpp"
#include "theory/mesh_limits.hpp"

using namespace noc;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--pattern NAME] [--load R] [--k N] [--policy NAME]\n"
        "          [--step-threads N] [--telemetry]\n",
        argv[0]);
    return 0;
  }
  // 1. Configure the fabricated design: 4x4 mesh by default (--k scales it
  //    up to the DestMask capacity), single-cycle virtual bypassing,
  //    router-level multicast, 4x1 REQ + 2x3 RESP VCs. --policy swaps the
  //    chip's XY routing for a load-balancing alternative (docs/ROUTING.md).
  const int k = cli_mesh_radix(args, 4);
  NetworkConfig cfg = NetworkConfig::proposed(k);
  cfg.router.routing = cli_route_policy(args, RoutePolicy::XY);
  cfg.step_threads = cli_step_threads(args);
  cfg.traffic.pattern = TrafficPattern::MixedPaper;  // Fig 5's traffic
  cfg.traffic.offered_flits_per_node_cycle = args.get_double("load", 0.10);
  if (const std::string p = args.get_str("pattern", ""); !p.empty()) {
    const auto parsed = parse_traffic_pattern(p);
    if (!parsed) {
      std::fprintf(stderr, "unknown traffic pattern: %s\n", p.c_str());
      return 1;
    }
    cfg.traffic.pattern = *parsed;
  }
  const bool telemetry = args.has("telemetry");
  cfg.telemetry.enabled = telemetry;
  if (!args.check_unused()) return 1;

  // 2. Run it: warm up, then measure for 10k cycles.
  Network net(cfg);
  Simulation sim(net);
  sim.run(3000);
  net.begin_measurement_window(sim.now());  // also resets stall counters
  sim.run(10000);
  net.end_measurement_window(sim.now());

  // 3. Read the results.
  const Metrics& m = net.metrics();
  std::printf(
      "== quickstart: proposed %dx%d NoC, %s routing, %s traffic @ %.2f "
      "flits/node/cycle, step-threads %d (%d worker%s) ==\n",
      k, k, route_policy_name(cfg.router.routing),
      traffic_pattern_name(cfg.traffic.pattern),
      cfg.traffic.offered_flits_per_node_cycle, cfg.step_threads,
      net.step_workers(), net.step_workers() == 1 ? "" : "s");
  std::printf("packets completed        : %lld\n",
              static_cast<long long>(m.completed_packets()));
  std::printf("avg packet latency       : %.2f cycles (theory limit %.2f)\n",
              m.avg_packet_latency(),
              theory::zero_load_latency_limit_mixed(k));
  std::printf("  unicast requests       : %.2f cycles\n",
              m.latency_stat(PacketKind::UnicastRequest).mean());
  std::printf("  unicast responses      : %.2f cycles\n",
              m.latency_stat(PacketKind::UnicastResponse).mean());
  std::printf("  broadcasts (to last)   : %.2f cycles\n",
              m.latency_stat(PacketKind::Broadcast).mean());
  std::printf("received throughput      : %.1f Gb/s (limit %.0f)\n",
              m.received_flits_per_cycle() * 64.0,
              theory::aggregate_throughput_limit_gbps(k));
  std::printf("bypass rate              : %.1f%% of hops skipped buffering\n",
              100.0 * net.energy().bypass_rate());

  // 3b. Observability (docs/OBSERVABILITY.md): the always-on histogram's
  //     exact order statistics, and -- probes armed -- where the
  //     non-productive cycles went.
  if (telemetry) {
    const LatencyHistogram& h = m.latency_hist();
    std::printf(
        "latency percentiles      : p50 %lld  p95 %lld  p99 %lld  "
        "(min %lld, max %lld)\n",
        static_cast<long long>(h.percentile(0.50)),
        static_cast<long long>(h.percentile(0.95)),
        static_cast<long long>(h.percentile(0.99)),
        static_cast<long long>(h.min()), static_cast<long long>(h.max()));
    const Telemetry& t = *net.telemetry();
    std::printf("stall attribution        :");
    for (int c = 0; c < kNumStallClasses; ++c)
      std::printf(" %s %lld%s",
                  stall_class_name(static_cast<StallClass>(c)),
                  static_cast<long long>(
                      t.total_stalls(static_cast<StallClass>(c))),
                  c + 1 < kNumStallClasses ? "," : "\n");
  }

  // 4. Energy: event counts -> calibrated 45nm SOI power model.
  const auto power = power::compute_power(net.energy(), k * k,
                                          power::calibrated_tech45(),
                                          /*lowswing_datapath=*/true);
  std::printf("network power            : %.1f mW (datapath %.1f, buffers %.1f,\n"
              "                           logic %.1f, clock+leak %.1f)\n",
              power.total_mw(), power.datapath_mw, power.buffers_mw,
              power.router_logic_mw(), power.clocking_segment_mw());
  return 0;
}

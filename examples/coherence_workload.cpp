// A cache-coherence-shaped workload driven through the public API without
// the built-in traffic generators: each "miss" issues a broadcast probe
// (1-flit request to all nodes) and a randomly chosen owner answers with a
// 5-flit data response -- the message pattern the paper's router was
// designed for (Sec 3: request/response message classes avoid protocol
// deadlock; broadcasts serve snoopy coherence).
#include <cstdio>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "sim/simulation.hpp"

using namespace noc;

int main() {
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.offered_flits_per_node_cycle = 0.0;  // we drive it ourselves
  Network net(cfg);
  Simulation sim(net);
  MeshGeometry geom(4);
  Xoshiro256 rng(2026);

  const double miss_rate_per_node = 0.01;  // probes per node per cycle
  PacketId next_id = 1;
  int probes = 0, responses = 0;

  // Closed-ish loop: on each cycle nodes may issue a probe; two cycles
  // later (directory lookup) the owner injects the data response.
  struct PendingResponse {
    Cycle due;
    NodeId owner;
    NodeId requester;
  };
  std::vector<PendingResponse> pending;

  for (Cycle t = 0; t < 20000; ++t) {
    for (NodeId n = 0; n < geom.num_nodes(); ++n) {
      if (rng.bernoulli(miss_rate_per_node)) {
        Packet probe;
        probe.id = next_id++;
        probe.src = n;
        probe.dest_mask = geom.all_nodes_mask();  // snoop everyone
        probe.mc = MsgClass::Request;
        probe.length = kRequestPacketLen;
        probe.gen_cycle = t;
        net.nic(n).submit_packet(probe);
        ++probes;
        NodeId owner;
        do {
          owner = static_cast<NodeId>(rng.next_below(geom.num_nodes()));
        } while (owner == n);
        pending.push_back({t + 2, owner, n});
      }
    }
    // Owners answer with cache-line data.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->due <= t) {
        Packet data;
        data.id = next_id++;
        data.src = it->owner;
        data.dest_mask = MeshGeometry::node_mask(it->requester);
        data.mc = MsgClass::Response;
        data.length = kResponsePacketLen;
        data.gen_cycle = t;
        net.nic(it->owner).submit_packet(data);
        ++responses;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    if (t == 2000) net.metrics().begin_window(t);
    net.step(t);
  }
  net.metrics().end_window(20000);

  const Metrics& m = net.metrics();
  std::printf("== coherence workload on the proposed 4x4 NoC ==\n");
  std::printf("probes issued            : %d (broadcast, 1 flit)\n", probes);
  std::printf("data responses           : %d (unicast, 5 flits)\n", responses);
  std::printf("probe latency (to last)  : %.2f cycles\n",
              m.latency_stat(PacketKind::Broadcast).mean());
  std::printf("data latency             : %.2f cycles\n",
              m.latency_stat(PacketKind::UnicastResponse).mean());
  std::printf("received throughput      : %.1f Gb/s\n",
              m.received_flits_per_cycle() * 64.0);
  std::printf("bypass rate              : %.1f%%\n",
              100.0 * net.energy().bypass_rate());
  std::printf(
      "\nA miss costs probe + data = %.1f cycles of network time on average --\n"
      "the single-cycle broadcast tree is what keeps the probe leg flat.\n",
      m.latency_stat(PacketKind::Broadcast).mean() +
          m.latency_stat(PacketKind::UnicastResponse).mean());
  return 0;
}

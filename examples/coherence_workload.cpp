// A cache-coherence-shaped workload -- the message pattern the paper's
// router was designed for (Sec 3: request/response message classes avoid
// protocol deadlock; broadcasts serve snoopy coherence) -- expressed with
// the first-class ClosedLoopSource instead of a hand-rolled loop outside
// the simulator: each miss issues a broadcast probe, the (deterministic)
// owner answers with a 5-flit cache-line response after a directory
// lookup, and at most `--mshr` misses are outstanding per node.
//
// Because the workload is a TrafficSource, the standard harness measures
// it: measure_workload reports miss latency and sustained transaction
// throughput, and ExperimentRunner sweeps the MSHR window across cores
// with bit-identical-to-serial results.
//
// Flags: --mshr N --issue-prob P --dir-latency N --warmup N --window N
//        --threads N
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "noc/experiment.hpp"

using namespace noc;
using noc::Table;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.help()) {
    std::printf(
        "usage: %s [--mshr N] [--issue-prob P] [--dir-latency N]\n"
        "          [--warmup N] [--window N] [--threads N]\n",
        argv[0]);
    return 0;
  }
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.workload.kind = WorkloadKind::ClosedLoop;
  cfg.workload.closed.window = static_cast<int>(args.get_int("mshr", 4));
  // Default models a compute-bound core: a miss every ~50 cycles per node.
  cfg.workload.closed.issue_prob = args.get_double("issue-prob", 0.02);
  cfg.workload.closed.directory_latency = args.get_int("dir-latency", 2);
  // Reject out-of-contract knobs with a message, not an assert abort.
  if (const char* err = cfg.workload.closed.validate()) {
    std::fprintf(stderr, "%s\n", err);
    return 1;
  }
  const MeasureOptions opt =
      cli_measure_options(args, {.warmup = 2000, .window = 18000});
  const ExperimentRunner runner{cli_experiment_options(args, opt)};
  if (!args.check_unused()) return 1;

  const double nodes = cfg.k * cfg.k;
  const PointResult r = measure_workload(cfg, opt);

  std::printf("== coherence workload on the proposed 4x4 NoC ==\n");
  std::printf("MSHR window              : %d outstanding misses/node\n",
              r.closed_loop_window);
  std::printf("miss transactions        : %lld completed in %lld cycles\n",
              static_cast<long long>(r.transactions),
              static_cast<long long>(opt.window));
  std::printf("miss latency (probe->data): %.2f cycles avg, %.0f max\n",
              r.avg_transaction_latency, r.max_transaction_latency);
  std::printf("sustained miss rate      : %.4f misses/node/cycle\n",
              r.transactions_per_cycle / nodes);
  std::printf("received throughput      : %.1f Gb/s\n", r.recv_gbps);
  std::printf("bypass rate              : %.1f%%\n", 100.0 * r.bypass_rate);

  // The closed-loop analogue of a latency-throughput curve: saturate the
  // window (issue_prob = 1) and sweep its size. All points run in parallel.
  NetworkConfig sat = cfg;
  sat.workload.closed.issue_prob = 1.0;
  const std::vector<int> windows = {1, 2, 4, 8};
  const auto curve = runner.window_sweep(sat, windows);

  std::printf("\n");
  Table t("Saturating closed loop vs MSHR window (issue_prob = 1)");
  t.set_columns({"Window", "Misses/node/cyc", "Miss latency (cyc)",
                 "Network lat (cyc)", "Recv (Gb/s)"});
  for (const PointResult& p : curve)
    t.add_row({Table::fmt_int(p.closed_loop_window),
               Table::fmt(p.transactions_per_cycle / nodes, 4),
               Table::fmt(p.avg_transaction_latency, 1),
               Table::fmt(p.avg_latency, 1), Table::fmt(p.recv_gbps, 0)});
  t.print();

  std::printf(
      "\nA miss costs probe + directory + data response end to end -- the\n"
      "single-cycle broadcast tree keeps the probe leg flat, so miss latency\n"
      "tracks the 5-flit response serialization until the window saturates\n"
      "the ejection links.\n");
  return 0;
}

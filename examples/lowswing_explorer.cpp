// Circuit-level exploration of the low-swing datapath: pick a voltage swing
// against a reliability target, then see what that choice does to link
// energy, achievable clock, and network power -- the cross-layer trade
// study behind Sec 3.4/4.3 of the paper.
#include <cstdio>

#include "common/table.hpp"
#include "circuits/montecarlo.hpp"
#include "circuits/rsd.hpp"
#include "noc/experiment.hpp"
#include "power/energy_model.hpp"
#include "power/tech_params.hpp"

using namespace noc;
using noc::Table;
namespace ckt = noc::ckt;

int main() {
  // 1. Reliability first: sweep swing, watch sigma margin and energy.
  ckt::MonteCarloConfig mc;
  Table sw("Swing selection (1mm link, 1000-run Monte Carlo)");
  sw.set_columns({"Swing (mV)", "Sigma margin", "Fail prob", "fJ/bit",
                  "ST+LT max rate 1mm (GHz)"});
  for (double s : {0.15, 0.20, 0.25, 0.30, 0.35, 0.40}) {
    auto pt = ckt::evaluate_swing(s, mc);
    ckt::RsdParams rp;
    rp.swing_v = s;
    ckt::TriStateRsd rsd(rp);
    sw.add_row({Table::fmt(s * 1000, 0), Table::fmt(pt.sigma_margin, 2),
                Table::fmt(pt.failure_prob_analytic, 5),
                Table::fmt(pt.energy_per_bit_fj, 1),
                Table::fmt(rsd.max_data_rate_ghz(1.0), 2)});
  }
  sw.print();

  const double chosen = ckt::choose_min_swing_for_sigma(3.0, mc);
  std::printf("\nChosen swing for >=3-sigma: %.0f mV (the chip's choice: 300 mV)\n\n",
              chosen * 1000);

  // 2. Network view: what full-swing vs low-swing does to chip power at the
  //    same operating point (Fig 6's A->B step, at a lighter load).
  NetworkConfig cfg = NetworkConfig::proposed(4);
  cfg.traffic.pattern = TrafficPattern::BroadcastOnly;
  auto pt = measure_point(cfg, 0.04, {.warmup = 2000, .window = 8000});
  const auto fs = power::compute_power(pt.energy, 16,
                                       power::calibrated_tech45(), false);
  const auto ls = power::compute_power(pt.energy, 16,
                                       power::calibrated_tech45(), true);
  Table net("Network power at 0.04 bcast flits/node/cycle (~" +
            std::string(Table::fmt(pt.recv_gbps, 0)) + " Gb/s delivered)");
  net.set_columns({"Datapath circuits", "Datapath (mW)", "Total (mW)"});
  net.add_row({"full-swing repeated", Table::fmt(fs.datapath_mw, 1),
               Table::fmt(fs.total_mw(), 1)});
  net.add_row({"300mV tri-state RSD", Table::fmt(ls.datapath_mw, 1),
               Table::fmt(ls.total_mw(), 1)});
  net.print();
  std::printf(
      "\nDatapath saving: %.1f%% (paper: 48.3%%). The cost side is Table 4's\n"
      "3.1x crossbar area and Fig 10's process-variation exposure -- run\n"
      "bench/table4_area and bench/fig10_swing_reliability for those.\n",
      100.0 * (1.0 - ls.datapath_mw / fs.datapath_mw));
  return 0;
}
